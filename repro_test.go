package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro"
	"repro/internal/expt"
)

func hypercube8(t *testing.T) *repro.Topology {
	t.Helper()
	topo, err := repro.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// bestSA runs the annealing scheduler a few times and returns the best
// result, mirroring the paper's per-configuration tuning.
func bestSA(t *testing.T, g *repro.Graph, topo *repro.Topology, comm repro.CommParams, seed int64, restarts int) *repro.Result {
	t.Helper()
	var best *repro.Result
	for r := 0; r < restarts; r++ {
		opt := repro.DefaultSAOptions()
		opt.Seed = seed + int64(r)*7919
		res, _, err := repro.ScheduleSA(g, topo, comm, opt, repro.SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if best == nil || res.Speedup > best.Speedup {
			best = res
		}
	}
	return best
}

func TestEndToEndNewtonEulerHypercube(t *testing.T) {
	g := repro.NewtonEuler()
	topo := hypercube8(t)
	comm := repro.DefaultCommParams()

	hlfRes, err := repro.ScheduleHLF(g, topo, comm, repro.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	saRes := bestSA(t, g, topo, comm, 42, 3)

	if hlfRes.Forced != 0 || saRes.Forced != 0 {
		t.Errorf("forced assignments: HLF %d, SA %d", hlfRes.Forced, saRes.Forced)
	}
	// Paper Table 2, NE on the hypercube with communication: SA beats HLF
	// (14.3% there). The shape requirement is SA > HLF.
	if saRes.Speedup <= hlfRes.Speedup {
		t.Errorf("SA %.3f not better than HLF %.3f with communication", saRes.Speedup, hlfRes.Speedup)
	}
	// The annealing scheduler communicates less.
	if saRes.Messages > hlfRes.Messages {
		t.Errorf("SA produced more messages (%d) than HLF (%d)", saRes.Messages, hlfRes.Messages)
	}
}

func TestNoCommSpeedupsNearMaxSpeedup(t *testing.T) {
	// Without communication both schedulers should reach close to the
	// graph's maximum speedup on 8 processors for NE (paper: 6.9-7.2 of
	// 7.86 max).
	g := repro.NewtonEuler()
	topo := hypercube8(t)
	comm := repro.DefaultCommParams().NoComm()

	hlfRes, err := repro.ScheduleHLF(g, topo, comm, repro.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	saRes := bestSA(t, g, topo, comm, 42, 2)
	ms, err := g.MaxSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	for name, sp := range map[string]float64{"HLF": hlfRes.Speedup, "SA": saRes.Speedup} {
		if sp < 0.85*ms || sp > ms+1e-9 {
			t.Errorf("%s speedup %.2f outside [0.85·max, max] (max %.2f)", name, sp, ms)
		}
	}
	// Without communication the annealing selection matches HLF's (both
	// select by level); SA must not be worse.
	if saRes.Speedup < hlfRes.Speedup-1e-9 {
		t.Errorf("SA %.3f worse than HLF %.3f without communication", saRes.Speedup, hlfRes.Speedup)
	}
}

func TestTable2ShapeAllPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 2 in short mode")
	}
	rows, err := expt.Table2(expt.Table2Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 4 programs × 3 architectures", len(rows))
	}
	for _, r := range rows {
		// SA never loses to HLF, with or without communication.
		if r.NoComm.SA < r.NoComm.HLF-1e-9 {
			t.Errorf("%s %s w/o comm: SA %.3f < HLF %.3f", r.Program, r.Arch, r.NoComm.SA, r.NoComm.HLF)
		}
		if r.Comm.SA < r.Comm.HLF-1e-9 {
			t.Errorf("%s %s with comm: SA %.3f < HLF %.3f", r.Program, r.Arch, r.Comm.SA, r.Comm.HLF)
		}
		// Communication costs speedup.
		if r.Comm.SA > r.NoComm.SA+1e-9 {
			t.Errorf("%s %s: comm speedup %.3f exceeds no-comm %.3f", r.Program, r.Arch, r.Comm.SA, r.NoComm.SA)
		}
		// The paper's headline: with communication the gain is positive on
		// every row (3.5%..52.8%); require a strictly positive gain.
		if r.Comm.Gain <= 0 {
			t.Errorf("%s %s: no SA gain with communication (%.2f%%)", r.Program, r.Arch, r.Comm.Gain)
		}
	}
	t.Logf("\n%s", expt.FormatTable2(rows))
}

func TestDeterminismThroughPublicAPI(t *testing.T) {
	g := repro.GaussJordan()
	topo := hypercube8(t)
	comm := repro.DefaultCommParams()
	run := func() float64 {
		opt := repro.DefaultSAOptions()
		opt.Seed = 123
		res, _, err := repro.ScheduleSA(g, topo, comm, opt, repro.SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed gave %.6f and %.6f", a, b)
	}
}

func TestGraphJSONThroughPublicAPI(t *testing.T) {
	g := repro.MatrixMultiply()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := repro.ReadGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed shape: %v -> %v", g, back)
	}
	// The decoded graph schedules identically.
	topo := hypercube8(t)
	comm := repro.DefaultCommParams()
	r1, err := repro.ScheduleHLF(g, topo, comm, repro.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := repro.ScheduleHLF(back, topo, comm, repro.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Makespan-r2.Makespan) > 1e-9 {
		t.Errorf("decoded graph schedules differently: %.3f vs %.3f", r1.Makespan, r2.Makespan)
	}
}

// customPolicy exercises the public Policy extension point: a greedy
// earliest-idle placement.
type customPolicy struct{}

func (customPolicy) Name() string { return "custom" }

func (customPolicy) Assign(ep *repro.Epoch) []repro.Assignment {
	n := len(ep.Ready)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	out := make([]repro.Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, repro.Assignment{Task: ep.Ready[k], Proc: ep.Idle[k]})
	}
	return out
}

func TestCustomPolicyThroughPublicAPI(t *testing.T) {
	g := repro.GrahamAnomaly()
	topo, err := repro.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.SchedulePolicy(g, topo, repro.DefaultCommParams().NoComm(), customPolicy{}, repro.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "custom" {
		t.Errorf("policy name = %q", res.Policy)
	}
	if math.Abs(res.Makespan-13) > 1e-9 {
		t.Errorf("FIFO-equivalent custom policy makespan = %g, want 13", res.Makespan)
	}
}

func TestGanttThroughPublicAPI(t *testing.T) {
	g := repro.NewtonEuler()
	topo := hypercube8(t)
	opt := repro.DefaultSAOptions()
	opt.Seed = 5
	res, _, err := repro.ScheduleSA(g, topo, repro.DefaultCommParams(), opt, repro.SimOptions{RecordGantt: true})
	if err != nil {
		t.Fatal(err)
	}
	chart := repro.RenderGantt(res, topo.N(), repro.GanttConfig{Width: 100})
	if len(chart) < 100 {
		t.Errorf("chart too small: %d bytes", len(chart))
	}
}

func TestProgramsCatalogThroughPublicAPI(t *testing.T) {
	progs := repro.Programs()
	if len(progs) != 4 {
		t.Fatalf("programs = %d", len(progs))
	}
	for _, p := range progs {
		g := p.Build()
		if g.NumTasks() != p.Paper.Tasks {
			t.Errorf("%s: %d tasks != paper %d", p.Key, g.NumTasks(), p.Paper.Tasks)
		}
	}
}
