// Package proxy implements dtproxy, the routing front of the dtserve
// replica fleet. It consistent-hashes each request's graph fingerprint —
// computed by the zero-copy taskgraph.Canonicalizer, no full decode —
// across the replicas, so every key's singleflight leadership lands on
// exactly one node fleet-wide: N replicas' duplicate cold solves for a
// hot key collapse into one, and the shared remote tier (dtcached) turns
// that one solve into remote hits everywhere else. Around the hashing it
// keeps per-replica health (probe-based ejection and readmission) and
// hedges slow interactive requests to the next replica on the ring after
// a p99-derived delay.
package proxy

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the virtual-node count per replica: 128 points keeps
// the worst replica's key share within ~2× the mean (proven by the ring
// balance test) while the whole ring stays a few KB.
const defaultVNodes = 128

// Ring is an immutable consistent-hash ring over replica indexes. Each
// replica contributes VNodes points hashed from "<name>#<i>", so the key
// space is diced into arcs whose ownership moves minimally when a
// replica joins or leaves: only the arcs adjacent to the changed
// replica's points change hands, about 1/N of the keys.
type Ring struct {
	points []ringPoint // sorted ascending by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node int
}

// NewRing builds a ring over the named replicas with vnodes points each
// (<= 0 means 128). Names must be distinct — duplicate names would alias
// every point and silently halve the fleet.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("proxy: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{points: make([]ringPoint, 0, len(names)*vnodes), nodes: len(names)}
	for node, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("proxy: duplicate replica name %q", name)
		}
		seen[name] = true
		for i := 0; i < vnodes; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", name, i)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties (astronomically rare with 64-bit FNV) break by node so the
		// ring is deterministic regardless of input order.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the replica count the ring was built over.
func (r *Ring) Nodes() int { return r.nodes }

// Sequence appends to buf the preference order for key hash h: the
// distinct replica indexes encountered walking clockwise from the arc
// owning h, at most max of them. buf[0] is the key's owner; later
// entries are the natural fallback/hedge targets (they inherit the arc
// if earlier replicas are ejected, so routing under failure matches
// ring semantics instead of an arbitrary reshuffle).
func (r *Ring) Sequence(h uint64, buf []int, max int) []int {
	if max > r.nodes {
		max = r.nodes
	}
	// First point with hash >= h, wrapping to 0 — the standard ring walk.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var seen uint64 // node-index bitset; rings are small (≤ 64 handled fast)
	var seenBig map[int]bool
	if r.nodes > 64 {
		seenBig = make(map[int]bool, max)
	}
	for n := 0; n < len(r.points) && len(buf) < max; n++ {
		p := r.points[(i+n)%len(r.points)]
		if seenBig != nil {
			if seenBig[p.node] {
				continue
			}
			seenBig[p.node] = true
		} else {
			if seen&(1<<uint(p.node)) != 0 {
				continue
			}
			seen |= 1 << uint(p.node)
		}
		buf = append(buf, p.node)
	}
	return buf
}

// Owner returns the replica index owning key hash h.
func (r *Ring) Owner(h uint64) int {
	var buf [1]int
	return r.Sequence(h, buf[:0], 1)[0]
}

// MixFingerprint whitens a graph fingerprint before the ring lookup.
// Fingerprints are already 64-bit hashes, but they share a construction
// with the cache key; one splitmix64 round decorrelates the ring
// placement from any structure in that space for ~2ns.
func MixFingerprint(fp uint64) uint64 {
	z := fp + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
