package proxy

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/programs"
	"repro/internal/taskgraph"
)

// fakeReplica is a dtserve stand-in: healthy /healthz, a canned schedule
// answer after an optional delay, and a counter of schedule calls seen.
type fakeReplica struct {
	ts    *httptest.Server
	calls atomic.Int64
	delay time.Duration
	body  string
}

func newFakeReplica(t *testing.T, delay time.Duration, body string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{delay: delay, body: body}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/schedule", func(w http.ResponseWriter, r *http.Request) {
		f.calls.Add(1)
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(f.body))
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func newTestProxy(t *testing.T, cfg Config) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p.Handler())
	t.Cleanup(func() {
		front.Close()
		p.Close()
	})
	return p, front
}

// schedulePayload builds a real canonicalizer-parseable request so the
// proxy routes by fingerprint, exactly as production traffic does.
func schedulePayload(t *testing.T, key string, seed int64) []byte {
	t.Helper()
	prog, err := programs.ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return marshalPayload(t, prog.Build(), seed)
}

// chainPayload builds a distinct n-task chain graph: routing is keyed by
// the graph fingerprint (seeds do not move a request between replicas),
// so tests that need many distinct routing keys need many distinct
// graphs.
func chainPayload(t *testing.T, n int) []byte {
	t.Helper()
	g := taskgraph.New("chain")
	prev := taskgraph.TaskID(-1)
	for i := 0; i < n; i++ {
		id := g.AddTask("t", float64(1+i))
		if prev >= 0 {
			if err := g.AddEdge(prev, id, 8); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	return marshalPayload(t, g, 1)
}

func marshalPayload(t *testing.T, g *taskgraph.Graph, seed int64) []byte {
	t.Helper()
	body, err := json.Marshal(struct {
		Graph *taskgraph.Graph `json:"graph"`
		Topo  string           `json:"topo"`
		Seed  int64            `json:"seed"`
	}{g, "hypercube:3", seed})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// ownerOf reports the ring owner of one payload's graph fingerprint.
func ownerOf(t *testing.T, p *Proxy, payload []byte) int {
	t.Helper()
	var probe struct {
		Graph json.RawMessage `json:"graph"`
	}
	if err := json.Unmarshal(payload, &probe); err != nil {
		t.Fatal(err)
	}
	var c taskgraph.Canonicalizer
	if err := c.Parse(probe.Graph); err != nil {
		t.Fatal(err)
	}
	return p.ring.Owner(MixFingerprint(c.Fingerprint()))
}

// TestProxyStickyRouting: identical payloads land on one replica every
// time — the property fleet-wide singleflight is built on.
func TestProxyStickyRouting(t *testing.T) {
	a := newFakeReplica(t, 0, `{"from":"a"}`)
	b := newFakeReplica(t, 0, `{"from":"b"}`)
	_, front := newTestProxy(t, Config{
		Replicas:   []string{a.ts.URL, b.ts.URL},
		HedgeDelay: -1,
	})

	payload := schedulePayload(t, "FFT", 1)
	var winner string
	for i := 0; i < 10; i++ {
		resp, err := http.Post(front.URL+"/v1/schedule", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		rep := resp.Header.Get("X-DTProxy-Replica")
		if i == 0 {
			winner = rep
		} else if rep != winner {
			t.Fatalf("request %d routed to %s, earlier ones to %s", i, rep, winner)
		}
	}
	if got := a.calls.Load() + b.calls.Load(); got != 10 {
		t.Fatalf("backends saw %d calls, want 10", got)
	}
	if a.calls.Load() != 0 && b.calls.Load() != 0 {
		t.Fatalf("identical payloads split across replicas: a=%d b=%d", a.calls.Load(), b.calls.Load())
	}

	// Distinct graphs spread: over enough keys both replicas see work.
	for n := 2; n < 40; n++ {
		resp, err := http.Post(front.URL+"/v1/schedule", "application/json",
			bytes.NewReader(chainPayload(t, n)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if a.calls.Load() == 0 || b.calls.Load() == 0 {
		t.Fatalf("38 distinct keys never reached one replica: a=%d b=%d", a.calls.Load(), b.calls.Load())
	}
}

// TestProxyHedging: a slow primary gets hedged to the next ring replica
// after the fixed delay, the fast hedge wins, and the response says so.
func TestProxyHedging(t *testing.T) {
	slow := newFakeReplica(t, 400*time.Millisecond, `{"from":"slow"}`)
	fast := newFakeReplica(t, 0, `{"from":"fast"}`)
	p, front := newTestProxy(t, Config{
		Replicas:   []string{slow.ts.URL, fast.ts.URL},
		HedgeDelay: 20 * time.Millisecond,
	})

	// Find a payload whose ring owner is the slow replica, so the hedge
	// path is exercised deterministically.
	var payload []byte
	for n := 2; n < 200; n++ {
		if cand := chainPayload(t, n); ownerOf(t, p, cand) == 0 {
			payload = cand
			break
		}
	}
	if payload == nil {
		t.Fatal("no graph hashed to the slow replica in 200 tries")
	}

	start := time.Now()
	resp, err := http.Post(front.URL+"/v1/schedule", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)

	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
	}
	if resp.Header.Get("X-DTProxy-Hedged") != "1" {
		t.Fatal("winning response not marked hedged")
	}
	if got := resp.Header.Get("X-DTProxy-Replica"); got != fast.ts.URL {
		t.Fatalf("winner %s, want the fast hedge target %s", got, fast.ts.URL)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"fast"`)) {
		t.Fatalf("body %s is not the hedge's answer", buf.String())
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("request took %s; the hedge did not cut the slow primary short", elapsed)
	}
	st := p.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

// TestProxyAutoHedgeArming: auto mode stays disarmed until enough
// responses are observed, then derives a clamped p99.
func TestProxyAutoHedgeArming(t *testing.T) {
	fast := newFakeReplica(t, 0, `{}`)
	p, front := newTestProxy(t, Config{
		Replicas:        []string{fast.ts.URL},
		HedgeDelay:      0, // auto
		HedgeMinSamples: 5,
	})
	if d := p.hedgeDelay(); d != 0 {
		t.Fatalf("auto hedge armed at 0 samples: %s", d)
	}
	payload := schedulePayload(t, "MM", 1)
	for i := 0; i < 6; i++ {
		resp, err := http.Post(front.URL+"/v1/schedule", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	d := p.hedgeDelay()
	if d <= 0 {
		t.Fatal("auto hedge still disarmed after the sample floor")
	}
	if d < 2*time.Millisecond || d > 2*time.Second {
		t.Fatalf("auto hedge delay %s outside the clamp", d)
	}
}

// TestProxyReroutesOnTransportError: a dead primary costs a reroute, not
// a failed request, and the failure feeds the health state.
func TestProxyReroutesOnTransportError(t *testing.T) {
	alive := newFakeReplica(t, 0, `{"from":"alive"}`)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	p, front := newTestProxy(t, Config{
		Replicas:       []string{deadURL, alive.ts.URL},
		HedgeDelay:     -1,
		HealthInterval: time.Hour, // keep probes out of this test
	})

	// A key owned by the dead primary must still answer, via a reroute.
	var payload []byte
	for n := 2; n < 200; n++ {
		if cand := chainPayload(t, n); ownerOf(t, p, cand) == 0 {
			payload = cand
			break
		}
	}
	if payload == nil {
		t.Fatal("no graph hashed to the dead primary in 200 tries")
	}
	resp, err := http.Post(front.URL+"/v1/schedule", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d for a dead-primary key", resp.StatusCode)
	}
	if got := resp.Header.Get("X-DTProxy-Replica"); got != alive.ts.URL {
		t.Fatalf("answered by %s, want the surviving replica", got)
	}
	if st := p.Stats(); st.Reroutes == 0 {
		t.Fatal("reroute was not counted")
	}
}
