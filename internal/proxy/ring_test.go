package proxy

import (
	"fmt"
	"math/rand"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 8); err == nil {
		t.Error("duplicate replica accepted")
	}
	r, err := NewRing([]string{"solo"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes() != 1 || r.Owner(12345) != 0 {
		t.Fatalf("single-node ring: nodes=%d owner=%d", r.Nodes(), r.Owner(12345))
	}
}

// TestRingDeterministic: equal inputs build equal rings — ownership must
// not depend on process, map order, or anything else unstable, or two
// dtproxy instances would route the same key to different replicas.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(names(5), 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(names(5), 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		h := rng.Uint64()
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("hash %#x: owners diverge between identical rings", h)
		}
	}
}

// TestRingBalance enforces the imbalance bound the default vnode count
// is chosen for: across many keys, the most loaded replica carries at
// most 2× the mean share at 128 vnodes.
func TestRingBalance(t *testing.T) {
	for _, nodes := range []int{2, 3, 5, 8} {
		r, err := NewRing(names(nodes), 128)
		if err != nil {
			t.Fatal(err)
		}
		const keys = 200000
		counts := make([]int, nodes)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < keys; i++ {
			counts[r.Owner(MixFingerprint(rng.Uint64()))]++
		}
		mean := float64(keys) / float64(nodes)
		for node, c := range counts {
			if ratio := float64(c) / mean; ratio > 2.0 {
				t.Errorf("%d nodes: replica %d owns %.2fx the mean share (counts %v)", nodes, node, ratio, counts)
			}
			if c == 0 {
				t.Errorf("%d nodes: replica %d owns no keys", nodes, node)
			}
		}
	}
}

// TestRingMinimalMovement: growing the fleet from N to N+1 replicas may
// move keys only TO the new replica — any key that stays on an old
// replica must keep its old owner — and the moved fraction is about
// 1/(N+1), not a reshuffle.
func TestRingMinimalMovement(t *testing.T) {
	const n = 4
	before, err := NewRing(names(n), 128)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(names(n+1), 128)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 100000
	moved := 0
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < keys; i++ {
		h := MixFingerprint(rng.Uint64())
		was, is := before.Owner(h), after.Owner(h)
		if was == is {
			continue
		}
		if is != n {
			t.Fatalf("hash %#x moved from replica %d to old replica %d; joins must only move keys to the joiner", h, was, is)
		}
		moved++
	}
	frac := float64(moved) / keys
	ideal := 1.0 / float64(n+1)
	if frac < ideal/2 || frac > ideal*2 {
		t.Errorf("join moved %.1f%% of keys, want about %.1f%%", 100*frac, 100*ideal)
	}

	// Leave is the mirror image: removing a replica may only move the
	// leaver's keys, spread across the survivors.
	movedOnLeave := 0
	rng = rand.New(rand.NewSource(7))
	for i := 0; i < keys; i++ {
		h := MixFingerprint(rng.Uint64())
		was, is := after.Owner(h), before.Owner(h)
		if was == is {
			continue
		}
		if was != n {
			t.Fatalf("hash %#x owned by surviving replica %d moved on leave", h, was)
		}
		movedOnLeave++
	}
	if movedOnLeave != moved {
		t.Errorf("leave moved %d keys, join moved %d; the transitions must mirror", movedOnLeave, moved)
	}
}

// TestRingSequence: the preference order holds distinct replicas, starts
// at the owner, and is capped by both max and the fleet size.
func TestRingSequence(t *testing.T) {
	r, err := NewRing(names(4), 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		h := rng.Uint64()
		seq := r.Sequence(h, nil, 4)
		if len(seq) != 4 {
			t.Fatalf("sequence length %d, want 4", len(seq))
		}
		if seq[0] != r.Owner(h) {
			t.Fatalf("sequence head %d != owner %d", seq[0], r.Owner(h))
		}
		seen := map[int]bool{}
		for _, node := range seq {
			if node < 0 || node >= 4 || seen[node] {
				t.Fatalf("bad sequence %v", seq)
			}
			seen[node] = true
		}
		if short := r.Sequence(h, nil, 2); len(short) != 2 || short[0] != seq[0] || short[1] != seq[1] {
			t.Fatalf("capped sequence %v disagrees with prefix of %v", short, seq)
		}
		if over := r.Sequence(h, nil, 99); len(over) != 4 {
			t.Fatalf("max beyond fleet size returned %d entries", len(over))
		}
	}
}

// TestRingManyNodes exercises the >64-replica path (map-based dedup).
func TestRingManyNodes(t *testing.T) {
	r, err := NewRing(names(70), 16)
	if err != nil {
		t.Fatal(err)
	}
	seq := r.Sequence(12345, nil, 70)
	if len(seq) != 70 {
		t.Fatalf("sequence covered %d of 70 replicas", len(seq))
	}
	seen := map[int]bool{}
	for _, n := range seq {
		if seen[n] {
			t.Fatalf("duplicate replica %d in sequence", n)
		}
		seen[n] = true
	}
}

func TestMixFingerprint(t *testing.T) {
	if MixFingerprint(1) == MixFingerprint(2) {
		t.Error("adjacent fingerprints collide after mixing")
	}
	if MixFingerprint(42) != MixFingerprint(42) {
		t.Error("mixing is not deterministic")
	}
	// Sequential fingerprints must land all over the ring, not clump:
	// check the mixed values' top bytes spread across the space.
	buckets := make([]int, 16)
	for i := uint64(0); i < 16000; i++ {
		buckets[MixFingerprint(i)>>60]++
	}
	for b, c := range buckets {
		if c == 0 {
			t.Errorf("bucket %d empty: sequential inputs do not diffuse", b)
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r, err := NewRing(names(8), 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owner(MixFingerprint(uint64(i)))
	}
}
