package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/taskgraph"
)

// Config tunes a Proxy. Replicas is required; everything else has a
// production default.
type Config struct {
	// Replicas are the dtserve base URLs (e.g. "http://127.0.0.1:8080"),
	// in fleet order. The list is fixed for the proxy's lifetime; health
	// ejection/readmission varies routing within it.
	Replicas []string
	// VNodes is the consistent-hash points per replica; <= 0 means 128.
	VNodes int
	// HealthInterval is the probe period; <= 0 means 250ms.
	HealthInterval time.Duration
	// HealthTimeout bounds one probe; <= 0 means 1s.
	HealthTimeout time.Duration
	// FailAfter ejects a replica after this many consecutive failed
	// probes; <= 0 means 2. (Requests also count: any transport error on
	// a forward marks a probe-equivalent failure immediately.)
	FailAfter int
	// ReadmitAfter readmits an ejected replica after this many
	// consecutive successful probes; <= 0 means 2.
	ReadmitAfter int
	// HedgeDelay controls interactive-lane request hedging:
	//   > 0 — hedge to the next ring replica after this fixed delay;
	//   = 0 — derive the delay from the proxy's own observed p99
	//         (armed only once HedgeMinSamples responses are in, so a
	//         cold fleet never hedges on noise);
	//   < 0 — hedging disabled.
	HedgeDelay time.Duration
	// HedgeMinSamples gates auto hedging; <= 0 means 50.
	HedgeMinSamples int
	// HedgeMin/HedgeMax clamp the auto-derived delay; defaults 2ms / 2s.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// RequestTimeout bounds one forwarded attempt; <= 0 means 120s
	// (solves are allowed to be slow; the client's own deadline usually
	// governs).
	RequestTimeout time.Duration
	// TraceSample records one routed request in every TraceSample to the
	// /debug/requests ring (0 disables sampling; ?trace=1 still works on
	// the replica, which owns body traces).
	TraceSample int
	// Logger receives structured routing/health logs; nil discards.
	Logger *slog.Logger
}

// Stats is the /statsz payload of dtproxy.
type Stats struct {
	Requests     uint64 `json:"requests"`
	BadRequests  uint64 `json:"bad_requests"`
	Unrouted     uint64 `json:"unrouted"` // no healthy replica answered: 502/503
	Reroutes     uint64 `json:"reroutes"` // transport failures retried on the next ring replica
	Hedges       uint64 `json:"hedges"`
	HedgeWins    uint64 `json:"hedge_wins"`
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
	// HedgeDelayNS is the hedge delay currently in force: the fixed
	// configured value, the auto-derived p99 clamp, or 0 while auto
	// hedging is still unarmed (or hedging is disabled).
	HedgeDelayNS int64             `json:"hedge_delay_ns"`
	Routed       map[string]uint64 `json:"routed"`
	Healthy      map[string]bool   `json:"healthy"`
}

// replica is one fleet member's routing state. The health fields are
// owned by the probe loop plus forward-failure reports, under p.mu.
type replica struct {
	name    string // base URL, also the metrics label
	healthy bool
	fails   int // consecutive failed probes (or forward transport errors)
	oks     int // consecutive successful probes while ejected
	routed  uint64
}

// Proxy is the routing front. Create with New, expose with Handler, stop
// with Close.
type Proxy struct {
	cfg      Config
	ring     *Ring
	client   *http.Client
	latency  *obs.Histogram // end-to-end proxied interactive latency: the p99 source
	stageLat map[string]*obs.Histogram
	sampler  obs.Sampler
	ringBuf  *obs.Ring
	done     chan struct{}
	wg       sync.WaitGroup

	mu       sync.Mutex
	replicas []*replica
	stats    Stats
	rr       int // round-robin cursor for fingerprint-less requests
}

// canonScratch pools the zero-copy canonicalizer used to fingerprint
// request graphs for routing.
var canonPool = sync.Pool{New: func() any { return new(taskgraph.Canonicalizer) }}

// New validates cfg, builds the ring and starts the health prober.
// Replicas start healthy (optimistic) and the first probe round corrects
// that within HealthInterval.
func New(cfg Config) (*Proxy, error) {
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 250 * time.Millisecond
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.ReadmitAfter <= 0 {
		cfg.ReadmitAfter = 2
	}
	if cfg.HedgeMinSamples <= 0 {
		cfg.HedgeMinSamples = 50
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = 2 * time.Millisecond
	}
	if cfg.HedgeMax <= 0 {
		cfg.HedgeMax = 2 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 120 * time.Second
	}
	for i, r := range cfg.Replicas {
		cfg.Replicas[i] = strings.TrimRight(r, "/")
	}
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:  cfg,
		ring: ring,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}},
		latency:  obs.NewHistogram(obs.LatencyBuckets),
		stageLat: make(map[string]*obs.Histogram, len(obs.ProxyStages)),
		ringBuf:  obs.NewRing(0, 0),
		done:     make(chan struct{}),
	}
	for _, st := range obs.ProxyStages {
		p.stageLat[st] = obs.NewHistogram(obs.QueueBuckets)
	}
	p.sampler.SetEvery(cfg.TraceSample)
	p.replicas = make([]*replica, len(cfg.Replicas))
	for i, name := range cfg.Replicas {
		p.replicas[i] = &replica{name: name, healthy: true}
	}
	p.wg.Add(1)
	go p.healthLoop()
	return p, nil
}

// Close stops the health prober and drops idle upstream connections.
// In-flight forwards finish on their own contexts.
func (p *Proxy) Close() {
	close(p.done)
	p.wg.Wait()
	p.client.CloseIdleConnections()
}

// Handler returns the proxy's HTTP handler: its own health/stats/metrics
// endpoints plus the routing front for everything else.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /statsz", p.handleStatsz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.ringBuf.Snapshot())
	})
	mux.HandleFunc("/", p.route)
	return mux
}

// Stats snapshots the proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Routed = make(map[string]uint64, len(p.replicas))
	st.Healthy = make(map[string]bool, len(p.replicas))
	for _, rep := range p.replicas {
		st.Routed[rep.name] = rep.routed
		st.Healthy[rep.name] = rep.healthy
	}
	st.HedgeDelayNS = int64(p.hedgeDelayLocked())
	return st
}

// hedgeDelayLocked resolves the hedge delay in force; 0 means "do not
// hedge right now". Callers hold p.mu or tolerate a stale read.
func (p *Proxy) hedgeDelayLocked() time.Duration {
	if p.cfg.HedgeDelay < 0 {
		return 0
	}
	if p.cfg.HedgeDelay > 0 {
		return p.cfg.HedgeDelay
	}
	snap := p.latency.Snapshot()
	if snap.Count < uint64(p.cfg.HedgeMinSamples) {
		return 0
	}
	d := histQuantile(snap, 0.99)
	if d < p.cfg.HedgeMin {
		d = p.cfg.HedgeMin
	}
	if d > p.cfg.HedgeMax {
		d = p.cfg.HedgeMax
	}
	return d
}

// histQuantile interpolates quantile q from a cumulative histogram
// snapshot, prometheus histogram_quantile style: linear within the
// bucket holding the rank, the last finite bound for the +Inf bucket.
func histQuantile(s obs.HistSnapshot, q float64) time.Duration {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var prevCum uint64
	lower := 0.0
	for i, ub := range s.Bounds {
		cum := s.Cum[i]
		if float64(cum) >= rank {
			span := float64(cum - prevCum)
			frac := 1.0
			if span > 0 {
				frac = (rank - float64(prevCum)) / span
			}
			return time.Duration((lower + (ub-lower)*frac) * float64(time.Second))
		}
		prevCum = cum
		lower = ub
	}
	return time.Duration(s.Bounds[len(s.Bounds)-1] * float64(time.Second))
}

// healthLoop probes every replica each interval, ejecting after
// FailAfter consecutive failures and readmitting after ReadmitAfter
// consecutive successes. A draining dtserve fails its own /healthz, so
// drains eject cleanly without a timeout.
func (p *Proxy) healthLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
		}
		var wg sync.WaitGroup
		for _, rep := range p.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				p.report(rep, p.probe(rep), true)
			}(rep)
		}
		wg.Wait()
	}
}

func (p *Proxy) probe(rep *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.name+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// report folds one health observation (a probe, or fromProbe=false for a
// forward-attempt transport result) into the replica's streaks and
// applies the ejection/readmission transitions.
func (p *Proxy) report(rep *replica, ok, fromProbe bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ok {
		rep.fails = 0
		if !rep.healthy {
			// Only probes readmit: one lucky forwarded request through a
			// flapping replica should not beat the probe streak.
			if fromProbe {
				rep.oks++
				if rep.oks >= p.cfg.ReadmitAfter {
					rep.healthy = true
					rep.oks = 0
					p.stats.Readmissions++
					if p.cfg.Logger != nil {
						p.cfg.Logger.Info("proxy readmit", "replica", rep.name)
					}
				}
			}
		}
		return
	}
	rep.oks = 0
	rep.fails++
	if rep.healthy && rep.fails >= p.cfg.FailAfter {
		rep.healthy = false
		p.stats.Ejections++
		if p.cfg.Logger != nil {
			p.cfg.Logger.Warn("proxy eject", "replica", rep.name, "fails", rep.fails)
		}
	}
}

// candidates returns the healthy replicas in ring-preference order for
// key hash h — buf[0] is the key's owner among the healthy set, the rest
// are its fallback/hedge targets. With no fingerprint (hasKey false) the
// order is a round-robin rotation of the healthy set instead.
func (p *Proxy) candidates(h uint64, hasKey bool) []*replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*replica, 0, len(p.replicas))
	if hasKey {
		seq := p.ring.Sequence(h, make([]int, 0, len(p.replicas)), len(p.replicas))
		for _, idx := range seq {
			if p.replicas[idx].healthy {
				out = append(out, p.replicas[idx])
			}
		}
		return out
	}
	p.rr++
	for i := 0; i < len(p.replicas); i++ {
		rep := p.replicas[(p.rr+i)%len(p.replicas)]
		if rep.healthy {
			out = append(out, rep)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	any := false
	for _, rep := range p.replicas {
		if rep.healthy {
			any = true
			break
		}
	}
	p.mu.Unlock()
	if !any {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy replicas"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (p *Proxy) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.Stats())
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := p.Stats()
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(&b, "# HELP dtproxy_build_info Build identity; the value is always 1.\n# TYPE dtproxy_build_info gauge\n")
	fmt.Fprintf(&b, "dtproxy_build_info{version=%q,go_version=%q} 1\n", buildinfo.Version, buildinfo.GoVersion())
	counter("dtproxy_requests_total", "Requests the routing front accepted.", st.Requests)
	counter("dtproxy_bad_requests_total", "Requests refused before routing (unreadable or oversized bodies).", st.BadRequests)
	counter("dtproxy_unrouted_total", "Requests no healthy replica could answer (502/503).", st.Unrouted)
	counter("dtproxy_reroutes_total", "Forward attempts retried on the next ring replica after a transport failure.", st.Reroutes)
	counter("dtproxy_hedges_total", "Interactive requests hedged to a second replica after the hedge delay.", st.Hedges)
	counter("dtproxy_hedge_wins_total", "Hedged attempts that answered before the primary.", st.HedgeWins)
	counter("dtproxy_ejections_total", "Replicas ejected from routing after consecutive health failures.", st.Ejections)
	counter("dtproxy_readmissions_total", "Ejected replicas readmitted after consecutive healthy probes.", st.Readmissions)
	fmt.Fprintf(&b, "# HELP dtproxy_hedge_delay_seconds Hedge delay currently in force (0 while unarmed or disabled).\n# TYPE dtproxy_hedge_delay_seconds gauge\n")
	fmt.Fprintf(&b, "dtproxy_hedge_delay_seconds %g\n", float64(st.HedgeDelayNS)/1e9)

	names := make([]string, 0, len(st.Routed))
	for name := range st.Routed {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "# HELP dtproxy_routed_total Requests routed per replica (winning attempt).\n# TYPE dtproxy_routed_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "dtproxy_routed_total{replica=%q} %d\n", name, st.Routed[name])
	}
	fmt.Fprintf(&b, "# HELP dtproxy_replica_healthy 1 while the replica is in routing rotation.\n# TYPE dtproxy_replica_healthy gauge\n")
	for _, name := range names {
		v := 0
		if st.Healthy[name] {
			v = 1
		}
		fmt.Fprintf(&b, "dtproxy_replica_healthy{replica=%q} %d\n", name, v)
	}

	fmt.Fprintf(&b, "# HELP dtproxy_request_duration_seconds End-to-end latency of proxied interactive schedule calls.\n# TYPE dtproxy_request_duration_seconds histogram\n")
	p.latency.Snapshot().WriteProm(&b, "dtproxy_request_duration_seconds", "")
	fmt.Fprintf(&b, "# HELP dtproxy_stage_duration_seconds Proxy-side stage latency (proxy_route: fingerprint+ring decision; hedge: hedge fire to winner).\n# TYPE dtproxy_stage_duration_seconds histogram\n")
	for _, stage := range obs.ProxyStages {
		p.stageLat[stage].Snapshot().WriteProm(&b, "dtproxy_stage_duration_seconds", fmt.Sprintf("stage=%q", stage))
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// maxBodyBytes mirrors the replicas' own request-body cap.
const maxBodyBytes = 32 << 20

// route is the front door for everything the proxy does not serve
// itself. Schedule calls are fingerprint-routed; batch calls are routed
// by their first member's graph and streamed through; anything else
// (e.g. GET /v1/solvers) goes to any healthy replica.
func (p *Proxy) route(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	p.mu.Lock()
	p.stats.Requests++
	p.mu.Unlock()

	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			p.mu.Lock()
			p.stats.BadRequests++
			p.mu.Unlock()
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "proxy: read body: " + err.Error()})
			return
		}
	}

	var tr *obs.Trace
	if p.sampler.Sample() {
		tr = obs.NewTrace(obs.NewID(), t0)
		defer func() {
			td := tr.Snapshot(time.Since(t0))
			p.ringBuf.Add(td)
			obs.Release(tr)
		}()
	}

	// Routing decision: fingerprint the graph with the zero-copy
	// canonicalizer (no *Graph, no full decode) and walk the ring. A body
	// the canonicalizer rejects still routes — to any healthy replica —
	// so the replica owns the canonical 400 message.
	routeStart := time.Now()
	fp, hasKey, lane, single := p.fingerprint(r, body)
	cands := p.candidates(MixFingerprint(fp), hasKey)
	routeDur := time.Since(routeStart)
	p.stageLat[obs.StageProxyRoute].Observe(routeDur)
	tr.Observe(obs.StageProxyRoute, routeStart, routeDur)
	if tr != nil {
		tr.Annotate("path", r.URL.Path)
		if hasKey {
			tr.Annotate("fp", fmt.Sprintf("%016x", fp))
		}
	}
	if len(cands) == 0 {
		p.mu.Lock()
		p.stats.Unrouted++
		p.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "proxy: no healthy replicas"})
		return
	}

	if r.Method == http.MethodPost && r.URL.Path == "/v1/schedule/batch" {
		p.stream(w, r, body, cands)
		return
	}
	p.forward(w, r, body, cands, single && lane != "batch", tr, t0)
}

// fingerprint extracts the routing key from the request: the graph
// fingerprint for schedule and batch calls (a batch routes by its first
// member, keeping identical batches on one replica). single reports a
// single-schedule call — the only shape eligible for hedging.
func (p *Proxy) fingerprint(r *http.Request, body []byte) (fp uint64, ok bool, lane string, single bool) {
	if r.Method != http.MethodPost {
		return 0, false, "", false
	}
	switch r.URL.Path {
	case "/v1/schedule":
		var probe struct {
			Graph json.RawMessage `json:"graph"`
			Lane  string          `json:"lane"`
		}
		if json.Unmarshal(body, &probe) != nil || len(probe.Graph) == 0 {
			return 0, false, "", true
		}
		c := canonPool.Get().(*taskgraph.Canonicalizer)
		defer canonPool.Put(c)
		if c.Parse(probe.Graph) != nil {
			return 0, false, probe.Lane, true
		}
		return c.Fingerprint(), true, probe.Lane, true
	case "/v1/schedule/batch":
		var probe struct {
			Requests []struct {
				Graph json.RawMessage `json:"graph"`
			} `json:"requests"`
		}
		if json.Unmarshal(body, &probe) != nil || len(probe.Requests) == 0 || len(probe.Requests[0].Graph) == 0 {
			return 0, false, "", false
		}
		c := canonPool.Get().(*taskgraph.Canonicalizer)
		defer canonPool.Put(c)
		if c.Parse(probe.Requests[0].Graph) != nil {
			return 0, false, "", false
		}
		return c.Fingerprint(), true, "batch", false
	default:
		return 0, false, "", false
	}
}

// tryResult is one forwarded attempt's outcome.
type tryResult struct {
	rep    *replica
	status int
	header http.Header
	body   []byte
	err    error
	hedged bool
}

// forward answers a buffered call (single schedule, or any non-batch
// route): attempt the ring owner, hedge to the next ring replica after
// the armed delay when eligible, and fall back across the remaining
// candidates on transport errors. The first error-free attempt wins;
// losers are cancelled.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, body []byte,
	cands []*replica, hedgeable bool, tr *obs.Trace, t0 time.Time) {

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ch := make(chan tryResult, len(cands))
	attempt := func(rep *replica, hedged bool) {
		go func() {
			res := p.try(ctx, rep, r, body)
			res.hedged = hedged
			ch <- res
		}()
	}

	var hedgeTimer *time.Timer
	var hedgeCh <-chan time.Time
	var hedgeFired time.Time
	if hedgeable && len(cands) > 1 {
		if d := p.hedgeDelay(); d > 0 {
			hedgeTimer = time.NewTimer(d)
			hedgeCh = hedgeTimer.C
			defer hedgeTimer.Stop()
		}
	}

	attempt(cands[0], false)
	next, outstanding := 1, 1
	var win tryResult
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil {
				win = res
				goto done
			}
			// Transport failure: report it to health, move to the next
			// candidate if no other attempt is still in flight.
			p.report(res.rep, false, false)
			if outstanding == 0 {
				if next >= len(cands) {
					p.mu.Lock()
					p.stats.Unrouted++
					p.mu.Unlock()
					writeJSON(w, http.StatusBadGateway,
						map[string]string{"error": "proxy: all replicas failed: " + res.err.Error()})
					return
				}
				p.mu.Lock()
				p.stats.Reroutes++
				p.mu.Unlock()
				attempt(cands[next], false)
				next++
				outstanding++
			}
		case <-hedgeCh:
			hedgeCh = nil
			if next < len(cands) {
				hedgeFired = time.Now()
				p.mu.Lock()
				p.stats.Hedges++
				p.mu.Unlock()
				attempt(cands[next], true)
				next++
				outstanding++
			}
		case <-ctx.Done():
			writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"error": "proxy: client gone: " + ctx.Err().Error()})
			return
		}
	}

done:
	cancel() // losers stop burning the upstream
	if win.hedged {
		p.mu.Lock()
		p.stats.HedgeWins++
		p.mu.Unlock()
	}
	if !hedgeFired.IsZero() {
		hedgeDur := time.Since(hedgeFired)
		p.stageLat[obs.StageHedge].Observe(hedgeDur)
		tr.Observe(obs.StageHedge, hedgeFired, hedgeDur)
	}
	p.mu.Lock()
	win.rep.routed++
	p.mu.Unlock()
	if tr != nil {
		tr.Annotate("replica", win.rep.name)
		if win.hedged {
			tr.Annotate("hedged", "winner")
		}
	}
	copyHeaders(w.Header(), win.header)
	w.Header().Set("X-DTProxy-Replica", win.rep.name)
	if win.hedged {
		w.Header().Set("X-DTProxy-Hedged", "1")
	}
	w.WriteHeader(win.status)
	_, _ = w.Write(win.body)
	if r.URL.Path == "/v1/schedule" {
		p.latency.Observe(time.Since(t0))
	}
}

// hedgeDelay is hedgeDelayLocked without requiring the caller to hold
// p.mu (the histogram snapshot takes its own lock).
func (p *Proxy) hedgeDelay() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hedgeDelayLocked()
}

// try performs one buffered forward attempt.
func (p *Proxy) try(ctx context.Context, rep *replica, r *http.Request, body []byte) tryResult {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.RequestTimeout)
	defer cancel()
	url := rep.name + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
	if err != nil {
		return tryResult{rep: rep, err: err}
	}
	copyHeaders(req.Header, r.Header)
	resp, err := p.client.Do(req)
	if err != nil {
		return tryResult{rep: rep, err: err}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes+1))
	if err != nil {
		return tryResult{rep: rep, err: err}
	}
	return tryResult{rep: rep, status: resp.StatusCode, header: resp.Header, body: respBody}
}

// stream forwards a batch call and streams the response through (NDJSON
// batches flush item by item; buffered batches pass through unchanged).
// Transport errors before the first response byte fall back to the next
// candidate; once bytes have flowed the stream is committed.
func (p *Proxy) stream(w http.ResponseWriter, r *http.Request, body []byte, cands []*replica) {
	var lastErr error
	for i, rep := range cands {
		if i > 0 {
			p.mu.Lock()
			p.stats.Reroutes++
			p.mu.Unlock()
		}
		ctx, cancel := context.WithTimeout(r.Context(), p.cfg.RequestTimeout)
		url := rep.name + r.URL.Path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
		if err != nil {
			cancel()
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		copyHeaders(req.Header, r.Header)
		resp, err := p.client.Do(req)
		if err != nil {
			cancel()
			p.report(rep, false, false)
			lastErr = err
			continue
		}
		copyHeaders(w.Header(), resp.Header)
		w.Header().Set("X-DTProxy-Replica", rep.name)
		w.WriteHeader(resp.StatusCode)
		fl, _ := w.(http.Flusher)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					break
				}
				if fl != nil {
					fl.Flush()
				}
			}
			if rerr != nil {
				break
			}
		}
		resp.Body.Close()
		cancel()
		p.mu.Lock()
		rep.routed++
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	p.stats.Unrouted++
	p.mu.Unlock()
	msg := "proxy: all replicas failed"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	writeJSON(w, http.StatusBadGateway, map[string]string{"error": msg})
}

// hopHeaders are the hop-by-hop headers a proxy must not forward.
var hopHeaders = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Connection": true,
	"Te": true, "Trailer": true, "Transfer-Encoding": true, "Upgrade": true,
	"Content-Length": true, // recomputed for the re-framed body
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopHeaders[k] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}
