package machsim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/programs"
	"repro/internal/topology"
)

// TestInterruptAbortsSimulation covers the Options.Interrupt hook the
// solver portfolio uses for shared deadlines.
func TestInterruptAbortsSimulation(t *testing.T) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Graph: programs.NewtonEuler(), Topo: topo, Comm: topology.DefaultCommParams()}

	sentinel := errors.New("deadline hit")
	calls := 0
	_, err = Run(m, greedyPolicy{}, Options{Interrupt: func() error {
		calls++
		if calls > 3 {
			return sentinel
		}
		return nil
	}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Errorf("error %q does not mention the interruption", err)
	}

	// A nil-returning hook must not perturb the run.
	res, err := Run(m, greedyPolicy{}, Options{Interrupt: func() error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(m, greedyPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != base.Makespan {
		t.Errorf("interrupt hook changed the makespan: %g vs %g", res.Makespan, base.Makespan)
	}
}
