package machsim

import (
	"reflect"
	"testing"

	"repro/internal/programs"
	"repro/internal/topology"
)

// poolGreedy is greedyPolicy with a reusable output buffer, so warm-run
// allocation tests measure the simulator, not the test policy.
type poolGreedy struct{ buf []Assignment }

func (p *poolGreedy) Name() string { return "greedy" }

func (p *poolGreedy) Assign(ep *Epoch) []Assignment {
	out := p.buf[:0]
	n := len(ep.Ready)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	for k := 0; k < n; k++ {
		out = append(out, Assignment{Task: ep.Ready[k], Proc: ep.Idle[k]})
	}
	p.buf = out
	return out
}

// TestSimulatorWarmRunZeroAllocs is the arena contract: once a simulator
// is bound and has completed one run, further runs of the same model touch
// the heap zero times (given a non-allocating policy).
func TestSimulatorWarmRunZeroAllocs(t *testing.T) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"gantt", Options{RecordGantt: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := NewSimulator(Model{Graph: programs.NewtonEuler(), Topo: topo, Comm: topology.DefaultCommParams()}, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			pol := &poolGreedy{}
			if _, err := sim.Run(pol); err != nil { // warm the buffers
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := sim.Run(pol); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm simulator Run allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// TestSimulatorWarmBusRunZeroAllocs covers the shared-medium path.
func TestSimulatorWarmBusRunZeroAllocs(t *testing.T) {
	bus, err := topology.Bus(8)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(Model{Graph: programs.FFT(), Topo: bus, Comm: topology.DefaultCommParams()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol := &poolGreedy{}
	if _, err := sim.Run(pol); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := sim.Run(pol); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm bus Run allocates %.1f times, want 0", allocs)
	}
}

func arenaModels(t *testing.T) []Model {
	t.Helper()
	hc3, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	hc2, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := topology.Ring(9)
	if err != nil {
		t.Fatal(err)
	}
	bus, err := topology.Bus(8)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	return []Model{
		{Graph: programs.NewtonEuler(), Topo: hc3, Comm: comm},
		{Graph: programs.FFT(), Topo: ring, Comm: comm},
		{Graph: programs.GaussJordan(), Topo: bus, Comm: comm},
		{Graph: programs.MatrixMultiply(), Topo: hc2, Comm: comm},
		{Graph: programs.GrahamAnomaly(), Topo: hc2, Comm: comm.NoComm()},
		{Graph: programs.FFT(), Topo: hc3, Comm: comm.NoComm()},
	}
}

// TestArenaMixedSizeReuseDeterministic rebinds one arena across 100 runs
// of mixed graph/topology/comm combinations (growing and shrinking the
// buffers) and requires every result to be identical to a fresh
// simulator's on the same model.
func TestArenaMixedSizeReuseDeterministic(t *testing.T) {
	models := arenaModels(t)
	arena := NewArena()
	for run := 0; run < 100; run++ {
		m := models[run%len(models)]
		opts := Options{RecordGantt: run%3 == 0}
		if err := arena.Bind(m, opts); err != nil {
			t.Fatalf("run %d: bind: %v", run, err)
		}
		got, err := arena.Run(&poolGreedy{})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		fresh, err := NewSimulator(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run(&poolGreedy{})
		if err != nil {
			t.Fatalf("run %d fresh: %v", run, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d (%s on %s): reused arena diverged from fresh simulator\n got: %+v\nwant: %+v",
				run, m.Graph.Name(), m.Topo.Name(), got, want)
		}
	}
}

// TestArenaRecoversAfterInterrupt asserts that an aborted run leaves no
// state behind: the next Run on the same arena matches a fresh simulator.
func TestArenaRecoversAfterInterrupt(t *testing.T) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Graph: programs.NewtonEuler(), Topo: topo, Comm: topology.DefaultCommParams()}
	arena := NewArena()
	calls := 0
	err = arena.Bind(m, Options{Interrupt: func() error {
		calls++
		if calls > 5 {
			return errAbort
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arena.Run(&poolGreedy{}); err == nil {
		t.Fatal("interrupted run did not fail")
	}
	if err := arena.Bind(m, Options{}); err != nil {
		t.Fatal(err)
	}
	got, err := arena.Run(&poolGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(m, &poolGreedy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan || got.Messages != want.Messages || !reflect.DeepEqual(got.Finish, want.Finish) {
		t.Fatalf("arena diverged after aborted run: makespan %g vs %g", got.Makespan, want.Makespan)
	}
}

var errAbort = errInterrupt{}

type errInterrupt struct{}

func (errInterrupt) Error() string { return "abort" }

// TestResultClone asserts Clone detaches every mutable field.
func TestResultClone(t *testing.T) {
	topo, err := topology.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Graph: programs.FFT(), Topo: topo, Comm: topology.DefaultCommParams()}
	sim, err := NewSimulator(m, Options{RecordGantt: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(&poolGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	clone := res.Clone()
	if !reflect.DeepEqual(res, clone) {
		t.Fatal("clone differs from original")
	}
	// Mutating the arena (another run) must not disturb the clone.
	snapshot := clone.Clone()
	if _, err := sim.Run(&poolGreedy{}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clone, snapshot) {
		t.Fatal("clone aliases arena buffers")
	}
	clone.Start[0] = -99
	clone.LinkBusy[[2]int{0, 1}] = -99
	if res.Start[0] == -99 {
		t.Error("Start not detached")
	}
}
