package machsim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/taskgraph"
	"repro/internal/topology"
)

const defaultMaxEvents = 50_000_000

// Simulator is a reusable discrete-event simulation arena. It executes one
// taskgraph on one machine under one policy per Run, and every piece of
// per-run state — link occupancy tables, ready/idle sets, the event heap,
// in-flight messages, epoch and Gantt buffers, the Result itself — lives in
// simulator-owned buffers that are reset, not reallocated, between runs.
//
// Lifecycle:
//
//	sim := machsim.NewArena()            // or NewSimulator(model, opts)
//	sim.Bind(model, opts)                // rebind to a (new) model; grows buffers
//	res, err := sim.Run(policy)          // reset + simulate; res is arena-owned
//
// A warm Run (same model, buffers at peak size) performs zero heap
// allocations, provided the policy itself does not allocate. The returned
// Result and its slices are owned by the simulator and valid only until
// the next Bind or Run call; use Result.Clone to retain one. The
// package-level Run helper draws an arena from an internal pool and
// returns a detached clone, so existing callers keep value semantics.
//
// A Simulator is not safe for concurrent use; give each goroutine its own.
type Simulator struct {
	model Model
	opts  Options
	np    int // processors
	nt    int // tasks

	now     float64
	seq     int64
	queue   eventHeap
	tracker *taskgraph.ReadyTracker

	procs []procState

	// Link occupancy is a flat row-major table indexed low*np+high over
	// canonical links (mirroring core.packet's commCost layout); touched
	// records which entries carried traffic so reset and result-building
	// cost O(links used), not O(np²). Bus topologies serialize on the
	// dedicated shared-medium scalars instead.
	linkFree []float64
	linkBusy []float64
	linkSeen []bool
	touched  []int32
	busFree  float64
	busBusy  float64
	busSeen  bool

	procOf   []int     // processor of each assigned task, -1 before assignment
	startAt  []float64 // computation start time of each task, -1 before start
	finishAt []float64 // completion time of each task, -1 before completion

	epochs   []EpochStat
	gantt    []Interval
	messages int
	xferTime float64
	ovhTime  float64
	forced   int
	events   int

	levels   []float64 // for the forced-assignment fallback
	lvlDeg   []int32   // scratch: pending successor counts
	lvlStack []int32   // scratch: reverse-Kahn worklist

	// Reusable epoch workspace: the Epoch value handed to the policy, the
	// ready/idle index buffers, and generation-stamped marks replacing the
	// per-epoch validation maps (an entry is "set" iff its stamp equals the
	// current generation, so clearing is a counter increment).
	ep        Epoch
	readyBuf  []taskgraph.TaskID
	idleBuf   []int
	markGen   int64
	readyMark []int64 // per task
	idleMark  []int64 // per proc
	seenTask  []int64 // per task
	seenProc  []int64 // per proc

	// Message slab: messages are fixed-size records handed out by cursor
	// and reclaimed wholesale on reset, so warm runs allocate none.
	msgs    []*message
	msgNext int

	ganttSort ganttSorter

	// Arena-owned result, rebuilt in place by each Run.
	res         Result
	resProcs    []ProcStat
	resLinkBusy map[[2]int]float64
}

// procState tracks one processor.
type procState struct {
	idle bool
	// ovhBusyUntil is the time until which the processor is occupied by
	// message-handling overheads (σ/τ). Overheads serialize.
	ovhBusyUntil float64
	assigned     taskgraph.TaskID // task held by this processor, None if idle
	scheduled    bool             // start/finish computed (all input messages delivered)
	runStart     float64
	runFinish    float64
	runLoad      float64
	finishSeq    int64
	pendingMsgs  int
	stat         ProcStat
}

// ganttSorter orders intervals by (Proc, Start, End) without the per-call
// closure allocation of sort.Slice.
type ganttSorter struct{ a []Interval }

func (g *ganttSorter) Len() int      { return len(g.a) }
func (g *ganttSorter) Swap(i, j int) { g.a[i], g.a[j] = g.a[j], g.a[i] }
func (g *ganttSorter) Less(i, j int) bool {
	if g.a[i].Proc != g.a[j].Proc {
		return g.a[i].Proc < g.a[j].Proc
	}
	if g.a[i].Start != g.a[j].Start {
		return g.a[i].Start < g.a[j].Start
	}
	return g.a[i].End < g.a[j].End
}

// NewArena returns an empty, unbound simulator arena. Bind attaches a
// model before the first Run.
func NewArena() *Simulator {
	return &Simulator{resLinkBusy: make(map[[2]int]float64)}
}

// NewSimulator validates the model and prepares a bound simulator.
func NewSimulator(m Model, opts Options) (*Simulator, error) {
	s := NewArena()
	if err := s.Bind(m, opts); err != nil {
		return nil, err
	}
	return s, nil
}

// Bind validates the model and (re)binds the arena to it, growing buffers
// as needed; state from a previous model is discarded. Binding is the cold
// path — it may allocate (level computation, first-time buffer growth) —
// while subsequent Runs against the same binding do not.
func (s *Simulator) Bind(m Model, opts Options) error {
	if err := m.Validate(); err != nil {
		return err
	}
	s.model = m
	s.opts = opts
	if s.opts.MaxEvents == 0 {
		s.opts.MaxEvents = defaultMaxEvents
	}
	s.np = m.Topo.N()
	s.nt = m.Graph.NumTasks()
	if err := s.computeLevels(); err != nil {
		return err
	}
	if s.tracker == nil {
		s.tracker = taskgraph.NewReadyTracker(m.Graph)
	} else {
		s.tracker.Rebind(m.Graph)
	}
	s.procs = growSlice(s.procs, s.np)
	s.procOf = growSlice(s.procOf, s.nt)
	s.startAt = growSlice(s.startAt, s.nt)
	s.finishAt = growSlice(s.finishAt, s.nt)
	s.readyMark = growSlice(s.readyMark, s.nt)
	s.seenTask = growSlice(s.seenTask, s.nt)
	s.idleMark = growSlice(s.idleMark, s.np)
	s.seenProc = growSlice(s.seenProc, s.np)
	s.linkFree = growSlice(s.linkFree, s.np*s.np)
	s.linkBusy = growSlice(s.linkBusy, s.np*s.np)
	s.linkSeen = growSlice(s.linkSeen, s.np*s.np)
	// A previous binding's marks and link state may linger in the grown
	// buffers; wipe them so stale stamps cannot collide.
	for i := range s.linkSeen {
		s.linkFree[i], s.linkBusy[i], s.linkSeen[i] = 0, 0, false
	}
	s.touched = s.touched[:0]
	s.busFree, s.busBusy, s.busSeen = 0, 0, false
	s.ep.Sim = s
	return nil
}

// computeLevels fills s.levels with each task's level (its load plus the
// longest successor chain, as in Graph.Levels) using reusable scratch
// buffers: a reverse Kahn pass from the leaves. Levels are well-defined
// independent of visit order, so this matches Graph.Levels exactly.
func (s *Simulator) computeLevels() error {
	g := s.model.Graph
	s.levels = growSlice(s.levels, s.nt)
	s.lvlDeg = growSlice(s.lvlDeg, s.nt)
	stack := s.lvlStack[:0]
	for i := 0; i < s.nt; i++ {
		d := g.OutDegree(taskgraph.TaskID(i))
		s.lvlDeg[i] = int32(d)
		s.levels[i] = 0
		if d == 0 {
			stack = append(stack, int32(i))
		}
	}
	processed := 0
	for len(stack) > 0 {
		i := taskgraph.TaskID(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		processed++
		best := 0.0
		for _, h := range g.Successors(i) {
			if s.levels[h.To] > best {
				best = s.levels[h.To]
			}
		}
		s.levels[i] = g.Load(i) + best
		for _, h := range g.Predecessors(i) {
			s.lvlDeg[h.To]--
			if s.lvlDeg[h.To] == 0 {
				stack = append(stack, int32(h.To))
			}
		}
	}
	s.lvlStack = stack[:0]
	if processed != s.nt {
		// Unreachable after Model.Validate (which rejects cycles), kept as
		// a defensive invariant.
		return fmt.Errorf("machsim: taskgraph %q is cyclic", g.Name())
	}
	return nil
}

// growSlice returns sl resized to length n, reusing its backing array when
// capacity allows.
func growSlice[T any](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	return sl[:n]
}

// reset rewinds all per-run state; buffers keep their capacity.
func (s *Simulator) reset() {
	s.now = 0
	s.seq = 0
	s.queue.reset()
	s.tracker.Reset()
	for i := range s.procs {
		s.procs[i] = procState{idle: true, assigned: taskgraph.None}
	}
	for i := range s.procOf {
		s.procOf[i] = -1
		s.startAt[i] = -1
		s.finishAt[i] = -1
	}
	for _, idx := range s.touched {
		s.linkFree[idx], s.linkBusy[idx], s.linkSeen[idx] = 0, 0, false
	}
	s.touched = s.touched[:0]
	s.busFree, s.busBusy, s.busSeen = 0, 0, false
	s.epochs = s.epochs[:0]
	s.gantt = s.gantt[:0]
	s.messages = 0
	s.xferTime = 0
	s.ovhTime = 0
	s.forced = 0
	s.events = 0
	s.msgNext = 0
}

// simPool backs the package-level Run helper: arenas are recycled across
// calls so every layer that still uses the one-shot API (experiments,
// examples, tests) gets buffer reuse for free.
var simPool = sync.Pool{New: func() any { return NewArena() }}

// Run simulates the execution of model.Graph on model.Topo under policy p.
// The returned Result is detached (safe to retain); callers that run many
// simulations and want the allocation-free path should hold their own
// arena via NewSimulator/Bind and use the Run method instead.
func Run(m Model, p Policy, opts Options) (*Result, error) {
	s := simPool.Get().(*Simulator)
	defer simPool.Put(s)
	if err := s.Bind(m, opts); err != nil {
		return nil, err
	}
	res, err := s.Run(p)
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}

// Graph returns the taskgraph being executed.
func (s *Simulator) Graph() *taskgraph.Graph { return s.model.Graph }

// Topo returns the machine topology.
func (s *Simulator) Topo() *topology.Topology { return s.model.Topo }

// Comm returns the communication parameters.
func (s *Simulator) Comm() topology.CommParams { return s.model.Comm }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// ProcOf returns the processor a task was assigned to, or -1 if the task
// has not been assigned yet. Policies use this to locate the outputs of
// finished predecessors.
func (s *Simulator) ProcOf(t taskgraph.TaskID) int { return s.procOf[t] }

// FinishTime returns a task's completion time, or -1 if it has not
// completed.
func (s *Simulator) FinishTime(t taskgraph.TaskID) float64 { return s.finishAt[t] }

// IsDone reports whether the task has completed.
func (s *Simulator) IsDone(t taskgraph.TaskID) bool { return s.finishAt[t] >= 0 }

// Run resets the arena and drives the event loop to completion. The
// returned Result is arena-owned: valid until the next Bind or Run.
func (s *Simulator) Run(p Policy) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("machsim: nil policy")
	}
	if s.model.Graph == nil {
		return nil, fmt.Errorf("machsim: unbound simulator (call Bind first)")
	}
	s.reset()
	for !s.tracker.AllDone() {
		if s.opts.Interrupt != nil {
			if err := s.opts.Interrupt(); err != nil {
				return nil, fmt.Errorf("machsim: interrupted at t=%.3f: %w", s.now, err)
			}
		}
		if s.opts.Bound != nil {
			if err := s.opts.Bound(s.now); err != nil {
				return nil, fmt.Errorf("machsim: interrupted at t=%.3f: %w", s.now, err)
			}
		}
		if s.queue.len() == 0 {
			// Nothing in flight: the policy must make progress now.
			if err := s.epoch(p, true); err != nil {
				return nil, err
			}
			continue
		}
		t := s.queue.peek().time
		if t < s.now {
			return nil, fmt.Errorf("machsim: time went backwards (%.6f < %.6f)", t, s.now)
		}
		s.now = t
		// Drain the full batch of simultaneous events; processing may add
		// new events at the same instant (zero-duration hops), which join
		// the batch.
		for s.queue.len() > 0 && s.queue.peek().time <= t {
			ev := s.queue.pop()
			s.events++
			if s.events > s.opts.MaxEvents {
				return nil, fmt.Errorf("machsim: event cap %d exceeded", s.opts.MaxEvents)
			}
			s.handle(ev)
		}
		if err := s.epoch(p, false); err != nil {
			return nil, err
		}
	}
	if s.opts.Publish != nil {
		// The schedule is final here — every task has a finish time that
		// can no longer move — so the makespan is publishable before the
		// result bookkeeping (stats, Gantt sort, cloning) runs.
		m := 0.0
		for _, f := range s.finishAt {
			if f > m {
				m = f
			}
		}
		s.opts.Publish(m)
	}
	return s.result(p), nil
}

// Simulate is the historical name for Run.
func (s *Simulator) Simulate(p Policy) (*Result, error) { return s.Run(p) }

func (s *Simulator) handle(ev event) {
	switch ev.kind {
	case evFinish:
		ps := &s.procs[ev.proc]
		if ps.finishSeq != ev.seq || ps.assigned != ev.task {
			return // postponed by a preemption; a newer event is queued
		}
		s.finishTask(ev.proc)
	case evMsgReady:
		s.sendHop(ev.msg)
	case evMsgArrive:
		s.arrive(ev.msg)
	}
}

// finishTask completes the scheduled task on proc at the current time.
func (s *Simulator) finishTask(proc int) {
	ps := &s.procs[proc]
	task := ps.assigned
	if s.opts.RecordGantt {
		s.gantt = append(s.gantt, Interval{
			Proc: proc, Kind: KindCompute, Task: task,
			Start: ps.runStart, End: ps.runFinish,
		})
	}
	ps.stat.ComputeTime += ps.runLoad
	ps.stat.TasksRun++
	s.startAt[task] = ps.runStart
	s.finishAt[task] = ps.runFinish
	ps.idle = true
	ps.assigned = taskgraph.None
	ps.scheduled = false
	ps.pendingMsgs = 0
	if _, err := s.tracker.Complete(task); err != nil {
		// Internal invariant: tasks finish exactly once.
		panic(fmt.Sprintf("machsim: %v", err))
	}
}

// epoch forms an assignment epoch at the current time and applies the
// policy's assignments. When force is true and the policy assigns nothing
// while work remains, the highest-level ready task is placed on the first
// idle processor so the simulation cannot stall.
func (s *Simulator) epoch(p Policy, force bool) error {
	ready := s.tracker.AppendReady(s.readyBuf[:0])
	s.readyBuf = ready
	idle := s.idleBuf[:0]
	for i := range s.procs {
		if s.procs[i].idle {
			idle = append(idle, i)
		}
	}
	s.idleBuf = idle
	if len(ready) == 0 || len(idle) == 0 {
		if force && s.queue.len() == 0 && !s.tracker.AllDone() {
			return fmt.Errorf("machsim: stuck at t=%.3f: %d ready, %d idle, nothing in flight",
				s.now, len(ready), len(idle))
		}
		return nil
	}
	s.ep.Time = s.now
	s.ep.Ready = ready
	s.ep.Idle = idle
	assignments := p.Assign(&s.ep)
	if err := s.checkAssignments(assignments, ready, idle); err != nil {
		return err
	}
	if len(assignments) == 0 && force {
		// Liveness fallback; counted so tests can assert it never happens
		// with well-behaved policies.
		best := ready[0]
		for _, t := range ready[1:] {
			if s.levels[t] > s.levels[best] {
				best = t
			}
		}
		assignments = []Assignment{{Task: best, Proc: idle[0]}}
		s.forced++
	}
	s.epochs = append(s.epochs, EpochStat{
		Time: s.now, Ready: len(ready), Idle: len(idle), Assigned: len(assignments),
	})
	for _, a := range assignments {
		if err := s.assign(a.Task, a.Proc); err != nil {
			return err
		}
	}
	return nil
}

// checkAssignments validates the policy's output against the epoch's
// ready/idle sets using generation-stamped marks instead of per-epoch
// maps: an entry is set iff its stamp equals the current generation.
func (s *Simulator) checkAssignments(as []Assignment, ready []taskgraph.TaskID, idle []int) error {
	s.markGen++
	gen := s.markGen
	for _, t := range ready {
		s.readyMark[t] = gen
	}
	for _, p := range idle {
		s.idleMark[p] = gen
	}
	for _, a := range as {
		switch {
		case int(a.Task) < 0 || int(a.Task) >= s.nt || s.readyMark[a.Task] != gen:
			return fmt.Errorf("machsim: policy assigned non-ready task %d", a.Task)
		case a.Proc < 0 || a.Proc >= s.np || s.idleMark[a.Proc] != gen:
			return fmt.Errorf("machsim: policy assigned to non-idle processor %d", a.Proc)
		case s.seenTask[a.Task] == gen:
			return fmt.Errorf("machsim: policy assigned task %d twice", a.Task)
		case s.seenProc[a.Proc] == gen:
			return fmt.Errorf("machsim: policy assigned two tasks to processor %d", a.Proc)
		}
		s.seenTask[a.Task] = gen
		s.seenProc[a.Proc] = gen
	}
	return nil
}

// newMessage hands out a message record from the slab, growing it only
// when the run needs more messages than any previous run.
func (s *Simulator) newMessage() *message {
	if s.msgNext < len(s.msgs) {
		m := s.msgs[s.msgNext]
		s.msgNext++
		*m = message{}
		return m
	}
	m := &message{}
	s.msgs = append(s.msgs, m)
	s.msgNext++
	return m
}

// assign places a ready task on an idle processor at the current time and
// launches the input messages from remotely-located predecessors.
func (s *Simulator) assign(task taskgraph.TaskID, proc int) error {
	if err := s.tracker.Claim(task); err != nil {
		return err
	}
	ps := &s.procs[proc]
	ps.idle = false
	ps.assigned = task
	ps.scheduled = false
	ps.runLoad = s.model.Graph.Load(task)
	s.procOf[task] = proc

	// Launch one message per remote predecessor.
	pending := 0
	for _, h := range s.model.Graph.Predecessors(task) {
		src := s.procOf[h.To]
		if src < 0 {
			return fmt.Errorf("machsim: task %d assigned before predecessor %d", task, h.To)
		}
		if src == proc {
			continue // same processor: no message, no cost (δ term of eq. 4)
		}
		pending++
		m := s.newMessage()
		m.from = h.To
		m.to = task
		m.cur = src
		m.dst = proc
		m.xfer = s.model.Comm.TransferTime(h.Bits)
		s.messages++
		// σ send overhead on the source processor, then the message enters
		// the network.
		end := s.charge(src, s.now, s.model.Comm.EffSigma(), KindSend, m)
		s.push(event{time: end, kind: evMsgReady, msg: m})
	}
	ps.pendingMsgs = pending
	if pending == 0 {
		s.startRun(proc, s.now)
	}
	return nil
}

// startRun computes the start/finish of the task held by proc, given that
// its inputs are complete at time ready.
func (s *Simulator) startRun(proc int, ready float64) {
	ps := &s.procs[proc]
	start := ready
	if ps.ovhBusyUntil > start {
		start = ps.ovhBusyUntil
	}
	ps.scheduled = true
	ps.runStart = start
	ps.runFinish = start + ps.runLoad
	s.pushFinish(proc)
}

// pushFinish (re)schedules the finish event of proc's task. The sequence
// number doubles as a version: stale finish events still in the queue are
// ignored when popped.
func (s *Simulator) pushFinish(proc int) {
	ps := &s.procs[proc]
	s.seq++
	ps.finishSeq = s.seq
	s.queue.push(event{time: ps.runFinish, seq: ps.finishSeq, kind: evFinish, proc: proc, task: ps.assigned})
}

// push enqueues an event with a fresh sequence number.
func (s *Simulator) push(e event) {
	s.seq++
	e.seq = s.seq
	s.queue.push(e)
}

// charge books a message-handling overhead of the given duration on a
// processor starting no earlier than now, and returns the time the
// overhead completes. Overheads serialize on the processor; if a task is
// executing there, its completion is postponed by the overhead duration
// ("incoming messages preempt an active processor"); if a task has been
// scheduled but not started, its start is pushed back as needed.
func (s *Simulator) charge(proc int, now, dur float64, kind IntervalKind, m *message) float64 {
	ps := &s.procs[proc]
	start := now
	if ps.ovhBusyUntil > start {
		start = ps.ovhBusyUntil
	}
	end := start + dur
	ps.ovhBusyUntil = end
	if dur > 0 {
		ps.stat.OverheadTime += dur
		s.ovhTime += dur
		if s.opts.RecordGantt {
			s.gantt = append(s.gantt, Interval{
				Proc: proc, Kind: kind, Task: m.to, From: m.from, Start: start, End: end,
			})
		}
		if ps.scheduled {
			if start >= ps.runStart {
				// Preempts the executing task.
				ps.runFinish += dur
				s.pushFinish(proc)
			} else if end > ps.runStart {
				// Delays a task that has not started yet.
				ps.runStart = end
				ps.runFinish = end + ps.runLoad
				s.pushFinish(proc)
			}
		}
	}
	return end
}

// sharedMediumKey is the link-resource key used for all transfers on a
// bus topology, where the whole medium carries one message at a time.
var sharedMediumKey = [2]int{-1, -1}

// sendHop moves a message onto the next link of its path, waiting for the
// link to be free (one message at a time per link; on a bus, one message
// at a time on the whole medium).
func (s *Simulator) sendHop(m *message) {
	next := s.model.Topo.NextHop(m.cur, m.dst)
	m.nxt = next
	start := s.now
	if s.model.Topo.SharedMedium() {
		if s.busFree > start {
			start = s.busFree
		}
		s.busFree = start + m.xfer
		s.busBusy += m.xfer
		s.busSeen = true
	} else {
		lo, hi := m.cur, next
		if lo > hi {
			lo, hi = hi, lo
		}
		idx := lo*s.np + hi
		if !s.linkSeen[idx] {
			s.linkSeen[idx] = true
			s.touched = append(s.touched, int32(idx))
		}
		if s.linkFree[idx] > start {
			start = s.linkFree[idx]
		}
		s.linkFree[idx] = start + m.xfer
		s.linkBusy[idx] += m.xfer
	}
	s.xferTime += m.xfer
	s.push(event{time: start + m.xfer, kind: evMsgArrive, msg: m})
}

// arrive handles a message reaching the node at the far end of its current
// link: route onward (τ at the intermediate node) or deliver (τ at the
// destination).
func (s *Simulator) arrive(m *message) {
	m.cur = m.nxt
	node := m.cur
	if node != m.dst {
		end := s.charge(node, s.now, s.model.Comm.EffTau(), KindRoute, m)
		s.push(event{time: end, kind: evMsgReady, msg: m})
		return
	}
	tau := s.model.Comm.EffTau()
	if s.opts.DisableReceiveOverhead {
		tau = 0
	}
	end := s.charge(node, s.now, tau, KindReceive, m)
	ps := &s.procs[node]
	if ps.assigned != m.to {
		panic(fmt.Sprintf("machsim: message for task %d delivered to processor %d holding task %d",
			m.to, node, ps.assigned))
	}
	ps.pendingMsgs--
	if ps.pendingMsgs == 0 {
		s.startRun(node, end)
	}
}

// result rebuilds the arena-owned Result in place. Its slices alias the
// simulator's buffers; Clone detaches them.
func (s *Simulator) result(p Policy) *Result {
	makespan := 0.0
	for _, f := range s.finishAt {
		if f > makespan {
			makespan = f
		}
	}
	t1 := s.model.Graph.TotalLoad()
	clear(s.resLinkBusy)
	for _, idx := range s.touched {
		s.resLinkBusy[[2]int{int(idx) / s.np, int(idx) % s.np}] = s.linkBusy[idx]
	}
	if s.busSeen {
		s.resLinkBusy[sharedMediumKey] = s.busBusy
	}
	s.resProcs = growSlice(s.resProcs, s.np)
	for i := range s.procs {
		s.resProcs[i] = s.procs[i].stat
	}
	res := &s.res
	*res = Result{
		Policy:         p.Name(),
		Makespan:       makespan,
		SequentialTime: t1,
		Messages:       s.messages,
		TransferTime:   s.xferTime,
		OverheadTime:   s.ovhTime,
		Epochs:         s.epochs,
		Forced:         s.forced,
		Start:          s.startAt,
		Finish:         s.finishAt,
		Proc:           s.procOf,
		Procs:          s.resProcs,
		LinkBusy:       s.resLinkBusy,
	}
	if makespan > 0 {
		res.Speedup = t1 / makespan
	}
	if s.opts.RecordGantt {
		s.ganttSort.a = s.gantt
		sort.Sort(&s.ganttSort)
		res.Gantt = s.gantt
	}
	return res
}
