package machsim

import (
	"fmt"
	"sort"

	"repro/internal/taskgraph"
	"repro/internal/topology"
)

const defaultMaxEvents = 50_000_000

// Simulator executes one taskgraph on one machine under one policy. Use
// Run for the common case; NewSimulator + Simulate give the same behaviour
// with the pieces exposed for tests.
type Simulator struct {
	model Model
	opts  Options

	now     float64
	seq     int64
	queue   eventHeap
	tracker *taskgraph.ReadyTracker

	procs    []procState
	linkFree map[[2]int]float64
	linkBusy map[[2]int]float64

	procOf   []int     // processor of each assigned task, -1 before assignment
	startAt  []float64 // computation start time of each task, -1 before start
	finishAt []float64 // completion time of each task, -1 before completion

	epochs   []EpochStat
	gantt    []Interval
	messages int
	xferTime float64
	ovhTime  float64
	forced   int
	events   int

	levels []float64 // for the forced-assignment fallback
}

// procState tracks one processor.
type procState struct {
	idle bool
	// ovhBusyUntil is the time until which the processor is occupied by
	// message-handling overheads (σ/τ). Overheads serialize.
	ovhBusyUntil float64
	assigned     taskgraph.TaskID // task held by this processor, None if idle
	scheduled    bool             // start/finish computed (all input messages delivered)
	runStart     float64
	runFinish    float64
	runLoad      float64
	finishSeq    int64
	pendingMsgs  int
	stat         ProcStat
}

// NewSimulator validates the model and prepares a simulator.
func NewSimulator(m Model, opts Options) (*Simulator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	levels, err := m.Graph.Levels()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		model:    m,
		opts:     opts,
		tracker:  taskgraph.NewReadyTracker(m.Graph),
		procs:    make([]procState, m.Topo.N()),
		linkFree: make(map[[2]int]float64),
		linkBusy: make(map[[2]int]float64),
		procOf:   make([]int, m.Graph.NumTasks()),
		startAt:  make([]float64, m.Graph.NumTasks()),
		finishAt: make([]float64, m.Graph.NumTasks()),
		levels:   levels,
	}
	for i := range s.procs {
		s.procs[i].idle = true
		s.procs[i].assigned = taskgraph.None
	}
	for i := range s.procOf {
		s.procOf[i] = -1
		s.startAt[i] = -1
		s.finishAt[i] = -1
	}
	if s.opts.MaxEvents == 0 {
		s.opts.MaxEvents = defaultMaxEvents
	}
	return s, nil
}

// Run simulates the execution of model.Graph on model.Topo under policy p.
func Run(m Model, p Policy, opts Options) (*Result, error) {
	s, err := NewSimulator(m, opts)
	if err != nil {
		return nil, err
	}
	return s.Simulate(p)
}

// Graph returns the taskgraph being executed.
func (s *Simulator) Graph() *taskgraph.Graph { return s.model.Graph }

// Topo returns the machine topology.
func (s *Simulator) Topo() *topology.Topology { return s.model.Topo }

// Comm returns the communication parameters.
func (s *Simulator) Comm() topology.CommParams { return s.model.Comm }

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// ProcOf returns the processor a task was assigned to, or -1 if the task
// has not been assigned yet. Policies use this to locate the outputs of
// finished predecessors.
func (s *Simulator) ProcOf(t taskgraph.TaskID) int { return s.procOf[t] }

// FinishTime returns a task's completion time, or -1 if it has not
// completed.
func (s *Simulator) FinishTime(t taskgraph.TaskID) float64 { return s.finishAt[t] }

// IsDone reports whether the task has completed.
func (s *Simulator) IsDone(t taskgraph.TaskID) bool { return s.finishAt[t] >= 0 }

// Simulate drives the event loop to completion and returns the result.
func (s *Simulator) Simulate(p Policy) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("machsim: nil policy")
	}
	for !s.tracker.AllDone() {
		if s.opts.Interrupt != nil {
			if err := s.opts.Interrupt(); err != nil {
				return nil, fmt.Errorf("machsim: interrupted at t=%.3f: %w", s.now, err)
			}
		}
		if s.queue.len() == 0 {
			// Nothing in flight: the policy must make progress now.
			if err := s.epoch(p, true); err != nil {
				return nil, err
			}
			continue
		}
		t := s.queue.peek().time
		if t < s.now {
			return nil, fmt.Errorf("machsim: time went backwards (%.6f < %.6f)", t, s.now)
		}
		s.now = t
		// Drain the full batch of simultaneous events; processing may add
		// new events at the same instant (zero-duration hops), which join
		// the batch.
		for s.queue.len() > 0 && s.queue.peek().time <= t {
			ev := s.queue.pop()
			s.events++
			if s.events > s.opts.MaxEvents {
				return nil, fmt.Errorf("machsim: event cap %d exceeded", s.opts.MaxEvents)
			}
			s.handle(ev)
		}
		if err := s.epoch(p, false); err != nil {
			return nil, err
		}
	}
	return s.result(p), nil
}

func (s *Simulator) handle(ev event) {
	switch ev.kind {
	case evFinish:
		ps := &s.procs[ev.proc]
		if ps.finishSeq != ev.seq || ps.assigned != ev.task {
			return // postponed by a preemption; a newer event is queued
		}
		s.finishTask(ev.proc)
	case evMsgReady:
		s.sendHop(ev.msg)
	case evMsgArrive:
		s.arrive(ev.msg)
	}
}

// finishTask completes the scheduled task on proc at the current time.
func (s *Simulator) finishTask(proc int) {
	ps := &s.procs[proc]
	task := ps.assigned
	if s.opts.RecordGantt {
		s.gantt = append(s.gantt, Interval{
			Proc: proc, Kind: KindCompute, Task: task,
			Start: ps.runStart, End: ps.runFinish,
		})
	}
	ps.stat.ComputeTime += ps.runLoad
	ps.stat.TasksRun++
	s.startAt[task] = ps.runStart
	s.finishAt[task] = ps.runFinish
	ps.idle = true
	ps.assigned = taskgraph.None
	ps.scheduled = false
	ps.pendingMsgs = 0
	if _, err := s.tracker.Complete(task); err != nil {
		// Internal invariant: tasks finish exactly once.
		panic(fmt.Sprintf("machsim: %v", err))
	}
}

// epoch forms an assignment epoch at the current time and applies the
// policy's assignments. When force is true and the policy assigns nothing
// while work remains, the highest-level ready task is placed on the first
// idle processor so the simulation cannot stall.
func (s *Simulator) epoch(p Policy, force bool) error {
	ready := s.tracker.Ready()
	idle := s.idleProcs()
	if len(ready) == 0 || len(idle) == 0 {
		if force && s.queue.len() == 0 && !s.tracker.AllDone() {
			return fmt.Errorf("machsim: stuck at t=%.3f: %d ready, %d idle, nothing in flight",
				s.now, len(ready), len(idle))
		}
		return nil
	}
	ep := &Epoch{Time: s.now, Ready: ready, Idle: idle, Sim: s}
	assignments := p.Assign(ep)
	if err := s.checkAssignments(assignments, ready, idle); err != nil {
		return err
	}
	if len(assignments) == 0 && force {
		// Liveness fallback; counted so tests can assert it never happens
		// with well-behaved policies.
		best := ready[0]
		for _, t := range ready[1:] {
			if s.levels[t] > s.levels[best] {
				best = t
			}
		}
		assignments = []Assignment{{Task: best, Proc: idle[0]}}
		s.forced++
	}
	s.epochs = append(s.epochs, EpochStat{
		Time: s.now, Ready: len(ready), Idle: len(idle), Assigned: len(assignments),
	})
	for _, a := range assignments {
		if err := s.assign(a.Task, a.Proc); err != nil {
			return err
		}
	}
	return nil
}

func (s *Simulator) idleProcs() []int {
	var idle []int
	for i := range s.procs {
		if s.procs[i].idle {
			idle = append(idle, i)
		}
	}
	return idle
}

func (s *Simulator) checkAssignments(as []Assignment, ready []taskgraph.TaskID, idle []int) error {
	readySet := make(map[taskgraph.TaskID]bool, len(ready))
	for _, t := range ready {
		readySet[t] = true
	}
	idleSet := make(map[int]bool, len(idle))
	for _, p := range idle {
		idleSet[p] = true
	}
	seenT := make(map[taskgraph.TaskID]bool)
	seenP := make(map[int]bool)
	for _, a := range as {
		switch {
		case !readySet[a.Task]:
			return fmt.Errorf("machsim: policy assigned non-ready task %d", a.Task)
		case !idleSet[a.Proc]:
			return fmt.Errorf("machsim: policy assigned to non-idle processor %d", a.Proc)
		case seenT[a.Task]:
			return fmt.Errorf("machsim: policy assigned task %d twice", a.Task)
		case seenP[a.Proc]:
			return fmt.Errorf("machsim: policy assigned two tasks to processor %d", a.Proc)
		}
		seenT[a.Task] = true
		seenP[a.Proc] = true
	}
	return nil
}

// assign places a ready task on an idle processor at the current time and
// launches the input messages from remotely-located predecessors.
func (s *Simulator) assign(task taskgraph.TaskID, proc int) error {
	if err := s.tracker.Claim(task); err != nil {
		return err
	}
	ps := &s.procs[proc]
	ps.idle = false
	ps.assigned = task
	ps.scheduled = false
	ps.runLoad = s.model.Graph.Load(task)
	s.procOf[task] = proc

	// Launch one message per remote predecessor.
	pending := 0
	for _, h := range s.model.Graph.Predecessors(task) {
		src := s.procOf[h.To]
		if src < 0 {
			return fmt.Errorf("machsim: task %d assigned before predecessor %d", task, h.To)
		}
		if src == proc {
			continue // same processor: no message, no cost (δ term of eq. 4)
		}
		pending++
		m := &message{
			from: h.To,
			to:   task,
			path: s.model.Topo.Path(src, proc),
			xfer: s.model.Comm.TransferTime(h.Bits),
		}
		s.messages++
		// σ send overhead on the source processor, then the message enters
		// the network.
		end := s.charge(src, s.now, s.model.Comm.EffSigma(), KindSend, m)
		s.push(event{time: end, kind: evMsgReady, msg: m})
	}
	ps.pendingMsgs = pending
	if pending == 0 {
		s.startRun(proc, s.now)
	}
	return nil
}

// startRun computes the start/finish of the task held by proc, given that
// its inputs are complete at time ready.
func (s *Simulator) startRun(proc int, ready float64) {
	ps := &s.procs[proc]
	start := ready
	if ps.ovhBusyUntil > start {
		start = ps.ovhBusyUntil
	}
	ps.scheduled = true
	ps.runStart = start
	ps.runFinish = start + ps.runLoad
	s.pushFinish(proc)
}

// pushFinish (re)schedules the finish event of proc's task. The sequence
// number doubles as a version: stale finish events still in the queue are
// ignored when popped.
func (s *Simulator) pushFinish(proc int) {
	ps := &s.procs[proc]
	s.seq++
	ps.finishSeq = s.seq
	s.queue.push(event{time: ps.runFinish, seq: ps.finishSeq, kind: evFinish, proc: proc, task: ps.assigned})
}

// push enqueues an event with a fresh sequence number.
func (s *Simulator) push(e event) {
	s.seq++
	e.seq = s.seq
	s.queue.push(e)
}

// charge books a message-handling overhead of the given duration on a
// processor starting no earlier than now, and returns the time the
// overhead completes. Overheads serialize on the processor; if a task is
// executing there, its completion is postponed by the overhead duration
// ("incoming messages preempt an active processor"); if a task has been
// scheduled but not started, its start is pushed back as needed.
func (s *Simulator) charge(proc int, now, dur float64, kind IntervalKind, m *message) float64 {
	ps := &s.procs[proc]
	start := now
	if ps.ovhBusyUntil > start {
		start = ps.ovhBusyUntil
	}
	end := start + dur
	ps.ovhBusyUntil = end
	if dur > 0 {
		ps.stat.OverheadTime += dur
		s.ovhTime += dur
		if s.opts.RecordGantt {
			s.gantt = append(s.gantt, Interval{
				Proc: proc, Kind: kind, Task: m.to, From: m.from, Start: start, End: end,
			})
		}
		if ps.scheduled {
			if start >= ps.runStart {
				// Preempts the executing task.
				ps.runFinish += dur
				s.pushFinish(proc)
			} else if end > ps.runStart {
				// Delays a task that has not started yet.
				ps.runStart = end
				ps.runFinish = end + ps.runLoad
				s.pushFinish(proc)
			}
		}
	}
	return end
}

// sharedMediumKey is the link-resource key used for all transfers on a
// bus topology, where the whole medium carries one message at a time.
var sharedMediumKey = [2]int{-1, -1}

// sendHop moves a message onto the next link of its path, waiting for the
// link to be free (one message at a time per link; on a bus, one message
// at a time on the whole medium).
func (s *Simulator) sendHop(m *message) {
	u, v := m.path[m.hop], m.path[m.hop+1]
	key := topology.CanonicalLink(u, v)
	if s.model.Topo.SharedMedium() {
		key = sharedMediumKey
	}
	start := s.now
	if free := s.linkFree[key]; free > start {
		start = free
	}
	end := start + m.xfer
	s.linkFree[key] = end
	s.xferTime += m.xfer
	s.linkBusy[key] += m.xfer
	s.push(event{time: end, kind: evMsgArrive, msg: m})
}

// arrive handles a message reaching the node at the far end of its current
// link: route onward (τ at the intermediate node) or deliver (τ at the
// destination).
func (s *Simulator) arrive(m *message) {
	m.hop++
	node := m.path[m.hop]
	dst := m.path[len(m.path)-1]
	if node != dst {
		end := s.charge(node, s.now, s.model.Comm.EffTau(), KindRoute, m)
		s.push(event{time: end, kind: evMsgReady, msg: m})
		return
	}
	tau := s.model.Comm.EffTau()
	if s.opts.DisableReceiveOverhead {
		tau = 0
	}
	end := s.charge(node, s.now, tau, KindReceive, m)
	ps := &s.procs[node]
	if ps.assigned != m.to {
		panic(fmt.Sprintf("machsim: message for task %d delivered to processor %d holding task %d",
			m.to, node, ps.assigned))
	}
	ps.pendingMsgs--
	if ps.pendingMsgs == 0 {
		s.startRun(node, end)
	}
}

func (s *Simulator) result(p Policy) *Result {
	makespan := 0.0
	for _, f := range s.finishAt {
		if f > makespan {
			makespan = f
		}
	}
	t1 := s.model.Graph.TotalLoad()
	res := &Result{
		Policy:         p.Name(),
		Makespan:       makespan,
		SequentialTime: t1,
		Messages:       s.messages,
		TransferTime:   s.xferTime,
		OverheadTime:   s.ovhTime,
		Epochs:         s.epochs,
		Forced:         s.forced,
		Start:          append([]float64(nil), s.startAt...),
		Finish:         append([]float64(nil), s.finishAt...),
		Proc:           append([]int(nil), s.procOf...),
		LinkBusy:       s.linkBusy,
	}
	if makespan > 0 {
		res.Speedup = t1 / makespan
	}
	res.Procs = make([]ProcStat, len(s.procs))
	for i := range s.procs {
		res.Procs[i] = s.procs[i].stat
	}
	if s.opts.RecordGantt {
		sort.Slice(s.gantt, func(i, j int) bool {
			if s.gantt[i].Proc != s.gantt[j].Proc {
				return s.gantt[i].Proc < s.gantt[j].Proc
			}
			if s.gantt[i].Start != s.gantt[j].Start {
				return s.gantt[i].Start < s.gantt[j].Start
			}
			return s.gantt[i].End < s.gantt[j].End
		})
		res.Gantt = s.gantt
	}
	return res
}
