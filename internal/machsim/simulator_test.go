package machsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// fixedPolicy assigns tasks to processors according to a fixed task->proc
// map, as soon as both are available.
type fixedPolicy struct {
	place map[taskgraph.TaskID]int
}

func (f *fixedPolicy) Name() string { return "fixed" }

func (f *fixedPolicy) Assign(ep *Epoch) []Assignment {
	idle := make(map[int]bool, len(ep.Idle))
	for _, p := range ep.Idle {
		idle[p] = true
	}
	var out []Assignment
	for _, t := range ep.Ready {
		p, ok := f.place[t]
		if ok && idle[p] {
			out = append(out, Assignment{Task: t, Proc: p})
			idle[p] = false
		}
	}
	return out
}

// greedyPolicy fills idle processors with ready tasks in ID order.
type greedyPolicy struct{}

func (greedyPolicy) Name() string { return "greedy" }

func (greedyPolicy) Assign(ep *Epoch) []Assignment {
	n := len(ep.Ready)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	out := make([]Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, Assignment{Task: ep.Ready[k], Proc: ep.Idle[k]})
	}
	return out
}

func solo(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.FromLinks("solo", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func pair(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.FromLinks("pair", 2, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func triChain(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.ChainTopo(3)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func comm() topology.CommParams { return topology.DefaultCommParams() }

func TestModelValidate(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("t", 1)
	good := Model{Graph: g, Topo: solo(t), Comm: comm()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{Topo: solo(t), Comm: comm()}).Validate(); err == nil {
		t.Error("nil graph accepted")
	}
	if err := (Model{Graph: g, Comm: comm()}).Validate(); err == nil {
		t.Error("nil topology accepted")
	}
	empty := taskgraph.New("empty")
	if err := (Model{Graph: empty, Topo: solo(t), Comm: comm()}).Validate(); err == nil {
		t.Error("empty graph accepted")
	}
	bad := comm()
	bad.Bandwidth = 0
	if err := (Model{Graph: g, Topo: solo(t), Comm: bad}).Validate(); err == nil {
		t.Error("bad comm accepted")
	}
}

func TestSingleProcessorSequential(t *testing.T) {
	g := taskgraph.New("seq")
	a := g.AddTask("a", 3)
	b := g.AddTask("b", 4)
	c := g.AddTask("c", 5)
	g.MustAddEdge(a, b, 40)
	g.MustAddEdge(b, c, 40)
	res, err := Run(Model{Graph: g, Topo: solo(t), Comm: comm()}, greedyPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All on one processor: no messages, makespan = T1 = 12.
	if res.Makespan != 12 || res.Messages != 0 || res.Speedup != 1 {
		t.Fatalf("res = makespan %g, %d msgs, speedup %g", res.Makespan, res.Messages, res.Speedup)
	}
	if res.Forced != 0 {
		t.Errorf("forced = %d", res.Forced)
	}
}

func TestTwoIndependentTasksRunInParallel(t *testing.T) {
	g := taskgraph.New("par")
	g.AddTask("a", 10)
	g.AddTask("b", 10)
	res, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm()}, greedyPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 10 {
		t.Fatalf("makespan = %g, want 10", res.Makespan)
	}
	if res.Speedup != 2 {
		t.Fatalf("speedup = %g, want 2", res.Speedup)
	}
}

func TestLocalChainHasNoCommunication(t *testing.T) {
	g := taskgraph.New("chain")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 400)
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a: 0, b: 0}}
	res, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm()}, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 20 || res.Messages != 0 {
		t.Fatalf("local chain: makespan %g, %d msgs; want 20, 0", res.Makespan, res.Messages)
	}
}

func TestRemoteChainTiming(t *testing.T) {
	// a on P0, b on P1, 40 bits: b is assigned when a finishes (t=10);
	// σ = 7 on P0 (10..17), transfer w = 4 (17..21), receive τ = 9 on P1
	// (21..30), b runs 30..40.
	g := taskgraph.New("chain")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 40)
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a: 0, b: 1}}
	res, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm()}, place, Options{RecordGantt: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-40) > 1e-9 {
		t.Fatalf("makespan = %g, want 40", res.Makespan)
	}
	if res.Messages != 1 {
		t.Fatalf("messages = %d, want 1", res.Messages)
	}
	if math.Abs(res.TransferTime-4) > 1e-9 {
		t.Errorf("transfer = %g, want 4", res.TransferTime)
	}
	if math.Abs(res.OverheadTime-16) > 1e-9 {
		t.Errorf("overhead = %g, want σ+τ = 16", res.OverheadTime)
	}
	// Gantt must contain the send on P0 at [10,17] and receive on P1 at
	// [21,30].
	var sawSend, sawRecv bool
	for _, iv := range res.Gantt {
		if iv.Kind == KindSend && iv.Proc == 0 && iv.Start == 10 && iv.End == 17 {
			sawSend = true
		}
		if iv.Kind == KindReceive && iv.Proc == 1 && iv.Start == 21 && iv.End == 30 {
			sawRecv = true
		}
	}
	if !sawSend || !sawRecv {
		t.Errorf("gantt missing send/recv blocks: %+v", res.Gantt)
	}
}

func TestRoutedMessageChargesIntermediate(t *testing.T) {
	// Chain topology P0-P1-P2; a on P0, b on P2 (distance 2).
	// t=10: σ on P0 (10..17); hop P0->P1 (17..21); route τ on P1 (21..30);
	// hop P1->P2 (30..34); receive τ on P2 (34..43); b runs 43..53.
	g := taskgraph.New("routed")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 40)
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a: 0, b: 2}}
	res, err := Run(Model{Graph: g, Topo: triChain(t), Comm: comm()}, place, Options{RecordGantt: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-53) > 1e-9 {
		t.Fatalf("makespan = %g, want 53", res.Makespan)
	}
	var sawRoute bool
	for _, iv := range res.Gantt {
		if iv.Kind == KindRoute && iv.Proc == 1 && iv.Start == 21 && iv.End == 30 {
			sawRoute = true
		}
	}
	if !sawRoute {
		t.Errorf("no route block on intermediate processor: %+v", res.Gantt)
	}
	if res.Procs[1].OverheadTime != 9 {
		t.Errorf("P1 overhead = %g, want 9", res.Procs[1].OverheadTime)
	}
}

func TestDisableReceiveOverhead(t *testing.T) {
	g := taskgraph.New("chain")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 40)
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a: 0, b: 1}}
	res, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm()}, place, Options{DisableReceiveOverhead: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without the receive τ, b starts at 10+7+4 = 21 and ends at 31.
	if math.Abs(res.Makespan-31) > 1e-9 {
		t.Fatalf("makespan = %g, want 31", res.Makespan)
	}
}

func TestNoCommModeIsFree(t *testing.T) {
	g := taskgraph.New("chain")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 4000)
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a: 0, b: 1}}
	res, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm().NoComm()}, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 20 {
		t.Fatalf("makespan = %g, want 20 (free communication)", res.Makespan)
	}
	if res.OverheadTime != 0 || res.TransferTime != 0 {
		t.Errorf("free comm charged: ovh %g xfer %g", res.OverheadTime, res.TransferTime)
	}
}

func TestPreemptionStretchesRunningTask(t *testing.T) {
	// P1 runs a long task c (0..100). a on P0 finishes at 10 and sends to
	// b, placed on P2 via... use pair: make the message destination P1
	// itself impossible (P1 busy). Instead: route through P1.
	// Chain P0-P1-P2: c runs on P1 [0..100]; a on P0 [0..10]; b on P2
	// needs a's output routed through P1. The route τ at t=21 preempts c,
	// whose finish slips to 109.
	g := taskgraph.New("preempt")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	c := g.AddTask("c", 100)
	g.MustAddEdge(a, b, 40)
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a: 0, b: 2, c: 1}}
	res, err := Run(Model{Graph: g, Topo: triChain(t), Comm: comm()}, place, Options{RecordGantt: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Finish[c]-109) > 1e-9 {
		t.Fatalf("preempted task finished at %g, want 109", res.Finish[c])
	}
	// b's timeline is unchanged by the preemption of c: 43..53.
	if math.Abs(res.Finish[b]-53) > 1e-9 {
		t.Fatalf("b finished at %g, want 53", res.Finish[b])
	}
}

func TestLinkContentionSerializesTransfers(t *testing.T) {
	// Two producers on P0 finish at the same time; both consumers on P1.
	// The two transfers share link (0,1) and must serialize.
	g := taskgraph.New("contend")
	a1 := g.AddTask("a1", 10)
	b1 := g.AddTask("b1", 1)
	b2 := g.AddTask("b2", 1)
	g.MustAddEdge(a1, b1, 400) // w = 40µs each
	g.MustAddEdge(a1, b2, 400)
	// b1 on P1; b2 on P2, both fed from P0 over the shared first link of a
	// chain P0-P1-P2? b2's path P0->P1->P2 shares link (0,1) with b1.
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a1: 0, b1: 1, b2: 2}}
	res, err := Run(Model{Graph: g, Topo: triChain(t), Comm: comm()}, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// σ for first message 10..17, second 17..24 (serialized on P0).
	// Transfer 1 on link(0,1): 17..57. Transfer 2 waits: 57..97.
	// So b2 cannot arrive at P1 before 57.
	if res.TransferTime != 120 { // 40 + 40+40 (two hops for b2)
		t.Errorf("transfer total = %g, want 120", res.TransferTime)
	}
	if res.Finish[b2] < 97 {
		t.Errorf("b2 finished at %g; link contention not enforced", res.Finish[b2])
	}
}

func TestSharedBusSerializesAllTransfers(t *testing.T) {
	bus, err := topology.Bus(4)
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint pairs communicate: on a point-to-point network the
	// transfers overlap; on a bus they serialize.
	g := taskgraph.New("bus")
	a1 := g.AddTask("a1", 10)
	b1 := g.AddTask("b1", 1)
	a2 := g.AddTask("a2", 10)
	b2 := g.AddTask("b2", 1)
	g.MustAddEdge(a1, b1, 400)
	g.MustAddEdge(a2, b2, 400)
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a1: 0, a2: 1, b1: 2, b2: 3}}
	res, err := Run(Model{Graph: g, Topo: bus, Comm: comm()}, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both messages: σ 10..17 (parallel on P0 and P1), transfers 40µs each
	// on the single medium: first 17..57, second 57..97; receive τ 9, then
	// 1µs task.
	later := math.Max(res.Finish[b1], res.Finish[b2])
	if math.Abs(later-107) > 1e-9 {
		t.Fatalf("later consumer finished at %g, want 107 (serialized bus)", later)
	}
	// Same workload on a complete point-to-point network overlaps.
	cg, err := topology.Complete(4)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(Model{Graph: g, Topo: cg, Comm: comm()}, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	both := math.Max(res2.Finish[b1], res2.Finish[b2])
	if math.Abs(both-67) > 1e-9 {
		t.Fatalf("point-to-point consumer finished at %g, want 67", both)
	}
}

func TestPolicyValidationErrors(t *testing.T) {
	g := taskgraph.New("v")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 0)

	cases := []struct {
		name string
		as   []Assignment
	}{
		{"non-ready task", []Assignment{{Task: b, Proc: 0}}},
		{"unknown processor", []Assignment{{Task: a, Proc: 5}}},
		{"duplicate task", []Assignment{{Task: a, Proc: 0}, {Task: a, Proc: 1}}},
	}
	for _, tc := range cases {
		p := &scriptedPolicy{assignments: tc.as}
		if _, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm()}, p, Options{}); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// scriptedPolicy returns a fixed assignment list on the first epoch and
// nothing afterwards.
type scriptedPolicy struct {
	assignments []Assignment
	called      bool
}

func (s *scriptedPolicy) Name() string { return "scripted" }

func (s *scriptedPolicy) Assign(ep *Epoch) []Assignment {
	if s.called {
		return nil
	}
	s.called = true
	return s.assignments
}

func TestForcedFallbackKeepsLiveness(t *testing.T) {
	// A policy that never assigns anything: the simulator must still
	// finish, counting forced assignments.
	g := taskgraph.New("lazy")
	g.AddTask("a", 1)
	g.AddTask("b", 1)
	p := &neverPolicy{}
	res, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm()}, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced != 2 {
		t.Errorf("forced = %d, want 2", res.Forced)
	}
	if res.Makespan <= 0 {
		t.Error("no makespan")
	}
}

type neverPolicy struct{}

func (neverPolicy) Name() string               { return "never" }
func (neverPolicy) Assign(*Epoch) []Assignment { return nil }

func TestEpochStatsRecorded(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 4, 5, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm().NoComm()}, greedyPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) == 0 {
		t.Fatal("no epochs recorded")
	}
	first := res.Epochs[0]
	if first.Time != 0 || first.Ready != 1 || first.Idle != 2 {
		t.Errorf("first epoch = %+v", first)
	}
	if res.AvgReady() <= 0 || res.AvgIdle() <= 0 {
		t.Error("epoch averages empty")
	}
}

func TestGanttComputeIntervalsDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, err := taskgraph.Layered("lay", taskgraph.LayeredConfig{
		Layers: 5, MinWidth: 2, MaxWidth: 5, MinLoad: 1, MaxLoad: 20,
		MinBits: 10, MaxBits: 200, EdgeProb: 0.4,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Model{Graph: g, Topo: hc, Comm: comm()}, greedyPolicy{}, Options{RecordGantt: true})
	if err != nil {
		t.Fatal(err)
	}
	// Compute intervals per processor must not overlap and their loads
	// must cover every task exactly once.
	seen := make(map[taskgraph.TaskID]bool)
	perProc := make(map[int][]Interval)
	for _, iv := range res.Gantt {
		if iv.Kind != KindCompute {
			continue
		}
		if seen[iv.Task] {
			t.Fatalf("task %d computed twice", iv.Task)
		}
		seen[iv.Task] = true
		perProc[iv.Proc] = append(perProc[iv.Proc], iv)
	}
	if len(seen) != g.NumTasks() {
		t.Fatalf("computed %d tasks, want %d", len(seen), g.NumTasks())
	}
	for proc, ivs := range perProc {
		for i := 1; i < len(ivs); i++ {
			if ivs[i].Start < ivs[i-1].End-1e-9 {
				t.Fatalf("P%d compute intervals overlap: %+v then %+v", proc, ivs[i-1], ivs[i])
			}
		}
	}
	// Compute interval length >= load (preemption can only stretch it).
	for _, iv := range res.Gantt {
		if iv.Kind == KindCompute {
			if iv.End-iv.Start < g.Load(iv.Task)-1e-9 {
				t.Fatalf("task %d interval shorter than load", iv.Task)
			}
		}
	}
}

// Property: for random graphs and the greedy policy, every task finishes,
// the makespan is at least the critical-path bound with free
// communication, and at least T1/P.
func TestPropertyMakespanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	hc, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		g, err := taskgraph.GnpDAG("p", 1+rng.Intn(25), rng.Float64()*0.4, 1, 15, 0, 200, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Model{Graph: g, Topo: hc, Comm: comm().NoComm()}, greedyPolicy{}, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for id, f := range res.Finish {
			if f < 0 {
				t.Fatalf("trial %d: task %d never finished", trial, id)
			}
		}
		lb, err := g.LowerBoundMakespan(hc.N())
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < lb-1e-9 {
			t.Fatalf("trial %d: makespan %g below bound %g", trial, res.Makespan, lb)
		}
		if res.Forced != 0 {
			t.Fatalf("trial %d: forced assignments", trial)
		}
	}
}

// Property: communication can only hurt — the makespan with communication
// enabled is never smaller than without, for the same placement decisions.
func TestPropertyCommNeverHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ring, err := topology.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		g, err := taskgraph.Layered("p", taskgraph.LayeredConfig{
			Layers: 4, MinWidth: 2, MaxWidth: 4, MinLoad: 2, MaxLoad: 10,
			MinBits: 10, MaxBits: 100, EdgeProb: 0.5,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		// A deterministic placement shared by both runs.
		place := make(map[taskgraph.TaskID]int)
		for i := 0; i < g.NumTasks(); i++ {
			place[taskgraph.TaskID(i)] = i % ring.N()
		}
		with, err := Run(Model{Graph: g, Topo: ring, Comm: comm()}, &fixedPolicy{place: place}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		without, err := Run(Model{Graph: g, Topo: ring, Comm: comm().NoComm()}, &fixedPolicy{place: place}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if with.Makespan < without.Makespan-1e-9 {
			t.Fatalf("trial %d: comm helped (%g < %g)", trial, with.Makespan, without.Makespan)
		}
	}
}

func TestSimulatorQueriesDuringRun(t *testing.T) {
	g := taskgraph.New("q")
	a := g.AddTask("a", 5)
	b := g.AddTask("b", 5)
	g.MustAddEdge(a, b, 40)
	var sawLocated bool
	probe := &probePolicy{onEpoch: func(ep *Epoch) {
		if len(ep.Ready) == 1 && ep.Ready[0] == b {
			if ep.Sim.ProcOf(a) != 0 {
				t.Errorf("ProcOf(a) = %d during b's epoch", ep.Sim.ProcOf(a))
			}
			if !ep.Sim.IsDone(a) || ep.Sim.FinishTime(a) != 5 {
				t.Errorf("a not recorded done at 5")
			}
			sawLocated = true
		}
	}}
	if _, err := Run(Model{Graph: g, Topo: solo(t), Comm: comm()}, probe, Options{}); err != nil {
		t.Fatal(err)
	}
	if !sawLocated {
		t.Error("epoch for b never observed")
	}
}

// probePolicy behaves like greedyPolicy but lets tests observe epochs.
type probePolicy struct {
	onEpoch func(*Epoch)
}

func (p *probePolicy) Name() string { return "probe" }

func (p *probePolicy) Assign(ep *Epoch) []Assignment {
	if p.onEpoch != nil {
		p.onEpoch(ep)
	}
	return greedyPolicy{}.Assign(ep)
}

func TestZeroLoadTasks(t *testing.T) {
	g := taskgraph.New("zero")
	a := g.AddTask("a", 0)
	b := g.AddTask("b", 0)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	res, err := Run(Model{Graph: g, Topo: solo(t), Comm: comm()}, greedyPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 1 {
		t.Fatalf("makespan = %g, want 1", res.Makespan)
	}
}

func TestIntervalKindString(t *testing.T) {
	for kind, want := range map[IntervalKind]string{
		KindCompute: "compute", KindSend: "send", KindReceive: "receive", KindRoute: "route",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", kind, kind.String())
		}
	}
	if IntervalKind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestUtilizationMetric(t *testing.T) {
	g := taskgraph.New("u")
	g.AddTask("a", 10)
	g.AddTask("b", 10)
	res, err := Run(Model{Graph: g, Topo: pair(t), Comm: comm()}, greedyPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Utilization()-1) > 1e-9 {
		t.Errorf("utilization = %g, want 1", res.Utilization())
	}
}

func TestLinkBusyAccounting(t *testing.T) {
	// One message over two hops: both links carry the full transfer time.
	g := taskgraph.New("lb")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 400) // w = 40µs per hop
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a: 0, b: 2}}
	res, err := Run(Model{Graph: g, Topo: triChain(t), Comm: comm()}, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LinkBusy) != 2 {
		t.Fatalf("LinkBusy = %v, want 2 links", res.LinkBusy)
	}
	for link, busy := range res.LinkBusy {
		if math.Abs(busy-40) > 1e-9 {
			t.Errorf("link %v busy %g, want 40", link, busy)
		}
	}
	if math.Abs(res.MaxLinkBusy()-40) > 1e-9 {
		t.Errorf("MaxLinkBusy = %g", res.MaxLinkBusy())
	}
}

func TestLinkBusySharedMediumSingleKey(t *testing.T) {
	bus, err := topology.Bus(4)
	if err != nil {
		t.Fatal(err)
	}
	g := taskgraph.New("b")
	a1 := g.AddTask("a1", 10)
	b1 := g.AddTask("b1", 1)
	a2 := g.AddTask("a2", 10)
	b2 := g.AddTask("b2", 1)
	g.MustAddEdge(a1, b1, 400)
	g.MustAddEdge(a2, b2, 400)
	place := &fixedPolicy{place: map[taskgraph.TaskID]int{a1: 0, a2: 1, b1: 2, b2: 3}}
	res, err := Run(Model{Graph: g, Topo: bus, Comm: comm()}, place, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LinkBusy) != 1 {
		t.Fatalf("bus LinkBusy = %v, want single medium key", res.LinkBusy)
	}
	if math.Abs(res.MaxLinkBusy()-80) > 1e-9 {
		t.Errorf("bus medium busy = %g, want 80", res.MaxLinkBusy())
	}
}

// Property: finish times always respect precedence: a consumer finishes
// no earlier than its producer plus its own load.
func TestPropertyPrecedenceRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ring, err := topology.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		g, err := taskgraph.Layered("p", taskgraph.LayeredConfig{
			Layers: 3 + rng.Intn(4), MinWidth: 1, MaxWidth: 5,
			MinLoad: 1, MaxLoad: 20, MinBits: 0, MaxBits: 300, EdgeProb: 0.4,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Model{Graph: g, Topo: ring, Comm: comm()}, greedyPolicy{}, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < g.NumTasks(); i++ {
			id := taskgraph.TaskID(i)
			for _, h := range g.Predecessors(id) {
				if res.Finish[id] < res.Finish[h.To]+g.Load(id)-1e-9 {
					t.Fatalf("trial %d: task %d (fin %g) ran before pred %d (fin %g) completed",
						trial, id, res.Finish[id], h.To, res.Finish[h.To])
				}
			}
		}
	}
}
