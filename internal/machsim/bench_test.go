package machsim

import (
	"math/rand"
	"testing"

	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func benchGraph(b *testing.B, layers, width int) *taskgraph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g, err := taskgraph.Layered("bench", taskgraph.LayeredConfig{
		Layers: layers, MinWidth: width, MaxWidth: width,
		MinLoad: 5, MaxLoad: 50, MinBits: 40, MaxBits: 400, EdgeProb: 0.3,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkSimulateSmallGraph(b *testing.B) {
	g := benchGraph(b, 5, 8)
	topo, err := topology.Hypercube(3)
	if err != nil {
		b.Fatal(err)
	}
	m := Model{Graph: g, Topo: topo, Comm: topology.DefaultCommParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, greedyPolicy{}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateLargeGraph(b *testing.B) {
	g := benchGraph(b, 40, 25) // 1000 tasks
	topo, err := topology.Hypercube(4)
	if err != nil {
		b.Fatal(err)
	}
	m := Model{Graph: g, Topo: topo, Comm: topology.DefaultCommParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, greedyPolicy{}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateNoCommLargeGraph(b *testing.B) {
	g := benchGraph(b, 40, 25)
	topo, err := topology.Hypercube(4)
	if err != nil {
		b.Fatal(err)
	}
	m := Model{Graph: g, Topo: topo, Comm: topology.DefaultCommParams().NoComm()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, greedyPolicy{}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateWarmArena measures the arena fast path: one bound
// simulator reused across runs. Warm runs must report 0 allocs/op.
func BenchmarkSimulateWarmArena(b *testing.B) {
	g := benchGraph(b, 40, 25) // 1000 tasks
	topo, err := topology.Hypercube(4)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := NewSimulator(Model{Graph: g, Topo: topo, Comm: topology.DefaultCommParams()}, Options{})
	if err != nil {
		b.Fatal(err)
	}
	pol := &poolGreedy{}
	if _, err := sim.Run(pol); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(pol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateWithGantt(b *testing.B) {
	g := benchGraph(b, 10, 10)
	topo, err := topology.Ring(9)
	if err != nil {
		b.Fatal(err)
	}
	m := Model{Graph: g, Topo: topo, Comm: topology.DefaultCommParams()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, greedyPolicy{}, Options{RecordGantt: true}); err != nil {
			b.Fatal(err)
		}
	}
}
