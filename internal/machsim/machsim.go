// Package machsim is an event-driven execution simulator for directed
// taskgraphs on multicomputers, reproducing the machine semantics of
// D'Hollander & Devis (ICPP 1991):
//
//   - processors execute one task at a time;
//   - bidirectional point-to-point links carry one message at a time with
//     bandwidth BW; a message of L bits takes L/BW per link hop
//     (store-and-forward along the canonical shortest path);
//   - sending a message costs σ on the source processor, routing costs τ on
//     every intermediate processor and receiving costs τ on the destination;
//     "it is assumed that incoming messages preempt an active processor"
//     (§2), so these overheads stretch whatever task is running;
//   - scheduling proceeds in assignment epochs: the first at time zero,
//     later ones whenever one or more processors become idle (§4.1). At
//     each epoch a pluggable Policy maps ready tasks onto idle processors.
//
// The simulator records makespan, speedup, per-processor utilization,
// per-epoch packet statistics and, optionally, a Gantt trace in the style
// of the paper's Figure 2.
package machsim

import (
	"fmt"

	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Model bundles the immutable inputs of a simulation run.
type Model struct {
	Graph *taskgraph.Graph
	Topo  *topology.Topology
	Comm  topology.CommParams
}

// Validate checks that the model is complete and well-formed.
func (m Model) Validate() error {
	if m.Graph == nil {
		return fmt.Errorf("machsim: nil taskgraph")
	}
	if m.Topo == nil {
		return fmt.Errorf("machsim: nil topology")
	}
	if m.Graph.NumTasks() == 0 {
		return fmt.Errorf("machsim: empty taskgraph")
	}
	if err := m.Graph.Validate(); err != nil {
		return err
	}
	return m.Comm.Validate()
}

// Assignment maps one ready task onto one idle processor.
type Assignment struct {
	Task taskgraph.TaskID
	Proc int
}

// Epoch is the information a Policy sees at an assignment epoch: the
// current time, the ready (unassigned) tasks, the idle processors, and a
// read-only view of the simulator for querying task placement history.
type Epoch struct {
	Time  float64
	Ready []taskgraph.TaskID // ascending ID order
	Idle  []int              // ascending processor order
	Sim   *Simulator
}

// Policy decides, at every assignment epoch, which ready tasks start on
// which idle processors. A policy may assign at most one task per idle
// processor; tasks and processors it leaves out simply wait for a later
// epoch. Policies must not retain the Epoch or its slices.
type Policy interface {
	// Name identifies the policy in reports ("SA", "HLF", ...).
	Name() string
	// Assign returns the epoch's assignments. The returned slice is only
	// valid until the next Assign call: policies may reuse its backing
	// array, so callers must copy it to retain it across epochs.
	Assign(ep *Epoch) []Assignment
}

// Options configures a simulation run.
type Options struct {
	// RecordGantt enables interval recording for Gantt rendering.
	RecordGantt bool
	// MaxEvents aborts runaway simulations; 0 means the default of 50
	// million processed events.
	MaxEvents int
	// DisableReceiveOverhead drops the τ charge at the destination
	// processor. Equation (4) of the paper counts routing τ only for
	// intermediate hops; the simulator charges the receive τ as well by
	// default because the paper's Figure 2 Gantt chart shows explicit
	// receive blocks. This knob exists for ablations.
	DisableReceiveOverhead bool
	// Interrupt, when non-nil, is polled once per event batch; a non-nil
	// return aborts the simulation with that error. It is how callers
	// impose deadlines (e.g. a context) on long simulations: the solver
	// portfolio races policies under a shared deadline through this hook.
	Interrupt func() error
	// Bound, when non-nil, is polled like Interrupt but receives the
	// current simulation clock — a monotone lower bound on the final
	// makespan, since time never goes backwards. A non-nil return aborts
	// the run with that error. The solver portfolio uses it to cancel a
	// member whose own bound already exceeds the incumbent best result.
	Bound func(now float64) error
	// Publish, when non-nil, is called exactly once with the final
	// makespan the moment every task has finished — before result
	// assembly, statistics or cloning. The solver portfolio uses it to
	// publish a member's completed makespan into the shared incumbent as
	// early as possible, tightening the other members' Bound while they
	// are still running.
	Publish func(makespan float64)
}

// IntervalKind classifies Gantt intervals.
type IntervalKind int

// Interval kinds, mirroring the block types of the paper's Figure 2:
// full-height compute blocks, half-height send and receive blocks, and
// quarter-height route blocks.
const (
	KindCompute IntervalKind = iota
	KindSend
	KindReceive
	KindRoute
)

// String returns the kind name.
func (k IntervalKind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindReceive:
		return "receive"
	case KindRoute:
		return "route"
	default:
		return fmt.Sprintf("IntervalKind(%d)", int(k))
	}
}

// Interval is one block of processor activity.
type Interval struct {
	Proc  int
	Kind  IntervalKind
	Task  taskgraph.TaskID // computing task; for message kinds, the consumer
	From  taskgraph.TaskID // message producer (message kinds only)
	Start float64
	End   float64
}

// EpochStat records one assignment epoch, backing the paper's §6a
// observation ("on the average there are 15 candidates for 1.46 free
// processors").
type EpochStat struct {
	Time     float64
	Ready    int // candidate tasks in the packet
	Idle     int // free processors in the packet
	Assigned int
}

// ProcStat aggregates one processor's activity.
type ProcStat struct {
	ComputeTime  float64 // pure task execution time (sum of loads)
	OverheadTime float64 // σ/τ message handling time
	TasksRun     int
}

// Result reports a completed simulation.
type Result struct {
	Policy         string
	Makespan       float64
	SequentialTime float64 // T1 = Σ load
	Speedup        float64 // T1 / Makespan
	Messages       int     // inter-processor messages
	TransferTime   float64 // Σ per-hop link occupancy
	OverheadTime   float64 // Σ σ/τ charges across processors
	Epochs         []EpochStat
	Procs          []ProcStat
	Gantt          []Interval // nil unless Options.RecordGantt
	// Forced counts liveness fallbacks: epochs where the policy declined
	// to assign anything while the simulator had no pending events, forcing
	// the highest-level ready task onto the first idle processor. A correct
	// policy never triggers this.
	Forced int
	// Start holds each task's computation start time (after its input
	// messages arrived).
	Start []float64
	// Finish holds each task's completion time.
	Finish []float64
	// Proc holds each task's processor.
	Proc []int
	// LinkBusy holds the total transfer time carried by each link,
	// keyed by canonical (low, high) processor pairs; on a bus topology
	// the single shared medium is keyed {-1, -1}.
	LinkBusy map[[2]int]float64
	// Raced marks a result whose identity (not its quality) depended on
	// wall-clock timing — e.g. a portfolio race resolved by early
	// cancellation, where which member supplied the winning schedule is a
	// timing fact. The service serves raced results but never caches them.
	Raced bool
	// Pruned counts portfolio members cancelled mid-run because their own
	// makespan lower bound exceeded the incumbent best (Options.Bound).
	// Whether a member gets pruned before finishing is a wall-clock fact,
	// so results with Pruned > 0 are also flagged Raced.
	Pruned int
	// Members records the per-member outcome of a portfolio race (nil for
	// single-solver results): who ran, how long, and how each ended.
	// WallNS is wall-clock and therefore excluded from the cached wire
	// body; the service folds it into metrics and traces instead.
	Members []MemberStat
	// RestartsAbandoned counts SA restarts stopped early by the
	// cooperative incumbent rule (core.Options.Cooperative). Unlike
	// Pruned, abandonment is decided at seed-deterministic stage barriers
	// — never by wall clock — so results with abandonment stay cacheable.
	RestartsAbandoned int
	// WarmEpochsSaved counts the annealing (cooling) stages the SA
	// scheduler skipped because the solve was warm-started from a cached
	// assignment (core.Options.Warm), summed over packets. Deterministic
	// for a fixed (seed, warm seed), so warm results stay cacheable.
	WarmEpochsSaved int
	// BoundUpdates counts successful tightenings of the portfolio's
	// shared incumbent bound during the race that produced this result:
	// each one is a completed member publishing a makespan that strictly
	// improved the bound the still-running members prune against.
	BoundUpdates int
}

// MemberStat is one portfolio member's run record.
type MemberStat struct {
	// Member is the member solver's registry name.
	Member string
	// Outcome classifies how the member's run ended: "win" (supplied the
	// returned schedule), "finish" (completed but lost), "pruned"
	// (cancelled by the incumbent bound), "timeout" (lost to its own
	// MemberTimeout), "cancelled" (the shared context ended or an early
	// cancel fired), or "error".
	Outcome string
	// WallNS is the member's wall-clock solve time.
	WallNS int64
	// Makespan is the member's completed makespan (0 when it never
	// finished).
	Makespan float64
}

// Clone returns a deep copy of the result, detached from any simulator
// arena: safe to retain across subsequent Bind/Run calls.
func (r *Result) Clone() *Result {
	out := *r
	if r.Epochs != nil {
		out.Epochs = append([]EpochStat(nil), r.Epochs...)
	}
	if r.Procs != nil {
		out.Procs = append([]ProcStat(nil), r.Procs...)
	}
	if r.Gantt != nil {
		out.Gantt = append([]Interval(nil), r.Gantt...)
	}
	if r.Start != nil {
		out.Start = append([]float64(nil), r.Start...)
	}
	if r.Finish != nil {
		out.Finish = append([]float64(nil), r.Finish...)
	}
	if r.Proc != nil {
		out.Proc = append([]int(nil), r.Proc...)
	}
	if r.LinkBusy != nil {
		out.LinkBusy = make(map[[2]int]float64, len(r.LinkBusy))
		for k, v := range r.LinkBusy {
			out.LinkBusy[k] = v
		}
	}
	if r.Members != nil {
		out.Members = append([]MemberStat(nil), r.Members...)
	}
	return &out
}

// MaxLinkBusy returns the busiest link's total transfer time (0 when no
// messages flowed).
func (r *Result) MaxLinkBusy() float64 {
	best := 0.0
	for _, v := range r.LinkBusy {
		if v > best {
			best = v
		}
	}
	return best
}

// AvgReady returns the mean packet candidate count over all epochs.
func (r *Result) AvgReady() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range r.Epochs {
		sum += float64(e.Ready)
	}
	return sum / float64(len(r.Epochs))
}

// AvgIdle returns the mean free-processor count over all epochs.
func (r *Result) AvgIdle() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range r.Epochs {
		sum += float64(e.Idle)
	}
	return sum / float64(len(r.Epochs))
}

// Utilization returns mean processor compute utilization over the run.
func (r *Result) Utilization() float64 {
	if r.Makespan <= 0 || len(r.Procs) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r.Procs {
		sum += p.ComputeTime
	}
	return sum / (r.Makespan * float64(len(r.Procs)))
}
