package machsim

import "repro/internal/taskgraph"

// evKind discriminates simulator events.
type evKind int

const (
	// evFinish: a task completes on a processor (subject to seq check,
	// because preemption overheads postpone finishes).
	evFinish evKind = iota
	// evMsgReady: a message has been handed to the network layer at its
	// current node and wants the next link.
	evMsgReady
	// evMsgArrive: a message's transmission over one link completed; it is
	// now at the next node awaiting routing or receive handling.
	evMsgArrive
)

// event is one entry of the simulation heap. Events are ordered by time,
// ties broken by sequence number, which makes runs fully deterministic.
type event struct {
	time float64
	seq  int64
	kind evKind
	proc int              // evFinish: the processor
	task taskgraph.TaskID // evFinish: the task
	msg  *message
}

// message is an in-flight inter-processor data transfer for one edge of
// the taskgraph, following the canonical shortest path hop by hop. The
// path is never materialized: cur advances via Topology.NextHop, so a
// message is a fixed-size record the simulator can pool and reuse across
// runs.
type message struct {
	from taskgraph.TaskID // producer task
	to   taskgraph.TaskID // consumer task
	cur  int              // node currently holding the message
	nxt  int              // node at the far end of the link in flight
	dst  int              // destination processor
	xfer float64          // per-hop transfer time w = L/BW (already scaled)
}

// eventHeap is a binary min-heap over (time, seq).
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

// reset empties the heap, keeping its backing array for reuse.
func (h *eventHeap) reset() { h.a = h.a[:0] }

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].time != h.a[j].time {
		return h.a[i].time < h.a[j].time
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *eventHeap) peek() event { return h.a[0] }

func (h *eventHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(l, small) {
			small = l
		}
		if r < last && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
