// Package optimal computes exact minimum makespans for small scheduling
// instances (identical processors, precedence constraints, free
// communication — the classic P|prec|Cmax setting of Graham's analysis).
//
// The solver is a branch-and-bound over the serial schedule-generation
// scheme: tasks are appended one at a time in every precedence-feasible
// order, each on every distinct processor-availability slot, started as
// early as possible. For a regular objective such as makespan this
// enumeration contains an optimal (active) schedule. Pruning uses the
// critical-path and area lower bounds plus the best schedule found so far.
//
// The package exists to *validate* the heuristics: the paper's §6 cites
// Adam, Chandy & Dickinson (1974) for HLF staying within 5 % of the
// optimum, and claims SA "optimally solves the Graham list scheduling
// anomalies"; both claims are checked against this solver in the
// experiment suite. It is exponential — keep instances at or below ~14
// tasks.
package optimal

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/taskgraph"
)

// Options bounds the search.
type Options struct {
	// MaxNodes aborts the search after this many branch nodes
	// (0 = 20 million).
	MaxNodes int64
	// Interrupt, when non-nil, is polled every few thousand branch nodes;
	// a non-nil return aborts the search with that error. It lets callers
	// impose deadlines (e.g. a context) on the exponential search.
	Interrupt func() error
}

// Result reports an exact solve.
type Result struct {
	Makespan float64
	Nodes    int64 // branch nodes explored
	// Start and Proc describe one optimal schedule.
	Start []float64
	Proc  []int
}

const defaultMaxNodes = 20_000_000

// ErrTooLarge is wrapped in errors returned when the search exceeds its
// node budget.
var ErrTooLarge = fmt.Errorf("optimal: search exceeded node budget")

// solver carries the branch-and-bound state.
type solver struct {
	g         *taskgraph.Graph
	n         int
	interrupt func() error
	procs     int
	loads     []float64
	levels    []float64
	preds     [][]taskgraph.TaskID
	maxN      int64
	nodes     int64
	best      float64
	bestSet   bool

	// Current partial schedule.
	finish    []float64
	proc      []int
	start     []float64
	scheduled []bool
	remaining int
	availPool []float64 // processor availability times

	bestStart []float64
	bestProc  []int
}

// Makespan returns the exact minimum makespan of g on the given number of
// identical processors with free communication.
func Makespan(g *taskgraph.Graph, procs int, opt Options) (*Result, error) {
	if procs < 1 {
		return nil, fmt.Errorf("optimal: %d processors", procs)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.NumTasks()
	if n == 0 {
		return nil, fmt.Errorf("optimal: empty graph")
	}
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	s := &solver{
		g:         g,
		n:         n,
		interrupt: opt.Interrupt,
		procs:     procs,
		loads:     make([]float64, n),
		levels:    levels,
		preds:     make([][]taskgraph.TaskID, n),
		maxN:      opt.MaxNodes,
		finish:    make([]float64, n),
		proc:      make([]int, n),
		start:     make([]float64, n),
		scheduled: make([]bool, n),
		remaining: n,
		availPool: make([]float64, procs),
		best:      math.Inf(1),
	}
	if s.maxN == 0 {
		s.maxN = defaultMaxNodes
	}
	for i := 0; i < n; i++ {
		id := taskgraph.TaskID(i)
		s.loads[i] = g.Load(id)
		for _, h := range g.Predecessors(id) {
			s.preds[i] = append(s.preds[i], h.To)
		}
	}
	// Seed the incumbent with a greedy HLF schedule so pruning bites
	// immediately.
	s.seedGreedy()
	if err := s.search(0); err != nil {
		return nil, err
	}
	if !s.bestSet {
		return nil, fmt.Errorf("optimal: no schedule found (internal error)")
	}
	return &Result{
		Makespan: s.best,
		Nodes:    s.nodes,
		Start:    s.bestStart,
		Proc:     s.bestProc,
	}, nil
}

// seedGreedy installs an HLF list schedule as the incumbent upper bound.
func (s *solver) seedGreedy() {
	order := make([]int, s.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return s.levels[order[a]] > s.levels[order[b]] })

	avail := make([]float64, s.procs)
	finish := make([]float64, s.n)
	start := make([]float64, s.n)
	procOf := make([]int, s.n)
	done := make([]bool, s.n)
	makespan := 0.0
	for left := s.n; left > 0; {
		for _, i := range order {
			if done[i] {
				continue
			}
			ready := true
			predMax := 0.0
			for _, p := range s.preds[i] {
				if !done[int(p)] {
					ready = false
					break
				}
				if finish[p] > predMax {
					predMax = finish[p]
				}
			}
			if !ready {
				continue
			}
			bestP := 0
			for p := 1; p < s.procs; p++ {
				if avail[p] < avail[bestP] {
					bestP = p
				}
			}
			st := math.Max(avail[bestP], predMax)
			start[i] = st
			finish[i] = st + s.loads[i]
			procOf[i] = bestP
			avail[bestP] = finish[i]
			if finish[i] > makespan {
				makespan = finish[i]
			}
			done[i] = true
			left--
		}
	}
	s.best = makespan
	s.bestSet = true
	s.bestStart = start
	s.bestProc = procOf
}

// lowerBound bounds the completion of the remaining work given the
// current partial schedule.
func (s *solver) lowerBound() float64 {
	// Area bound: remaining load spread over all processors on top of the
	// earliest availability; level bound: every unscheduled-but-eligible
	// chain must still complete; scheduled tasks bound directly.
	lb := 0.0
	var remLoad float64
	earliest := math.Inf(1)
	for _, a := range s.availPool {
		if a < earliest {
			earliest = a
		}
	}
	for i := 0; i < s.n; i++ {
		if s.scheduled[i] {
			if s.finish[i] > lb {
				lb = s.finish[i]
			}
			continue
		}
		remLoad += s.loads[i]
		// The task cannot start before its scheduled predecessors finish
		// nor before a processor frees.
		est := earliest
		for _, p := range s.preds[i] {
			if s.scheduled[p] && s.finish[p] > est {
				est = s.finish[p]
			}
		}
		if v := est + s.levels[i]; v > lb {
			lb = v
		}
	}
	var availSum float64
	for _, a := range s.availPool {
		availSum += a
	}
	if v := (availSum + remLoad) / float64(s.procs); v > lb {
		lb = v
	}
	return lb
}

// search extends the partial schedule by one task in all feasible ways.
func (s *solver) search(depth int) error {
	s.nodes++
	if s.nodes > s.maxN {
		return fmt.Errorf("%w (%d nodes)", ErrTooLarge, s.maxN)
	}
	if s.interrupt != nil && s.nodes&0xfff == 0 {
		if err := s.interrupt(); err != nil {
			return fmt.Errorf("optimal: interrupted after %d nodes: %w", s.nodes, err)
		}
	}
	if s.remaining == 0 {
		mk := 0.0
		for i := 0; i < s.n; i++ {
			if s.finish[i] > mk {
				mk = s.finish[i]
			}
		}
		if mk < s.best {
			s.best = mk
			s.bestSet = true
			s.bestStart = append(s.bestStart[:0], s.start...)
			s.bestProc = append(s.bestProc[:0], s.proc...)
		}
		return nil
	}
	if s.lowerBound() >= s.best-1e-12 {
		return nil // cannot beat the incumbent
	}

	// Eligible tasks: unscheduled with all predecessors scheduled.
	for i := 0; i < s.n; i++ {
		if s.scheduled[i] {
			continue
		}
		eligible := true
		predMax := 0.0
		for _, p := range s.preds[i] {
			if !s.scheduled[p] {
				eligible = false
				break
			}
			if s.finish[p] > predMax {
				predMax = s.finish[p]
			}
		}
		if !eligible {
			continue
		}
		// Branch over distinct availability values only; identical
		// processors make equal slots symmetric.
		tried := make(map[float64]bool, s.procs)
		for p := 0; p < s.procs; p++ {
			a := s.availPool[p]
			if tried[a] {
				continue
			}
			tried[a] = true
			st := math.Max(a, predMax)
			s.scheduled[i] = true
			s.start[i] = st
			s.finish[i] = st + s.loads[i]
			s.proc[i] = p
			s.availPool[p] = s.finish[i]
			s.remaining--

			if err := s.search(depth + 1); err != nil {
				return err
			}

			s.remaining++
			s.availPool[p] = a
			s.scheduled[i] = false
		}
	}
	return nil
}
