package optimal

import (
	"math/rand"
	"testing"

	"repro/internal/taskgraph"
)

func BenchmarkExactSolve8Tasks(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g, err := taskgraph.GnpDAG("b", 8, 0.25, 1, 9, 0, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Makespan(g, 3, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
