package optimal

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/taskgraph"
)

func TestChainIsSequential(t *testing.T) {
	g, err := taskgraph.Chain("c", 5, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Makespan(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 15 {
		t.Fatalf("chain makespan = %g, want 15", res.Makespan)
	}
}

func TestIndependentTasksPack(t *testing.T) {
	// Loads 3,3,2,2,2 on 2 processors: optimum 6 ({3,3} and {2,2,2}).
	g := taskgraph.New("ind")
	for _, l := range []float64{3, 3, 2, 2, 2} {
		g.AddTask("", l)
	}
	res, err := Makespan(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 6 {
		t.Fatalf("makespan = %g, want 6", res.Makespan)
	}
}

func TestGrahamInstanceOptimum(t *testing.T) {
	// Graham's reduced-times anomaly instance has optimum 10 on 3
	// processors.
	g := taskgraph.New("graham")
	durs := []float64{2, 1, 1, 1, 3, 3, 3, 3, 8}
	ids := make([]taskgraph.TaskID, len(durs))
	for i, d := range durs {
		ids[i] = g.AddTask("", d)
	}
	g.MustAddEdge(ids[0], ids[8], 0)
	for _, s := range []int{4, 5, 6, 7} {
		g.MustAddEdge(ids[3], ids[s], 0)
	}
	res, err := Makespan(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("makespan = %g, want 10", res.Makespan)
	}
}

func TestDelayedStartBeatsGreedy(t *testing.T) {
	// An instance where pure greedy (no idling consideration) can lose:
	// two processors, tasks A(4), B(1)->C(6). Optimal: B then C on P0
	// (finish 7), A on P1 (finish 4) => 7.
	g := taskgraph.New("idle")
	g.AddTask("A", 4)
	b := g.AddTask("B", 1)
	c := g.AddTask("C", 6)
	g.MustAddEdge(b, c, 0)
	res, err := Makespan(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-7) > 1e-9 {
		t.Fatalf("makespan = %g, want 7", res.Makespan)
	}
}

func TestScheduleFieldsConsistent(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 4, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Makespan(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Check the returned schedule is feasible and matches the makespan.
	mk := 0.0
	for i := 0; i < g.NumTasks(); i++ {
		id := taskgraph.TaskID(i)
		end := res.Start[i] + g.Load(id)
		if end > mk {
			mk = end
		}
		for _, h := range g.Predecessors(id) {
			predEnd := res.Start[h.To] + g.Load(h.To)
			if res.Start[i] < predEnd-1e-9 {
				t.Fatalf("task %d starts before pred %d finishes", i, h.To)
			}
		}
	}
	if math.Abs(mk-res.Makespan) > 1e-9 {
		t.Fatalf("schedule makespan %g != reported %g", mk, res.Makespan)
	}
	// No processor runs two tasks at once.
	for i := 0; i < g.NumTasks(); i++ {
		for j := i + 1; j < g.NumTasks(); j++ {
			if res.Proc[i] != res.Proc[j] {
				continue
			}
			iEnd := res.Start[i] + g.Load(taskgraph.TaskID(i))
			jEnd := res.Start[j] + g.Load(taskgraph.TaskID(j))
			if res.Start[i] < jEnd-1e-9 && res.Start[j] < iEnd-1e-9 {
				t.Fatalf("tasks %d and %d overlap on processor %d", i, j, res.Proc[i])
			}
		}
	}
}

func TestErrors(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	if _, err := Makespan(g, 0, Options{}); err == nil {
		t.Error("0 processors accepted")
	}
	if _, err := Makespan(taskgraph.New("empty"), 2, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
	cyc := taskgraph.New("cyc")
	a := cyc.AddTask("a", 1)
	b := cyc.AddTask("b", 1)
	cyc.MustAddEdge(a, b, 0)
	cyc.MustAddEdge(b, a, 0)
	if _, err := Makespan(cyc, 2, Options{}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := taskgraph.GnpDAG("big", 12, 0.1, 1, 9, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Makespan(g, 3, Options{MaxNodes: 10})
	if err == nil || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("tiny budget err = %v, want ErrTooLarge", err)
	}
}

// Property: the exact optimum never exceeds the greedy HLF seed and never
// goes below the critical-path/area lower bound.
func TestPropertyOptimumWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(5)
		g, err := taskgraph.GnpDAG("p", n, 0.3*rng.Float64(), 1, 9, 0, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		procs := 2 + rng.Intn(2)
		res, err := Makespan(g, procs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lb, err := g.LowerBoundMakespan(procs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < lb-1e-9 {
			t.Fatalf("trial %d: optimum %g below bound %g", trial, res.Makespan, lb)
		}
		// Single processor: optimum is exactly T1.
		solo, err := Makespan(g, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(solo.Makespan-g.TotalLoad()) > 1e-9 {
			t.Fatalf("trial %d: 1-proc optimum %g != T1 %g", trial, solo.Makespan, g.TotalLoad())
		}
	}
}
