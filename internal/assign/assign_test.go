package assign

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func TestSolveMappingCoLocatesNothingButMinimizesTraffic(t *testing.T) {
	// Four tasks in a heavy square of communication, mapped onto a
	// 4-processor ring: the optimum keeps chatting pairs adjacent.
	g := taskgraph.New("square")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	d := g.AddTask("d", 1)
	g.MustAddEdge(a, b, 100)
	g.MustAddEdge(b, c, 100)
	g.MustAddEdge(c, d, 100)
	g.MustAddEdge(d, a, 100)
	ring, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SolveMapping(g, ring, MappingOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Each task on its own processor.
	seen := map[int]bool{}
	for _, p := range m.ProcOf {
		if seen[p] {
			t.Fatalf("two tasks share processor %d: %v", p, m.ProcOf)
		}
		seen[p] = true
	}
	// Optimal total traffic: the ring a-b-c-d around the ring costs
	// 4 edges × 100 bits × 1 hop = 400 traffic; max link load 100. Cost
	// = 400 + 100 = 500 at the default weights.
	if m.Cost > 500+1e-9 {
		t.Errorf("mapping cost = %g, want optimal 500", m.Cost)
	}
}

func TestSolveMappingRejectsTooManyTasks(t *testing.T) {
	g := taskgraph.New("g")
	for i := 0; i < 5; i++ {
		g.AddTask("", 1)
	}
	ring, _ := topology.Ring(4)
	if _, err := SolveMapping(g, ring, MappingOptions{}); err == nil {
		t.Error("NT > NP accepted")
	}
	if _, err := SolveMapping(g, nil, MappingOptions{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := SolveMapping(taskgraph.New("e"), ring, MappingOptions{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestSolveBalancingEvensLoad(t *testing.T) {
	// 12 independent tasks of equal load on 4 processors: the balance
	// term alone drives the solution to 3 tasks per processor.
	rng := rand.New(rand.NewSource(2))
	g, err := taskgraph.Independent("ind", 12, 5, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SolveBalancing(g, hc, BalancingOptions{Wb: 1, Wc: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, hc.N())
	for _, p := range m.ProcOf {
		counts[p]++
	}
	for p, c := range counts {
		if c != 3 {
			t.Errorf("processor %d got %d tasks, want 3 (counts %v)", p, c, counts)
		}
	}
	if m.Cost > 1e-9 {
		t.Errorf("balanced cost = %g, want 0", m.Cost)
	}
}

func TestSolveBalancingPullsCommunicatingTasksTogether(t *testing.T) {
	// Two clusters with heavy internal traffic and no cross traffic:
	// with communication dominant, each cluster should land on one
	// processor (loads ignored).
	g := taskgraph.New("clusters")
	var c1, c2 []taskgraph.TaskID
	for i := 0; i < 4; i++ {
		c1 = append(c1, g.AddTask("", 1))
		c2 = append(c2, g.AddTask("", 1))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.MustAddEdge(c1[i], c1[j], 1000)
			g.MustAddEdge(c2[i], c2[j], 1000)
		}
	}
	pairTopo, err := topology.ChainTopo(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SolveBalancing(g, pairTopo, BalancingOptions{Wb: 0.05, Wc: 0.95, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < 4; k++ {
		if m.ProcOf[c1[k]] != m.ProcOf[c1[0]] {
			t.Errorf("cluster 1 split: %v", m.ProcOf)
			break
		}
		if m.ProcOf[c2[k]] != m.ProcOf[c2[0]] {
			t.Errorf("cluster 2 split: %v", m.ProcOf)
			break
		}
	}
}

func TestBalancingDeltaConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := taskgraph.GnpDAG("g", 15, 0.3, 1, 9, 10, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := topology.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	st := &balanceState{
		g:       g,
		topo:    ring,
		opt:     BalancingOptions{Wb: 0.5, Wc: 0.5},
		procOf:  make([]int, g.NumTasks()),
		load:    make([]float64, ring.N()),
		avg:     g.TotalLoad() / float64(ring.N()),
		loadDen: 2 * g.TotalLoad() * (1 - 1/float64(ring.N())),
		commDen: g.TotalBits() * float64(ring.Diameter()),
	}
	for i := 0; i < g.NumTasks(); i++ {
		st.procOf[i] = i % ring.N()
		st.load[i%ring.N()] += g.Load(taskgraph.TaskID(i))
	}
	for move := 0; move < 300; move++ {
		before := st.Cost()
		delta, ok := st.Propose(rng)
		if !ok {
			t.Fatal("no move")
		}
		if math.Abs(st.Cost()-before-delta) > 1e-9 {
			t.Fatalf("move %d: delta %g, recomputed %g", move, delta, st.Cost()-before)
		}
		if move%2 == 1 {
			st.Undo()
			if math.Abs(st.Cost()-before) > 1e-9 {
				t.Fatalf("move %d: undo broke cost", move)
			}
		}
	}
}

func TestStaticPolicyRespectsMapping(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 4, 10, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	procOf := make([]int, g.NumTasks())
	for i := range procOf {
		procOf[i] = i % hc.N()
	}
	pol, err := NewStaticPolicy(g, procOf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: hc, Comm: topology.DefaultCommParams()},
		pol, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Proc {
		if p != procOf[i] {
			t.Errorf("task %d ran on %d, mapped to %d", i, p, procOf[i])
		}
	}
	if res.Forced != 0 {
		t.Errorf("forced = %d", res.Forced)
	}
}

func TestStaticPolicySerializesSharedProcessor(t *testing.T) {
	// Two independent tasks mapped to the same processor must serialize
	// even though another processor idles.
	g := taskgraph.New("g")
	g.AddTask("a", 10)
	g.AddTask("b", 10)
	pairTopo, err := topology.ChainTopo(2)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewStaticPolicy(g, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: pairTopo, Comm: topology.DefaultCommParams()},
		pol, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 20 {
		t.Errorf("makespan = %g, want 20 (serialized)", res.Makespan)
	}
}

func TestNewStaticPolicyValidates(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	if _, err := NewStaticPolicy(g, []int{0, 1}); err == nil {
		t.Error("wrong-length mapping accepted")
	}
}

func TestMappingDeterministicBySeed(t *testing.T) {
	g := taskgraph.New("g")
	for i := 0; i < 6; i++ {
		g.AddTask("", 1)
	}
	for i := 0; i < 5; i++ {
		g.MustAddEdge(taskgraph.TaskID(i), taskgraph.TaskID(i+1), 100)
	}
	hc, _ := topology.Hypercube(3)
	m1, err := SolveMapping(g, hc, MappingOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SolveMapping(g, hc, MappingOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.ProcOf {
		if m1.ProcOf[i] != m2.ProcOf[i] {
			t.Fatalf("same seed, different mappings: %v vs %v", m1.ProcOf, m2.ProcOf)
		}
	}
}
