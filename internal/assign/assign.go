// Package assign implements the two simulated-annealing assignment
// problems the paper positions itself against (§3):
//
//   - the *mapping problem* of Bollinger & Midkiff (ICPP '88): NT ≤ NP,
//     at most one task per processor, undirected communication; minimize
//     the total communication traffic together with the worst
//     point-to-point link load;
//   - the *balancing problem* of Hwang & Xu (ICPP '90): NT > NP, all
//     modules execute concurrently; minimize the absolute deviation from
//     the average processor load plus the inter-processor traffic.
//
// Both treat the taskgraph as undirected (edges are communication
// channels, not precedence) and produce one *static* mapping for the
// whole execution. The scheduling problem of the paper differs precisely
// in that precedence makes load and communication patterns change over
// time; StaticPolicy lets the experiment suite quantify that difference
// by executing a directed taskgraph under a static balanced mapping.
package assign

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Mapping is the result of a static assignment: ProcOf[t] is the
// processor of task t.
type Mapping struct {
	ProcOf []int
	Cost   float64
	Anneal anneal.Result
}

// MappingOptions configures SolveMapping.
type MappingOptions struct {
	// WTotal and WMax weight the total-traffic and max-link-load terms.
	// Bollinger & Midkiff minimize both; defaults are 1 and 1.
	WTotal, WMax float64
	Anneal       anneal.Options
	Seed         int64
}

// SolveMapping solves the mapping problem: place each task of g on its
// own processor of topo (NT ≤ NP) minimizing
//
//	WTotal · Σ w_ij·d(m_i,m_j)  +  WMax · max-link-load,
//
// where the link load accumulates the traffic of every message routed
// over the link along the canonical shortest paths.
func SolveMapping(g *taskgraph.Graph, topo *topology.Topology, opt MappingOptions) (*Mapping, error) {
	if topo == nil {
		return nil, fmt.Errorf("assign: nil topology")
	}
	if g.NumTasks() == 0 {
		return nil, fmt.Errorf("assign: empty graph")
	}
	if g.NumTasks() > topo.N() {
		return nil, fmt.Errorf("assign: mapping needs NT <= NP, got %d tasks on %d processors",
			g.NumTasks(), topo.N())
	}
	if opt.WTotal == 0 && opt.WMax == 0 {
		opt.WTotal, opt.WMax = 1, 1
	}
	st := &mappingState{
		g:    g,
		topo: topo,
		opt:  opt,
		// Initial placement: task i on processor i.
		procOf: make([]int, g.NumTasks()),
		taskAt: make([]int, topo.N()),
	}
	for p := range st.taskAt {
		st.taskAt[p] = -1
	}
	for i := range st.procOf {
		st.procOf[i] = i
		st.taskAt[i] = i
	}
	aopt := opt.Anneal
	if aopt.Cooling == nil {
		aopt = anneal.DefaultOptions()
		aopt.MovesPerStage = 4 * g.NumTasks() * topo.N()
		if aopt.MovesPerStage > 2000 {
			aopt.MovesPerStage = 2000
		}
	}
	if aopt.RNG == nil {
		aopt.RNG = rand.New(rand.NewSource(opt.Seed))
	}
	res, err := anneal.Minimize(st, aopt)
	if err != nil {
		return nil, err
	}
	return &Mapping{ProcOf: st.procOf, Cost: res.FinalCost, Anneal: res}, nil
}

// mappingState implements anneal.Problem and anneal.Snapshotter for the
// mapping problem. Costs are recomputed per move — mapping instances are
// small by definition (NT ≤ NP).
type mappingState struct {
	g      *taskgraph.Graph
	topo   *topology.Topology
	opt    MappingOptions
	procOf []int
	taskAt []int
	// Undo state of the last Propose.
	undoI, undoCur, undoTarget, undoOther int
	// Best-state double buffer for anneal.Snapshotter.
	bestProcOf []int
	bestTaskAt []int
}

// Cost implements anneal.Problem.
func (m *mappingState) Cost() float64 {
	total := 0.0
	linkLoad := make(map[[2]int]float64)
	for _, e := range m.g.Edges() {
		// Undirected view: traffic flows both ways; the volume counts once.
		src, dst := m.procOf[e.From], m.procOf[e.To]
		if src == dst {
			continue
		}
		d := m.topo.Dist(src, dst)
		total += e.Bits * float64(d)
		path := m.topo.Path(src, dst)
		for k := 1; k < len(path); k++ {
			linkLoad[topology.CanonicalLink(path[k-1], path[k])] += e.Bits
		}
	}
	maxLoad := 0.0
	for _, l := range linkLoad {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return m.opt.WTotal*total + m.opt.WMax*maxLoad
}

// Propose implements anneal.Problem: move a task to a free processor or
// exchange two tasks.
func (m *mappingState) Propose(rng *rand.Rand) (float64, bool) {
	n, p := len(m.procOf), len(m.taskAt)
	if n == 0 || p < 2 {
		return 0, false
	}
	before := m.Cost()
	i := rng.Intn(n)
	cur := m.procOf[i]
	target := rng.Intn(p)
	if target == cur {
		target = (target + 1 + rng.Intn(p-1)) % p
	}
	other := m.taskAt[target]
	m.procOf[i] = target
	m.taskAt[target] = i
	m.taskAt[cur] = other
	if other >= 0 {
		m.procOf[other] = cur
	}
	m.undoI, m.undoCur, m.undoTarget, m.undoOther = i, cur, target, other
	return m.Cost() - before, true
}

// Undo implements anneal.Problem: revert the last Propose.
func (m *mappingState) Undo() {
	i, cur, target, other := m.undoI, m.undoCur, m.undoTarget, m.undoOther
	m.procOf[i] = cur
	m.taskAt[cur] = i
	m.taskAt[target] = other
	if other >= 0 {
		m.procOf[other] = target
	}
}

// SaveBest implements anneal.Snapshotter.
func (m *mappingState) SaveBest() {
	m.bestProcOf = append(m.bestProcOf[:0], m.procOf...)
	m.bestTaskAt = append(m.bestTaskAt[:0], m.taskAt...)
}

// RestoreBest implements anneal.Snapshotter.
func (m *mappingState) RestoreBest() {
	copy(m.procOf, m.bestProcOf)
	copy(m.taskAt, m.bestTaskAt)
}

// BalancingOptions configures SolveBalancing.
type BalancingOptions struct {
	// Wb and Wc weight the load-balance and communication terms
	// (defaults 0.5/0.5 as in Hwang & Xu's formulation).
	Wb, Wc float64
	Anneal anneal.Options
	Seed   int64
}

// SolveBalancing solves the balancing problem: distribute the NT > NP
// tasks of g over the processors of topo minimizing
//
//	Wb · Σ_p |load(p) − avg|  +  Wc · Σ_{ij} w_ij·d(m_i,m_j),
//
// assuming all modules execute concurrently (precedence ignored).
func SolveBalancing(g *taskgraph.Graph, topo *topology.Topology, opt BalancingOptions) (*Mapping, error) {
	if topo == nil {
		return nil, fmt.Errorf("assign: nil topology")
	}
	if g.NumTasks() == 0 {
		return nil, fmt.Errorf("assign: empty graph")
	}
	if opt.Wb == 0 && opt.Wc == 0 {
		opt.Wb, opt.Wc = 0.5, 0.5
	}
	n, p := g.NumTasks(), topo.N()
	st := &balanceState{
		g:       g,
		topo:    topo,
		opt:     opt,
		procOf:  make([]int, n),
		load:    make([]float64, p),
		avg:     g.TotalLoad() / float64(p),
		commDen: 1,
		loadDen: 1,
	}
	for i := 0; i < n; i++ {
		st.procOf[i] = i % p
		st.load[i%p] += g.Load(taskgraph.TaskID(i))
	}
	// Normalize the two terms by their worst case so the weights are
	// meaningful across instances: all load on one processor, and all
	// traffic across the diameter.
	st.loadDen = 2 * g.TotalLoad() * (1 - 1/float64(p))
	st.commDen = g.TotalBits() * float64(topo.Diameter())
	if st.loadDen <= 0 {
		st.loadDen = 1
	}
	if st.commDen <= 0 {
		st.commDen = 1
	}

	aopt := opt.Anneal
	if aopt.Cooling == nil {
		aopt = anneal.DefaultOptions()
		aopt.MovesPerStage = 8 * n
		if aopt.MovesPerStage > 4000 {
			aopt.MovesPerStage = 4000
		}
	}
	if aopt.RNG == nil {
		aopt.RNG = rand.New(rand.NewSource(opt.Seed))
	}
	res, err := anneal.Minimize(st, aopt)
	if err != nil {
		return nil, err
	}
	return &Mapping{ProcOf: st.procOf, Cost: res.FinalCost, Anneal: res}, nil
}

// balanceState implements anneal.Problem with incremental cost updates:
// moving one task changes two processor loads and the distances of the
// task's incident edges.
type balanceState struct {
	g       *taskgraph.Graph
	topo    *topology.Topology
	opt     BalancingOptions
	procOf  []int
	load    []float64
	avg     float64
	loadDen float64
	commDen float64
	// Undo state of the last Propose.
	undoTask         taskgraph.TaskID
	undoCur, undoDst int
	undoLoad         float64
	// Best-state double buffer for anneal.Snapshotter.
	bestProcOf []int
	bestLoad   []float64
}

// Cost implements anneal.Problem.
func (b *balanceState) Cost() float64 {
	dev := 0.0
	for _, l := range b.load {
		dev += math.Abs(l - b.avg)
	}
	comm := 0.0
	for _, e := range b.g.Edges() {
		comm += e.Bits * float64(b.topo.Dist(b.procOf[e.From], b.procOf[e.To]))
	}
	return b.opt.Wb*dev/b.loadDen + b.opt.Wc*comm/b.commDen
}

// taskCommCost sums the distance-weighted traffic of every edge incident
// to task i under the current mapping, assuming task i sits on proc.
func (b *balanceState) taskCommCost(i taskgraph.TaskID, proc int) float64 {
	sum := 0.0
	for _, h := range b.g.Successors(i) {
		sum += h.Bits * float64(b.topo.Dist(proc, b.procOf[h.To]))
	}
	for _, h := range b.g.Predecessors(i) {
		sum += h.Bits * float64(b.topo.Dist(b.procOf[h.To], proc))
	}
	return sum
}

// Propose implements anneal.Problem: move a random task to a random other
// processor.
func (b *balanceState) Propose(rng *rand.Rand) (float64, bool) {
	n, p := len(b.procOf), len(b.load)
	if n == 0 || p < 2 {
		return 0, false
	}
	i := taskgraph.TaskID(rng.Intn(n))
	cur := b.procOf[i]
	target := rng.Intn(p)
	if target == cur {
		target = (target + 1 + rng.Intn(p-1)) % p
	}
	li := b.g.Load(i)

	devBefore := math.Abs(b.load[cur]-b.avg) + math.Abs(b.load[target]-b.avg)
	commBefore := b.taskCommCost(i, cur)

	b.load[cur] -= li
	b.load[target] += li
	b.procOf[i] = target

	devAfter := math.Abs(b.load[cur]-b.avg) + math.Abs(b.load[target]-b.avg)
	commAfter := b.taskCommCost(i, target)

	delta := b.opt.Wb*(devAfter-devBefore)/b.loadDen + b.opt.Wc*(commAfter-commBefore)/b.commDen
	b.undoTask, b.undoCur, b.undoDst, b.undoLoad = i, cur, target, li
	return delta, true
}

// Undo implements anneal.Problem: revert the last Propose.
func (b *balanceState) Undo() {
	b.load[b.undoCur] += b.undoLoad
	b.load[b.undoDst] -= b.undoLoad
	b.procOf[b.undoTask] = b.undoCur
}

// SaveBest implements anneal.Snapshotter.
func (b *balanceState) SaveBest() {
	b.bestProcOf = append(b.bestProcOf[:0], b.procOf...)
	b.bestLoad = append(b.bestLoad[:0], b.load...)
}

// RestoreBest implements anneal.Snapshotter.
func (b *balanceState) RestoreBest() {
	copy(b.procOf, b.bestProcOf)
	copy(b.load, b.bestLoad)
}

// StaticPolicy executes a directed taskgraph under a fixed mapping: each
// ready task waits until *its* processor is idle. It turns a balancing-
// or mapping-problem solution into a machsim policy, so the experiment
// suite can show why static mappings lose to staged scheduling on
// directed graphs (§4.1 of the paper).
type StaticPolicy struct {
	procOf []int
}

// NewStaticPolicy wraps a mapping; procOf must cover every task.
func NewStaticPolicy(g *taskgraph.Graph, procOf []int) (*StaticPolicy, error) {
	if len(procOf) != g.NumTasks() {
		return nil, fmt.Errorf("assign: mapping covers %d tasks, graph has %d", len(procOf), g.NumTasks())
	}
	return &StaticPolicy{procOf: append([]int(nil), procOf...)}, nil
}

// Name implements machsim.Policy.
func (s *StaticPolicy) Name() string { return "static" }

// Assign implements machsim.Policy.
func (s *StaticPolicy) Assign(ep *machsim.Epoch) []machsim.Assignment {
	idle := make(map[int]bool, len(ep.Idle))
	for _, p := range ep.Idle {
		idle[p] = true
	}
	var out []machsim.Assignment
	for _, t := range ep.Ready {
		p := s.procOf[t]
		if idle[p] {
			out = append(out, machsim.Assignment{Task: t, Proc: p})
			idle[p] = false
		}
	}
	return out
}
