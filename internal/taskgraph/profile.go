package taskgraph

import "fmt"

// ParallelismProfile describes how much concurrency a taskgraph exposes
// over its execution: the width (number of runnable tasks) as a function
// of progress assuming unlimited processors and free communication.
type ParallelismProfile struct {
	// MaxWidth is the largest number of simultaneously running tasks.
	MaxWidth int
	// AvgWidth is the time-weighted mean parallelism T1/CP.
	AvgWidth float64
	// WidthByDepth counts the tasks at each precedence depth (1-based
	// depth, index 0 unused).
	WidthByDepth []int
}

// Profile computes the parallelism profile.
func (g *Graph) Profile() (*ParallelismProfile, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("taskgraph %q: empty graph", g.name)
	}
	depth := make([]int, g.NumTasks())
	maxDepth := 0
	for _, id := range order {
		d := 0
		for _, h := range g.pred[id] {
			if depth[h.To] > d {
				d = depth[h.To]
			}
		}
		depth[id] = d + 1
		if depth[id] > maxDepth {
			maxDepth = depth[id]
		}
	}
	p := &ParallelismProfile{WidthByDepth: make([]int, maxDepth+1)}
	for _, d := range depth {
		p.WidthByDepth[d]++
		if p.WidthByDepth[d] > p.MaxWidth {
			p.MaxWidth = p.WidthByDepth[d]
		}
	}
	cp, err := g.CriticalPathLength()
	if err != nil {
		return nil, err
	}
	if cp > 0 {
		p.AvgWidth = g.TotalLoad() / cp
	}
	return p, nil
}
