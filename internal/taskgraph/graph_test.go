package taskgraph

import (
	"math/rand"
	"strings"
	"testing"
)

// diamond builds the four-task diamond A -> {B, C} -> D used across the
// unit tests. Loads: A=2, B=3, C=5, D=1; every edge carries 40 bits.
func diamond(t *testing.T) (*Graph, []TaskID) {
	t.Helper()
	g := New("diamond")
	a := g.AddTask("A", 2)
	b := g.AddTask("B", 3)
	c := g.AddTask("C", 5)
	d := g.AddTask("D", 1)
	for _, e := range [][2]TaskID{{a, b}, {a, c}, {b, d}, {c, d}} {
		if err := g.AddEdge(e[0], e[1], 40); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g, []TaskID{a, b, c, d}
}

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := New("g")
	for i := 0; i < 5; i++ {
		id := g.AddTask("t", float64(i))
		if int(id) != i {
			t.Fatalf("task %d got ID %d", i, id)
		}
	}
	if g.NumTasks() != 5 {
		t.Fatalf("NumTasks = %d, want 5", g.NumTasks())
	}
}

func TestAddTaskClampsNegativeLoad(t *testing.T) {
	g := New("g")
	id := g.AddTask("t", -3)
	if g.Load(id) != 0 {
		t.Fatalf("negative load not clamped: %g", g.Load(id))
	}
}

func TestAddEdgeRejectsBadEndpoints(t *testing.T) {
	g := New("g")
	a := g.AddTask("a", 1)
	if err := g.AddEdge(a, TaskID(7), 1); err == nil {
		t.Error("edge to unknown task accepted")
	}
	if err := g.AddEdge(TaskID(-1), a, 1); err == nil {
		t.Error("edge from negative ID accepted")
	}
	if err := g.AddEdge(a, a, 1); err == nil {
		t.Error("self-loop accepted")
	}
	b := g.AddTask("b", 1)
	if err := g.AddEdge(a, b, -5); err == nil {
		t.Error("negative volume accepted")
	}
}

func TestAddEdgeAccumulatesDuplicateVolumes(t *testing.T) {
	g := New("g")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 10)
	g.MustAddEdge(a, b, 15)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	bits, ok := g.EdgeBits(a, b)
	if !ok || bits != 25 {
		t.Fatalf("EdgeBits = %g, %v; want 25, true", bits, ok)
	}
	// The predecessor view must agree.
	preds := g.Predecessors(b)
	if len(preds) != 1 || preds[0].Bits != 25 {
		t.Fatalf("predecessor volume = %+v, want 25", preds)
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g, ids := diamond(t)
	a, b, _, d := ids[0], ids[1], ids[2], ids[3]
	if g.OutDegree(a) != 2 || g.InDegree(a) != 0 {
		t.Errorf("A degrees = out %d in %d, want 2, 0", g.OutDegree(a), g.InDegree(a))
	}
	if g.OutDegree(d) != 0 || g.InDegree(d) != 2 {
		t.Errorf("D degrees = out %d in %d, want 0, 2", g.OutDegree(d), g.InDegree(d))
	}
	if g.OutDegree(b) != 1 || g.InDegree(b) != 1 {
		t.Errorf("B degrees = out %d in %d, want 1, 1", g.OutDegree(b), g.InDegree(b))
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g, ids := diamond(t)
	roots := g.Roots()
	if len(roots) != 1 || roots[0] != ids[0] {
		t.Errorf("Roots = %v, want [A]", roots)
	}
	leaves := g.Leaves()
	if len(leaves) != 1 || leaves[0] != ids[3] {
		t.Errorf("Leaves = %v, want [D]", leaves)
	}
}

func TestTotals(t *testing.T) {
	g, _ := diamond(t)
	if got := g.TotalLoad(); got != 11 {
		t.Errorf("TotalLoad = %g, want 11", got)
	}
	if got := g.TotalBits(); got != 160 {
		t.Errorf("TotalBits = %g, want 160", got)
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g, _ := diamond(t)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("Edges len = %d, want 4", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		prev, cur := edges[i-1], edges[i]
		if prev.From > cur.From || (prev.From == cur.From && prev.To >= cur.To) {
			t.Fatalf("edges not sorted: %+v before %+v", prev, cur)
		}
	}
}

func TestScaleLoadsAndBits(t *testing.T) {
	g, _ := diamond(t)
	g.ScaleLoads(2)
	if got := g.TotalLoad(); got != 22 {
		t.Errorf("TotalLoad after scale = %g, want 22", got)
	}
	g.ScaleBits(0.5)
	if got := g.TotalBits(); got != 80 {
		t.Errorf("TotalBits after scale = %g, want 80", got)
	}
	// Predecessor view must be scaled consistently with successor view.
	for i := 0; i < g.NumTasks(); i++ {
		for _, h := range g.Successors(TaskID(i)) {
			back, ok := g.EdgeBits(TaskID(i), h.To)
			if !ok || back != h.Bits {
				t.Fatalf("edge (%d,%d) inconsistent after scaling", i, h.To)
			}
		}
	}
}

func TestValidateAcceptsDAG(t *testing.T) {
	g, _ := diamond(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	g := New("cycle")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	c := g.AddTask("c", 1)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 1)
	g.MustAddEdge(c, a, 1)
	if err := g.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, ids := diamond(t)
	c := g.Clone()
	c.SetLoad(ids[0], 99)
	c.MustAddEdge(ids[1], ids[2], 7)
	if g.Load(ids[0]) == 99 {
		t.Error("clone shares task storage")
	}
	if _, ok := g.EdgeBits(ids[1], ids[2]); ok {
		t.Error("clone shares edge storage")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original damaged: %v", err)
	}
}

func TestStringMentionsNameAndSize(t *testing.T) {
	g, _ := diamond(t)
	s := g.String()
	if !strings.Contains(s, "diamond") || !strings.Contains(s, "4 tasks") {
		t.Errorf("String() = %q", s)
	}
}

func TestMustAddEdgePanicsOnError(t *testing.T) {
	g := New("g")
	a := g.AddTask("a", 1)
	defer func() {
		if recover() == nil {
			t.Error("MustAddEdge did not panic")
		}
	}()
	g.MustAddEdge(a, TaskID(9), 1)
}

// randomDAG builds a random DAG for property tests.
func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	g, err := GnpDAG("prop", n, p, 1, 10, 0, 100, rng)
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyRandomDAGsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := randomDAG(rng, 1+rng.Intn(40), rng.Float64())
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Successor/predecessor views are mirror images.
		fwd, bwd := 0, 0
		for i := 0; i < g.NumTasks(); i++ {
			fwd += g.OutDegree(TaskID(i))
			bwd += g.InDegree(TaskID(i))
		}
		if fwd != bwd || fwd != g.NumEdges() {
			t.Fatalf("trial %d: degree sums fwd=%d bwd=%d edges=%d", trial, fwd, bwd, g.NumEdges())
		}
	}
}
