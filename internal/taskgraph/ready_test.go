package taskgraph

import (
	"math/rand"
	"testing"
)

func TestReadyTrackerInitialRoots(t *testing.T) {
	g, ids := diamond(t)
	rt := NewReadyTracker(g)
	ready := rt.Ready()
	if len(ready) != 1 || ready[0] != ids[0] {
		t.Fatalf("initial ready = %v, want [A]", ready)
	}
	if rt.NumReady() != 1 || rt.AllDone() {
		t.Fatalf("NumReady=%d AllDone=%v", rt.NumReady(), rt.AllDone())
	}
}

func TestReadyTrackerLifecycle(t *testing.T) {
	g, ids := diamond(t)
	a, b, c, d := ids[0], ids[1], ids[2], ids[3]
	rt := NewReadyTracker(g)

	if err := rt.Claim(a); err != nil {
		t.Fatal(err)
	}
	if rt.IsReady(a) {
		t.Error("claimed task still ready")
	}
	newly, err := rt.Complete(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 2 || newly[0] != b || newly[1] != c {
		t.Fatalf("newly ready after A = %v, want [B C]", newly)
	}
	if _, err := rt.Complete(b); err != nil {
		t.Fatal(err) // completing a ready (unclaimed) task is allowed
	}
	newly, err = rt.Complete(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(newly) != 1 || newly[0] != d {
		t.Fatalf("newly ready after C = %v, want [D]", newly)
	}
	if _, err := rt.Complete(d); err != nil {
		t.Fatal(err)
	}
	if !rt.AllDone() || rt.NumDone() != 4 {
		t.Fatalf("AllDone=%v NumDone=%d", rt.AllDone(), rt.NumDone())
	}
}

func TestReadyTrackerRelease(t *testing.T) {
	g, ids := diamond(t)
	rt := NewReadyTracker(g)
	if err := rt.Claim(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := rt.Release(ids[0]); err != nil {
		t.Fatal(err)
	}
	if !rt.IsReady(ids[0]) {
		t.Error("released task not ready")
	}
	if err := rt.Release(ids[0]); err == nil {
		t.Error("double release accepted")
	}
}

func TestReadyTrackerStateErrors(t *testing.T) {
	g, ids := diamond(t)
	rt := NewReadyTracker(g)
	if err := rt.Claim(ids[3]); err == nil {
		t.Error("claim of waiting task accepted")
	}
	if _, err := rt.Complete(ids[3]); err == nil {
		t.Error("completion of waiting task accepted")
	}
	if err := rt.Claim(ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := rt.Claim(ids[0]); err == nil {
		t.Error("double claim accepted")
	}
	if _, err := rt.Complete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Complete(ids[0]); err == nil {
		t.Error("double completion accepted")
	}
}

// Property: completing tasks in any topological order visits every task
// exactly once, with the ready set never containing a task whose
// predecessors are unfinished.
func TestPropertyTrackerFollowsAnyTopoOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(rng, 1+rng.Intn(30), rng.Float64()*0.4)
		rt := NewReadyTracker(g)
		done := make(map[TaskID]bool)
		for !rt.AllDone() {
			ready := rt.Ready()
			if len(ready) == 0 {
				t.Fatalf("trial %d: tracker stuck with %d done", trial, rt.NumDone())
			}
			// Ready tasks must have all predecessors done.
			for _, id := range ready {
				for _, h := range g.Predecessors(id) {
					if !done[h.To] {
						t.Fatalf("trial %d: %d ready before pred %d", trial, id, h.To)
					}
				}
			}
			// Complete a random ready task.
			pick := ready[rng.Intn(len(ready))]
			if _, err := rt.Complete(pick); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if done[pick] {
				t.Fatalf("trial %d: %d completed twice", trial, pick)
			}
			done[pick] = true
		}
		if len(done) != g.NumTasks() {
			t.Fatalf("trial %d: %d done, want %d", trial, len(done), g.NumTasks())
		}
	}
}
