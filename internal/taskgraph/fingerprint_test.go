package taskgraph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// buildPermuted constructs the same logical graph with its edges added in
// the given order; orders is a permutation of the canonical edge list.
func buildPermuted(t *testing.T, edges []Edge) *Graph {
	t.Helper()
	g := New("diamond")
	g.AddTask("a", 10)
	g.AddTask("b", 20)
	g.AddTask("c", 30)
	g.AddTask("d", 40)
	for _, e := range edges {
		if err := g.AddEdge(e.From, e.To, e.Bits); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

var diamondEdges = []Edge{
	{From: 0, To: 1, Bits: 40},
	{From: 0, To: 2, Bits: 80},
	{From: 1, To: 3, Bits: 120},
	{From: 2, To: 3, Bits: 160},
}

func TestFingerprintInsertionOrderIndependent(t *testing.T) {
	base := buildPermuted(t, diamondEdges)
	want := base.Fingerprint()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := append([]Edge(nil), diamondEdges...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		g := buildPermuted(t, perm)
		if got := g.Fingerprint(); got != want {
			t.Fatalf("trial %d: fingerprint %x != %x for permuted edges %v", trial, got, want, perm)
		}
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := buildPermuted(t, diamondEdges)
	b := buildPermuted(t, diamondEdges)
	b.SetName("other")
	b.tasks[0].Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("names changed the structural fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := buildPermuted(t, diamondEdges)
	want := base.Fingerprint()

	load := buildPermuted(t, diamondEdges)
	load.SetLoad(2, 31)
	if load.Fingerprint() == want {
		t.Errorf("load change did not change the fingerprint")
	}

	bits := append([]Edge(nil), diamondEdges...)
	bits[3].Bits = 200
	if buildPermuted(t, bits).Fingerprint() == want {
		t.Errorf("edge volume change did not change the fingerprint")
	}

	extra := buildPermuted(t, diamondEdges)
	extra.AddTask("e", 5)
	if extra.Fingerprint() == want {
		t.Errorf("extra task did not change the fingerprint")
	}
}

// TestCanonicalJSONGolden pins the canonical wire encoding: byte-for-byte
// stable across edge insertion orders and across releases (the service's
// content-addressed cache keys depend on it).
func TestCanonicalJSONGolden(t *testing.T) {
	const golden = `{"name":"diamond",` +
		`"tasks":[{"id":0,"name":"a","load":10},{"id":1,"name":"b","load":20},` +
		`{"id":2,"name":"c","load":30},{"id":3,"name":"d","load":40}],` +
		`"edges":[{"from":0,"to":1,"bits":40},{"from":0,"to":2,"bits":80},` +
		`{"from":1,"to":3,"bits":120},{"from":2,"to":3,"bits":160}]}`

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		perm := append([]Edge(nil), diamondEdges...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, err := buildPermuted(t, perm).CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != golden {
			t.Fatalf("canonical JSON drifted:\n got %s\nwant %s", got, golden)
		}
	}
}

func TestCanonicalJSONRoundTrip(t *testing.T) {
	orig := buildPermuted(t, diamondEdges)
	data, err := orig.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != orig.Fingerprint() {
		t.Fatalf("round-trip changed fingerprint")
	}
	again, err := back.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("round-trip not byte-stable:\n first %s\nsecond %s", data, again)
	}
}
