package taskgraph

import (
	"fmt"
	"sort"
)

// ReadyTracker maintains the set of ready tasks (tasks whose predecessors
// have all completed) as execution progresses. It is the bookkeeping behind
// the paper's annealing packets: "the ready tasks have no unfinished
// predecessors" (§4.1).
type ReadyTracker struct {
	g         *Graph
	remaining []int  // unfinished predecessor count per task
	state     []byte // 0 = waiting, 1 = ready, 2 = claimed, 3 = done
	ready     map[TaskID]struct{}
	done      int
}

const (
	stWaiting byte = iota
	stReady
	stClaimed
	stDone
)

// NewReadyTracker returns a tracker with every root task ready.
func NewReadyTracker(g *Graph) *ReadyTracker {
	n := g.NumTasks()
	rt := &ReadyTracker{
		g:         g,
		remaining: make([]int, n),
		state:     make([]byte, n),
		ready:     make(map[TaskID]struct{}),
	}
	for i := 0; i < n; i++ {
		rt.remaining[i] = g.InDegree(TaskID(i))
		if rt.remaining[i] == 0 {
			rt.state[i] = stReady
			rt.ready[TaskID(i)] = struct{}{}
		}
	}
	return rt
}

// Ready returns the currently ready (and unclaimed) tasks in ascending ID
// order.
func (rt *ReadyTracker) Ready() []TaskID {
	out := make([]TaskID, 0, len(rt.ready))
	for id := range rt.ready {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumReady returns the number of ready, unclaimed tasks.
func (rt *ReadyTracker) NumReady() int { return len(rt.ready) }

// IsReady reports whether the task is ready and unclaimed.
func (rt *ReadyTracker) IsReady(id TaskID) bool { return rt.state[id] == stReady }

// Claim marks a ready task as assigned to a processor (it leaves the ready
// pool but is not finished yet). It returns an error if the task is not
// ready.
func (rt *ReadyTracker) Claim(id TaskID) error {
	if rt.state[id] != stReady {
		return fmt.Errorf("taskgraph: claim of task %d in state %d", id, rt.state[id])
	}
	rt.state[id] = stClaimed
	delete(rt.ready, id)
	return nil
}

// Release returns a claimed task to the ready pool (used when an assignment
// is rolled back).
func (rt *ReadyTracker) Release(id TaskID) error {
	if rt.state[id] != stClaimed {
		return fmt.Errorf("taskgraph: release of task %d in state %d", id, rt.state[id])
	}
	rt.state[id] = stReady
	rt.ready[id] = struct{}{}
	return nil
}

// Complete marks a claimed (or ready) task as finished and returns the
// newly ready successors in ascending ID order.
func (rt *ReadyTracker) Complete(id TaskID) ([]TaskID, error) {
	switch rt.state[id] {
	case stClaimed:
	case stReady:
		delete(rt.ready, id)
	default:
		return nil, fmt.Errorf("taskgraph: completion of task %d in state %d", id, rt.state[id])
	}
	rt.state[id] = stDone
	rt.done++
	var newly []TaskID
	for _, h := range rt.g.Successors(id) {
		rt.remaining[h.To]--
		if rt.remaining[h.To] == 0 {
			rt.state[h.To] = stReady
			rt.ready[h.To] = struct{}{}
			newly = append(newly, h.To)
		}
	}
	sort.Slice(newly, func(i, j int) bool { return newly[i] < newly[j] })
	return newly, nil
}

// IsDone reports whether the task has completed.
func (rt *ReadyTracker) IsDone(id TaskID) bool { return rt.state[id] == stDone }

// AllDone reports whether every task has completed.
func (rt *ReadyTracker) AllDone() bool { return rt.done == rt.g.NumTasks() }

// NumDone returns the number of completed tasks.
func (rt *ReadyTracker) NumDone() int { return rt.done }
