package taskgraph

import "fmt"

// ReadyTracker maintains the set of ready tasks (tasks whose predecessors
// have all completed) as execution progresses. It is the bookkeeping behind
// the paper's annealing packets: "the ready tasks have no unfinished
// predecessors" (§4.1).
//
// The tracker is arena-friendly: the ready set is the state array itself
// (no map), Reset rewinds it to the initial state without allocating, and
// AppendReady/Complete reuse caller- or tracker-owned buffers so a warm
// simulation loop performs no heap allocations.
type ReadyTracker struct {
	g         *Graph
	remaining []int  // unfinished predecessor count per task
	state     []byte // 0 = waiting, 1 = ready, 2 = claimed, 3 = done
	numReady  int
	done      int
	newlyBuf  []TaskID // reusable Complete output buffer
}

const (
	stWaiting byte = iota
	stReady
	stClaimed
	stDone
)

// NewReadyTracker returns a tracker with every root task ready.
func NewReadyTracker(g *Graph) *ReadyTracker {
	n := g.NumTasks()
	rt := &ReadyTracker{
		g:         g,
		remaining: make([]int, n),
		state:     make([]byte, n),
	}
	rt.Reset()
	return rt
}

// Rebind points the tracker at a (possibly different) graph and resets
// it, growing the per-task buffers only when the new graph is larger than
// any seen before.
func (rt *ReadyTracker) Rebind(g *Graph) {
	rt.g = g
	n := g.NumTasks()
	if cap(rt.state) < n {
		rt.remaining = make([]int, n)
		rt.state = make([]byte, n)
	} else {
		rt.remaining = rt.remaining[:n]
		rt.state = rt.state[:n]
	}
	rt.Reset()
}

// Reset rewinds the tracker to its initial state (every root ready,
// nothing done) without allocating, so one tracker serves many runs.
func (rt *ReadyTracker) Reset() {
	rt.numReady = 0
	rt.done = 0
	for i := range rt.state {
		rt.remaining[i] = rt.g.InDegree(TaskID(i))
		if rt.remaining[i] == 0 {
			rt.state[i] = stReady
			rt.numReady++
		} else {
			rt.state[i] = stWaiting
		}
	}
}

// Ready returns the currently ready (and unclaimed) tasks in ascending ID
// order as a fresh slice.
func (rt *ReadyTracker) Ready() []TaskID {
	return rt.AppendReady(make([]TaskID, 0, rt.numReady))
}

// AppendReady appends the ready (unclaimed) tasks to dst in ascending ID
// order and returns the extended slice. Passing a reusable buffer keeps
// the call allocation-free once the buffer has grown to the peak size.
func (rt *ReadyTracker) AppendReady(dst []TaskID) []TaskID {
	for i, st := range rt.state {
		if st == stReady {
			dst = append(dst, TaskID(i))
		}
	}
	return dst
}

// NumReady returns the number of ready, unclaimed tasks.
func (rt *ReadyTracker) NumReady() int { return rt.numReady }

// IsReady reports whether the task is ready and unclaimed.
func (rt *ReadyTracker) IsReady(id TaskID) bool { return rt.state[id] == stReady }

// Claim marks a ready task as assigned to a processor (it leaves the ready
// pool but is not finished yet). It returns an error if the task is not
// ready.
func (rt *ReadyTracker) Claim(id TaskID) error {
	if rt.state[id] != stReady {
		return fmt.Errorf("taskgraph: claim of task %d in state %d", id, rt.state[id])
	}
	rt.state[id] = stClaimed
	rt.numReady--
	return nil
}

// Release returns a claimed task to the ready pool (used when an assignment
// is rolled back).
func (rt *ReadyTracker) Release(id TaskID) error {
	if rt.state[id] != stClaimed {
		return fmt.Errorf("taskgraph: release of task %d in state %d", id, rt.state[id])
	}
	rt.state[id] = stReady
	rt.numReady++
	return nil
}

// Complete marks a claimed (or ready) task as finished and returns the
// newly ready successors in ascending ID order. The returned slice is a
// tracker-owned buffer, valid only until the next Complete call; copy it
// to retain it.
func (rt *ReadyTracker) Complete(id TaskID) ([]TaskID, error) {
	switch rt.state[id] {
	case stClaimed:
	case stReady:
		rt.numReady--
	default:
		return nil, fmt.Errorf("taskgraph: completion of task %d in state %d", id, rt.state[id])
	}
	rt.state[id] = stDone
	rt.done++
	newly := rt.newlyBuf[:0]
	for _, h := range rt.g.Successors(id) {
		rt.remaining[h.To]--
		if rt.remaining[h.To] == 0 {
			rt.state[h.To] = stReady
			rt.numReady++
			// Insertion sort keeps ascending ID order; successor lists are
			// short, and this avoids the per-call sort.Slice closure.
			newly = append(newly, h.To)
			for k := len(newly) - 1; k > 0 && newly[k] < newly[k-1]; k-- {
				newly[k], newly[k-1] = newly[k-1], newly[k]
			}
		}
	}
	rt.newlyBuf = newly
	return newly, nil
}

// IsDone reports whether the task has completed.
func (rt *ReadyTracker) IsDone(id TaskID) bool { return rt.state[id] == stDone }

// AllDone reports whether every task has completed.
func (rt *ReadyTracker) AllDone() bool { return rt.done == rt.g.NumTasks() }

// NumDone returns the number of completed tasks.
func (rt *ReadyTracker) NumDone() int { return rt.done }
