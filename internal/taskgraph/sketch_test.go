package taskgraph

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// randomSketchGraph builds a random DAG with n tasks and roughly 2n edges.
func randomSketchGraph(rng *rand.Rand, n int) *Graph {
	g := New("sketch")
	for i := 0; i < n; i++ {
		g.AddTask("", 1+rng.Float64()*9)
	}
	for k := 0; k < 2*n; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a // edges go low→high: always acyclic
		}
		g.MustAddEdge(TaskID(a), TaskID(b), float64(rng.Intn(500)))
	}
	return g
}

// TestSketchCanonicalizerParity proves the zero-copy wire path and the
// materialized Graph compute identical sketches, including for inputs with
// shuffled task order, duplicate edges and negative loads (clamped).
func TestSketchCanonicalizerParity(t *testing.T) {
	docs := []string{
		`{"name":"p","tasks":[{"id":0,"load":2},{"id":1,"load":3}],"edges":[{"from":0,"to":1,"bits":8}]}`,
		`{"name":"q","tasks":[{"id":1,"load":3},{"id":0,"load":2}],"edges":[{"from":0,"to":1,"bits":5},{"from":0,"to":1,"bits":3}]}`,
		`{"name":"r","tasks":[{"id":0,"load":-4},{"id":1,"load":0}],"edges":null}`,
		`{"name":"","tasks":null,"edges":null}`,
	}
	var c Canonicalizer
	for _, doc := range docs {
		if err := c.Parse([]byte(doc)); err != nil {
			t.Fatalf("Parse(%s): %v", doc, err)
		}
		var g Graph
		if err := json.Unmarshal([]byte(doc), &g); err != nil {
			t.Fatalf("Unmarshal(%s): %v", doc, err)
		}
		if got, want := c.Sketch(), g.Sketch(); got != want {
			t.Errorf("sketch mismatch for %s:\ncanonicalizer %v\ngraph         %v", doc, got[:4], want[:4])
		}
	}
	// The first two documents are the same canonical graph (task order
	// shuffled, duplicate edge volumes merged): equal sketches required.
	if err := c.Parse([]byte(docs[0])); err != nil {
		t.Fatal(err)
	}
	s0 := c.Sketch()
	if err := c.Parse([]byte(docs[1])); err != nil {
		t.Fatal(err)
	}
	if s1 := c.Sketch(); s0 != s1 {
		t.Errorf("canonically equal graphs sketch differently")
	}
}

// TestSketchDistance checks the locality property the similarity index
// depends on: a one-task edit moves the sketch a little, an unrelated
// graph moves it (nearly) all the way.
func TestSketchDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomSketchGraph(rng, 100)
		base := g.Sketch()
		if d := base.Distance(base); d != 0 {
			t.Fatalf("self distance = %g, want 0", d)
		}

		// One-task edit: add a task and one edge into it.
		edited := g.Clone()
		nt := edited.AddTask("extra", 5)
		edited.MustAddEdge(0, nt, 100)
		if d := base.Distance(edited.Sketch()); d > 0.25 {
			t.Errorf("trial %d: one-task edit distance = %g, want small (<= 0.25)", trial, d)
		}

		other := randomSketchGraph(rand.New(rand.NewSource(int64(1000+trial))), 100)
		if d := base.Distance(other.Sketch()); d < 0.75 {
			t.Errorf("trial %d: unrelated graph distance = %g, want near 1", trial, d)
		}
	}
}

func TestProjectAssignment(t *testing.T) {
	seed := []int{3, 0, -1, 9, 2}
	got := ProjectAssignment(seed, 7, 4)
	want := []int{3, 0, -1, -1, 2, -1, -1} // 9 out of proc range; tasks 5,6 new
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
	if out := ProjectAssignment(nil, 3, 2); out[0] != -1 || out[1] != -1 || out[2] != -1 {
		t.Fatalf("nil seed projection = %v, want all -1", out)
	}
}
