// Package taskgraph implements the directed taskgraph model of
// D'Hollander & Devis (ICPP 1991): a program partitioned into tasks with
// estimated CPU loads, communication volumes on the edges, and precedence
// constraints.
//
// A taskgraph TG = {T, R, W, <*} consists of the set of tasks T, the load
// requirements R (CPU time per task, microseconds), the communication
// weights W (bits carried on each edge) and the precedence constraints <*.
// An edge (i, j) means task j must start after task i has terminated and,
// when the two tasks run on different processors, the data produced by i
// must be shipped to j's processor first.
//
// All times in this package and its consumers are in microseconds; edge
// weights are stored as bit volumes and converted to transfer times by a
// machine's bandwidth (the paper uses 10 Mb/s links and 40-bit variables).
package taskgraph

import (
	"fmt"
	"sort"
)

// TaskID identifies a task within a Graph. IDs are dense: the first task
// added gets ID 0, the next ID 1, and so on.
type TaskID int

// None is the sentinel "no task" value.
const None TaskID = -1

// Task is a node of the taskgraph.
type Task struct {
	ID   TaskID
	Name string
	// Load is the estimated CPU time of the task in microseconds.
	Load float64
}

// HalfEdge is one adjacency entry: the far endpoint and the communication
// volume (bits) carried by the edge.
type HalfEdge struct {
	To   TaskID
	Bits float64
}

// Edge is a full precedence edge with its communication volume in bits.
type Edge struct {
	From, To TaskID
	Bits     float64
}

// Graph is a directed acyclic taskgraph. The zero value is not usable;
// create graphs with New.
//
// Graph is not safe for concurrent mutation; concurrent reads are fine.
type Graph struct {
	name  string
	tasks []Task
	succ  [][]HalfEdge
	pred  [][]HalfEdge
	edges int
}

// New returns an empty taskgraph with the given name.
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName renames the graph.
func (g *Graph) SetName(name string) { g.name = name }

// AddTask appends a task with the given name and CPU load (µs) and returns
// its ID. Negative loads are clamped to zero.
func (g *Graph) AddTask(name string, load float64) TaskID {
	if load < 0 {
		load = 0
	}
	id := TaskID(len(g.tasks))
	g.tasks = append(g.tasks, Task{ID: id, Name: name, Load: load})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge adds the precedence edge from -> to carrying bits of data.
// Adding an edge twice accumulates the volumes. Self-loops and unknown
// endpoints are rejected.
func (g *Graph) AddEdge(from, to TaskID, bits float64) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("taskgraph: edge (%d,%d): unknown task", from, to)
	}
	if from == to {
		return fmt.Errorf("taskgraph: self-loop on task %d", from)
	}
	if bits < 0 {
		return fmt.Errorf("taskgraph: edge (%d,%d): negative volume %g", from, to, bits)
	}
	for i := range g.succ[from] {
		if g.succ[from][i].To == to {
			g.succ[from][i].Bits += bits
			for j := range g.pred[to] {
				if g.pred[to][j].To == from {
					g.pred[to][j].Bits += bits
				}
			}
			return nil
		}
	}
	g.succ[from] = append(g.succ[from], HalfEdge{To: to, Bits: bits})
	g.pred[to] = append(g.pred[to], HalfEdge{To: from, Bits: bits})
	g.edges++
	return nil
}

// MustAddEdge is AddEdge that panics on error; it is intended for
// programmatic graph builders whose arguments are known to be valid.
func (g *Graph) MustAddEdge(from, to TaskID, bits float64) {
	if err := g.AddEdge(from, to, bits); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges returns the number of distinct precedence edges.
func (g *Graph) NumEdges() int { return g.edges }

// Task returns the task with the given ID. It panics on out-of-range IDs.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Load returns the CPU load (µs) of the task.
func (g *Graph) Load(id TaskID) float64 { return g.tasks[id].Load }

// SetLoad replaces the CPU load of a task; used by calibration code.
func (g *Graph) SetLoad(id TaskID, load float64) {
	if load < 0 {
		load = 0
	}
	g.tasks[id].Load = load
}

// ScaleLoads multiplies every task load by f.
func (g *Graph) ScaleLoads(f float64) {
	for i := range g.tasks {
		g.tasks[i].Load *= f
	}
}

// ScaleBits multiplies every edge volume by f.
func (g *Graph) ScaleBits(f float64) {
	for i := range g.succ {
		for j := range g.succ[i] {
			g.succ[i][j].Bits *= f
		}
	}
	for i := range g.pred {
		for j := range g.pred[i] {
			g.pred[i][j].Bits *= f
		}
	}
}

// Successors returns the outgoing adjacency of id. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Successors(id TaskID) []HalfEdge { return g.succ[id] }

// Predecessors returns the incoming adjacency of id. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Predecessors(id TaskID) []HalfEdge { return g.pred[id] }

// OutDegree returns the number of successors of id.
func (g *Graph) OutDegree(id TaskID) int { return len(g.succ[id]) }

// InDegree returns the number of predecessors of id.
func (g *Graph) InDegree(id TaskID) int { return len(g.pred[id]) }

// EdgeBits returns the communication volume on edge (from, to) and whether
// the edge exists.
func (g *Graph) EdgeBits(from, to TaskID) (float64, bool) {
	if !g.valid(from) {
		return 0, false
	}
	for _, h := range g.succ[from] {
		if h.To == to {
			return h.Bits, true
		}
	}
	return 0, false
}

// Edges returns all edges sorted by (From, To).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for from := range g.succ {
		for _, h := range g.succ[from] {
			out = append(out, Edge{From: TaskID(from), To: h.To, Bits: h.Bits})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Roots returns the tasks without predecessors, in ID order.
func (g *Graph) Roots() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Leaves returns the tasks without successors, in ID order.
func (g *Graph) Leaves() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// TotalLoad returns the sum of all task loads: the sequential execution
// time T1 of the program.
func (g *Graph) TotalLoad() float64 {
	var sum float64
	for _, t := range g.tasks {
		sum += t.Load
	}
	return sum
}

// TotalBits returns the sum of all edge volumes.
func (g *Graph) TotalBits() float64 {
	var sum float64
	for from := range g.succ {
		for _, h := range g.succ[from] {
			sum += h.Bits
		}
	}
	return sum
}

// Validate checks structural invariants: dense IDs, no negative loads or
// volumes, and acyclicity. It returns nil for a well-formed DAG.
func (g *Graph) Validate() error {
	for i, t := range g.tasks {
		if t.ID != TaskID(i) {
			return fmt.Errorf("taskgraph %q: task %d has ID %d", g.name, i, t.ID)
		}
		if t.Load < 0 {
			return fmt.Errorf("taskgraph %q: task %d has negative load %g", g.name, i, t.Load)
		}
	}
	for from := range g.succ {
		for _, h := range g.succ[from] {
			if !g.valid(h.To) {
				return fmt.Errorf("taskgraph %q: edge (%d,%d) has unknown head", g.name, from, h.To)
			}
			if h.Bits < 0 {
				return fmt.Errorf("taskgraph %q: edge (%d,%d) has negative volume %g", g.name, from, h.To, h.Bits)
			}
		}
	}
	if _, err := g.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:  g.name,
		tasks: append([]Task(nil), g.tasks...),
		succ:  make([][]HalfEdge, len(g.succ)),
		pred:  make([][]HalfEdge, len(g.pred)),
		edges: g.edges,
	}
	for i := range g.succ {
		c.succ[i] = append([]HalfEdge(nil), g.succ[i]...)
	}
	for i := range g.pred {
		c.pred[i] = append([]HalfEdge(nil), g.pred[i]...)
	}
	return c
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("taskgraph %q: %d tasks, %d edges, T1=%.2fµs",
		g.name, g.NumTasks(), g.NumEdges(), g.TotalLoad())
}
