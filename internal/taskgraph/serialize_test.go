package taskgraph

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTripDiamond(t *testing.T) {
	g, _ := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, back)
}

func TestJSONRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(rng, 1+rng.Intn(25), rng.Float64()*0.5)
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		assertGraphsEqual(t, g, &back)
	}
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.Name() != b.Name() || a.NumTasks() != b.NumTasks() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	for i := 0; i < a.NumTasks(); i++ {
		ta, tb := a.Task(TaskID(i)), b.Task(TaskID(i))
		if ta.Name != tb.Name || math.Abs(ta.Load-tb.Load) > 1e-9 {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, ta, tb)
		}
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i].From != eb[i].From || ea[i].To != eb[i].To || math.Abs(ea[i].Bits-eb[i].Bits) > 1e-9 {
			t.Fatalf("edge %d mismatch: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{`), &g); err == nil {
		t.Error("truncated JSON accepted")
	}
	if err := json.Unmarshal([]byte(`{"name":"x","tasks":[{"id":5,"load":1}]}`), &g); err == nil {
		t.Error("sparse IDs accepted")
	}
	cyclic := `{"name":"x","tasks":[{"id":0,"load":1},{"id":1,"load":1}],` +
		`"edges":[{"from":0,"to":1,"bits":1},{"from":1,"to":0,"bits":1}]}`
	if err := json.Unmarshal([]byte(cyclic), &g); err == nil {
		t.Error("cyclic graph accepted")
	}
	badEdge := `{"name":"x","tasks":[{"id":0,"load":1}],"edges":[{"from":0,"to":9,"bits":1}]}`
	if err := json.Unmarshal([]byte(badEdge), &g); err == nil {
		t.Error("dangling edge accepted")
	}
}

func TestUnmarshalLeavesGraphUsable(t *testing.T) {
	g, _ := diamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Mutating the decoded graph must work (internal adjacency built).
	id := back.AddTask("extra", 1)
	if err := back.AddEdge(TaskID(0), id, 5); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDOTOutput(t *testing.T) {
	g, _ := diamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph", "n0", "n3", "->", "A", "2.00µs"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("DOT not closed")
	}
}

func TestDOTSanitizesName(t *testing.T) {
	g := New(`we"ird\name`)
	g.AddTask("t", 1)
	dot := g.DOT()
	if strings.Contains(dot, `we"ird`) {
		t.Errorf("name not sanitized:\n%s", dot)
	}
}
