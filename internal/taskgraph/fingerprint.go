package taskgraph

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"
)

// Fingerprint returns a 64-bit FNV-1a hash of the graph's canonical
// structural encoding: the task count, every task load in ID order, and
// every edge (from, to, bits) in sorted (From, To) order. The graph name
// and task names are deliberately excluded — two graphs that schedule
// identically fingerprint identically — and the encoding is independent
// of edge insertion order, so equal graphs always hash equal.
//
// The fingerprint is a fast routing/bucketing key. Content-addressed
// caches that cannot tolerate 64-bit collisions should key on
// CanonicalJSON (or a cryptographic hash of it) instead.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putU64(uint64(len(g.tasks)))
	for _, t := range g.tasks {
		putU64(math.Float64bits(t.Load))
	}
	for _, e := range g.Edges() {
		putU64(uint64(e.From))
		putU64(uint64(e.To))
		putU64(math.Float64bits(e.Bits))
	}
	return h.Sum64()
}

// CanonicalJSON returns the graph's canonical compact JSON encoding:
// tasks in ID order and edges sorted by (From, To), independent of the
// order in which tasks and edges were added. Equal graphs produce
// byte-identical output, so the bytes are suitable as a content-address
// (e.g. hashed into a result-cache key).
func (g *Graph) CanonicalJSON() ([]byte, error) {
	return json.Marshal(g)
}
