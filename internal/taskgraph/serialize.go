package taskgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the on-disk representation of a taskgraph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Tasks []jsonTask `json:"tasks"`
	Edges []jsonEdge `json:"edges"`
}

type jsonTask struct {
	ID   int     `json:"id"`
	Name string  `json:"name,omitempty"`
	Load float64 `json:"load"`
}

type jsonEdge struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Bits float64 `json:"bits"`
}

// MarshalJSON encodes the graph as {name, tasks, edges}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name}
	for _, t := range g.tasks {
		jg.Tasks = append(jg.Tasks, jsonTask{ID: int(t.ID), Name: t.Name, Load: t.Load})
	}
	for _, e := range g.Edges() {
		jg.Edges = append(jg.Edges, jsonEdge{From: int(e.From), To: int(e.To), Bits: e.Bits})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded with MarshalJSON.
// Task IDs must be dense 0..n-1 (in any order in the file).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("taskgraph: decode: %w", err)
	}
	sort.Slice(jg.Tasks, func(i, j int) bool { return jg.Tasks[i].ID < jg.Tasks[j].ID })
	fresh := New(jg.Name)
	for i, t := range jg.Tasks {
		if t.ID != i {
			return fmt.Errorf("taskgraph: decode: task IDs not dense (got %d at position %d)", t.ID, i)
		}
		fresh.AddTask(t.Name, t.Load)
	}
	for _, e := range jg.Edges {
		if err := fresh.AddEdge(TaskID(e.From), TaskID(e.To), e.Bits); err != nil {
			return fmt.Errorf("taskgraph: decode: %w", err)
		}
	}
	if err := fresh.Validate(); err != nil {
		return fmt.Errorf("taskgraph: decode: %w", err)
	}
	*g = *fresh
	return nil
}

// WriteJSON writes the graph to w as indented JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON reads a graph encoded by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}

// DOT renders the graph in Graphviz dot syntax. Node labels show the task
// name and load; edge labels show the volume in bits.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeDotName(g.name))
	b.WriteString("  rankdir=TB;\n  node [shape=box];\n")
	for _, t := range g.tasks {
		label := t.Name
		if label == "" {
			label = fmt.Sprintf("t%d", t.ID)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%.2fµs\"];\n", t.ID, label, t.Load)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.0fb\"];\n", e.From, e.To, e.Bits)
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeDotName(s string) string {
	if s == "" {
		return "taskgraph"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == ' ':
			return r
		default:
			return '_'
		}
	}, s)
}
