package taskgraph

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalJSON checks that arbitrary input never panics the decoder
// and that accepted graphs are valid DAGs.
func FuzzUnmarshalJSON(f *testing.F) {
	g, _ := ForkJoin("seed", 3, 5, 1, 40)
	data, _ := json.Marshal(g)
	f.Add(data)
	f.Add([]byte(`{"name":"x","tasks":[{"id":0,"load":1}],"edges":[]}`))
	f.Add([]byte(`{"name":"x","tasks":[{"id":0,"load":1},{"id":1,"load":2}],"edges":[{"from":0,"to":1,"bits":40}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded Graph
		if err := json.Unmarshal(data, &decoded); err != nil {
			return // rejected input is fine
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", err)
		}
		// Accepted graphs round-trip.
		out, err := json.Marshal(&decoded)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again Graph
		if err := json.Unmarshal(out, &again); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
