package taskgraph

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzUnmarshalJSON checks that arbitrary input never panics the decoder
// and that accepted graphs are valid DAGs.
func FuzzUnmarshalJSON(f *testing.F) {
	g, _ := ForkJoin("seed", 3, 5, 1, 40)
	data, _ := json.Marshal(g)
	f.Add(data)
	f.Add([]byte(`{"name":"x","tasks":[{"id":0,"load":1}],"edges":[]}`))
	f.Add([]byte(`{"name":"x","tasks":[{"id":0,"load":1},{"id":1,"load":2}],"edges":[{"from":0,"to":1,"bits":40}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded Graph
		if err := json.Unmarshal(data, &decoded); err != nil {
			return // rejected input is fine
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", err)
		}
		// Accepted graphs round-trip.
		out, err := json.Marshal(&decoded)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again Graph
		if err := json.Unmarshal(out, &again); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzCanonicalizerMatchesUnmarshal holds the streaming canonicalizer to
// the Graph.UnmarshalJSON contract on arbitrary input: identical
// accept/reject decisions with identical error text, and on accept,
// canonical bytes equal to CanonicalJSON and an equal fingerprint.
func FuzzCanonicalizerMatchesUnmarshal(f *testing.F) {
	g, _ := ForkJoin("seed", 3, 5, 1, 40)
	data, _ := json.Marshal(g)
	f.Add(data)
	f.Add([]byte(`{"name":"x","tasks":[{"id":1,"load":1},{"id":0,"load":2}],"edges":[{"from":1,"to":0,"bits":40},{"from":1,"to":0,"bits":2}]}`))
	f.Add([]byte(`{"name":"<& >","tasks":[{"id":0,"name":"�","load":1e-7}],"edges":null}`))
	f.Add([]byte(`{"tasks":[{"id":0,"load":1},{"id":1,"load":1}],"edges":[{"from":0,"to":1,"bits":1},{"from":1,"to":0,"bits":1}]}`))
	f.Add([]byte(`not json`))
	var c Canonicalizer
	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded Graph
		refErr := json.Unmarshal(data, &decoded)
		err := c.Parse(data)
		if err == nil {
			_, err = c.Graph()
		}
		if refErr != nil {
			if err == nil {
				t.Fatalf("canonicalizer accepted input UnmarshalJSON rejects: %v", refErr)
			}
			if err.Error() != refErr.Error() {
				t.Fatalf("error mismatch:\ncanonicalizer %q\nunmarshal     %q", err, refErr)
			}
			return
		}
		if err != nil {
			t.Fatalf("canonicalizer rejected input UnmarshalJSON accepts: %v", err)
		}
		want, werr := decoded.CanonicalJSON()
		if werr != nil {
			return // NaN/Inf can't come from JSON, but stay defensive
		}
		if got := c.AppendCanonicalJSON(nil); !bytes.Equal(got, want) {
			t.Fatalf("canonical bytes differ:\nstreamed %s\nwant     %s", got, want)
		}
		if c.Fingerprint() != decoded.Fingerprint() {
			t.Fatalf("fingerprint %#x != graph %#x", c.Fingerprint(), decoded.Fingerprint())
		}
	})
}
