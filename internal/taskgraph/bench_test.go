package taskgraph

import (
	"math/rand"
	"testing"
)

func benchDAG(b *testing.B, n int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	g, err := GnpDAG("bench", n, 0.05, 1, 50, 10, 400, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkLevels1000(b *testing.B) {
	g := benchDAG(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Levels(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologicalOrder1000(b *testing.B) {
	g := benchDAG(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopologicalOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadyTrackerFullRun(b *testing.B) {
	g := benchDAG(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := NewReadyTracker(g)
		for !rt.AllDone() {
			ready := rt.Ready()
			for _, id := range ready {
				if _, err := rt.Complete(id); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
