package taskgraph

import (
	"fmt"
	"math/rand"
)

// LayeredConfig parameterizes the layered random DAG generator. Layered
// DAGs are the standard synthetic workload for list-scheduling studies
// (Adam, Chandy & Dickinson, CACM 1974, used 900 of them to show HLF stays
// within 5% of optimal).
type LayeredConfig struct {
	Layers   int     // number of layers (depth), >= 1
	MinWidth int     // minimum tasks per layer, >= 1
	MaxWidth int     // maximum tasks per layer, >= MinWidth
	MinLoad  float64 // minimum task duration (µs)
	MaxLoad  float64 // maximum task duration (µs)
	MinBits  float64 // minimum edge volume (bits)
	MaxBits  float64 // maximum edge volume (bits)
	// EdgeProb is the probability of an edge between a task and each task
	// of the previous layer. Every non-root task receives at least one
	// predecessor from the previous layer so depth equals Layers.
	EdgeProb float64
}

// Validate reports whether the configuration is usable.
func (c LayeredConfig) Validate() error {
	switch {
	case c.Layers < 1:
		return fmt.Errorf("taskgraph: LayeredConfig.Layers = %d, want >= 1", c.Layers)
	case c.MinWidth < 1 || c.MaxWidth < c.MinWidth:
		return fmt.Errorf("taskgraph: LayeredConfig width range [%d,%d] invalid", c.MinWidth, c.MaxWidth)
	case c.MinLoad < 0 || c.MaxLoad < c.MinLoad:
		return fmt.Errorf("taskgraph: LayeredConfig load range [%g,%g] invalid", c.MinLoad, c.MaxLoad)
	case c.MinBits < 0 || c.MaxBits < c.MinBits:
		return fmt.Errorf("taskgraph: LayeredConfig bits range [%g,%g] invalid", c.MinBits, c.MaxBits)
	case c.EdgeProb < 0 || c.EdgeProb > 1:
		return fmt.Errorf("taskgraph: LayeredConfig.EdgeProb = %g, want in [0,1]", c.EdgeProb)
	}
	return nil
}

// Layered generates a random layered DAG. The same seed always yields the
// same graph.
func Layered(name string, cfg LayeredConfig, rng *rand.Rand) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := New(name)
	uniform := func(lo, hi float64) float64 {
		if hi <= lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}
	widthOf := func() int {
		if cfg.MaxWidth == cfg.MinWidth {
			return cfg.MinWidth
		}
		return cfg.MinWidth + rng.Intn(cfg.MaxWidth-cfg.MinWidth+1)
	}
	var prev []TaskID
	for layer := 0; layer < cfg.Layers; layer++ {
		width := widthOf()
		cur := make([]TaskID, 0, width)
		for k := 0; k < width; k++ {
			id := g.AddTask(fmt.Sprintf("L%d.%d", layer, k), uniform(cfg.MinLoad, cfg.MaxLoad))
			cur = append(cur, id)
		}
		if layer > 0 {
			for _, t := range cur {
				connected := false
				for _, p := range prev {
					if rng.Float64() < cfg.EdgeProb {
						g.MustAddEdge(p, t, uniform(cfg.MinBits, cfg.MaxBits))
						connected = true
					}
				}
				if !connected {
					p := prev[rng.Intn(len(prev))]
					g.MustAddEdge(p, t, uniform(cfg.MinBits, cfg.MaxBits))
				}
			}
		}
		prev = cur
	}
	return g, nil
}

// GnpDAG generates a random DAG over n tasks where each forward pair (i, j)
// with i < j is an edge with probability p; loads and volumes are uniform
// in the given ranges. The ordering 0..n-1 is a topological order by
// construction.
func GnpDAG(name string, n int, p float64, minLoad, maxLoad, minBits, maxBits float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("taskgraph: GnpDAG n = %d, want >= 1", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("taskgraph: GnpDAG p = %g, want in [0,1]", p)
	}
	if maxLoad < minLoad || minLoad < 0 || maxBits < minBits || minBits < 0 {
		return nil, fmt.Errorf("taskgraph: GnpDAG invalid load/bits ranges")
	}
	g := New(name)
	uniform := func(lo, hi float64) float64 {
		if hi <= lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}
	for i := 0; i < n; i++ {
		g.AddTask(fmt.Sprintf("v%d", i), uniform(minLoad, maxLoad))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(TaskID(i), TaskID(j), uniform(minBits, maxBits))
			}
		}
	}
	return g, nil
}

// ForkJoin generates a fork-join DAG: a fork task, width independent body
// tasks, and a join task. Useful as a minimal scheduling workload in tests
// and examples.
func ForkJoin(name string, width int, bodyLoad, endLoad, bits float64) (*Graph, error) {
	if width < 1 {
		return nil, fmt.Errorf("taskgraph: ForkJoin width = %d, want >= 1", width)
	}
	g := New(name)
	fork := g.AddTask("fork", endLoad)
	join := g.AddTask("join", endLoad)
	for i := 0; i < width; i++ {
		b := g.AddTask(fmt.Sprintf("body%d", i), bodyLoad)
		g.MustAddEdge(fork, b, bits)
		g.MustAddEdge(b, join, bits)
	}
	return g, nil
}

// Chain generates a linear chain of n tasks, each depending on the
// previous one. Chains have no parallelism at all and exercise the
// degenerate corner of schedulers.
func Chain(name string, n int, load, bits float64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("taskgraph: Chain n = %d, want >= 1", n)
	}
	g := New(name)
	prev := g.AddTask("c0", load)
	for i := 1; i < n; i++ {
		cur := g.AddTask(fmt.Sprintf("c%d", i), load)
		g.MustAddEdge(prev, cur, bits)
		prev = cur
	}
	return g, nil
}

// Independent generates n tasks with no edges (the balancing-problem
// degenerate case: <* is empty).
func Independent(name string, n int, minLoad, maxLoad float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("taskgraph: Independent n = %d, want >= 1", n)
	}
	g := New(name)
	for i := 0; i < n; i++ {
		load := minLoad
		if maxLoad > minLoad {
			load += rng.Float64() * (maxLoad - minLoad)
		}
		g.AddTask(fmt.Sprintf("t%d", i), load)
	}
	return g, nil
}

// InTree generates an in-tree (reduction tree) of the given fan-in and
// depth: leaves feed into their parent until a single sink remains.
// Hu's algorithm (1961) is optimal on unit-time in-trees, making them a
// good verification workload.
func InTree(name string, fanIn, depth int, load, bits float64) (*Graph, error) {
	if fanIn < 1 || depth < 1 {
		return nil, fmt.Errorf("taskgraph: InTree fanIn=%d depth=%d, want >= 1", fanIn, depth)
	}
	g := New(name)
	// Build from the sink upward: level 0 is the sink.
	levels := make([][]TaskID, depth)
	levels[0] = []TaskID{g.AddTask("sink", load)}
	for d := 1; d < depth; d++ {
		for _, parent := range levels[d-1] {
			for k := 0; k < fanIn; k++ {
				child := g.AddTask(fmt.Sprintf("n%d.%d.%d", d, parent, k), load)
				levels[d] = append(levels[d], child)
				g.MustAddEdge(child, parent, bits)
			}
		}
	}
	return g, nil
}
