package taskgraph

import (
	"fmt"
	"math"
)

// TopologicalOrder returns the task IDs in a topological order (Kahn's
// algorithm, lowest ID first among simultaneously available tasks). It
// returns an error if the graph contains a cycle.
func (g *Graph) TopologicalOrder() ([]TaskID, error) {
	n := g.NumTasks()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.pred[i])
	}
	// A simple binary heap over int keeps the order deterministic.
	var frontier intHeap
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier.push(i)
		}
	}
	order := make([]TaskID, 0, n)
	for frontier.len() > 0 {
		v := frontier.pop()
		order = append(order, TaskID(v))
		for _, h := range g.succ[v] {
			indeg[h.To]--
			if indeg[h.To] == 0 {
				frontier.push(int(h.To))
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("taskgraph %q: cycle detected (%d of %d tasks ordered)", g.name, len(order), n)
	}
	return order, nil
}

// Levels returns the task level n_i of every task: the accumulated CPU time
// of the longest path from t_i to a leaf, including t_i itself. In a system
// with unlimited processors and no communication overhead, the level is the
// minimal remaining execution time once the task starts (paper §4.2a).
// Communication volumes do not contribute.
func (g *Graph) Levels() ([]float64, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	levels := make([]float64, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, h := range g.succ[id] {
			if levels[h.To] > best {
				best = levels[h.To]
			}
		}
		levels[id] = g.tasks[id].Load + best
	}
	return levels, nil
}

// CoLevels returns for every task the accumulated CPU time of the longest
// path from a root to the task, including the task itself (the earliest
// possible completion time with unlimited processors and no communication).
func (g *Graph) CoLevels() ([]float64, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	co := make([]float64, g.NumTasks())
	for _, id := range order {
		best := 0.0
		for _, h := range g.pred[id] {
			if co[h.To] > best {
				best = co[h.To]
			}
		}
		co[id] = g.tasks[id].Load + best
	}
	return co, nil
}

// CriticalPathLength returns the length (µs of CPU time) of the longest
// root-to-leaf chain: the minimum possible makespan on any number of
// processors when communication is free.
func (g *Graph) CriticalPathLength() (float64, error) {
	levels, err := g.Levels()
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, l := range levels {
		if l > best {
			best = l
		}
	}
	return best, nil
}

// CriticalPath returns one longest root-to-leaf chain of tasks. Ties are
// broken toward lower task IDs, so the result is deterministic.
func (g *Graph) CriticalPath() ([]TaskID, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	cur := None
	best := math.Inf(-1)
	for i := range g.tasks {
		if len(g.pred[i]) == 0 && levels[i] > best {
			best = levels[i]
			cur = TaskID(i)
		}
	}
	var path []TaskID
	for cur != None {
		path = append(path, cur)
		next := None
		bestLevel := math.Inf(-1)
		for _, h := range g.succ[cur] {
			if levels[h.To] > bestLevel {
				bestLevel = levels[h.To]
				next = h.To
			}
		}
		cur = next
	}
	return path, nil
}

// MaxSpeedup returns T1/CP: the speedup attainable with unlimited
// processors and free communication (Table 1's "Max. Speedup" column).
func (g *Graph) MaxSpeedup() (float64, error) {
	cp, err := g.CriticalPathLength()
	if err != nil {
		return 0, err
	}
	if cp == 0 {
		return 0, fmt.Errorf("taskgraph %q: zero critical path", g.name)
	}
	return g.TotalLoad() / cp, nil
}

// LowerBoundMakespan returns a simple lower bound on the makespan for p
// identical processors with free communication: max(CP, T1/p). A schedule
// achieving this bound is provably optimal.
func (g *Graph) LowerBoundMakespan(p int) (float64, error) {
	if p <= 0 {
		return 0, fmt.Errorf("taskgraph: nonpositive processor count %d", p)
	}
	cp, err := g.CriticalPathLength()
	if err != nil {
		return 0, err
	}
	area := g.TotalLoad() / float64(p)
	if area > cp {
		return area, nil
	}
	return cp, nil
}

// Depth returns the number of tasks on the longest root-to-leaf chain
// (counting tasks, not time).
func (g *Graph) Depth() (int, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return 0, err
	}
	d := make([]int, g.NumTasks())
	best := 0
	for _, id := range order {
		m := 0
		for _, h := range g.pred[id] {
			if d[h.To] > m {
				m = d[h.To]
			}
		}
		d[id] = m + 1
		if d[id] > best {
			best = d[id]
		}
	}
	return best, nil
}

// Stats summarizes a taskgraph the way the paper's Table 1 does. Times are
// microseconds; AvgComm and CCRatio depend on the link bandwidth used to
// convert edge volumes to transfer times.
type Stats struct {
	Name       string
	Tasks      int
	Edges      int
	AvgLoad    float64 // average task duration (µs)
	AvgComm    float64 // average edge communication time (µs) at the given bandwidth
	CCRatio    float64 // AvgComm / AvgLoad ("C/C ratio")
	MaxSpeedup float64 // T1 / critical path
	Depth      int     // tasks on the longest chain
	TotalLoad  float64 // T1 (µs)
}

// ComputeStats computes Table 1-style characteristics using the given link
// bandwidth in bits per microsecond (the paper's 10 Mb/s is 10 bits/µs).
func (g *Graph) ComputeStats(bandwidth float64) (Stats, error) {
	if bandwidth <= 0 {
		return Stats{}, fmt.Errorf("taskgraph: nonpositive bandwidth %g", bandwidth)
	}
	s := Stats{
		Name:      g.name,
		Tasks:     g.NumTasks(),
		Edges:     g.NumEdges(),
		TotalLoad: g.TotalLoad(),
	}
	if s.Tasks > 0 {
		s.AvgLoad = s.TotalLoad / float64(s.Tasks)
	}
	if s.Edges > 0 {
		s.AvgComm = g.TotalBits() / bandwidth / float64(s.Edges)
	}
	if s.AvgLoad > 0 {
		s.CCRatio = s.AvgComm / s.AvgLoad
	}
	ms, err := g.MaxSpeedup()
	if err != nil {
		return Stats{}, err
	}
	s.MaxSpeedup = ms
	d, err := g.Depth()
	if err != nil {
		return Stats{}, err
	}
	s.Depth = d
	return s, nil
}

// intHeap is a minimal binary min-heap over ints, used to keep graph
// traversals deterministic without pulling in container/heap interfaces.
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
