package taskgraph

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"unicode/utf8"
)

// Canonicalizer fuses request decoding with canonicalization: one Parse
// pass over a graph's wire JSON yields the canonical form (tasks
// ID-sorted, edges (from,to)-sorted with duplicates merged), the
// structural fingerprint, and — only if the caller still needs one — the
// materialized *Graph. The served warm path uses it to compute a cache
// key without Graph.CanonicalJSON's decode-then-re-marshal round trip:
// AppendCanonicalJSON emits bytes that are guaranteed byte-identical to
// CanonicalJSON of the decoded graph, and Fingerprint matches
// Graph.Fingerprint, so keys derived from either path are interchangeable.
//
// A Canonicalizer is reusable: Parse resets all state, and steady-state
// reuse (e.g. from a sync.Pool) allocates only what encoding/json itself
// needs. It is not safe for concurrent use.
type Canonicalizer struct {
	jg    jsonGraph  // decoded wire form; Tasks ID-sorted, Edges in input order
	canon []jsonEdge // canonical edge list: (from,to)-sorted, duplicates merged
	fp    uint64
	sk    Sketch
}

// Parse decodes and validates one graph document, leaving the canonical
// form ready for AppendCanonicalJSON/Fingerprint/Graph. It applies the
// exact validation sequence of Graph.UnmarshalJSON — decode, dense task
// IDs, then per-edge endpoint/self-loop/volume checks in input order —
// and returns errors with identical messages, so callers that previously
// decoded into a *Graph surface unchanged errors to their clients.
// Acyclicity is the one check deferred to Graph: the canonical bytes and
// fingerprint are well-defined for cyclic inputs, and the served cache
// path only materializes a Graph on a miss.
func (c *Canonicalizer) Parse(data []byte) error {
	// Zero the reused backing arrays up to capacity: json.Unmarshal
	// decodes into existing elements without clearing them, so a stale
	// "name" or "bits" from the previous document would leak into this
	// one wherever the new document omits the field.
	tasks := c.jg.Tasks[:cap(c.jg.Tasks)]
	for i := range tasks {
		tasks[i] = jsonTask{}
	}
	edges := c.jg.Edges[:cap(c.jg.Edges)]
	for i := range edges {
		edges[i] = jsonEdge{}
	}
	c.jg.Name = ""
	c.jg.Tasks = tasks[:0]
	c.jg.Edges = edges[:0]
	c.canon = c.canon[:0]
	c.fp = 0
	if err := json.Unmarshal(data, &c.jg); err != nil {
		// Match json.Unmarshal into a *Graph exactly: its validity
		// pre-scan reports syntax errors bare, before Graph.UnmarshalJSON
		// (whose "taskgraph: decode:" wrapper applies to everything else)
		// ever runs.
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return err
		}
		return fmt.Errorf("taskgraph: decode: %w", err)
	}
	tasks = c.jg.Tasks
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].ID < tasks[j].ID })
	for i := range tasks {
		if tasks[i].ID != i {
			return fmt.Errorf("taskgraph: decode: task IDs not dense (got %d at position %d)", tasks[i].ID, i)
		}
	}
	n := len(tasks)
	for _, e := range c.jg.Edges {
		// Mirrors Graph.AddEdge's checks (and their order) exactly.
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("taskgraph: decode: taskgraph: edge (%d,%d): unknown task", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("taskgraph: decode: taskgraph: self-loop on task %d", e.From)
		}
		if e.Bits < 0 {
			return fmt.Errorf("taskgraph: decode: taskgraph: edge (%d,%d): negative volume %g", e.From, e.To, e.Bits)
		}
	}
	// Canonical edge order: stable-sort a copy by (from, to) and merge
	// duplicates by accumulating volumes. Stability preserves arrival
	// order within a duplicate group, so the float sum associates exactly
	// like repeated AddEdge calls — merged volumes are bit-identical to
	// the decoded graph's.
	c.canon = append(c.canon, c.jg.Edges...)
	sort.SliceStable(c.canon, func(i, j int) bool {
		if c.canon[i].From != c.canon[j].From {
			return c.canon[i].From < c.canon[j].From
		}
		return c.canon[i].To < c.canon[j].To
	})
	w := 0
	for _, e := range c.canon {
		if w > 0 && c.canon[w-1].From == e.From && c.canon[w-1].To == e.To {
			c.canon[w-1].Bits += e.Bits
			continue
		}
		c.canon[w] = e
		w++
	}
	c.canon = c.canon[:w]
	// The fingerprint and the minhash sketch ride the same canonical pass:
	// both are pure functions of the task and merged-edge lists already in
	// hand, so the zero-copy wire path gains similarity lookups without a
	// second traversal or any allocation (the sketch is a value array).
	c.fp = c.fingerprint()
	c.sk.Reset()
	for _, t := range c.jg.Tasks {
		c.sk.Add(taskShingle(t.ID, t.Load))
	}
	for _, e := range c.canon {
		c.sk.Add(edgeShingle(e.From, e.To, e.Bits))
	}
	return nil
}

// fnv64Offset and fnv64Prime are the FNV-1a parameters of hash/fnv,
// inlined so fingerprinting allocates nothing.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

func fnv1aU64(h, v uint64) uint64 {
	// Big-endian byte order, matching Graph.Fingerprint's
	// binary.BigEndian.PutUint64 + fnv.Write.
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= v >> shift & 0xFF
		h *= fnv64Prime
	}
	return h
}

// fingerprint replicates Graph.Fingerprint over the canonical form: task
// count, clamped loads in ID order, then (from, to, bits) per canonical
// edge.
func (c *Canonicalizer) fingerprint() uint64 {
	h := fnv1aU64(fnv64Offset, uint64(len(c.jg.Tasks)))
	for _, t := range c.jg.Tasks {
		load := t.Load
		if load < 0 {
			load = 0
		}
		h = fnv1aU64(h, math.Float64bits(load))
	}
	for _, e := range c.canon {
		h = fnv1aU64(h, uint64(e.From))
		h = fnv1aU64(h, uint64(e.To))
		h = fnv1aU64(h, math.Float64bits(e.Bits))
	}
	return h
}

// Fingerprint returns the parsed graph's structural fingerprint, equal to
// Graph.Fingerprint of the materialized graph.
func (c *Canonicalizer) Fingerprint() uint64 { return c.fp }

// NumTasks returns the parsed graph's task count.
func (c *Canonicalizer) NumTasks() int { return len(c.jg.Tasks) }

// Sketch returns the parsed graph's structural minhash sketch, equal to
// Graph.Sketch of the materialized graph.
func (c *Canonicalizer) Sketch() Sketch { return c.sk }

// AppendCanonicalJSON appends the canonical compact JSON encoding to dst
// and returns the extended slice. The bytes are identical to
// Graph.CanonicalJSON of the materialized graph: same structure, same
// encoding/json number and string formats (HTML-escaped), same null
// spellings for empty task/edge lists.
func (c *Canonicalizer) AppendCanonicalJSON(dst []byte) []byte {
	dst = append(dst, `{"name":`...)
	dst = appendJSONString(dst, c.jg.Name)
	dst = append(dst, `,"tasks":`...)
	if len(c.jg.Tasks) == 0 {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, t := range c.jg.Tasks {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"id":`...)
			dst = strconv.AppendInt(dst, int64(t.ID), 10)
			if t.Name != "" {
				dst = append(dst, `,"name":`...)
				dst = appendJSONString(dst, t.Name)
			}
			dst = append(dst, `,"load":`...)
			load := t.Load
			if load < 0 {
				load = 0 // AddTask's clamp
			}
			dst = appendJSONFloat(dst, load)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"edges":`...)
	if len(c.canon) == 0 {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, e := range c.canon {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"from":`...)
			dst = strconv.AppendInt(dst, int64(e.From), 10)
			dst = append(dst, `,"to":`...)
			dst = strconv.AppendInt(dst, int64(e.To), 10)
			dst = append(dst, `,"bits":`...)
			dst = appendJSONFloat(dst, e.Bits)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

// Graph materializes the parsed document as a *Graph, exactly as
// Graph.UnmarshalJSON would have: tasks added in ID order, edges in input
// order (so adjacency iteration order — and therefore downstream float
// summation order — is unchanged), then a full Validate for the deferred
// acyclicity check.
func (c *Canonicalizer) Graph() (*Graph, error) {
	fresh := New(c.jg.Name)
	for _, t := range c.jg.Tasks {
		fresh.AddTask(t.Name, t.Load)
	}
	for _, e := range c.jg.Edges {
		if err := fresh.AddEdge(TaskID(e.From), TaskID(e.To), e.Bits); err != nil {
			return nil, fmt.Errorf("taskgraph: decode: %w", err)
		}
	}
	if err := fresh.Validate(); err != nil {
		return nil, fmt.Errorf("taskgraph: decode: %w", err)
	}
	return fresh, nil
}

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as an encoding/json string literal with the
// default HTML escaping — byte-identical to json.Marshal(s).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		// U+2028 and U+2029 are valid JSON but break JavaScript string
		// literals; encoding/json escapes them.
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f in encoding/json's float64 format: shortest
// round-trip representation, 'f' form except for very small or very large
// magnitudes, with the exponent's leading zero trimmed. Inputs come from
// parsed JSON numbers, so NaN and infinities cannot occur.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}
