package taskgraph

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// canonicalDocs are wire documents spanning the canonicalization space:
// permuted IDs, duplicate edges, hostile strings, extreme floats, empty
// and null collections.
func canonicalDocs() map[string]string {
	return map[string]string{
		"empty object":   `{}`,
		"null lists":     `{"name":"n","tasks":null,"edges":null}`,
		"single task":    `{"tasks":[{"id":0,"load":5}]}`,
		"already sorted": `{"name":"g","tasks":[{"id":0,"name":"a","load":1},{"id":1,"load":2}],"edges":[{"from":0,"to":1,"bits":40}]}`,
		"permuted tasks": `{"name":"g","tasks":[{"id":2,"load":3},{"id":0,"load":1},{"id":1,"name":"mid","load":2}],"edges":[{"from":1,"to":2,"bits":8},{"from":0,"to":1,"bits":4}]}`,
		"permuted edges": `{"tasks":[{"id":0,"load":1},{"id":1,"load":1},{"id":2,"load":1},{"id":3,"load":1}],"edges":[{"from":2,"to":3,"bits":1},{"from":0,"to":3,"bits":2},{"from":0,"to":1,"bits":3},{"from":1,"to":3,"bits":4}]}`,
		"duplicate edges": `{"tasks":[{"id":0,"load":1},{"id":1,"load":1}],` +
			`"edges":[{"from":0,"to":1,"bits":0.1},{"from":0,"to":1,"bits":0.2},{"from":0,"to":1,"bits":0.3}]}`,
		"hostile names": `{"name":"<b>&\"quote\"\\ \u2028\u2029 </b>","tasks":[{"id":0,"name":"t\u00e4sk\n\t\u96f6","load":1}],"edges":null}`,
		"tiny floats":   `{"tasks":[{"id":0,"load":1e-7},{"id":1,"load":9.9e-7},{"id":2,"load":1e-6}],"edges":[{"from":0,"to":1,"bits":2.5e-8}]}`,
		"huge floats":   `{"tasks":[{"id":0,"load":1e21},{"id":1,"load":9.999e20},{"id":2,"load":1.7976931348623157e308}],"edges":[{"from":0,"to":2,"bits":5e21}]}`,
		"negative zero": `{"tasks":[{"id":0,"load":-0}],"edges":null}`,
		"clamped loads": `{"tasks":[{"id":0,"load":-3.5},{"id":1,"load":2}],"edges":[{"from":0,"to":1,"bits":0}]}`,
		"fractions":     `{"tasks":[{"id":0,"load":0.30000000000000004},{"id":1,"load":123456.789}],"edges":[{"from":0,"to":1,"bits":0.1}]}`,
	}
}

// TestCanonicalizerGoldenEquivalence pins the tentpole contract: for any
// accepted document, the streamed canonical bytes equal
// Graph.CanonicalJSON, the fingerprint equals Graph.Fingerprint, and the
// materialized graph is structurally identical (including adjacency
// order) to the UnmarshalJSON graph.
func TestCanonicalizerGoldenEquivalence(t *testing.T) {
	var c Canonicalizer
	for name, doc := range canonicalDocs() {
		var g Graph
		if err := json.Unmarshal([]byte(doc), &g); err != nil {
			t.Fatalf("%s: reference decode: %v", name, err)
		}
		want, err := g.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: CanonicalJSON: %v", name, err)
		}
		if err := c.Parse([]byte(doc)); err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		got := c.AppendCanonicalJSON(nil)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: canonical bytes differ:\nstreamed %s\nwant     %s", name, got, want)
		}
		if c.Fingerprint() != g.Fingerprint() {
			t.Errorf("%s: fingerprint %#x != graph %#x", name, c.Fingerprint(), g.Fingerprint())
		}
		mat, err := c.Graph()
		if err != nil {
			t.Fatalf("%s: Graph(): %v", name, err)
		}
		if !reflect.DeepEqual(mat, &g) {
			t.Errorf("%s: materialized graph differs from UnmarshalJSON graph", name)
		}
	}
}

// TestCanonicalizerErrorParity pins that every rejection surfaces the
// exact message Graph.UnmarshalJSON produces, with the acyclicity check
// deferred to Graph().
func TestCanonicalizerErrorParity(t *testing.T) {
	docs := map[string]string{
		"type error":    `{"tasks":"nope"}`,
		"non-dense":     `{"tasks":[{"id":0,"load":1},{"id":2,"load":1}],"edges":null}`,
		"duplicate ids": `{"tasks":[{"id":0,"load":1},{"id":0,"load":1}],"edges":null}`,
		"unknown task":  `{"tasks":[{"id":0,"load":1}],"edges":[{"from":0,"to":3,"bits":1}]}`,
		"negative from": `{"tasks":[{"id":0,"load":1}],"edges":[{"from":-1,"to":0,"bits":1}]}`,
		"self loop":     `{"tasks":[{"id":0,"load":1}],"edges":[{"from":0,"to":0,"bits":1}]}`,
		"negative bits": `{"tasks":[{"id":0,"load":1},{"id":1,"load":1}],"edges":[{"from":0,"to":1,"bits":-4}]}`,
		"cycle":         `{"tasks":[{"id":0,"load":1},{"id":1,"load":1}],"edges":[{"from":0,"to":1,"bits":1},{"from":1,"to":0,"bits":1}]}`,
	}
	var c Canonicalizer
	for name, doc := range docs {
		var g Graph
		refErr := json.Unmarshal([]byte(doc), &g)
		if refErr == nil {
			t.Fatalf("%s: reference decode unexpectedly succeeded", name)
		}
		err := c.Parse([]byte(doc))
		if err == nil {
			_, err = c.Graph()
		}
		if err == nil {
			t.Fatalf("%s: canonicalizer accepted a document UnmarshalJSON rejects (%v)", name, refErr)
		}
		if err.Error() != refErr.Error() {
			t.Errorf("%s: error mismatch:\ncanonicalizer %q\nunmarshal     %q", name, err, refErr)
		}
	}
}

// TestCanonicalizerReuse proves a pooled Canonicalizer carries no state
// between documents: parsing A then B gives B's exact canonical form,
// including when B is smaller than A.
func TestCanonicalizerReuse(t *testing.T) {
	docs := canonicalDocs()
	var c Canonicalizer
	big := docs["permuted edges"]
	for name, doc := range docs {
		if err := c.Parse([]byte(big)); err != nil {
			t.Fatal(err)
		}
		if err := c.Parse([]byte(doc)); err != nil {
			t.Fatalf("%s after big doc: %v", name, err)
		}
		var fresh Canonicalizer
		if err := fresh.Parse([]byte(doc)); err != nil {
			t.Fatal(err)
		}
		got := c.AppendCanonicalJSON(nil)
		want := fresh.AppendCanonicalJSON(nil)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: reused canonicalizer differs:\nreused %s\nfresh  %s", name, got, want)
		}
		if c.Fingerprint() != fresh.Fingerprint() {
			t.Errorf("%s: reused fingerprint differs", name)
		}
	}
}

// TestAppendJSONStringMatchesStdlib pins the hand-rolled string encoder
// byte-for-byte against encoding/json, hostile inputs included.
func TestAppendJSONStringMatchesStdlib(t *testing.T) {
	inputs := []string{
		"", "plain", "with space",
		`quote" back\ slash`,
		"\n\r\t", "\x00\x01\x1f\x7f",
		"<script>alert(1)&amp;</script>",
		"\u2028\u2029 separators",
		"héllo 世界 🚀",
		string([]byte{0xff, 0xfe}),
		"mixed\xffinvalid\xc3",
		"trailing\xc3",
	}
	for _, s := range inputs {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("string %q: got %s, want %s", s, got, want)
		}
	}
}

// TestAppendJSONFloatMatchesStdlib pins the float encoder against
// encoding/json across format boundaries.
func TestAppendJSONFloatMatchesStdlib(t *testing.T) {
	inputs := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -42.5,
		0.1, 0.30000000000000004, 123456.789,
		1e-6, 9.999999e-7, 1e-7, 2.5e-8, 5e-324,
		1e20, 9.999e20, 1e21, 5e21, 1e22,
		1.7976931348623157e308, 40, 100000,
	}
	for _, f := range inputs {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONFloat(nil, f)
		if !bytes.Equal(got, want) {
			t.Errorf("float %v: got %s, want %s", f, got, want)
		}
	}
}

// TestCanonicalizerSteadyStateAllocs pins the fused path's allocation
// budget: a warm Canonicalizer parsing a mid-size document and emitting
// canonical bytes into a reused buffer must stay within a small constant
// — the whole point of fusing decode and canonicalization.
func TestCanonicalizerSteadyStateAllocs(t *testing.T) {
	doc := []byte(canonicalDocs()["permuted edges"])
	var c Canonicalizer
	buf := make([]byte, 0, 4096)
	if err := c.Parse(doc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Parse(doc); err != nil {
			t.Fatal(err)
		}
		buf = c.AppendCanonicalJSON(buf[:0])
		_ = c.Fingerprint()
	})
	// json.Unmarshal itself allocates a handful of times (decoder state,
	// sort closures); the budget just has to stay flat and small.
	if allocs > 16 {
		t.Errorf("steady-state Parse+Append allocates %.1f times, want <= 16", allocs)
	}
}
