package taskgraph

import (
	"math"
	"testing"
)

func TestProfileDiamond(t *testing.T) {
	g, _ := diamond(t)
	p, err := g.Profile()
	if err != nil {
		t.Fatal(err)
	}
	// Depths: A=1, B=C=2, D=3.
	if p.MaxWidth != 2 {
		t.Errorf("MaxWidth = %d, want 2", p.MaxWidth)
	}
	if p.WidthByDepth[1] != 1 || p.WidthByDepth[2] != 2 || p.WidthByDepth[3] != 1 {
		t.Errorf("WidthByDepth = %v", p.WidthByDepth)
	}
	if math.Abs(p.AvgWidth-11.0/8.0) > 1e-12 {
		t.Errorf("AvgWidth = %g, want T1/CP = 1.375", p.AvgWidth)
	}
}

func TestProfileChainAndForkJoin(t *testing.T) {
	chain, _ := Chain("c", 6, 2, 0)
	p, err := chain.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxWidth != 1 || math.Abs(p.AvgWidth-1) > 1e-12 {
		t.Errorf("chain profile = %+v", p)
	}
	fj, _ := ForkJoin("fj", 7, 10, 0.001, 0)
	p, err = fj.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxWidth != 7 {
		t.Errorf("fork-join MaxWidth = %d, want 7", p.MaxWidth)
	}
}

func TestProfileEmptyGraphError(t *testing.T) {
	if _, err := New("e").Profile(); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestProfileBenchmarkProgramsSane(t *testing.T) {
	// The profile must agree with Depth() on depth count.
	g, _ := Chain("c", 9, 1, 0)
	p, _ := g.Profile()
	d, _ := g.Depth()
	if len(p.WidthByDepth)-1 != d {
		t.Errorf("profile depth %d != Depth() %d", len(p.WidthByDepth)-1, d)
	}
}
