package taskgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopologicalOrderDiamond(t *testing.T) {
	g, ids := diamond(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order len = %d", len(order))
	}
	pos := make(map[TaskID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge (%d,%d) violated by order %v", e.From, e.To, order)
		}
	}
	if order[0] != ids[0] {
		t.Errorf("order starts with %d, want root", order[0])
	}
}

func TestTopologicalOrderCycleError(t *testing.T) {
	g := New("c")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, err := g.TopologicalOrder(); err == nil {
		t.Fatal("cycle not reported")
	}
}

func TestLevelsDiamond(t *testing.T) {
	// A=2 -> B=3, C=5 -> D=1. Levels (longest CPU path to a leaf, incl.
	// self): D=1, B=4, C=6, A=8.
	g, ids := diamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{8, 4, 6, 1}
	for i, id := range ids {
		if levels[id] != want[i] {
			t.Errorf("level[%d] = %g, want %g", id, levels[id], want[i])
		}
	}
}

func TestCoLevelsDiamond(t *testing.T) {
	// Co-levels (longest CPU path from a root, incl. self): A=2, B=5, C=7,
	// D=8.
	g, ids := diamond(t)
	co, err := g.CoLevels()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 5, 7, 8}
	for i, id := range ids {
		if co[id] != want[i] {
			t.Errorf("colevel[%d] = %g, want %g", id, co[id], want[i])
		}
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g, ids := diamond(t)
	cp, err := g.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if cp != 8 {
		t.Errorf("CP length = %g, want 8", cp)
	}
	path, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	want := []TaskID{ids[0], ids[2], ids[3]} // A -> C -> D
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestMaxSpeedupDiamond(t *testing.T) {
	g, _ := diamond(t)
	ms, err := g.MaxSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-11.0/8.0) > 1e-12 {
		t.Errorf("MaxSpeedup = %g, want 1.375", ms)
	}
}

func TestDepth(t *testing.T) {
	g, _ := diamond(t)
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	chain, _ := Chain("c", 7, 1, 0)
	if d, _ = chain.Depth(); d != 7 {
		t.Errorf("chain depth = %d, want 7", d)
	}
}

func TestLowerBoundMakespan(t *testing.T) {
	g, _ := diamond(t)
	// CP = 8, T1 = 11. On 1 proc the area bound 11 dominates; on 4 the CP.
	lb1, err := g.LowerBoundMakespan(1)
	if err != nil || lb1 != 11 {
		t.Errorf("LB(1) = %g, %v; want 11", lb1, err)
	}
	lb4, err := g.LowerBoundMakespan(4)
	if err != nil || lb4 != 8 {
		t.Errorf("LB(4) = %g, %v; want 8", lb4, err)
	}
	if _, err := g.LowerBoundMakespan(0); err == nil {
		t.Error("LB(0) accepted")
	}
}

func TestComputeStatsDiamond(t *testing.T) {
	g, _ := diamond(t)
	st, err := g.ComputeStats(10) // 10 bits/µs
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4 || st.Edges != 4 {
		t.Errorf("stats counts = %+v", st)
	}
	if math.Abs(st.AvgLoad-2.75) > 1e-12 {
		t.Errorf("AvgLoad = %g, want 2.75", st.AvgLoad)
	}
	if math.Abs(st.AvgComm-4) > 1e-12 { // 40 bits / 10 bits/µs
		t.Errorf("AvgComm = %g, want 4", st.AvgComm)
	}
	if math.Abs(st.CCRatio-4/2.75) > 1e-12 {
		t.Errorf("CCRatio = %g", st.CCRatio)
	}
	if st.Depth != 3 {
		t.Errorf("Depth = %d, want 3", st.Depth)
	}
	if _, err := g.ComputeStats(0); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestLevelsSingleTask(t *testing.T) {
	g := New("one")
	id := g.AddTask("t", 5)
	levels, err := g.Levels()
	if err != nil || levels[id] != 5 {
		t.Fatalf("levels = %v, %v", levels, err)
	}
	ms, err := g.MaxSpeedup()
	if err != nil || ms != 1 {
		t.Fatalf("MaxSpeedup = %g, %v; want 1", ms, err)
	}
}

func TestMaxSpeedupZeroCP(t *testing.T) {
	g := New("zero")
	g.AddTask("t", 0)
	if _, err := g.MaxSpeedup(); err == nil {
		t.Fatal("zero critical path accepted")
	}
}

// Property: for any random DAG, the level of a task equals its load plus
// the max successor level, levels are positive for positive loads, and the
// critical path length equals the max level.
func TestPropertyLevelRecurrence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng, 1+rng.Intn(35), rng.Float64()*0.5)
		levels, err := g.Levels()
		if err != nil {
			t.Fatal(err)
		}
		maxLevel := 0.0
		for i := 0; i < g.NumTasks(); i++ {
			id := TaskID(i)
			succBest := 0.0
			for _, h := range g.Successors(id) {
				if levels[h.To] > succBest {
					succBest = levels[h.To]
				}
			}
			want := g.Load(id) + succBest
			if math.Abs(levels[id]-want) > 1e-9 {
				t.Fatalf("trial %d: level[%d] = %g, want %g", trial, id, levels[id], want)
			}
			if levels[id] > maxLevel {
				maxLevel = levels[id]
			}
		}
		cp, err := g.CriticalPathLength()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cp-maxLevel) > 1e-9 {
			t.Fatalf("trial %d: CP %g != max level %g", trial, cp, maxLevel)
		}
	}
}

// Property: the critical path is a real path whose loads sum to the CP
// length.
func TestPropertyCriticalPathIsPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		g := randomDAG(rng, 2+rng.Intn(30), rng.Float64()*0.6)
		path, err := g.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		cp, _ := g.CriticalPathLength()
		sum := 0.0
		for i, id := range path {
			sum += g.Load(id)
			if i > 0 {
				if _, ok := g.EdgeBits(path[i-1], id); !ok {
					t.Fatalf("trial %d: %v not a path at %d", trial, path, i)
				}
			}
		}
		if math.Abs(sum-cp) > 1e-9 {
			t.Fatalf("trial %d: path sum %g != CP %g", trial, sum, cp)
		}
	}
}

// Property (testing/quick): the depth of a chain equals its length and
// max speedup of a chain is 1.
func TestQuickChainInvariants(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%40) + 1
		g, err := Chain("c", n, 2, 10)
		if err != nil {
			return false
		}
		d, err := g.Depth()
		if err != nil || d != n {
			return false
		}
		ms, err := g.MaxSpeedup()
		return err == nil && math.Abs(ms-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): for a fork-join of any width, max speedup
// approaches width for negligible end loads and depth is 3.
func TestQuickForkJoinInvariants(t *testing.T) {
	f := func(raw uint8) bool {
		w := int(raw%30) + 1
		g, err := ForkJoin("fj", w, 10, 0.001, 40)
		if err != nil {
			return false
		}
		d, err := g.Depth()
		if err != nil || d != 3 {
			return false
		}
		ms, err := g.MaxSpeedup()
		if err != nil {
			return false
		}
		return ms > float64(w)*0.99 && ms <= float64(w)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
