package taskgraph

import "math"

// SketchLanes is the number of minhash lanes in a Sketch. 64 lanes give a
// standard error of about 1/√64 ≈ 0.125 on the Jaccard estimate — ample to
// separate "one task edited" (distance ≈ 0.01) from "different program"
// (distance ≈ 1) — while keeping the sketch a single cache line pair.
const SketchLanes = 64

// Sketch is a structural minhash sketch of a taskgraph: a locality-
// sensitive companion to the exact Fingerprint. Where the fingerprint
// changes completely under any edit, the sketch degrades proportionally —
// two graphs differing by one task or edge agree on almost every lane — so
// near-duplicate graphs can be found by comparing (or LSH-bucketing)
// sketches. The shingle set is one hash per task (id, clamped load) and
// one per canonical merged edge (from, to, bits); lane k holds the minimum
// of a lane-salted mix over all shingles. Equal graphs (by canonical form)
// always sketch equal; the graph and task names are excluded, exactly as
// in Fingerprint.
//
// A Sketch is a plain value (no heap state): computing one allocates
// nothing, and it can be compared, copied, hashed and serialized freely.
type Sketch [SketchLanes]uint64

// sketchSeeds are the per-lane salts, derived once from a fixed splitmix64
// stream so sketches are stable across processes and releases.
var sketchSeeds = func() [SketchLanes]uint64 {
	var seeds [SketchLanes]uint64
	x := uint64(0x5D1F_C34B_9A7E_2680)
	for i := range seeds {
		x += 0x9E3779B97F4A7C15
		seeds[i] = splitmix64(x)
	}
	return seeds
}()

// splitmix64 is the finalizer of the splitmix64 generator — a fast,
// well-mixed 64-bit permutation (Steele, Lea & Flood 2014).
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// shingle domain tags keep task and edge shingles disjoint even when their
// raw fields collide.
const (
	taskShingleTag uint64 = 0xA24B_AED4_963E_E407
	edgeShingleTag uint64 = 0x9FB2_1C65_1E98_DF25
)

// taskShingle hashes one task's structural identity (ID and clamped load).
func taskShingle(id int, load float64) uint64 {
	if load < 0 {
		load = 0 // AddTask's clamp, so wire and Graph shingles agree
	}
	return splitmix64(splitmix64(taskShingleTag^uint64(id)) ^ math.Float64bits(load))
}

// edgeShingle hashes one canonical (duplicate-merged) edge.
func edgeShingle(from, to int, bits float64) uint64 {
	return splitmix64(splitmix64(splitmix64(edgeShingleTag^uint64(from))^uint64(to)) ^ math.Float64bits(bits))
}

// Reset empties the sketch (all lanes at the identity of min).
func (s *Sketch) Reset() {
	for i := range s {
		s[i] = math.MaxUint64
	}
}

// Add folds one shingle into the sketch. Adding the same shingle twice is
// idempotent, and the result is independent of insertion order.
func (s *Sketch) Add(shingle uint64) {
	for k := range s {
		if v := splitmix64(shingle ^ sketchSeeds[k]); v < s[k] {
			s[k] = v
		}
	}
}

// Distance estimates the structural dissimilarity of two sketches:
// 1 − (matching lanes / lanes), an unbiased estimate of 1 − Jaccard over
// the underlying shingle sets. 0 means (almost surely) equal canonical
// structure; 1 means no detected overlap.
func (s Sketch) Distance(o Sketch) float64 {
	eq := 0
	for k := range s {
		if s[k] == o[k] {
			eq++
		}
	}
	return 1 - float64(eq)/float64(SketchLanes)
}

// Sketch computes the graph's structural minhash sketch over the same
// canonical view Fingerprint hashes: every task's (id, load) and every
// merged edge's (from, to, bits). It equals Canonicalizer.Sketch of the
// graph's wire encoding.
func (g *Graph) Sketch() Sketch {
	var s Sketch
	s.Reset()
	for _, t := range g.tasks {
		s.Add(taskShingle(int(t.ID), t.Load))
	}
	for _, e := range g.Edges() {
		s.Add(edgeShingle(int(e.From), int(e.To), e.Bits))
	}
	return s
}

// ProjectAssignment maps a cached schedule's task→processor assignment
// onto an edited graph with numTasks tasks solved on numProcs processors:
// out[t] keeps the seed's processor for every task ID both graphs share,
// and is −1 for tasks the seed does not cover (new tasks) or whose seed
// processor does not exist on the target machine. The scheduler's warm
// init places the matched tasks and falls back to HLF ordering for the
// rest, so a near-miss seed still pins most of the placement.
func ProjectAssignment(seed []int, numTasks, numProcs int) []int {
	out := make([]int, numTasks)
	for t := range out {
		p := -1
		if t < len(seed) && seed[t] >= 0 && seed[t] < numProcs {
			p = seed[t]
		}
		out[t] = p
	}
	return out
}
