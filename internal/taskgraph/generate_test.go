package taskgraph

import (
	"math/rand"
	"testing"
)

func TestLayeredConfigValidate(t *testing.T) {
	good := LayeredConfig{Layers: 3, MinWidth: 1, MaxWidth: 4, MinLoad: 1, MaxLoad: 2, MinBits: 0, MaxBits: 10, EdgeProb: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []LayeredConfig{
		{Layers: 0, MinWidth: 1, MaxWidth: 1, EdgeProb: 0.5},
		{Layers: 1, MinWidth: 0, MaxWidth: 1, EdgeProb: 0.5},
		{Layers: 1, MinWidth: 2, MaxWidth: 1, EdgeProb: 0.5},
		{Layers: 1, MinWidth: 1, MaxWidth: 1, MinLoad: 5, MaxLoad: 1, EdgeProb: 0.5},
		{Layers: 1, MinWidth: 1, MaxWidth: 1, MinBits: 5, MaxBits: 1, EdgeProb: 0.5},
		{Layers: 1, MinWidth: 1, MaxWidth: 1, EdgeProb: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLayeredStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := LayeredConfig{
		Layers: 6, MinWidth: 3, MaxWidth: 5,
		MinLoad: 1, MaxLoad: 9, MinBits: 10, MaxBits: 20, EdgeProb: 0.4,
	}
	g, err := Layered("lay", cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != cfg.Layers {
		t.Errorf("depth = %d, want %d (every non-root layer gets a parent)", d, cfg.Layers)
	}
	if g.NumTasks() < cfg.Layers*cfg.MinWidth || g.NumTasks() > cfg.Layers*cfg.MaxWidth {
		t.Errorf("tasks = %d outside [%d,%d]", g.NumTasks(), cfg.Layers*cfg.MinWidth, cfg.Layers*cfg.MaxWidth)
	}
	for i := 0; i < g.NumTasks(); i++ {
		if l := g.Load(TaskID(i)); l < cfg.MinLoad || l > cfg.MaxLoad {
			t.Errorf("task %d load %g outside range", i, l)
		}
	}
}

func TestLayeredDeterministicBySeed(t *testing.T) {
	cfg := LayeredConfig{Layers: 4, MinWidth: 2, MaxWidth: 6, MinLoad: 1, MaxLoad: 5, MaxBits: 9, EdgeProb: 0.3}
	g1, err := Layered("a", cfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Layered("a", cfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumTasks() != g2.NumTasks() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different graphs: %v vs %v", g1, g2)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func TestGnpDAGBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := GnpDAG("gnp", 20, 0.3, 1, 2, 0, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 20 {
		t.Errorf("tasks = %d, want 20", g.NumTasks())
	}
	if g.NumEdges() > 20*19/2 {
		t.Errorf("edges = %d exceed max", g.NumEdges())
	}
	if _, err := GnpDAG("bad", 0, 0.5, 0, 1, 0, 1, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GnpDAG("bad", 3, 1.5, 0, 1, 0, 1, rng); err == nil {
		t.Error("p=1.5 accepted")
	}
	if _, err := GnpDAG("bad", 3, 0.5, 5, 1, 0, 1, rng); err == nil {
		t.Error("inverted load range accepted")
	}
}

func TestGnpDAGFullProbabilityIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := GnpDAG("full", 8, 1, 1, 1, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 8*7/2 {
		t.Errorf("edges = %d, want complete DAG", g.NumEdges())
	}
	d, _ := g.Depth()
	if d != 8 {
		t.Errorf("depth = %d, want 8", d)
	}
}

func TestForkJoin(t *testing.T) {
	g, err := ForkJoin("fj", 5, 10, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 7 || g.NumEdges() != 10 {
		t.Fatalf("fork-join shape: %d tasks %d edges", g.NumTasks(), g.NumEdges())
	}
	if len(g.Roots()) != 1 || len(g.Leaves()) != 1 {
		t.Fatalf("fork-join roots/leaves: %v %v", g.Roots(), g.Leaves())
	}
	if _, err := ForkJoin("fj", 0, 1, 1, 1); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestChain(t *testing.T) {
	g, err := Chain("c", 5, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 5 || g.NumEdges() != 4 {
		t.Fatalf("chain shape: %d tasks %d edges", g.NumTasks(), g.NumEdges())
	}
	if _, err := Chain("c", 0, 1, 1); err == nil {
		t.Error("length 0 accepted")
	}
}

func TestIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := Independent("ind", 12, 2, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 12 || g.NumEdges() != 0 {
		t.Fatalf("independent shape: %d tasks %d edges", g.NumTasks(), g.NumEdges())
	}
	ms, err := g.MaxSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if ms < 12.0*2/7 {
		t.Errorf("max speedup %g too low for 12 independent tasks", ms)
	}
	if _, err := Independent("ind", 0, 1, 2, rng); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestInTree(t *testing.T) {
	g, err := InTree("tree", 2, 4, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Fan-in 2, depth 4: 1 + 2 + 4 + 8 = 15 nodes.
	if g.NumTasks() != 15 {
		t.Fatalf("tree tasks = %d, want 15", g.NumTasks())
	}
	if len(g.Leaves()) != 1 {
		t.Fatalf("in-tree must reduce to one sink, leaves = %v", g.Leaves())
	}
	d, _ := g.Depth()
	if d != 4 {
		t.Errorf("depth = %d, want 4", d)
	}
	if _, err := InTree("t", 0, 2, 1, 1); err == nil {
		t.Error("fan-in 0 accepted")
	}
}
