// Package schedule gives simulated executions a standalone, serializable
// representation and — crucially — an *independent* feasibility checker.
// The checker re-derives the machine constraints (one task per processor
// at a time, precedence, minimum communication latency per equation 4)
// from the model without reusing any simulator code, so a schedule that
// passes both the simulator and the checker is validated twice.
package schedule

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Entry is one task's placement and timing.
type Entry struct {
	Task   taskgraph.TaskID `json:"task"`
	Proc   int              `json:"proc"`
	Start  float64          `json:"start"`
	Finish float64          `json:"finish"`
}

// Schedule is a complete placed and timed schedule.
type Schedule struct {
	Policy   string  `json:"policy"`
	Makespan float64 `json:"makespan"`
	Entries  []Entry `json:"entries"` // indexed by task ID
}

// FromResult extracts the schedule of a completed simulation.
func FromResult(res *machsim.Result) (*Schedule, error) {
	n := len(res.Finish)
	if n == 0 || len(res.Start) != n || len(res.Proc) != n {
		return nil, fmt.Errorf("schedule: incomplete result (%d/%d/%d fields)",
			len(res.Start), len(res.Finish), len(res.Proc))
	}
	s := &Schedule{Policy: res.Policy, Makespan: res.Makespan, Entries: make([]Entry, n)}
	for i := 0; i < n; i++ {
		if res.Finish[i] < 0 || res.Proc[i] < 0 {
			return nil, fmt.Errorf("schedule: task %d did not complete", i)
		}
		s.Entries[i] = Entry{
			Task:   taskgraph.TaskID(i),
			Proc:   res.Proc[i],
			Start:  res.Start[i],
			Finish: res.Finish[i],
		}
	}
	return s, nil
}

const eps = 1e-9

// Validate checks the schedule against the machine model:
//
//  1. shape: one entry per task, tasks on existing processors, times
//     ordered, duration at least the task load (preemption only stretches);
//  2. exclusivity: compute intervals on one processor never overlap;
//  3. precedence: a consumer starts no earlier than each producer's
//     finish;
//  4. communication: a remotely-fed consumer additionally waits for the
//     send overhead and the store-and-forward transfer of each input
//     message, σ + w·d with w = bits/BW (equation 4's link terms form a
//     lower bound — queueing and routing overheads can only add more);
//  5. makespan: equals the latest finish.
func (s *Schedule) Validate(g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams) error {
	if g == nil || topo == nil {
		return fmt.Errorf("schedule: nil graph or topology")
	}
	if len(s.Entries) != g.NumTasks() {
		return fmt.Errorf("schedule: %d entries for %d tasks", len(s.Entries), g.NumTasks())
	}
	latest := 0.0
	for i, e := range s.Entries {
		if e.Task != taskgraph.TaskID(i) {
			return fmt.Errorf("schedule: entry %d holds task %d", i, e.Task)
		}
		if e.Proc < 0 || e.Proc >= topo.N() {
			return fmt.Errorf("schedule: task %d on unknown processor %d", i, e.Proc)
		}
		if e.Start < -eps || e.Finish < e.Start-eps {
			return fmt.Errorf("schedule: task %d has times [%g, %g]", i, e.Start, e.Finish)
		}
		if e.Finish-e.Start < g.Load(e.Task)-eps {
			return fmt.Errorf("schedule: task %d runs %g µs, load is %g µs",
				i, e.Finish-e.Start, g.Load(e.Task))
		}
		if e.Finish > latest {
			latest = e.Finish
		}
	}
	if s.Makespan < latest-eps {
		return fmt.Errorf("schedule: makespan %g below latest finish %g", s.Makespan, latest)
	}

	// Per-processor exclusivity.
	byProc := make(map[int][]Entry)
	for _, e := range s.Entries {
		byProc[e.Proc] = append(byProc[e.Proc], e)
	}
	for proc, entries := range byProc {
		sort.Slice(entries, func(a, b int) bool { return entries[a].Start < entries[b].Start })
		for k := 1; k < len(entries); k++ {
			if entries[k].Start < entries[k-1].Finish-eps {
				return fmt.Errorf("schedule: tasks %d and %d overlap on processor %d",
					entries[k-1].Task, entries[k].Task, proc)
			}
		}
	}

	// Precedence and communication lower bounds.
	for _, e := range s.Entries {
		for _, h := range g.Predecessors(e.Task) {
			pred := s.Entries[h.To]
			if e.Start < pred.Finish-eps {
				return fmt.Errorf("schedule: task %d starts at %g before predecessor %d finishes at %g",
					e.Task, e.Start, h.To, pred.Finish)
			}
			if pred.Proc != e.Proc {
				d := topo.Dist(pred.Proc, e.Proc)
				minDelay := comm.EffSigma() + comm.TransferTime(h.Bits)*float64(d)
				if e.Start < pred.Finish+minDelay-eps {
					return fmt.Errorf("schedule: task %d starts %g after remote predecessor %d (finish %g), need >= %g of communication",
						e.Task, e.Start-pred.Finish, h.To, pred.Finish, minDelay)
				}
			}
		}
	}
	return nil
}

// WriteJSON writes the schedule as indented JSON.
func (s *Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON reads a schedule written by WriteJSON.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("schedule: decode: %w", err)
	}
	return &s, nil
}

// ProcSpans returns, per processor, the total busy compute time.
func (s *Schedule) ProcSpans(nprocs int) []float64 {
	spans := make([]float64, nprocs)
	for _, e := range s.Entries {
		if e.Proc >= 0 && e.Proc < nprocs {
			spans[e.Proc] += e.Finish - e.Start
		}
	}
	return spans
}
