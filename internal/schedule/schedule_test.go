package schedule

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// greedy fills idle processors with ready tasks in ID order.
type greedy struct{}

func (greedy) Name() string { return "greedy" }

func (greedy) Assign(ep *machsim.Epoch) []machsim.Assignment {
	n := len(ep.Ready)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	out := make([]machsim.Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, machsim.Assignment{Task: ep.Ready[k], Proc: ep.Idle[k]})
	}
	return out
}

func simOnce(t *testing.T, g *taskgraph.Graph, topo *topology.Topology,
	comm topology.CommParams, p machsim.Policy) (*Schedule, *machsim.Result) {
	t.Helper()
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, p, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestFromResultAndValidateSimpleChain(t *testing.T) {
	g, err := taskgraph.Chain("c", 4, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(1)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	s, res := simOnce(t, g, topo, comm, greedy{})
	if err := s.Validate(g, topo, comm); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if s.Makespan != res.Makespan || s.Policy != "greedy" {
		t.Errorf("schedule header = %+v", s)
	}
}

// The central cross-validation: every simulator output for every policy on
// every benchmark program must pass the independent checker.
func TestSimulatorOutputsPassIndependentChecker(t *testing.T) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, prog := range programs.Catalog() {
		g := prog.Build()
		for _, withComm := range []bool{false, true} {
			comm := topology.DefaultCommParams()
			if !withComm {
				comm = comm.NoComm()
			}
			policies := []machsim.Policy{greedy{}, list.NewFIFO()}
			if hlf, err := list.NewHLF(g); err == nil {
				policies = append(policies, hlf)
			}
			opt := core.DefaultOptions()
			opt.Seed = 4
			if sa, err := core.NewScheduler(g, topo, comm, opt); err == nil {
				policies = append(policies, sa)
			}
			for _, p := range policies {
				s, _ := simOnce(t, g, topo, comm, p)
				if err := s.Validate(g, topo, comm); err != nil {
					t.Errorf("%s/%s comm=%v: %v", prog.Key, p.Name(), withComm, err)
				}
			}
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 10)
	g.AddTask("b", 10)
	topo, _ := topology.Hypercube(1)
	s := &Schedule{
		Policy:   "bad",
		Makespan: 15,
		Entries: []Entry{
			{Task: 0, Proc: 0, Start: 0, Finish: 10},
			{Task: 1, Proc: 0, Start: 5, Finish: 15}, // overlaps on P0
		},
	}
	if err := s.Validate(g, topo, topology.DefaultCommParams()); err == nil {
		t.Error("overlapping schedule accepted")
	}
}

func TestValidateCatchesPrecedenceViolation(t *testing.T) {
	g := taskgraph.New("g")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 40)
	topo, _ := topology.Hypercube(1)
	s := &Schedule{
		Policy:   "bad",
		Makespan: 20,
		Entries: []Entry{
			{Task: 0, Proc: 0, Start: 10, Finish: 20},
			{Task: 1, Proc: 1, Start: 0, Finish: 10}, // starts before producer
		},
	}
	// Use a 2-proc topology so placement is legal but timing is not.
	topo2, _ := topology.Hypercube(1)
	if err := s.Validate(g, topo2, topology.DefaultCommParams().NoComm()); err == nil {
		t.Error("precedence violation accepted")
	}
	_ = topo
}

func TestValidateCatchesMissingCommLatency(t *testing.T) {
	g := taskgraph.New("g")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 400) // w = 40 µs
	topo, _ := topology.Hypercube(1)
	comm := topology.DefaultCommParams()
	s := &Schedule{
		Policy:   "bad",
		Makespan: 21,
		Entries: []Entry{
			{Task: 0, Proc: 0, Start: 0, Finish: 10},
			// Remote consumer starting immediately: violates σ + w·d.
			{Task: 1, Proc: 1, Start: 11, Finish: 21},
		},
	}
	if err := s.Validate(g, topo, comm); err == nil {
		t.Error("zero-latency remote edge accepted")
	}
	// The same schedule is fine when communication is free.
	if err := s.Validate(g, topo, comm.NoComm()); err != nil {
		t.Errorf("free-comm schedule rejected: %v", err)
	}
}

func TestValidateCatchesShortDuration(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 10)
	topo, _ := topology.Hypercube(0)
	s := &Schedule{
		Policy:   "bad",
		Makespan: 5,
		Entries:  []Entry{{Task: 0, Proc: 0, Start: 0, Finish: 5}},
	}
	if err := s.Validate(g, topo, topology.DefaultCommParams()); err == nil {
		t.Error("too-short task accepted")
	}
}

func TestValidateCatchesBadShape(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	g.AddTask("b", 1)
	topo, _ := topology.Hypercube(1)
	comm := topology.DefaultCommParams()

	short := &Schedule{Entries: []Entry{{Task: 0, Proc: 0, Finish: 1}}}
	if err := short.Validate(g, topo, comm); err == nil {
		t.Error("missing entry accepted")
	}
	badProc := &Schedule{
		Makespan: 1,
		Entries: []Entry{
			{Task: 0, Proc: 9, Start: 0, Finish: 1},
			{Task: 1, Proc: 0, Start: 0, Finish: 1},
		},
	}
	if err := badProc.Validate(g, topo, comm); err == nil {
		t.Error("unknown processor accepted")
	}
	badMakespan := &Schedule{
		Makespan: 0.5,
		Entries: []Entry{
			{Task: 0, Proc: 0, Start: 0, Finish: 1},
			{Task: 1, Proc: 1, Start: 0, Finish: 1},
		},
	}
	if err := badMakespan.Validate(g, topo, comm); err == nil {
		t.Error("understated makespan accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 5, 10, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	s, _ := simOnce(t, g, topo, comm, greedy{})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Makespan != s.Makespan || len(back.Entries) != len(s.Entries) {
		t.Fatalf("round trip changed schedule: %+v", back)
	}
	if err := back.Validate(g, topo, comm); err != nil {
		t.Fatalf("decoded schedule invalid: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestProcSpans(t *testing.T) {
	s := &Schedule{Entries: []Entry{
		{Task: 0, Proc: 0, Start: 0, Finish: 10},
		{Task: 1, Proc: 1, Start: 0, Finish: 4},
		{Task: 2, Proc: 0, Start: 10, Finish: 12},
	}}
	spans := s.ProcSpans(2)
	if spans[0] != 12 || spans[1] != 4 {
		t.Errorf("spans = %v", spans)
	}
}

// Property: random-policy schedules on random graphs always validate.
func TestPropertyRandomSchedulesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	topo, err := topology.Mesh(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		g, err := taskgraph.Layered("p", taskgraph.LayeredConfig{
			Layers: 2 + rng.Intn(5), MinWidth: 1, MaxWidth: 6,
			MinLoad: 1, MaxLoad: 30, MinBits: 0, MaxBits: 400, EdgeProb: 0.5,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		comm := topology.DefaultCommParams()
		s, _ := simOnce(t, g, topo, comm, list.NewRandom(rng.Int63()))
		if err := s.Validate(g, topo, comm); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestFromResultErrors(t *testing.T) {
	if _, err := FromResult(&machsim.Result{}); err == nil {
		t.Error("empty result accepted")
	}
	bad := &machsim.Result{
		Start:  []float64{0},
		Finish: []float64{-1},
		Proc:   []int{0},
	}
	if _, err := FromResult(bad); err == nil {
		t.Error("unfinished task accepted")
	}
}
