package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newDisk opens a DiskCache on a fresh temp dir and closes it with the
// test.
func newDisk(t *testing.T, dir string, maxBytes int64) *DiskCache {
	t.Helper()
	d, err := NewDiskCache(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// flush waits until the write-behind queue has persisted n writes (or
// errored trying); the writer is asynchronous, so tests must not assume a
// Put is on disk when it returns.
func flush(t *testing.T, d *DiskCache, writes uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := d.Stats()
		if st.Writes+st.Errors >= writes {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("write-behind queue never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := newDisk(t, dir, 0)
	d.Put("ab12", []byte("hello"))
	flush(t, d, 1)
	if v, ok := d.Get("ab12"); !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	// The entry lives under its two-character shard.
	if _, err := os.Stat(filepath.Join(dir, "ab", "ab12")); err != nil {
		t.Fatalf("entry not at sharded path: %v", err)
	}
	if _, ok := d.Get("missing"); ok {
		t.Fatal("absent key reported a hit")
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Entries != 1 || st.Bytes <= 5 {
		t.Fatalf("index stats %+v", st)
	}
}

// TestDiskCacheSurvivesReopen is the durability core: a new DiskCache on
// the same directory serves entries written by a previous one.
func TestDiskCacheSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d := newDisk(t, dir, 0)
	d.Put("aa11", []byte("first"))
	d.Put("bb22", []byte("second"))
	d.Close() // drains the queue

	d2 := newDisk(t, dir, 0)
	if v, ok := d2.Get("aa11"); !ok || string(v) != "first" {
		t.Fatalf("reopened Get(aa11) = %q, %v", v, ok)
	}
	if v, ok := d2.Get("bb22"); !ok || string(v) != "second" {
		t.Fatalf("reopened Get(bb22) = %q, %v", v, ok)
	}
	if st := d2.Stats(); st.Entries != 2 {
		t.Fatalf("reopen did not index existing entries: %+v", st)
	}
}

// TestDiskCacheCorruptionDetected hand-writes a truncated entry, a
// checksum-flipped entry and a wrong-version entry: each must be detected,
// deleted and counted in Errors — never served.
func TestDiskCacheCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	d := newDisk(t, dir, 0)
	d.Put("aa01", []byte("payload-aa01"))
	d.Close()

	good, err := os.ReadFile(d.path("aa01"))
	if err != nil {
		t.Fatal(err)
	}

	writeRaw := func(key string, data []byte) {
		if err := os.MkdirAll(filepath.Dir(d.path(key)), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d.path(key), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Truncated: header intact, body cut short.
	writeRaw("bb01", good[:len(good)-4])
	// Corrupted: right length, one body byte flipped.
	flipped := bytes.Clone(good)
	flipped[len(flipped)-1] ^= 0xff
	writeRaw("cc01", flipped)
	// Stale format: future version byte.
	staled := bytes.Clone(good)
	staled[3] = 99
	writeRaw("dd01", staled)
	// Shorter than any header.
	writeRaw("ee01", []byte("tiny"))

	d2 := newDisk(t, dir, 0)
	for _, key := range []string{"bb01", "cc01", "dd01", "ee01"} {
		if v, ok := d2.Get(key); ok {
			t.Fatalf("corrupt entry %s served: %q", key, v)
		}
		if _, err := os.Stat(d2.path(key)); !os.IsNotExist(err) {
			t.Fatalf("corrupt entry %s not deleted (err=%v)", key, err)
		}
	}
	if v, ok := d2.Get("aa01"); !ok || string(v) != "payload-aa01" {
		t.Fatalf("intact entry lost: %q, %v", v, ok)
	}
	if st := d2.Stats(); st.Errors != 4 || st.Hits != 1 {
		t.Fatalf("stats after corruption sweep: %+v", st)
	}
}

// TestDiskCacheEvictsLRUUnderBudget fills past the byte budget and checks
// the least-recently-used entries go first — and that a Get refreshes
// recency.
func TestDiskCacheEvictsLRUUnderBudget(t *testing.T) {
	dir := t.TempDir()
	// Each entry is diskHeaderLen+8 bytes; budget three entries.
	budget := int64(3 * (diskHeaderLen + 8))
	d := newDisk(t, dir, budget)
	for i := 0; i < 3; i++ {
		d.Put(fmt.Sprintf("k%d", i), []byte("12345678"))
	}
	flush(t, d, 3)
	if _, ok := d.Get("k0"); !ok { // refresh k0: k1 is now oldest
		t.Fatal("k0 missing before eviction")
	}
	d.Put("k3", []byte("12345678"))
	flush(t, d, 4)
	if _, ok := d.Get("k1"); ok {
		t.Fatal("LRU entry k1 survived the byte budget")
	}
	for _, key := range []string{"k0", "k2", "k3"} {
		if _, ok := d.Get(key); !ok {
			t.Fatalf("recently used %s was evicted", key)
		}
	}
	st := d.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes > budget {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

// TestDiskCacheReopenEnforcesBudget: a reopen with a smaller budget trims
// the directory down, oldest-mtime first.
func TestDiskCacheReopenEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	d := newDisk(t, dir, 0)
	for i := 0; i < 4; i++ {
		d.Put(fmt.Sprintf("k%d", i), []byte("12345678"))
		flush(t, d, uint64(i+1))
		// mtime granularity on some filesystems is coarse; space the
		// writes so the recency order is unambiguous.
		old := time.Now().Add(time.Duration(i-10) * time.Second)
		if err := os.Chtimes(d.path(fmt.Sprintf("k%d", i)), old, old); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	d2 := newDisk(t, dir, int64(2*(diskHeaderLen+8)))
	st := d2.Stats()
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("reopen did not trim to budget: %+v", st)
	}
	for _, key := range []string{"k0", "k1"} {
		if _, ok := d2.Get(key); ok {
			t.Fatalf("oldest entry %s survived the reopen trim", key)
		}
	}
	for _, key := range []string{"k2", "k3"} {
		if _, ok := d2.Get(key); !ok {
			t.Fatalf("newest entry %s was trimmed", key)
		}
	}
}

// TestDiskCacheRemovesTempFiles: tmp- leftovers from a crashed writer are
// swept at startup and never indexed.
func TestDiskCacheRemovesTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "aa"), 0o755); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "aa", "tmp-12345")
	if err := os.WriteFile(stray, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := newDisk(t, dir, 0)
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file survived startup (err=%v)", err)
	}
	if st := d.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("temp file was indexed: %+v", st)
	}
}

// TestDiskCacheDisabled: a nil tier is a well-behaved always-miss store.
func TestDiskCacheDisabled(t *testing.T) {
	var d *DiskCache
	d.Put("a", []byte("1")) // must not panic
	if _, ok := d.Get("a"); ok {
		t.Fatal("nil disk cache returned a value")
	}
	if st := d.Stats(); st != (DiskCacheStats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	d.Close() // must not panic
}

// TestDiskCachePutAfterCloseDropped: Close is a flush barrier; later Puts
// are dropped without panicking, Gets keep working.
func TestDiskCachePutAfterCloseDropped(t *testing.T) {
	dir := t.TempDir()
	d := newDisk(t, dir, 0)
	d.Put("aa", []byte("kept"))
	d.Close()
	d.Put("bb", []byte("dropped"))
	if _, ok := d.Get("bb"); ok {
		t.Fatal("post-Close Put was persisted")
	}
	if v, ok := d.Get("aa"); !ok || string(v) != "kept" {
		t.Fatalf("pre-Close entry unreadable after Close: %q, %v", v, ok)
	}
}

func TestEncodeDecodeDiskEntry(t *testing.T) {
	for _, body := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc123"), 1000)} {
		framed := encodeDiskEntry(body)
		got, ok := decodeDiskEntry(framed)
		if !ok || !bytes.Equal(got, body) {
			t.Fatalf("round trip failed for %d-byte body", len(body))
		}
		if len(framed) != diskHeaderLen+len(body) {
			t.Fatalf("frame length %d for %d-byte body", len(framed), len(body))
		}
	}
	if _, ok := decodeDiskEntry(nil); ok {
		t.Fatal("decoded empty data")
	}
	if _, ok := decodeDiskEntry([]byte(strings.Repeat("z", diskHeaderLen))); ok {
		t.Fatal("decoded garbage header")
	}
}
