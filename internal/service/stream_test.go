package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/machsim"
	"repro/internal/solver"
)

// registerOnce guards test-solver registration: the solver registry is
// process-global, so each test solver registers exactly once and is keyed
// by a name no production request uses.
var registerOnce sync.Once

// slowGate blocks the "slowtest" solver until opened. Reset per test via
// swap (the solver reads the current gate under the lock).
var (
	slowMu   sync.Mutex
	slowGate chan struct{}
)

func setSlowGate(ch chan struct{}) {
	slowMu.Lock()
	slowGate = ch
	slowMu.Unlock()
}

func currentSlowGate() chan struct{} {
	slowMu.Lock()
	defer slowMu.Unlock()
	return slowGate
}

// slowSolver is a registry-visible solver that blocks until the current
// gate opens, then answers like hlf: it lets HTTP-level tests prove
// streaming order deterministically, with no wall-clock sleeps.
type slowSolver struct{}

func (slowSolver) Name() string        { return "slowtest" }
func (slowSolver) Description() string { return "test-only gated solver (blocks until released)" }

func (slowSolver) Solve(ctx context.Context, req solver.Request) (*machsim.Result, error) {
	if gate := currentSlowGate(); gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	hlf, err := solver.Get("hlf")
	if err != nil {
		return nil, err
	}
	return hlf.Solve(ctx, req)
}

func ensureSlowSolver(t *testing.T) {
	t.Helper()
	registerOnce.Do(func() {
		if err := solver.Register(slowSolver{}); err != nil {
			t.Fatalf("register slowtest: %v", err)
		}
	})
}

// streamBatch POSTs a batch with the NDJSON accept header and returns the
// open response; the caller consumes the body incrementally.
func streamBatch(t *testing.T, url string, batch BatchRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/schedule/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustScheduleRequest(t *testing.T, program string, seed int64, solverName string) ScheduleRequest {
	t.Helper()
	var sr ScheduleRequest
	if err := json.Unmarshal(wireRequest(t, program, func(r *ScheduleRequest) {
		r.Seed = seed
		r.Solver = solverName
	}), &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestBatchStreamingPipelines is the service-level streaming proof: with
// the batch's first request stuck in a gated solver, every other item is
// written — and readable by the client — before the slow member
// completes.
func TestBatchStreamingPipelines(t *testing.T) {
	ensureSlowSolver(t)
	gate := make(chan struct{})
	setSlowGate(gate)
	defer setSlowGate(nil)

	_, ts := newTestServer(t, Config{CacheSize: 64, Workers: 4})
	batch := BatchRequest{Requests: []ScheduleRequest{
		mustScheduleRequest(t, "NE", 1, "slowtest"), // item 0: gated
		mustScheduleRequest(t, "FFT", 2, "sa"),
		mustScheduleRequest(t, "NE", 3, "hlf"),
		mustScheduleRequest(t, "GJ", 4, "etf"),
	}}
	resp := streamBatch(t, ts.URL, batch)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	seen := map[int]BatchItem{}
	for i := 0; i < len(batch.Requests)-1; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d items (err %v): the fast items must arrive while item 0 is gated", i, sc.Err())
		}
		var item BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if item.Index == 0 {
			t.Fatal("gated item 0 arrived before its gate opened")
		}
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", item.Index, item.Error)
		}
		seen[item.Index] = item
	}
	// All fast items are in hand and the slow member is still gated:
	// first-item latency was not bound by the slowest member. Release it.
	close(gate)
	if !sc.Scan() {
		t.Fatalf("stream ended without the slow item: %v", sc.Err())
	}
	var last BatchItem
	if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
		t.Fatal(err)
	}
	if last.Index != 0 || last.Error != "" {
		t.Fatalf("final item = %+v, want index 0", last)
	}
	if sc.Scan() {
		t.Fatalf("stream yielded more items than requests: %s", sc.Text())
	}
}

// TestBatchStreamingMatchesBuffered: the streamed items carry the exact
// result bytes of the buffered batch response (and of single schedule
// calls), differ only in framing, and tag each item with its cache
// status.
func TestBatchStreamingMatchesBuffered(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64, Workers: 4})
	reqs := []ScheduleRequest{
		mustScheduleRequest(t, "NE", 10, "sa"),
		mustScheduleRequest(t, "FFT", 11, "hlf"),
		mustScheduleRequest(t, "NE", 10, "sa"), // duplicate of item 0: hit or coalesced
		mustScheduleRequest(t, "GJ", 12, "etf"),
	}
	batch := BatchRequest{Requests: reqs}

	resp := streamBatch(t, ts.URL, batch)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	streamed := make([]BatchItem, len(reqs))
	gotItems := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	for sc.Scan() {
		var item BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatal(err)
		}
		if item.Index < 0 || item.Index >= len(reqs) {
			t.Fatalf("item index %d out of range", item.Index)
		}
		streamed[item.Index] = item
		gotItems++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if gotItems != len(reqs) {
		t.Fatalf("streamed %d items for %d requests", gotItems, len(reqs))
	}

	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	respB, buffered := post(t, ts.URL+"/v1/schedule/batch", body)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("buffered status %d", respB.StatusCode)
	}
	var br BatchResponse
	if err := json.Unmarshal(buffered, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != len(reqs) {
		t.Fatalf("buffered returned %d items", len(br.Items))
	}
	validCache := map[string]bool{"hit": true, "disk": true, "coalesced": true, "miss": true}
	for i := range reqs {
		if streamed[i].Error != "" || br.Items[i].Error != "" {
			t.Fatalf("item %d errored: stream=%q buffered=%q", i, streamed[i].Error, br.Items[i].Error)
		}
		if !bytes.Equal(streamed[i].Result, br.Items[i].Result) {
			t.Fatalf("item %d: streamed result bytes differ from the buffered response", i)
		}
		if !validCache[streamed[i].Cache] || !validCache[br.Items[i].Cache] {
			t.Fatalf("item %d: cache tags stream=%q buffered=%q", i, streamed[i].Cache, br.Items[i].Cache)
		}
		// And both match a plain single schedule call for the same payload.
		single, err := json.Marshal(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		respS, singleBody := post(t, ts.URL+"/v1/schedule", single)
		if respS.StatusCode != http.StatusOK {
			t.Fatalf("single %d: status %d", i, respS.StatusCode)
		}
		if !bytes.Equal(bytes.TrimSpace(streamed[i].Result), bytes.TrimSpace(singleBody)) {
			t.Fatalf("item %d: streamed result differs from the single-call body", i)
		}
	}
	// Items 0 and 2 share a cache key and run concurrently: whichever
	// reached the singleflight first is the "miss" leader, and the other
	// must have ridden it (hit or coalesced) — never a second solve.
	a, b := streamed[0].Cache, streamed[2].Cache
	if b == "miss" {
		a, b = b, a
	}
	if a != "miss" || (b != "hit" && b != "coalesced") {
		t.Fatalf("duplicate batch members cache = %q/%q, want one miss and one hit/coalesced",
			streamed[0].Cache, streamed[2].Cache)
	}
}

// TestBatchConservationLaw: after a mix of batches and singles,
// solves + memory hits + disk hits + coalesced == schedule items.
func TestBatchConservationLaw(t *testing.T) {
	svc, ts := newTestServer(t, Config{CacheSize: 64, Workers: 4})
	batch := BatchRequest{Requests: []ScheduleRequest{
		mustScheduleRequest(t, "NE", 20, "sa"),
		mustScheduleRequest(t, "NE", 20, "sa"),
		mustScheduleRequest(t, "FFT", 21, "hlf"),
	}}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp, b := post(t, ts.URL+"/v1/schedule/batch", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, b)
	}
	resp := streamBatch(t, ts.URL, batch)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	for sc.Scan() {
	}
	resp.Body.Close()
	single, _ := json.Marshal(batch.Requests[2])
	if resp, b := post(t, ts.URL+"/v1/schedule", single); resp.StatusCode != http.StatusOK {
		t.Fatalf("single: %d %s", resp.StatusCode, b)
	}

	st := svc.Stats()
	wantItems := uint64(2*len(batch.Requests) + 1)
	if st.Items != wantItems {
		t.Fatalf("schedule_items = %d, want %d", st.Items, wantItems)
	}
	if got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Coalesced; got != st.Items {
		t.Fatalf("conservation law violated: solves %d + mem %d + disk %d + coalesced %d = %d, want %d",
			st.Solves, st.Cache.Hits, st.Disk.Hits, st.Coalesced, got, st.Items)
	}
}

// TestBatchMaxBatchEnforcedByEngine: the limit lives in the engine, and
// both response shapes reject an oversized batch identically.
func TestBatchMaxBatchEnforcedByEngine(t *testing.T) {
	svc, ts := newTestServer(t, Config{CacheSize: 4, MaxBatch: 2})
	if got := svc.eng.MaxBatch(); got != 2 {
		t.Fatalf("engine MaxBatch = %d, want 2", got)
	}
	over := BatchRequest{Requests: []ScheduleRequest{
		mustScheduleRequest(t, "NE", 1, "hlf"),
		mustScheduleRequest(t, "NE", 2, "hlf"),
		mustScheduleRequest(t, "NE", 3, "hlf"),
	}}
	body, err := json.Marshal(over)
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := post(t, ts.URL+"/v1/schedule/batch", body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("buffered oversize: status %d, want 400", resp.StatusCode)
	}
	resp := streamBatch(t, ts.URL, over)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("streamed oversize: status %d, want 400", resp.StatusCode)
	}
	st := svc.Stats()
	if st.Solves != 0 || st.Items != 0 {
		t.Fatalf("oversized batches ran work: %+v", st)
	}
}

// TestEngineServerCLIParity: for one request, the dtsched -json encoding
// path (direct solve + ResultFromSim + json.Marshal), the engine's
// output fed through the same encoding, and the server's response body
// are byte-identical.
func TestEngineServerCLIParity(t *testing.T) {
	for _, cse := range []struct {
		program, solverName string
		seed                int64
	}{
		{"NE", "sa", 7}, {"FFT", "hlf", 8}, {"GJ", "auto", 9}, {"MM", "etf", 10},
	} {
		sr := mustScheduleRequest(t, cse.program, cse.seed, cse.solverName)
		sreq, slv := wireToSolverRequest(t, sr)

		// CLI path: direct solve, fresh state (what dtsched -json does,
		// modulo its engine wrapper).
		direct, err := slv.Solve(context.Background(), sreq)
		if err != nil {
			t.Fatal(err)
		}
		cliBody := marshalWire(t, direct, sr)

		// Engine path: worker-owned arena + pooled scheduler.
		eng := engine.New(engine.Config{Workers: 1})
		res, err := eng.Solve(context.Background(), engine.Job{Solver: slv, Req: sreq})
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		engBody := marshalWire(t, res, sr)

		// Server path.
		_, ts := newTestServer(t, Config{CacheSize: 16})
		single, err := json.Marshal(sr)
		if err != nil {
			t.Fatal(err)
		}
		resp, serverBody := post(t, ts.URL+"/v1/schedule", single)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s/%s: status %d", cse.program, cse.solverName, resp.StatusCode)
		}

		if !bytes.Equal(cliBody, engBody) {
			t.Errorf("%s/%s: engine body differs from CLI body", cse.program, cse.solverName)
		}
		if !bytes.Equal(engBody, bytes.TrimSpace(serverBody)) {
			t.Errorf("%s/%s: server body differs from engine body", cse.program, cse.solverName)
		}
	}
}

// wireToSolverRequest rebuilds the solver request the server builds from
// a wire request (mirroring Server.process).
func wireToSolverRequest(t *testing.T, sr ScheduleRequest) (solver.Request, solver.Solver) {
	t.Helper()
	topo, err := cliutil.ParseTopology(sr.Topo)
	if err != nil {
		t.Fatal(err)
	}
	comm := sr.Comm.apply(cliutilComm())
	if sr.NoComm {
		comm = comm.NoComm()
	}
	slv, err := solver.Get(sr.Solver)
	if err != nil {
		t.Fatal(err)
	}
	saOpt := saDefaults()
	saOpt.Seed = sr.Seed
	if sr.Wb != nil {
		saOpt.Wb = *sr.Wb
		saOpt.Wc = 1 - *sr.Wb
	}
	saOpt.Restarts = sr.Restarts
	return solver.Request{Graph: sr.Graph, Topo: topo, Comm: comm, SA: saOpt}, slv
}

func marshalWire(t *testing.T, res *machsim.Result, sr ScheduleRequest) []byte {
	t.Helper()
	topo, err := cliutil.ParseTopology(sr.Topo)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ResultFromSim(res, sr.Graph, topo.Name())
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
