package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/taskgraph"
)

// BenchmarkWarmStartDelta is the headline number for warm-start
// incremental solving: a one-task edit to an already-solved 100-task
// graph, re-solved through POST /v1/schedule/delta. The cold sub-bench
// solves each edit from scratch ("nowarm"); the warm sub-bench seeds from
// the base's cached assignment and resumes the cooling schedule near its
// end. Every iteration uses a fresh load value, so nothing is answered
// from the exact-match tiers — the gap measured is solver work, which is
// what warm starting shaves.
func BenchmarkWarmStartDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g, err := taskgraph.GnpDAG("big", 100, 0.06, 1, 10, 10, 400, rng)
	if err != nil {
		b.Fatal(err)
	}
	newServer := func(b *testing.B) (*Server, *httptest.Server, string) {
		b.Helper()
		svc, err := New(Config{CacheSize: 4096})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		b.Cleanup(func() {
			ts.Close()
			svc.Close()
		})
		body, err := json.Marshal(ScheduleRequest{Graph: g, Topo: "hypercube:3", Solver: "sa", Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("base solve status %d", resp.StatusCode)
		}
		addr := resp.Header.Get("X-DTServe-Address")
		if addr == "" {
			b.Fatal("no base address")
		}
		return svc, ts, addr
	}
	deltaPayload := func(b *testing.B, base string, load float64, nowarm bool) []byte {
		b.Helper()
		body, err := json.Marshal(DeltaRequest{
			Base:   base,
			Edits:  []DeltaEdit{{Op: "set_load", Task: 0, Load: &load}},
			NoWarm: nowarm,
		})
		if err != nil {
			b.Fatal(err)
		}
		return body
	}

	b.Run("cold", func(b *testing.B) {
		_, ts, addr := newServer(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			load := 2.0 + 0.001*float64(i)
			resp, err := http.Post(ts.URL+"/v1/schedule/delta", "application/json",
				bytes.NewReader(deltaPayload(b, addr, load, true)))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		svc, ts, addr := newServer(b)
		before := svc.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			load := 2.0 + 0.001*float64(i)
			resp, err := http.Post(ts.URL+"/v1/schedule/delta", "application/json",
				bytes.NewReader(deltaPayload(b, addr, load, false)))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		after := svc.Stats()
		if hits := after.WarmHits - before.WarmHits; hits != uint64(b.N) {
			b.Fatalf("warm hits %d, want %d — the bench is not measuring warm solves", hits, b.N)
		}
		b.ReportMetric(float64(after.WarmEpochsSaved-before.WarmEpochsSaved)/float64(b.N), "stages-saved/op")
	})
}
