package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/taskgraph"
)

// OverloadConfig drives the two-phase overload scenario against a
// dtserve instance: first a baseline of unloaded interactive probes,
// then the same probes while a batch-lane flood saturates the solver
// pool. The scenario is the measurable face of the QoS design — with
// weighted lanes and admission control working, the interactive
// percentiles stay flat while the flood is shed with structured 429s.
type OverloadConfig struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Probes is the number of interactive probe requests per phase
	// (default 60). Every probe is a cold solve (unique seed), so it
	// must pass through the engine's interactive lane rather than being
	// absorbed by the cache.
	Probes int
	// ProbeInterval paces the probes (default 5ms) so the probe stream
	// itself never saturates the pool.
	ProbeInterval time.Duration
	// FloodConcurrency is how many clients flood the batch lane with
	// cold single-schedule calls carrying `"lane": "batch"` (default 8).
	FloodConcurrency int
	// Solver names the solver for the interactive probes (default hlf:
	// deterministic and fast, so the scenario measures queueing, not
	// annealing).
	Solver string
	// FloodSolver names the solver for the flood requests (default:
	// Solver). The dtexp harness points this at a chaos-delayed solver,
	// so flood solves occupy workers without burning CPU — on a small
	// CI machine a CPU-bound flood would contend with the probes for
	// cores and measure the OS scheduler instead of the QoS lanes.
	FloodSolver string
	// Programs are the benchmark graph keys the probes mix (default NE,
	// GJ, FFT, MM); Topo is the topology spec (default hypercube:3).
	Programs []string
	Topo     string
	// FloodPrograms are the graph keys for the flood (default:
	// Programs). The dtexp harness floods with the tiny "graham" graph
	// so each flood request costs microseconds of CPU on both sides of
	// the wire: the flood's pressure must come from occupied workers
	// and full queues, not from starving the probes of cores.
	FloodPrograms []string
	// RequestTimeout bounds each HTTP call (default 30s).
	RequestTimeout time.Duration
	// AssertFlat, when > 0, turns the report into a verdict: the run
	// fails unless loaded interactive p99 <= AssertFlat * the flatness
	// baseline (unloaded p99, floored at flatFloor to keep microsecond
	// baselines from manufacturing huge ratios), at least one flood
	// request was shed, and every shed carried a Retry-After header.
	AssertFlat float64
}

// flatFloor absorbs what lane scheduling cannot remove when the
// unloaded baseline is itself tiny: the head-of-line wait for a worker
// to free (no preemption), plus scheduler and GC noise on small
// machines. Flatness is judged against max(unloaded p99, flatFloor) —
// the verdict still discriminates, because without lanes an interactive
// request waits out the whole delay-target-deep batch queue (~25ms+),
// not just the residual of the solve in progress.
const flatFloor = 10 * time.Millisecond

// OverloadReport is the outcome of one overload scenario run.
type OverloadReport struct {
	Probes      int            `json:"probes_per_phase"`
	Unloaded    LatencySummary `json:"unloaded_interactive"`
	Loaded      LatencySummary `json:"loaded_interactive"`
	Ratio       float64        `json:"p99_ratio"` // loaded p99 / max(unloaded p99, floor)
	ProbeErrors int            `json:"probe_errors"`
	FloodSent   int            `json:"flood_sent"`
	FloodOK     int            `json:"flood_ok"`
	FloodShed   int            `json:"flood_shed"` // 429 responses
	ShedRetryOK int            `json:"flood_shed_with_retry_after"`
	FloodErrors int            `json:"flood_errors"` // non-200/429 outcomes
}

// String renders the report for terminals.
func (r *OverloadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "overload: %d interactive probes per phase, %d probe errors\n", r.Probes, r.ProbeErrors)
	fmt.Fprintf(&b, "  unloaded p50/p99  %12s %12s\n",
		r.Unloaded.P50.Round(time.Microsecond), r.Unloaded.P99.Round(time.Microsecond))
	fmt.Fprintf(&b, "  loaded   p50/p99  %12s %12s  (ratio %.2f)\n",
		r.Loaded.P50.Round(time.Microsecond), r.Loaded.P99.Round(time.Microsecond), r.Ratio)
	fmt.Fprintf(&b, "  flood: %d sent, %d solved, %d shed (%d with Retry-After), %d errors\n",
		r.FloodSent, r.FloodOK, r.FloodShed, r.ShedRetryOK, r.FloodErrors)
	return b.String()
}

// RunOverload executes the scenario. Seeds are deterministic: probe i of
// a phase and flood request n of a worker always carry the same payloads
// run to run; only wall-clock latencies vary.
func RunOverload(cfg OverloadConfig) (*OverloadReport, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("overload: missing server URL")
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 60
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 5 * time.Millisecond
	}
	if cfg.FloodConcurrency <= 0 {
		cfg.FloodConcurrency = 8
	}
	if cfg.Solver == "" {
		cfg.Solver = "hlf"
	}
	if cfg.FloodSolver == "" {
		cfg.FloodSolver = cfg.Solver
	}
	if len(cfg.Programs) == 0 {
		cfg.Programs = []string{"NE", "GJ", "FFT", "MM"}
	}
	if len(cfg.FloodPrograms) == 0 {
		cfg.FloodPrograms = cfg.Programs
	}
	if cfg.Topo == "" {
		cfg.Topo = "hypercube:3"
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}

	buildGraphs := func(keys []string) ([]*taskgraph.Graph, error) {
		gs := make([]*taskgraph.Graph, len(keys))
		for i, key := range keys {
			g, err := cliutil.BuildProgram(key)
			if err != nil {
				return nil, fmt.Errorf("overload: %w", err)
			}
			gs[i] = g
		}
		return gs, nil
	}
	probeGraphs, err := buildGraphs(cfg.Programs)
	if err != nil {
		return nil, err
	}
	floodGraphs, err := buildGraphs(cfg.FloodPrograms)
	if err != nil {
		return nil, err
	}
	// payload builds a cold single-schedule body: the seed is unique per
	// (phase, index), so every request is a genuine solve in its lane.
	payload := func(graphs []*taskgraph.Graph, lane, solverName string, seed int64) []byte {
		body, _ := json.Marshal(ScheduleRequest{
			Graph:  graphs[int(seed)%len(graphs)],
			Topo:   cfg.Topo,
			Solver: solverName,
			Seed:   seed,
			Lane:   lane,
		})
		return body
	}

	base := strings.TrimSuffix(cfg.URL, "/")
	client := &http.Client{Timeout: cfg.RequestTimeout}
	report := &OverloadReport{Probes: cfg.Probes}

	// probePhase fires cfg.Probes paced interactive solves and returns
	// their sorted latencies. seedBase keeps the two phases' payloads
	// disjoint (each probe must miss every cache tier).
	probePhase := func(seedBase int64) (LatencySummary, error) {
		lat := make([]time.Duration, 0, cfg.Probes)
		for i := 0; i < cfg.Probes; i++ {
			t0 := time.Now()
			resp, err := client.Post(base+"/v1/schedule", "application/json",
				bytes.NewReader(payload(probeGraphs, "", cfg.Solver, seedBase+int64(i))))
			if err != nil {
				return LatencySummary{}, fmt.Errorf("overload: probe: %w", err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				report.ProbeErrors++
			} else {
				lat = append(lat, time.Since(t0))
			}
			time.Sleep(cfg.ProbeInterval)
		}
		if len(lat) == 0 {
			return LatencySummary{}, fmt.Errorf("overload: every probe failed")
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return percentiles(lat), nil
	}

	// Phase 1: unloaded baseline.
	unloaded, err := probePhase(10_000)
	if err != nil {
		return nil, err
	}
	report.Unloaded = unloaded

	// Phase 2: flood the batch lane from FloodConcurrency clients with
	// cold batch-lane solves until told to stop...
	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		sent      atomic.Int64
		floodOK   atomic.Int64
		shed      atomic.Int64
		shedRetry atomic.Int64
		floodErrs atomic.Int64
	)
	for w := 0; w < cfg.FloodConcurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := int64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				seed := 1_000_000 + int64(w)*1_000_000 + n
				sent.Add(1)
				resp, err := client.Post(base+"/v1/schedule", "application/json",
					bytes.NewReader(payload(floodGraphs, "batch", cfg.FloodSolver, seed)))
				if err != nil {
					floodErrs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				switch resp.StatusCode {
				case http.StatusOK:
					floodOK.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						shedRetry.Add(1)
					}
					// A deliberate backoff — far below the server's
					// Retry-After, but long enough that the shed/retry churn
					// of the blocked flooders stays a small fraction of a
					// core. Retrying hot would contaminate the probe
					// latencies with CPU contention rather than queueing.
					time.Sleep(40 * time.Millisecond)
				default:
					floodErrs.Add(1)
				}
				resp.Body.Close()
			}
		}(w)
	}
	// ... give the flood a moment to fill the batch queues, then probe
	// through the congestion.
	time.Sleep(150 * time.Millisecond)
	loaded, probeErr := probePhase(20_000)
	close(stop)
	wg.Wait()
	if probeErr != nil {
		return nil, probeErr
	}
	report.Loaded = loaded
	report.FloodSent = int(sent.Load())
	report.FloodOK = int(floodOK.Load())
	report.FloodShed = int(shed.Load())
	report.ShedRetryOK = int(shedRetry.Load())
	report.FloodErrors = int(floodErrs.Load())

	floor := report.Unloaded.P99
	if floor < flatFloor {
		floor = flatFloor
	}
	report.Ratio = float64(report.Loaded.P99) / float64(floor)

	if cfg.AssertFlat > 0 {
		if report.FloodShed == 0 {
			return report, fmt.Errorf("overload: flood was never shed — the scenario did not overload the server")
		}
		if report.ShedRetryOK != report.FloodShed {
			return report, fmt.Errorf("overload: %d of %d sheds missing the Retry-After header",
				report.FloodShed-report.ShedRetryOK, report.FloodShed)
		}
		if report.Ratio > cfg.AssertFlat {
			return report, fmt.Errorf("overload: interactive p99 not flat under flood: %s loaded vs %s unloaded (ratio %.2f > %.2f)",
				report.Loaded.P99, report.Unloaded.P99, report.Ratio, cfg.AssertFlat)
		}
	}
	return report, nil
}
