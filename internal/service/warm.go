package service

import (
	"context"
	"encoding/json"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solver"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// warmAttempt tries to answer a request that missed every exact tier by
// warm-starting from a cached near-miss: resolve a seeding base (the
// delta endpoint's explicit address, or the similarity index's nearest
// neighbor), project its cached task→processor assignment onto the
// requested graph, and run the SA solver from that placement under a
// cooling schedule shortened in proportion to how close the base is.
//
// Warm results are keyed under a distinct address (keyOptions.WarmSeed
// carries base + distance), so cold replays stay byte-stable and a
// repeated warm request replays its own bytes from the exact tiers.
//
// The returned handled flag reports whether the warm path answered the
// request (body or error); false means fall through to the cold solve.
// The caller is the flight leader: meta gets the warm verdict either
// way, and tag is "hit"/"disk" for warm-key replays or "miss" for a
// warm-started solver execution — a warm solve is still a solve under
// the conservation law.
func (s *Server) warmAttempt(ctx context.Context, scratch *canonScratch, req *rawRequest,
	kopt keyOptions, key string, meta *procMeta, topo *topology.Topology,
	comm topology.CommParams, saOpt core.Options, slv solver.Solver,
	lane engine.Lane) ([]byte, string, bool, error) {

	if s.sim == nil || meta.noWarm || slv.Name() != "sa" {
		return nil, "", false, nil
	}
	if meta.warmBase == "" && !s.cfg.WarmStart {
		return nil, "", false, nil
	}
	tr := obs.FromContext(ctx)
	start := time.Now()
	sk := scratch.c.Sketch()
	var ent simEntry
	var dist float64
	if meta.warmBase != "" {
		// The delta path names its base: seed from it at whatever distance
		// the edits produced (the cooling skip scales down with distance,
		// and keep-best bounds the downside at zero).
		e, ok := s.sim.Get(meta.warmBase)
		if !ok || e.Topo != kopt.Topo {
			return nil, "", false, nil
		}
		ent, dist = e, sk.Distance(e.Sketch)
	} else {
		maxDist := s.cfg.WarmMaxDistance
		if maxDist <= 0 {
			maxDist = 0.5
		}
		e, d, ok := s.sim.Lookup(sk, key, kopt.Topo, maxDist)
		if !ok {
			return nil, "", false, nil
		}
		ent, dist = e, d
	}
	// The base body must still be in a local tier (never the remote one:
	// the warm path must not add a network round trip to a cold solve).
	bbody, ok := s.cache.Get(ent.Key)
	if !ok {
		bbody, ok = s.disk.Get(ent.Key)
	}
	if !ok {
		return nil, "", false, nil
	}
	var base struct {
		Schedule []schedule.Entry `json:"schedule"`
	}
	if err := json.Unmarshal(bbody, &base); err != nil || len(base.Schedule) == 0 {
		return nil, "", false, nil
	}
	seed := make([]int, ent.NumTasks)
	for i := range seed {
		seed[i] = -1
	}
	for _, e := range base.Schedule {
		if t := int(e.Task); t >= 0 && t < len(seed) {
			seed[t] = e.Proc
		}
	}
	assign := taskgraph.ProjectAssignment(seed, scratch.c.NumTasks(), topo.N())

	wopt := kopt
	wopt.WarmSeed = ent.Key + "@" + strconv.FormatFloat(dist, 'g', -1, 64)
	warmKey, buf, err := fusedKey(&scratch.c, scratch.buf, wopt)
	scratch.buf = buf
	if err != nil {
		return nil, "", false, nil
	}
	meta.key, meta.warm, meta.warmDist = warmKey, true, dist
	if tr != nil {
		tr.Observe(obs.StageWarmSeed, start, time.Since(start),
			obs.KV{Key: "base", Val: ent.Key},
			obs.KV{Key: "distance", Val: strconv.FormatFloat(dist, 'g', -1, 64)})
		tr.Annotate("warm_base", ent.Key)
		tr.Annotate("warm_distance", strconv.FormatFloat(dist, 'g', -1, 64))
	}

	// An identical warm-started solve may already be cached under the warm
	// key — the whole point of keying warm results separately.
	if body, ok := s.cache.Get(warmKey); ok {
		return body, "hit", true, nil
	}
	if body, ok := s.disk.Get(warmKey); ok {
		s.cache.Put(warmKey, body)
		return body, "disk", true, nil
	}

	saw := saOpt
	saw.Warm = &core.WarmStart{Assignment: assign, Distance: dist}
	g, err := scratch.c.Graph()
	if err != nil {
		return nil, "", true, badRequest("decode request: %v", err)
	}
	sreq := solver.Request{Graph: g, Topo: topo, Comm: comm, SA: saw}
	sreq.Portfolio.MemberTimeout = time.Duration(req.MemberTimeoutMS) * time.Millisecond
	if err := sreq.Validate(); err != nil {
		return nil, "", true, badRequest("%v", err)
	}
	var idx *simEntry
	if !req.NoCache {
		idx = &simEntry{Topo: kopt.Topo, Spec: req.Topo, Sketch: sk,
			Graph: scratch.c.AppendCanonicalJSON(nil), Opt: kopt,
			NumTasks: scratch.c.NumTasks()}
	}
	body, err := s.solve(ctx, slv, sreq, req.TimeoutMS, kopt.Topo, warmKey, lane, idx)
	return body, "miss", true, err
}
