package service

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/machsim"
	"repro/internal/solver"
)

// prunableSolver cooperates with the portfolio's Bound hook: it spins
// until the hook reports an incumbent makes +Inf unwinnable, then returns
// the hook's error — deterministic member pruning for HTTP-level tests.
type prunableSolver struct{}

func (prunableSolver) Name() string        { return "prunabletest" }
func (prunableSolver) Description() string { return "test-only self-pruning portfolio member" }

func (prunableSolver) Solve(ctx context.Context, req solver.Request) (*machsim.Result, error) {
	if req.Sim.Bound == nil {
		s, err := solver.Get("hlf")
		if err != nil {
			return nil, err
		}
		return s.Solve(ctx, req)
	}
	for {
		if err := req.Sim.Bound(math.MaxFloat64); err != nil {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Microsecond):
		}
	}
}

var registerPrunable sync.Once

// TestPortfolioPrunedCounterAndNoCache: a portfolio race resolved with a
// pruned member bumps portfolio_pruned in /statsz and /metrics, and its
// result is served but never cached — the second identical request solves
// again.
func TestPortfolioPrunedCounterAndNoCache(t *testing.T) {
	registerPrunable.Do(func() {
		if err := solver.Register(prunableSolver{}); err != nil {
			t.Fatalf("register: %v", err)
		}
	})
	old := solver.PortfolioMembers
	solver.PortfolioMembers = []string{"hlf", "prunabletest"}
	t.Cleanup(func() { solver.PortfolioMembers = old })

	svc, ts := newTestServer(t, Config{CacheSize: 64})
	body := wireRequest(t, "NE", func(r *ScheduleRequest) {
		r.Solver = "portfolio"
		r.Restarts = 0
	})
	resp1, body1 := post(t, ts.URL+"/v1/schedule", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	resp2, body2 := post(t, ts.URL+"/v1/schedule", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-DTServe-Cache"); got != "miss" {
		t.Fatalf("pruned portfolio result was cached: X-DTServe-Cache = %q", got)
	}
	if string(body1) != string(body2) {
		t.Fatal("re-solved pruned race diverged (winner must be deterministic)")
	}

	st := svc.Stats()
	if st.PortfolioPruned < 2 {
		t.Fatalf("portfolio_pruned = %d, want >= 2 (one per solve)", st.PortfolioPruned)
	}
	if st.Solves != 2 || st.Cache.Hits != 0 {
		t.Fatalf("pruned results must never be cached: %+v", st)
	}
	var js map[string]any
	if err := json.Unmarshal([]byte(statszBody(t, ts.URL)), &js); err != nil {
		t.Fatal(err)
	}
	if _, ok := js["portfolio_pruned"]; !ok {
		t.Fatal("statsz payload lacks portfolio_pruned")
	}
	metrics := metricsBody(t, ts.URL)
	if !containsLinePrefix(metrics, "dtserve_portfolio_pruned_total ") {
		t.Fatalf("metrics exposition lacks dtserve_portfolio_pruned_total:\n%s", metrics)
	}
	if !containsLinePrefix(metrics, "dtserve_schedule_items_total ") {
		t.Fatal("metrics exposition lacks dtserve_schedule_items_total")
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func statszBody(t *testing.T, base string) string  { return getBody(t, base+"/statsz") }
func metricsBody(t *testing.T, base string) string { return getBody(t, base+"/metrics") }

// containsLinePrefix reports whether any line of s starts with prefix.
func containsLinePrefix(s, prefix string) bool {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}
