package service

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/engine"
)

// DeltaRequest is the wire form of POST /v1/schedule/delta: online
// rescheduling against a previously answered solve. Base is the content
// address of the original (the X-DTServe-Address header of its
// response); Edits is the change list the server applies to the cached
// canonical graph. The edited problem inherits every option of the base
// — topology, communication parameters, solver, seed, weights, restarts
// — so the delta solves exactly "the same request with an edited graph".
//
// By default the solve warm-starts from the base's cached assignment
// (that is the point of naming a base); NoWarm disables seeding, in
// which case the response is byte-identical to a cold /v1/schedule call
// with the edited graph.
type DeltaRequest struct {
	Base  string      `json:"base"`
	Edits []DeltaEdit `json:"edits"`
	// NoWarm solves the edited graph cold (parity mode).
	NoWarm bool `json:"nowarm,omitempty"`
	// TimeoutMS overrides the base's solve budget; 0 inherits it.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Lane, NoCache and Trace behave exactly as on ScheduleRequest.
	Lane    string `json:"lane,omitempty"`
	NoCache bool   `json:"nocache,omitempty"`
	Trace   bool   `json:"trace,omitempty"`
}

// DeltaEdit is one graph edit. Op selects the field set:
//
//	add_task  {task, name?, load}   append task (IDs stay dense)
//	set_load  {task, load}          change a task's load
//	add_edge  {from, to, bits}      add a dependency (volumes merge)
//	set_edge  {from, to, bits}      set an existing dependency's volume
//	del_edge  {from, to}            remove a dependency
//
// Task deletion is deliberately absent: it would renumber the dense ID
// space and break the assignment projection that makes deltas cheap.
type DeltaEdit struct {
	Op   string   `json:"op"`
	Task int      `json:"task,omitempty"`
	Name string   `json:"name,omitempty"`
	Load *float64 `json:"load,omitempty"`
	From int      `json:"from,omitempty"`
	To   int      `json:"to,omitempty"`
	Bits *float64 `json:"bits,omitempty"`
}

// deltaGraph mirrors the canonical graph JSON for server-side editing.
type deltaGraph struct {
	Name  string      `json:"name"`
	Tasks []deltaTask `json:"tasks"`
	Edges []deltaEdge `json:"edges"`
}

type deltaTask struct {
	ID   int     `json:"id"`
	Name string  `json:"name,omitempty"`
	Load float64 `json:"load"`
}

type deltaEdge struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Bits float64 `json:"bits"`
}

// apply mutates the graph document by one edit.
func (g *deltaGraph) apply(e DeltaEdit) error {
	switch e.Op {
	case "add_task":
		if e.Task != len(g.Tasks) {
			return badRequest("add_task: task id %d must be the next dense id %d", e.Task, len(g.Tasks))
		}
		load := 0.0
		if e.Load != nil {
			load = *e.Load
		}
		g.Tasks = append(g.Tasks, deltaTask{ID: e.Task, Name: e.Name, Load: load})
		return nil
	case "set_load":
		if e.Task < 0 || e.Task >= len(g.Tasks) {
			return badRequest("set_load: no task %d", e.Task)
		}
		if e.Load == nil {
			return badRequest("set_load: missing load")
		}
		g.Tasks[e.Task].Load = *e.Load
		return nil
	case "add_edge":
		if e.Bits == nil {
			return badRequest("add_edge: missing bits")
		}
		if err := g.checkEndpoints(e.From, e.To); err != nil {
			return err
		}
		g.Edges = append(g.Edges, deltaEdge{From: e.From, To: e.To, Bits: *e.Bits})
		return nil
	case "set_edge":
		if e.Bits == nil {
			return badRequest("set_edge: missing bits")
		}
		for i := range g.Edges {
			if g.Edges[i].From == e.From && g.Edges[i].To == e.To {
				g.Edges[i].Bits = *e.Bits
				return nil
			}
		}
		return badRequest("set_edge: no edge %d->%d", e.From, e.To)
	case "del_edge":
		for i := range g.Edges {
			if g.Edges[i].From == e.From && g.Edges[i].To == e.To {
				g.Edges = append(g.Edges[:i], g.Edges[i+1:]...)
				return nil
			}
		}
		return badRequest("del_edge: no edge %d->%d", e.From, e.To)
	default:
		return badRequest("unknown edit op %q (want add_task, set_load, add_edge, set_edge or del_edge)", e.Op)
	}
}

func (g *deltaGraph) checkEndpoints(from, to int) error {
	if from < 0 || from >= len(g.Tasks) || to < 0 || to >= len(g.Tasks) {
		return badRequest("edge %d->%d references a missing task", from, to)
	}
	return nil
}

// handleDelta answers POST /v1/schedule/delta: resolve the base from the
// similarity index, apply the edit list to its canonical graph, rebuild
// the base's request around the edited graph, and run it through the
// exact same process pipeline as /v1/schedule — cache tiers,
// singleflight, accounting and all. Only the seeding differs: unless
// NoWarm is set, the solve warm-starts from the base's own assignment.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if s.draining.Load() {
		writeError(w, errDraining())
		return
	}
	var dreq DeltaRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&dreq); err != nil {
		writeError(w, badRequest("decode delta request: %v", err))
		return
	}
	if dreq.Base == "" {
		writeError(w, badRequest("missing base address"))
		return
	}
	ent, ok := s.sim.Get(dreq.Base)
	if !ok {
		writeError(w, &httpError{status: http.StatusNotFound,
			msg: "service: unknown base address (not indexed, or evicted)"})
		return
	}
	var doc deltaGraph
	if err := json.Unmarshal(ent.Graph, &doc); err != nil {
		writeError(w, &httpError{status: http.StatusInternalServerError,
			msg: "service: corrupt indexed graph: " + err.Error()})
		return
	}
	for i, e := range dreq.Edits {
		if err := doc.apply(e); err != nil {
			writeError(w, badRequest("edit %d: %v", i, err))
			return
		}
	}
	edited, err := json.Marshal(doc)
	if err != nil {
		writeError(w, &httpError{status: http.StatusInternalServerError, msg: err.Error()})
		return
	}

	// Rebuild the base's request around the edited graph. The full
	// CommOverride pins every communication parameter to the base's
	// resolved values, so defaults drifting between releases can never
	// make a delta diverge from its base's option block.
	opt := ent.Opt
	wb := opt.Wb
	timeoutMS := opt.Timeout
	if dreq.TimeoutMS != 0 {
		timeoutMS = dreq.TimeoutMS
	}
	raw := rawRequest{
		Graph: edited,
		Topo:  ent.Spec,
		Comm: &CommOverride{
			Bandwidth: &opt.Comm.Bandwidth,
			Sigma:     &opt.Comm.Sigma,
			Tau:       &opt.Comm.Tau,
			Scale:     &opt.Comm.Scale,
		},
		Solver:          opt.Solver,
		Seed:            opt.Seed,
		Wb:              &wb,
		Restarts:        opt.Restarts,
		Cooperative:     opt.Cooperative,
		Tempering:       opt.Tempering,
		TimeoutMS:       timeoutMS,
		MemberTimeoutMS: opt.MemberTimeout,
		Lane:            dreq.Lane,
		NoCache:         dreq.NoCache,
		Trace:           dreq.Trace,
	}

	sw, _ := w.(*statusWriter)
	explicit := wantsTrace(&raw, r)
	ctx, tr := s.startTrace(r.Context(), sw, t0, explicit)
	if sw == nil && tr != nil {
		defer func() { s.finishTrace(tr, time.Since(t0)) }()
	}
	meta := &procMeta{warmBase: dreq.Base, noWarm: dreq.NoWarm}
	if dreq.NoWarm {
		meta.warmBase = ""
	}
	body, status, err := s.process(ctx, &raw, engine.LaneInteractive, meta)
	if sw != nil {
		sw.lane = laneName(raw.Lane, engine.LaneInteractive)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	s.account(status)
	tr.Annotate("cache", status)
	tr.Annotate("delta_base", dreq.Base)
	if tr != nil && explicit {
		body = appendTraceBody(body, tr.Snapshot(time.Since(t0)))
	}
	writeResult(w, body, status, meta)
}
