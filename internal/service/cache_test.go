package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRU(t *testing.T) {
	c := NewCache(2, 0)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hit/miss counters %+v", st)
	}

	// Refresh an existing key.
	c.Put("a", []byte("1b"))
	if v, _ := c.Get("a"); string(v) != "1b" {
		t.Fatalf("refresh lost: %q", v)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(100, 10) // generous entry bound, tiny byte budget
	c.Put("a", []byte("12345"))
	c.Put("b", []byte("12345"))
	c.Put("c", []byte("12345")) // 15 bytes > 10: evicts "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("byte bound did not evict the oldest entry")
	}
	st := c.Stats()
	if st.Bytes > 10 || st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats after byte eviction: %+v", st)
	}

	// A single oversize entry survives (never evict the newest result),
	// but pushes everything else out.
	c.Put("big", make([]byte, 64))
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversize newest entry was evicted")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("oversize entry did not flush the rest: %+v", st)
	}

	// Refreshing a key with a bigger value re-checks the budget.
	c.Put("big", make([]byte, 8))
	c.Put("b", []byte("1"))
	c.Put("big", make([]byte, 64))
	if _, ok := c.Get("b"); ok {
		t.Fatal("refresh growth did not trigger eviction")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0, 0)
	if c != nil {
		t.Fatal("zero-size cache not disabled")
	}
	c.Put("a", []byte("1")) // must not panic
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a value")
	}
	if st := c.Stats(); st.Max != 0 {
		t.Fatalf("disabled stats %+v", st)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(32, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%40)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("corrupt value for %s: %q", key, v)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 32 {
		t.Fatalf("cache exceeded its bound: %+v", st)
	}
}
