package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// pollStats polls the server's stats until ok returns true or the
// deadline passes; it fails the test with the last snapshot otherwise.
func pollStats(t *testing.T, svc *Server, what string, ok func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			raw, _ := json.Marshal(st)
			t.Fatalf("timed out waiting for %s; stats: %s", what, raw)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLaneAndMemberTimeoutValidation pins the wire contract of the two
// new request fields: garbage lanes and negative member timeouts are
// structured 400s, valid values are accepted, and an explicit lane
// overrides the handler default (visible in the per-lane counters).
func TestLaneAndMemberTimeoutValidation(t *testing.T) {
	svc, ts := newTestServer(t, Config{CacheSize: 64})

	for _, tc := range []struct {
		name   string
		mutate func(*ScheduleRequest)
		frag   string
	}{
		{"unknown lane", func(r *ScheduleRequest) { r.Lane = "warp" }, "lane"},
		{"negative member timeout", func(r *ScheduleRequest) { r.MemberTimeoutMS = -5 }, "member_timeout_ms"},
	} {
		resp, body := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", tc.mutate))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Fatalf("%s: unstructured 400 body %q", tc.name, body)
		}
		if !strings.Contains(er.Error, tc.frag) {
			t.Fatalf("%s: error %q does not name the field %q", tc.name, er.Error, tc.frag)
		}
	}

	// A single schedule call explicitly requesting the batch lane runs
	// there; the default (no lane) stays interactive.
	resp, body := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", func(r *ScheduleRequest) {
		r.Solver, r.Lane = "hlf", "batch"
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch-lane single: status %d: %s", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/schedule", wireRequest(t, "NE", func(r *ScheduleRequest) {
		r.Solver = "hlf"
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-lane single: status %d: %s", resp.StatusCode, body)
	}
	st := svc.Stats()
	if st.Pool.Lanes["batch"].Submitted != 1 || st.Pool.Lanes["interactive"].Submitted != 1 {
		t.Fatalf("lane submitted: batch=%d interactive=%d, want 1 and 1",
			st.Pool.Lanes["batch"].Submitted, st.Pool.Lanes["interactive"].Submitted)
	}
}

// TestMemberTimeoutIsPartOfCacheKey: the same payload with and without a
// member timeout must occupy distinct cache lines (the budget changes
// which portfolio members can finish), while a repeat with the identical
// member timeout still hits.
func TestMemberTimeoutIsPartOfCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	base := func(r *ScheduleRequest) { r.Solver = "hlf" }
	timed := func(r *ScheduleRequest) { r.Solver, r.MemberTimeoutMS = "hlf", 5000 }

	for i, tc := range []struct {
		mutate func(*ScheduleRequest)
		want   string
	}{
		{base, "miss"}, {base, "hit"}, {timed, "miss"}, {timed, "hit"},
	} {
		resp, body := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", tc.mutate))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-DTServe-Cache"); got != tc.want {
			t.Fatalf("request %d: cache %q, want %q", i, got, tc.want)
		}
	}
}

// TestAdmissionControlReturns429 is the HTTP face of the engine's
// admission control: with one worker pinned by a gated solve and a
// one-deep queue budget, the next request is shed with a structured 429
// carrying both the Retry-After header and retry_after_ms in the body —
// and the pinned work still completes once released.
func TestAdmissionControlReturns429(t *testing.T) {
	ensureSlowSolver(t)
	gate := make(chan struct{})
	setSlowGate(gate)
	defer setSlowGate(nil)

	svc, ts := newTestServer(t, Config{CacheSize: 64, Workers: 1, QueueDepth: 1})

	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, 2)
	send := func(seed int64) {
		resp, body := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", func(r *ScheduleRequest) {
			r.Solver, r.Seed = "slowtest", seed
		}))
		replies <- reply{resp.StatusCode, body}
	}

	go send(1) // leader: occupies the only worker inside the gated solver
	pollStats(t, svc, "leader busy", func(st Stats) bool { return st.Pool.Busy == 1 })
	go send(2) // fills the one-deep interactive queue
	pollStats(t, svc, "queued follower", func(st Stats) bool {
		return st.Pool.Lanes["interactive"].Queued == 1
	})

	// Third distinct request: the lane budget is exhausted, so admission
	// control must shed it — before it ever reaches a solver.
	resp, body := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", func(r *ScheduleRequest) {
		r.Solver, r.Seed = "slowtest", 3
	}))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After header %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("unstructured 429 body %q", body)
	}
	if er.RetryAfterMS < 1000 {
		t.Fatalf("retry_after_ms = %d, want >= 1000 (floor is one second)", er.RetryAfterMS)
	}

	st := svc.Stats()
	if st.Shed != 1 || st.Pool.Lanes["interactive"].Shed != 1 {
		t.Fatalf("shed=%d lane shed=%d, want 1 and 1", st.Shed, st.Pool.Lanes["interactive"].Shed)
	}

	// Releasing the gate lets the pinned and queued requests finish
	// normally: shedding the third request cost them nothing.
	close(gate)
	for i := 0; i < 2; i++ {
		if r := <-replies; r.status != http.StatusOK {
			t.Fatalf("released request: status %d: %s", r.status, r.body)
		}
	}
	st = svc.Stats()
	if st.Solves != 2 {
		t.Fatalf("solves = %d, want 2", st.Solves)
	}
	if got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Coalesced; got != st.Items {
		t.Fatalf("conservation law broken after shed: %d != items %d", got, st.Items)
	}
}

// TestDrainRefusesNewWork: after BeginDrain the liveness probe flips to
// 503 "draining", new schedule and batch calls are refused with 503 +
// Retry-After, and /statsz reports draining.
func TestDrainRefusesNewWork(t *testing.T) {
	svc, ts := newTestServer(t, Config{CacheSize: 16})
	svc.BeginDrain()
	svc.BeginDrain() // idempotent

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || health["status"] != "draining" {
		t.Fatalf("healthz during drain: %d %v, want 503 draining", hr.StatusCode, health)
	}

	for _, path := range []string{"/v1/schedule", "/v1/schedule/batch"} {
		resp, body := post(t, ts.URL+path, wireRequest(t, "FFT", nil))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: %d, want 503: %s", path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s during drain: no Retry-After header", path)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterMS <= 0 {
			t.Fatalf("%s during drain: body %q lacks retry_after_ms", path, body)
		}
	}
	if st := svc.Stats(); !st.Draining {
		t.Fatal("stats do not report draining")
	}
}
