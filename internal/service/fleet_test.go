package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/proxy"
)

func runTestFleet(t *testing.T, cfg FleetConfig) *Fleet {
	t.Helper()
	f, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// postOK fires one schedule call and fails the test on any non-200.
func postOK(t *testing.T, url string, payload []byte) (*http.Response, []byte) {
	t.Helper()
	resp, body := post(t, url+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, body)
	}
	return resp, body
}

// TestFleetSingleflightAcrossReplicas is the scale-out acceptance test:
// K distinct keys, each requested concurrently through dtproxy across a
// 3-replica fleet, must cost exactly K solves fleet-wide — consistent
// hashing lands each key's singleflight leadership on one node, and the
// shared remote tier replays the result everywhere else byte-for-byte.
func TestFleetSingleflightAcrossReplicas(t *testing.T) {
	f := runTestFleet(t, FleetConfig{
		Replicas: 3,
		Server:   Config{CacheSize: 64},
		// Exact-solve-count assertions and hedging are mutually exclusive
		// by design: a fired hedge may duplicate a cold solve.
		Proxy: proxy.Config{HedgeDelay: -1},
	})

	const K = 6
	const perKey = 4
	payloads := make([][]byte, K)
	for i := range payloads {
		seed := int64(100 + i)
		payloads[i] = wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Seed = seed })
	}

	// Fire every key's requests concurrently: the proxy must route all
	// perKey copies of key i to the same replica, where they coalesce.
	bodies := make([][]byte, K*perKey)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		for j := 0; j < perKey; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				resp, err := http.Post(f.ProxyURL+"/v1/schedule", "application/json",
					bytes.NewReader(payloads[i]))
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("key %d copy %d: status %d: %s", i, j, resp.StatusCode, buf.String())
					return
				}
				if resp.Header.Get("X-DTProxy-Replica") == "" {
					t.Errorf("key %d copy %d: missing X-DTProxy-Replica", i, j)
				}
				bodies[i*perKey+j] = buf.Bytes()
			}(i, j)
		}
	}
	wg.Wait()
	for i := 0; i < K; i++ {
		for j := 1; j < perKey; j++ {
			if !bytes.Equal(bodies[i*perKey], bodies[i*perKey+j]) {
				t.Fatalf("key %d: copy %d differs from copy 0 via the proxy", i, j)
			}
		}
	}

	fs := f.Stats()
	if fs.Solves != K {
		t.Fatalf("fleet solves = %d, want exactly %d (one per distinct key); per-replica: %+v",
			fs.Solves, K, perReplicaSolves(fs))
	}

	// Every replica must now answer every key byte-identically when hit
	// directly — non-owners from the shared remote tier (their first
	// sight of the key), owners from memory.
	remoteTagged := 0
	for i := 0; i < K; i++ {
		for r, rep := range f.Replicas {
			resp, body := postOK(t, rep.URL, payloads[i])
			if !bytes.Equal(body, bodies[i*perKey]) {
				t.Fatalf("key %d on replica %d: body differs from the proxy answer", i, r)
			}
			switch tag := resp.Header.Get("X-DTServe-Cache"); tag {
			case "hit", "disk", "remote", "coalesced":
				if tag == "remote" {
					remoteTagged++
				}
			default:
				t.Fatalf("key %d on replica %d: unexpected cache tag %q (a direct replay must not re-solve)", i, r, tag)
			}
		}
	}
	if remoteTagged == 0 {
		t.Fatal("no direct replay was served from the remote tier; the fleet-shared cache is not being consulted")
	}

	// The extended conservation law must hold on every replica's /statsz
	// scrape, and no further solves may have happened.
	for r, rep := range f.Replicas {
		st := getStats(t, rep.URL)
		if err := CheckLaw(st); err != nil {
			t.Errorf("replica %d: %v", r, err)
		}
		if st.Remote.Enabled != true {
			t.Errorf("replica %d: remote tier not enabled in /statsz", r)
		}
	}
	if fs := f.Stats(); fs.Solves != K {
		t.Fatalf("fleet solves grew to %d after warm replays, want %d", fs.Solves, K)
	}
	if fs := f.Stats(); fs.RemoteHits == 0 {
		t.Fatal("fleet remote hits = 0 after cross-replica replays")
	}
}

func perReplicaSolves(fs FleetStats) []uint64 {
	out := make([]uint64, len(fs.PerReplica))
	for i, st := range fs.PerReplica {
		out[i] = st.Solves
	}
	return out
}

// TestFleetKillRerouteReadmit proves the proxy's failure path: kill the
// replica that owns a key, watch it get ejected, verify the key still
// answers byte-identically through the proxy (rerouted to a survivor,
// replayed from the shared remote tier — no extra solve), then restart
// the replica and watch readmission.
func TestFleetKillRerouteReadmit(t *testing.T) {
	f := runTestFleet(t, FleetConfig{
		Replicas: 2,
		Server:   Config{CacheSize: 64},
		Proxy: proxy.Config{
			HedgeDelay:     -1,
			HealthInterval: 20 * time.Millisecond,
			HealthTimeout:  500 * time.Millisecond,
			FailAfter:      2,
			ReadmitAfter:   2,
		},
	})

	payload := wireRequest(t, "MM", func(r *ScheduleRequest) { r.Seed = 7 })
	resp, want := postOK(t, f.ProxyURL, payload)
	owner := trimURL(resp.Header.Get("X-DTProxy-Replica"))
	ownerIdx := -1
	for i, rep := range f.Replicas {
		if rep.URL == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("X-DTProxy-Replica %q names no fleet member", owner)
	}

	// The survivor replays from the remote tier; the write-behind publish
	// is asynchronous, so wait for the daemon to hold the value before
	// killing the owner.
	waitFor(t, 5*time.Second, "remote tier publish", func() bool {
		return f.Cached.Stats().Entries > 0
	})

	if err := f.StopReplica(ownerIdx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "owner ejection", func() bool {
		return !f.Proxy.Stats().Healthy[owner]
	})

	resp, got := postOK(t, f.ProxyURL, payload)
	if !bytes.Equal(got, want) {
		t.Fatal("rerouted answer differs from the pre-kill answer")
	}
	if rep := trimURL(resp.Header.Get("X-DTProxy-Replica")); rep == owner {
		t.Fatalf("request was routed to the ejected replica %s", rep)
	}
	if tag := resp.Header.Get("X-DTServe-Cache"); tag != "remote" {
		t.Fatalf("survivor served tag %q, want \"remote\" (shared-tier replay, not a re-solve)", tag)
	}

	if err := f.RestartReplica(ownerIdx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "owner readmission", func() bool {
		return f.Proxy.Stats().Healthy[owner]
	})

	pst := f.Proxy.Stats()
	if pst.Ejections == 0 {
		t.Error("proxy recorded no ejection")
	}
	if pst.Readmissions == 0 {
		t.Error("proxy recorded no readmission")
	}
	// The same key keeps routing to its ring owner once readmitted.
	resp, got = postOK(t, f.ProxyURL, payload)
	if !bytes.Equal(got, want) {
		t.Fatal("post-readmission answer differs")
	}
	if rep := trimURL(resp.Header.Get("X-DTProxy-Replica")); rep != owner {
		t.Fatalf("post-readmission request routed to %s, want the readmitted owner %s", rep, owner)
	}

	fs := f.Stats()
	if fs.Solves != 1 {
		t.Fatalf("fleet solves = %d across the kill/reroute/readmit cycle, want 1", fs.Solves)
	}
	for r, st := range fs.PerReplica {
		if err := CheckLaw(st); err != nil {
			t.Errorf("replica %d: %v", r, err)
		}
	}
}

// TestFleetAllReplicasDown exercises the proxy's empty-candidate path:
// with every replica stopped the proxy answers 503 with Retry-After and
// counts the request as unrouted, and its own /healthz degrades.
func TestFleetAllReplicasDown(t *testing.T) {
	f := runTestFleet(t, FleetConfig{
		Replicas: 2,
		Server:   Config{CacheSize: 8},
		Proxy: proxy.Config{
			HedgeDelay:     -1,
			HealthInterval: 20 * time.Millisecond,
			HealthTimeout:  250 * time.Millisecond,
			FailAfter:      2,
		},
	})
	for i := range f.Replicas {
		if err := f.StopReplica(i); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "fleet-wide ejection", func() bool {
		st := f.Proxy.Stats()
		for _, h := range st.Healthy {
			if h {
				return false
			}
		}
		return true
	})

	payload := wireRequest(t, "NE", nil)
	resp, body := post(t, f.ProxyURL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with no healthy replicas, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After")
	}
	if st := f.Proxy.Stats(); st.Unrouted == 0 {
		t.Error("unrouted counter not incremented")
	}

	hz, err := http.Get(f.ProxyURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("proxy /healthz = %d with no healthy replicas, want 503", hz.StatusCode)
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetBatchThroughProxy routes a streamed batch through the proxy:
// the whole batch lands on one replica (routed by its first member), the
// NDJSON body arrives intact, and the law holds everywhere after.
func TestFleetBatchThroughProxy(t *testing.T) {
	f := runTestFleet(t, FleetConfig{
		Replicas: 2,
		Server:   Config{CacheSize: 64},
		Proxy:    proxy.Config{HedgeDelay: -1},
	})

	single := wireRequest(t, "GJ", func(r *ScheduleRequest) { r.Seed = 41 })
	var sr ScheduleRequest
	mustUnmarshal(t, single, &sr)
	batch := mustMarshal(t, BatchRequest{Requests: []ScheduleRequest{sr, sr, sr}})

	req, err := http.NewRequest(http.MethodPost, f.ProxyURL+"/v1/schedule/batch", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, buf.String())
	}
	if resp.Header.Get("X-DTProxy-Replica") == "" {
		t.Error("batch response missing X-DTProxy-Replica")
	}
	if n := bytes.Count(bytes.TrimSpace(buf.Bytes()), []byte("\n")) + 1; n != 3 {
		t.Fatalf("streamed %d NDJSON items, want 3", n)
	}
	fs := f.Stats()
	if fs.Solves != 1 {
		t.Fatalf("fleet solves = %d for a 3-member identical batch, want 1", fs.Solves)
	}
	for r, st := range fs.PerReplica {
		if err := CheckLaw(st); err != nil {
			t.Errorf("replica %d: %v", r, err)
		}
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}
