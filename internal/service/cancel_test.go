package service

import (
	"bufio"
	"encoding/json"
	"testing"
)

// TestClientDisconnectCancelsBatchMembers is the HTTP-level per-item
// cancellation proof: a client that consumes one item of a streamed
// batch and hangs up must cancel every remaining member — the one
// blocked inside a solver (which observes its context and stops) and the
// ones still queued (which expire without ever running). The cancelled
// members are counted, produce no schedule items, and land in no cache
// tier; the conservation law still balances on the one delivered item.
func TestClientDisconnectCancelsBatchMembers(t *testing.T) {
	ensureSlowSolver(t)
	// One token: exactly one member passes the gate immediately, every
	// other member blocks in the solver until its context is cancelled.
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	setSlowGate(gate)
	defer setSlowGate(nil)

	svc, ts := newTestServer(t, Config{CacheSize: 64, Workers: 1})
	batch := BatchRequest{Requests: []ScheduleRequest{
		mustScheduleRequest(t, "FFT", 1, "slowtest"),
		mustScheduleRequest(t, "NE", 2, "slowtest"),
		mustScheduleRequest(t, "GJ", 3, "slowtest"),
		mustScheduleRequest(t, "FFT", 4, "slowtest"),
	}}

	resp := streamBatch(t, ts.URL, batch)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first item: %v", sc.Err())
	}
	var first BatchItem
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line is not a complete item: %q", sc.Bytes())
	}
	// Items stream in completion order and members race to the single
	// worker, so any member may be the one delivered — it just has to be
	// a clean cold solve.
	if first.Error != "" || first.Cache != "miss" {
		t.Fatalf("first item = %+v, want one member solved cold", first)
	}

	// Hang up mid-stream: the server must notice and cancel members 1-3.
	resp.Body.Close()

	st := pollStats(t, svc, "3 cancelled members", func(st Stats) bool {
		return st.Cancelled == 3
	})
	if st.Solves != 1 {
		t.Fatalf("solves = %d, want 1 (only the delivered member ran)", st.Solves)
	}
	if st.Items != 1 {
		t.Fatalf("schedule items = %d, want 1 (cancelled members are not items)", st.Items)
	}
	if got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Coalesced; got != st.Items {
		t.Fatalf("conservation law broken: %d != items %d", got, st.Items)
	}
	// Cancelled members must not be memoized: exactly the delivered
	// member's body is cached, and nothing reached the (disabled) disk
	// tier.
	if st.Cache.Entries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.Cache.Entries)
	}
	if st.Disk.Writes != 0 {
		t.Fatalf("disk writes = %d, want 0", st.Disk.Writes)
	}
	// The engine's lane counters agree: one batch job completed, three
	// never produced results (cancelled mid-solve or expired while
	// queued).
	lane := st.Pool.Lanes["batch"]
	if lane.Submitted != 4 || lane.Completed+lane.Expired != 4 {
		t.Fatalf("batch lane = %+v, want 4 submitted, completed+expired == 4", lane)
	}
	if lane.Completed >= 4 {
		t.Fatalf("batch lane completed %d jobs; cancellation freed none", lane.Completed)
	}
}
