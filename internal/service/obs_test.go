package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/taskgraph"
)

// tracedEnvelope is the response shape of a traced schedule call: the
// wire Result plus the spliced trace block.
type tracedEnvelope struct {
	Result
	Trace *obs.TraceData `json:"trace"`
}

// depth0Stages extracts the top-level stage names of a trace in order.
func depth0Stages(td *obs.TraceData) []string {
	var out []string
	for _, st := range td.Stages {
		if st.Depth == 0 {
			out = append(out, st.Stage)
		}
	}
	return out
}

// TestTracedRequestStageBreakdown is the tentpole acceptance test: a cold
// traced solve on a disk-backed server returns the ordered stage
// breakdown — decode through marshal — whose durations sum to within
// jitter of the end-to-end latency, under the span ID the response
// header carries.
func TestTracedRequestStageBreakdown(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64, CacheDir: t.TempDir()})
	payload := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Trace = true })

	resp, body := post(t, ts.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	headerID := resp.Header.Get("X-DTServe-Trace-Id")
	if headerID == "" {
		t.Fatal("no X-DTServe-Trace-Id header")
	}
	var env tracedEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Trace == nil {
		t.Fatalf("no trace block in traced response: %s", body)
	}
	if env.Trace.ID != headerID {
		t.Fatalf("trace id %q does not match header %q", env.Trace.ID, headerID)
	}
	if env.Makespan <= 0 || len(env.Schedule) == 0 {
		t.Fatalf("trace splice damaged the result payload: %+v", env.Result)
	}

	want := []string{"decode", "canonicalize", "mem_tier", "disk_tier", "engine_queue", "solve", "marshal"}
	got := depth0Stages(env.Trace)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("cold traced solve stages = %v, want %v", got, want)
	}

	// Stages are ordered by start offset and tile the request: their
	// durations sum to the end-to-end total minus handler glue, which is
	// microseconds — the generous bound only guards against CI jitter.
	var sum int64
	lastStart := int64(-1)
	for _, st := range env.Trace.Stages {
		if st.Depth != 0 {
			continue
		}
		if st.StartNS < lastStart {
			t.Fatalf("stage %s starts at %d, before its predecessor at %d", st.Stage, st.StartNS, lastStart)
		}
		lastStart = st.StartNS
		if st.DurNS < 0 {
			t.Fatalf("stage %s has negative duration %d", st.Stage, st.DurNS)
		}
		sum += st.DurNS
	}
	total := env.Trace.TotalNS
	if sum > total {
		t.Fatalf("stage durations sum to %dns, more than the end-to-end total %dns", sum, total)
	}
	gap := total - sum
	bound := int64(50 * time.Millisecond)
	if half := total / 2; half > bound {
		bound = half
	}
	if gap > bound {
		t.Fatalf("stages account for %dns of %dns — %dns unaccounted, want under %dns", sum, total, gap, bound)
	}

	if env.Trace.Notes["cache"] != "miss" {
		t.Fatalf("trace notes = %v, want cache=miss", env.Trace.Notes)
	}
	if env.Trace.Notes["solver"] != "sa" {
		t.Fatalf("trace notes = %v, want solver=sa", env.Trace.Notes)
	}
}

// TestTraceNeverCached: the trace block is spliced per response and never
// stored — an untraced call after a traced one serves clean cached bytes,
// and a traced call after a warm-up gets a fresh (short, hit-path) trace.
func TestTraceNeverCached(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	traced := wireRequest(t, "MM", func(r *ScheduleRequest) { r.Trace = true })
	plain := wireRequest(t, "MM", nil)

	if resp, body := post(t, ts.URL+"/v1/schedule", traced); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold traced call: status %d: %s", resp.StatusCode, body)
	}

	resp, body := post(t, ts.URL+"/v1/schedule", plain)
	if tag := resp.Header.Get("X-DTServe-Cache"); tag != "hit" {
		t.Fatalf("second call cache tag = %q, want hit (trace must not split the cache key)", tag)
	}
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Fatalf("cached body served with a trace block — traced bytes leaked into the cache: %s", body)
	}

	resp, body = post(t, ts.URL+"/v1/schedule", traced)
	if tag := resp.Header.Get("X-DTServe-Cache"); tag != "hit" {
		t.Fatalf("warm traced call cache tag = %q, want hit", tag)
	}
	var env tracedEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Trace == nil {
		t.Fatal("warm traced call returned no trace block")
	}
	want := []string{"decode", "canonicalize", "mem_tier"}
	if got := depth0Stages(env.Trace); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("warm hit stages = %v, want %v (a hit never reaches disk or the engine)", got, want)
	}
}

// syncBuffer serializes writes so the slog handler and the test reader
// never race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestTraceIDRoundTripSlog: the span ID on the response header is the
// trace_id of the request's structured log record, and traced requests
// log their stage summary.
func TestTraceIDRoundTripSlog(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, Config{
		CacheSize: 64,
		Logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	payload := wireRequest(t, "GJ", func(r *ScheduleRequest) { r.Trace = true })
	resp, body := post(t, ts.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-DTServe-Trace-Id")

	var rec struct {
		Msg     string `json:"msg"`
		Path    string `json:"path"`
		Status  int    `json:"status"`
		TraceID string `json:"trace_id"`
		Lane    string `json:"lane"`
		Cache   string `json:"cache"`
		Stages  string `json:"stages"`
	}
	found := false
	for _, line := range logBuf.Lines() {
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable slog line %q: %v", line, err)
		}
		if rec.Msg == "request" && rec.TraceID == id {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no request log record with trace_id %q in:\n%s", id, strings.Join(logBuf.Lines(), "\n"))
	}
	if rec.Path != "/v1/schedule" || rec.Status != http.StatusOK {
		t.Fatalf("log record %+v, want path=/v1/schedule status=200", rec)
	}
	if rec.Lane != "interactive" || rec.Cache != "miss" {
		t.Fatalf("log record %+v, want lane=interactive cache=miss", rec)
	}
	for _, stage := range []string{"decode=", "solve=", "marshal="} {
		if !strings.Contains(rec.Stages, stage) {
			t.Fatalf("log stages %q missing %q", rec.Stages, stage)
		}
	}
}

// TestPortfolioTraceMemberStages: a traced portfolio solve exposes every
// raced member as a depth-1 sub-stage with its outcome, exactly one of
// which wins — and the outcomes land in the /statsz member counters.
func TestPortfolioTraceMemberStages(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	payload := wireRequest(t, "NE", func(r *ScheduleRequest) {
		r.Solver = "portfolio"
		r.Trace = true
	})
	resp, body := post(t, ts.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env tracedEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Trace == nil {
		t.Fatal("no trace block")
	}
	members, wins := 0, 0
	for _, st := range env.Trace.Stages {
		if st.Depth != 1 {
			continue
		}
		if !strings.HasPrefix(st.Stage, "portfolio:") {
			t.Fatalf("depth-1 stage %q is not a portfolio member", st.Stage)
		}
		members++
		switch st.Notes["outcome"] {
		case "win":
			wins++
		case "finish", "pruned", "timeout", "cancelled", "error":
		default:
			t.Fatalf("member %s has unknown outcome %q", st.Stage, st.Notes["outcome"])
		}
	}
	if members < 2 {
		t.Fatalf("traced portfolio exposed %d member stages, want at least 2", members)
	}
	if wins != 1 {
		t.Fatalf("%d members marked win, want exactly 1", wins)
	}
	winner := env.Trace.Notes["portfolio_winner"]
	if winner == "" {
		t.Fatalf("trace notes %v missing portfolio_winner", env.Trace.Notes)
	}

	st := getStats(t, ts.URL)
	winKey := winner + "|win"
	if st.MemberOutcomes[winKey] == 0 {
		t.Fatalf("statsz portfolio_members = %v, want a count under %q", st.MemberOutcomes, winKey)
	}
	var total uint64
	for _, n := range st.MemberOutcomes {
		total += n
	}
	if total != uint64(members) {
		t.Fatalf("statsz member outcomes total %d, want %d (one per raced member)", total, members)
	}
}

// promSample is one parsed exposition line.
var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (.+)$`)

// TestMetricsExposition drives a little of every path — cold solve, warm
// hit, traced call, streamed batch, portfolio — then parses /metrics as a
// Prometheus scraper would: every sample belongs to a family with HELP
// and TYPE, histogram buckets are cumulative with well-formed le bounds,
// and the +Inf bucket equals the series count.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64, CacheDir: t.TempDir(), TraceSample: 1})
	payload := wireRequest(t, "FFT", nil)
	for i := 0; i < 2; i++ { // miss then hit
		if resp, body := post(t, ts.URL+"/v1/schedule", payload); resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule: status %d: %s", resp.StatusCode, body)
		}
	}
	if resp, body := post(t, ts.URL+"/v1/schedule",
		wireRequest(t, "NE", func(r *ScheduleRequest) { r.Solver = "portfolio"; r.Trace = true })); resp.StatusCode != http.StatusOK {
		t.Fatalf("portfolio: status %d: %s", resp.StatusCode, body)
	}
	// One streamed batch for the TTFB histogram.
	batch, err := json.Marshal(BatchRequest{Requests: []ScheduleRequest{
		{Graph: mustGraph(t, "MM"), Topo: "hypercube:3", Solver: "hlf"},
		{Graph: mustGraph(t, "GJ"), Topo: "hypercube:3", Solver: "hlf"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule/batch", bytes.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	sink.ReadFrom(bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", bresp.StatusCode, sink.String())
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	text := buf.String()

	helped := map[string]bool{}
	typed := map[string]string{}
	type series struct {
		buckets []float64 // le bounds in exposition order
		cum     []uint64
		count   uint64
		hasInf  bool
		infVal  uint64
	}
	hists := map[string]*series{} // key: family + non-le labels

	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[0]] = parts[1]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		name, labels, value := m[1], m[3], m[4]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if !helped[family] {
			t.Fatalf("sample %q has no HELP for family %q", line, family)
		}
		if typed[family] == "" {
			t.Fatalf("sample %q has no TYPE for family %q", line, family)
		}
		if typed[family] != "histogram" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("non-numeric value in %q: %v", line, err)
			}
			continue
		}

		// Histogram bookkeeping, keyed by the series' non-le labels.
		var le string
		var rest []string
		for _, l := range strings.Split(labels, ",") {
			if strings.HasPrefix(l, `le="`) {
				le = strings.TrimSuffix(strings.TrimPrefix(l, `le="`), `"`)
			} else if l != "" {
				rest = append(rest, l)
			}
		}
		key := family + "{" + strings.Join(rest, ",") + "}"
		sr := hists[key]
		if sr == nil {
			sr = &series{}
			hists[key] = sr
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if le == "+Inf" {
				sr.hasInf = true
				sr.infVal = v
				break
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("malformed le=%q in %q: %v", le, line, err)
			}
			sr.buckets = append(sr.buckets, bound)
			sr.cum = append(sr.cum, v)
		case strings.HasSuffix(name, "_count"):
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("count value in %q: %v", line, err)
			}
			sr.count = v
		}
	}

	for key, sr := range hists {
		if !sr.hasInf {
			t.Fatalf("histogram series %s has no +Inf bucket", key)
		}
		if sr.infVal != sr.count {
			t.Fatalf("histogram series %s: +Inf bucket %d != count %d", key, sr.infVal, sr.count)
		}
		for i := 1; i < len(sr.cum); i++ {
			if sr.buckets[i] <= sr.buckets[i-1] {
				t.Fatalf("histogram series %s: bounds not ascending at %v", key, sr.buckets)
			}
			if sr.cum[i] < sr.cum[i-1] {
				t.Fatalf("histogram series %s: buckets not cumulative at le=%v (%d < %d)",
					key, sr.buckets[i], sr.cum[i], sr.cum[i-1])
			}
		}
	}

	for _, family := range []string{
		"dtserve_build_info", "dtserve_traces_total",
		"dtserve_solve_duration_seconds", "dtserve_stage_duration_seconds",
		"dtserve_lane_queue_delay_seconds", "dtserve_disk_read_seconds",
		"dtserve_disk_write_seconds", "dtserve_stream_ttfb_seconds",
		"dtserve_portfolio_member_total", "dtserve_solver_outcome_total",
	} {
		if !helped[family] || typed[family] == "" {
			t.Fatalf("family %s missing from the exposition (HELP=%v TYPE=%q)", family, helped[family], typed[family])
		}
	}
	for _, sample := range []string{
		`dtserve_stage_duration_seconds_bucket{stage="solve",`,
		`dtserve_stage_duration_seconds_bucket{stage="decode",`,
		`dtserve_lane_queue_delay_seconds_bucket{lane="interactive",`,
		`dtserve_portfolio_member_total{`,
	} {
		if !strings.Contains(text, sample) {
			t.Fatalf("exposition missing expected series %q", sample)
		}
	}
	if !strings.Contains(text, `version="`) {
		t.Fatal("build info carries no version label")
	}
	// The TTFB histogram saw the streamed batch.
	if sr := hists["dtserve_stream_ttfb_seconds{}"]; sr == nil || sr.count == 0 {
		t.Fatal("streamed batch did not land in dtserve_stream_ttfb_seconds")
	}
}

// TestStatszLawUnderLoad scrapes /statsz and /metrics while traffic is in
// flight: every snapshot must satisfy the conservation law exactly —
// solves + memory hits + disk hits + coalesced == schedule items — since
// item accounting is a single critical section.
func TestStatszLawUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64, TraceSample: 4})
	payloads := [][]byte{
		wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Solver = "hlf" }),
		wireRequest(t, "MM", func(r *ScheduleRequest) { r.Solver = "hlf" }),
		wireRequest(t, "GJ", func(r *ScheduleRequest) { r.Solver = "etf" }),
	}

	const clients, perClient = 8, 12
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, body := post(t, ts.URL+"/v1/schedule", payloads[(c+i)%len(payloads)])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}
	// Scrape continuously while the load runs.
	scrapes := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := getStats(t, ts.URL)
			if got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Coalesced; got != st.Items {
				t.Errorf("conservation law broken mid-load: solves %d + mem %d + disk %d + coalesced %d = %d != items %d",
					st.Solves, st.Cache.Hits, st.Disk.Hits, st.Coalesced, got, st.Items)
				return
			}
			scrapes++
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	if scrapes == 0 {
		t.Fatal("no scrape completed during the load window")
	}

	st := getStats(t, ts.URL)
	if st.Items != clients*perClient {
		t.Fatalf("items %d, want %d", st.Items, clients*perClient)
	}
	if got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Coalesced; got != st.Items {
		t.Fatalf("final law: %d != items %d", got, st.Items)
	}
	t.Logf("law held across %d scrapes under load (%d items: %d solves, %d mem, %d coalesced)",
		scrapes, st.Items, st.Solves, st.Cache.Hits, st.Coalesced)
}

// TestDebugRequestsRing: /debug/requests serves the retained traces, most
// recent first, with the slowest list sorted by total duration.
func TestDebugRequestsRing(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64, TraceSample: 1, TraceRecent: 4, TraceSlowest: 2})
	payload := wireRequest(t, "MM", func(r *ScheduleRequest) { r.Solver = "hlf" })
	var ids []string
	for i := 0; i < 6; i++ {
		resp, _ := post(t, ts.URL+"/v1/schedule", payload)
		ids = append(ids, resp.Header.Get("X-DTServe-Trace-Id"))
	}

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ring obs.RingSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	if ring.Total < 6 {
		t.Fatalf("ring total %d, want at least the 6 traced requests", ring.Total)
	}
	if len(ring.Recent) != 4 {
		t.Fatalf("ring keeps %d recent traces, want 4", len(ring.Recent))
	}
	if ring.Recent[0].ID != ids[len(ids)-1] {
		t.Fatalf("most recent trace is %q, want the last request %q", ring.Recent[0].ID, ids[len(ids)-1])
	}
	if len(ring.Slowest) != 2 {
		t.Fatalf("ring keeps %d slowest traces, want 2", len(ring.Slowest))
	}
	if ring.Slowest[0].TotalNS < ring.Slowest[1].TotalNS {
		t.Fatal("slowest traces not sorted by total duration")
	}
}

func mustGraph(t *testing.T, program string) *taskgraph.Graph {
	t.Helper()
	g, err := cliutil.BuildProgram(program)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
