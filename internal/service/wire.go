// Package service is the HTTP/JSON scheduling service: it accepts
// taskgraph + topology + communication parameters on the wire, routes
// each request through the solver registry on the shared solve engine
// (internal/engine — worker-owned simulator arenas and pooled SA
// schedulers), and memoizes completed results in a tiered
// content-addressed cache — an in-memory LRU backed by an optional
// persistent disk tier and an optional fleet-shared remote tier
// (dtcached), so a restarted server replays its warm set byte-identically
// without re-solving and a replica fleet shares one warm set.
//
// Endpoints:
//
//	POST /v1/schedule        solve one request
//	POST /v1/schedule/batch  solve many requests, pipelined on the engine;
//	                         with "Accept: application/x-ndjson" each item
//	                         streams out the moment its solve completes
//	GET  /v1/solvers         list the registered solvers
//	GET  /healthz            liveness probe
//	GET  /statsz             request, cache, engine and per-solver counters
//	GET  /metrics            the same in Prometheus exposition format
//
// Responses for identical payloads are byte-identical (seeded determinism
// end to end); cache status travels in the X-DTServe-Cache header — or
// the per-item "cache" field of batch items — so a warm hit does not
// perturb the body. The one exception is a portfolio request raced
// against a clock (the request deadline, a member deadline, lower-bound
// early cancellation, or incumbent-bound pruning) — which members beat
// the clock is a timing fact, not a payload fact — so those results are
// served but never cached.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// ScheduleRequest is the wire form of one scheduling problem.
type ScheduleRequest struct {
	// Graph is the taskgraph in the canonical {name, tasks, edges} JSON
	// encoding of internal/taskgraph. Decoding validates it (dense IDs,
	// acyclicity, non-negative loads and volumes).
	Graph *taskgraph.Graph `json:"graph"`
	// Topo is a topology spec such as "hypercube:3" or "mesh:3x4".
	Topo string `json:"topo"`
	// Comm overrides individual communication parameters; absent fields
	// keep the paper defaults.
	Comm *CommOverride `json:"comm,omitempty"`
	// NoComm disables communication costs (comm scale 0).
	NoComm bool `json:"nocomm,omitempty"`
	// Solver names the registry entry to use; empty means the server's
	// default. "portfolio" races solvers under the request deadline.
	Solver string `json:"solver,omitempty"`
	// Seed drives all stochastic choices; equal seeds give equal results.
	Seed int64 `json:"seed,omitempty"`
	// Wb is the SA balance weight (wc = 1 - wb); nil means 0.5.
	Wb *float64 `json:"wb,omitempty"`
	// Restarts anneals each packet this many times (0/1 = single run).
	Restarts int `json:"restarts,omitempty"`
	// Cooperative makes the SA restarts share one incumbent best cost:
	// restarts publish improvements at stage barriers and dominated
	// restarts are abandoned early. Winner-preserving and deterministic
	// for a fixed seed, so cooperative results cache like plain ones.
	Cooperative bool `json:"cooperative,omitempty"`
	// Tempering runs the restarts as a parallel-tempering ladder
	// (epoch-synchronized replica exchange) instead of independent
	// chains; implies cooperative barriers. Deterministic per seed.
	Tempering bool `json:"tempering,omitempty"`
	// TimeoutMS bounds the solve wall-clock; 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MemberTimeoutMS bounds each portfolio member's solve individually
	// (solver.PortfolioOptions.MemberTimeout); 0 means no per-member
	// deadline, negative is a 400. Only the "portfolio" solver reads it.
	MemberTimeoutMS int `json:"member_timeout_ms,omitempty"`
	// Lane names the QoS lane: "interactive" (the default for single
	// schedule calls) or "batch" (the default for batch members). The
	// interactive lane wins the weighted dequeue under contention; the
	// batch lane is shed first under overload. Any other value is a 400.
	Lane string `json:"lane,omitempty"`
	// NoCache bypasses the result cache (the result is still stored).
	NoCache bool `json:"nocache,omitempty"`
	// Trace requests a stage-timing breakdown: the response envelope gains
	// a "trace" block (span ID, ordered stages with start offsets and
	// durations, annotations). Equivalent to ?trace=1 on the URL. Trace is
	// observability, not semantics: it is excluded from the cache key, the
	// trace block is spliced per-response, and traced bytes are never what
	// the cache stores.
	Trace bool `json:"trace,omitempty"`
}

// CommOverride overrides communication parameters field by field. Fields
// are pointers so an absent field keeps its default — crucially, a client
// overriding only the bandwidth does not silently zero Scale (which would
// disable communication costs altogether).
type CommOverride struct {
	Bandwidth *float64 `json:"bandwidth,omitempty"`
	Sigma     *float64 `json:"sigma,omitempty"`
	Tau       *float64 `json:"tau,omitempty"`
	Scale     *float64 `json:"scale,omitempty"`
}

// apply overlays the set fields onto p and returns the result.
func (o *CommOverride) apply(p topology.CommParams) topology.CommParams {
	if o == nil {
		return p
	}
	if o.Bandwidth != nil {
		p.Bandwidth = *o.Bandwidth
	}
	if o.Sigma != nil {
		p.Sigma = *o.Sigma
	}
	if o.Tau != nil {
		p.Tau = *o.Tau
	}
	if o.Scale != nil {
		p.Scale = *o.Scale
	}
	return p
}

// BatchRequest is the wire form of POST /v1/schedule/batch.
type BatchRequest struct {
	Requests []ScheduleRequest `json:"requests"`
}

// rawRequest is the handler-side decode form of ScheduleRequest: the
// graph stays as raw bytes so the fused path (taskgraph.Canonicalizer)
// can build the canonical form and hash the cache key in one pass over
// them, materializing a *Graph only on a cache miss. Field set and tags
// must mirror ScheduleRequest exactly.
type rawRequest struct {
	Graph           json.RawMessage `json:"graph"`
	Topo            string          `json:"topo"`
	Comm            *CommOverride   `json:"comm,omitempty"`
	NoComm          bool            `json:"nocomm,omitempty"`
	Solver          string          `json:"solver,omitempty"`
	Seed            int64           `json:"seed,omitempty"`
	Wb              *float64        `json:"wb,omitempty"`
	Restarts        int             `json:"restarts,omitempty"`
	Cooperative     bool            `json:"cooperative,omitempty"`
	Tempering       bool            `json:"tempering,omitempty"`
	TimeoutMS       int             `json:"timeout_ms,omitempty"`
	MemberTimeoutMS int             `json:"member_timeout_ms,omitempty"`
	Lane            string          `json:"lane,omitempty"`
	NoCache         bool            `json:"nocache,omitempty"`
	Trace           bool            `json:"trace,omitempty"`
}

// rawBatch is the handler-side decode form of BatchRequest.
type rawBatch struct {
	Requests []rawRequest `json:"requests"`
}

// BatchItem is one element of a batch response: exactly one of Result or
// Error is set. Index names the request the item answers, and Cache
// reports how the body was obtained ("hit", "disk", "remote",
// "coalesced" or "miss") — the per-item analogue of the X-DTServe-Cache
// header. In the
// buffered BatchResponse the items are already request-ordered; in the
// NDJSON stream they arrive in completion order and Index is how clients
// reassemble them.
type BatchItem struct {
	Index  int             `json:"index"`
	Cache  string          `json:"cache,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// BatchResponse is the wire form of a buffered batch reply, item i
// answering request i. With "Accept: application/x-ndjson" the same items
// are instead streamed one JSON object per line, each written as its
// solve completes.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// ErrorResponse is the structured error body of every non-2xx reply. A
// 429 (admission control shed the request) additionally carries
// RetryAfterMS, mirroring the Retry-After header at millisecond
// resolution.
type ErrorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Result is the wire form of a completed solve — the same schema the
// dtsched CLI emits with --json, so CLI and server outputs are diffable.
type Result struct {
	Solver         string           `json:"solver"`
	Program        string           `json:"program"`
	Topology       string           `json:"topology"`
	Makespan       float64          `json:"makespan"`
	SequentialTime float64          `json:"t1"`
	Speedup        float64          `json:"speedup"`
	Messages       int              `json:"messages"`
	TransferTime   float64          `json:"transfer_time"`
	OverheadTime   float64          `json:"overhead_time"`
	Epochs         int              `json:"epochs"`
	Forced         int              `json:"forced"`
	Utilization    float64          `json:"utilization"`
	Schedule       []schedule.Entry `json:"schedule"`
}

// ResultFromSim converts a completed simulation into the wire Result.
func ResultFromSim(res *machsim.Result, g *taskgraph.Graph, topoName string) (*Result, error) {
	sched, err := schedule.FromResult(res)
	if err != nil {
		return nil, err
	}
	return &Result{
		Solver:         res.Policy,
		Program:        g.Name(),
		Topology:       topoName,
		Makespan:       res.Makespan,
		SequentialTime: res.SequentialTime,
		Speedup:        res.Speedup,
		Messages:       res.Messages,
		TransferTime:   res.TransferTime,
		OverheadTime:   res.OverheadTime,
		Epochs:         len(res.Epochs),
		Forced:         res.Forced,
		Utilization:    res.Utilization(),
		Schedule:       sched.Entries,
	}, nil
}

// cacheKey is the content address of a request: a SHA-256 over the
// canonical graph encoding plus every option that can change the result —
// including the timeout, so a result degraded by a tight deadline is
// never replayed to a request with a generous one. Map/insertion order
// never leaks into the key, so equal problems always hit the same cache
// line.
// The QoS lane is deliberately not part of the key: the lane decides when
// a job runs, never what it computes, so identical problems submitted on
// different lanes share one cache line (and coalesce onto one solve).
func cacheKey(g *taskgraph.Graph, topoName string, comm topology.CommParams,
	solverName string, sa core.Options, timeoutMS, memberTimeoutMS int) (string, error) {

	graphJSON, err := g.CanonicalJSON()
	if err != nil {
		return "", err
	}
	key := struct {
		Graph json.RawMessage `json:"graph"`
		keyOptions
	}{graphJSON, makeKeyOptions(topoName, comm, solverName, sa, timeoutMS, memberTimeoutMS)}
	data, err := json.Marshal(key)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%016x-%s", g.Fingerprint(), hex.EncodeToString(sum[:16])), nil
}

// keyOptions is the option block of the cache-key document: every knob
// that can change a result's bytes, in one fixed field order shared by
// cacheKey and the fused streaming path so both derive identical keys.
// The cooperative/tempering flags sit last with omitempty, so every key
// minted before they existed is byte-stable.
type keyOptions struct {
	Topo          string              `json:"topo"`
	Comm          topology.CommParams `json:"comm"`
	Solver        string              `json:"solver"`
	Seed          int64               `json:"seed"`
	Wb            float64             `json:"wb"`
	Wc            float64             `json:"wc"`
	Restarts      int                 `json:"restarts"`
	Timeout       int                 `json:"timeout_ms"`
	MemberTimeout int                 `json:"member_timeout_ms,omitempty"`
	Cooperative   bool                `json:"cooperative,omitempty"`
	Tempering     bool                `json:"tempering,omitempty"`
	// WarmSeed separates warm-started results from cold ones: a warm solve
	// anneals from a projected cached assignment under a shortened cooling
	// schedule, so its bytes legitimately differ from the cold solve of the
	// same request. The field holds the seeding base address plus the sketch
	// distance; cold keys leave it empty and stay byte-stable.
	WarmSeed string `json:"warm_seed,omitempty"`
}

func makeKeyOptions(topoName string, comm topology.CommParams,
	solverName string, sa core.Options, timeoutMS, memberTimeoutMS int) keyOptions {
	return keyOptions{
		Topo:          topoName,
		Comm:          comm,
		Solver:        solverName,
		Seed:          sa.Seed,
		Wb:            sa.Wb,
		Wc:            sa.Wc,
		Restarts:      sa.Restarts,
		Timeout:       timeoutMS,
		MemberTimeout: memberTimeoutMS,
		Cooperative:   sa.Cooperative,
		Tempering:     sa.Tempering,
	}
}

// fusedKey derives cacheKey's exact string from a parsed Canonicalizer
// without materializing a *Graph or re-marshaling it. The canonical
// graph bytes are spliced verbatim into the key document — they are
// already compact, HTML-escaped encoding/json output, which is exactly
// how json.Marshal embeds a RawMessage — so the hashed bytes are
// byte-identical to cacheKey's, and so is the key. buf is the caller's
// scratch (reused across requests); the possibly-grown slice is
// returned alongside the key.
func fusedKey(c *taskgraph.Canonicalizer, buf []byte, opt keyOptions) (string, []byte, error) {
	tail, err := json.Marshal(opt)
	if err != nil {
		return "", buf, err
	}
	buf = append(buf[:0], `{"graph":`...)
	buf = c.AppendCanonicalJSON(buf)
	buf = append(buf, ',')
	buf = append(buf, tail[1:]...) // tail is "{...}": splice its fields after the graph
	sum := sha256.Sum256(buf)
	return fmt.Sprintf("%016x-%s", c.Fingerprint(), hex.EncodeToString(sum[:16])), buf, nil
}
