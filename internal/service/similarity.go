package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/taskgraph"
)

// SimIndex is a bounded similarity index over solved requests: for every
// cacheable SA solve it retains the graph's structural minhash sketch, the
// canonical graph bytes, the option block and the content address the
// body was cached under. When a request misses every exact tier, the
// index answers "what is the nearest graph we have already solved?" —
// candidates come from LSH band buckets in O(bucket) time and are
// verified by exact sketch distance, so a near miss costs far less than
// the solve it seeds.
//
// The index is advisory: losing it (or an entry pointing at an evicted
// body) only costs a warm start, never correctness. It persists beside
// the disk tier so a restarted server warms from its previous working
// set.
type SimIndex struct {
	mu      sync.RWMutex
	entries []simEntry       // ring buffer, capacity == cap
	live    []bool           // slot occupancy
	next    int              // next ring slot to (over)write
	byKey   map[string]int   // content address -> slot
	bands   map[uint64][]int // LSH band bucket -> slots
}

// simEntry is one indexed solve. Opt is stored with WarmSeed cleared —
// the cold option block — so the delta endpoint can rebuild the original
// request from the entry alone.
type simEntry struct {
	Key  string `json:"key"`
	Topo string `json:"topo"`
	// Spec is the request's topology spec ("hypercube:3"); Topo is the
	// resolved name ("hypercube-8") that keys use. Deltas need the spec
	// form to rebuild a parseable request.
	Spec     string           `json:"spec"`
	Sketch   taskgraph.Sketch `json:"sketch"`
	Graph    json.RawMessage  `json:"graph"`
	Opt      keyOptions       `json:"opt"`
	NumTasks int              `json:"num_tasks"`
}

const (
	// simBands × simRows must equal taskgraph.SketchLanes. Four rows per
	// band keeps near-duplicate recall essentially 1 for the distances
	// warm starting targets (a few edits on a ~100-task graph lands well
	// under 0.1) while still pruning unrelated graphs from the candidate
	// set.
	simBands = 16
	simRows  = taskgraph.SketchLanes / simBands

	// defaultSimIndexSize bounds the ring when Config.SimIndexSize is
	// unset. Each entry stores the canonical graph bytes, so the footprint
	// is comparable to a slice of request bodies, not of results.
	defaultSimIndexSize = 4096
)

// NewSimIndex builds an empty index holding at most size entries
// (<= 0 means defaultSimIndexSize).
func NewSimIndex(size int) *SimIndex {
	if size <= 0 {
		size = defaultSimIndexSize
	}
	return &SimIndex{
		entries: make([]simEntry, size),
		live:    make([]bool, size),
		byKey:   make(map[string]int, size),
		bands:   make(map[uint64][]int),
	}
}

// simBandKey hashes one LSH band of the sketch (FNV-1a over the band's
// lanes, salted with the band index so equal lane values in different
// bands land in different buckets).
func simBandKey(sk taskgraph.Sketch, band int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(band)
	h *= prime64
	for i := band * simRows; i < (band+1)*simRows; i++ {
		v := sk[i]
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// Add indexes one solved request. Re-adding an existing address is a
// no-op; when the ring is full the oldest slot is evicted first.
func (ix *SimIndex) Add(e simEntry) {
	if ix == nil || e.Key == "" {
		return
	}
	e.Opt.WarmSeed = ""
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.byKey[e.Key]; ok {
		return
	}
	slot := ix.next
	ix.next = (ix.next + 1) % len(ix.entries)
	if ix.live[slot] {
		ix.dropLocked(slot)
	}
	ix.entries[slot] = e
	ix.live[slot] = true
	ix.byKey[e.Key] = slot
	for b := 0; b < simBands; b++ {
		k := simBandKey(e.Sketch, b)
		ix.bands[k] = append(ix.bands[k], slot)
	}
}

// dropLocked evicts the entry in slot: its address and band bucket
// references go away with it.
func (ix *SimIndex) dropLocked(slot int) {
	old := ix.entries[slot]
	delete(ix.byKey, old.Key)
	for b := 0; b < simBands; b++ {
		k := simBandKey(old.Sketch, b)
		bucket := ix.bands[k]
		for i, s := range bucket {
			if s == slot {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(ix.bands, k)
		} else {
			ix.bands[k] = bucket
		}
	}
	ix.entries[slot] = simEntry{}
	ix.live[slot] = false
}

// Get returns the entry stored under an exact content address — the
// delta endpoint's base resolution.
func (ix *SimIndex) Get(key string) (simEntry, bool) {
	if ix == nil {
		return simEntry{}, false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	slot, ok := ix.byKey[key]
	if !ok {
		return simEntry{}, false
	}
	return ix.entries[slot], true
}

// Lookup returns the nearest indexed entry to sk on the same topology,
// excluding selfKey, with exact sketch distance at most maxDist.
// Candidates are every entry sharing at least one LSH band with sk; each
// is verified by exact distance, so a returned match is never a hash
// artifact. Ties break toward the lexicographically smaller address so
// the choice is deterministic given the index contents.
func (ix *SimIndex) Lookup(sk taskgraph.Sketch, selfKey, topo string, maxDist float64) (simEntry, float64, bool) {
	if ix == nil {
		return simEntry{}, 0, false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	seen := make(map[int]struct{}, 16)
	best := -1
	bestDist := maxDist
	for b := 0; b < simBands; b++ {
		for _, slot := range ix.bands[simBandKey(sk, b)] {
			if _, dup := seen[slot]; dup {
				continue
			}
			seen[slot] = struct{}{}
			e := &ix.entries[slot]
			if !ix.live[slot] || e.Topo != topo || e.Key == selfKey {
				continue
			}
			d := sk.Distance(e.Sketch)
			if d > bestDist {
				continue
			}
			if best >= 0 && d == bestDist && e.Key >= ix.entries[best].Key {
				continue
			}
			best, bestDist = slot, d
		}
	}
	if best < 0 {
		return simEntry{}, 0, false
	}
	return ix.entries[best], bestDist, true
}

// Len reports the live entry count.
func (ix *SimIndex) Len() int {
	if ix == nil {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.byKey)
}

// simIndexFile is the persisted form: the live entries in ring order
// (oldest first), so a reloaded index evicts in the same order the
// original would have.
type simIndexFile struct {
	Entries []simEntry `json:"entries"`
}

// Save writes the index atomically (temp + rename, the disk tier's
// idiom) so a crash mid-write leaves the previous snapshot intact.
func (ix *SimIndex) Save(path string) error {
	if ix == nil {
		return nil
	}
	ix.mu.RLock()
	var f simIndexFile
	n := len(ix.entries)
	for i := 0; i < n; i++ {
		slot := (ix.next + i) % n
		if ix.live[slot] {
			f.Entries = append(f.Entries, ix.entries[slot])
		}
	}
	ix.mu.RUnlock()
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("service: sim index marshal: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load replays a Save snapshot into the index. A missing file is not an
// error (first boot); a corrupt one is reported and the index stays
// empty — the tier above treats it as cold.
func (ix *SimIndex) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var f simIndexFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("service: sim index load: %w", err)
	}
	for _, e := range f.Entries {
		ix.Add(e)
	}
	return nil
}
