package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/engine"
	"repro/internal/obs"
)

// laneNames returns the lane keys in stable (sorted) order so the
// exposition is deterministic scrape to scrape.
func laneNames(lanes map[string]engine.LaneStats) []string {
	names := make([]string, 0, len(lanes))
	for name := range lanes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// handleMetrics exports every /statsz counter plus the latency
// histograms in Prometheus text exposition format, so the service can be
// scraped without an adapter. Histogram state lives in internal/obs
// histograms fed by the request path; everything else derives from one
// Stats snapshot, so the conservation-law counters are mutually
// consistent within a single scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	histHeader := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	sortedKeys := func(m map[string]uint64) []string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}

	fmt.Fprintf(&b, "# HELP dtserve_build_info Build identity; the value is always 1.\n# TYPE dtserve_build_info gauge\n")
	fmt.Fprintf(&b, "dtserve_build_info{version=%q,go_version=%q} 1\n",
		buildinfo.Version, buildinfo.GoVersion())

	counter("dtserve_requests_total", "API calls that reached a handler.", st.Requests)
	counter("dtserve_failures_total", "Requests answered with a non-2xx status.", st.Failures)
	counter("dtserve_schedule_items_total", "Schedule items answered: one per single schedule call, one per batch member.", st.Items)
	counter("dtserve_solves_total", "Solver executions (cache misses that ran a solver).", st.Solves)
	counter("dtserve_coalesced_total", "Requests answered by piggybacking on an identical in-flight solve.", st.Coalesced)
	counter("dtserve_portfolio_pruned_total", "Portfolio members cancelled mid-run by the incumbent bound.", st.PortfolioPruned)
	counter("dtserve_restarts_abandoned_total", "Cooperative SA restarts abandoned early for lagging the shared incumbent (seed-deterministic).", st.RestartsAbandoned)
	counter("dtserve_warm_hits_total", "Solver executions warm-started from a cached near-miss assignment (similarity index or delta base).", st.WarmHits)
	counter("dtserve_warm_epochs_saved_total", "Annealing stages skipped by warm-started solves.", st.WarmEpochsSaved)
	counter("dtserve_portfolio_bound_updates_total", "Portfolio incumbent-bound tightenings published by completed members.", st.PortfolioBoundUpdates)
	gauge("dtserve_sim_index_entries", "Entries currently held by the similarity index.", int64(st.SimIndexEntries))
	counter("dtserve_shed_total", "Requests refused by admission control with a 429 (lane depth or queue-delay budget exhausted).", st.Shed)
	counter("dtserve_cancelled_total", "Solves cancelled by their caller going away (client disconnect, drain).", st.Cancelled)
	counter("dtserve_traces_total", "Completed request traces recorded to the /debug/requests ring.", st.Traces)
	draining := int64(0)
	if st.Draining {
		draining = 1
	}
	gauge("dtserve_draining", "1 while the server is draining (refusing new work, finishing streams).", draining)

	fmt.Fprintf(&b, "# HELP dtserve_solves_by_solver_total Solver executions by registry name.\n# TYPE dtserve_solves_by_solver_total counter\n")
	for _, name := range sortedKeys(st.BySolver) {
		fmt.Fprintf(&b, "dtserve_solves_by_solver_total{solver=%q} %d\n", name, st.BySolver[name])
	}

	// Per-solver outcomes: successful executions (BySolver) and failed ones
	// (SolveErrors) as one labeled family, so an error-rate query is a
	// single ratio over the outcome label.
	fmt.Fprintf(&b, "# HELP dtserve_solver_outcome_total Solver executions by registry name and outcome (ok or error; sheds are excluded).\n# TYPE dtserve_solver_outcome_total counter\n")
	for _, name := range sortedKeys(st.BySolver) {
		fmt.Fprintf(&b, "dtserve_solver_outcome_total{solver=%q,outcome=\"ok\"} %d\n", name, st.BySolver[name])
	}
	for _, name := range sortedKeys(st.SolveErrors) {
		fmt.Fprintf(&b, "dtserve_solver_outcome_total{solver=%q,outcome=\"error\"} %d\n", name, st.SolveErrors[name])
	}

	// Portfolio member outcomes, split from the "member|outcome" mirror key.
	fmt.Fprintf(&b, "# HELP dtserve_portfolio_member_total Portfolio member runs by member solver and outcome (win, finish, pruned, timeout, cancelled, error).\n# TYPE dtserve_portfolio_member_total counter\n")
	for _, key := range sortedKeys(st.MemberOutcomes) {
		member, outcome, ok := strings.Cut(key, "|")
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "dtserve_portfolio_member_total{member=%q,outcome=%q} %d\n",
			member, outcome, st.MemberOutcomes[key])
	}

	counter("dtserve_cache_hits_total", "Result cache hits (mirrored at item accounting, so hits+misses may momentarily trail the tier's own probe count).", st.Cache.Hits)
	counter("dtserve_cache_misses_total", "Result cache misses.", st.Cache.Misses)
	counter("dtserve_cache_evictions_total", "Result cache evictions.", st.Cache.Evictions)
	gauge("dtserve_cache_entries", "Entries currently cached.", int64(st.Cache.Entries))
	gauge("dtserve_cache_bytes", "Bytes of response bodies currently cached.", st.Cache.Bytes)
	counter("dtserve_disk_hits_total", "Persistent disk tier hits (mirrored at item accounting).", st.Disk.Hits)
	counter("dtserve_disk_misses_total", "Persistent disk tier misses.", st.Disk.Misses)
	counter("dtserve_disk_writes_total", "Entries persisted by the disk tier's write-behind writer.", st.Disk.Writes)
	counter("dtserve_disk_evictions_total", "Disk tier entries evicted to hold the byte budget.", st.Disk.Evictions)
	counter("dtserve_disk_errors_total", "Corrupt/stale entries detected and deleted, plus failed or dropped writes.", st.Disk.Errors)
	gauge("dtserve_disk_entries", "Entries currently on disk.", int64(st.Disk.Entries))
	gauge("dtserve_disk_bytes", "On-disk bytes (entry headers included).", st.Disk.Bytes)
	remoteEnabled := int64(0)
	if st.Remote.Enabled {
		remoteEnabled = 1
	}
	gauge("dtserve_remote_enabled", "1 when a shared remote cache tier (dtcached) is configured.", remoteEnabled)
	counter("dtserve_remote_hits_total", "Shared remote tier hits (mirrored at item accounting).", st.Remote.Hits)
	counter("dtserve_remote_misses_total", "Shared remote tier misses (errors degrade to counted misses).", st.Remote.Misses)
	counter("dtserve_remote_puts_total", "Results published to the shared remote tier by the write-behind writer.", st.Remote.Puts)
	counter("dtserve_remote_errors_total", "Remote tier failures: network/daemon errors, checksum mismatches, dropped writes — every one degraded, none served.", st.Remote.Errors)
	counter("dtserve_remote_corrupt_total", "Remote values that failed the client-side checksum and were refused.", st.Remote.Corrupt)
	gauge("dtserve_pool_workers", "Current solver pool size (adaptive).", int64(st.Pool.Workers))
	gauge("dtserve_pool_min_workers", "Adaptive pool floor.", int64(st.Pool.MinWorkers))
	gauge("dtserve_pool_max_workers", "Adaptive pool ceiling.", int64(st.Pool.MaxWorkers))
	counter("dtserve_pool_grown_total", "Workers added by the adaptive pool under sustained queue pressure.", st.Pool.Grown)
	counter("dtserve_pool_shrunk_total", "Surplus workers retired by the adaptive pool after idling.", st.Pool.Shrunk)
	gauge("dtserve_pool_busy", "Workers currently running a solve.", st.Pool.Busy)
	counter("dtserve_pool_completed_total", "Jobs completed by the solver pool.", uint64(st.Pool.Completed))

	laneCounter := func(name, help string, get func(engine.LaneStats) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, lane := range laneNames(st.Pool.Lanes) {
			fmt.Fprintf(&b, "%s{lane=%q} %d\n", name, lane, get(st.Pool.Lanes[lane]))
		}
	}
	laneCounter("dtserve_lane_submitted_total", "Jobs admitted into the lane's queue.",
		func(l engine.LaneStats) uint64 { return l.Submitted })
	laneCounter("dtserve_lane_completed_total", "Jobs the lane ran to completion.",
		func(l engine.LaneStats) uint64 { return l.Completed })
	laneCounter("dtserve_lane_shed_total", "Submissions refused by the lane's admission budgets.",
		func(l engine.LaneStats) uint64 { return l.Shed })
	laneCounter("dtserve_lane_expired_total", "Jobs whose context ended while queued (never ran).",
		func(l engine.LaneStats) uint64 { return l.Expired })
	fmt.Fprintf(&b, "# HELP dtserve_lane_queued Jobs currently queued in the lane.\n# TYPE dtserve_lane_queued gauge\n")
	for _, lane := range laneNames(st.Pool.Lanes) {
		fmt.Fprintf(&b, "dtserve_lane_queued{lane=%q} %d\n", lane, st.Pool.Lanes[lane].Queued)
	}
	fmt.Fprintf(&b, "# HELP dtserve_lane_queue_delay_ewma_seconds Moving average of the lane's enqueue-to-dequeue delay.\n# TYPE dtserve_lane_queue_delay_ewma_seconds gauge\n")
	for _, lane := range laneNames(st.Pool.Lanes) {
		fmt.Fprintf(&b, "dtserve_lane_queue_delay_ewma_seconds{lane=%q} %g\n", lane, st.Pool.Lanes[lane].QueueDelayEWMA)
	}
	fmt.Fprintf(&b, "# HELP dtserve_lane_queue_delay_target_seconds Queue-delay shedding target in force for the lane (auto-derived when -queue-delay-target auto, else static; 0 means depth-only shedding).\n# TYPE dtserve_lane_queue_delay_target_seconds gauge\n")
	for _, lane := range laneNames(st.Pool.Lanes) {
		fmt.Fprintf(&b, "dtserve_lane_queue_delay_target_seconds{lane=%q} %g\n", lane, float64(st.Pool.Lanes[lane].QueueDelayTargetNS)/1e9)
	}

	histHeader("dtserve_lane_queue_delay_seconds", "Distribution of the lane's enqueue-to-dequeue delay.")
	for _, lane := range laneNames(st.Pool.Lanes) {
		st.Pool.Lanes[lane].QueueDelay.WriteProm(&b, "dtserve_lane_queue_delay_seconds",
			fmt.Sprintf("lane=%q", lane))
	}

	histHeader("dtserve_solve_duration_seconds", "Wall-clock latency of completed cold solves (queueing + solving + marshaling); count tracks dtserve_solves_total.")
	s.solveLatency.Snapshot().WriteProm(&b, "dtserve_solve_duration_seconds", "")

	// Per-stage latency: every depth-0 trace stage, in pipeline order.
	// Counts grow only for traced requests (explicit or sampled), so the
	// distributions are samples of the same population the end-to-end
	// histogram sees in full.
	histHeader("dtserve_stage_duration_seconds", "Per-stage latency of traced requests, labeled by pipeline stage.")
	for _, stage := range obs.Stages {
		h, ok := s.stageLatency[stage]
		if !ok {
			continue
		}
		h.Snapshot().WriteProm(&b, "dtserve_stage_duration_seconds", fmt.Sprintf("stage=%q", stage))
	}

	histHeader("dtserve_disk_read_seconds", "Disk tier Get latency (hits and misses, through the fault-injection seam).")
	s.diskRead.Snapshot().WriteProm(&b, "dtserve_disk_read_seconds", "")
	histHeader("dtserve_disk_write_seconds", "Disk tier write-behind persist latency (temp write + fsync + rename).")
	s.diskWrite.Snapshot().WriteProm(&b, "dtserve_disk_write_seconds", "")
	histHeader("dtserve_remote_read_seconds", "Remote tier Get latency (hits, misses and degraded errors, through the fault-injection seam).")
	s.remoteRead.Snapshot().WriteProm(&b, "dtserve_remote_read_seconds", "")
	histHeader("dtserve_stream_ttfb_seconds", "NDJSON batch time-to-first-byte: request start to the first streamed item hitting the wire.")
	s.streamTTFB.Snapshot().WriteProm(&b, "dtserve_stream_ttfb_seconds", "")

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
