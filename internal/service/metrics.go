package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
)

// laneNames returns the lane keys in stable (sorted) order so the
// exposition is deterministic scrape to scrape.
func laneNames(lanes map[string]engine.LaneStats) []string {
	names := make([]string, 0, len(lanes))
	for name := range lanes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// solveBuckets are the fixed upper bounds (seconds) of the solve-latency
// histogram, spanning sub-millisecond list-policy solves to multi-second
// annealing portfolios. Counts are cumulative in the exposition, as
// Prometheus histograms require.
var solveBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram. Safe for concurrent use.
type histogram struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket, plus a final +Inf bucket
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(solveBuckets)+1)}
}

// Observe records one duration.
func (h *histogram) Observe(d time.Duration) {
	v := d.Seconds()
	// First bucket whose upper bound admits v; the tail bucket is +Inf.
	i := sort.SearchFloat64s(solveBuckets, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts, the value sum and the total
// observation count.
func (h *histogram) snapshot() (cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return cum, h.sum, h.total
}

// handleMetrics exports every /statsz counter plus the solve-latency
// histogram in Prometheus text exposition format, so the service can be
// scraped without an adapter.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("dtserve_requests_total", "API calls that reached a handler.", st.Requests)
	counter("dtserve_failures_total", "Requests answered with a non-2xx status.", st.Failures)
	counter("dtserve_schedule_items_total", "Schedule items answered: one per single schedule call, one per batch member.", st.Items)
	counter("dtserve_solves_total", "Solver executions (cache misses that ran a solver).", st.Solves)
	counter("dtserve_coalesced_total", "Requests answered by piggybacking on an identical in-flight solve.", st.Coalesced)
	counter("dtserve_portfolio_pruned_total", "Portfolio members cancelled mid-run by the incumbent bound.", st.PortfolioPruned)
	counter("dtserve_shed_total", "Requests refused by admission control with a 429 (lane depth or queue-delay budget exhausted).", st.Shed)
	counter("dtserve_cancelled_total", "Solves cancelled by their caller going away (client disconnect, drain).", st.Cancelled)
	draining := int64(0)
	if st.Draining {
		draining = 1
	}
	gauge("dtserve_draining", "1 while the server is draining (refusing new work, finishing streams).", draining)

	fmt.Fprintf(&b, "# HELP dtserve_solves_by_solver_total Solver executions by registry name.\n# TYPE dtserve_solves_by_solver_total counter\n")
	names := make([]string, 0, len(st.BySolver))
	for name := range st.BySolver {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "dtserve_solves_by_solver_total{solver=%q} %d\n", name, st.BySolver[name])
	}

	counter("dtserve_cache_hits_total", "Result cache hits.", st.Cache.Hits)
	counter("dtserve_cache_misses_total", "Result cache misses.", st.Cache.Misses)
	counter("dtserve_cache_evictions_total", "Result cache evictions.", st.Cache.Evictions)
	gauge("dtserve_cache_entries", "Entries currently cached.", int64(st.Cache.Entries))
	gauge("dtserve_cache_bytes", "Bytes of response bodies currently cached.", st.Cache.Bytes)
	counter("dtserve_disk_hits_total", "Persistent disk tier hits.", st.Disk.Hits)
	counter("dtserve_disk_misses_total", "Persistent disk tier misses.", st.Disk.Misses)
	counter("dtserve_disk_writes_total", "Entries persisted by the disk tier's write-behind writer.", st.Disk.Writes)
	counter("dtserve_disk_evictions_total", "Disk tier entries evicted to hold the byte budget.", st.Disk.Evictions)
	counter("dtserve_disk_errors_total", "Corrupt/stale entries detected and deleted, plus failed or dropped writes.", st.Disk.Errors)
	gauge("dtserve_disk_entries", "Entries currently on disk.", int64(st.Disk.Entries))
	gauge("dtserve_disk_bytes", "On-disk bytes (entry headers included).", st.Disk.Bytes)
	gauge("dtserve_pool_workers", "Current solver pool size (adaptive).", int64(st.Pool.Workers))
	gauge("dtserve_pool_min_workers", "Adaptive pool floor.", int64(st.Pool.MinWorkers))
	gauge("dtserve_pool_max_workers", "Adaptive pool ceiling.", int64(st.Pool.MaxWorkers))
	counter("dtserve_pool_grown_total", "Workers added by the adaptive pool under sustained queue pressure.", st.Pool.Grown)
	counter("dtserve_pool_shrunk_total", "Surplus workers retired by the adaptive pool after idling.", st.Pool.Shrunk)
	gauge("dtserve_pool_busy", "Workers currently running a solve.", st.Pool.Busy)
	counter("dtserve_pool_completed_total", "Jobs completed by the solver pool.", uint64(st.Pool.Completed))

	laneCounter := func(name, help string, get func(engine.LaneStats) uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, lane := range laneNames(st.Pool.Lanes) {
			fmt.Fprintf(&b, "%s{lane=%q} %d\n", name, lane, get(st.Pool.Lanes[lane]))
		}
	}
	laneCounter("dtserve_lane_submitted_total", "Jobs admitted into the lane's queue.",
		func(l engine.LaneStats) uint64 { return l.Submitted })
	laneCounter("dtserve_lane_completed_total", "Jobs the lane ran to completion.",
		func(l engine.LaneStats) uint64 { return l.Completed })
	laneCounter("dtserve_lane_shed_total", "Submissions refused by the lane's admission budgets.",
		func(l engine.LaneStats) uint64 { return l.Shed })
	laneCounter("dtserve_lane_expired_total", "Jobs whose context ended while queued (never ran).",
		func(l engine.LaneStats) uint64 { return l.Expired })
	fmt.Fprintf(&b, "# HELP dtserve_lane_queued Jobs currently queued in the lane.\n# TYPE dtserve_lane_queued gauge\n")
	for _, lane := range laneNames(st.Pool.Lanes) {
		fmt.Fprintf(&b, "dtserve_lane_queued{lane=%q} %d\n", lane, st.Pool.Lanes[lane].Queued)
	}
	fmt.Fprintf(&b, "# HELP dtserve_lane_queue_delay_ewma_seconds Moving average of the lane's enqueue-to-dequeue delay.\n# TYPE dtserve_lane_queue_delay_ewma_seconds gauge\n")
	for _, lane := range laneNames(st.Pool.Lanes) {
		fmt.Fprintf(&b, "dtserve_lane_queue_delay_ewma_seconds{lane=%q} %g\n", lane, st.Pool.Lanes[lane].QueueDelayEWMA)
	}

	cum, sum, total := s.solveLatency.snapshot()
	fmt.Fprintf(&b, "# HELP dtserve_solve_duration_seconds Wall-clock latency of completed cold solves (queueing + solving + marshaling); count equals dtserve_solves_total.\n")
	fmt.Fprintf(&b, "# TYPE dtserve_solve_duration_seconds histogram\n")
	for i, ub := range solveBuckets {
		fmt.Fprintf(&b, "dtserve_solve_duration_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum[i])
	}
	fmt.Fprintf(&b, "dtserve_solve_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum[len(cum)-1])
	fmt.Fprintf(&b, "dtserve_solve_duration_seconds_sum %g\n", sum)
	fmt.Fprintf(&b, "dtserve_solve_duration_seconds_count %d\n", total)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// trimFloat renders a bucket bound the way Prometheus clients expect
// ("0.005", "1", "2.5").
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}
