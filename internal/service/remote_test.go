package service

import (
	"bytes"
	"crypto/sha256"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/remotecache"
)

// captureTier records every Put the server publishes to the remote tier
// without storing anything — the seam corruption tests use to learn the
// exact cache key (and raw body) of a request before planting a poisoned
// value under it in a real daemon.
type captureTier struct {
	mu   sync.Mutex
	puts map[string][]byte
}

func (c *captureTier) Get(key string) ([]byte, bool) { return nil, false }
func (c *captureTier) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts[key] = append([]byte(nil), val...)
}
func (c *captureTier) Stats() RemoteCacheStats { return RemoteCacheStats{Enabled: true} }
func (c *captureTier) Close()                  {}

// rawPut stores val verbatim under key in the daemon — the client-side
// Seal deliberately bypassed, so tests can plant values a correct writer
// could never produce.
func rawPut(t *testing.T, addr, key string, val []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, err := remotecache.AppendRequest(nil, remotecache.OpPut, key, val)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	status, _, err := remotecache.ReadResponse(conn)
	if err != nil || status != remotecache.StatusOK {
		t.Fatalf("raw put: status %c, err %v", status, err)
	}
}

// TestRemoteTierIntegrity is the never-serve-corrupt proof. A daemon is
// seeded with one honestly sealed value and several damaged ones —
// checksum-flipped, truncated mid-body, and shorter than a checksum —
// all under the exact keys a replica will ask for. The replica must
// serve the honest value from the remote tier and detect every damaged
// one on read: counted in Corrupt, degraded to a miss, answered 200 via
// a fresh solve with bytes identical to a healthy replica's answer.
func TestRemoteTierIntegrity(t *testing.T) {
	cases := []struct {
		name   string
		seed   int64
		poison func(sealed []byte) []byte // nil = plant honestly
	}{
		{"honest", 9000, nil},
		{"checksum-flip", 9001, func(s []byte) []byte {
			s[sha256.Size] ^= 0x01 // first body byte: hash no longer matches
			return s
		}},
		{"truncated-body", 9002, func(s []byte) []byte { return s[:len(s)-3] }},
		{"shorter-than-checksum", 9003, func(s []byte) []byte { return s[:sha256.Size-5] }},
	}

	// Phase 1: a capture replica learns each request's cache key and the
	// raw body a healthy fleet member would publish.
	capture := &captureTier{puts: make(map[string][]byte)}
	svc1, ts1 := newTestServer(t, Config{
		CacheSize:      64,
		WrapRemoteTier: func(RemoteTier) RemoteTier { return capture },
	})
	payloads := make([][]byte, len(cases))
	healthy := make([][]byte, len(cases))
	for i, tc := range cases {
		payloads[i] = wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Seed = tc.seed })
		resp, body := post(t, ts1.URL+"/v1/schedule", payloads[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: capture solve: %d %s", tc.name, resp.StatusCode, body)
		}
		healthy[i] = body
	}
	capture.mu.Lock()
	keys := make([]string, 0, len(capture.puts))
	bodyByKey := capture.puts
	for k := range bodyByKey {
		keys = append(keys, k)
	}
	capture.mu.Unlock()
	if len(keys) != len(cases) {
		t.Fatalf("captured %d published keys, want %d", len(keys), len(cases))
	}
	_ = svc1

	// Phase 2: plant each case's value — sealed honestly, then damaged
	// per the case — under its real key in a real daemon.
	cachedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cached := remotecache.NewServer(remotecache.ServerConfig{})
	go cached.Serve(cachedLn)
	t.Cleanup(func() { cached.Close() })
	addr := cachedLn.Addr().String()

	keyOf := make(map[int]string, len(cases))
	for i := range cases {
		// Match each captured key to its case by the published body.
		for k, b := range bodyByKey {
			if bytes.Equal(b, healthy[i]) {
				keyOf[i] = k
			}
		}
		if keyOf[i] == "" {
			t.Fatalf("%s: no captured publish matches the response body", cases[i].name)
		}
		sealed := remotecache.Seal(bodyByKey[keyOf[i]])
		if cases[i].poison != nil {
			sealed = cases[i].poison(sealed)
		}
		rawPut(t, addr, keyOf[i], sealed)
	}

	// Phase 3: a cold replica pointed at the poisoned daemon.
	svc2, ts2 := newTestServer(t, Config{
		CacheSize:  64,
		RemoteAddr: addr,
	})
	wantCorrupt := uint64(0)
	for i, tc := range cases {
		resp, got := post(t, ts2.URL+"/v1/schedule", payloads[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, got)
		}
		if !bytes.Equal(got, healthy[i]) {
			t.Fatalf("%s: body differs from the healthy replica's answer", tc.name)
		}
		tag := resp.Header.Get("X-DTServe-Cache")
		if tc.poison == nil {
			if tag != "remote" {
				t.Fatalf("honest plant served tag %q, want \"remote\" (the planting mechanism itself is broken)", tag)
			}
		} else {
			wantCorrupt++
			if tag != "miss" {
				t.Fatalf("%s: served tag %q, want \"miss\" (corrupt value must degrade to a solve)", tc.name, tag)
			}
		}
	}

	st := svc2.Stats()
	if st.Remote.Corrupt != wantCorrupt {
		t.Fatalf("remote corrupt = %d, want %d (one per damaged plant)", st.Remote.Corrupt, wantCorrupt)
	}
	if st.Remote.Errors < wantCorrupt {
		t.Fatalf("remote errors %d do not include the %d corrupt reads", st.Remote.Errors, wantCorrupt)
	}
	if st.Remote.Hits != 1 {
		t.Fatalf("remote hits = %d, want exactly 1 (the honest plant)", st.Remote.Hits)
	}
	if err := CheckLaw(st); err != nil {
		t.Fatal(err)
	}
}

// TestRemotePromotionWarmsLocalTiers: a remote hit must be promoted into
// the local memory tier, so the daemon is consulted once per key per
// replica, not once per request.
func TestRemotePromotionWarmsLocalTiers(t *testing.T) {
	cachedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cached := remotecache.NewServer(remotecache.ServerConfig{})
	go cached.Serve(cachedLn)
	t.Cleanup(func() { cached.Close() })
	addr := cachedLn.Addr().String()

	payload := wireRequest(t, "MM", func(r *ScheduleRequest) { r.Seed = 77 })

	svc1, ts1 := newTestServer(t, Config{CacheSize: 64, RemoteAddr: addr})
	resp, want := post(t, ts1.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed solve: %d %s", resp.StatusCode, want)
	}
	// The publish is write-behind; wait for the daemon to hold it.
	deadline := time.Now().Add(5 * time.Second)
	for cached.Stats().Entries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("publish never reached the daemon")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = svc1

	svc2, ts2 := newTestServer(t, Config{CacheSize: 64, RemoteAddr: addr})
	resp, got := post(t, ts2.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("remote replay: status %d, identical=%v", resp.StatusCode, bytes.Equal(got, want))
	}
	if tag := resp.Header.Get("X-DTServe-Cache"); tag != "remote" {
		t.Fatalf("first replay tag %q, want \"remote\"", tag)
	}
	resp, got = post(t, ts2.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("promoted replay: status %d, identical=%v", resp.StatusCode, bytes.Equal(got, want))
	}
	if tag := resp.Header.Get("X-DTServe-Cache"); tag != "hit" {
		t.Fatalf("second replay tag %q, want \"hit\" (remote hit was not promoted into memory)", tag)
	}

	st := svc2.Stats()
	if st.Solves != 0 {
		t.Fatalf("replica 2 solved %d times; the remote tier should have supplied everything", st.Solves)
	}
	if st.Remote.Hits != 1 || st.Cache.Hits != 1 {
		t.Fatalf("remote hits %d / mem hits %d, want 1 / 1", st.Remote.Hits, st.Cache.Hits)
	}
	if err := CheckLaw(st); err != nil {
		t.Fatal(err)
	}
}
