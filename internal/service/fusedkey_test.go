package service

import (
	"encoding/json"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// TestFusedKeyMatchesCacheKey pins the zero-copy contract: for any
// accepted graph document and any option combination, the key derived by
// the streaming path (Canonicalizer + fusedKey, no *Graph, no canonical
// re-marshal) is byte-identical to the legacy cacheKey of the decoded
// graph. A mismatch would silently split the cache between old and new
// entries — including the persistent disk tier across a deploy.
func TestFusedKeyMatchesCacheKey(t *testing.T) {
	ne, err := cliutil.BuildProgram("NE")
	if err != nil {
		t.Fatal(err)
	}
	neJSON, err := json.Marshal(ne)
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{
		"newton-euler":   string(neJSON),
		"permuted":       `{"name":"g","tasks":[{"id":2,"load":3},{"id":0,"load":1},{"id":1,"name":"mid","load":2}],"edges":[{"from":1,"to":2,"bits":8},{"from":0,"to":1,"bits":4}]}`,
		"duplicate edge": `{"tasks":[{"id":0,"load":1},{"id":1,"load":1}],"edges":[{"from":0,"to":1,"bits":0.1},{"from":0,"to":1,"bits":0.2}]}`,
		"hostile name":   `{"name":"<b>&\"q\"</b>","tasks":[{"id":0,"name":"täsk\n","load":1e-7}],"edges":null}`,
	}

	comm := topology.DefaultCommParams()
	commScaled := comm
	commScaled.Scale = 0.25

	base := core.DefaultOptions()
	coop := base
	coop.Restarts = 4
	coop.Cooperative = true
	temper := coop
	temper.Tempering = true
	seeded := base
	seeded.Seed = 1991
	seeded.Wb = 0.7
	seeded.Wc = 0.3

	type combo struct {
		topo          string
		comm          topology.CommParams
		solver        string
		sa            core.Options
		timeoutMS     int
		memberTimeout int
	}
	combos := map[string]combo{
		"defaults":    {"hypercube-8", comm, "sa", base, 0, 0},
		"seeded":      {"ring-9", commScaled, "sa", seeded, 250, 0},
		"portfolio":   {"mesh-3x4", comm, "portfolio", base, 1000, 50},
		"cooperative": {"hypercube-8", comm, "sa", coop, 0, 0},
		"tempering":   {"hypercube-8", comm, "sa", temper, 0, 0},
	}

	var c taskgraph.Canonicalizer
	var buf []byte
	for dname, doc := range docs {
		var g taskgraph.Graph
		if err := json.Unmarshal([]byte(doc), &g); err != nil {
			t.Fatalf("%s: decode: %v", dname, err)
		}
		if err := c.Parse([]byte(doc)); err != nil {
			t.Fatalf("%s: Parse: %v", dname, err)
		}
		for cname, cb := range combos {
			want, err := cacheKey(&g, cb.topo, cb.comm, cb.solver, cb.sa, cb.timeoutMS, cb.memberTimeout)
			if err != nil {
				t.Fatalf("%s/%s: cacheKey: %v", dname, cname, err)
			}
			var got string
			got, buf, err = fusedKey(&c, buf,
				makeKeyOptions(cb.topo, cb.comm, cb.solver, cb.sa, cb.timeoutMS, cb.memberTimeout))
			if err != nil {
				t.Fatalf("%s/%s: fusedKey: %v", dname, cname, err)
			}
			if got != want {
				t.Errorf("%s/%s: fused key %s != cache key %s", dname, cname, got, want)
			}
		}
	}
}

// TestCooperativeFlagsSplitCacheKeys pins that the cooperative/tempering
// wire flags are part of the content address — their schedules can differ
// from plain restarts, so they must never share a cache line — while
// leaving keys for requests without the flags byte-stable (both fields
// marshal away under omitempty, so pre-existing disk tiers stay warm).
func TestCooperativeFlagsSplitCacheKeys(t *testing.T) {
	g, err := cliutil.BuildProgram("FFT")
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	plain := core.DefaultOptions()
	plain.Restarts = 4
	coop := plain
	coop.Cooperative = true
	temper := plain
	temper.Tempering = true

	kPlain, err := cacheKey(g, "hypercube-8", comm, "sa", plain, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	kCoop, err := cacheKey(g, "hypercube-8", comm, "sa", coop, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	kTemper, err := cacheKey(g, "hypercube-8", comm, "sa", temper, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kPlain == kCoop || kPlain == kTemper || kCoop == kTemper {
		t.Fatalf("cooperative/tempering flags do not split keys: plain %s coop %s temper %s",
			kPlain, kCoop, kTemper)
	}
}
