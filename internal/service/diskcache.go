package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DiskCache is the persistent tier of the result cache: each response is
// stored under its content address at <dir>/<shard>/<key>, so a restarted
// server pointed at the same directory replays previously solved graphs
// byte-identically without invoking any solver. Safe for concurrent use.
//
// Durability protocol:
//
//   - Writes are write-behind: Put enqueues and returns immediately, a
//     single writer goroutine persists entries off the solve hot path
//     (Close drains the queue, so a graceful shutdown loses nothing; a
//     backlogged queue drops writes — the tier is a cache, not a log).
//   - Each file is written to a temp name in the same shard directory,
//     fsynced, then renamed into place, so readers only ever observe
//     complete entries and a crash leaves at worst a tmp- file that the
//     next startup scan removes.
//   - Every entry carries a version magic, a SHA-256 body checksum and
//     the body length; a truncated, corrupted or stale-format entry is
//     detected on read, deleted, and counted in Errors — never served.
//   - The byte budget is enforced by LRU eviction: recency is tracked
//     in-process and persisted as the file mtime on each hit, so a
//     restart recovers the approximate LRU order from the filesystem.
type DiskCache struct {
	dir      string
	maxBytes int64

	mu        sync.Mutex
	ll        *list.List // front = most recently used (mirrors Cache)
	entries   map[string]*list.Element
	bytes     int64
	closed    bool
	hits      uint64
	misses    uint64
	writes    uint64
	evictions uint64
	errors    uint64

	jobs chan diskWrite
	wg   sync.WaitGroup

	// writeObs, when set, observes the wall-clock duration of each
	// successful persist (temp write + fsync + rename) — the disk-write
	// latency histogram's feed. Set once before traffic via
	// SetWriteObserver; read by the writer goroutine under mu.
	writeObs func(time.Duration)
}

type diskEntry struct {
	key  string
	size int64 // on-disk size, header included
}

type diskWrite struct {
	key string
	val []byte
}

// DiskTier is the capability the server requires of its persistent tier:
// the basic Tier get/put plus the stats and shutdown hooks the handlers
// and Close depend on. *DiskCache is the production implementation (a nil
// *DiskCache is the valid no-op tier — every method tolerates the nil
// receiver); the fault-injection harness (internal/chaos) wraps one to
// inject read/write failures through Config.WrapDiskTier.
type DiskTier interface {
	Tier
	Stats() DiskCacheStats
	Close()
}

// diskMagic versions the entry format; bump the last byte on any layout
// change so old files are detected as stale and re-solved, not misread.
var diskMagic = [4]byte{'D', 'T', 'C', 1}

// Entry layout: magic (4) | SHA-256 of body (32) | body length (8, BE) | body.
const diskHeaderLen = 4 + sha256.Size + 8

// defaultDiskMaxBytes bounds the on-disk footprint when the caller gives
// no budget. Disk is cheaper than memory, so the default is larger than
// the memory tier's 256 MiB.
const defaultDiskMaxBytes = 1 << 30

// diskWriteQueue bounds the write-behind backlog; a full queue drops the
// write (counted in Errors) instead of stalling a solve.
const diskWriteQueue = 256

// NewDiskCache opens (creating if needed) a persistent cache rooted at
// dir with the given byte budget (<= 0 means 1 GiB). Existing entries are
// indexed by file mtime so the LRU order survives restarts; leftover
// temp files from a crashed writer are removed; the budget is enforced
// immediately.
func NewDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	if maxBytes <= 0 {
		maxBytes = defaultDiskMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DiskCache{
		dir:      dir,
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		jobs:     make(chan diskWrite, diskWriteQueue),
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	d.wg.Add(1)
	go d.writer()
	return d, nil
}

// scan rebuilds the in-memory index from the directory: entries are
// ordered by mtime (the persisted recency) and stray tmp- files from an
// interrupted writer are deleted.
func (d *DiskCache) scan() error {
	shards, err := os.ReadDir(d.dir)
	if err != nil {
		return err
	}
	type scanned struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []scanned
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(d.dir, shard.Name()))
		if err != nil {
			return err
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(d.dir, shard.Name(), f.Name())
			if strings.HasPrefix(f.Name(), "tmp-") {
				_ = os.Remove(path)
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue // raced with a concurrent delete
			}
			found = append(found, scanned{f.Name(), info.Size(), info.ModTime()})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, s := range found {
		// Oldest first, each pushed to the front: the newest mtime ends
		// up most recently used.
		d.entries[s.key] = d.ll.PushFront(&diskEntry{key: s.key, size: s.size})
		d.bytes += s.size
	}
	return nil
}

// path returns the entry file for a key, sharded by the key's first two
// fingerprint characters to keep directories small.
func (d *DiskCache) path(key string) string {
	shard := key
	if len(shard) > 2 {
		shard = shard[:2]
	}
	return filepath.Join(d.dir, shard, key)
}

// encodeDiskEntry frames a body with the version magic, checksum and
// length header.
func encodeDiskEntry(val []byte) []byte {
	out := make([]byte, diskHeaderLen+len(val))
	copy(out, diskMagic[:])
	sum := sha256.Sum256(val)
	copy(out[4:], sum[:])
	binary.BigEndian.PutUint64(out[4+sha256.Size:], uint64(len(val)))
	copy(out[diskHeaderLen:], val)
	return out
}

// decodeDiskEntry verifies the header and checksum and returns the body;
// ok is false for truncated, corrupt or stale-format data.
func decodeDiskEntry(data []byte) (body []byte, ok bool) {
	if len(data) < diskHeaderLen || !bytes.Equal(data[:4], diskMagic[:]) {
		return nil, false
	}
	n := binary.BigEndian.Uint64(data[4+sha256.Size : diskHeaderLen])
	if n != uint64(len(data)-diskHeaderLen) {
		return nil, false
	}
	body = data[diskHeaderLen:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[4:4+sha256.Size]) {
		return nil, false
	}
	return body, true
}

// Get returns the stored bytes for key and whether they were present. A
// corrupt or stale-format entry is deleted and counted in Errors, then
// reported as a miss — corrupt bytes are never served.
func (d *DiskCache) Get(key string) ([]byte, bool) {
	if d == nil {
		return nil, false
	}
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		d.mu.Lock()
		d.misses++
		if !os.IsNotExist(err) {
			d.errors++
		} else if el, ok := d.entries[key]; ok {
			// Index entry with no file (externally removed): drop it.
			d.dropLocked(el)
		}
		d.mu.Unlock()
		return nil, false
	}
	body, ok := decodeDiskEntry(data)
	if !ok {
		_ = os.Remove(path)
		d.mu.Lock()
		d.misses++
		d.errors++
		if el, ok := d.entries[key]; ok {
			d.dropLocked(el)
		}
		d.mu.Unlock()
		return nil, false
	}
	d.mu.Lock()
	d.hits++
	// Touch only an entry still in the index: the read raced nothing or
	// a rewrite. If the key is absent, the writer evicted it between our
	// ReadFile and this lock (the bytes read are still whole — rename
	// and remove are atomic) — re-inserting would create a ghost index
	// entry for a deleted file and permanently inflate the accounting.
	if el, ok := d.entries[key]; ok {
		d.ll.MoveToFront(el)
	}
	d.mu.Unlock()
	// Persist the recency so a restart recovers the LRU order.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	return body, true
}

// Put schedules val to be persisted under key and returns immediately;
// the writer goroutine performs the atomic write and any evictions off
// the caller's path. A full queue or closed cache drops the write.
func (d *DiskCache) Put(key string, val []byte) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	select {
	case d.jobs <- diskWrite{key: key, val: val}:
	default:
		d.errors++ // backlogged writer: best-effort tier drops the write
	}
}

// SetWriteObserver installs fn to be called with the duration of every
// successful persist. Call before the cache sees traffic (the server
// wires it during construction); a nil receiver or nil fn is a no-op.
func (d *DiskCache) SetWriteObserver(fn func(time.Duration)) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.writeObs = fn
	d.mu.Unlock()
}

func (d *DiskCache) writer() {
	defer d.wg.Done()
	for job := range d.jobs {
		d.write(job.key, job.val)
	}
}

// write persists one entry atomically (temp file + fsync + rename in the
// same shard directory) and enforces the byte budget.
func (d *DiskCache) write(key string, val []byte) {
	writeStart := time.Now()
	shardDir := filepath.Dir(d.path(key))
	fail := func() {
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
	}
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		fail()
		return
	}
	tmp, err := os.CreateTemp(shardDir, "tmp-*")
	if err != nil {
		fail()
		return
	}
	framed := encodeDiskEntry(val)
	if _, err := tmp.Write(framed); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), d.path(key))
	}
	if err != nil {
		_ = os.Remove(tmp.Name())
		fail()
		return
	}
	d.mu.Lock()
	d.writes++
	obs := d.writeObs
	if el, ok := d.entries[key]; ok {
		e := el.Value.(*diskEntry)
		d.bytes += int64(len(framed)) - e.size
		e.size = int64(len(framed))
		d.ll.MoveToFront(el)
	} else {
		d.entries[key] = d.ll.PushFront(&diskEntry{key: key, size: int64(len(framed))})
		d.bytes += int64(len(framed))
	}
	d.evictLocked()
	d.mu.Unlock()
	if obs != nil {
		obs(time.Since(writeStart))
	}
}

// dropLocked removes one index entry (the caller handles the file).
func (d *DiskCache) dropLocked(el *list.Element) {
	e := el.Value.(*diskEntry)
	d.ll.Remove(el)
	delete(d.entries, e.key)
	d.bytes -= e.size
}

// evictLocked removes least-recently-used entries until the byte budget
// holds. The most recent entry is never evicted, even when it alone
// exceeds the budget — a result worth solving is worth keeping,
// mirroring the memory tier's rule.
func (d *DiskCache) evictLocked() {
	for d.bytes > d.maxBytes && d.ll.Len() > 1 {
		el := d.ll.Back()
		key := el.Value.(*diskEntry).key
		d.dropLocked(el)
		d.evictions++
		_ = os.Remove(d.path(key))
	}
}

// Close drains the write-behind queue and stops the writer: after Close
// returns, every accepted Put is durably on disk. Later Puts are dropped;
// Gets keep working. Close is idempotent.
func (d *DiskCache) Close() {
	if d == nil {
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.jobs)
	d.wg.Wait()
}

// DiskCacheStats is a point-in-time snapshot of the disk tier counters.
type DiskCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Writes    uint64 `json:"writes"`
	Evictions uint64 `json:"evictions"`
	Errors    uint64 `json:"errors"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// Stats returns the current counters (zero-valued for a disabled tier).
func (d *DiskCache) Stats() DiskCacheStats {
	if d == nil {
		return DiskCacheStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskCacheStats{
		Hits:      d.hits,
		Misses:    d.misses,
		Writes:    d.writes,
		Evictions: d.evictions,
		Errors:    d.errors,
		Entries:   len(d.entries),
		Bytes:     d.bytes,
		MaxBytes:  d.maxBytes,
	}
}
