package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

// TestSIGTERMDrainsInFlightStream exercises the dtserve shutdown
// protocol end to end against a real TCP listener: SIGTERM arrives while
// an NDJSON batch stream is mid-flight, the server begins draining, and
// the client still receives every remaining member as a complete JSON
// line (cancellation errors, never truncated output) before the stream
// closes and Shutdown returns.
func TestSIGTERMDrainsInFlightStream(t *testing.T) {
	ensureSlowSolver(t)
	// One token: exactly one member solves immediately, the other two
	// block until the drain cancels them.
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	setSlowGate(gate)
	defer setSlowGate(nil)

	svc, err := New(Config{CacheSize: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()

	// The same signal wiring dtserve uses, scoped to this test.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	base := "http://" + ln.Addr().String()
	resp := streamBatch(t, base, BatchRequest{Requests: []ScheduleRequest{
		mustScheduleRequest(t, "FFT", 1, "slowtest"),
		mustScheduleRequest(t, "NE", 2, "slowtest"),
		mustScheduleRequest(t, "GJ", 3, "slowtest"),
	}})
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first item: %v", sc.Err())
	}
	var first BatchItem
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line is not a complete item: %q", sc.Bytes())
	}
	// Completion order: members race to the single worker, so any one
	// of them may be the delivered item.
	if first.Error != "" {
		t.Fatalf("first item = %+v, want one member delivered", first)
	}

	// Deliver a real SIGTERM to this process and run dtserve's handler
	// sequence: drain first, then graceful HTTP shutdown.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sigCh:
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM never delivered")
	}
	svc.BeginDrain()
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(ctx)
	}()

	// The stream must finish cleanly: each remaining member arrives as a
	// complete JSON line carrying a cancellation error, then EOF.
	var rest []BatchItem
	for sc.Scan() {
		var it BatchItem
		if err := json.Unmarshal(sc.Bytes(), &it); err != nil {
			t.Fatalf("drained stream wrote a partial line: %q", sc.Bytes())
		}
		rest = append(rest, it)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream did not close cleanly: %v", err)
	}
	if len(rest) != 2 {
		t.Fatalf("got %d trailing items, want 2: %+v", len(rest), rest)
	}
	seen := map[int]bool{first.Index: true}
	for _, it := range rest {
		if it.Error == "" {
			t.Fatalf("member %d reported success during drain: %+v", it.Index, it)
		}
		seen[it.Index] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("delivered + trailing items cover indices %v, want 0, 1 and 2", seen)
	}

	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	st := svc.Stats()
	if !st.Draining {
		t.Fatal("stats do not report draining")
	}
	if st.Cancelled != 2 {
		t.Fatalf("cancelled = %d, want 2", st.Cancelled)
	}
	if st.Items != 1 || st.Solves != 1 {
		t.Fatalf("items=%d solves=%d, want 1 and 1", st.Items, st.Solves)
	}
}
