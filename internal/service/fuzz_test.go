package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzScheduleWire drives arbitrary bytes at the schedule endpoint's
// request decoding: malformed, truncated or hostile JSON must come back
// as a structured 4xx — never a panic, never a 5xx, and never a solver
// invocation. Mirrors internal/taskgraph's FuzzUnmarshalJSON, one wire
// layer up.
func FuzzScheduleWire(f *testing.F) {
	valid := `{"graph":{"name":"g","tasks":[{"id":0,"load":5},{"id":1,"load":5}],` +
		`"edges":[{"from":0,"to":1,"bits":40}]},"topo":"hypercube:2","solver":"hlf"}`
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)/2])) // truncated mid-payload
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"schedule me"`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"graph":null,"topo":"hypercube:3"}`))
	f.Add([]byte(`{"graph":{"name":"x","tasks":[{"id":0,"load":1}],"edges":[]},"topo":"mobius:4"}`))
	f.Add([]byte(`{"graph":{"name":"x","tasks":[{"id":0,"load":-1}],"edges":[]},"topo":"ring:2"}`))
	f.Add([]byte(`{"graph":{"name":"x","tasks":[{"id":0,"load":1},{"id":1,"load":1}],` +
		`"edges":[{"from":0,"to":1,"bits":1},{"from":1,"to":0,"bits":1}]},"topo":"ring:2"}`)) // cycle
	f.Add([]byte(`{"graph":{"name":"x","tasks":[{"id":0,"load":1}],"edges":[]},"topo":"hypercube:2","restarts":2147483647}`))
	f.Add([]byte(`{"graph":{"name":"x","tasks":[{"id":0,"load":1}],"edges":[]},"topo":"hypercube:2","wb":1e308}`))
	f.Add([]byte(`{"graph":{"name":"x","tasks":[{"id":0,"load":1}],"edges":[]},"topo":"hypercube:2","solver":"quantum"}`))
	f.Add([]byte(`{"graph":{"name":"x","tasks":[{"id":0,"load":1}],"edges":[]},"topo":"hypercube:2",` +
		`"comm":{"bandwidth":-1}}`))
	f.Add([]byte(strings.Repeat(`{"graph":`, 100))) // nesting bomb, rejected by decode
	f.Add([]byte("\x00\x01\x02\xff"))

	svc, err := New(Config{CacheSize: 8, DefaultSolver: "hlf"})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(svc.Close)
	handler := svc.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		solvesBefore := svc.Stats().Solves
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/json")
		handler.ServeHTTP(rec, req)

		if rec.Code == http.StatusOK {
			// The fuzzer assembled a genuinely valid request; solving it
			// is correct behavior, and the body must be a decodable
			// result.
			var res Result
			if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
				t.Fatalf("200 with an undecodable body: %v", err)
			}
			return
		}
		// Every rejection is a structured JSON error with a message.
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Fatalf("status %d without a structured error body: %q", rec.Code, rec.Body.String())
		}
		// Bad input maps to a client error (400 decode/validation, 422
		// solver rejection, 504 a fuzzed timeout_ms expiring) — never an
		// internal 500.
		switch rec.Code {
		case http.StatusBadRequest, http.StatusUnprocessableEntity,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("hostile input produced status %d: %s", rec.Code, rec.Body.String())
		}
		// Malformed requests are rejected before the solver layer.
		if rec.Code == http.StatusBadRequest {
			if got := svc.Stats().Solves; got != solvesBefore {
				t.Fatalf("malformed request reached a solver (solves %d -> %d)", solvesBefore, got)
			}
		}
	})
}
