package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/solver"
	"repro/internal/topology"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent solves; <= 0 means one per CPU.
	Workers int
	// CacheSize is the result cache capacity in entries; <= 0 disables
	// caching.
	CacheSize int
	// CacheBytes bounds the cache's stored-bytes footprint; <= 0 means
	// 256 MiB.
	CacheBytes int64
	// DefaultSolver answers requests that name none; empty means "sa".
	DefaultSolver string
	// DefaultTimeout bounds solves that request no timeout; 0 means none.
	DefaultTimeout time.Duration
	// MaxBatch caps the requests of one batch call; <= 0 means 256.
	MaxBatch int
	// Logger receives one line per request; nil disables request logging.
	Logger *log.Logger
}

// Server owns the solver pool, the result cache and the request counters
// behind the HTTP API. Create with New, expose with Handler, stop with
// Close.
type Server struct {
	cfg   Config
	pool  *Pool
	cache *Cache

	mu       sync.Mutex
	requests uint64            // API calls that reached a handler
	failures uint64            // requests answered with a non-2xx status
	solves   uint64            // solver executions (cache misses)
	bySolver map[string]uint64 // solves by registry name
}

// Stats is the /statsz payload.
type Stats struct {
	Requests uint64            `json:"requests"`
	Failures uint64            `json:"failures"`
	Solves   uint64            `json:"solves"`
	BySolver map[string]uint64 `json:"by_solver"`
	Cache    CacheStats        `json:"cache"`
	Pool     PoolStats         `json:"pool"`
}

// New validates the configuration and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.DefaultSolver == "" {
		cfg.DefaultSolver = "sa"
	}
	if _, err := solver.Get(cfg.DefaultSolver); err != nil {
		return nil, fmt.Errorf("service: default solver: %w", err)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	return &Server{
		cfg:      cfg,
		pool:     NewPool(cfg.Workers),
		cache:    NewCache(cfg.CacheSize, cfg.CacheBytes),
		bySolver: make(map[string]uint64),
	}, nil
}

// Close stops the worker pool. In-flight solves finish first.
func (s *Server) Close() { s.pool.Close() }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	by := make(map[string]uint64, len(s.bySolver))
	for k, v := range s.bySolver {
		by[k] = v
	}
	return Stats{
		Requests: s.requests,
		Failures: s.failures,
		Solves:   s.solves,
		BySolver: by,
		Cache:    s.cache.Stats(),
		Pool:     s.pool.Stats(),
	}
}

// Handler returns the service's HTTP handler with request logging wired
// around every route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/schedule/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s.logged(mux)
}

// httpError carries a status code with a client-safe message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// statusWriter records the status code written by a handler for logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logged counts every request and, with a configured logger, prints one
// line per call: method, path, status, duration.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.mu.Lock()
		s.requests++
		if sw.status >= 400 {
			s.failures++
		}
		s.mu.Unlock()
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s %d %s cache=%s",
				r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond),
				sw.Header().Get("X-DTServe-Cache"))
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	if !errors.As(err, &he) {
		he = &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	writeJSON(w, he.status, ErrorResponse{Error: he.msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Default string        `json:"default"`
		Solvers []solver.Info `json:"solvers"`
	}{s.cfg.DefaultSolver, solver.List()})
}

const maxBodyBytes = 32 << 20

// maxRestarts caps the wire restarts knob: each restart clones the
// annealing packet and runs on its own goroutine per epoch, so an
// unbounded value would let one request exhaust the process.
const maxRestarts = 64

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, badRequest("decode request: %v", err))
		return
	}
	body, hit, err := s.process(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-DTServe-Cache", "hit")
	} else {
		w.Header().Set("X-DTServe-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&batch); err != nil {
		writeError(w, badRequest("decode batch: %v", err))
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, badRequest("empty batch"))
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		writeError(w, badRequest("batch of %d exceeds the limit of %d", len(batch.Requests), s.cfg.MaxBatch))
		return
	}
	items := make([]BatchItem, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := s.process(r.Context(), &batch.Requests[i])
			if err != nil {
				items[i].Error = err.Error()
				return
			}
			items[i].Result = body
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Items: items})
}

// process turns one wire request into marshaled result bytes: validate,
// consult the content-addressed cache, and on a miss run the named solver
// on the worker pool and store the bytes. The bool reports a cache hit.
func (s *Server) process(ctx context.Context, req *ScheduleRequest) ([]byte, bool, error) {
	if req.Graph == nil {
		return nil, false, badRequest("missing graph")
	}
	if req.Topo == "" {
		return nil, false, badRequest("missing topo spec")
	}
	topo, err := cliutil.ParseTopology(req.Topo)
	if err != nil {
		return nil, false, badRequest("%v", err)
	}
	comm := req.Comm.apply(topology.DefaultCommParams())
	if req.NoComm {
		comm = comm.NoComm()
	}
	if err := comm.Validate(); err != nil {
		return nil, false, badRequest("%v", err)
	}

	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.DefaultSolver
	}
	slv, err := solver.Get(solverName)
	if err != nil {
		return nil, false, badRequest("%v", err)
	}

	saOpt := core.DefaultOptions()
	saOpt.Seed = req.Seed
	if req.Wb != nil {
		saOpt.Wb = *req.Wb
		saOpt.Wc = 1 - *req.Wb
	}
	if req.Restarts < 0 || req.Restarts > maxRestarts {
		return nil, false, badRequest("restarts %d out of range [0,%d]", req.Restarts, maxRestarts)
	}
	saOpt.Restarts = req.Restarts
	if err := saOpt.Validate(); err != nil {
		return nil, false, badRequest("%v", err)
	}

	sreq := solver.Request{Graph: req.Graph, Topo: topo, Comm: comm, SA: saOpt}
	if err := sreq.Validate(); err != nil {
		return nil, false, badRequest("%v", err)
	}

	key, err := cacheKey(req.Graph, topo.Name(), comm, slv.Name(), saOpt, req.TimeoutMS)
	if err != nil {
		return nil, false, fmt.Errorf("service: cache key: %w", err)
	}
	if !req.NoCache {
		if body, ok := s.cache.Get(key); ok {
			return body, true, nil
		}
	}

	deadlined := false
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
		deadlined = true
	} else if s.cfg.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
		defer cancel()
		deadlined = true
	}

	var body []byte
	var solveErr error
	runErr := s.pool.Run(ctx, func() {
		res, err := slv.Solve(ctx, sreq)
		if err != nil {
			solveErr = err
			return
		}
		wire, err := ResultFromSim(res, req.Graph, topo.Name())
		if err != nil {
			solveErr = err
			return
		}
		body, solveErr = json.Marshal(wire)
	})
	if runErr != nil {
		return nil, false, &httpError{status: http.StatusServiceUnavailable, msg: runErr.Error()}
	}
	if solveErr != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(solveErr, context.DeadlineExceeded) || errors.Is(solveErr, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		return nil, false, &httpError{status: status, msg: solveErr.Error()}
	}

	// A deadline-raced portfolio result depends on which members beat the
	// clock, not just on the payload — caching it would replay a
	// timing-dependent body to every future caller of the key, so only
	// deterministic results are memoized.
	if !(deadlined && slv.Name() == "portfolio") {
		s.cache.Put(key, body)
	}
	s.mu.Lock()
	s.solves++
	s.bySolver[slv.Name()]++
	s.mu.Unlock()
	return body, false, nil
}
