package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent solves; <= 0 means one per CPU. This is
	// the engine pool's floor.
	Workers int
	// MaxWorkers lets the engine pool grow under sustained queue pressure
	// up to this many workers; <= Workers keeps the pool fixed.
	MaxWorkers int
	// QueueDepth bounds each QoS lane's queue; submissions past it are
	// shed with a 429. <= 0 means engine.DefaultQueueDepth.
	QueueDepth int
	// QueueDelayTarget sheds new work on a lane once its oldest queued
	// job has waited longer than this (429 + Retry-After). 0 disables
	// delay-based shedding.
	QueueDelayTarget time.Duration
	// QueueDelayAuto derives each lane's shedding target from its own
	// observed p95 queue delay (EWMA-smoothed, headroom-multiplied,
	// clamped) instead of the static QueueDelayTarget — see
	// engine.Config.QueueDelayAuto. QueueDelayTarget then only serves as
	// the fallback before the first derivation.
	QueueDelayAuto bool
	// InteractiveWeight is the weighted-dequeue ratio between the
	// interactive and batch lanes; <= 0 means the engine default (4).
	InteractiveWeight int
	// CacheSize is the result cache capacity in entries; <= 0 disables
	// caching.
	CacheSize int
	// CacheBytes bounds the cache's stored-bytes footprint; <= 0 means
	// 256 MiB.
	CacheBytes int64
	// CacheDir roots the persistent disk cache tier: a restarted server
	// pointed at the same directory replays previously solved graphs
	// from disk without re-solving. Empty disables the tier
	// (memory-only, the prior behavior).
	CacheDir string
	// DiskCacheBytes bounds the disk tier's on-disk footprint; <= 0
	// means 1 GiB. Ignored when CacheDir is empty.
	DiskCacheBytes int64
	// DefaultSolver answers requests that name none; empty means "sa".
	DefaultSolver string
	// DefaultTimeout bounds solves that request no timeout; 0 means none.
	DefaultTimeout time.Duration
	// MaxBatch caps the requests of one batch call; <= 0 means 256. The
	// limit is enforced by the engine's batch fan-out, not per handler.
	MaxBatch int
	// WrapDiskTier, when non-nil, wraps the disk tier before the server
	// uses it — the seam the fault-injection harness (internal/chaos)
	// plugs into. The wrapper receives the configured tier (a no-op
	// nil-backed tier when CacheDir is empty) and must return the tier
	// the server should use.
	WrapDiskTier func(DiskTier) DiskTier
	// RemoteAddr points at a dtcached daemon shared by the replica fleet;
	// the server consults it between a disk miss and a cold solve
	// (memory → disk → remote → solve) and promotes remote hits into the
	// local tiers. Empty disables the tier (the prior behavior).
	RemoteAddr string
	// RemoteTimeout bounds one remote round trip (dial included); <= 0
	// means the remotecache client default (250ms). The tier degrades to
	// a counted miss on timeout — it can slow a cold solve by at most
	// this much and can never fail one.
	RemoteTimeout time.Duration
	// WrapRemoteTier, when non-nil, wraps the remote tier exactly as
	// WrapDiskTier wraps the disk tier — the chaos seam, and the hook
	// in-process fleet tests use to substitute a fake daemon. The wrapper
	// receives a no-op nil-backed tier when RemoteAddr is empty; a
	// non-nil wrapped tier enables the remote rung even without an
	// address.
	WrapRemoteTier func(RemoteTier) RemoteTier
	// WarmStart lets plain /v1/schedule SA requests that miss every exact
	// tier consult the similarity index and warm-start from the nearest
	// cached solve. Off by default: a warm-started result's bytes differ
	// (legitimately) from the cold solve's, so the opt-in is explicit.
	// /v1/schedule/delta warms independently of this flag — its base is
	// named by the client.
	WarmStart bool
	// WarmMaxDistance bounds the sketch distance at which the similarity
	// index may seed a warm start; <= 0 means 0.5. Delta requests name
	// their base explicitly and are exempt.
	WarmMaxDistance float64
	// SimIndexSize bounds the similarity index entries; <= 0 means 4096.
	// The index fills from cacheable SA solves regardless of WarmStart
	// (it also resolves delta bases), and persists in CacheDir.
	SimIndexSize int
	// Logger receives one structured record per request (method, path,
	// status, duration, trace ID, lane, cache tag, stage summary); nil
	// disables request logging.
	Logger *slog.Logger
	// TraceSample traces one request in every TraceSample as a background
	// profile (0 disables sampling). Requests that ask explicitly —
	// "trace": true in the body or ?trace=1 — are always traced,
	// regardless of the sampling rate.
	TraceSample int
	// TraceRecent and TraceSlowest bound the /debug/requests ring: the
	// last TraceRecent completed traces plus the TraceSlowest slowest.
	// <= 0 means 64 and 16.
	TraceRecent  int
	TraceSlowest int
}

// Server owns the solve engine, the result cache and the request counters
// behind the HTTP API. Create with New, expose with Handler, stop with
// Close. Cold solves run on the shared orchestration layer
// (internal/engine); the content-addressed cache tiers and the
// singleflight sit above it, so the engine sees only genuinely cold work.
type Server struct {
	cfg          Config
	eng          *engine.Engine
	cache        *Cache
	disk         DiskTier
	remote       RemoteTier
	remoteOn     bool // a real remote rung exists; gates the remote_tier stage
	sim          *SimIndex
	solveLatency *obs.Histogram

	// Per-stage latency histograms, keyed by obs stage name. The map is
	// built once in New and read-only afterwards; the histograms are
	// internally locked. Stages land here from completed traces, so the
	// distributions describe the traced sample, not every request.
	stageLatency map[string]*obs.Histogram
	diskRead     *obs.Histogram // disk tier Get latency, hit or miss
	diskWrite    *obs.Histogram // disk tier write-behind persist latency
	remoteRead   *obs.Histogram // remote tier Get latency, hit or miss
	streamTTFB   *obs.Histogram // NDJSON batch: first item flushed
	sampler      obs.Sampler
	ring         *obs.Ring

	draining  atomic.Bool
	drainCh   chan struct{} // closed by BeginDrain
	drainOnce sync.Once

	// Parsed-topology memo. Building a topology computes all-pairs
	// routes — on the warm-hit path that was ~half of all allocations,
	// paid before the cache could even answer. Topologies are immutable
	// after construction (portfolio members already share one across
	// goroutines), so requests can share the parsed value. Bounded:
	// specs are client-controlled, and an unbounded memo keyed by
	// attacker-chosen strings is a memory leak; overflow parses
	// per-request exactly as before.
	topoMu     sync.RWMutex
	topoBySpec map[string]*topology.Topology

	mu         sync.Mutex
	requests   uint64 // API calls that reached a handler
	failures   uint64 // requests answered with a non-2xx status
	items      uint64 // schedule items answered (1 per single, N per batch)
	solves     uint64 // solver executions (cache misses)
	memHits    uint64 // items answered from the memory tier
	diskHits   uint64 // items answered from the disk tier
	remoteHits uint64 // items answered from the shared remote tier
	coalesced  uint64 // requests that piggybacked on an in-flight solve
	pruned     uint64 // portfolio members cancelled by the incumbent bound
	// restartsAbandoned counts SA restarts stopped early by the
	// cooperative incumbent rule across all completed solves.
	restartsAbandoned uint64
	// warmHits counts solver executions seeded from a cached near-miss
	// assignment (the similarity index or an explicit delta base). Warm
	// solves are solves — they stay inside the conservation law's solves
	// term; this is the sub-count of how many were warm.
	warmHits uint64
	// warmEpochsSaved sums the annealing stages warm starts skipped.
	warmEpochsSaved uint64
	// boundUpdates counts portfolio incumbent-bound tightenings: completed
	// members publishing makespans that strictly improved the bound the
	// still-running members prune against.
	boundUpdates uint64
	shed         uint64            // requests refused by admission control (429)
	cancelled    uint64            // solves cancelled by their caller (client disconnect, drain)
	bySolver     map[string]uint64 // completed solves by registry name
	// solveErrors counts solver executions that ended in an error (any
	// non-shed failure: solver error, deadline, cancellation), by name —
	// with bySolver these are the per-solver ok/error outcome counters.
	solveErrors map[string]uint64
	// memberOutcomes counts portfolio member runs keyed "member|outcome"
	// (outcome as in machsim.MemberStat: win, finish, pruned, timeout,
	// cancelled, error).
	memberOutcomes map[string]uint64
	inflight       map[string]*flight // singleflight: one solve per cache key
}

// flight is one in-flight solve that concurrent identical requests wait
// on: the leader fills body/err and closes done; every waiter then
// replays the same bytes.
type flight struct {
	done chan struct{}
	body []byte
	err  error
	// addr is the content address the leader's body landed under — the
	// warm key when the leader warm-started, else the plain key — so
	// coalesced waiters report the same X-DTServe-Address.
	addr string
	// warm/warmDist mirror the leader's warm verdict for waiters' headers.
	warm     bool
	warmDist float64
}

// procMeta carries per-request facts between process and its handler
// beyond the cache tag. warmBase/noWarm are inputs (the delta endpoint
// naming its seeding base, or refusing one); key/warm/warmDist are
// outputs: the content address the body is retrievable under and, when
// the solve was warm-started, the sketch distance of its seed.
type procMeta struct {
	warmBase string // seed from exactly this cached address (delta)
	noWarm   bool   // disable warm seeding even when the server enables it

	key      string
	warm     bool
	warmDist float64
}

// Stats is the /statsz payload. The counters obey the conservation law
//
//	solves + cache.hits + disk.hits + remote.hits + coalesced == schedule_items
//
// every answered schedule item — one per /v1/schedule call, one per batch
// member — is exactly one of: a solver execution, a memory hit, a disk
// hit, a shared remote-tier hit, or a ride on an identical in-flight
// solve. (For workloads of only single schedule calls, schedule_items
// equals the successful requests; without a remote tier, remote.hits is
// identically zero and the law reduces to the historical four-term form.)
type Stats struct {
	Requests  uint64 `json:"requests"`
	Failures  uint64 `json:"failures"`
	Items     uint64 `json:"schedule_items"`
	Solves    uint64 `json:"solves"`
	Coalesced uint64 `json:"coalesced"`
	// PortfolioPruned counts portfolio members cancelled mid-run because
	// their own makespan lower bound exceeded the incumbent best.
	PortfolioPruned uint64 `json:"portfolio_pruned"`
	// RestartsAbandoned counts cooperative SA restarts stopped early
	// because they lagged the shared incumbent (core.Options.Cooperative).
	// Deterministic per seed, unlike the wall-clock portfolio pruning.
	RestartsAbandoned uint64 `json:"restarts_abandoned"`
	// WarmHits counts solver executions warm-started from a cached
	// near-miss assignment. Warm solves remain solves under the
	// conservation law; this is the warm sub-count.
	WarmHits uint64 `json:"warm_hits"`
	// WarmEpochsSaved sums the annealing stages skipped by warm starts.
	WarmEpochsSaved uint64 `json:"warm_epochs_saved"`
	// PortfolioBoundUpdates counts shared-incumbent tightenings during
	// portfolio races: completed members publishing makespans that
	// improved the bound still-running members prune against.
	PortfolioBoundUpdates uint64 `json:"portfolio_bound_updates"`
	// SimIndexEntries is the similarity index's current size.
	SimIndexEntries int `json:"sim_index_entries"`
	// Shed counts requests refused by admission control with a 429: a
	// QoS lane's queue-depth or queue-delay budget was exhausted. Shed
	// requests never become schedule items, so they sit outside the
	// conservation law.
	Shed uint64 `json:"shed"`
	// Cancelled counts solves cancelled by their caller going away — a
	// client disconnecting mid-stream, or a drain cutting a batch short.
	// Cancelled solves produce no result and are never cached.
	Cancelled uint64 `json:"cancelled"`
	// Draining reports that BeginDrain was called: the server is
	// finishing in-flight streams and refusing new solve work.
	Draining bool              `json:"draining"`
	BySolver map[string]uint64 `json:"by_solver"`
	// SolveErrors counts solver executions that failed (non-shed), by
	// registry name; with BySolver these are the per-solver outcome
	// counters /metrics exports.
	SolveErrors map[string]uint64 `json:"solve_errors,omitempty"`
	// MemberOutcomes counts portfolio member runs keyed "member|outcome".
	MemberOutcomes map[string]uint64 `json:"portfolio_members,omitempty"`
	// Traces counts completed traces retained (then possibly rotated) by
	// the /debug/requests ring.
	Traces uint64         `json:"traces"`
	Cache  CacheStats     `json:"cache"`
	Disk   DiskCacheStats `json:"disk"`
	// Remote is the shared dtcached tier consulted between a disk miss
	// and a cold solve; Remote.Hits is law-bound and mirrored like the
	// other tiers'.
	Remote RemoteCacheStats `json:"remote"`
	Pool   PoolStats        `json:"pool"`
}

// PoolStats mirrors the engine's worker and lane counters under the
// historical "pool" key of the /statsz payload.
type PoolStats struct {
	// Workers is the current pool size; MinWorkers/MaxWorkers are the
	// adaptive bounds and Grown/Shrunk count the resizes.
	Workers    int    `json:"workers"`
	MinWorkers int    `json:"min_workers"`
	MaxWorkers int    `json:"max_workers"`
	Grown      uint64 `json:"grown"`
	Shrunk     uint64 `json:"shrunk"`
	Busy       int64  `json:"busy"`
	Completed  int64  `json:"completed"`
	// Lanes holds the per-lane queue/admission counters, keyed by lane
	// name ("interactive", "batch").
	Lanes map[string]engine.LaneStats `json:"lanes"`
}

// New validates the configuration and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.DefaultSolver == "" {
		cfg.DefaultSolver = "sa"
	}
	if _, err := solver.Get(cfg.DefaultSolver); err != nil {
		return nil, fmt.Errorf("service: default solver: %w", err)
	}
	var disk *DiskCache
	if cfg.CacheDir != "" {
		var err error
		disk, err = NewDiskCache(cfg.CacheDir, cfg.DiskCacheBytes)
		if err != nil {
			return nil, fmt.Errorf("service: disk cache: %w", err)
		}
	}
	// The tier travels as an interface from here on (a nil *DiskCache is
	// a valid no-op tier — its methods tolerate the nil receiver), so the
	// fault-injection seam can wrap it without knowing the concrete type.
	var tier DiskTier = disk
	if cfg.WrapDiskTier != nil {
		tier = cfg.WrapDiskTier(tier)
		if tier == nil {
			return nil, fmt.Errorf("service: WrapDiskTier returned a nil tier")
		}
	}
	// The remote tier travels the same way: a nil *RemoteCache is the
	// valid no-op tier, and the chaos/test seam wraps the interface. The
	// rung is "on" — and the remote_tier trace stage recorded — only when
	// something real sits behind it, so single-node deployments keep
	// their exact historical stage taxonomy.
	var remote *RemoteCache
	if cfg.RemoteAddr != "" {
		remote = NewRemoteCache(cfg.RemoteAddr, cfg.RemoteTimeout)
	}
	var remoteTier RemoteTier = remote
	if cfg.WrapRemoteTier != nil {
		remoteTier = cfg.WrapRemoteTier(remoteTier)
		if remoteTier == nil {
			return nil, fmt.Errorf("service: WrapRemoteTier returned a nil tier")
		}
	}
	s := &Server{
		cfg: cfg,
		eng: engine.New(engine.Config{
			Workers:           cfg.Workers,
			MaxWorkers:        cfg.MaxWorkers,
			MaxBatch:          cfg.MaxBatch,
			QueueDepth:        cfg.QueueDepth,
			QueueDelayTarget:  cfg.QueueDelayTarget,
			QueueDelayAuto:    cfg.QueueDelayAuto,
			InteractiveWeight: cfg.InteractiveWeight,
		}),
		cache:          NewCache(cfg.CacheSize, cfg.CacheBytes),
		disk:           tier,
		remote:         remoteTier,
		remoteOn:       cfg.RemoteAddr != "" || cfg.WrapRemoteTier != nil,
		drainCh:        make(chan struct{}),
		solveLatency:   obs.NewHistogram(obs.LatencyBuckets),
		stageLatency:   make(map[string]*obs.Histogram, len(obs.Stages)),
		diskRead:       obs.NewHistogram(obs.QueueBuckets),
		diskWrite:      obs.NewHistogram(obs.QueueBuckets),
		remoteRead:     obs.NewHistogram(obs.QueueBuckets),
		streamTTFB:     obs.NewHistogram(obs.LatencyBuckets),
		ring:           obs.NewRing(cfg.TraceRecent, cfg.TraceSlowest),
		sim:            NewSimIndex(cfg.SimIndexSize),
		bySolver:       make(map[string]uint64),
		solveErrors:    make(map[string]uint64),
		memberOutcomes: make(map[string]uint64),
		inflight:       make(map[string]*flight),
		topoBySpec:     make(map[string]*topology.Topology),
	}
	if cfg.CacheDir != "" {
		// The similarity index persists beside the disk tier so a restarted
		// server warm-starts against its previous working set. Load failures
		// only cost warmth, never availability.
		if err := s.sim.Load(s.simIndexPath()); err != nil && cfg.Logger != nil {
			cfg.Logger.Warn("sim index load failed", "err", err)
		}
	}
	for _, stage := range obs.Stages {
		s.stageLatency[stage] = obs.NewHistogram(obs.LatencyBuckets)
	}
	s.sampler.SetEvery(cfg.TraceSample)
	// Hook the concrete disk tier's write-behind latency into the metrics
	// histogram while the concrete type is still in hand (the chaos seam
	// above only sees the DiskTier interface).
	if disk != nil {
		disk.SetWriteObserver(s.diskWrite.Observe)
	}
	return s, nil
}

// BeginDrain puts the server into drain mode: new solve requests are
// refused with a 503 + Retry-After, /healthz starts failing so load
// balancers stop routing here, and in-flight NDJSON batch streams cancel
// their remaining members and flush every completed item as a full JSON
// line before closing — no stream is ever truncated mid-line. Call it
// before http.Server.Shutdown so streams wind down inside the shutdown
// grace period. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the solve engine and drains the disk and remote tiers'
// write-behind queues, so every result accepted for persistence has been
// written (or counted as a failed write) before Close returns. In-flight
// solves finish first.
func (s *Server) Close() {
	s.eng.Close()
	s.disk.Close()
	s.remote.Close()
	if s.cfg.CacheDir != "" {
		if err := s.sim.Save(s.simIndexPath()); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Warn("sim index save failed", "err", err)
		}
	}
}

// simIndexPath is the similarity index's persistence file, beside the
// disk tier's entries.
func (s *Server) simIndexPath() string {
	return filepath.Join(s.cfg.CacheDir, "simindex.json")
}

// Stats snapshots the server counters. The conservation-law counters —
// solves, memory hits, disk hits, coalesced, items — are mirrored under
// the server's own lock and incremented atomically with the item count
// (account), so the law holds exactly on every snapshot: a scrape can
// never observe an item whose classification landed in a tier counter
// the snapshot missed. The tiers' internal hit counters are therefore
// overridden with the mirrors; their misses/evictions/size gauges still
// come from the tiers themselves.
func (s *Server) Stats() Stats {
	// Tier and engine snapshots are taken outside s.mu (they take their
	// own locks); only the law-bound fields come from the mirrors below.
	cs := s.cache.Stats()
	ds := s.disk.Stats()
	rs := s.remote.Stats()
	est := s.eng.Stats()
	ring := s.ring.Snapshot()

	s.mu.Lock()
	defer s.mu.Unlock()
	by := make(map[string]uint64, len(s.bySolver))
	for k, v := range s.bySolver {
		by[k] = v
	}
	se := make(map[string]uint64, len(s.solveErrors))
	for k, v := range s.solveErrors {
		se[k] = v
	}
	mo := make(map[string]uint64, len(s.memberOutcomes))
	for k, v := range s.memberOutcomes {
		mo[k] = v
	}
	cs.Hits = s.memHits
	ds.Hits = s.diskHits
	rs.Hits = s.remoteHits
	return Stats{
		Requests:              s.requests,
		Failures:              s.failures,
		Items:                 s.items,
		Solves:                s.solves,
		Coalesced:             s.coalesced,
		PortfolioPruned:       s.pruned,
		RestartsAbandoned:     s.restartsAbandoned,
		WarmHits:              s.warmHits,
		WarmEpochsSaved:       s.warmEpochsSaved,
		PortfolioBoundUpdates: s.boundUpdates,
		SimIndexEntries:       s.sim.Len(),
		Shed:                  s.shed,
		Cancelled:             s.cancelled,
		Draining:              s.draining.Load(),
		BySolver:              by,
		SolveErrors:           se,
		MemberOutcomes:        mo,
		Traces:                ring.Total,
		Cache:                 cs,
		Disk:                  ds,
		Remote:                rs,
		Pool: PoolStats{
			Workers:    est.Workers,
			MinWorkers: est.MinWorkers,
			MaxWorkers: est.MaxWorkers,
			Grown:      est.Grown,
			Shrunk:     est.Shrunk,
			Busy:       est.Busy,
			Completed:  est.Completed,
			Lanes:      est.Lanes,
		},
	}
}

// Handler returns the service's HTTP handler with request logging wired
// around every route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/schedule/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/schedule/delta", s.handleDelta)
	mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	return s.logged(mux)
}

// handleDebugRequests serves the completed-trace ring — the last N
// requests plus the K slowest, stage breakdowns and annotations included
// — as JSON, in the spirit of x/net/trace's /debug/requests page. Traces
// land here when sampled or explicitly requested; correlate entries with
// response headers and log lines by span ID.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ring.Snapshot())
}

// httpError carries a status code with a client-safe message. retryAfter,
// when positive, asks the client to back off: it becomes the Retry-After
// header (whole seconds, rounded up) and the retry_after_ms body field.
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// statusClientClosedRequest is the de-facto (nginx) status for a request
// whose client went away before the response: the solve was cancelled, so
// neither a success nor a server failure describes it.
const statusClientClosedRequest = 499

// statusWriter records the status code written by a handler for logging,
// and carries the request's trace state between the logging wrapper
// (which owns the span ID and the trace's completion) and the handler
// (which decides whether to trace and attaches the stages).
type statusWriter struct {
	http.ResponseWriter
	status  int
	traceID string
	trace   *obs.Trace // set by the handler when the request is traced
	lane    string     // QoS lane, for the request log
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (the NDJSON
// batch) keep their per-item flushes through the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// finishTrace completes a trace: snapshot with the end-to-end total,
// retain in the /debug/requests ring, fold the top-level stages into the
// per-stage latency histograms, release the trace to the pool. Nil-safe;
// returns the detached snapshot.
func (s *Server) finishTrace(tr *obs.Trace, total time.Duration) *obs.TraceData {
	if tr == nil {
		return nil
	}
	td := tr.Snapshot(total)
	s.ring.Add(td)
	for _, st := range td.Stages {
		if st.Depth != 0 {
			continue // member sub-spans overlap solve; histograms tile
		}
		if h, ok := s.stageLatency[st.Stage]; ok {
			h.Observe(time.Duration(st.DurNS))
		}
	}
	obs.Release(tr)
	return td
}

// stageSummary renders a trace's top-level stages as one compact log
// field ("decode=84µs solve=31ms ...") in start order.
func stageSummary(td *obs.TraceData) string {
	var b strings.Builder
	for _, st := range td.Stages {
		if st.Depth != 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(st.Stage)
		b.WriteByte('=')
		b.WriteString(time.Duration(st.DurNS).Round(time.Microsecond).String())
	}
	return b.String()
}

// logged counts every request, stamps the span ID onto the response
// (X-DTServe-Trace-Id), completes any trace the handler attached, and —
// with a configured logger — emits one structured record per call.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK, traceID: obs.NewID()}
		sw.Header().Set("X-DTServe-Trace-Id", sw.traceID)
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		s.mu.Lock()
		s.requests++
		if sw.status >= 400 {
			s.failures++
		}
		s.mu.Unlock()
		td := s.finishTrace(sw.trace, dur)
		if s.cfg.Logger != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("dur", dur.Round(time.Microsecond)),
				slog.String("trace_id", sw.traceID),
			}
			if sw.lane != "" {
				attrs = append(attrs, slog.String("lane", sw.lane))
			}
			if tag := sw.Header().Get("X-DTServe-Cache"); tag != "" {
				attrs = append(attrs, slog.String("cache", tag))
			}
			if td != nil {
				attrs = append(attrs, slog.String("stages", stageSummary(td)))
			}
			s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	if !errors.As(err, &he) {
		he = &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	resp := ErrorResponse{Error: he.msg}
	if he.retryAfter > 0 {
		// Retry-After is whole seconds; round up so "retry after 300ms"
		// never becomes "retry immediately".
		secs := int64((he.retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		resp.RetryAfterMS = he.retryAfter.Milliseconds()
	}
	writeJSON(w, he.status, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// Failing the liveness probe during drain steers load balancers
		// away while in-flight streams finish.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// errDraining refuses new solve work during shutdown. Retry-After points
// clients at a peer (or a restarted instance) rather than a tight loop.
func errDraining() *httpError {
	return &httpError{status: http.StatusServiceUnavailable,
		msg: "service: draining (shutting down)", retryAfter: time.Second}
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Default string        `json:"default"`
		Solvers []solver.Info `json:"solvers"`
	}{s.cfg.DefaultSolver, solver.List()})
}

const maxBodyBytes = 32 << 20

// maxRestarts caps the wire restarts knob: each restart clones the
// annealing packet and runs on its own goroutine per epoch, so an
// unbounded value would let one request exhaust the process.
const maxRestarts = 64

// wantsTrace reports whether the request asked for a trace block
// explicitly: "trace": true on the wire, or ?trace=1 on the URL. The
// RawQuery guard keeps query parsing (which allocates) off the common
// path of requests with no query string at all.
func wantsTrace(req *rawRequest, r *http.Request) bool {
	if req.Trace {
		return true
	}
	return r.URL.RawQuery != "" && r.URL.Query().Get("trace") == "1"
}

// startTrace begins tracing a request decoded at t0 (decode finished
// now): always when the request asked explicitly, else at the sampling
// rate. The decode stage is recorded retroactively — the trace cannot
// exist before the body that requests it is decoded. Returns ctx
// unchanged when the request is not traced.
func (s *Server) startTrace(ctx context.Context, sw *statusWriter, t0 time.Time, explicit bool) (context.Context, *obs.Trace) {
	if !explicit && !s.sampler.Sample() {
		return ctx, nil
	}
	id := obs.NewID()
	if sw != nil {
		id = sw.traceID
	}
	tr := obs.NewTrace(id, t0)
	tr.Observe(obs.StageDecode, t0, time.Since(t0))
	if sw != nil {
		sw.trace = tr // logged() completes and releases it
	}
	return obs.With(ctx, tr), tr
}

// appendTraceBody splices a "trace" field into a marshaled response
// envelope. The cached body bytes are never touched — the splice builds
// a fresh buffer — so traces are per-request and never cached.
func appendTraceBody(body []byte, td *obs.TraceData) []byte {
	tb, err := json.Marshal(td)
	if err != nil {
		return body
	}
	trimmed := bytes.TrimRight(body, " \t\r\n")
	if len(trimmed) < 2 || trimmed[len(trimmed)-1] != '}' {
		return body
	}
	out := make([]byte, 0, len(trimmed)+len(tb)+10)
	out = append(out, trimmed[:len(trimmed)-1]...)
	out = append(out, `,"trace":`...)
	out = append(out, tb...)
	out = append(out, '}')
	return out
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if s.draining.Load() {
		writeError(w, errDraining())
		return
	}
	var req rawRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, badRequest("decode request: %v", err))
		return
	}
	sw, _ := w.(*statusWriter)
	explicit := wantsTrace(&req, r)
	ctx, tr := s.startTrace(r.Context(), sw, t0, explicit)
	if sw == nil && tr != nil {
		// No logging wrapper to complete the trace (handler invoked bare,
		// e.g. from a test mux): finish it ourselves after responding.
		defer func() { s.finishTrace(tr, time.Since(t0)) }()
	}
	meta := &procMeta{}
	body, status, err := s.process(ctx, &req, engine.LaneInteractive, meta)
	if sw != nil {
		sw.lane = laneName(req.Lane, engine.LaneInteractive)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	s.account(status)
	tr.Annotate("cache", status)
	if tr != nil && explicit {
		// The response's trace block is a mid-flight snapshot: it has
		// every stage through marshal, while the header write and the
		// ring/log completion land after. Total is measured here so the
		// stage durations sum to (within the final write) the reported
		// total.
		body = appendTraceBody(body, tr.Snapshot(time.Since(t0)))
	}
	writeResult(w, body, status, meta)
}

// writeResult writes a successful schedule/delta response: the body plus
// the cache tag, the content address (the base handle clients pass to
// /v1/schedule/delta), and — for warm-started solves — the sketch
// distance of the seed.
func writeResult(w http.ResponseWriter, body []byte, status string, meta *procMeta) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-DTServe-Cache", status)
	if meta.key != "" {
		h.Set("X-DTServe-Address", meta.key)
	}
	if meta.warm {
		h.Set("X-DTServe-Warm", strconv.FormatFloat(meta.warmDist, 'g', -1, 64))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// laneName resolves the wire lane field against the handler default, for
// the request log.
func laneName(wire string, def engine.Lane) string {
	if wire == "" {
		return def.String()
	}
	if lane, err := engine.ParseLane(wire); err == nil {
		return lane.String()
	}
	return wire
}

// account records one answered schedule item together with its
// classification — exactly one of the conservation law's left-hand
// counters, in the same critical section as the item count, so
//
//	solves + mem_hits + disk_hits + remote_hits + coalesced == schedule_items
//
// holds on every snapshot, never just eventually.
func (s *Server) account(tag string) {
	s.mu.Lock()
	s.items++
	switch tag {
	case "hit":
		s.memHits++
	case "disk":
		s.diskHits++
	case "remote":
		s.remoteHits++
	case "coalesced":
		s.coalesced++
	case "miss":
		s.solves++
	}
	s.mu.Unlock()
}

// wantsNDJSON reports whether the client asked for a streamed batch.
func wantsNDJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// handleBatch answers POST /v1/schedule/batch. Both response shapes share
// one execution path: the batch fans out through the engine (which owns
// the MaxBatch limit) and items come back in completion order, each
// carrying its request index and cache status.
//
// With "Accept: application/x-ndjson" the response streams: every item is
// written — and flushed — as its solve completes, so a client consuming a
// large batch pipelines behind the fast members instead of blocking on the
// slowest. Item bodies are byte-identical to the buffered shape's; only
// the framing (one JSON object per line, completion-ordered) differs.
// Without it the items are assembled into the request-ordered
// BatchResponse envelope once all have completed.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	if s.draining.Load() {
		writeError(w, errDraining())
		return
	}
	var batch rawBatch
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&batch); err != nil {
		writeError(w, badRequest("decode batch: %v", err))
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, badRequest("empty batch"))
		return
	}
	sw, _ := w.(*statusWriter)
	if sw != nil {
		sw.lane = engine.LaneBatch.String()
	}
	queryTrace := r.URL.RawQuery != "" && r.URL.Query().Get("trace") == "1"
	// Every member solves under one batch-scoped context: cancelling it —
	// because the client disconnected or the server began draining —
	// reaches each remaining member's solver through its interrupt hook,
	// so abandoned work stops burning workers. Members already finished
	// are unaffected; members cancelled mid-solve come back as error
	// items (counted in Stats.Cancelled, cached nowhere).
	bctx, bcancel := context.WithCancel(r.Context())
	defer bcancel()
	n := len(batch.Requests)
	baseID := obs.NewID()
	if sw != nil {
		baseID = sw.traceID
	}
	ch, err := engine.Fan(n, s.eng.MaxBatch(), func(i int) BatchItem {
		// Each member traces independently — explicit per-member flag (or
		// the batch-wide ?trace=1), else the sampler — under a derived
		// span ID, so a batch's members are correlated in /debug/requests
		// by their shared prefix. Member traces complete here: the ring
		// and stage histograms see each member as soon as it finishes,
		// not when the whole batch does.
		mt0 := time.Now()
		explicit := queryTrace || batch.Requests[i].Trace
		mctx := bctx
		var mtr *obs.Trace
		if explicit || s.sampler.Sample() {
			mtr = obs.NewTrace(baseID+"-"+strconv.Itoa(i), mt0)
			mctx = obs.With(bctx, mtr)
		}
		body, status, err := s.process(mctx, &batch.Requests[i], engine.LaneBatch, nil)
		if err != nil {
			s.finishTrace(mtr, time.Since(mt0))
			return BatchItem{Index: i, Error: err.Error()}
		}
		s.account(status)
		mtr.Annotate("cache", status)
		if mtr != nil && explicit {
			body = appendTraceBody(body, mtr.Snapshot(time.Since(mt0)))
		}
		s.finishTrace(mtr, time.Since(mt0))
		return BatchItem{Index: i, Cache: status, Result: body}
	})
	if err != nil {
		writeError(w, badRequest("%v", err))
		return
	}

	// drain turns nil after it fires so the select below degenerates to a
	// plain channel read: the drain signal cancels the remaining members
	// once, then the loop finishes writing whatever completes.
	drain := s.drainCh

	if wantsNDJSON(r) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		writable := true
		first := true
		for {
			select {
			case item, ok := <-ch:
				if !ok {
					return
				}
				if !writable {
					continue // client gone: drain the channel, write nothing
				}
				if err := enc.Encode(item); err != nil { // Encode appends the newline framing
					// The client disconnected mid-stream: cancel the
					// remaining members and keep draining the channel (it
					// is buffered for the whole batch, so producers finish
					// regardless) without writing.
					bcancel()
					writable = false
					continue
				}
				if fl != nil {
					fl.Flush()
				}
				if first {
					// Time-to-first-byte of the stream: how long the
					// client waited before pipelining could begin.
					s.streamTTFB.Observe(time.Since(t0))
					first = false
				}
			case <-drain:
				drain = nil
				bcancel()
			}
		}
	}

	items := make([]BatchItem, n)
	for got := 0; got < n; {
		select {
		case item := <-ch:
			items[item.Index] = item
			got++
		case <-drain:
			drain = nil
			bcancel()
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Items: items})
}

// canonScratch is the fused decode path's per-request scratch: a
// reusable streaming canonicalizer plus the cache-key document buffer.
// Pooled, so warm hits allocate no per-request decode state beyond what
// encoding/json itself needs.
type canonScratch struct {
	c   taskgraph.Canonicalizer
	buf []byte
}

var canonPool = sync.Pool{New: func() any { return new(canonScratch) }}

// process turns one wire request into marshaled result bytes: validate,
// maxTopoMemo bounds the parsed-topology memo; real deployments use a
// handful of specs, so overflow means someone is enumerating them.
const maxTopoMemo = 64

// parseTopo resolves a topology spec through the per-server memo: the
// spec's first appearance pays the full parse (routing tables included),
// every later request shares the immutable parsed value.
func (s *Server) parseTopo(spec string) (*topology.Topology, error) {
	s.topoMu.RLock()
	topo, ok := s.topoBySpec[spec]
	s.topoMu.RUnlock()
	if ok {
		return topo, nil
	}
	topo, err := cliutil.ParseTopology(spec)
	if err != nil {
		return nil, err
	}
	s.topoMu.Lock()
	if have, ok := s.topoBySpec[spec]; ok {
		topo = have // lost a parse race; converge on one shared value
	} else if len(s.topoBySpec) < maxTopoMemo {
		s.topoBySpec[spec] = topo
	}
	s.topoMu.Unlock()
	return topo, nil
}

// consult the content-addressed cache tiers fastest-first (memory, then
// the persistent disk tier, then the fleet-shared remote tier — each hit
// promoted into the tiers above it), collapse onto an identical in-flight
// solve when one exists (singleflight), and otherwise run the named
// solver on the worker pool and store the bytes in every tier. The string
// reports how the body was obtained: "hit", "disk", "remote", "miss" or
// "coalesced". defLane is the QoS lane used when the request names none:
// interactive for single schedule calls, batch for batch members.
//
// The graph arrives as raw bytes and is decoded by the fused
// canonicalizer: one pass yields the canonical form and fingerprint the
// cache key hashes, so a warm hit is bounded by that pass plus the
// response write — no *Graph is built and no canonical re-marshal
// happens. The solver-ready Graph materializes inside the cold closure,
// which only runs on a genuine miss (or an explicit nocache solve).
func (s *Server) process(ctx context.Context, req *rawRequest, defLane engine.Lane, meta *procMeta) ([]byte, string, error) {
	if meta == nil {
		meta = &procMeta{}
	}
	tr := obs.FromContext(ctx)
	canonStart := time.Now()
	if len(req.Graph) == 0 || string(req.Graph) == "null" {
		return nil, "", badRequest("missing graph")
	}
	// Graph errors precede the other validations, exactly as they did
	// when the body decode materialized (and validated) the graph before
	// process ever ran — and they carry the same messages. Acyclicity is
	// the one check the canonicalizer defers to materialization: a cyclic
	// graph misses every tier (nothing cyclic was ever cached) and is
	// rejected by the cold closure with the unchanged wrapped message.
	scratch := canonPool.Get().(*canonScratch)
	defer canonPool.Put(scratch)
	if err := scratch.c.Parse(req.Graph); err != nil {
		return nil, "", badRequest("decode request: %v", err)
	}
	if req.Topo == "" {
		return nil, "", badRequest("missing topo spec")
	}
	lane := defLane
	if req.Lane != "" {
		var err error
		if lane, err = engine.ParseLane(req.Lane); err != nil {
			return nil, "", badRequest("%v", err)
		}
	}
	if req.MemberTimeoutMS < 0 {
		return nil, "", badRequest("member_timeout_ms %d is negative", req.MemberTimeoutMS)
	}
	topo, err := s.parseTopo(req.Topo)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	comm := req.Comm.apply(topology.DefaultCommParams())
	if req.NoComm {
		comm = comm.NoComm()
	}
	if err := comm.Validate(); err != nil {
		return nil, "", badRequest("%v", err)
	}

	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.DefaultSolver
	}
	slv, err := solver.Get(solverName)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}

	saOpt := core.DefaultOptions()
	saOpt.Seed = req.Seed
	if req.Wb != nil {
		saOpt.Wb = *req.Wb
		saOpt.Wc = 1 - *req.Wb
	}
	if req.Restarts < 0 || req.Restarts > maxRestarts {
		return nil, "", badRequest("restarts %d out of range [0,%d]", req.Restarts, maxRestarts)
	}
	saOpt.Restarts = req.Restarts
	saOpt.Cooperative = req.Cooperative
	saOpt.Tempering = req.Tempering
	if err := saOpt.Validate(); err != nil {
		return nil, "", badRequest("%v", err)
	}

	kopt := makeKeyOptions(topo.Name(), comm, slv.Name(), saOpt, req.TimeoutMS, req.MemberTimeoutMS)
	key, buf, err := fusedKey(&scratch.c, scratch.buf, kopt)
	scratch.buf = buf
	if err != nil {
		return nil, "", fmt.Errorf("service: cache key: %w", err)
	}
	meta.key = key

	// cold materializes the graph and runs the solver — the only path
	// that pays for a *Graph. It runs at most once per process call (as
	// flight leader, as a waiter retrying a leader's context death, or
	// for a nocache solve), always within this frame, so borrowing the
	// pooled canonicalizer is safe.
	cold := func(ctx context.Context) ([]byte, error) {
		g, err := scratch.c.Graph()
		if err != nil {
			return nil, badRequest("decode request: %v", err)
		}
		sreq := solver.Request{Graph: g, Topo: topo, Comm: comm, SA: saOpt}
		sreq.Portfolio.MemberTimeout = time.Duration(req.MemberTimeoutMS) * time.Millisecond
		if err := sreq.Validate(); err != nil {
			return nil, badRequest("%v", err)
		}
		// SA solves feed the similarity index (when cacheable): the entry
		// carries the sketch, the canonical graph bytes and the cold option
		// block, everything a later near-miss or delta edit needs to seed
		// from this result.
		var idx *simEntry
		if s.sim != nil && slv.Name() == "sa" && !req.NoCache {
			idx = &simEntry{Topo: kopt.Topo, Spec: req.Topo, Sketch: scratch.c.Sketch(),
				Graph: scratch.c.AppendCanonicalJSON(nil), Opt: kopt,
				NumTasks: scratch.c.NumTasks()}
		}
		return s.solve(ctx, slv, sreq, req.TimeoutMS, topo.Name(), key, lane, idx)
	}
	if tr != nil {
		tr.Observe(obs.StageCanonicalize, canonStart, time.Since(canonStart),
			obs.KV{Key: "solver", Val: slv.Name()}, obs.KV{Key: "lane", Val: lane.String()})
		tr.Annotate("solver", slv.Name())
		tr.Annotate("lane", lane.String())
	}
	if !req.NoCache {
		// Singleflight: the in-flight check and the cache consult happen
		// under one lock, ordered against the leader's cache.Put (inside
		// solve) happening before its inflight delete (deferred): a
		// request that finds no flight either hits the filled cache or
		// becomes the new leader — it can never re-solve a key whose
		// leader just finished. NoCache requests opt out — they
		// explicitly asked for their own solve.
		memStart := time.Now()
		s.mu.Lock()
		if f, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			tr.Observe(obs.StageMemTier, memStart, time.Since(memStart))
			sfStart := time.Now()
			select {
			case <-f.done:
				tr.Observe(obs.StageSingleflight, sfStart, time.Since(sfStart))
				if f.err != nil {
					if isLeaderContextError(f.err) {
						// The leader died of its own context (client
						// disconnect, per-request deadline) — a verdict
						// about the leader's connection, not this
						// waiter's. Solve independently under our own
						// context instead of propagating it.
						body, err := cold(ctx)
						return body, "miss", err
					}
					return nil, "", f.err
				}
				// The coalesced ride is counted by the handler's account()
				// on the successful replay, never here: a waiter that falls
				// through to its own solve, inherits the leader's failure,
				// or times out below must not contribute one, or the
				// conservation law (coalesced rides are answered items)
				// would overcount.
				if f.addr != "" {
					meta.key = f.addr
				}
				meta.warm, meta.warmDist = f.warm, f.warmDist
				return f.body, "coalesced", nil
			case <-ctx.Done():
				return nil, "", &httpError{status: http.StatusServiceUnavailable,
					msg: fmt.Sprintf("service: coalesced wait: %v", ctx.Err())}
			}
		}
		if body, ok := s.cache.Get(key); ok {
			s.mu.Unlock()
			tr.Observe(obs.StageMemTier, memStart, time.Since(memStart))
			return body, "hit", nil
		}
		// err is pre-set so that a leader that dies without filling the
		// flight (e.g. a panic unwinding through the handler) fails its
		// waiters instead of handing them an empty 200.
		f := &flight{done: make(chan struct{}),
			err: &httpError{status: http.StatusInternalServerError, msg: "service: in-flight solve abandoned"}}
		s.inflight[key] = f
		s.mu.Unlock()
		tr.Observe(obs.StageMemTier, memStart, time.Since(memStart))
		defer func() {
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			close(f.done)
		}()
		// Disk consult happens as the flight leader, outside the server
		// lock (it reads a file): concurrent identical requests coalesce
		// onto one disk read exactly as they would onto one solve. A hit
		// is promoted into the memory tier so the next request for this
		// key never touches the disk.
		diskStart := time.Now()
		body, ok := s.disk.Get(key)
		diskDur := time.Since(diskStart)
		// Observed through the chaos seam, so injected read faults show
		// up in the read-latency distribution like real ones.
		s.diskRead.Observe(diskDur)
		tr.Observe(obs.StageDiskTier, diskStart, diskDur)
		if ok {
			s.cache.Put(key, body)
			f.body, f.err, f.addr = body, nil, key
			return body, "disk", nil
		}
		// Remote consult, still as the flight leader: one network round
		// trip per fleet-cold key per replica, coalesced for everyone
		// behind it. A hit is promoted into both local tiers so the next
		// request never leaves the process; every failure mode inside the
		// tier degrades to a counted miss. The stage is recorded only when
		// a remote rung actually exists, so single-node traces keep their
		// historical shape.
		if s.remoteOn {
			remoteStart := time.Now()
			body, ok = s.remote.Get(key)
			remoteDur := time.Since(remoteStart)
			s.remoteRead.Observe(remoteDur)
			tr.Observe(obs.StageRemoteTier, remoteStart, remoteDur)
			if ok {
				s.cache.Put(key, body)
				s.disk.Put(key, body)
				f.body, f.err, f.addr = body, nil, key
				return body, "remote", nil
			}
		}
		// Every exact tier missed: before paying for a cold solve, try to
		// warm-start from a cached near-miss (or the delta endpoint's
		// explicit base). The warm path answers the flight too, so
		// coalesced waiters replay the warm bytes and headers.
		if body, tag, handled, werr := s.warmAttempt(ctx, scratch, req, kopt, key,
			meta, topo, comm, saOpt, slv, lane); handled {
			f.body, f.err = body, werr
			f.addr, f.warm, f.warmDist = meta.key, meta.warm, meta.warmDist
			return body, tag, werr
		}
		body, err := cold(ctx)
		f.body, f.err, f.addr = body, err, key
		return body, "miss", err
	}
	body, err := cold(ctx)
	return body, "miss", err
}

// isLeaderContextError reports whether a flight failed because the
// leader's own context ended: a 504 (solve interrupted by its deadline),
// a 499 (the leader's client went away mid-solve), or a 503 (never got a
// worker before its context expired). Waiters retry those under their own
// contexts. A 429 is deliberately not retried: admission control shed the
// key because the service is overloaded, and waiters re-solving would
// manufacture exactly the load the shed refused.
func isLeaderContextError(err error) bool {
	var he *httpError
	if !errors.As(err, &he) {
		return false
	}
	return he.status == http.StatusGatewayTimeout || he.status == statusClientClosedRequest ||
		(he.status == http.StatusServiceUnavailable && he.retryAfter == 0)
}

// solve runs one cold request on the engine (whose worker hands the
// solver its owned simulator arena and pooled scheduler), marshals the
// wire result, records the solve latency, and stores cacheable bodies.
// idx, when non-nil, is the similarity-index entry to register when the
// body is cached (the entry's Key is stamped with the storage key here,
// so warm solves index under their warm address).
func (s *Server) solve(ctx context.Context, slv solver.Solver, sreq solver.Request,
	timeoutMS int, topoName, key string, lane engine.Lane, idx *simEntry) ([]byte, error) {

	deadlined := false
	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
		defer cancel()
		deadlined = true
	} else if s.cfg.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
		defer cancel()
		deadlined = true
	}

	start := time.Now()
	res, err := s.eng.Solve(ctx, engine.Job{Solver: slv, Req: sreq, Lane: lane})
	if err != nil {
		var ov *engine.OverloadError
		if errors.As(err, &ov) {
			// Admission control refused the job: a structured 429 telling
			// the client when to come back. Not a solver outcome — the
			// solver never ran and the shed has its own counter.
			s.mu.Lock()
			s.shed++
			s.mu.Unlock()
			return nil, &httpError{status: http.StatusTooManyRequests,
				msg: "service: " + err.Error(), retryAfter: ov.RetryAfter}
		}
		s.mu.Lock()
		s.solveErrors[slv.Name()]++
		// A cancelled caller (client disconnect, batch drain) is a
		// cancellation wherever it surfaced — still queued or mid-solve.
		// Deadline expiries are deliberately not counted here: the request
		// ran out its budget, nobody abandoned it.
		if errors.Is(err, context.Canceled) {
			s.cancelled++
		}
		s.mu.Unlock()
		if errors.Is(err, engine.ErrQueueTimeout) || errors.Is(err, engine.ErrClosed) {
			// The job never ran: a capacity verdict, not a solve verdict.
			return nil, &httpError{status: http.StatusServiceUnavailable, msg: "service: " + err.Error()}
		}
		status := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		} else if errors.Is(err, context.Canceled) {
			status = statusClientClosedRequest
		}
		return nil, &httpError{status: status, msg: err.Error()}
	}
	marshalStart := time.Now()
	wire, err := ResultFromSim(res, sreq.Graph, topoName)
	if err != nil {
		return nil, &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	if tr := obs.FromContext(ctx); tr != nil {
		tr.Observe(obs.StageMarshal, marshalStart, time.Since(marshalStart))
	}

	// A timing-dependent result — a portfolio raced against the request
	// deadline, or one resolved by lower-bound early cancellation or
	// member pruning (Result.Raced) — depends on which members beat the
	// clock, not just on the payload. Caching it would replay a timing
	// fact to every future caller of the key, so only deterministic
	// results are memoized.
	if !(deadlined && slv.Name() == "portfolio") && !res.Raced {
		s.cache.Put(key, body)
		// Persist through the write-behind queues: the disk write happens
		// on the disk tier's writer goroutine and the remote publish on
		// the remote tier's, never on this hot path. Publishing to the
		// shared daemon is what turns this replica's cold solve into
		// every other replica's "remote" hit.
		s.disk.Put(key, body)
		s.remote.Put(key, body)
		// Index cached bodies only: a similarity entry whose body is in no
		// tier can seed nothing.
		if idx != nil {
			idx.Key = key
			s.sim.Add(*idx)
		}
	}
	// Observed only for completed solves, so queue-timeout artifacts never
	// pollute the latency distribution. The solves counter itself moved
	// into account(): it increments with the item count, in one critical
	// section, so the conservation law holds on any snapshot.
	s.solveLatency.Observe(time.Since(start))
	s.mu.Lock()
	s.pruned += uint64(res.Pruned)
	s.restartsAbandoned += uint64(res.RestartsAbandoned)
	s.boundUpdates += uint64(res.BoundUpdates)
	if sreq.SA.Warm != nil {
		s.warmHits++
		s.warmEpochsSaved += uint64(res.WarmEpochsSaved)
	}
	s.bySolver[slv.Name()]++
	for _, m := range res.Members {
		s.memberOutcomes[m.Member+"|"+m.Outcome]++
	}
	s.mu.Unlock()
	return body, nil
}
