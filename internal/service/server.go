package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/solver"
	"repro/internal/topology"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent solves; <= 0 means one per CPU.
	Workers int
	// CacheSize is the result cache capacity in entries; <= 0 disables
	// caching.
	CacheSize int
	// CacheBytes bounds the cache's stored-bytes footprint; <= 0 means
	// 256 MiB.
	CacheBytes int64
	// CacheDir roots the persistent disk cache tier: a restarted server
	// pointed at the same directory replays previously solved graphs
	// from disk without re-solving. Empty disables the tier
	// (memory-only, the prior behavior).
	CacheDir string
	// DiskCacheBytes bounds the disk tier's on-disk footprint; <= 0
	// means 1 GiB. Ignored when CacheDir is empty.
	DiskCacheBytes int64
	// DefaultSolver answers requests that name none; empty means "sa".
	DefaultSolver string
	// DefaultTimeout bounds solves that request no timeout; 0 means none.
	DefaultTimeout time.Duration
	// MaxBatch caps the requests of one batch call; <= 0 means 256.
	MaxBatch int
	// Logger receives one line per request; nil disables request logging.
	Logger *log.Logger
}

// Server owns the solver pool, the result cache and the request counters
// behind the HTTP API. Create with New, expose with Handler, stop with
// Close.
type Server struct {
	cfg          Config
	pool         *Pool
	cache        *Cache
	disk         *DiskCache
	solveLatency *histogram

	mu        sync.Mutex
	requests  uint64             // API calls that reached a handler
	failures  uint64             // requests answered with a non-2xx status
	solves    uint64             // solver executions (cache misses)
	coalesced uint64             // requests that piggybacked on an in-flight solve
	bySolver  map[string]uint64  // solves by registry name
	inflight  map[string]*flight // singleflight: one solve per cache key
}

// flight is one in-flight solve that concurrent identical requests wait
// on: the leader fills body/err and closes done; every waiter then
// replays the same bytes.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// Stats is the /statsz payload. For successful schedule requests the
// counters obey the conservation law
//
//	solves + cache.hits + disk.hits + coalesced == requests
//
// every answered request is exactly one of: a solver execution, a memory
// hit, a disk hit, or a ride on an identical in-flight solve.
type Stats struct {
	Requests  uint64            `json:"requests"`
	Failures  uint64            `json:"failures"`
	Solves    uint64            `json:"solves"`
	Coalesced uint64            `json:"coalesced"`
	BySolver  map[string]uint64 `json:"by_solver"`
	Cache     CacheStats        `json:"cache"`
	Disk      DiskCacheStats    `json:"disk"`
	Pool      PoolStats         `json:"pool"`
}

// New validates the configuration and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.DefaultSolver == "" {
		cfg.DefaultSolver = "sa"
	}
	if _, err := solver.Get(cfg.DefaultSolver); err != nil {
		return nil, fmt.Errorf("service: default solver: %w", err)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	var disk *DiskCache
	if cfg.CacheDir != "" {
		var err error
		disk, err = NewDiskCache(cfg.CacheDir, cfg.DiskCacheBytes)
		if err != nil {
			return nil, fmt.Errorf("service: disk cache: %w", err)
		}
	}
	return &Server{
		cfg:          cfg,
		pool:         NewPool(cfg.Workers),
		cache:        NewCache(cfg.CacheSize, cfg.CacheBytes),
		disk:         disk,
		solveLatency: newHistogram(),
		bySolver:     make(map[string]uint64),
		inflight:     make(map[string]*flight),
	}, nil
}

// Close stops the worker pool and drains the disk tier's write-behind
// queue, so every result accepted for persistence is durable before
// Close returns. In-flight solves finish first.
func (s *Server) Close() {
	s.pool.Close()
	s.disk.Close()
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	by := make(map[string]uint64, len(s.bySolver))
	for k, v := range s.bySolver {
		by[k] = v
	}
	return Stats{
		Requests:  s.requests,
		Failures:  s.failures,
		Solves:    s.solves,
		Coalesced: s.coalesced,
		BySolver:  by,
		Cache:     s.cache.Stats(),
		Disk:      s.disk.Stats(),
		Pool:      s.pool.Stats(),
	}
}

// Handler returns the service's HTTP handler with request logging wired
// around every route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/schedule/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logged(mux)
}

// httpError carries a status code with a client-safe message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// statusWriter records the status code written by a handler for logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logged counts every request and, with a configured logger, prints one
// line per call: method, path, status, duration.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.mu.Lock()
		s.requests++
		if sw.status >= 400 {
			s.failures++
		}
		s.mu.Unlock()
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s %d %s cache=%s",
				r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond),
				sw.Header().Get("X-DTServe-Cache"))
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	if !errors.As(err, &he) {
		he = &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	writeJSON(w, he.status, ErrorResponse{Error: he.msg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Default string        `json:"default"`
		Solvers []solver.Info `json:"solvers"`
	}{s.cfg.DefaultSolver, solver.List()})
}

const maxBodyBytes = 32 << 20

// maxRestarts caps the wire restarts knob: each restart clones the
// annealing packet and runs on its own goroutine per epoch, so an
// unbounded value would let one request exhaust the process.
const maxRestarts = 64

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, badRequest("decode request: %v", err))
		return
	}
	body, status, err := s.process(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-DTServe-Cache", status)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&batch); err != nil {
		writeError(w, badRequest("decode batch: %v", err))
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, badRequest("empty batch"))
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		writeError(w, badRequest("batch of %d exceeds the limit of %d", len(batch.Requests), s.cfg.MaxBatch))
		return
	}
	items := make([]BatchItem, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := s.process(r.Context(), &batch.Requests[i])
			if err != nil {
				items[i].Error = err.Error()
				return
			}
			items[i].Result = body
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchResponse{Items: items})
}

// process turns one wire request into marshaled result bytes: validate,
// consult the content-addressed cache tiers fastest-first (memory, then
// the persistent disk tier — a disk hit is promoted into memory),
// collapse onto an identical in-flight solve when one exists
// (singleflight), and otherwise run the named solver on the worker pool
// and store the bytes in every tier. The string reports how the body was
// obtained: "hit", "disk", "miss" or "coalesced".
func (s *Server) process(ctx context.Context, req *ScheduleRequest) ([]byte, string, error) {
	if req.Graph == nil {
		return nil, "", badRequest("missing graph")
	}
	if req.Topo == "" {
		return nil, "", badRequest("missing topo spec")
	}
	topo, err := cliutil.ParseTopology(req.Topo)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	comm := req.Comm.apply(topology.DefaultCommParams())
	if req.NoComm {
		comm = comm.NoComm()
	}
	if err := comm.Validate(); err != nil {
		return nil, "", badRequest("%v", err)
	}

	solverName := req.Solver
	if solverName == "" {
		solverName = s.cfg.DefaultSolver
	}
	slv, err := solver.Get(solverName)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}

	saOpt := core.DefaultOptions()
	saOpt.Seed = req.Seed
	if req.Wb != nil {
		saOpt.Wb = *req.Wb
		saOpt.Wc = 1 - *req.Wb
	}
	if req.Restarts < 0 || req.Restarts > maxRestarts {
		return nil, "", badRequest("restarts %d out of range [0,%d]", req.Restarts, maxRestarts)
	}
	saOpt.Restarts = req.Restarts
	if err := saOpt.Validate(); err != nil {
		return nil, "", badRequest("%v", err)
	}

	sreq := solver.Request{Graph: req.Graph, Topo: topo, Comm: comm, SA: saOpt}
	if err := sreq.Validate(); err != nil {
		return nil, "", badRequest("%v", err)
	}

	key, err := cacheKey(req.Graph, topo.Name(), comm, slv.Name(), saOpt, req.TimeoutMS)
	if err != nil {
		return nil, "", fmt.Errorf("service: cache key: %w", err)
	}
	if !req.NoCache {
		// Singleflight: the in-flight check and the cache consult happen
		// under one lock, ordered against the leader's cache.Put (inside
		// solve) happening before its inflight delete (deferred): a
		// request that finds no flight either hits the filled cache or
		// becomes the new leader — it can never re-solve a key whose
		// leader just finished. NoCache requests opt out — they
		// explicitly asked for their own solve.
		s.mu.Lock()
		if f, ok := s.inflight[key]; ok {
			s.coalesced++
			s.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					if isLeaderContextError(f.err) {
						// The leader died of its own context (client
						// disconnect, per-request deadline) — a verdict
						// about the leader's connection, not this
						// waiter's. Solve independently under our own
						// context instead of propagating it.
						body, err := s.solve(ctx, slv, sreq, req, topo.Name(), key)
						return body, "miss", err
					}
					return nil, "", f.err
				}
				return f.body, "coalesced", nil
			case <-ctx.Done():
				return nil, "", &httpError{status: http.StatusServiceUnavailable,
					msg: fmt.Sprintf("service: coalesced wait: %v", ctx.Err())}
			}
		}
		if body, ok := s.cache.Get(key); ok {
			s.mu.Unlock()
			return body, "hit", nil
		}
		// err is pre-set so that a leader that dies without filling the
		// flight (e.g. a panic unwinding through the handler) fails its
		// waiters instead of handing them an empty 200.
		f := &flight{done: make(chan struct{}),
			err: &httpError{status: http.StatusInternalServerError, msg: "service: in-flight solve abandoned"}}
		s.inflight[key] = f
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
			close(f.done)
		}()
		// Disk consult happens as the flight leader, outside the server
		// lock (it reads a file): concurrent identical requests coalesce
		// onto one disk read exactly as they would onto one solve. A hit
		// is promoted into the memory tier so the next request for this
		// key never touches the disk.
		if body, ok := s.disk.Get(key); ok {
			s.cache.Put(key, body)
			f.body, f.err = body, nil
			return body, "disk", nil
		}
		body, err := s.solve(ctx, slv, sreq, req, topo.Name(), key)
		f.body, f.err = body, err
		return body, "miss", err
	}
	body, err := s.solve(ctx, slv, sreq, req, topo.Name(), key)
	return body, "miss", err
}

// isLeaderContextError reports whether a flight failed because the
// leader's own context ended: a 504 (solve interrupted by
// cancellation/deadline) or a 503 (never got a worker before its context
// expired). Waiters retry those under their own contexts.
func isLeaderContextError(err error) bool {
	var he *httpError
	if !errors.As(err, &he) {
		return false
	}
	return he.status == http.StatusGatewayTimeout || he.status == http.StatusServiceUnavailable
}

// solve runs one cold request on the worker pool (reusing the worker's
// simulator arena), marshals the wire result, records the solve latency,
// and stores cacheable bodies.
func (s *Server) solve(ctx context.Context, slv solver.Solver, sreq solver.Request,
	req *ScheduleRequest, topoName, key string) ([]byte, error) {

	deadlined := false
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
		deadlined = true
	} else if s.cfg.DefaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultTimeout)
		defer cancel()
		deadlined = true
	}

	var body []byte
	var solveErr error
	raced := false
	start := time.Now()
	runErr := s.pool.Run(ctx, func(sim *machsim.Simulator) {
		sreq.Arena = sim
		res, err := slv.Solve(ctx, sreq)
		if err != nil {
			solveErr = err
			return
		}
		raced = res.Raced
		wire, err := ResultFromSim(res, req.Graph, topoName)
		if err != nil {
			solveErr = err
			return
		}
		body, solveErr = json.Marshal(wire)
	})
	if runErr != nil {
		return nil, &httpError{status: http.StatusServiceUnavailable, msg: runErr.Error()}
	}
	if solveErr != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(solveErr, context.DeadlineExceeded) || errors.Is(solveErr, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		return nil, &httpError{status: status, msg: solveErr.Error()}
	}

	// A timing-dependent result — a portfolio raced against the request
	// deadline, or one resolved by lower-bound early cancellation
	// (Result.Raced) — depends on which members beat the clock, not just
	// on the payload. Caching it would replay a timing fact to every
	// future caller of the key, so only deterministic results are
	// memoized.
	if !(deadlined && slv.Name() == "portfolio") && !raced {
		s.cache.Put(key, body)
		// Persist through the write-behind queue: the disk write happens
		// on the disk tier's writer goroutine, never on this hot path.
		s.disk.Put(key, body)
	}
	// Observed only for completed solves, so the histogram count equals
	// dtserve_solves_total and queue-timeout artifacts never pollute the
	// latency distribution.
	s.solveLatency.Observe(time.Since(start))
	s.mu.Lock()
	s.solves++
	s.bySolver[slv.Name()]++
	s.mu.Unlock()
	return body, nil
}
