package service

import (
	"container/list"
	"sync"
)

// Tier is one level of the content-addressed result cache: a byte store
// mapping a cache key (the request's content address) to the exact
// response bytes. The server consults tiers fastest-first — memory, then
// disk — promoting hits upward and populating every tier on a solve.
// Implementations must be safe for concurrent use, tolerate a nil
// receiver as a disabled (always-miss, never-store) tier, and must never
// return bytes other than those stored under the key: a tier that cannot
// guarantee integrity (e.g. persistent storage that may corrupt) must
// verify on read and report a miss instead.
type Tier interface {
	// Get returns the stored bytes for key and whether they were
	// present. Callers must not modify the returned slice.
	Get(key string) ([]byte, bool)
	// Put stores val under key, evicting as needed. It must not block on
	// slow media — persistence is expected to be write-behind.
	Put(key string, val []byte)
}

var (
	_ Tier = (*Cache)(nil)
	_ Tier = (*DiskCache)(nil)
)

// Cache is a bounded, content-addressed LRU of marshaled results. Values
// are the exact response bytes, so a hit replays a byte-identical body
// without re-marshaling (and without re-solving). Safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	max       int
	maxBytes  int64
	bytes     int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// defaultMaxBytes bounds the cache's stored-bytes footprint when the
// caller gives no byte budget: entries alone are no bound, because a
// single large-graph response runs to megabytes.
const defaultMaxBytes = 256 << 20

// NewCache returns an LRU holding at most max entries and maxBytes stored
// bytes (maxBytes <= 0 means a 256 MiB default); max <= 0 returns nil,
// which every method treats as a disabled (always-miss, never-store)
// cache.
func NewCache(max int, maxBytes int64) *Cache {
	if max <= 0 {
		return nil
	}
	if maxBytes <= 0 {
		maxBytes = defaultMaxBytes
	}
	return &Cache{max: max, maxBytes: maxBytes, ll: list.New(), items: make(map[string]*list.Element, max)}
}

// Get returns the cached bytes for key and whether they were present,
// updating recency and the hit/miss counters. Callers must not modify the
// returned slice.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting least recently used entries while
// either the entry or the byte bound is exceeded. Storing an existing key
// refreshes its value and recency.
func (c *Cache) Put(key string, val []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	// The newest entry is never evicted, even when it alone exceeds the
	// byte budget — a result that was worth solving is worth returning.
	for c.ll.Len() > 1 && (c.ll.Len() > c.max || c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Max       int    `json:"max"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// Stats returns the current counters (zero-valued for a disabled cache).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Max:       c.max,
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}
