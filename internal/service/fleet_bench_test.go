package service

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"repro/internal/proxy"
)

// BenchmarkFleetWarmHit: the fleet-wide warm-hit floor — one request
// through dtproxy (fingerprint route) into the owning replica's memory
// tier. Relative to BenchmarkWarmHitHTTP this adds the proxy's zero-copy
// canonicalize/route step and one real loopback HTTP hop; it is the
// per-request cost ceiling of scaling out.
func BenchmarkFleetWarmHit(b *testing.B) {
	fleet, err := RunFleet(FleetConfig{
		Replicas: 2,
		Server:   Config{CacheSize: 64},
		Proxy:    proxy.Config{HedgeDelay: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()

	payload := benchPayload(b, false)
	client := &http.Client{}
	post := func() {
		resp, err := client.Post(fleet.ProxyURL+"/v1/schedule", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	post() // warm: the owner solves once; every timed request is a hit

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
	b.StopTimer()
	if fs := fleet.Stats(); fs.Solves != 1 {
		b.Fatalf("fleet solved %d times during a warm-hit benchmark", fs.Solves)
	}
}
