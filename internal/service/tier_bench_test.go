package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cliutil"
)

// The tier ladder: one benchmark per way a schedule request can be
// answered, POSTed over real HTTP so the numbers are end-to-end
// (§8 of PERFORMANCE.md quotes them). Cold uses the cheap hlf solver, so
// the gap shown is the serving floor — an annealing solve is orders of
// magnitude above it.

func benchPayload(b *testing.B, nocache bool) []byte {
	b.Helper()
	g, err := cliutil.BuildProgram("FFT")
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(ScheduleRequest{
		Graph: g, Topo: "hypercube:3", Solver: "hlf", NoCache: nocache,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func benchPost(b *testing.B, url string, payload []byte, wantStatus string) {
	b.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-DTServe-Cache"); got != wantStatus {
		b.Fatalf("cache status %q, want %q", got, wantStatus)
	}
}

// BenchmarkServeMemoryHit: warm key answered from the in-memory LRU.
func BenchmarkServeMemoryHit(b *testing.B) {
	svc, err := New(Config{CacheSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	payload := benchPayload(b, false)
	benchPost(b, ts.URL+"/v1/schedule", payload, "miss") // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/schedule", payload, "hit")
	}
}

// BenchmarkWarmHitHTTP: the warm-hit floor without the loopback-TCP tax —
// the request goes straight into the HTTP handler with an in-process
// recorder, so the number is decode + fused canonicalize/key + memory-tier
// get + response write. This is the path the zero-copy wire work bounds:
// allocations here are the request's true steady-state cost.
func BenchmarkWarmHitHTTP(b *testing.B) {
	svc, err := New(Config{CacheSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	h := svc.Handler()
	payload := benchPayload(b, false)
	warm := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(payload))
	wrec := httptest.NewRecorder()
	h.ServeHTTP(wrec, warm)
	if wrec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", wrec.Code, wrec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
		if got := rec.Header().Get("X-DTServe-Cache"); got != "hit" {
			b.Fatalf("cache status %q, want \"hit\"", got)
		}
	}
}

// BenchmarkServeDiskHit: warm key answered from the persistent tier
// (memory tier disabled so every request reads, verifies and decodes the
// on-disk entry).
func BenchmarkServeDiskHit(b *testing.B) {
	svc, err := New(Config{CacheSize: 0, CacheDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	payload := benchPayload(b, false)
	benchPost(b, ts.URL+"/v1/schedule", payload, "miss")
	// The write is behind a queue; wait for durability before timing.
	for deadline := time.Now().Add(5 * time.Second); ; {
		st := svc.disk.Stats()
		if st.Writes >= 1 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("disk write never landed: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/schedule", payload, "disk")
	}
}

// The direct tier costs, without the ~1 ms loopback-HTTP floor that
// dominates the Serve* numbers above.

func BenchmarkMemoryTierGet(b *testing.B) {
	c := NewCache(16, 0)
	val := bytes.Repeat([]byte("x"), 8<<10) // ~a wire Result body
	c.Put("k", val)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("k"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkDiskTierGet(b *testing.B) {
	d, err := NewDiskCache(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	val := bytes.Repeat([]byte("x"), 8<<10)
	d.Put("ab01", val)
	for deadline := time.Now().Add(5 * time.Second); d.Stats().Writes < 1; {
		if time.Now().After(deadline) {
			b.Fatal("write never landed")
		}
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Get("ab01"); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkServeColdSolve: every request runs the (cheap) hlf solver.
func BenchmarkServeColdSolve(b *testing.B) {
	svc, err := New(Config{CacheSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	payload := benchPayload(b, true) // NoCache: solve every time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/schedule", payload, "miss")
	}
}
