package service

import (
	"sync"
	"time"

	"repro/internal/remotecache"
)

// RemoteTier is the capability the server requires of the shared remote
// cache tier — the fleet-wide dtcached daemon consulted between a disk
// miss and a cold solve. *RemoteCache is the production implementation
// (a nil *RemoteCache is the valid no-op tier, mirroring *DiskCache);
// the fault-injection harness wraps one through Config.WrapRemoteTier.
type RemoteTier interface {
	Tier
	Stats() RemoteCacheStats
	Close()
}

// RemoteCacheStats is a point-in-time snapshot of the remote tier
// counters on the replica side. Every failure mode — network error,
// daemon error reply, checksum mismatch, dropped write-behind put —
// lands in Errors (Corrupt additionally singles out checksum failures),
// and each one degraded to a miss or a dropped write: the tier is
// best-effort by contract and never fails a request.
type RemoteCacheStats struct {
	Enabled bool   `json:"enabled"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Errors  uint64 `json:"errors"`
	Corrupt uint64 `json:"corrupt"`
}

// remoteWriteQueue bounds the write-behind backlog, same contract as the
// disk tier: a full queue drops the write (counted in Errors) instead of
// stalling a solve.
const remoteWriteQueue = 256

// RemoteCache is the replica-side remote tier: a thin accounting layer
// over the remotecache client. Gets are synchronous (the caller is the
// flight leader, already off every other request's path); Puts are
// write-behind on a single writer goroutine. All failures degrade: a
// remote tier outage makes every consult a counted miss and the ladder
// falls through to the local solve.
type RemoteCache struct {
	client *remotecache.Client

	mu     sync.Mutex
	stats  RemoteCacheStats
	closed bool

	jobs chan remoteWrite
	wg   sync.WaitGroup
}

type remoteWrite struct {
	key string
	val []byte
}

// NewRemoteCache returns a remote tier talking to the dtcached daemon at
// addr. No connection is made until the first op, so a daemon that is
// down at startup costs nothing until the ladder consults it (and then
// costs one counted error per consult).
func NewRemoteCache(addr string, timeout time.Duration) *RemoteCache {
	r := &RemoteCache{
		client: remotecache.NewClient(remotecache.ClientConfig{Addr: addr, Timeout: timeout}),
		jobs:   make(chan remoteWrite, remoteWriteQueue),
	}
	r.stats.Enabled = true
	r.wg.Add(1)
	go r.writer()
	return r
}

// Get consults the daemon. Corrupt or truncated values fail the client's
// seal check and come back as counted misses — never served.
func (r *RemoteCache) Get(key string) ([]byte, bool) {
	if r == nil {
		return nil, false
	}
	body, ok, err := r.client.Get(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.stats.Errors++
		if err == remotecache.ErrCorrupt {
			r.stats.Corrupt++
		}
		r.stats.Misses++
		return nil, false
	}
	if !ok {
		r.stats.Misses++
		return nil, false
	}
	r.stats.Hits++
	return body, true
}

// Put schedules val to be stored under key and returns immediately; the
// writer goroutine performs the round trip off the solve hot path. A
// full queue or closed tier drops the write.
func (r *RemoteCache) Put(key string, val []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	select {
	case r.jobs <- remoteWrite{key: key, val: val}:
	default:
		r.stats.Errors++ // backlogged writer: best-effort tier drops the write
	}
}

func (r *RemoteCache) writer() {
	defer r.wg.Done()
	for job := range r.jobs {
		err := r.client.Put(job.key, job.val)
		r.mu.Lock()
		if err != nil {
			r.stats.Errors++
		} else {
			r.stats.Puts++
		}
		r.mu.Unlock()
	}
}

// Stats returns the current counters (zero-valued for a disabled tier).
func (r *RemoteCache) Stats() RemoteCacheStats {
	if r == nil {
		return RemoteCacheStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close drains the write-behind queue and drops pooled connections:
// after Close returns, every accepted Put has been offered to the daemon
// (successfully or as a counted error). Idempotent.
func (r *RemoteCache) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.jobs)
	r.wg.Wait()
	r.client.Close()
}
