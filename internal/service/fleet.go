package service

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/proxy"
	"repro/internal/remotecache"
)

// FleetConfig drives RunFleet: an in-process replica fleet — one shared
// dtcached daemon, N dtserve replicas pointed at it, and a dtproxy
// routing front — all on loopback listeners. It exists so tests (and
// dtexp -lg-fleet) can prove fleet-wide properties without shelling out
// to binaries: fleet-wide singleflight, cross-replica remote hits, the
// extended conservation law on every replica, and proxy
// ejection/readmission when a replica dies.
type FleetConfig struct {
	// Replicas is the dtserve replica count; <= 0 means 2.
	Replicas int
	// Server is the per-replica base config. RemoteAddr is overwritten to
	// point at the fleet's own dtcached; everything else is applied as
	// given to every replica.
	Server Config
	// Proxy is the routing-front config. Replicas is overwritten with the
	// fleet's replica URLs. Tests that assert exact solve counts should
	// set HedgeDelay < 0 — a fired hedge can duplicate a cold solve by
	// design.
	Proxy proxy.Config
	// CachedMaxBytes is the shared daemon's value-byte budget; <= 0 means
	// the remotecache default (256 MiB).
	CachedMaxBytes int64
}

// FleetReplica is one dtserve member of an in-process fleet. Server
// stays warm across StopReplica/RestartReplica — only the HTTP listener
// dies, which is exactly what a crashed-then-restarted process looks
// like to the proxy while keeping counters inspectable.
type FleetReplica struct {
	Server *Server
	URL    string

	addr    string // pinned loopback addr so a restart rebinds the same port
	httpSrv *http.Server
	ln      net.Listener
}

// Fleet is a running in-process fleet. Route traffic at ProxyURL; poke
// individual replicas at Replicas[i].URL; stop everything with Close.
type Fleet struct {
	Cached     *remotecache.Server
	CachedAddr string
	Replicas   []*FleetReplica
	Proxy      *proxy.Proxy
	ProxyURL   string

	proxySrv *http.Server
	proxyLn  net.Listener
}

// RunFleet starts the daemon, the replicas and the proxy, in that order,
// each on an OS-assigned loopback port. On error everything already
// started is torn down.
func RunFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	f := &Fleet{}

	cachedLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: dtcached listen: %w", err)
	}
	f.Cached = remotecache.NewServer(remotecache.ServerConfig{MaxBytes: cfg.CachedMaxBytes})
	f.CachedAddr = cachedLn.Addr().String()
	go f.Cached.Serve(cachedLn)

	urls := make([]string, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		rcfg := cfg.Server
		rcfg.RemoteAddr = f.CachedAddr
		svc, err := New(rcfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			f.Close()
			return nil, fmt.Errorf("fleet: replica %d listen: %w", i, err)
		}
		rep := &FleetReplica{
			Server:  svc,
			addr:    ln.Addr().String(),
			URL:     "http://" + ln.Addr().String(),
			ln:      ln,
			httpSrv: &http.Server{Handler: svc.Handler()},
		}
		go rep.httpSrv.Serve(ln)
		f.Replicas = append(f.Replicas, rep)
		urls = append(urls, rep.URL)
	}

	pcfg := cfg.Proxy
	pcfg.Replicas = urls
	p, err := proxy.New(pcfg)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: proxy: %w", err)
	}
	f.Proxy = p
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: proxy listen: %w", err)
	}
	f.proxyLn = proxyLn
	f.ProxyURL = "http://" + proxyLn.Addr().String()
	f.proxySrv = &http.Server{Handler: p.Handler()}
	go f.proxySrv.Serve(proxyLn)
	return f, nil
}

// StopReplica kills replica i's HTTP front — in-flight and future
// connections fail with transport errors, exactly like a crashed
// process — while its Server (and counters) stay warm for inspection
// and a later RestartReplica.
func (f *Fleet) StopReplica(i int) error {
	rep := f.Replicas[i]
	if rep.httpSrv == nil {
		return nil
	}
	err := rep.httpSrv.Close()
	rep.httpSrv = nil
	rep.ln = nil
	return err
}

// RestartReplica rebinds replica i's pinned address and serves again, so
// the proxy's health probes can readmit it. The port was OS-assigned at
// RunFleet but is ours again immediately on loopback; a straggling
// TIME_WAIT gets a short retry.
func (f *Fleet) RestartReplica(i int) error {
	rep := f.Replicas[i]
	if rep.httpSrv != nil {
		return nil
	}
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", rep.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("fleet: rebind %s: %w", rep.addr, err)
	}
	rep.ln = ln
	rep.httpSrv = &http.Server{Handler: rep.Server.Handler()}
	go rep.httpSrv.Serve(ln)
	return nil
}

// Close tears the fleet down front to back: proxy, replicas, daemon.
func (f *Fleet) Close() {
	if f.proxySrv != nil {
		f.proxySrv.Close()
	}
	if f.Proxy != nil {
		f.Proxy.Close()
	}
	for _, rep := range f.Replicas {
		if rep.httpSrv != nil {
			rep.httpSrv.Close()
		}
		rep.Server.Close()
	}
	if f.Cached != nil {
		f.Cached.Close()
	}
}

// CheckLaw verifies the extended conservation law
//
//	solves + cache.hits + disk.hits + remote.hits + coalesced == schedule_items
//
// against one replica's stats snapshot, returning a descriptive error on
// violation. Fleet tests run it on every replica.
func CheckLaw(st Stats) error {
	sum := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Remote.Hits + st.Coalesced
	if sum != st.Items {
		return fmt.Errorf(
			"conservation law violated: solves %d + mem %d + disk %d + remote %d + coalesced %d = %d != items %d",
			st.Solves, st.Cache.Hits, st.Disk.Hits, st.Remote.Hits, st.Coalesced, sum, st.Items)
	}
	return nil
}

// FleetStats aggregates the per-replica snapshots a fleet assertion
// usually wants in one place.
type FleetStats struct {
	Solves     uint64
	Items      uint64
	MemHits    uint64
	DiskHits   uint64
	RemoteHits uint64
	Coalesced  uint64
	PerReplica []Stats
}

// Stats snapshots every replica and sums the law's terms fleet-wide.
func (f *Fleet) Stats() FleetStats {
	var fs FleetStats
	for _, rep := range f.Replicas {
		st := rep.Server.Stats()
		fs.PerReplica = append(fs.PerReplica, st)
		fs.Solves += st.Solves
		fs.Items += st.Items
		fs.MemHits += st.Cache.Hits
		fs.DiskHits += st.Disk.Hits
		fs.RemoteHits += st.Remote.Hits
		fs.Coalesced += st.Coalesced
	}
	return fs
}

// trimURL is a tiny helper shared by fleet consumers that compare
// replica URLs from headers against FleetReplica.URL.
func trimURL(u string) string { return strings.TrimRight(u, "/") }
