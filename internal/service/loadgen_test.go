package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestLoadGenHonorsShedHints: the generator backs off on a 429 by the
// shed's retry_after_ms hint and retries, counting sheds and retries
// separately — none of which surface as errors when the retry lands.
func TestLoadGenHonorsShedHints(t *testing.T) {
	const shedFirst = 4
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= shedFirst {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "shed", RetryAfterMS: 1})
			return
		}
		w.Header().Set("X-DTServe-Cache", "miss")
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	report, err := LoadGen(LoadGenConfig{
		URL:         ts.URL,
		Requests:    8,
		Concurrency: 2,
		Distinct:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Sheds != shedFirst {
		t.Fatalf("sheds = %d, want %d (one per 429 received)", report.Sheds, shedFirst)
	}
	if report.Retries != shedFirst {
		t.Fatalf("retries = %d, want %d (every shed request retried once)", report.Retries, shedFirst)
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d, want 0 — a shed that succeeds on retry is not an error", report.Errors)
	}
}

// TestLoadGenShedRetriesExhausted: a request that stays shed through
// every retry finally counts as an error.
func TestLoadGenShedRetriesExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "shed", RetryAfterMS: 1})
	}))
	defer ts.Close()

	report, err := LoadGen(LoadGenConfig{
		URL:         ts.URL,
		Requests:    2,
		Concurrency: 2,
		Distinct:    1,
		ShedRetries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 2 {
		t.Fatalf("errors = %d, want 2 (retries exhausted)", report.Errors)
	}
	if report.Sheds != 4 {
		t.Fatalf("sheds = %d, want 4 (initial attempt + one retry, per request)", report.Sheds)
	}
	if report.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (one per request before giving up)", report.Retries)
	}
}

// TestLoadGenWarmMode runs warm mode against a real server: seeding
// solves every distinct key before the clock, so every timed request is
// answered from cache — zero warm misses and a hit count equal to the
// request count.
func TestLoadGenWarmMode(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	report, err := LoadGen(LoadGenConfig{
		URL:         ts.URL,
		Requests:    12,
		Concurrency: 3,
		Distinct:    3,
		Solver:      "hlf",
		Warm:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d, want 0", report.Errors)
	}
	if !report.Warm || report.WarmSeeded != 3 {
		t.Fatalf("warm = %v seeded = %d, want true/3", report.Warm, report.WarmSeeded)
	}
	if report.WarmMisses != 0 {
		t.Fatalf("warm misses = %d, want 0 — seeding should have covered every timed key", report.WarmMisses)
	}
	if got := report.CacheHits + report.DiskHits + report.Coalesced; got != report.Requests {
		t.Fatalf("cache-served = %d of %d timed requests, want all", got, report.Requests)
	}
}

// TestLoadGenTraceBreakdown runs the generator against a real server with
// trace sampling on: every other request is traced and the report's
// per-stage table reflects the request pipeline.
func TestLoadGenTraceBreakdown(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	report, err := LoadGen(LoadGenConfig{
		URL:         ts.URL,
		Requests:    10,
		Concurrency: 2,
		Distinct:    2,
		Solver:      "hlf",
		TraceEvery:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d, want 0", report.Errors)
	}
	if report.Traced != 5 {
		t.Fatalf("traced = %d, want 5 (every 2nd of 10 requests)", report.Traced)
	}
	byStage := map[string]StageBreakdown{}
	for _, st := range report.Stages {
		byStage[st.Stage] = st
	}
	for _, stage := range []string{"decode", "canonicalize"} {
		row, ok := byStage[stage]
		if !ok {
			t.Fatalf("stage table %v missing %q", report.Stages, stage)
		}
		if row.Count != 5 {
			t.Fatalf("stage %s count = %d, want 5 (every traced request passes it)", stage, row.Count)
		}
		if row.Share < 0 || row.Share > 1 {
			t.Fatalf("stage %s share = %v, want within [0, 1]", stage, row.Share)
		}
	}
	if _, ok := byStage["solve"]; !ok {
		t.Fatalf("stage table %v missing the solve stage (cold keys were traced)", report.Stages)
	}
}
