package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/taskgraph"
)

// checkLaw asserts the conservation law on a stats snapshot: every
// schedule item is answered by exactly one of solve, mem hit, disk hit,
// remote hit or coalesced wait. Warm solves are still solves.
func checkLaw(t *testing.T, st Stats) {
	t.Helper()
	got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Remote.Hits + st.Coalesced
	if got != st.Items {
		t.Fatalf("conservation law violated: solves %d + mem %d + disk %d + remote %d + coalesced %d = %d != items %d",
			st.Solves, st.Cache.Hits, st.Disk.Hits, st.Remote.Hits, st.Coalesced, got, st.Items)
	}
}

func postDelta(t *testing.T, base string, dreq DeltaRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(dreq)
	if err != nil {
		t.Fatal(err)
	}
	return post(t, base+"/v1/schedule/delta", body)
}

// TestDeltaWarmFlow walks the headline warm path end to end: solve, edit
// one task via /v1/schedule/delta, and verify the edited solve
// warm-starts from the base (X-DTServe-Warm), counts as a warm hit with
// stages saved, keeps the conservation law, and replays byte-identically
// from the warm key on a repeat.
func TestDeltaWarmFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})

	resp, _ := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base solve status %d", resp.StatusCode)
	}
	baseAddr := resp.Header.Get("X-DTServe-Address")
	if baseAddr == "" {
		t.Fatal("base response carries no X-DTServe-Address")
	}
	if resp.Header.Get("X-DTServe-Warm") != "" {
		t.Fatal("cold solve claimed a warm start")
	}

	load := 5.0
	dreq := DeltaRequest{Base: baseAddr, Edits: []DeltaEdit{{Op: "set_load", Task: 0, Load: &load}}}
	dresp, dbody := postDelta(t, ts.URL, dreq)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", dresp.StatusCode, dbody)
	}
	if dresp.Header.Get("X-DTServe-Warm") == "" {
		t.Fatal("delta solve did not warm-start")
	}
	if got := dresp.Header.Get("X-DTServe-Cache"); got != "miss" {
		t.Fatalf("first delta cache tag = %q, want miss", got)
	}
	warmAddr := dresp.Header.Get("X-DTServe-Address")
	if warmAddr == "" || warmAddr == baseAddr {
		t.Fatalf("warm address %q must exist and differ from base %q", warmAddr, baseAddr)
	}
	var res Result
	if err := json.Unmarshal(dbody, &res); err != nil {
		t.Fatalf("delta body: %v", err)
	}
	if len(res.Schedule) == 0 || res.Makespan <= 0 {
		t.Fatalf("delta result empty: %+v", res)
	}

	st := getStats(t, ts.URL)
	if st.WarmHits != 1 {
		t.Fatalf("warm_hits = %d, want 1", st.WarmHits)
	}
	if st.WarmEpochsSaved == 0 {
		t.Fatal("warm solve saved no annealing stages")
	}
	if st.SimIndexEntries == 0 {
		t.Fatal("similarity index is empty after an sa solve")
	}
	checkLaw(t, st)

	// The identical delta replays the warm solve's bytes from the warm key.
	rresp, rbody := postDelta(t, ts.URL, dreq)
	if got := rresp.Header.Get("X-DTServe-Cache"); got != "hit" {
		t.Fatalf("repeat delta cache tag = %q, want hit", got)
	}
	if rresp.Header.Get("X-DTServe-Warm") == "" {
		t.Fatal("repeat delta lost its warm header")
	}
	if !bytes.Equal(dbody, rbody) {
		t.Fatal("repeat delta bytes differ from the first solve")
	}
	st = getStats(t, ts.URL)
	if st.WarmHits != 1 {
		t.Fatalf("warm key replay re-counted warm_hits: %d", st.WarmHits)
	}
	checkLaw(t, st)
}

// TestDeltaParityNoWarm is the correctness anchor: with "nowarm" the
// delta response must be byte-identical to a cold /v1/schedule call with
// the edited graph — same options, same key, same cached bytes.
func TestDeltaParityNoWarm(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})

	resp, _ := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
	baseAddr := resp.Header.Get("X-DTServe-Address")
	if baseAddr == "" {
		t.Fatal("no base address")
	}

	load := 7.5
	dresp, dbody := postDelta(t, ts.URL, DeltaRequest{
		Base:   baseAddr,
		Edits:  []DeltaEdit{{Op: "set_load", Task: 0, Load: &load}},
		NoWarm: true,
	})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", dresp.StatusCode, dbody)
	}
	if dresp.Header.Get("X-DTServe-Warm") != "" {
		t.Fatal("nowarm delta still warm-started")
	}

	// Build the same edited graph client-side and solve it "cold" with the
	// base's exact options: the server must recognize the identical
	// problem (cache hit) and serve the identical bytes.
	g, err := cliutil.BuildProgram("FFT")
	if err != nil {
		t.Fatal(err)
	}
	g.SetLoad(0, load)
	cold := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Graph = g })
	cresp, cbody := post(t, ts.URL+"/v1/schedule", cold)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", cresp.StatusCode, cbody)
	}
	if got := cresp.Header.Get("X-DTServe-Cache"); got != "hit" {
		t.Fatalf("cold solve of the edited graph missed the delta's cache entry (tag %q)", got)
	}
	if !bytes.Equal(dbody, cbody) {
		t.Fatal("nowarm delta bytes differ from the cold solve of the edited graph")
	}
	if da, ca := dresp.Header.Get("X-DTServe-Address"), cresp.Header.Get("X-DTServe-Address"); da != ca {
		t.Fatalf("delta address %q != cold address %q for the same problem", da, ca)
	}
	checkLaw(t, getStats(t, ts.URL))
}

// TestDeltaErrors covers the endpoint's failure contract.
func TestDeltaErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	resp, _ := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
	baseAddr := resp.Header.Get("X-DTServe-Address")

	load := 1.0
	cases := []struct {
		name string
		dreq DeltaRequest
		want int
	}{
		{"missing base", DeltaRequest{Edits: []DeltaEdit{{Op: "set_load", Task: 0, Load: &load}}}, http.StatusBadRequest},
		{"unknown base", DeltaRequest{Base: "no-such-address"}, http.StatusNotFound},
		{"bad op", DeltaRequest{Base: baseAddr, Edits: []DeltaEdit{{Op: "del_task", Task: 0}}}, http.StatusBadRequest},
		{"set_load out of range", DeltaRequest{Base: baseAddr, Edits: []DeltaEdit{{Op: "set_load", Task: 9999, Load: &load}}}, http.StatusBadRequest},
		{"set_load missing load", DeltaRequest{Base: baseAddr, Edits: []DeltaEdit{{Op: "set_load", Task: 0}}}, http.StatusBadRequest},
		{"add_task sparse id", DeltaRequest{Base: baseAddr, Edits: []DeltaEdit{{Op: "add_task", Task: 9999, Load: &load}}}, http.StatusBadRequest},
		{"add_edge missing task", DeltaRequest{Base: baseAddr, Edits: []DeltaEdit{{Op: "add_edge", From: 0, To: 9999, Bits: &load}}}, http.StatusBadRequest},
		{"del_edge absent", DeltaRequest{Base: baseAddr, Edits: []DeltaEdit{{Op: "del_edge", From: 0, To: 0}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postDelta(t, ts.URL, c.dreq)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, body)
		}
	}
}

// TestDeltaAddTaskAndEdge exercises the structural edits: growing the
// graph keeps the dense-ID invariant and the projected seed still warms
// the solve.
func TestDeltaAddTaskAndEdge(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	resp, _ := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
	baseAddr := resp.Header.Get("X-DTServe-Address")

	var base Result
	_, bb := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
	if err := json.Unmarshal(bb, &base); err != nil {
		t.Fatal(err)
	}
	n := len(base.Schedule)

	load, bits := 3.0, 64.0
	dresp, dbody := postDelta(t, ts.URL, DeltaRequest{
		Base: baseAddr,
		Edits: []DeltaEdit{
			{Op: "add_task", Task: n, Name: "extra", Load: &load},
			{Op: "add_edge", From: 0, To: n, Bits: &bits},
		},
	})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", dresp.StatusCode, dbody)
	}
	if dresp.Header.Get("X-DTServe-Warm") == "" {
		t.Fatal("structural delta did not warm-start")
	}
	var res Result
	if err := json.Unmarshal(dbody, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule) != n+1 {
		t.Fatalf("edited solve scheduled %d tasks, want %d", len(res.Schedule), n+1)
	}
	checkLaw(t, getStats(t, ts.URL))
}

// TestWarmStartPlainRequest: with Config.WarmStart, a near-miss plain
// /v1/schedule call seeds from the similarity index's nearest neighbor;
// without it, the same call solves cold.
func TestWarmStartPlainRequest(t *testing.T) {
	edited := func(t *testing.T) []byte {
		g, err := cliutil.BuildProgram("FFT")
		if err != nil {
			t.Fatal(err)
		}
		g.SetLoad(0, g.Load(0)+2)
		return wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Graph = g })
	}

	t.Run("enabled", func(t *testing.T) {
		_, ts := newTestServer(t, Config{CacheSize: 64, WarmStart: true})
		post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
		resp, _ := post(t, ts.URL+"/v1/schedule", edited(t))
		if resp.Header.Get("X-DTServe-Warm") == "" {
			t.Fatal("near-miss request did not warm-start with WarmStart on")
		}
		st := getStats(t, ts.URL)
		if st.WarmHits != 1 {
			t.Fatalf("warm_hits = %d, want 1", st.WarmHits)
		}
		checkLaw(t, st)
	})
	t.Run("disabled", func(t *testing.T) {
		_, ts := newTestServer(t, Config{CacheSize: 64})
		post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
		resp, _ := post(t, ts.URL+"/v1/schedule", edited(t))
		if resp.Header.Get("X-DTServe-Warm") != "" {
			t.Fatal("plain request warm-started without WarmStart")
		}
		if st := getStats(t, ts.URL); st.WarmHits != 0 {
			t.Fatalf("warm_hits = %d, want 0", st.WarmHits)
		}
	})
}

// TestSimIndexPersistence: the index round-trips through its sidecar
// file — a reloaded index answers Get and Lookup like the original.
func TestSimIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "simindex.json")

	ix := NewSimIndex(8)
	mk := func(key string, seed int64) simEntry {
		g, err := taskgraph.Chain("c"+key, 5, float64(seed)+1, 10)
		if err != nil {
			t.Fatal(err)
		}
		return simEntry{Key: key, Topo: "ring:4", Sketch: g.Sketch(),
			Graph: json.RawMessage(`{"name":"c` + key + `"}`), NumTasks: 5}
	}
	a, b := mk("aaa", 1), mk("bbb", 2)
	ix.Add(a)
	ix.Add(b)
	if err := ix.Save(path); err != nil {
		t.Fatal(err)
	}

	re := NewSimIndex(8)
	if err := re.Load(path); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded Len = %d, want 2", re.Len())
	}
	got, ok := re.Get("aaa")
	if !ok || got.Topo != "ring:4" || got.NumTasks != 5 {
		t.Fatalf("reloaded Get(aaa) = %+v, %v", got, ok)
	}
	if _, _, ok := re.Lookup(a.Sketch, "self", "ring:4", 0.5); !ok {
		t.Fatal("reloaded index Lookup found nothing")
	}

	// Loading a missing file is not an error (fresh start).
	if err := NewSimIndex(8).Load(filepath.Join(dir, "absent.json")); err != nil {
		t.Fatalf("missing index file: %v", err)
	}
}

// TestSimIndexEviction: the index is bounded; the oldest entry falls out.
func TestSimIndexEviction(t *testing.T) {
	ix := NewSimIndex(2)
	for i := 0; i < 3; i++ {
		g, err := taskgraph.Chain(fmt.Sprintf("c%d", i), 4, float64(i)+1, 10)
		if err != nil {
			t.Fatal(err)
		}
		ix.Add(simEntry{Key: fmt.Sprintf("k%d", i), Topo: "ring:2",
			Sketch: g.Sketch(), Graph: json.RawMessage(`{}`), NumTasks: 4})
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
	if _, ok := ix.Get("k0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, ok := ix.Get(k); !ok {
			t.Fatalf("entry %s evicted too early", k)
		}
	}
}

// TestSimIndexConcurrency hammers the index from many goroutines under
// -race: adds, lookups, gets and saves must be mutually safe.
func TestSimIndexConcurrency(t *testing.T) {
	ix := NewSimIndex(32)
	dir := t.TempDir()
	sketches := make([]taskgraph.Sketch, 16)
	for i := range sketches {
		g, err := taskgraph.Chain(fmt.Sprintf("c%d", i), 4+i, float64(i)+1, 10)
		if err != nil {
			t.Fatal(err)
		}
		sketches[i] = g.Sketch()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d-%d", w, i%24)
				switch i % 4 {
				case 0:
					ix.Add(simEntry{Key: k, Topo: "ring:2", Sketch: sketches[i%16],
						Graph: json.RawMessage(`{}`), NumTasks: 4})
				case 1:
					ix.Get(k)
				case 2:
					ix.Lookup(sketches[i%16], k, "ring:2", 0.9)
				case 3:
					if i%40 == 3 {
						if err := ix.Save(filepath.Join(dir, fmt.Sprintf("ix%d.json", w))); err != nil {
							t.Error(err)
						}
					} else {
						ix.Len()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() > 32 {
		t.Fatalf("index exceeded its bound: %d", ix.Len())
	}
}

// TestWarmIndexPersistsAcrossRestart: an sa solve lands in the on-disk
// similarity index; a restarted server answers deltas against it without
// re-solving the base.
func TestWarmIndexPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	svc1, ts1 := newTestServer(t, Config{CacheSize: 64, CacheDir: dir})
	resp, _ := post(t, ts1.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
	baseAddr := resp.Header.Get("X-DTServe-Address")
	ts1.Close()
	svc1.Close()

	_, ts2 := newTestServer(t, Config{CacheSize: 64, CacheDir: dir})
	load := 4.0
	dresp, dbody := postDelta(t, ts2.URL, DeltaRequest{
		Base:  baseAddr,
		Edits: []DeltaEdit{{Op: "set_load", Task: 0, Load: &load}},
	})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delta after restart: status %d: %s", dresp.StatusCode, dbody)
	}
	if dresp.Header.Get("X-DTServe-Warm") == "" {
		t.Fatal("restarted server did not warm-start from the reloaded index")
	}
	checkLaw(t, getStats(t, ts2.URL))
}
