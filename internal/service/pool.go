package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/machsim"
)

// Pool bounds solver concurrency: a fixed set of workers drains an
// unbuffered job channel, so at most `workers` solves run at once and
// excess requests queue in their handlers (subject to their contexts) —
// the serving-side analogue of the experiment harness's parallelFor
// fan-out, with the same property that results never depend on which
// worker runs a job.
//
// Every worker owns one machsim simulator arena for its lifetime and
// hands it to each job it runs: back-to-back solves on a worker rebind
// the same warm buffers instead of rebuilding simulator state per
// request. Arena reuse never leaks state between jobs (Bind+Run fully
// reset it), so results stay independent of worker placement.
type Pool struct {
	jobs      chan poolJob
	quit      chan struct{}
	wg        sync.WaitGroup
	workers   int
	busy      atomic.Int64
	completed atomic.Int64
	closeOnce sync.Once
}

type poolJob struct {
	fn   func(sim *machsim.Simulator)
	done chan struct{}
}

// NewPool starts a pool with the given worker count; values <= 0 mean one
// worker per available CPU.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		jobs:    make(chan poolJob),
		quit:    make(chan struct{}),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	sim := machsim.NewArena() // worker-owned, reused across jobs
	for {
		select {
		case job := <-p.jobs:
			p.busy.Add(1)
			job.fn(sim)
			p.busy.Add(-1)
			p.completed.Add(1)
			close(job.done)
		case <-p.quit:
			return
		}
	}
}

// Run executes fn on a pool worker — handing it the worker's simulator
// arena — and waits for it to finish. The context only bounds the wait
// for a free worker: once fn starts it runs to completion (fn itself is
// expected to honor ctx, e.g. through the solver interrupt hooks). The
// arena is only valid inside fn; fn must not retain it.
func (p *Pool) Run(ctx context.Context, fn func(sim *machsim.Simulator)) error {
	job := poolJob{fn: fn, done: make(chan struct{})}
	select {
	case p.jobs <- job:
	case <-ctx.Done():
		return fmt.Errorf("service: queued too long: %w", ctx.Err())
	case <-p.quit:
		return fmt.Errorf("service: pool closed")
	}
	<-job.done
	return nil
}

// Close stops the workers after their current jobs; queued Run calls
// return an error. Close is idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.quit) })
	p.wg.Wait()
}

// PoolStats is a point-in-time snapshot of the pool counters.
type PoolStats struct {
	Workers   int   `json:"workers"`
	Busy      int64 `json:"busy"`
	Completed int64 `json:"completed"`
}

// Stats returns the current counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		Busy:      p.busy.Load(),
		Completed: p.completed.Load(),
	}
}
