package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func cliutilComm() topology.CommParams { return topology.DefaultCommParams() }
func saDefaults() core.Options         { return core.DefaultOptions() }

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func wireRequest(t *testing.T, program string, mutate func(*ScheduleRequest)) []byte {
	t.Helper()
	g, err := cliutil.BuildProgram(program)
	if err != nil {
		t.Fatal(err)
	}
	req := ScheduleRequest{Graph: g, Topo: "hypercube:3", Solver: "sa", Seed: 1991, Restarts: 2}
	if mutate != nil {
		mutate(&req)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestConcurrentScheduleDeterministic is the headline acceptance test:
// concurrent identical payloads — all forced to solve, no cache help —
// must produce byte-identical bodies.
func TestConcurrentScheduleDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	payload := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.NoCache = true })

	const n = 10
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, buf.String())
				return
			}
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0 for an identical payload", i)
		}
	}
	var res Result
	if err := json.Unmarshal(bodies[0], &res); err != nil {
		t.Fatal(err)
	}
	if res.Solver != "SA(r=2)" || res.Makespan <= 0 || len(res.Schedule) == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

// TestCacheHitSkipsSolving asserts via /statsz that a warm hit does not
// reach the solver pool, and that hit bodies are byte-identical to the
// first (solved) response.
func TestCacheHitSkipsSolving(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	payload := wireRequest(t, "NE", nil)

	resp, first := post(t, ts.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", resp.StatusCode, first)
	}
	if got := resp.Header.Get("X-DTServe-Cache"); got != "miss" {
		t.Fatalf("cold request reported cache=%q", got)
	}
	cold := getStats(t, ts.URL)
	if cold.Solves != 1 || cold.Cache.Misses != 1 {
		t.Fatalf("after cold request: solves=%d misses=%d, want 1/1", cold.Solves, cold.Cache.Misses)
	}

	const warmCalls = 5
	for i := 0; i < warmCalls; i++ {
		resp, body := post(t, ts.URL+"/v1/schedule", payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm status %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-DTServe-Cache"); got != "hit" {
			t.Fatalf("warm request %d reported cache=%q", i, got)
		}
		if !bytes.Equal(first, body) {
			t.Fatalf("warm body differs from cold body")
		}
	}
	warm := getStats(t, ts.URL)
	if warm.Solves != 1 {
		t.Fatalf("warm hits reached the solver: solves=%d, want 1", warm.Solves)
	}
	if warm.Cache.Hits != warmCalls {
		t.Fatalf("cache hits=%d, want %d", warm.Cache.Hits, warmCalls)
	}
}

// TestPortfolioNeverWorseOverAPI races the portfolio against each member
// on the same request and checks the acceptance bound end to end.
func TestPortfolioNeverWorseOverAPI(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	makespan := func(solverName string) float64 {
		payload := wireRequest(t, "GJ", func(r *ScheduleRequest) { r.Solver = solverName })
		resp, body := post(t, ts.URL+"/v1/schedule", payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", solverName, resp.StatusCode, body)
		}
		var res Result
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	best := math.Inf(1)
	for _, name := range []string{"sa", "etf", "hlfcomm", "hlf"} {
		if m := makespan(name); m < best {
			best = m
		}
	}
	if got := makespan("portfolio"); got > best+1e-9 {
		t.Fatalf("portfolio makespan %g worse than best member %g", got, best)
	}
}

// TestStructured400s drives the machsim/topology/taskgraph error paths
// over the API: they must come back as structured JSON 400s, not panics.
func TestStructured400s(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	validGraph := `{"name":"g","tasks":[{"id":0,"load":5},{"id":1,"load":5}],"edges":[{"from":0,"to":1,"bits":40}]}`

	cases := []struct {
		name string
		body string
	}{
		{"invalid topology size", `{"graph":` + validGraph + `,"topo":"hypercube:25"}`},
		{"zero-processor topology", `{"graph":` + validGraph + `,"topo":"mesh:0x0"}`},
		{"unknown topology kind", `{"graph":` + validGraph + `,"topo":"mobius:4"}`},
		{"malformed topology spec", `{"graph":` + validGraph + `,"topo":"hypercube"}`},
		{"cyclic graph", `{"graph":{"name":"c","tasks":[{"id":0,"load":1},{"id":1,"load":1}],` +
			`"edges":[{"from":0,"to":1,"bits":0},{"from":1,"to":0,"bits":0}]},"topo":"hypercube:3"}`},
		{"sparse task ids", `{"graph":{"name":"s","tasks":[{"id":0,"load":1},{"id":2,"load":1}],"edges":[]},"topo":"hypercube:3"}`},
		{"empty graph", `{"graph":{"name":"e","tasks":[],"edges":[]},"topo":"hypercube:3"}`},
		{"missing graph", `{"topo":"hypercube:3"}`},
		{"missing topo", `{"graph":` + validGraph + `}`},
		{"negative edge volume", `{"graph":{"name":"n","tasks":[{"id":0,"load":1},{"id":1,"load":1}],` +
			`"edges":[{"from":0,"to":1,"bits":-40}]},"topo":"hypercube:3"}`},
		{"bad comm params", `{"graph":` + validGraph + `,"topo":"hypercube:3","comm":{"bandwidth":0,"sigma":7,"tau":9,"scale":1}}`},
		{"unknown solver", `{"graph":` + validGraph + `,"topo":"hypercube:3","solver":"quantum"}`},
		{"invalid weights", `{"graph":` + validGraph + `,"topo":"hypercube:3","wb":1.5}`},
		{"not json", `hello`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/schedule", []byte(tc.body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body is not structured JSON: %s", body)
			}
			if er.Error == "" {
				t.Fatalf("empty error message")
			}
		})
	}
}

// TestOptimalRejectionIs422 distinguishes solve-time rejections (valid
// input the chosen solver cannot handle) from malformed 400s.
func TestOptimalRejectionIs422(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	payload := wireRequest(t, "NE", func(r *ScheduleRequest) { r.Solver = "optimal" })
	resp, body := post(t, ts.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422; body %s", resp.StatusCode, body)
	}
}

func TestBatchMatchesSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})

	single := wireRequest(t, "FFT", nil)
	respS, singleBody := post(t, ts.URL+"/v1/schedule", single)
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("single: status %d", respS.StatusCode)
	}

	var sr ScheduleRequest
	if err := json.Unmarshal(single, &sr); err != nil {
		t.Fatal(err)
	}
	bad := ScheduleRequest{Topo: "hypercube:3"} // missing graph
	batchBody, err := json.Marshal(BatchRequest{Requests: []ScheduleRequest{sr, bad}})
	if err != nil {
		t.Fatal(err)
	}
	respB, body := post(t, ts.URL+"/v1/schedule/batch", batchBody)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", respB.StatusCode, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != 2 {
		t.Fatalf("batch returned %d items, want 2", len(batch.Items))
	}
	if !bytes.Equal(bytes.TrimSpace(batch.Items[0].Result), bytes.TrimSpace(singleBody)) {
		t.Fatalf("batch item result differs from the single-call body")
	}
	if batch.Items[1].Error == "" || batch.Items[1].Result != nil {
		t.Fatalf("invalid batch item did not report an error: %+v", batch.Items[1])
	}

	oversize := BatchRequest{Requests: make([]ScheduleRequest, 10)}
	over, _ := json.Marshal(oversize)
	_, ts2 := newTestServer(t, Config{CacheSize: 4, MaxBatch: 4})
	resp, _ := post(t, ts2.URL+"/v1/schedule/batch", over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize batch: status %d, want 400", resp.StatusCode)
	}
}

func TestSolversAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4, DefaultSolver: "portfolio"})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/solvers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Default string `json:"default"`
		Solvers []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"solvers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Default != "portfolio" {
		t.Errorf("default solver %q", listing.Default)
	}
	found := map[string]bool{}
	for _, s := range listing.Solvers {
		found[s.Name] = true
		if s.Description == "" {
			t.Errorf("solver %q listed without description", s.Name)
		}
	}
	for _, want := range []string{"sa", "hlf", "etf", "optimal", "auto", "portfolio"} {
		if !found[want] {
			t.Errorf("solver %q missing from listing", want)
		}
	}
}

func TestDefaultSolverValidation(t *testing.T) {
	if _, err := New(Config{DefaultSolver: "nope"}); err == nil {
		t.Fatal("unknown default solver accepted")
	}
}

// TestSeedChangesKey ensures option changes miss the cache instead of
// replaying a stale result.
func TestSeedChangesKey(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	a := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Seed = 1 })
	b := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Seed = 2 })
	post(t, ts.URL+"/v1/schedule", a)
	post(t, ts.URL+"/v1/schedule", b)
	st := getStats(t, ts.URL)
	if st.Solves != 2 {
		t.Fatalf("distinct seeds shared a cache line: solves=%d", st.Solves)
	}
}

// TestGraphInsertionOrderSharesCacheLine: two payloads describing the same
// graph with edges listed in different orders must content-address to the
// same cached result.
func TestGraphInsertionOrderSharesCacheLine(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	const forward = `{"graph":{"name":"g","tasks":[{"id":0,"load":5},{"id":1,"load":6},{"id":2,"load":7}],` +
		`"edges":[{"from":0,"to":1,"bits":40},{"from":0,"to":2,"bits":80}]},"topo":"hypercube:2","solver":"hlf"}`
	const reversed = `{"graph":{"name":"g","tasks":[{"id":2,"load":7},{"id":0,"load":5},{"id":1,"load":6}],` +
		`"edges":[{"from":0,"to":2,"bits":80},{"from":0,"to":1,"bits":40}]},"topo":"hypercube:2","solver":"hlf"}`
	respA, bodyA := post(t, ts.URL+"/v1/schedule", []byte(forward))
	respB, bodyB := post(t, ts.URL+"/v1/schedule", []byte(reversed))
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d: %s %s", respA.StatusCode, respB.StatusCode, bodyA, bodyB)
	}
	if respB.Header.Get("X-DTServe-Cache") != "hit" {
		t.Fatalf("permuted payload missed the cache")
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatalf("permuted payload returned a different body")
	}
}

func TestLoadGen(t *testing.T) {
	svc, ts := newTestServer(t, Config{CacheSize: 64})
	report, err := LoadGen(LoadGenConfig{
		URL:         ts.URL,
		Requests:    24,
		Concurrency: 4,
		Distinct:    3,
		Programs:    []string{"FFT"},
		Solver:      "hlf",
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", report.Errors)
	}
	// Every 200 is a memory hit, a disk hit, a solve, or a request
	// coalesced onto an identical in-flight solve (singleflight) —
	// assert the exact conservation law rather than a hit-ratio guess.
	// (No cache dir here, so the disk term is zero; the disk-enabled
	// variant is asserted in TestLoadGenReportsDiskHits.)
	st := svc.Stats()
	if int(st.Solves)+int(st.Cache.Hits)+int(st.Disk.Hits)+int(st.Coalesced) != report.Requests {
		t.Errorf("solves %d + mem hits %d + disk hits %d + coalesced %d != requests %d",
			st.Solves, st.Cache.Hits, st.Disk.Hits, st.Coalesced, report.Requests)
	}
	if report.CacheHits != int(st.Cache.Hits) {
		t.Errorf("client saw %d hits, server counted %d", report.CacheHits, st.Cache.Hits)
	}
	if report.Coalesced != int(st.Coalesced) {
		t.Errorf("client saw %d coalesced, server counted %d", report.Coalesced, st.Coalesced)
	}
	// Singleflight bounds the work: exactly one solve per distinct key.
	if st.Solves != 3 {
		t.Errorf("solves (%d) != distinct payloads (3)", st.Solves)
	}
	if report.CacheHits == 0 {
		t.Errorf("no cache hits across %d requests of 3 payloads", report.Requests)
	}
	if report.Throughput <= 0 || report.LatencyP50 <= 0 {
		t.Errorf("degenerate report: %+v", report)
	}
	if s := report.String(); !strings.Contains(s, "req/s") {
		t.Errorf("report rendering broken: %s", s)
	}
}

// TestResultSchemaStable pins the wire field set so CLI (--json) and
// server outputs stay diffable; a field rename breaks both sides together.
func TestResultSchemaStable(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	resp, body := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(body, &fields); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"solver", "program", "topology", "makespan", "t1", "speedup",
		"messages", "transfer_time", "overhead_time", "epochs", "forced", "utilization", "schedule"} {
		if _, ok := fields[want]; !ok {
			t.Errorf("wire result lacks field %q", want)
		}
	}
}

func TestCacheKeyStable(t *testing.T) {
	g1 := taskgraph.New("a")
	g1.AddTask("t", 5)
	g2 := taskgraph.New("a")
	g2.AddTask("t", 5)
	k1, err := cacheKey(g1, "hypercube-8", cliutilComm(), "sa", saDefaults(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cacheKey(g2, "hypercube-8", cliutilComm(), "sa", saDefaults(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("equal graphs produced different keys")
	}
	k3, err := cacheKey(g1, "ring-9", cliutilComm(), "sa", saDefaults(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatalf("different topologies share a key")
	}
	if fmt.Sprintf("%016x", g1.Fingerprint()) != k1[:16] {
		t.Fatalf("key does not start with the graph fingerprint: %s", k1)
	}
}

// TestPartialCommOverrideKeepsScale guards against a partial "comm"
// override silently zeroing Scale (which would make communication free).
func TestPartialCommOverrideKeepsScale(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	bw := 20.0
	payload := wireRequest(t, "FFT", func(r *ScheduleRequest) {
		r.Solver = "hlf"
		r.Comm = &CommOverride{Bandwidth: &bw}
	})
	resp, body := post(t, ts.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 || res.OverheadTime == 0 {
		t.Fatalf("bandwidth-only override disabled communication: %+v", res)
	}
}

// TestTimeoutIsPartOfCacheKey: a result computed under one deadline must
// not be replayed for the same payload with a different deadline.
func TestTimeoutIsPartOfCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	tight := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Solver = "hlf"; r.TimeoutMS = 60000 })
	loose := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Solver = "hlf" })
	post(t, ts.URL+"/v1/schedule", tight)
	resp, _ := post(t, ts.URL+"/v1/schedule", loose)
	if resp.Header.Get("X-DTServe-Cache") == "hit" {
		t.Fatal("requests with different timeouts shared a cache line")
	}
	st := getStats(t, ts.URL)
	if st.Solves != 2 {
		t.Fatalf("solves=%d, want 2", st.Solves)
	}
}

// TestRestartsCapped rejects resource-exhaustion restart counts with a
// structured 400 instead of cloning packets without bound.
func TestRestartsCapped(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	payload := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Restarts = 1 << 30 })
	resp, body := post(t, ts.URL+"/v1/schedule", payload)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		t.Fatalf("unstructured error body: %s", body)
	}
}

// TestDeadlinedPortfolioNotCached: a portfolio raced under a deadline is
// timing-dependent, so its result must be served but never memoized.
func TestDeadlinedPortfolioNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	payload := wireRequest(t, "FFT", func(r *ScheduleRequest) {
		r.Solver = "portfolio"
		r.TimeoutMS = 60_000 // generous: members finish, but the race had a clock
	})
	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.URL+"/v1/schedule", payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("call %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-DTServe-Cache"); got != "miss" {
			t.Fatalf("call %d: deadline-raced portfolio served from cache (%q)", i, got)
		}
	}
	if st := getStats(t, ts.URL); st.Solves != 2 {
		t.Fatalf("solves=%d, want 2 (no memoization)", st.Solves)
	}

	// Without a deadline the portfolio is deterministic and cacheable.
	free := wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Solver = "portfolio" })
	post(t, ts.URL+"/v1/schedule", free)
	resp, _ := post(t, ts.URL+"/v1/schedule", free)
	if resp.Header.Get("X-DTServe-Cache") != "hit" {
		t.Fatal("deadline-free portfolio was not cached")
	}
}

// TestSingleflightCoalescesConcurrentMisses is the singleflight
// acceptance test: many concurrent identical cold requests perform
// exactly one solve per distinct cache key, and every caller receives the
// same byte-identical body.
func TestSingleflightCoalescesConcurrentMisses(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 64})
	payloads := [][]byte{
		wireRequest(t, "FFT", nil),
		wireRequest(t, "NE", nil),
	}
	const perKey = 8
	total := perKey * len(payloads)
	bodies := make([][]byte, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/schedule", payloads[i%len(payloads)])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			switch got := resp.Header.Get("X-DTServe-Cache"); got {
			case "hit", "miss", "coalesced":
			default:
				t.Errorf("request %d: unknown cache status %q", i, got)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := range bodies {
		if !bytes.Equal(bodies[i], bodies[i%len(payloads)]) {
			t.Fatalf("request %d body differs from its key's first body", i)
		}
	}
	st := getStats(t, ts.URL)
	if st.Solves != uint64(len(payloads)) {
		t.Fatalf("solves = %d, want %d (one per distinct key)", st.Solves, len(payloads))
	}
	// Every non-leader request was answered from the cache or from the
	// in-flight solve; nothing solved twice.
	if st.Cache.Hits+st.Coalesced != uint64(total-len(payloads)) {
		t.Fatalf("hits %d + coalesced %d != %d", st.Cache.Hits, st.Coalesced, total-len(payloads))
	}
}

// TestSingleflightWaiterReplaysLeaderBytes pins the waiter path
// deterministically: a request whose key already has a registered flight
// must wait for it and replay its bytes verbatim, marked "coalesced".
func TestSingleflightWaiterReplaysLeaderBytes(t *testing.T) {
	svc, ts := newTestServer(t, Config{CacheSize: 64})
	g, err := cliutil.BuildProgram("FFT")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cliutil.ParseTopology("hypercube:3")
	if err != nil {
		t.Fatal(err)
	}
	saOpt := saDefaults()
	saOpt.Seed = 1991
	saOpt.Restarts = 2
	key, err := cacheKey(g, topo.Name(), cliutilComm(), "sa", saOpt, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fake := []byte(`{"stub":"from-leader"}`)
	f := &flight{done: make(chan struct{})}
	svc.mu.Lock()
	svc.inflight[key] = f
	svc.mu.Unlock()
	go func() {
		time.Sleep(30 * time.Millisecond)
		f.body = fake
		svc.mu.Lock()
		delete(svc.inflight, key)
		svc.mu.Unlock()
		close(f.done)
	}()
	resp, body := post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-DTServe-Cache"); got != "coalesced" {
		t.Fatalf("cache status %q, want coalesced", got)
	}
	if !bytes.Equal(body, fake) {
		t.Fatalf("waiter body %q, want the leader's bytes", body)
	}
	if st := getStats(t, ts.URL); st.Coalesced != 1 || st.Solves != 0 {
		t.Fatalf("coalesced=%d solves=%d, want 1 and 0", st.Coalesced, st.Solves)
	}
}

// TestMetricsEndpoint scrapes /metrics and checks the exposition carries
// the counters and the solve-latency histogram.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Solver = "hlf" }))
	post(t, ts.URL+"/v1/schedule", wireRequest(t, "FFT", func(r *ScheduleRequest) { r.Solver = "hlf" })) // warm hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE dtserve_requests_total counter",
		"dtserve_solves_total 1",
		"dtserve_cache_hits_total 1",
		"dtserve_coalesced_total 0",
		`dtserve_solves_by_solver_total{solver="hlf"} 1`,
		"# TYPE dtserve_disk_hits_total counter",
		"dtserve_disk_hits_total 0",
		"# TYPE dtserve_disk_writes_total counter",
		"# TYPE dtserve_disk_evictions_total counter",
		"# TYPE dtserve_disk_errors_total counter",
		"dtserve_solve_duration_seconds_bucket{le=\"+Inf\"} 1",
		"dtserve_solve_duration_seconds_count 1",
		"# TYPE dtserve_solve_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}

	// Bucket counts must be cumulative: the +Inf bucket equals the count.
	if !strings.Contains(text, `dtserve_solve_duration_seconds_bucket{le="0.001"}`) {
		t.Error("first latency bucket missing")
	}
}

// TestRacedPortfolioNotCached: a portfolio resolved by lower-bound early
// cancellation is timing-dependent, so its result is served but never
// memoized — the same rule as a deadline race.
func TestRacedPortfolioNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 16})
	// Six independent equal tasks on 8 processors without communication:
	// the lower bound max(longest task, T1/8) = 5 is achieved by every
	// list policy, so the portfolio early-cancels on the first finisher.
	g := taskgraph.New("independent")
	for i := 0; i < 6; i++ {
		g.AddTask(fmt.Sprintf("t%d", i), 5)
	}
	req := ScheduleRequest{Graph: g, Topo: "hypercube:3", Solver: "portfolio", NoComm: true}
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.URL+"/v1/schedule", payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("call %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-DTServe-Cache"); got != "miss" {
			t.Fatalf("call %d: early-cancelled portfolio served from cache (%q)", i, got)
		}
		var res Result
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Makespan-5) > 1e-9 {
			t.Fatalf("call %d: makespan %g, want the lower bound 5", i, res.Makespan)
		}
	}
	if st := getStats(t, ts.URL); st.Solves != 2 {
		t.Fatalf("solves=%d, want 2 (raced results are not memoized)", st.Solves)
	}
}
