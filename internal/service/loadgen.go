package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/obs"
)

// LoadGenConfig drives a synthetic traffic run against a dtserve instance.
type LoadGenConfig struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Requests is the total request count (default 200). In batch mode it
	// counts batch calls, each carrying Batch schedule items.
	Requests int
	// Concurrency is the number of in-flight clients (default 8).
	Concurrency int
	// Distinct is how many distinct payloads the run cycles through
	// (default 8): with R requests the expected warm cache hit ratio is
	// (R - Distinct) / R.
	Distinct int
	// Batch, when > 0, switches the run to the streaming batch endpoint:
	// every request is a POST /v1/schedule/batch of this many members,
	// consumed as NDJSON, with first-item and last-item latency reported
	// separately — the gap is what streaming buys over a buffered batch.
	Batch int
	// Programs are benchmark graph keys to mix (default NE, GJ, FFT, MM).
	Programs []string
	// Topo is the topology spec for every request (default hypercube:3).
	Topo string
	// Solver names the solver to exercise (empty = server default).
	Solver string
	// Lane tags every request with a QoS lane ("interactive" or
	// "batch"); empty keeps the server's per-endpoint default.
	Lane string
	// MemberTimeoutMS sets the per-member portfolio budget on every
	// request (0 omits the field). Only meaningful for portfolio solves.
	MemberTimeoutMS int
	// RequestTimeout bounds each HTTP call so one wedged request cannot
	// hang the run (default 60s).
	RequestTimeout time.Duration
	// TraceEvery, when > 0, sets "trace": true on every Nth single
	// schedule request and folds the returned stage breakdowns into the
	// report's per-stage latency table. Single mode only; batch calls are
	// never traced by the generator.
	TraceEvery int
	// ShedRetries bounds how many times one request is retried after a
	// 429 before it counts as an error (default 3). Each retry sleeps for
	// the shed's retry_after_ms hint, capped at 2s.
	ShedRetries int
	// Warm pre-seeds every distinct payload (untimed, sequential, each
	// waited to completion) before the clock starts, so the timed run
	// measures the pure warm-hit serving floor: throughput and latency
	// percentiles then cost no solves, only decode + canonical key +
	// cache read + response write. WarmMisses in the report counts timed
	// requests that still missed — nonzero means eviction or a seeding
	// failure polluted the measurement.
	Warm bool
	// Delta switches the run to the online-rescheduling endpoint: each
	// distinct payload is solved once (untimed) to obtain its content
	// address, then the timed run posts /v1/schedule/delta calls that edit
	// one task's load against those bases. DeltaWarm in the report counts
	// responses that carried an X-DTServe-Warm header, i.e. were actually
	// answered by a warm-started (or warm-cached) solve.
	Delta bool
}

// LoadGenReport summarizes a load generation run.
type LoadGenReport struct {
	Requests   int           `json:"requests"`
	Errors     int           `json:"errors"`
	CacheHits  int           `json:"cache_hits"`
	DiskHits   int           `json:"disk_hits"`
	RemoteHits int           `json:"remote_hits"`
	Coalesced  int           `json:"coalesced"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"requests_per_second"`
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// Sheds counts 429 responses received (each is followed by a backoff
	// honoring the server's retry_after_ms hint); Retries counts the
	// re-sends that followed. A request that stays shed through every
	// retry lands in Errors.
	Sheds   int `json:"sheds,omitempty"`
	Retries int `json:"retries,omitempty"`
	// Traced counts responses that carried a stage breakdown; Stages is
	// the per-stage latency table folded from them.
	Traced int              `json:"traced,omitempty"`
	Stages []StageBreakdown `json:"stages,omitempty"`
	// Warm mode only: Warm records that the cache was pre-seeded before
	// the clock started (so Throughput/latency are the pure warm-hit
	// numbers), WarmSeeded how many distinct keys the seeding phase
	// solved, and WarmMisses how many timed requests still fell through
	// to a solve (0 for a clean measurement).
	Warm       bool `json:"warm,omitempty"`
	WarmSeeded int  `json:"warm_seeded,omitempty"`
	WarmMisses int  `json:"warm_misses,omitempty"`
	// Delta mode only: Delta records that the timed phase hit the
	// rescheduling endpoint, DeltaBases how many base solves seeded it,
	// and DeltaWarm how many timed responses were warm-started (carried
	// X-DTServe-Warm).
	Delta      bool `json:"delta,omitempty"`
	DeltaBases int  `json:"delta_bases,omitempty"`
	DeltaWarm  int  `json:"delta_warm,omitempty"`
	// Batch mode only: per-call latency to the first streamed item vs the
	// last. Zero batch size leaves them nil.
	Batch     int             `json:"batch,omitempty"`
	Items     int             `json:"items,omitempty"`
	FirstItem *LatencySummary `json:"first_item,omitempty"`
	LastItem  *LatencySummary `json:"last_item,omitempty"`
}

// StageBreakdown is one row of the traced-request stage table: latency
// percentiles for one pipeline stage plus its share of the summed
// end-to-end time of the traced population.
type StageBreakdown struct {
	Stage string        `json:"stage"`
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	Share float64       `json:"share"`
}

// LatencySummary is the percentile triple of one latency population.
type LatencySummary struct {
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// String renders the report for terminals.
func (r *LoadGenReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d requests, %d errors, %d memory hits, %d disk hits, %d remote hits, %d coalesced\n",
		r.Requests, r.Errors, r.CacheHits, r.DiskHits, r.RemoteHits, r.Coalesced)
	if r.Warm {
		fmt.Fprintf(&b, "  warm mode   %d keys pre-seeded before the clock; %d timed misses — throughput/latency below are the pure warm-hit floor\n",
			r.WarmSeeded, r.WarmMisses)
	}
	if r.Batch > 0 {
		fmt.Fprintf(&b, "  batch mode  %d items per streamed batch call (%d items total)\n", r.Batch, r.Items)
	}
	if r.Delta {
		fmt.Fprintf(&b, "  delta mode  %d bases seeded; %d of %d timed responses warm-started\n",
			r.DeltaBases, r.DeltaWarm, r.Requests-r.Errors)
	}
	fmt.Fprintf(&b, "  wall time   %12s\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput  %12.1f req/s\n", r.Throughput)
	fmt.Fprintf(&b, "  latency p50 %12s\n", r.LatencyP50.Round(time.Microsecond))
	fmt.Fprintf(&b, "  latency p95 %12s\n", r.LatencyP95.Round(time.Microsecond))
	fmt.Fprintf(&b, "  latency p99 %12s\n", r.LatencyP99.Round(time.Microsecond))
	if r.FirstItem != nil && r.LastItem != nil {
		fmt.Fprintf(&b, "  first item  %12s p50 / %12s p95 (streamed)\n",
			r.FirstItem.P50.Round(time.Microsecond), r.FirstItem.P95.Round(time.Microsecond))
		fmt.Fprintf(&b, "  last item   %12s p50 / %12s p95\n",
			r.LastItem.P50.Round(time.Microsecond), r.LastItem.P95.Round(time.Microsecond))
	}
	if r.Sheds > 0 || r.Retries > 0 {
		fmt.Fprintf(&b, "  sheds       %12d (429s, backed off per retry_after_ms), %d retries\n",
			r.Sheds, r.Retries)
	}
	if r.Traced > 0 {
		fmt.Fprintf(&b, "  stage breakdown from %d traced requests:\n", r.Traced)
		fmt.Fprintf(&b, "    %-16s %7s %12s %12s %7s\n", "stage", "count", "p50", "p95", "share")
		for _, st := range r.Stages {
			fmt.Fprintf(&b, "    %-16s %7d %12s %12s %6.1f%%\n",
				st.Stage, st.Count, st.P50.Round(time.Microsecond), st.P95.Round(time.Microsecond), 100*st.Share)
		}
	}
	return b.String()
}

// percentiles summarizes a sorted latency slice.
func percentiles(lat []time.Duration) LatencySummary {
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	return LatencySummary{P50: pct(0.50), P95: pct(0.95), P99: pct(0.99)}
}

// LoadGen fires cfg.Requests schedule calls at the server from
// cfg.Concurrency clients and reports throughput, latency percentiles and
// the cache hit count (from the X-DTServe-Cache header, or the per-item
// cache tags in batch mode). Distinct payloads differ by graph and seed,
// so the run exercises both the solve engine (cold keys) and the
// content-addressed cache (warm keys). The client fan-out runs on the
// same engine.ParallelFor loop the experiment harness uses, so request i
// always carries payload i%distinct regardless of concurrency.
func LoadGen(cfg LoadGenConfig) (*LoadGenReport, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: missing server URL")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Distinct <= 0 {
		cfg.Distinct = 8
	}
	if len(cfg.Programs) == 0 {
		cfg.Programs = []string{"NE", "GJ", "FFT", "MM"}
	}
	if cfg.Topo == "" {
		cfg.Topo = "hypercube:3"
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.ShedRetries <= 0 {
		cfg.ShedRetries = 3
	}

	// Pre-marshal the distinct payload set so request bodies cost nothing
	// during the timed run. Traced variants are marshaled alongside: the
	// trace field is excluded from the server's cache key, so a traced
	// request exercises the same cache line as its untraced twin.
	singles := make([]ScheduleRequest, cfg.Distinct)
	payloads := make([][]byte, cfg.Distinct)
	traced := make([][]byte, cfg.Distinct)
	for i := range payloads {
		g, err := cliutil.BuildProgram(cfg.Programs[i%len(cfg.Programs)])
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		singles[i] = ScheduleRequest{
			Graph:           g,
			Topo:            cfg.Topo,
			Solver:          cfg.Solver,
			Seed:            int64(1991 + i),
			Lane:            cfg.Lane,
			MemberTimeoutMS: cfg.MemberTimeoutMS,
		}
		body, err := json.Marshal(singles[i])
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		payloads[i] = body
		if cfg.TraceEvery > 0 {
			tr := singles[i]
			tr.Trace = true
			if traced[i], err = json.Marshal(tr); err != nil {
				return nil, fmt.Errorf("loadgen: %w", err)
			}
		}
	}
	// Batch payloads rotate through the distinct singles so a batch mixes
	// cold and warm members.
	batches := make([][]byte, 0)
	if cfg.Batch > 0 {
		for i := 0; i < cfg.Distinct; i++ {
			reqs := make([]ScheduleRequest, cfg.Batch)
			for j := range reqs {
				reqs[j] = singles[(i+j)%len(singles)]
			}
			body, err := json.Marshal(BatchRequest{Requests: reqs})
			if err != nil {
				return nil, fmt.Errorf("loadgen: %w", err)
			}
			batches = append(batches, body)
		}
	}

	if cfg.Delta && cfg.Batch > 0 {
		return nil, fmt.Errorf("loadgen: delta mode and batch mode are mutually exclusive")
	}

	base := strings.TrimSuffix(cfg.URL, "/")
	client := &http.Client{Timeout: cfg.RequestTimeout}
	warmSeeded := 0
	if cfg.Warm {
		// Seed sequentially and wait each solve to completion: batch
		// payloads rotate through the same singles, so seeding the
		// distinct singles warms every key the timed phase can ask for.
		for i, p := range payloads {
			resp, err := client.Post(base+"/v1/schedule", "application/json", bytes.NewReader(p))
			if err != nil {
				return nil, fmt.Errorf("loadgen: warm seed %d: %w", i, err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("loadgen: warm seed %d: status %d", i, resp.StatusCode)
			}
			warmSeeded++
		}
	}
	// Delta mode: solve each distinct payload once (untimed, sequential)
	// to obtain its content address, then pre-marshal one delta payload
	// per base — a single set_load edit, so the edited graph is a true
	// near-miss of its base.
	var deltas [][]byte
	deltaBases := 0
	if cfg.Delta {
		deltas = make([][]byte, cfg.Distinct)
		for i, p := range payloads {
			resp, err := client.Post(base+"/v1/schedule", "application/json", bytes.NewReader(p))
			if err != nil {
				return nil, fmt.Errorf("loadgen: delta base %d: %w", i, err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("loadgen: delta base %d: status %d", i, resp.StatusCode)
			}
			addr := resp.Header.Get("X-DTServe-Address")
			if addr == "" {
				return nil, fmt.Errorf("loadgen: delta base %d: no X-DTServe-Address header (server too old?)", i)
			}
			load := 2.0 + 0.25*float64(i)
			body, err := json.Marshal(DeltaRequest{
				Base:  addr,
				Edits: []DeltaEdit{{Op: "set_load", Task: 0, Load: &load}},
				Lane:  cfg.Lane,
			})
			if err != nil {
				return nil, fmt.Errorf("loadgen: %w", err)
			}
			deltas[i] = body
			deltaBases++
		}
	}
	latencies := make([]time.Duration, cfg.Requests)
	firstLat := make([]time.Duration, cfg.Requests)
	lastLat := make([]time.Duration, cfg.Requests)
	var errCount, hitCount, diskCount, remoteCount, coalCount, itemCount atomic.Int64
	var shedCount, retryCount, deltaWarmCount atomic.Int64
	stages := newStageCollector()

	start := time.Now()
	_ = engine.ParallelFor(cfg.Concurrency, cfg.Requests, func(i int, _ *engine.Worker) error {
		if cfg.Batch > 0 {
			fireBatch(client, base, batches[i%len(batches)], i,
				latencies, firstLat, lastLat, &errCount, &hitCount, &diskCount, &remoteCount, &coalCount, &itemCount, &shedCount)
			return nil
		}
		wantTrace := cfg.TraceEvery > 0 && i%cfg.TraceEvery == 0
		endpoint := base + "/v1/schedule"
		payload := payloads[i%len(payloads)]
		if cfg.Delta {
			endpoint = base + "/v1/schedule/delta"
			payload = deltas[i%len(deltas)]
			wantTrace = false
		} else if wantTrace {
			payload = traced[i%len(traced)]
		}
		t0 := time.Now()
		var resp *http.Response
		for attempt := 0; ; attempt++ {
			var err error
			resp, err = client.Post(endpoint, "application/json", bytes.NewReader(payload))
			if err != nil {
				errCount.Add(1)
				latencies[i] = time.Since(t0)
				return nil
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				break
			}
			// Admission control shed us: honor the hint instead of
			// hammering an overloaded lane.
			shedCount.Add(1)
			hint := shedBackoff(resp)
			if attempt == cfg.ShedRetries {
				errCount.Add(1)
				latencies[i] = time.Since(t0)
				return nil
			}
			time.Sleep(hint)
			retryCount.Add(1)
		}
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			latencies[i] = time.Since(t0)
			errCount.Add(1)
			return nil
		}
		if wantTrace {
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			latencies[i] = time.Since(t0)
			if err != nil {
				errCount.Add(1)
				return nil
			}
			stages.add(body)
		} else {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			latencies[i] = time.Since(t0)
		}
		countCacheTag(resp.Header.Get("X-DTServe-Cache"), &hitCount, &diskCount, &remoteCount, &coalCount)
		if cfg.Delta && resp.Header.Get("X-DTServe-Warm") != "" {
			deltaWarmCount.Add(1)
		}
		return nil
	})
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	total := percentiles(latencies)
	report := &LoadGenReport{
		Requests:   cfg.Requests,
		Errors:     int(errCount.Load()),
		CacheHits:  int(hitCount.Load()),
		DiskHits:   int(diskCount.Load()),
		RemoteHits: int(remoteCount.Load()),
		Coalesced:  int(coalCount.Load()),
		Elapsed:    elapsed,
		Throughput: float64(cfg.Requests) / elapsed.Seconds(),
		LatencyP50: total.P50,
		LatencyP95: total.P95,
		LatencyP99: total.P99,
		Sheds:      int(shedCount.Load()),
		Retries:    int(retryCount.Load()),
	}
	report.Traced, report.Stages = stages.summarize()
	if cfg.Delta {
		report.Delta = true
		report.DeltaBases = deltaBases
		report.DeltaWarm = int(deltaWarmCount.Load())
	}
	if cfg.Warm {
		report.Warm = true
		report.WarmSeeded = warmSeeded
		served := report.CacheHits + report.DiskHits + report.RemoteHits + report.Coalesced
		answered := report.Requests - report.Errors
		if cfg.Batch > 0 {
			answered = report.Items
		}
		if misses := answered - served; misses > 0 {
			report.WarmMisses = misses
		}
	}
	if cfg.Batch > 0 {
		report.Batch = cfg.Batch
		report.Items = int(itemCount.Load())
		// A batch call that failed before its first item never set its
		// first/last slots; including those zeros would drag the reported
		// percentiles toward 0, so only calls that streamed at least one
		// item count (a real item latency is never exactly zero).
		first := make([]time.Duration, 0, len(firstLat))
		last := make([]time.Duration, 0, len(lastLat))
		for i := range firstLat {
			if firstLat[i] > 0 {
				first = append(first, firstLat[i])
				last = append(last, lastLat[i])
			}
		}
		sort.Slice(first, func(i, j int) bool { return first[i] < first[j] })
		sort.Slice(last, func(i, j int) bool { return last[i] < last[j] })
		fp := percentiles(first)
		lp := percentiles(last)
		report.FirstItem = &fp
		report.LastItem = &lp
	}
	return report, nil
}

// shedBackoff drains a 429 response and returns how long its
// retry_after_ms hint says to wait, clamped to [50ms, 2s] so a missing
// or absurd hint cannot stall or defeat the backoff.
func shedBackoff(resp *http.Response) time.Duration {
	var er ErrorResponse
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	_ = json.Unmarshal(data, &er)
	d := time.Duration(er.RetryAfterMS) * time.Millisecond
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// stageCollector folds the trace blocks of traced responses into
// per-stage latency populations. Safe for concurrent use.
type stageCollector struct {
	mu      sync.Mutex
	byStage map[string][]time.Duration
	totalNS int64
	traced  int
}

func newStageCollector() *stageCollector {
	return &stageCollector{byStage: make(map[string][]time.Duration)}
}

// add parses one response body's "trace" block. Bodies without one (the
// server was asked but answered an error shape, or parsing fails) are
// ignored — the collector only summarizes what actually arrived.
func (c *stageCollector) add(body []byte) {
	var envelope struct {
		Trace *obs.TraceData `json:"trace"`
	}
	if json.Unmarshal(body, &envelope) != nil || envelope.Trace == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traced++
	c.totalNS += envelope.Trace.TotalNS
	for _, st := range envelope.Trace.Stages {
		if st.Depth != 0 {
			continue // portfolio members overlap; they are not shares of the pipeline
		}
		c.byStage[st.Stage] = append(c.byStage[st.Stage], time.Duration(st.DurNS))
	}
}

// summarize renders the collected populations as report rows, in
// pipeline order, with each stage's share of the summed traced time.
func (c *stageCollector) summarize() (int, []StageBreakdown) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.traced == 0 {
		return 0, nil
	}
	order := append([]string{}, obs.Stages...)
	for stage := range c.byStage {
		known := false
		for _, s := range order {
			if s == stage {
				known = true
				break
			}
		}
		if !known {
			order = append(order, stage)
		}
	}
	out := make([]StageBreakdown, 0, len(c.byStage))
	for _, stage := range order {
		lat := c.byStage[stage]
		if len(lat) == 0 {
			continue
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		var sum time.Duration
		for _, d := range lat {
			sum += d
		}
		p := percentiles(lat)
		share := 0.0
		if c.totalNS > 0 {
			share = float64(sum.Nanoseconds()) / float64(c.totalNS)
		}
		out = append(out, StageBreakdown{
			Stage: stage, Count: len(lat), P50: p.P50, P95: p.P95, Share: share,
		})
	}
	return c.traced, out
}

// fireBatch issues one streaming batch call and records the latency of
// the first and last NDJSON items separately: with pipelining working,
// the first item of a cold batch lands well before the slowest member
// completes.
func fireBatch(client *http.Client, base string, payload []byte, i int,
	latencies, firstLat, lastLat []time.Duration,
	errCount, hitCount, diskCount, remoteCount, coalCount, itemCount, shedCount *atomic.Int64) {

	t0 := time.Now()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/schedule/batch", bytes.NewReader(payload))
	if err != nil {
		errCount.Add(1)
		latencies[i] = time.Since(t0)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		errCount.Add(1)
		latencies[i] = time.Since(t0)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests {
			shedCount.Add(1)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		errCount.Add(1)
		latencies[i] = time.Since(t0)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	seen := 0
	for sc.Scan() {
		var item BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			errCount.Add(1)
			continue
		}
		seen++
		if seen == 1 {
			firstLat[i] = time.Since(t0)
		}
		lastLat[i] = time.Since(t0)
		if item.Error != "" {
			errCount.Add(1)
			continue
		}
		itemCount.Add(1)
		countCacheTag(item.Cache, hitCount, diskCount, remoteCount, coalCount)
	}
	if err := sc.Err(); err != nil {
		errCount.Add(1)
	}
	latencies[i] = time.Since(t0)
}

// countCacheTag buckets one cache status tag into the hit counters.
func countCacheTag(tag string, hit, disk, remote, coal *atomic.Int64) {
	switch tag {
	case "hit":
		hit.Add(1)
	case "disk":
		disk.Add(1)
	case "remote":
		remote.Add(1)
	case "coalesced":
		coal.Add(1)
	}
}
