package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
)

// LoadGenConfig drives a synthetic traffic run against a dtserve instance.
type LoadGenConfig struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Requests is the total request count (default 200).
	Requests int
	// Concurrency is the number of in-flight clients (default 8).
	Concurrency int
	// Distinct is how many distinct payloads the run cycles through
	// (default 8): with R requests the expected warm cache hit ratio is
	// (R - Distinct) / R.
	Distinct int
	// Programs are benchmark graph keys to mix (default NE, GJ, FFT, MM).
	Programs []string
	// Topo is the topology spec for every request (default hypercube:3).
	Topo string
	// Solver names the solver to exercise (empty = server default).
	Solver string
	// RequestTimeout bounds each HTTP call so one wedged request cannot
	// hang the run (default 60s).
	RequestTimeout time.Duration
}

// LoadGenReport summarizes a load generation run.
type LoadGenReport struct {
	Requests   int           `json:"requests"`
	Errors     int           `json:"errors"`
	CacheHits  int           `json:"cache_hits"`
	DiskHits   int           `json:"disk_hits"`
	Coalesced  int           `json:"coalesced"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"requests_per_second"`
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP95 time.Duration `json:"latency_p95_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
}

// String renders the report for terminals.
func (r *LoadGenReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d requests, %d errors, %d memory hits, %d disk hits, %d coalesced\n",
		r.Requests, r.Errors, r.CacheHits, r.DiskHits, r.Coalesced)
	fmt.Fprintf(&b, "  wall time   %12s\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  throughput  %12.1f req/s\n", r.Throughput)
	fmt.Fprintf(&b, "  latency p50 %12s\n", r.LatencyP50.Round(time.Microsecond))
	fmt.Fprintf(&b, "  latency p95 %12s\n", r.LatencyP95.Round(time.Microsecond))
	fmt.Fprintf(&b, "  latency p99 %12s\n", r.LatencyP99.Round(time.Microsecond))
	return b.String()
}

// LoadGen fires cfg.Requests schedule calls at the server from
// cfg.Concurrency clients and reports throughput, latency percentiles and
// the cache hit count (from the X-DTServe-Cache response header). Distinct
// payloads differ by graph and seed, so the run exercises both the solver
// pool (cold keys) and the content-addressed cache (warm keys).
func LoadGen(cfg LoadGenConfig) (*LoadGenReport, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: missing server URL")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Distinct <= 0 {
		cfg.Distinct = 8
	}
	if len(cfg.Programs) == 0 {
		cfg.Programs = []string{"NE", "GJ", "FFT", "MM"}
	}
	if cfg.Topo == "" {
		cfg.Topo = "hypercube:3"
	}

	// Pre-marshal the distinct payload set so request bodies cost nothing
	// during the timed run.
	payloads := make([][]byte, cfg.Distinct)
	for i := range payloads {
		g, err := cliutil.BuildProgram(cfg.Programs[i%len(cfg.Programs)])
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		body, err := json.Marshal(ScheduleRequest{
			Graph:  g,
			Topo:   cfg.Topo,
			Solver: cfg.Solver,
			Seed:   int64(1991 + i),
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		payloads[i] = body
	}

	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}

	url := strings.TrimSuffix(cfg.URL, "/") + "/v1/schedule"
	client := &http.Client{Timeout: cfg.RequestTimeout}
	latencies := make([]time.Duration, cfg.Requests)
	var errCount, hitCount, diskCount, coalCount atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(payloads[i%len(payloads)]))
				if err != nil {
					errCount.Add(1)
					latencies[i] = time.Since(t0)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[i] = time.Since(t0)
				if resp.StatusCode != http.StatusOK {
					errCount.Add(1)
				} else {
					switch resp.Header.Get("X-DTServe-Cache") {
					case "hit":
						hitCount.Add(1)
					case "disk":
						diskCount.Add(1)
					case "coalesced":
						coalCount.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		idx := int(p * float64(len(latencies)-1))
		return latencies[idx]
	}
	return &LoadGenReport{
		Requests:   cfg.Requests,
		Errors:     int(errCount.Load()),
		CacheHits:  int(hitCount.Load()),
		DiskHits:   int(diskCount.Load()),
		Coalesced:  int(coalCount.Load()),
		Elapsed:    elapsed,
		Throughput: float64(cfg.Requests) / elapsed.Seconds(),
		LatencyP50: pct(0.50),
		LatencyP95: pct(0.95),
		LatencyP99: pct(0.99),
	}, nil
}
