package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/solver"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// startServer creates a server + HTTP listener without tying their
// shutdown to the test end, so restart tests can stop one instance and
// start another over the same cache directory mid-test. The returned
// stop function is idempotent.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server, func()) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	stop := func() {
		ts.Close()
		svc.Close()
	}
	t.Cleanup(stop)
	return svc, ts, stop
}

// diskPayloads returns distinct cacheable request bodies (cheap list
// solver, distinct programs/seeds so every payload is its own cache key).
func diskPayloads(t *testing.T, n int) [][]byte {
	t.Helper()
	programs := []string{"FFT", "NE", "GJ"}
	out := make([][]byte, n)
	for i := range out {
		g, err := cliutil.BuildProgram(programs[i%len(programs)])
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(ScheduleRequest{
			Graph:  g,
			Topo:   "hypercube:3",
			Solver: "hlf",
			Seed:   int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = body
	}
	return out
}

// TestWarmRestartServesFromDisk is the tentpole's proof test: a second
// server started on the same cache directory must replay every
// previously solved graph byte-identically from the disk tier — zero
// solver invocations, X-DTServe-Cache: disk — and promote each hit into
// its memory tier.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	payloads := diskPayloads(t, 3)

	svc1, ts1, stop1 := startServer(t, Config{CacheSize: 64, CacheDir: dir})
	bodies := make([][]byte, len(payloads))
	for i, p := range payloads {
		resp, body := post(t, ts1.URL+"/v1/schedule", p)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-DTServe-Cache"); got != "miss" {
			t.Fatalf("cold request %d reported cache=%q", i, got)
		}
		bodies[i] = body
	}
	if st := svc1.Stats(); st.Solves != uint64(len(payloads)) {
		t.Fatalf("first server solves=%d, want %d", st.Solves, len(payloads))
	}
	stop1() // drains the write-behind queue: entries are durable now

	svc2, ts2, _ := startServer(t, Config{CacheSize: 64, CacheDir: dir})
	for i, p := range payloads {
		resp, body := post(t, ts2.URL+"/v1/schedule", p)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-DTServe-Cache"); got != "disk" {
			t.Fatalf("warm request %d reported cache=%q, want disk", i, got)
		}
		if !bytes.Equal(bodies[i], body) {
			t.Fatalf("restarted server body %d differs from the original solve", i)
		}
	}
	st := svc2.Stats()
	if st.Solves != 0 || st.Pool.Completed != 0 {
		t.Fatalf("restarted server invoked a solver: solves=%d pool=%d", st.Solves, st.Pool.Completed)
	}
	if st.Disk.Hits != uint64(len(payloads)) {
		t.Fatalf("disk hits=%d, want %d", st.Disk.Hits, len(payloads))
	}
	if len(st.BySolver) != 0 {
		t.Fatalf("restarted server recorded solver executions: %v", st.BySolver)
	}

	// Disk hits were promoted: the same payload now hits the memory tier.
	resp, body := post(t, ts2.URL+"/v1/schedule", payloads[0])
	if got := resp.Header.Get("X-DTServe-Cache"); got != "hit" {
		t.Fatalf("promoted entry reported cache=%q, want hit (body %s)", got, body)
	}
	if !bytes.Equal(bodies[0], body) {
		t.Fatal("memory-promoted body differs from the original solve")
	}
}

// TestServerDeletesCorruptDiskEntries is the crash-safety test: a
// truncated entry, a checksum-corrupted entry and a wrong-version entry
// planted in the cache dir must each be detected and deleted, the
// request re-solved, and disk_errors bumped — corrupt bytes are never
// served.
func TestServerDeletesCorruptDiskEntries(t *testing.T) {
	dir := t.TempDir()
	payloads := diskPayloads(t, 3)

	// Solve once to learn the genuine entries, then vandalize them.
	svc1, ts1, stop1 := startServer(t, Config{CacheSize: 64, CacheDir: dir})
	var bodies [][]byte
	var keys []string
	for _, p := range payloads {
		resp, body := post(t, ts1.URL+"/v1/schedule", p)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("setup solve failed: %d %s", resp.StatusCode, body)
		}
		bodies = append(bodies, body)
	}
	disk := svc1.disk.(*DiskCache)
	stop1()
	for key := range disk.entries {
		keys = append(keys, key)
	}
	if len(keys) != 3 {
		t.Fatalf("expected 3 disk entries, found %d", len(keys))
	}

	vandalize := []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)/2] }, // truncated
		func(b []byte) []byte { // checksum mismatch
			c := bytes.Clone(b)
			c[len(c)-1] ^= 0xff
			return c
		},
		func(b []byte) []byte { // stale format version
			c := bytes.Clone(b)
			c[3] = 0xee
			return c
		},
	}
	for i, key := range keys {
		raw, err := os.ReadFile(disk.path(key))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(disk.path(key), vandalize[i](raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	svc2, ts2, stop2 := startServer(t, Config{CacheSize: 64, CacheDir: dir})
	for i, p := range payloads {
		resp, body := post(t, ts2.URL+"/v1/schedule", p)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("re-solve %d: status %d: %s", i, resp.StatusCode, body)
		}
		// Detection downgrades the request to a normal miss: re-solved,
		// never served from the bad entry.
		if got := resp.Header.Get("X-DTServe-Cache"); got != "miss" {
			t.Fatalf("request %d over a corrupt entry reported cache=%q", i, got)
		}
		if !bytes.Equal(bodies[i], body) {
			t.Fatalf("re-solved body %d differs from the original (determinism broken)", i)
		}
	}
	st := svc2.Stats()
	if st.Disk.Errors != 3 {
		t.Fatalf("disk errors=%d, want 3 (one per vandalized entry)", st.Disk.Errors)
	}
	if st.Solves != 3 {
		t.Fatalf("solves=%d, want 3 re-solves", st.Solves)
	}
	stop2() // flush the replacement writes

	// The corrupt entries were replaced by good ones: a third server
	// serves all three from disk.
	svc3, ts3, _ := startServer(t, Config{CacheSize: 64, CacheDir: dir})
	for i, p := range payloads {
		resp, body := post(t, ts3.URL+"/v1/schedule", p)
		if got := resp.Header.Get("X-DTServe-Cache"); got != "disk" {
			t.Fatalf("healed entry %d reported cache=%q, want disk", i, got)
		}
		if !bytes.Equal(bodies[i], body) {
			t.Fatalf("healed body %d differs", i)
		}
	}
	if st := svc3.Stats(); st.Solves != 0 || st.Disk.Errors != 0 {
		t.Fatalf("healed dir still errored: %+v", st.Disk)
	}
}

// TestDiskTierConservationUnderConcurrency hammers one server with
// concurrent identical and distinct requests — the memory tier sized to
// thrash and the disk tier sized to fill and evict — and checks the
// extended conservation law
//
//	solves + mem_hits + disk_hits + coalesced == requests
//
// plus the rule that a Raced portfolio result is never written to either
// tier. Run under -race in CI.
func TestDiskTierConservationUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	// Memory: 2 entries for ~6 hot keys, so the memory tier constantly
	// evicts and the disk tier serves re-reads. Disk: a few KiB so it
	// also evicts while filling.
	svc, ts, stop := startServer(t, Config{
		CacheSize:      2,
		CacheDir:       dir,
		DiskCacheBytes: 8 << 10,
	})

	payloads := diskPayloads(t, 6)

	// A portfolio on independent equal tasks without communication hits
	// the makespan lower bound immediately: the result is Raced
	// (early-cancelled) and must never be memoized in any tier.
	g := taskgraph.New("independent")
	for i := 0; i < 6; i++ {
		g.AddTask(fmt.Sprintf("t%d", i), 5)
	}
	racedReq := ScheduleRequest{Graph: g, Topo: "hypercube:3", Solver: "portfolio", NoComm: true}
	racedPayload, err := json.Marshal(racedReq)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]byte{}, payloads...), racedPayload)

	const workers = 8
	const rounds = 3
	var okCount, reqCount int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := range all {
					// Stagger the order per worker so identical requests
					// overlap (coalescing) and distinct ones interleave.
					p := all[(i+w)%len(all)]
					resp, body := post(t, ts.URL+"/v1/schedule", p)
					mu.Lock()
					reqCount++
					if resp.StatusCode == http.StatusOK {
						okCount++
					} else {
						t.Errorf("worker %d: status %d: %s", w, resp.StatusCode, body)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()

	st := svc.Stats()
	got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Coalesced
	if got != uint64(okCount) {
		t.Fatalf("conservation law violated: solves %d + mem hits %d + disk hits %d + coalesced %d = %d, want %d",
			st.Solves, st.Cache.Hits, st.Disk.Hits, st.Coalesced, got, okCount)
	}
	if st.Disk.Writes == 0 {
		t.Fatal("disk tier never filled")
	}
	if st.Disk.Evictions == 0 {
		t.Fatal("disk tier never evicted (budget not exercised)")
	}
	if st.Disk.Errors != 0 {
		t.Fatalf("disk tier errored under concurrency: %+v", st.Disk)
	}

	// Drain the write-behind queue, then prove the Raced key reached
	// neither tier.
	stop()
	topo, err := cliutil.ParseTopology(racedReq.Topo)
	if err != nil {
		t.Fatal(err)
	}
	slv, err := solver.Get("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams().NoComm()
	key, err := cacheKey(g, topo.Name(), comm, slv.Name(), saDefaults(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc.cache.mu.Lock()
	_, inMem := svc.cache.items[key]
	svc.cache.mu.Unlock()
	if inMem {
		t.Fatal("raced portfolio result found in the memory tier")
	}
	dc := svc.disk.(*DiskCache)
	dc.mu.Lock()
	_, inDisk := dc.entries[key]
	dc.mu.Unlock()
	if inDisk {
		t.Fatal("raced portfolio result found in the disk tier index")
	}
	if _, err := os.Stat(dc.path(key)); !os.IsNotExist(err) {
		t.Fatalf("raced portfolio result found on disk (err=%v)", err)
	}
}

// TestLoadGenReportsDiskHits: the loadgen client splits warm traffic into
// memory and disk hits; against a freshly restarted server the first
// touch of every distinct payload is a disk hit.
func TestLoadGenReportsDiskHits(t *testing.T) {
	dir := t.TempDir()
	lg := LoadGenConfig{
		Requests:    12,
		Concurrency: 1, // sequential: deterministic hit accounting
		Distinct:    3,
		Programs:    []string{"FFT", "NE"},
		Solver:      "hlf",
	}

	_, ts1, stop1 := startServer(t, Config{CacheSize: 64, CacheDir: dir})
	lg.URL = ts1.URL
	if _, err := LoadGen(lg); err != nil {
		t.Fatal(err)
	}
	stop1()

	svc2, ts2, _ := startServer(t, Config{CacheSize: 64, CacheDir: dir})
	lg.URL = ts2.URL
	report, err := LoadGen(lg)
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("loadgen errors: %d", report.Errors)
	}
	if report.DiskHits != lg.Distinct {
		t.Fatalf("disk hits=%d, want %d (first touch of each distinct payload)", report.DiskHits, lg.Distinct)
	}
	if report.CacheHits != lg.Requests-lg.Distinct {
		t.Fatalf("memory hits=%d, want %d", report.CacheHits, lg.Requests-lg.Distinct)
	}
	st := svc2.Stats()
	if st.Solves != 0 {
		t.Fatalf("restarted loadgen run reached a solver: %d solves", st.Solves)
	}
	if got := st.Solves + st.Cache.Hits + st.Disk.Hits + st.Coalesced; got != uint64(report.Requests) {
		t.Fatalf("conservation law: %d, want %d", got, report.Requests)
	}
}
