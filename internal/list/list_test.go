package list

import (
	"math"
	"testing"

	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func model(t *testing.T, g *taskgraph.Graph, nprocs int, withComm bool) machsim.Model {
	t.Helper()
	topo, err := topology.Complete(nprocs)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	if !withComm {
		comm = comm.NoComm()
	}
	return machsim.Model{Graph: g, Topo: topo, Comm: comm}
}

// grahamReduced is the Graham anomaly instance with reduced times: 9
// tasks, T1=2, T2..T4=1, T5..T8=3, T9=8, T1<T9, T4<T5..T8.
func grahamReduced(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.New("graham")
	durs := []float64{2, 1, 1, 1, 3, 3, 3, 3, 8}
	ids := make([]taskgraph.TaskID, len(durs))
	for i, d := range durs {
		ids[i] = g.AddTask("", d)
	}
	g.MustAddEdge(ids[0], ids[8], 0)
	for _, s := range []int{4, 5, 6, 7} {
		g.MustAddEdge(ids[3], ids[s], 0)
	}
	return g
}

func TestHLFOrdersByLevel(t *testing.T) {
	// Diamond with distinct levels: A(2)->B(3),C(5)->D(1). Levels: A=8,
	// C=6, B=4, D=1. With one processor, HLF runs A, C, B, D.
	g := taskgraph.New("d")
	a := g.AddTask("A", 2)
	b := g.AddTask("B", 3)
	c := g.AddTask("C", 5)
	d := g.AddTask("D", 1)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(a, c, 0)
	g.MustAddEdge(b, d, 0)
	g.MustAddEdge(c, d, 0)
	hlf, err := NewHLF(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(model(t, g, 1, false), hlf, machsim.Options{RecordGantt: true})
	if err != nil {
		t.Fatal(err)
	}
	var order []taskgraph.TaskID
	for _, iv := range res.Gantt {
		if iv.Kind == machsim.KindCompute {
			order = append(order, iv.Task)
		}
	}
	want := []taskgraph.TaskID{a, c, b, d}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

func TestHLFTieBreaksByID(t *testing.T) {
	g := taskgraph.New("tie")
	g.AddTask("a", 5)
	g.AddTask("b", 5)
	g.AddTask("c", 5)
	hlf, err := NewHLF(g)
	if err != nil {
		t.Fatal(err)
	}
	ep := &machsim.Epoch{
		Ready: []taskgraph.TaskID{0, 1, 2},
		Idle:  []int{0, 1},
	}
	as := hlf.Assign(ep)
	if len(as) != 2 || as[0].Task != 0 || as[1].Task != 1 {
		t.Fatalf("assignments = %+v", as)
	}
}

func TestHLFLevelsExposed(t *testing.T) {
	g, _ := taskgraph.Chain("c", 3, 2, 0)
	hlf, err := NewHLF(g)
	if err != nil {
		t.Fatal(err)
	}
	levels := hlf.Levels()
	if len(levels) != 3 || levels[0] != 6 || levels[2] != 2 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestNewHLFRejectsCycles(t *testing.T) {
	g := taskgraph.New("cyc")
	a := g.AddTask("a", 1)
	b := g.AddTask("b", 1)
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, err := NewHLF(g); err == nil {
		t.Error("cycle accepted")
	}
}

func TestFIFOFollowsListOrder(t *testing.T) {
	// On the reduced Graham instance, the original-list scheduler produces
	// the anomalous makespan 13 on 3 processors (optimum is 10).
	g := grahamReduced(t)
	res, err := machsim.Run(model(t, g, 3, false), NewFIFO(), machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-13) > 1e-9 {
		t.Fatalf("FIFO makespan = %g, want 13 (Graham anomaly)", res.Makespan)
	}
}

func TestHLFSolvesGrahamInstance(t *testing.T) {
	g := grahamReduced(t)
	hlf, err := NewHLF(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(model(t, g, 3, false), hlf, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := g.LowerBoundMakespan(3)
	if math.Abs(res.Makespan-lb) > 1e-9 {
		t.Fatalf("HLF makespan = %g, want optimum %g", res.Makespan, lb)
	}
}

func TestRandomPolicyIsDeterministicPerSeed(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 10, 5, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) float64 {
		res, err := machsim.Run(model(t, g, 4, true), NewRandom(seed), machsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if run(5) != run(5) {
		t.Error("same seed differs")
	}
}

func TestRandomPolicyCompletesAllTasks(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 7, 5, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(model(t, g, 3, true), NewRandom(9), machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id, f := range res.Finish {
		if f < 0 {
			t.Fatalf("task %d unfinished", id)
		}
	}
}

func TestCommAwareHLFPrefersPredecessorProcessor(t *testing.T) {
	// Chain a->b with a heavy edge: the comm-aware variant must place b on
	// a's processor, plain HLF places it on the first idle one.
	g := taskgraph.New("c")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 4000)
	topo, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()

	ca, err := NewCommAwareHLF(g, topo, comm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, ca, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Errorf("comm-aware HLF produced %d messages, want 0", res.Messages)
	}
	if res.Proc[a] != res.Proc[b] {
		t.Errorf("b placed on %d, a on %d", res.Proc[b], res.Proc[a])
	}
}

func TestCommAwareHLFBeatsPlainHLFOnPingPong(t *testing.T) {
	// Two parallel chains with heavy edges on a 2-processor machine:
	// plain HLF ping-pongs the chains across processors, the comm-aware
	// variant keeps each chain local.
	g := taskgraph.New("pp")
	prev := []taskgraph.TaskID{g.AddTask("a0", 10), g.AddTask("b0", 10)}
	for k := 1; k < 4; k++ {
		cur := []taskgraph.TaskID{
			g.AddTask("a", 10),
			g.AddTask("b", 10),
		}
		g.MustAddEdge(prev[0], cur[0], 2000)
		g.MustAddEdge(prev[1], cur[1], 2000)
		prev = cur
	}
	topo, err := topology.ChainTopo(2)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	m := machsim.Model{Graph: g, Topo: topo, Comm: comm}

	hlf, err := NewHLF(g)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := machsim.Run(m, hlf, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := NewCommAwareHLF(g, topo, comm)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := machsim.Run(m, ca, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aware.Makespan > plain.Makespan {
		t.Errorf("comm-aware (%g) worse than plain (%g)", aware.Makespan, plain.Makespan)
	}
	if aware.Messages != 0 {
		t.Errorf("comm-aware produced %d messages", aware.Messages)
	}
}

func TestNewCommAwareHLFErrors(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	if _, err := NewCommAwareHLF(g, nil, topology.DefaultCommParams()); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	topo, _ := topology.Complete(2)
	hlf, _ := NewHLF(g)
	ca, _ := NewCommAwareHLF(g, topo, topology.DefaultCommParams())
	names := map[string]machsim.Policy{
		"HLF":      hlf,
		"FIFO":     NewFIFO(),
		"Random":   NewRandom(1),
		"HLF+comm": ca,
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}
