package list

import (
	"fmt"
	"sort"

	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// ETF is an Earliest Task First scheduler in the spirit of Hwang et al.:
// at every epoch it repeatedly commits the (ready task, idle processor)
// pair with the smallest estimated start time, where the estimate charges
// the equation-4 communication cost of every input message on top of the
// epoch time. Task levels break ties, so ETF degenerates to HLF when
// communication is free. ETF is the strongest deterministic competitor to
// the annealing scheduler in this repository.
type ETF struct {
	levels []float64
	topo   *topology.Topology
	comm   topology.CommParams
	g      *taskgraph.Graph
}

// NewETF builds the policy.
func NewETF(g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams) (*ETF, error) {
	if topo == nil {
		return nil, fmt.Errorf("list: nil topology")
	}
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	return &ETF{levels: levels, topo: topo, comm: comm, g: g}, nil
}

// Name implements machsim.Policy.
func (e *ETF) Name() string { return "ETF" }

// Assign implements machsim.Policy.
func (e *ETF) Assign(ep *machsim.Epoch) []machsim.Assignment {
	tasks := append([]taskgraph.TaskID(nil), ep.Ready...)
	procs := append([]int(nil), ep.Idle...)
	var out []machsim.Assignment
	for len(tasks) > 0 && len(procs) > 0 {
		bestT, bestP := -1, -1
		bestCost := 0.0
		bestLevel := 0.0
		for ti, t := range tasks {
			for pi, p := range procs {
				cost := e.inputDelay(ep.Sim, t, p)
				better := false
				switch {
				case bestT < 0:
					better = true
				case cost < bestCost-1e-12:
					better = true
				case cost <= bestCost+1e-12 && e.levels[t] > bestLevel:
					better = true
				}
				if better {
					bestT, bestP = ti, pi
					bestCost = cost
					bestLevel = e.levels[t]
				}
			}
		}
		out = append(out, machsim.Assignment{Task: tasks[bestT], Proc: procs[bestP]})
		tasks = append(tasks[:bestT], tasks[bestT+1:]...)
		procs = append(procs[:bestP], procs[bestP+1:]...)
	}
	return out
}

// inputDelay estimates how long the task's inputs take to reach proc: the
// worst single message by equation (4). (Messages overlap in flight, so
// the max is a closer estimate than the sum.)
func (e *ETF) inputDelay(sim *machsim.Simulator, t taskgraph.TaskID, proc int) float64 {
	worst := 0.0
	for _, h := range e.g.Predecessors(t) {
		src := sim.ProcOf(h.To)
		if src < 0 {
			continue
		}
		if c := e.comm.CommCost(e.topo.Dist(src, proc), h.Bits); c > worst {
			worst = c
		}
	}
	return worst
}

// LPT schedules the ready task with the Longest Processing Time first —
// the classic Graham bin-packing heuristic, blind to both levels and
// communication. It serves as a mid-strength baseline.
type LPT struct {
	g *taskgraph.Graph
}

// NewLPT builds the policy.
func NewLPT(g *taskgraph.Graph) *LPT { return &LPT{g: g} }

// Name implements machsim.Policy.
func (l *LPT) Name() string { return "LPT" }

// Assign implements machsim.Policy.
func (l *LPT) Assign(ep *machsim.Epoch) []machsim.Assignment {
	order := append([]taskgraph.TaskID(nil), ep.Ready...)
	sort.SliceStable(order, func(i, j int) bool {
		li, lj := l.g.Load(order[i]), l.g.Load(order[j])
		if li != lj {
			return li > lj
		}
		return order[i] < order[j]
	})
	n := len(order)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	out := make([]machsim.Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, machsim.Assignment{Task: order[k], Proc: ep.Idle[k]})
	}
	return out
}

// MISF prioritizes ready tasks by Most Immediate Successors First
// (Kasahara & Narita's secondary key), a classic alternative to pure
// levels: unlocking many successors keeps the ready pool full.
type MISF struct {
	levels []float64
	g      *taskgraph.Graph
}

// NewMISF builds the policy.
func NewMISF(g *taskgraph.Graph) (*MISF, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	return &MISF{levels: levels, g: g}, nil
}

// Name implements machsim.Policy.
func (m *MISF) Name() string { return "MISF" }

// Assign implements machsim.Policy.
func (m *MISF) Assign(ep *machsim.Epoch) []machsim.Assignment {
	order := append([]taskgraph.TaskID(nil), ep.Ready...)
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := m.g.OutDegree(order[i]), m.g.OutDegree(order[j])
		if si != sj {
			return si > sj
		}
		li, lj := m.levels[order[i]], m.levels[order[j]]
		if li != lj {
			return li > lj
		}
		return order[i] < order[j]
	})
	n := len(order)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	out := make([]machsim.Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, machsim.Assignment{Task: order[k], Proc: ep.Idle[k]})
	}
	return out
}
