// Package list implements list-scheduling policies for the machine
// simulator, foremost the Highest Level First (HLF) algorithm the paper
// uses as its baseline (Hu 1961; Adam, Chandy & Dickinson 1974; Kaufman
// 1974).
//
// A list scheduler keeps the ready tasks ordered by a priority and, at
// every assignment epoch, greedily fills the idle processors in that
// order. HLF's priority is the task level: the accumulated CPU time of
// the longest chain from the task to a leaf. HLF places tasks on
// processors arbitrarily ("the arbitrary placement of the HLF-tasks",
// §6b) — the communication-aware variants in this package are extensions
// used by the ablation experiments.
package list

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// HLF is the Highest Level First list scheduler: ready tasks sorted by
// descending level, placed onto idle processors in index order.
type HLF struct {
	levels []float64
}

// NewHLF builds an HLF policy for the given graph.
func NewHLF(g *taskgraph.Graph) (*HLF, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	return &HLF{levels: levels}, nil
}

// Name implements machsim.Policy.
func (h *HLF) Name() string { return "HLF" }

// Assign implements machsim.Policy.
func (h *HLF) Assign(ep *machsim.Epoch) []machsim.Assignment {
	order := append([]taskgraph.TaskID(nil), ep.Ready...)
	sort.SliceStable(order, func(i, j int) bool {
		li, lj := h.levels[order[i]], h.levels[order[j]]
		if li != lj {
			return li > lj
		}
		return order[i] < order[j]
	})
	n := len(order)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	out := make([]machsim.Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, machsim.Assignment{Task: order[k], Proc: ep.Idle[k]})
	}
	return out
}

// Levels exposes the priority table (used by reports and tests).
func (h *HLF) Levels() []float64 { return h.levels }

// FIFO schedules ready tasks in task-ID order, which for programmatically
// built graphs is the order the tasks were created in — the "given list"
// of Graham's anomaly analysis.
type FIFO struct{}

// NewFIFO returns the FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements machsim.Policy.
func (f *FIFO) Name() string { return "FIFO" }

// Assign implements machsim.Policy.
func (f *FIFO) Assign(ep *machsim.Epoch) []machsim.Assignment {
	n := len(ep.Ready)
	if n > len(ep.Idle) {
		n = len(ep.Idle)
	}
	out := make([]machsim.Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, machsim.Assignment{Task: ep.Ready[k], Proc: ep.Idle[k]})
	}
	return out
}

// Random schedules ready tasks in uniformly random order on random idle
// processors; it is the weakest sensible baseline.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random policy with its own deterministic stream.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements machsim.Policy.
func (r *Random) Name() string { return "Random" }

// Assign implements machsim.Policy.
func (r *Random) Assign(ep *machsim.Epoch) []machsim.Assignment {
	tasks := append([]taskgraph.TaskID(nil), ep.Ready...)
	procs := append([]int(nil), ep.Idle...)
	r.rng.Shuffle(len(tasks), func(i, j int) { tasks[i], tasks[j] = tasks[j], tasks[i] })
	r.rng.Shuffle(len(procs), func(i, j int) { procs[i], procs[j] = procs[j], procs[i] })
	n := len(tasks)
	if n > len(procs) {
		n = len(procs)
	}
	out := make([]machsim.Assignment, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, machsim.Assignment{Task: tasks[k], Proc: procs[k]})
	}
	return out
}

// CommAwareHLF is a greedy extension of HLF: tasks are still selected in
// descending level order, but each is placed on the idle processor that
// minimizes the equation-(4) communication cost from its finished
// predecessors. It is a deterministic middle ground between HLF and the
// paper's annealing scheduler, used in ablations.
type CommAwareHLF struct {
	levels []float64
	topo   *topology.Topology
	comm   topology.CommParams
	g      *taskgraph.Graph
}

// NewCommAwareHLF builds the policy.
func NewCommAwareHLF(g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams) (*CommAwareHLF, error) {
	if topo == nil {
		return nil, fmt.Errorf("list: nil topology")
	}
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	return &CommAwareHLF{levels: levels, topo: topo, comm: comm, g: g}, nil
}

// Name implements machsim.Policy.
func (c *CommAwareHLF) Name() string { return "HLF+comm" }

// Assign implements machsim.Policy.
func (c *CommAwareHLF) Assign(ep *machsim.Epoch) []machsim.Assignment {
	order := append([]taskgraph.TaskID(nil), ep.Ready...)
	sort.SliceStable(order, func(i, j int) bool {
		li, lj := c.levels[order[i]], c.levels[order[j]]
		if li != lj {
			return li > lj
		}
		return order[i] < order[j]
	})
	free := append([]int(nil), ep.Idle...)
	var out []machsim.Assignment
	for _, t := range order {
		if len(free) == 0 {
			break
		}
		bestIdx, bestCost := 0, c.placementCost(ep.Sim, t, free[0])
		for k := 1; k < len(free); k++ {
			if cost := c.placementCost(ep.Sim, t, free[k]); cost < bestCost {
				bestIdx, bestCost = k, cost
			}
		}
		out = append(out, machsim.Assignment{Task: t, Proc: free[bestIdx]})
		free = append(free[:bestIdx], free[bestIdx+1:]...)
	}
	return out
}

// placementCost sums equation (4) over the task's finished predecessors.
func (c *CommAwareHLF) placementCost(sim *machsim.Simulator, t taskgraph.TaskID, proc int) float64 {
	var sum float64
	for _, h := range c.g.Predecessors(t) {
		src := sim.ProcOf(h.To)
		if src < 0 {
			continue
		}
		sum += c.comm.CommCost(c.topo.Dist(src, proc), h.Bits)
	}
	return sum
}
