package list

import (
	"math"
	"testing"

	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func TestETFKeepsHeavyChainsLocal(t *testing.T) {
	g := taskgraph.New("chain")
	a := g.AddTask("a", 10)
	b := g.AddTask("b", 10)
	g.MustAddEdge(a, b, 4000)
	topo, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	etf, err := NewETF(g, topo, comm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, etf, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Errorf("ETF produced %d messages on a chain, want 0", res.Messages)
	}
	if math.Abs(res.Makespan-20) > 1e-9 {
		t.Errorf("makespan = %g, want 20", res.Makespan)
	}
}

func TestETFFallsBackToLevelsWithoutComm(t *testing.T) {
	// Without communication ETF must pick the same selection as HLF: the
	// highest-level tasks. Reuse the two-chain workload: long chain first.
	g := taskgraph.New("two")
	c1 := g.AddTask("c1", 10)
	c2 := g.AddTask("c2", 10)
	c3 := g.AddTask("c3", 10)
	g.MustAddEdge(c1, c2, 40)
	g.MustAddEdge(c2, c3, 40)
	g.AddTask("s1", 1)
	g.AddTask("s2", 1)
	topo, err := topology.ChainTopo(2)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams().NoComm()
	etf, err := NewETF(g, topo, comm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, etf, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-30) > 1e-9 {
		t.Errorf("makespan = %g, want 30 (HLF-equivalent)", res.Makespan)
	}
}

func TestETFBeatsHLFUnderCommunication(t *testing.T) {
	// Two parallel heavy chains on two processors: plain HLF ping-pongs,
	// ETF keeps each chain home.
	g := taskgraph.New("pp")
	prev := []taskgraph.TaskID{g.AddTask("a0", 10), g.AddTask("b0", 10)}
	for k := 1; k < 5; k++ {
		cur := []taskgraph.TaskID{g.AddTask("a", 10), g.AddTask("b", 10)}
		g.MustAddEdge(prev[0], cur[0], 2000)
		g.MustAddEdge(prev[1], cur[1], 2000)
		prev = cur
	}
	topo, err := topology.ChainTopo(2)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	m := machsim.Model{Graph: g, Topo: topo, Comm: comm}

	hlf, err := NewHLF(g)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := machsim.Run(m, hlf, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	etf, err := NewETF(g, topo, comm)
	if err != nil {
		t.Fatal(err)
	}
	smart, err := machsim.Run(m, etf, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if smart.Makespan > plain.Makespan {
		t.Errorf("ETF (%g) worse than HLF (%g)", smart.Makespan, plain.Makespan)
	}
	if smart.Messages != 0 {
		t.Errorf("ETF left %d messages", smart.Messages)
	}
}

func TestNewETFErrors(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	if _, err := NewETF(g, nil, topology.DefaultCommParams()); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestLPTOrdersByLoad(t *testing.T) {
	g := taskgraph.New("ind")
	g.AddTask("short", 1)
	g.AddTask("long", 9)
	g.AddTask("mid", 5)
	lpt := NewLPT(g)
	ep := &machsim.Epoch{Ready: []taskgraph.TaskID{0, 1, 2}, Idle: []int{0, 1}}
	as := lpt.Assign(ep)
	if len(as) != 2 || as[0].Task != 1 || as[1].Task != 2 {
		t.Fatalf("LPT assignments = %+v, want long then mid", as)
	}
}

func TestMISFPrefersFanout(t *testing.T) {
	// Task f unlocks 3 successors; task g unlocks none. Same levels are
	// impossible here, so craft loads so levels tie: f(1) -> 3 × leaf(1);
	// s(2) standalone has level 2 = f's level.
	g := taskgraph.New("fan")
	f := g.AddTask("f", 1)
	for i := 0; i < 3; i++ {
		leaf := g.AddTask("leaf", 1)
		g.MustAddEdge(f, leaf, 0)
	}
	g.AddTask("s", 2) // level 2 == level(f)
	m, err := NewMISF(g)
	if err != nil {
		t.Fatal(err)
	}
	ep := &machsim.Epoch{Ready: []taskgraph.TaskID{f, 4}, Idle: []int{0}}
	as := m.Assign(ep)
	if len(as) != 1 || as[0].Task != f {
		t.Fatalf("MISF picked %+v, want the fan-out task", as)
	}
}

func TestMISFCompletesBenchmarks(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 6, 5, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMISF(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: topology.DefaultCommParams()}, m, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forced != 0 || res.Makespan <= 0 {
		t.Errorf("MISF run: %+v", res)
	}
}

func TestNewPolicyNamesETF(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	topo, _ := topology.Complete(2)
	etf, err := NewETF(g, topo, topology.DefaultCommParams())
	if err != nil {
		t.Fatal(err)
	}
	if etf.Name() != "ETF" || NewLPT(g).Name() != "LPT" {
		t.Error("policy names wrong")
	}
	misf, _ := NewMISF(g)
	if misf.Name() != "MISF" {
		t.Error("MISF name wrong")
	}
}
