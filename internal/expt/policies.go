package expt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/solver"
	"repro/internal/topology"
)

// PolicyRow holds the speedups of every scheduler in the library on one
// benchmark program (hypercube-8, communication enabled): the weakest to
// strongest baselines bracketing the paper's annealing scheduler.
type PolicyRow struct {
	Program string
	Random  float64
	FIFO    float64
	LPT     float64
	MISF    float64
	HLF     float64
	ETF     float64
	SA      float64
}

// PolicyComparison runs the whole policy zoo over the four benchmark
// programs — the "how much does each level of sophistication buy"
// experiment (Ablation F). The programs run concurrently.
func PolicyComparison(seed int64) ([]PolicyRow, error) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	comm := topology.DefaultCommParams()
	catalog := programs.Catalog()
	rows := make([]PolicyRow, len(catalog))
	err = parallelFor(defaultWorkers(0), len(catalog), func(k int) error {
		prog := catalog[k]
		g := prog.Build()
		model := machsim.Model{Graph: g, Topo: topo, Comm: comm}
		row := PolicyRow{Program: prog.Key}

		opt := core.DefaultOptions()
		opt.Seed = seed
		opt.Restarts = 2

		// All policies come from the shared solver registry constructor,
		// the same resolution path the CLI and the scheduling service use.
		run := func(name string) (float64, error) {
			p, err := solver.NewPolicy(name, g, topo, comm, opt)
			if err != nil {
				return 0, err
			}
			res, err := machsim.Run(model, p, machsim.Options{})
			if err != nil {
				return 0, err
			}
			return res.Speedup, nil
		}

		var err error
		if row.Random, err = run("random"); err != nil {
			return err
		}
		if row.FIFO, err = run("fifo"); err != nil {
			return err
		}
		if row.LPT, err = run("lpt"); err != nil {
			return err
		}
		if row.MISF, err = run("misf"); err != nil {
			return err
		}
		if row.HLF, err = run("hlf"); err != nil {
			return err
		}
		if row.ETF, err = run("etf"); err != nil {
			return err
		}
		if row.SA, err = run("sa"); err != nil {
			return err
		}
		rows[k] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatPolicyComparison renders the policy zoo table.
func FormatPolicyComparison(rows []PolicyRow) string {
	var b strings.Builder
	b.WriteString("Ablation F: scheduling policies on hypercube-8 with communication (speedups)\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s %8s %8s %8s\n",
		"Prog", "Random", "FIFO", "LPT", "MISF", "HLF", "ETF", "SA")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Program, r.Random, r.FIFO, r.LPT, r.MISF, r.HLF, r.ETF, r.SA)
	}
	return b.String()
}
