package expt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/topology"
)

// PolicyRow holds the speedups of every scheduler in the library on one
// benchmark program (hypercube-8, communication enabled): the weakest to
// strongest baselines bracketing the paper's annealing scheduler.
type PolicyRow struct {
	Program string
	Random  float64
	FIFO    float64
	LPT     float64
	MISF    float64
	HLF     float64
	ETF     float64
	SA      float64
}

// PolicyComparison runs the whole policy zoo over the four benchmark
// programs — the "how much does each level of sophistication buy"
// experiment (Ablation F).
func PolicyComparison(seed int64) ([]PolicyRow, error) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	comm := topology.DefaultCommParams()
	var rows []PolicyRow
	for _, prog := range programs.Catalog() {
		g := prog.Build()
		model := machsim.Model{Graph: g, Topo: topo, Comm: comm}
		row := PolicyRow{Program: prog.Key}

		run := func(p machsim.Policy) (float64, error) {
			res, err := machsim.Run(model, p, machsim.Options{})
			if err != nil {
				return 0, err
			}
			return res.Speedup, nil
		}

		if row.Random, err = run(list.NewRandom(seed)); err != nil {
			return nil, err
		}
		if row.FIFO, err = run(list.NewFIFO()); err != nil {
			return nil, err
		}
		if row.LPT, err = run(list.NewLPT(g)); err != nil {
			return nil, err
		}
		misf, err := list.NewMISF(g)
		if err != nil {
			return nil, err
		}
		if row.MISF, err = run(misf); err != nil {
			return nil, err
		}
		hlf, err := list.NewHLF(g)
		if err != nil {
			return nil, err
		}
		if row.HLF, err = run(hlf); err != nil {
			return nil, err
		}
		etf, err := list.NewETF(g, topo, comm)
		if err != nil {
			return nil, err
		}
		if row.ETF, err = run(etf); err != nil {
			return nil, err
		}
		opt := core.DefaultOptions()
		opt.Seed = seed
		opt.Restarts = 2
		sched, err := core.NewScheduler(g, topo, comm, opt)
		if err != nil {
			return nil, err
		}
		if row.SA, err = run(sched); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPolicyComparison renders the policy zoo table.
func FormatPolicyComparison(rows []PolicyRow) string {
	var b strings.Builder
	b.WriteString("Ablation F: scheduling policies on hypercube-8 with communication (speedups)\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s %8s %8s %8s\n",
		"Prog", "Random", "FIFO", "LPT", "MISF", "HLF", "ETF", "SA")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Program, r.Random, r.FIFO, r.LPT, r.MISF, r.HLF, r.ETF, r.SA)
	}
	return b.String()
}
