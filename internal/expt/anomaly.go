package expt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/topology"
)

// AnomalyResult compares schedulers on Graham's anomaly instance
// (§6b: "the SA algorithm is able to optimally solve the Graham list
// scheduling anomalies").
type AnomalyResult struct {
	Procs      int
	LowerBound float64 // critical-path bound; achieving it proves optimality
	FIFO       float64 // makespan of the original-list scheduler
	HLF        float64
	SA         float64
}

// Anomaly runs the Graham anomaly instance (9 tasks, 3 processors,
// communication disabled as in Graham's model) under the original task
// list, HLF and simulated annealing.
func Anomaly(seed int64) (*AnomalyResult, error) {
	g := programs.GrahamAnomaly()
	topo, err := topology.Complete(3)
	if err != nil {
		return nil, err
	}
	comm := topology.DefaultCommParams().NoComm()
	model := machsim.Model{Graph: g, Topo: topo, Comm: comm}

	lb, err := g.LowerBoundMakespan(topo.N())
	if err != nil {
		return nil, err
	}
	out := &AnomalyResult{Procs: topo.N(), LowerBound: lb}

	fifoRes, err := machsim.Run(model, list.NewFIFO(), machsim.Options{})
	if err != nil {
		return nil, err
	}
	out.FIFO = fifoRes.Makespan

	hlf, err := list.NewHLF(g)
	if err != nil {
		return nil, err
	}
	hlfRes, err := machsim.Run(model, hlf, machsim.Options{})
	if err != nil {
		return nil, err
	}
	out.HLF = hlfRes.Makespan

	opt := core.DefaultOptions()
	opt.Seed = seed
	sched, err := core.NewScheduler(g, topo, comm, opt)
	if err != nil {
		return nil, err
	}
	saRes, err := machsim.Run(model, sched, machsim.Options{})
	if err != nil {
		return nil, err
	}
	out.SA = saRes.Makespan
	return out, nil
}

// String renders the comparison.
func (a *AnomalyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Graham anomaly instance on %d processors (lower bound %.0f):\n", a.Procs, a.LowerBound)
	fmt.Fprintf(&b, "  original list (FIFO): makespan %.0f\n", a.FIFO)
	fmt.Fprintf(&b, "  HLF:                  makespan %.0f\n", a.HLF)
	fmt.Fprintf(&b, "  simulated annealing:  makespan %.0f\n", a.SA)
	if a.SA <= a.LowerBound {
		b.WriteString("  SA reaches the critical-path bound: provably optimal.\n")
	}
	return b.String()
}
