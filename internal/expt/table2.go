package expt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Table2Cell holds the SA and HLF speedups of one (program, architecture,
// communication) configuration.
type Table2Cell struct {
	SA   float64
	HLF  float64
	Gain float64 // % improvement of SA over HLF
}

// Table2Row is one program × architecture line: speedups without and with
// communication.
type Table2Row struct {
	Program string
	Arch    string
	NoComm  Table2Cell
	Comm    Table2Cell
	// PaperNoComm and PaperComm carry the published cells when available.
	PaperNoComm, PaperComm Table2Cell
}

// Table2Config parameterizes the speedup study.
type Table2Config struct {
	// Seed drives the annealing scheduler.
	Seed int64
	// Restarts runs SA this many times with derived seeds and keeps the
	// best speedup, emulating the tuning freedom the paper's weight
	// factors provide ("tuned to optimize the allocation for the highest
	// speed-up", §4.2c). 0 means the default of 3; use a negative value
	// for a single run.
	Restarts int
	// Options for the SA scheduler. Zero value uses core.DefaultOptions.
	SA core.Options
	// Programs restricts the study to the given keys; empty means all.
	Programs []string
	// Workers runs the independent (program, architecture, communication)
	// cells concurrently on this many goroutines; <= 0 means one per
	// available CPU, 1 forces sequential execution. Results are
	// deterministic at any worker count: every cell derives its seeds
	// from Seed alone.
	Workers int
}

// paperTable2 holds the published Table 2 numbers, keyed by program key
// and architecture index (hypercube, bus, ring).
var paperTable2 = map[string][3][2]Table2Cell{
	//        w/o comm                          with comm
	"NE": {
		{{SA: 7.20, HLF: 6.90, Gain: 4.4}, {SA: 5.6, HLF: 4.9, Gain: 14.3}},
		{{SA: 7.20, HLF: 6.90, Gain: 4.4}, {SA: 6.2, HLF: 5.2, Gain: 11.5}},
		{{SA: 8.00, HLF: 8.00, Gain: 0.0}, {SA: 5.5, HLF: 3.6, Gain: 52.8}},
	},
	"GJ": {
		{{SA: 6.67, HLF: 6.67, Gain: 0.0}, {SA: 4.80, HLF: 4.64, Gain: 3.5}},
		{{SA: 6.76, HLF: 6.67, Gain: 1.4}, {SA: 4.93, HLF: 4.74, Gain: 3.9}},
		{{SA: 8.25, HLF: 8.25, Gain: 0.0}, {SA: 5.02, HLF: 4.77, Gain: 5.0}},
	},
	"MM": {
		{{SA: 7.75, HLF: 7.75, Gain: 0.0}, {SA: 6.11, HLF: 5.19, Gain: 17.7}},
		{{SA: 7.75, HLF: 7.75, Gain: 0.0}, {SA: 6.34, HLF: 5.71, Gain: 11.0}},
		{{SA: 8.38, HLF: 8.38, Gain: 0.0}, {SA: 6.04, HLF: 4.96, Gain: 21.8}},
	},
	"FFT": {
		{{SA: 7.38, HLF: 7.38, Gain: 0.0}, {SA: 6.23, HLF: 4.93, Gain: 26.3}},
		{{SA: 7.48, HLF: 7.38, Gain: 1.4}, {SA: 6.27, HLF: 5.58, Gain: 12.3}},
		{{SA: 8.43, HLF: 8.43, Gain: 0.0}, {SA: 5.97, HLF: 5.10, Gain: 17.0}},
	},
}

// PaperTable2 returns the published cell for a program key and
// architecture index (0 hypercube, 1 bus, 2 ring).
func PaperTable2(key string, arch int, withComm bool) Table2Cell {
	rows, ok := paperTable2[key]
	if !ok || arch < 0 || arch > 2 {
		return Table2Cell{}
	}
	if withComm {
		return rows[arch][1]
	}
	return rows[arch][0]
}

// Table2 reproduces the paper's speedup study: every benchmark program on
// every architecture, scheduled by SA and by HLF, with and without
// communication.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	archs, err := Architectures()
	if err != nil {
		return nil, err
	}
	if cfg.SA.Wb == 0 && cfg.SA.Wc == 0 {
		cfg.SA = core.DefaultOptions()
	}
	keys := cfg.Programs
	if len(keys) == 0 {
		keys = []string{"NE", "GJ", "MM", "FFT"}
	}
	// Build the work list up front; every cell is independent, so the
	// rows can be computed concurrently.
	type job struct {
		rowIdx   int
		withComm bool
		g        *taskgraph.Graph
		arch     Arch
	}
	var jobs []job
	rows := make([]Table2Row, 0, len(keys)*len(archs))
	for _, key := range keys {
		prog, err := programs.ByKey(key)
		if err != nil {
			return nil, err
		}
		for ai, arch := range archs {
			rows = append(rows, Table2Row{
				Program:     prog.Key,
				Arch:        arch.Name,
				PaperNoComm: PaperTable2(prog.Key, ai, false),
				PaperComm:   PaperTable2(prog.Key, ai, true),
			})
			for _, withComm := range []bool{false, true} {
				jobs = append(jobs, job{
					rowIdx:   len(rows) - 1,
					withComm: withComm,
					// Each job gets its own graph: simulations share
					// nothing, so the study parallelizes trivially.
					g:    prog.Build(),
					arch: arch,
				})
			}
		}
	}

	if err := engine.ParallelFor(defaultWorkers(cfg.Workers), len(jobs), func(i int, w *engine.Worker) error {
		j := jobs[i]
		comm := topology.DefaultCommParams()
		if !j.withComm {
			comm = comm.NoComm()
		}
		cell, err := table2Cell(cfg, w, j.g, j.arch, comm)
		if err != nil {
			return fmt.Errorf("expt: row %d: %w", j.rowIdx, err)
		}
		// Each job owns its (row, column) slot, so no locking is needed.
		if j.withComm {
			rows[j.rowIdx].Comm = cell
		} else {
			rows[j.rowIdx].NoComm = cell
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// table2Cell runs HLF and SA (with optional restarts) for one
// configuration and returns the speedup cell. Every simulation runs on
// the fan-out worker's arena and the SA passes Reset the worker's pooled
// scheduler, so back-to-back cells on a worker reuse warm solve state —
// rebinding discards all prior state, so the cell's numbers are identical
// at any worker count.
func table2Cell(cfg Table2Config, w *engine.Worker, g *taskgraph.Graph, arch Arch, comm topology.CommParams) (Table2Cell, error) {
	hlf, err := list.NewHLF(g)
	if err != nil {
		return Table2Cell{}, err
	}
	model := machsim.Model{Graph: g, Topo: arch.Topo, Comm: comm}
	sim := w.Arena()
	if err := sim.Bind(model, machsim.Options{}); err != nil {
		return Table2Cell{}, err
	}
	hlfRes, err := sim.Run(hlf)
	if err != nil {
		return Table2Cell{}, err
	}
	// The arena-owned result is rebound by the SA runs below; keep only
	// the scalar this cell needs.
	hlfSpeedup := hlfRes.Speedup

	restarts := cfg.Restarts
	switch {
	case restarts == 0:
		restarts = 3
	case restarts < 0:
		restarts = 1
	}
	bestSA := 0.0
	for r := 0; r < restarts; r++ {
		opt := cfg.SA
		opt.Seed = cfg.Seed + int64(r)*1_000_003
		sched := w.Scheduler()
		if err := sched.Reset(g, arch.Topo, comm, opt); err != nil {
			return Table2Cell{}, err
		}
		res, err := sim.Run(sched)
		if err != nil {
			return Table2Cell{}, err
		}
		if res.Speedup > bestSA {
			bestSA = res.Speedup
		}
	}
	return Table2Cell{
		SA:   bestSA,
		HLF:  hlfSpeedup,
		Gain: Gain(bestSA, hlfSpeedup),
	}, nil
}

// FormatTable2 renders the rows in the paper's Table 2 layout; each cell
// shows the measured value with the published value in parentheses.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Speedups, Simulated Annealing vs HLF (measured, paper in parentheses).\n")
	fmt.Fprintf(&b, "%-5s %-15s | %-30s | %-30s\n", "", "", "w/o Comm.", "with Comm.")
	fmt.Fprintf(&b, "%-5s %-15s | %9s %9s %9s | %9s %9s %9s\n",
		"Prog", "Architecture", "(Sp)SA", "(Sp)HLF", "% gain", "(Sp)SA", "(Sp)HLF", "% gain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-15s | %9s %9s %9s | %9s %9s %9s\n",
			r.Program, r.Arch,
			cellStr(r.NoComm.SA, r.PaperNoComm.SA),
			cellStr(r.NoComm.HLF, r.PaperNoComm.HLF),
			cellStr(r.NoComm.Gain, r.PaperNoComm.Gain),
			cellStr(r.Comm.SA, r.PaperComm.SA),
			cellStr(r.Comm.HLF, r.PaperComm.HLF),
			cellStr(r.Comm.Gain, r.PaperComm.Gain))
	}
	return b.String()
}

func cellStr(measured, paper float64) string {
	return fmt.Sprintf("%.2f(%.1f)", measured, paper)
}
