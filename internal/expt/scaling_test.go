package expt

import (
	"math"
	"testing"
)

func TestScalingCurveShape(t *testing.T) {
	pts, err := Scaling("MM", 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d, want dims 0..4", len(pts))
	}
	if pts[0].Procs != 1 || pts[4].Procs != 16 {
		t.Fatalf("proc counts wrong: %+v", pts)
	}
	// On one processor both schedulers give speedup exactly 1 (no
	// messages possible).
	if math.Abs(pts[0].SA-1) > 1e-9 || math.Abs(pts[0].HLF-1) > 1e-9 || pts[0].Messages != 0 {
		t.Errorf("1-proc point = %+v, want speedup 1, 0 messages", pts[0])
	}
	// Speedup grows from 1 to several as processors are added.
	if pts[4].SA <= pts[0].SA || pts[4].SA <= 1.5 {
		t.Errorf("no scaling: %+v", pts)
	}
	out := FormatScaling("MM", pts)
	if len(out) == 0 {
		t.Error("empty formatting")
	}
	if _, err := Scaling("MM", 99, 1); err == nil {
		t.Error("huge dim accepted")
	}
	if _, err := Scaling("nope", 2, 1); err == nil {
		t.Error("unknown program accepted")
	}
}
