package expt

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/stats"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// WeightPoint is one sample of the weight-sweep ablation: speedup as a
// function of the balance/communication weighting (§4.2c: the weights
// "can be tuned to optimize the allocation for the highest speed-up").
type WeightPoint struct {
	Wb, Wc  float64
	Speedup float64
}

// AblationWeights sweeps wb from lo to hi in the given number of steps
// for one program on one architecture (communication enabled). The steps
// are independent simulations and run on the worker pool.
func AblationWeights(progKey string, arch Arch, seed int64, lo, hi float64, steps int) ([]WeightPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("expt: weight sweep needs >= 2 steps")
	}
	prog, err := programs.ByKey(progKey)
	if err != nil {
		return nil, err
	}
	comm := topology.DefaultCommParams()
	out := make([]WeightPoint, steps)
	err = parallelFor(defaultWorkers(0), steps, func(k int) error {
		wb := lo + (hi-lo)*float64(k)/float64(steps-1)
		opt := core.DefaultOptions()
		opt.Wb = wb
		opt.Wc = 1 - wb
		opt.Seed = seed
		res, _, err := RunSA(prog.Build(), arch.Topo, comm, opt, machsim.Options{})
		if err != nil {
			return err
		}
		out[k] = WeightPoint{Wb: wb, Wc: 1 - wb, Speedup: res.Speedup}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatWeights renders a weight sweep.
func FormatWeights(progKey, arch string, pts []WeightPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A: weight sweep, %s on %s (with communication)\n", progKey, arch)
	b.WriteString("   wb     wc   speedup\n")
	for _, p := range pts {
		fmt.Fprintf(&b, " %4.2f   %4.2f   %6.3f\n", p.Wb, p.Wc, p.Speedup)
	}
	return b.String()
}

// CoolingPoint compares cooling schedules on the same scheduling problem.
type CoolingPoint struct {
	Schedule string
	Speedup  float64
	Moves    int // total annealing moves across all packets
}

// AblationCooling runs one program/architecture under different cooling
// schedules (§2: "the cooling policy influences the convergence speed and
// the quality of the obtained solution"). The schedules run concurrently.
func AblationCooling(progKey string, arch Arch, seed int64) ([]CoolingPoint, error) {
	prog, err := programs.ByKey(progKey)
	if err != nil {
		return nil, err
	}
	comm := topology.DefaultCommParams()
	schedules := []anneal.Cooling{
		anneal.Geometric{T0: 1, Alpha: 0.9, NumStages: 60},
		anneal.Linear{T0: 1, NumStages: 60},
		anneal.Logarithmic{C: 0.5, NumStages: 60},
		anneal.Constant{T: 0, NumStages: 60}, // greedy descent baseline
	}
	out := make([]CoolingPoint, len(schedules))
	err = parallelFor(defaultWorkers(0), len(schedules), func(k int) error {
		cs := schedules[k]
		opt := core.DefaultOptions()
		opt.Seed = seed
		opt.Anneal.Cooling = cs
		res, sched, err := RunSA(prog.Build(), arch.Topo, comm, opt, machsim.Options{})
		if err != nil {
			return err
		}
		moves := 0
		for _, p := range sched.Packets() {
			moves += p.Moves
		}
		out[k] = CoolingPoint{Schedule: cs.Name(), Speedup: res.Speedup, Moves: moves}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatCooling renders a cooling comparison.
func FormatCooling(progKey, arch string, pts []CoolingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation B: cooling schedules, %s on %s (with communication)\n", progKey, arch)
	fmt.Fprintf(&b, "%-28s %9s %9s\n", "schedule", "speedup", "moves")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-28s %9.3f %9d\n", p.Schedule, p.Speedup, p.Moves)
	}
	return b.String()
}

// RandomStudyResult aggregates the SA-vs-HLF comparison over a population
// of random layered taskgraphs, echoing the statistical methodology of
// Adam, Chandy & Dickinson (1974) that the paper cites for HLF's
// near-optimality without communication.
type RandomStudyResult struct {
	Graphs      int
	WithComm    bool
	GainSummary stats.Summary // % gain of SA over HLF
	SAWins      int           // SA strictly faster
	Ties        int
	HLFWins     int
}

// AblationRandomGraphs generates numGraphs random layered DAGs and
// compares SA and HLF speedups on the given architecture. The graphs and
// per-graph SA seeds are drawn sequentially from the study RNG (so the
// population is a pure function of seed), then the independent
// simulations fan out across the worker pool and are aggregated in
// generation order — the same seed gives identical results at any worker
// count.
func AblationRandomGraphs(arch Arch, numGraphs int, withComm bool, seed int64) (*RandomStudyResult, error) {
	return ablationRandomGraphs(arch, numGraphs, withComm, seed, 0)
}

// ablationRandomGraphs is AblationRandomGraphs with explicit worker
// control, so tests can assert worker-count invariance directly.
func ablationRandomGraphs(arch Arch, numGraphs int, withComm bool, seed int64, workers int) (*RandomStudyResult, error) {
	if numGraphs < 1 {
		return nil, fmt.Errorf("expt: need >= 1 graphs")
	}
	rng := rand.New(rand.NewSource(seed))
	comm := topology.DefaultCommParams()
	if !withComm {
		comm = comm.NoComm()
	}
	type cell struct {
		g      *taskgraph.Graph
		saSeed int64
	}
	cells := make([]cell, numGraphs)
	for k := range cells {
		cfg := taskgraph.LayeredConfig{
			Layers:   3 + rng.Intn(6),
			MinWidth: 2,
			MaxWidth: 3 + rng.Intn(10),
			MinLoad:  5,
			MaxLoad:  100,
			MinBits:  40,
			MaxBits:  400,
			EdgeProb: 0.2 + 0.4*rng.Float64(),
		}
		g, err := taskgraph.Layered(fmt.Sprintf("rand%d", k), cfg, rng)
		if err != nil {
			return nil, err
		}
		cells[k] = cell{g: g, saSeed: rng.Int63()}
	}

	gains := make([]float64, numGraphs)
	err := parallelFor(defaultWorkers(workers), numGraphs, func(k int) error {
		c := cells[k]
		hlf, err := list.NewHLF(c.g)
		if err != nil {
			return err
		}
		model := machsim.Model{Graph: c.g, Topo: arch.Topo, Comm: comm}
		hlfRes, err := machsim.Run(model, hlf, machsim.Options{})
		if err != nil {
			return err
		}
		opt := core.DefaultOptions()
		opt.Seed = c.saSeed
		sched, err := core.NewScheduler(c.g, arch.Topo, comm, opt)
		if err != nil {
			return err
		}
		saRes, err := machsim.Run(model, sched, machsim.Options{})
		if err != nil {
			return err
		}
		gains[k] = Gain(saRes.Speedup, hlfRes.Speedup)
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &RandomStudyResult{Graphs: numGraphs, WithComm: withComm}
	for _, gain := range gains {
		switch {
		case gain > 0.01:
			res.SAWins++
		case gain < -0.01:
			res.HLFWins++
		default:
			res.Ties++
		}
	}
	res.GainSummary = stats.Summarize(gains)
	return res, nil
}

// String renders the random-graph study.
func (r *RandomStudyResult) String() string {
	mode := "w/o comm"
	if r.WithComm {
		mode = "with comm"
	}
	return fmt.Sprintf("Ablation C: %d random layered graphs (%s): SA wins %d, ties %d, HLF wins %d; %% gain %s",
		r.Graphs, mode, r.SAWins, r.Ties, r.HLFWins, r.GainSummary)
}
