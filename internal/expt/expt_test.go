package expt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/topology"
)

func TestArchitecturesMatchPaper(t *testing.T) {
	archs, err := Architectures()
	if err != nil {
		t.Fatal(err)
	}
	if len(archs) != 3 {
		t.Fatalf("architectures = %d, want 3", len(archs))
	}
	if archs[0].Topo.N() != 8 || archs[0].Topo.Diameter() != 3 {
		t.Errorf("hypercube wrong: %v", archs[0].Topo)
	}
	if archs[1].Topo.N() != 8 || !archs[1].Topo.SharedMedium() {
		t.Errorf("bus wrong: %v", archs[1].Topo)
	}
	if archs[2].Topo.N() != 9 || archs[2].Topo.Diameter() != 4 {
		t.Errorf("ring wrong: %v", archs[2].Topo)
	}
}

func TestGain(t *testing.T) {
	if Gain(6, 5) != 20 {
		t.Errorf("Gain(6,5) = %g", Gain(6, 5))
	}
	if Gain(1, 0) != 0 {
		t.Errorf("Gain(1,0) = %g", Gain(1, 0))
	}
}

func TestTable1RowsMatchPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tasks != r.Paper.Tasks {
			t.Errorf("%s: tasks %d != paper %d", r.Program, r.Tasks, r.Paper.Tasks)
		}
		if math.Abs(r.AvgDur-r.Paper.AvgDur) > 0.01 {
			t.Errorf("%s: avg dur %.3f != paper %.2f", r.Program, r.AvgDur, r.Paper.AvgDur)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Newton-Euler") || !strings.Contains(out, "Max. Speedup") {
		t.Errorf("Table 1 formatting:\n%s", out)
	}
}

func TestTable2SingleProgramShape(t *testing.T) {
	rows, err := Table2(Table2Config{Seed: 1, Restarts: -1, Programs: []string{"MM"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 architectures", len(rows))
	}
	for _, r := range rows {
		// Without communication SA matches HLF (no placement pressure).
		if r.NoComm.SA < r.NoComm.HLF-1e-9 {
			t.Errorf("%s %s: SA %g < HLF %g without comm", r.Program, r.Arch, r.NoComm.SA, r.NoComm.HLF)
		}
		// With communication both speedups drop.
		if r.Comm.SA > r.NoComm.SA || r.Comm.HLF > r.NoComm.HLF {
			t.Errorf("%s %s: communication helped", r.Program, r.Arch)
		}
		if r.PaperComm.SA == 0 {
			t.Errorf("%s %s: missing paper reference", r.Program, r.Arch)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "MM") || !strings.Contains(out, "% gain") {
		t.Errorf("Table 2 formatting:\n%s", out)
	}
}

func TestPaperTable2Lookup(t *testing.T) {
	cell := PaperTable2("NE", 2, true)
	if cell.SA != 5.5 || cell.HLF != 3.6 {
		t.Errorf("NE ring with comm = %+v", cell)
	}
	if got := PaperTable2("nope", 0, true); got.SA != 0 {
		t.Errorf("unknown program = %+v", got)
	}
	if got := PaperTable2("NE", 9, true); got.SA != 0 {
		t.Errorf("bad arch = %+v", got)
	}
}

func TestFigure1TraceShape(t *testing.T) {
	fig, err := Figure1(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Trace) == 0 {
		t.Fatal("empty trace")
	}
	if fig.Candidates < 1 || fig.Idle < 1 {
		t.Errorf("degenerate packet: %+v", fig)
	}
	// The annealing should not end worse than it started (best-restore).
	first, last := fig.Trace[0], fig.Trace[len(fig.Trace)-1]
	if last.Ftot > first.Ftot+1e-9 {
		t.Errorf("total cost rose: %g -> %g", first.Ftot, last.Ftot)
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "iteration,") || strings.Count(csv, "\n") != len(fig.Trace)+1 {
		t.Errorf("CSV malformed:\n%.200s", csv)
	}
	plot := fig.Plot(60, 12)
	for _, want := range []string{"Figure 1", "b = level cost"} {
		if !strings.Contains(plot, want) {
			t.Errorf("plot missing %q", want)
		}
	}
}

func TestFigure2GanttRenders(t *testing.T) {
	chart, res, err := Figure2(42, 150, 90)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	for _, want := range []string{"P0", "P7", "Gantt chart: SA"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestPacketsSummary(t *testing.T) {
	ps, err := Packets(42)
	if err != nil {
		t.Fatal(err)
	}
	if ps.TasksTotal != 95 {
		t.Errorf("tasks = %d, want 95", ps.TasksTotal)
	}
	// The paper reports 65 packets for 95 tasks; ours should be in the
	// same regime (more packets than processors, fewer than tasks).
	if ps.Packets < 20 || ps.Packets > 95 {
		t.Errorf("packets = %d, want tens", ps.Packets)
	}
	if ps.AvgCandidates < 1 || ps.AvgIdle < 1 {
		t.Errorf("averages = %+v", ps)
	}
}

func TestAnomalyResults(t *testing.T) {
	res, err := Anomaly(7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LowerBound-10) > 1e-9 {
		t.Errorf("LB = %g, want 10", res.LowerBound)
	}
	if math.Abs(res.FIFO-13) > 1e-9 {
		t.Errorf("FIFO makespan = %g, want 13 (the anomaly)", res.FIFO)
	}
	if math.Abs(res.SA-10) > 1e-9 {
		t.Errorf("SA makespan = %g, want optimum 10", res.SA)
	}
	out := res.String()
	if !strings.Contains(out, "provably optimal") {
		t.Errorf("summary: %s", out)
	}
}

func TestAblationWeights(t *testing.T) {
	archs, err := Architectures()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := AblationWeights("MM", archs[0], 3, 0.2, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Wb+p.Wc-1) > 1e-9 {
			t.Errorf("weights don't sum to 1: %+v", p)
		}
		if p.Speedup <= 0 {
			t.Errorf("no speedup at wb=%g", p.Wb)
		}
	}
	if pts[0].Wb != 0.2 || pts[3].Wb != 0.8 {
		t.Errorf("sweep endpoints: %+v", pts)
	}
	out := FormatWeights("MM", archs[0].Name, pts)
	if !strings.Contains(out, "wb") {
		t.Errorf("weights formatting:\n%s", out)
	}
	if _, err := AblationWeights("MM", archs[0], 3, 0, 1, 1); err == nil {
		t.Error("1-step sweep accepted")
	}
}

func TestAblationCooling(t *testing.T) {
	archs, err := Architectures()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := AblationCooling("MM", archs[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("schedules = %d", len(pts))
	}
	for _, p := range pts {
		if p.Speedup <= 0 || p.Moves <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	out := FormatCooling("MM", archs[0].Name, pts)
	if !strings.Contains(out, "geometric") {
		t.Errorf("cooling formatting:\n%s", out)
	}
}

func TestAblationRandomGraphs(t *testing.T) {
	archs, err := Architectures()
	if err != nil {
		t.Fatal(err)
	}
	res, err := AblationRandomGraphs(archs[0], 10, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graphs != 10 || res.SAWins+res.Ties+res.HLFWins != 10 {
		t.Fatalf("counts don't add up: %+v", res)
	}
	if !strings.Contains(res.String(), "random layered graphs") {
		t.Errorf("String: %s", res.String())
	}
	if _, err := AblationRandomGraphs(archs[0], 0, true, 5); err == nil {
		t.Error("0 graphs accepted")
	}
}

func TestRunSAandRunPolicy(t *testing.T) {
	g := programs.GrahamAnomaly()
	topo, err := topology.Complete(3)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams().NoComm()
	opt := core.DefaultOptions()
	opt.Seed = 1
	res, sched, err := RunSA(g, topo, comm, opt, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(sched.Packets()) == 0 {
		t.Error("RunSA incomplete")
	}
}

func TestTable2ParallelMatchesSequential(t *testing.T) {
	cfg := Table2Config{Seed: 3, Restarts: -1, Programs: []string{"NE"}}
	seq, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 6
	par, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("row %d differs:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
	// The acceptance bar is byte-identical tables, not just equal cells.
	if a, b := FormatTable2(seq), FormatTable2(par); a != b {
		t.Errorf("formatted tables differ between worker counts:\n%s\n%s", a, b)
	}
}

// TestTable2EngineWorkerCounts pins the engine-rebased fan-out at the
// worker counts of the acceptance matrix: the cells run on engine workers
// (worker-owned arena + pooled scheduler), and the rendered table must be
// byte-identical at 1, 4 and 16 workers.
func TestTable2EngineWorkerCounts(t *testing.T) {
	cfg := Table2Config{Seed: 17, Restarts: 2, Programs: []string{"NE", "FFT"}}
	var want string
	for _, workers := range []int{1, 4, 16} {
		cfg.Workers = workers
		rows, err := Table2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := FormatTable2(rows)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d produced a different table:\n%s\nwant:\n%s", workers, got, want)
		}
	}
}

// TestTable2CooperativeWorkerCounts pins the cooperative-annealing
// acceptance matrix: with restarts sharing an incumbent (and, in the
// second variant, exchanging replicas in tempering mode), the rendered
// Table 2 must stay byte-identical at 1, 4 and 16 fan-out workers — the
// abandonment rule and replica exchanges are functions of the seeds and
// stage barriers alone, never of scheduling order.
func TestTable2CooperativeWorkerCounts(t *testing.T) {
	for _, mode := range []struct {
		name      string
		tempering bool
	}{
		{name: "cooperative"},
		{name: "tempering", tempering: true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			sa := core.DefaultOptions()
			sa.Restarts = 6
			sa.Cooperative = true
			sa.Tempering = mode.tempering
			cfg := Table2Config{Seed: 1991, Restarts: -1, SA: sa, Programs: []string{"NE"}}
			var want string
			for _, workers := range []int{1, 4, 16} {
				cfg.Workers = workers
				rows, err := Table2(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := FormatTable2(rows)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("workers=%d produced a different table:\n%s\nwant:\n%s", workers, got, want)
				}
			}
		})
	}
}
