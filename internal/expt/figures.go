package expt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gantt"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/topology"
)

// Figure1Data holds the cost trajectories of one annealing packet: the
// level cost Fb, the communication cost Fc and the weighted total Ftot as
// functions of the iteration number (paper Figure 1, Newton-Euler packet
// on an 8-node hypercube with wb = wc = 0.5).
type Figure1Data struct {
	Program    string
	Arch       string
	PacketTime float64
	Candidates int
	Idle       int
	Trace      []core.TracePoint
}

// Figure1 schedules Newton-Euler on the hypercube with trace recording
// and returns the trajectories of the packet with the richest mapping
// problem (most candidates × free processors), which is the interesting
// packet to plot.
func Figure1(seed int64) (*Figure1Data, error) {
	prog, err := programs.ByKey("NE")
	if err != nil {
		return nil, err
	}
	g := prog.Build()
	topo, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.Seed = seed
	opt.RecordTrace = true
	_, sched, err := RunSA(g, topo, topology.DefaultCommParams(), opt, machsim.Options{})
	if err != nil {
		return nil, err
	}
	packets := sched.Packets()
	if len(packets) == 0 {
		return nil, fmt.Errorf("expt: no packets recorded")
	}
	// Pick the packet with the richest mapping problem among those whose
	// candidates actually communicate (the initial packet holds only root
	// tasks, whose communication cost is identically zero — not the
	// interesting trajectory the paper plots).
	hasComm := func(p core.PacketReport) bool {
		for _, tp := range p.Trace {
			if tp.Fc != 0 {
				return true
			}
		}
		return false
	}
	best := -1
	for i, p := range packets {
		if !hasComm(p) {
			continue
		}
		if best < 0 || p.Candidates*p.Idle > packets[best].Candidates*packets[best].Idle {
			best = i
		}
	}
	if best < 0 {
		best = 0
	}
	p := packets[best]
	return &Figure1Data{
		Program:    prog.Title,
		Arch:       topo.Name(),
		PacketTime: p.Time,
		Candidates: p.Candidates,
		Idle:       p.Idle,
		Trace:      p.Trace,
	}, nil
}

// CSV renders the trajectories as comma-separated values with a header,
// ready for external plotting.
func (f *Figure1Data) CSV() string {
	var b strings.Builder
	b.WriteString("iteration,temperature,level_cost,comm_cost,total_cost\n")
	for _, tp := range f.Trace {
		fmt.Fprintf(&b, "%d,%.6g,%.6g,%.6g,%.6g\n", tp.Iter, tp.Temp, tp.Fb, tp.Fc, tp.Ftot)
	}
	return b.String()
}

// Plot renders the three trajectories as an ASCII chart of the given size.
func (f *Figure1Data) Plot(width, height int) string {
	if width <= 10 {
		width = 72
	}
	if height <= 4 {
		height = 20
	}
	if len(f.Trace) == 0 {
		return "(empty trace)\n"
	}
	// Series are plotted on a shared y scale like the paper's figure.
	lo, hi := f.Trace[0].Fb, f.Trace[0].Fb
	series := []func(core.TracePoint) float64{
		func(tp core.TracePoint) float64 { return tp.Fc },
		func(tp core.TracePoint) float64 { return tp.Fb },
		func(tp core.TracePoint) float64 { return tp.Ftot },
	}
	marks := []byte{'c', 'b', '*'}
	for _, tp := range f.Trace {
		for _, fn := range series {
			v := fn(tp)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	n := len(f.Trace)
	for si, fn := range series {
		for _, tp := range f.Trace {
			c := tp.Iter * (width - 1) / max(1, n-1)
			v := fn(tp)
			r := int(float64(height-1) * (hi - v) / (hi - lo))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			grid[r][c] = marks[si]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: cost trajectories of a %s annealing packet on %s\n", f.Program, f.Arch)
	fmt.Fprintf(&b, "packet at t=%.2fµs: %d candidates, %d free processors, %d iterations\n",
		f.PacketTime, f.Candidates, f.Idle, len(f.Trace))
	fmt.Fprintf(&b, "%8.2f ┤\n", hi)
	for r := 0; r < height; r++ {
		fmt.Fprintf(&b, "         │%s\n", string(grid[r]))
	}
	fmt.Fprintf(&b, "%8.2f ┼%s\n", lo, strings.Repeat("─", width))
	fmt.Fprintf(&b, "          0%*s\n", width-1, fmt.Sprintf("iterations %d", n))
	b.WriteString("          legend: b = level cost Fb, c = comm cost Fc, * = total cost\n")
	return b.String()
}

// Figure2 schedules Newton-Euler on the hypercube with Gantt recording and
// renders the first part of the execution (the paper shows roughly the
// first 0.3 ms).
func Figure2(seed int64, window float64, width int) (string, *machsim.Result, error) {
	prog, err := programs.ByKey("NE")
	if err != nil {
		return "", nil, err
	}
	g := prog.Build()
	topo, err := topology.Hypercube(3)
	if err != nil {
		return "", nil, err
	}
	opt := core.DefaultOptions()
	opt.Seed = seed
	res, _, err := RunSA(g, topo, topology.DefaultCommParams(), opt, machsim.Options{RecordGantt: true})
	if err != nil {
		return "", nil, err
	}
	if window <= 0 {
		window = res.Makespan * 0.6
	}
	chart := gantt.Render(res, topo.N(), gantt.Config{Width: width, To: window, ShowLegend: true})
	return chart, res, nil
}

// PacketSummary reproduces the §6a observation: the number of annealing
// packets and the average candidates and free processors per packet for
// Newton-Euler on the hypercube (the paper reports 65 packets with on
// average 15 candidates for 1.46 free processors).
type PacketSummary struct {
	Packets       int
	AvgCandidates float64
	AvgIdle       float64
	TasksTotal    int
}

// Packets runs Newton-Euler on the hypercube and summarizes the annealing
// packets.
func Packets(seed int64) (*PacketSummary, error) {
	prog, err := programs.ByKey("NE")
	if err != nil {
		return nil, err
	}
	g := prog.Build()
	topo, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	opt := core.DefaultOptions()
	opt.Seed = seed
	_, sched, err := RunSA(g, topo, topology.DefaultCommParams(), opt, machsim.Options{})
	if err != nil {
		return nil, err
	}
	return &PacketSummary{
		Packets:       len(sched.Packets()),
		AvgCandidates: sched.AvgCandidates(),
		AvgIdle:       sched.AvgIdle(),
		TasksTotal:    g.NumTasks(),
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
