package expt

import "testing"

func TestAblationStaticShape(t *testing.T) {
	rows, err := AblationStatic(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Static <= 0 || r.HLF <= 0 || r.SA <= 0 {
			t.Errorf("%s: degenerate speedups %+v", r.Program, r)
		}
		// The paper's motivation: staged scheduling beats a static
		// balanced mapping on directed taskgraphs.
		if r.SA < r.Static {
			t.Errorf("%s: staged SA (%.2f) lost to static mapping (%.2f)", r.Program, r.SA, r.Static)
		}
	}
	t.Logf("\n%s", FormatStatic(rows))
}

func TestAblationOptimalShape(t *testing.T) {
	study, err := AblationOptimal(15, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	if study.HLFRatio.Min < 1-1e-9 || study.SARatio.Min < 1-1e-9 {
		t.Errorf("heuristic beat the exact optimum: %+v", study)
	}
	// The cited claim: HLF within 5%% of optimal in almost all cases.
	if study.HLFWithin5Pct < study.Graphs*2/3 {
		t.Errorf("HLF within 5%% only %d/%d", study.HLFWithin5Pct, study.Graphs)
	}
	t.Logf("\n%s", study)
	if _, err := AblationOptimal(0, 3, 1); err == nil {
		t.Error("0 graphs accepted")
	}
}
