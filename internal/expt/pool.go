package expt

import (
	"runtime"

	"repro/internal/engine"
)

// The experiment harness fans independent cells (a Table 2 configuration,
// a scaling point, one ablation sample) across the shared orchestration
// layer's worker pool (engine.ParallelFor). Determinism is preserved by
// construction:
//
//   - every cell derives its seeds before the fan-out, never from a shared
//     RNG inside a worker;
//   - every cell writes its result into its own index of a pre-sized
//     slice, so aggregation order is independent of completion order;
//   - the reported error is the lowest-indexed one, not the first to
//     happen.
//
// The same seed therefore yields byte-identical tables at any worker
// count, including 1.
//
// Cells that solve through the worker handed to them (Table 2) reuse that
// worker's simulator arena and SA scheduler arena across cells; the
// remaining studies call the package-level machsim.Run, which draws a
// reusable arena from machsim's internal pool — either way fan-out workers
// reuse warm solve state without the harness threading buffers through
// every study (see PERFORMANCE.md §7 and §9).

// defaultWorkers resolves a Workers knob: values > 0 are used as given,
// anything else means one worker per available CPU.
func defaultWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines and returns the error of the lowest index that failed — the
// engine's deterministic fan-out, for cells that need no worker state.
func parallelFor(workers, n int, fn func(i int) error) error {
	return engine.ParallelFor(workers, n, func(i int, _ *engine.Worker) error {
		return fn(i)
	})
}
