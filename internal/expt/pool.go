package expt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment harness fans independent cells (a Table 2 configuration,
// a scaling point, one ablation sample) across a bounded worker pool.
// Determinism is preserved by construction:
//
//   - every cell derives its seeds before the fan-out, never from a shared
//     RNG inside a worker;
//   - every cell writes its result into its own index of a pre-sized
//     slice, so aggregation order is independent of completion order;
//   - the reported error is the lowest-indexed one, not the first to
//     happen.
//
// The same seed therefore yields byte-identical tables at any worker
// count, including 1.
//
// Simulation cells call the package-level machsim.Run, which draws a
// reusable simulator arena from machsim's internal pool — so fan-out
// workers reuse warm simulator buffers across cells without the harness
// threading arenas through every study (see PERFORMANCE.md §7).

// defaultWorkers resolves a Workers knob: values > 0 are used as given,
// anything else means one worker per available CPU.
func defaultWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines and returns the error of the lowest index that failed. With
// workers <= 1 (or n < 2) it degenerates to a plain loop.
func parallelFor(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
