package expt

import "testing"

func TestPolicyComparisonShape(t *testing.T) {
	rows, err := PolicyComparison(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for name, sp := range map[string]float64{
			"Random": r.Random, "FIFO": r.FIFO, "LPT": r.LPT,
			"MISF": r.MISF, "HLF": r.HLF, "ETF": r.ETF, "SA": r.SA,
		} {
			if sp <= 0 {
				t.Errorf("%s %s: speedup %g", r.Program, name, sp)
			}
		}
		// The paper's scheduler should not lose to the blind baselines.
		if r.SA < r.Random-1e-9 || r.SA < r.FIFO-1e-9 {
			t.Errorf("%s: SA (%.2f) lost to a blind baseline (random %.2f, fifo %.2f)",
				r.Program, r.SA, r.Random, r.FIFO)
		}
	}
	t.Logf("\n%s", FormatPolicyComparison(rows))
}
