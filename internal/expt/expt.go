// Package expt regenerates every table and figure of the paper's
// evaluation section (§6), plus a set of ablation studies:
//
//	Table 1   benchmark program characteristics
//	Table 2   SA vs HLF speedups on three architectures, with/without comm
//	Figure 1  cost trajectories of one annealing packet
//	Figure 2  Gantt chart of the Newton-Euler program on the hypercube
//	§6a       packet statistics (candidates per free processor)
//	§6b       Graham anomaly: SA reaches the optimum a fixed list misses
//
// All experiments are deterministic given their seeds.
package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Arch is one evaluation architecture.
type Arch struct {
	Name string
	Topo *topology.Topology
}

// Architectures returns the paper's three host configurations: an
// 8-processor hypercube, an 8-processor bus (star), and a 9-processor
// ring.
func Architectures() ([]Arch, error) {
	hc, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	bus, err := topology.Bus(8)
	if err != nil {
		return nil, err
	}
	ring, err := topology.Ring(9)
	if err != nil {
		return nil, err
	}
	return []Arch{
		{Name: "Hypercube (8p)", Topo: hc},
		{Name: "Bus (8p)", Topo: bus},
		{Name: "Ring (9p)", Topo: ring},
	}, nil
}

// RunSA schedules g on topo with the annealing scheduler and returns the
// simulation result together with the scheduler (whose packet reports the
// figures use).
func RunSA(g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams,
	opt core.Options, simOpt machsim.Options) (*machsim.Result, *core.Scheduler, error) {

	sched, err := core.NewScheduler(g, topo, comm, opt)
	if err != nil {
		return nil, nil, err
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, sched, simOpt)
	if err != nil {
		return nil, nil, err
	}
	return res, sched, nil
}

// RunPolicy schedules g on topo with an arbitrary policy.
func RunPolicy(g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams,
	p machsim.Policy, simOpt machsim.Options) (*machsim.Result, error) {

	return machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, p, simOpt)
}

// Gain returns the percentage speedup improvement of a over b, the
// "% gain" columns of Table 2.
func Gain(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}

// fmtPct formats a percentage with one decimal.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f", v) }
