package expt

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestParallelForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 37
		counts := make([]atomic.Int64, n)
		if err := parallelFor(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	boom := func(i int) error {
		if i == 3 || i == 11 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		err := parallelFor(workers, 20, boom)
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: err = %v, want cell 3's", workers, err)
		}
	}
	if err := parallelFor(4, 0, boom); err != nil {
		t.Errorf("empty range: err = %v", err)
	}
}

// The scaling sweep must be a pure function of its seed at any worker
// count: byte-identical formatted output sequential vs parallel.
func TestScalingParallelMatchesSequential(t *testing.T) {
	seq, err := ScalingStudy(ScalingConfig{Prog: "MM", MaxDim: 2, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ScalingStudy(ScalingConfig{Prog: "MM", MaxDim: 2, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := FormatScaling("MM", seq), FormatScaling("MM", par); a != b {
		t.Errorf("worker count changed the table:\nsequential:\n%s\nparallel:\n%s", a, b)
	}
}

// The pre-generated-population pattern: random-graph studies aggregate
// identically at any worker count because every cell's seed is drawn
// before the fan-out.
func TestRandomGraphStudyDeterministicAcrossWorkerCounts(t *testing.T) {
	archs, err := Architectures()
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		res, err := ablationRandomGraphs(archs[0], 6, true, 23, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	seq := run(1)
	for _, workers := range []int{3, 8} {
		if par := run(workers); par != seq {
			t.Errorf("workers=%d changed the study:\nseq: %s\npar: %s", workers, seq, par)
		}
	}
}
