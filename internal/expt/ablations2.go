package expt

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/optimal"
	"repro/internal/programs"
	"repro/internal/stats"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// StaticRow compares a static balanced mapping (the balancing problem of
// Hwang & Xu, which the paper extends) against staged scheduling on a
// *directed* taskgraph. This quantifies the paper's §4.1 motivation: "in
// programs characterized by a directed taskgraph, the communication and
// the load patterns vary largely during the execution time, invalidating
// the assumptions of the balancing problem".
type StaticRow struct {
	Program string
	Static  float64 // speedup under the static balanced mapping
	HLF     float64
	SA      float64 // staged annealing scheduler (the paper's algorithm)
}

// AblationStatic runs the four benchmark programs on the hypercube with
// communication, under a static balancing-problem mapping, HLF and the
// staged SA scheduler. The programs run concurrently.
func AblationStatic(seed int64) ([]StaticRow, error) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		return nil, err
	}
	comm := topology.DefaultCommParams()
	catalog := programs.Catalog()
	rows := make([]StaticRow, len(catalog))
	err = parallelFor(defaultWorkers(0), len(catalog), func(k int) error {
		prog := catalog[k]
		g := prog.Build()
		model := machsim.Model{Graph: g, Topo: topo, Comm: comm}

		mapping, err := assign.SolveBalancing(g, topo, assign.BalancingOptions{Seed: seed})
		if err != nil {
			return err
		}
		staticPol, err := assign.NewStaticPolicy(g, mapping.ProcOf)
		if err != nil {
			return err
		}
		staticRes, err := machsim.Run(model, staticPol, machsim.Options{})
		if err != nil {
			return err
		}

		hlf, err := list.NewHLF(g)
		if err != nil {
			return err
		}
		hlfRes, err := machsim.Run(model, hlf, machsim.Options{})
		if err != nil {
			return err
		}

		opt := core.DefaultOptions()
		opt.Seed = seed
		sched, err := core.NewScheduler(g, topo, comm, opt)
		if err != nil {
			return err
		}
		saRes, err := machsim.Run(model, sched, machsim.Options{})
		if err != nil {
			return err
		}

		rows[k] = StaticRow{
			Program: prog.Key,
			Static:  staticRes.Speedup,
			HLF:     hlfRes.Speedup,
			SA:      saRes.Speedup,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatStatic renders the static-vs-staged comparison.
func FormatStatic(rows []StaticRow) string {
	var b strings.Builder
	b.WriteString("Ablation D: static balanced mapping vs staged scheduling (hypercube-8, with comm)\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %12s\n", "Prog", "static", "HLF", "SA (staged)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %12.2f %12.2f %12.2f\n", r.Program, r.Static, r.HLF, r.SA)
	}
	return b.String()
}

// OptimalStudy aggregates heuristics-vs-optimum results on small random
// instances (free communication), echoing the statistical study of Adam,
// Chandy & Dickinson (1974) the paper cites: "HLF generated schedules
// remain within 5% of the optimal solution in all but one of 900 random
// generated taskgraphs".
type OptimalStudy struct {
	Graphs        int
	HLFRatio      stats.Summary // HLF makespan / optimal makespan
	SARatio       stats.Summary // SA makespan / optimal makespan
	HLFWithin5Pct int
	SAWithin5Pct  int
	SAOptimal     int // SA exactly optimal
	HLFOptimal    int
}

// AblationOptimal generates small random DAGs, solves them exactly, and
// measures how close HLF and SA come to the optimum (communication
// disabled, as in the cited study). The instances are generated
// sequentially from the study seed, then solved concurrently and
// aggregated in generation order, so the same seed gives identical
// results at any worker count.
func AblationOptimal(numGraphs, procs int, seed int64) (*OptimalStudy, error) {
	if numGraphs < 1 || procs < 1 {
		return nil, fmt.Errorf("expt: bad optimal-study parameters")
	}
	topo, err := topology.Complete(procs)
	if err != nil {
		return nil, err
	}
	comm := topology.DefaultCommParams().NoComm()
	rng := rand.New(rand.NewSource(seed))
	type cell struct {
		g      *taskgraph.Graph
		saSeed int64
	}
	cells := make([]cell, numGraphs)
	for k := range cells {
		n := 6 + rng.Intn(4) // 6..9 tasks keep the exact solver fast
		g, err := taskgraph.GnpDAG(fmt.Sprintf("opt%d", k), n, 0.15+0.25*rng.Float64(), 1, 20, 0, 0, rng)
		if err != nil {
			return nil, err
		}
		cells[k] = cell{g: g, saSeed: rng.Int63()}
	}

	hlfRatios := make([]float64, numGraphs)
	saRatios := make([]float64, numGraphs)
	err = parallelFor(defaultWorkers(0), numGraphs, func(k int) error {
		c := cells[k]
		exact, err := optimal.Makespan(c.g, procs, optimal.Options{})
		if err != nil {
			return err
		}
		model := machsim.Model{Graph: c.g, Topo: topo, Comm: comm}

		hlf, err := list.NewHLF(c.g)
		if err != nil {
			return err
		}
		hlfRes, err := machsim.Run(model, hlf, machsim.Options{})
		if err != nil {
			return err
		}

		opt := core.DefaultOptions()
		opt.Seed = c.saSeed
		sched, err := core.NewScheduler(c.g, topo, comm, opt)
		if err != nil {
			return err
		}
		saRes, err := machsim.Run(model, sched, machsim.Options{})
		if err != nil {
			return err
		}

		hlfRatios[k] = hlfRes.Makespan / exact.Makespan
		saRatios[k] = saRes.Makespan / exact.Makespan
		return nil
	})
	if err != nil {
		return nil, err
	}

	study := &OptimalStudy{Graphs: numGraphs}
	for k := 0; k < numGraphs; k++ {
		hr, sr := hlfRatios[k], saRatios[k]
		if hr <= 1.05+1e-9 {
			study.HLFWithin5Pct++
		}
		if sr <= 1.05+1e-9 {
			study.SAWithin5Pct++
		}
		if hr <= 1+1e-9 {
			study.HLFOptimal++
		}
		if sr <= 1+1e-9 {
			study.SAOptimal++
		}
	}
	study.HLFRatio = stats.Summarize(hlfRatios)
	study.SARatio = stats.Summarize(saRatios)
	return study, nil
}

// String renders the optimal study.
func (s *OptimalStudy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation E: heuristics vs exact optimum on %d small random DAGs (free comm)\n", s.Graphs)
	fmt.Fprintf(&b, "  HLF/optimal: %s; within 5%%: %d/%d; exactly optimal: %d/%d\n",
		s.HLFRatio, s.HLFWithin5Pct, s.Graphs, s.HLFOptimal, s.Graphs)
	fmt.Fprintf(&b, "  SA /optimal: %s; within 5%%: %d/%d; exactly optimal: %d/%d\n",
		s.SARatio, s.SAWithin5Pct, s.Graphs, s.SAOptimal, s.Graphs)
	return b.String()
}
