package expt

import (
	"fmt"
	"strings"

	"repro/internal/programs"
)

// Table1Row pairs the measured characteristics of one generated benchmark
// graph with the paper's published values.
type Table1Row struct {
	Program    string
	Tasks      int
	AvgDur     float64
	AvgComm    float64
	CCRatio    float64
	MaxSpeedup float64
	Paper      programs.Table1Row
}

// Table1 generates the four benchmark graphs and computes their
// characteristics at the paper's 10 Mb/s bandwidth.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range programs.Catalog() {
		g := p.Build()
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("expt: %s: %w", p.Key, err)
		}
		st, err := g.ComputeStats(programs.PaperBandwidth)
		if err != nil {
			return nil, fmt.Errorf("expt: %s: %w", p.Key, err)
		}
		rows = append(rows, Table1Row{
			Program:    p.Title,
			Tasks:      st.Tasks,
			AvgDur:     st.AvgLoad,
			AvgComm:    st.AvgComm,
			CCRatio:    st.CCRatio,
			MaxSpeedup: st.MaxSpeedup,
			Paper:      p.Paper,
		})
	}
	return rows, nil
}

// FormatTable1 renders the rows in the paper's Table 1 layout, with the
// published values alongside for comparison.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Principal program characteristics (measured | paper). Times in µs.\n")
	fmt.Fprintf(&b, "%-28s %8s %18s %18s %16s %18s\n",
		"Program", "Tasks", "Avg Duration", "Avg Commun.", "C/C Ratio", "Max. Speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %3d|%3d %9.2f|%7.2f %9.2f|%7.2f %7.1f%%|%5.1f%% %9.2f|%7.2f\n",
			r.Program,
			r.Tasks, r.Paper.Tasks,
			r.AvgDur, r.Paper.AvgDur,
			r.AvgComm, r.Paper.AvgComm,
			100*r.CCRatio, 100*r.Paper.CCRatio,
			r.MaxSpeedup, r.Paper.MaxSpeedup)
	}
	return b.String()
}
