package expt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/topology"
)

// ScalingPoint is one machine size of the processor-scaling study.
type ScalingPoint struct {
	Procs    int
	SA       float64
	HLF      float64
	Messages int // messages of the SA schedule
}

// ScalingConfig parameterizes the processor-scaling study.
type ScalingConfig struct {
	Prog   string
	MaxDim int // hypercube dimensions 0..MaxDim
	Seed   int64
	// Workers fans the independent machine sizes across this many
	// goroutines; <= 0 means one per available CPU. Every point derives
	// its inputs from Seed alone, so results are identical at any worker
	// count.
	Workers int
}

// Scaling sweeps hypercube sizes (1, 2, 4, ... processors) for one
// benchmark program with communication enabled — the classic
// speedup-versus-processors curve, showing where communication overhead
// flattens the scaling. An extension beyond the paper's fixed 8/9
// processor machines. Points are computed concurrently.
func Scaling(progKey string, maxDim int, seed int64) ([]ScalingPoint, error) {
	return ScalingStudy(ScalingConfig{Prog: progKey, MaxDim: maxDim, Seed: seed})
}

// ScalingStudy runs the scaling sweep with explicit worker control.
func ScalingStudy(cfg ScalingConfig) ([]ScalingPoint, error) {
	if cfg.MaxDim < 0 || cfg.MaxDim > 8 {
		return nil, fmt.Errorf("expt: scaling maxDim %d out of range [0,8]", cfg.MaxDim)
	}
	prog, err := programs.ByKey(cfg.Prog)
	if err != nil {
		return nil, err
	}
	comm := topology.DefaultCommParams()
	out := make([]ScalingPoint, cfg.MaxDim+1)
	err = parallelFor(defaultWorkers(cfg.Workers), cfg.MaxDim+1, func(dim int) error {
		// Each point gets its own graph: simulations share nothing, so the
		// sweep parallelizes trivially.
		g := prog.Build()
		topo, err := topology.Hypercube(dim)
		if err != nil {
			return err
		}
		model := machsim.Model{Graph: g, Topo: topo, Comm: comm}

		hlf, err := list.NewHLF(g)
		if err != nil {
			return err
		}
		hlfRes, err := machsim.Run(model, hlf, machsim.Options{})
		if err != nil {
			return err
		}

		opt := core.DefaultOptions()
		opt.Seed = cfg.Seed
		sched, err := core.NewScheduler(g, topo, comm, opt)
		if err != nil {
			return err
		}
		saRes, err := machsim.Run(model, sched, machsim.Options{})
		if err != nil {
			return err
		}
		out[dim] = ScalingPoint{
			Procs:    topo.N(),
			SA:       saRes.Speedup,
			HLF:      hlfRes.Speedup,
			Messages: saRes.Messages,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatScaling renders the scaling curve.
func FormatScaling(progKey string, pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling study: %s on hypercubes (with communication)\n", progKey)
	fmt.Fprintf(&b, "%6s %9s %9s %9s\n", "procs", "SA", "HLF", "messages")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d %9.2f %9.2f %9d\n", p.Procs, p.SA, p.HLF, p.Messages)
	}
	return b.String()
}
