package expt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/topology"
)

// ScalingPoint is one machine size of the processor-scaling study.
type ScalingPoint struct {
	Procs    int
	SA       float64
	HLF      float64
	Messages int // messages of the SA schedule
}

// Scaling sweeps hypercube sizes (1, 2, 4, ... processors) for one
// benchmark program with communication enabled — the classic
// speedup-versus-processors curve, showing where communication overhead
// flattens the scaling. An extension beyond the paper's fixed 8/9
// processor machines.
func Scaling(progKey string, maxDim int, seed int64) ([]ScalingPoint, error) {
	if maxDim < 0 || maxDim > 8 {
		return nil, fmt.Errorf("expt: scaling maxDim %d out of range [0,8]", maxDim)
	}
	prog, err := programs.ByKey(progKey)
	if err != nil {
		return nil, err
	}
	g := prog.Build()
	comm := topology.DefaultCommParams()
	var out []ScalingPoint
	for dim := 0; dim <= maxDim; dim++ {
		topo, err := topology.Hypercube(dim)
		if err != nil {
			return nil, err
		}
		model := machsim.Model{Graph: g, Topo: topo, Comm: comm}

		hlf, err := list.NewHLF(g)
		if err != nil {
			return nil, err
		}
		hlfRes, err := machsim.Run(model, hlf, machsim.Options{})
		if err != nil {
			return nil, err
		}

		opt := core.DefaultOptions()
		opt.Seed = seed
		sched, err := core.NewScheduler(g, topo, comm, opt)
		if err != nil {
			return nil, err
		}
		saRes, err := machsim.Run(model, sched, machsim.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{
			Procs:    topo.N(),
			SA:       saRes.Speedup,
			HLF:      hlfRes.Speedup,
			Messages: saRes.Messages,
		})
	}
	return out, nil
}

// FormatScaling renders the scaling curve.
func FormatScaling(progKey string, pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling study: %s on hypercubes (with communication)\n", progKey)
	fmt.Fprintf(&b, "%6s %9s %9s %9s\n", "procs", "SA", "HLF", "messages")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d %9.2f %9.2f %9d\n", p.Procs, p.SA, p.HLF, p.Messages)
	}
	return b.String()
}
