package core

import (
	"math/rand"
	"testing"

	"repro/internal/anneal"
	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// The packet's elementary move must not allocate: Propose records its undo
// state in packet fields and Undo replays it, so the annealer's accept/
// reject loop stays off the heap entirely.
func TestPacketProposeZeroAllocs(t *testing.T) {
	pk, _ := packetFixture(t, 0.5, 0.5)
	rng := rand.New(rand.NewSource(51))
	pk.initRandom(rng)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := pk.Propose(rng); !ok {
			t.Fatal("no move possible")
		}
		pk.Undo()
	})
	if allocs != 0 {
		t.Errorf("Propose+Undo allocated %.2f times per move, want 0", allocs)
	}
}

// A full anneal.Minimize run over an already-built packet must not
// allocate either: best-state tracking goes through the packet's reusable
// double buffer, not through per-improvement snapshot copies.
func TestPacketMinimizeZeroAllocs(t *testing.T) {
	pk, _ := packetFixture(t, 0.5, 0.5)
	rng := rand.New(rand.NewSource(52))
	pk.initRandom(rng)
	opt := anneal.Options{
		Cooling:       anneal.Geometric{T0: 1, Alpha: 0.9, NumStages: 30},
		MovesPerStage: 40,
		RNG:           rng,
	}
	if _, err := anneal.Minimize(pk, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := anneal.Minimize(pk, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Minimize allocated %.2f times per run, want 0", allocs)
	}
}

// Packet buffers are reused across epochs: once the scheduler has seen its
// largest packet, later resets of same-or-smaller shape allocate nothing.
func TestPacketResetReusesBuffers(t *testing.T) {
	pk, g := packetFixture(t, 0.5, 0.5)
	topo, err := topology.ChainTopo(3)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	locate := func(id taskgraph.TaskID) int {
		switch id {
		case 0:
			return 0
		case 1:
			return 2
		default:
			return -1
		}
	}
	ready := append([]taskgraph.TaskID(nil), pk.tasks...)
	idle := append([]int(nil), pk.procs...)
	comm := topology.DefaultCommParams()
	allocs := testing.AllocsPerRun(100, func() {
		pk.reset(ready, idle, locate, levels, topo, comm, g, 0.5, 0.5)
	})
	if allocs != 0 {
		t.Errorf("reset allocated %.2f times per epoch, want 0", allocs)
	}
}

// Equal seeds must give byte-identical schedules even when restarts anneal
// concurrently: per-restart seeds are drawn up front and the winner is
// picked by (cost, restart index), independent of goroutine interleaving.
func TestSchedulerParallelRestartsDeterministic(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 12, 10, 1, 800)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	run := func() *machsim.Result {
		opt := DefaultOptions()
		opt.Seed = 61
		opt.Restarts = 4
		sched, err := NewScheduler(g, topo, comm, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, sched, machsim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %g vs %g", a.Makespan, b.Makespan)
	}
	for i := range a.Proc {
		if a.Proc[i] != b.Proc[i] {
			t.Fatalf("task %d placed on %d vs %d across identical-seed runs", i, a.Proc[i], b.Proc[i])
		}
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] || a.Finish[i] != b.Finish[i] {
			t.Fatalf("task %d timing differs across identical-seed runs", i)
		}
	}
}

// With restarts the report keeps the winning restart's trace only, and a
// failed annealing run must still report the mapping's actual cost.
func TestSchedulerRestartTraceAndErrorBookkeeping(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 10, 5, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	opt := DefaultOptions()
	opt.Seed = 11
	opt.Restarts = 3
	opt.RecordTrace = true
	sched, err := NewScheduler(g, topo, comm, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, sched, machsim.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range sched.Packets() {
		if len(p.Trace) == 0 {
			continue
		}
		// The trace belongs to one restart: iteration numbers restart at 0
		// and stay consecutive, instead of three concatenated runs.
		if p.Trace[0].Iter != 0 {
			t.Errorf("packet at %g: trace starts at iter %d", p.Time, p.Trace[0].Iter)
		}
		for i := 1; i < len(p.Trace); i++ {
			if p.Trace[i].Iter != p.Trace[i-1].Iter+1 {
				t.Errorf("packet at %g: trace iters jump at %d (restart traces interleaved?)", p.Time, i)
				break
			}
		}
		if p.Restart < 0 || p.Restart >= 3 {
			t.Errorf("packet at %g: winning restart index %d out of range", p.Time, p.Restart)
		}
	}

	// Every report's FinalCost must reflect a real mapping cost even in
	// degenerate packets (the pre-fix code left 0 when annealing bailed).
	for _, p := range sched.Packets() {
		if p.Assigned > 0 && p.FinalCost == 0 && p.InitialCost != 0 {
			t.Errorf("packet at %g: FinalCost 0 despite assignments (initial %g)", p.Time, p.InitialCost)
		}
	}
}
