package core

import (
	"fmt"
	"math/rand"

	"repro/internal/anneal"
	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Options configures the simulated-annealing scheduler.
type Options struct {
	// Wb and Wc weight the load-balancing and communication terms of the
	// cost function (eq. 6). The paper requires Wb + Wc = 1 and uses
	// Wb = Wc = 0.5 for its Figure 1.
	Wb, Wc float64
	// Anneal configures the annealing engine per packet. Zero-valued
	// fields are filled with packet-size-dependent defaults.
	Anneal anneal.Options
	// Seed drives all stochastic choices; equal seeds give equal schedules.
	Seed int64
	// GreedyInit starts each packet from the HLF mapping instead of a
	// random one.
	GreedyInit bool
	// RecordTrace keeps the per-move cost trajectories (Fb, Fc, Ftot) of
	// every packet, as plotted in the paper's Figure 1.
	RecordTrace bool
	// Restarts anneals each packet this many times from independent
	// initial mappings and keeps the lowest-cost one. 0 or 1 means a
	// single run. Restarts multiply per-packet work but smooth out the
	// occasional bad packet on rugged cost surfaces.
	Restarts int
}

// DefaultOptions returns the configuration used for the Table 2
// reproduction: equal weights and the default annealing engine with a
// packet-size-adaptive move budget (MovesPerStage is left zero so
// fillAnnealDefaults scales it per packet).
func DefaultOptions() Options {
	opt := Options{Wb: 0.5, Wc: 0.5, Anneal: anneal.DefaultOptions()}
	opt.Anneal.MovesPerStage = 0
	return opt
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Wb < 0 || o.Wc < 0 {
		return fmt.Errorf("core: negative weights wb=%g wc=%g", o.Wb, o.Wc)
	}
	if s := o.Wb + o.Wc; s < 0.999 || s > 1.001 {
		return fmt.Errorf("core: weights must satisfy wb+wc=1, got %g", s)
	}
	return nil
}

// TracePoint is one annealing iteration of one packet: the raw level cost
// Fb (eq. 3), the raw communication cost Fc (eq. 5) and the weighted
// normalized total Ftot (eq. 6). These are the three trajectories of the
// paper's Figure 1.
type TracePoint struct {
	Iter int
	Temp float64
	Fb   float64
	Fc   float64
	Ftot float64
}

// PacketReport summarizes the annealing of one packet.
type PacketReport struct {
	Time        float64 // epoch time
	Candidates  int     // ready tasks competing
	Idle        int     // free processors
	Assigned    int
	Moves       int
	Accepted    int
	Stages      int
	InitialCost float64
	FinalCost   float64
	PlateauStop bool
	Trace       []TracePoint // nil unless Options.RecordTrace
}

// Scheduler is the paper's staged simulated-annealing scheduler. It
// implements machsim.Policy. A Scheduler carries per-run state (its RNG
// and packet reports); use a fresh Scheduler per simulation.
type Scheduler struct {
	g      *taskgraph.Graph
	topo   *topology.Topology
	comm   topology.CommParams
	levels []float64
	opt    Options
	rng    *rand.Rand

	packets []PacketReport
}

// NewScheduler builds an SA scheduling policy for one (graph, machine)
// pair.
func NewScheduler(g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams, opt Options) (*Scheduler, error) {
	if topo == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	return &Scheduler{
		g:      g,
		topo:   topo,
		comm:   comm,
		levels: levels,
		opt:    opt,
		rng:    rand.New(rand.NewSource(opt.Seed)),
	}, nil
}

// Name implements machsim.Policy.
func (s *Scheduler) Name() string { return "SA" }

// Packets returns the per-packet reports accumulated so far.
func (s *Scheduler) Packets() []PacketReport { return s.packets }

// Assign implements machsim.Policy: form the annealing packet, anneal the
// mapping, return the selected placements.
func (s *Scheduler) Assign(ep *machsim.Epoch) []machsim.Assignment {
	if len(ep.Ready) == 0 || len(ep.Idle) == 0 {
		return nil
	}
	pk := newPacket(ep.Ready, ep.Idle, ep.Sim.ProcOf, s.levels, s.topo, s.comm, s.g, s.opt.Wb, s.opt.Wc)
	if s.opt.GreedyInit {
		pk.initGreedy()
	} else {
		pk.initRandom(s.rng)
	}

	aopt := s.fillAnnealDefaults(len(pk.tasks), len(pk.procs))
	aopt.RNG = s.rng
	report := PacketReport{
		Time:        ep.Time,
		Candidates:  len(pk.tasks),
		Idle:        len(pk.procs),
		InitialCost: pk.Cost(),
	}
	if s.opt.RecordTrace {
		aopt.OnMove = func(mi anneal.MoveInfo) {
			report.Trace = append(report.Trace, TracePoint{
				Iter: mi.Move,
				Temp: mi.Temp,
				Fb:   pk.Fb(),
				Fc:   pk.Fc(),
				Ftot: pk.Cost(),
			})
		}
	}

	restarts := s.opt.Restarts
	if restarts < 1 {
		restarts = 1
	}
	var bestSnap any
	bestCost := 0.0
	for r := 0; r < restarts; r++ {
		if r > 0 {
			// Fresh independent initial mapping for the retry.
			for i := range pk.procOf {
				if pk.procOf[i] >= 0 {
					pk.remove(i)
				}
			}
			if s.opt.GreedyInit {
				pk.initGreedy()
			} else {
				pk.initRandom(s.rng)
			}
		}
		res, err := anneal.Minimize(pk, aopt)
		if err != nil {
			// Configuration-only error path: keep the current mapping so
			// scheduling still completes.
			break
		}
		report.Moves += res.Moves
		report.Accepted += res.Accepted
		report.Stages += res.Stages
		report.PlateauStop = res.PlateauStop
		if bestSnap == nil || res.FinalCost < bestCost {
			bestSnap = pk.Snapshot()
			bestCost = res.FinalCost
		}
	}
	if bestSnap != nil {
		pk.Restore(bestSnap)
		report.FinalCost = bestCost
	}

	out := pk.assignments()
	report.Assigned = len(out)
	s.packets = append(s.packets, report)
	return out
}

// fillAnnealDefaults completes the annealing options with packet-scaled
// values: the number of elementary moves per temperature grows with the
// mapping's neighborhood size.
func (s *Scheduler) fillAnnealDefaults(numTasks, numProcs int) anneal.Options {
	aopt := s.opt.Anneal
	if aopt.Cooling == nil {
		aopt.Cooling = anneal.Geometric{T0: 1, Alpha: 0.9, NumStages: 60}
	}
	if aopt.MovesPerStage <= 0 {
		moves := 2 * numTasks * numProcs
		if moves < 20 {
			moves = 20
		}
		if moves > 400 {
			moves = 400
		}
		aopt.MovesPerStage = moves
	}
	if aopt.PlateauStages == 0 {
		aopt.PlateauStages = 5
	}
	if aopt.MaxMoves == 0 {
		aopt.MaxMoves = 20000
	}
	return aopt
}

// AvgCandidates returns the mean number of ready candidates per packet
// (the paper reports ≈15 for Newton-Euler).
func (s *Scheduler) AvgCandidates() float64 {
	if len(s.packets) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.packets {
		sum += float64(p.Candidates)
	}
	return sum / float64(len(s.packets))
}

// AvgIdle returns the mean number of free processors per packet (the
// paper reports ≈1.46 for Newton-Euler).
func (s *Scheduler) AvgIdle() float64 {
	if len(s.packets) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.packets {
		sum += float64(p.Idle)
	}
	return sum / float64(len(s.packets))
}
