package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/anneal"
	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Options configures the simulated-annealing scheduler.
type Options struct {
	// Wb and Wc weight the load-balancing and communication terms of the
	// cost function (eq. 6). The paper requires Wb + Wc = 1 and uses
	// Wb = Wc = 0.5 for its Figure 1.
	Wb, Wc float64
	// Anneal configures the annealing engine per packet. Zero-valued
	// fields are filled with packet-size-dependent defaults.
	Anneal anneal.Options
	// Seed drives all stochastic choices; equal seeds give equal schedules.
	Seed int64
	// GreedyInit starts each packet from the HLF mapping instead of a
	// random one.
	GreedyInit bool
	// RecordTrace keeps the per-move cost trajectories (Fb, Fc, Ftot) of
	// every packet, as plotted in the paper's Figure 1. With restarts,
	// the trace of the winning (lowest-cost) restart is kept.
	RecordTrace bool
	// Restarts anneals each packet this many times from independent
	// initial mappings and keeps the lowest-cost one. 0 or 1 means a
	// single run. Restarts run concurrently on cloned packets with
	// deterministic per-restart seeds, so they cost wall-clock time only
	// on a loaded machine — and equal seeds still give equal schedules.
	Restarts int
	// Cooperative makes concurrent restarts share one incumbent best
	// cost: restarts run their temperature stages in lockstep, publish
	// their best to the incumbent at every stage barrier, and a restart
	// whose best has trailed the incumbent for AbandonAfter consecutive
	// barriers is abandoned early — less total work for an
	// equal-or-better winner (the incumbent holder is never abandoned,
	// so the adopted mapping is always the global best seen). All
	// cross-restart decisions happen at seed-deterministic barriers in
	// restart order, never by wall clock, so cooperative schedules are
	// byte-identical at any GOMAXPROCS or worker count.
	Cooperative bool
	// Tempering layers parallel tempering onto cooperative restarts:
	// restart r anneals on the base cooling schedule scaled by
	// temperRatio^r (a temperature ladder), and after every stage
	// adjacent live replicas attempt a Metropolis state exchange drawn
	// from a dedicated seed-derived RNG. Exchanges move good states
	// toward the cold end of the ladder while hot replicas keep
	// exploring. Implies the cooperative barrier discipline; early
	// abandonment is disabled so every rung stays live. Deterministic
	// under the same argument as Cooperative.
	Tempering bool
	// AbandonAfter is the cooperative patience in stage barriers. 0
	// means the default (5); negative disables abandonment (restarts
	// still share the barrier schedule and incumbent).
	AbandonAfter int
	// Interrupt, when non-nil, is polled at every cooperative stage
	// barrier; a non-nil error stops the anneal early (the best mapping
	// so far is still adopted). The solver layer chains the request
	// context into it, so a cancelled request — a portfolio loser, a
	// disconnected client — stops burning CPU mid-anneal instead of at
	// the next simulator event. Interrupt only fires on runs that are
	// being discarded, so determinism of served results is unaffected.
	Interrupt func() error
	// Bound, when non-nil, is polled at every cooperative stage barrier
	// with the current assignment epoch's simulation time — a monotone
	// lower bound on this run's final makespan. A non-nil error stops the
	// anneal early, exactly like Interrupt. The solver portfolio threads
	// machsim.Options.Bound through here, so a racing SA member that can
	// no longer beat the incumbent best stops mid-anneal instead of
	// finishing the packet and waiting for the simulator's next event-
	// batch poll to kill it. Like Interrupt, it only ever fires on runs
	// whose results are being discarded.
	Bound func(now float64) error
	// Warm seeds every packet from a previously solved assignment and
	// starts the cooling schedule late (scaled by the seed's structural
	// distance): the cache-as-a-prior mode. Candidates whose seed
	// processor is idle in the packet keep their placement; the rest fill
	// by HLF order. Warm runs stay byte-deterministic for a fixed (Seed,
	// Warm) pair, and the annealer's keep-best snapshot guarantees each
	// packet's final cost never exceeds its seeded initial cost.
	Warm *WarmStart
}

// WarmStart carries a warm-start seed into the scheduler.
type WarmStart struct {
	// Assignment[t] is the seed processor for task t, or −1 for tasks the
	// seed does not place (taskgraph.ProjectAssignment's output). It must
	// cover every task of the graph (len == NumTasks) to take effect.
	Assignment []int
	// Distance is the structural distance between the seed's graph and
	// this one, in [0, 1]. Near 0 skips most of the cooling schedule
	// (small perturbations need only the cold tail of the anneal); near 1
	// degrades to an almost-cold run.
	Distance float64
}

// temperRatio is the geometric spacing of the parallel-tempering
// temperature ladder: replica r runs temperRatio^r hotter than the base
// schedule.
const temperRatio = 1.5

// defaultAbandonAfter is the cooperative patience when AbandonAfter is 0.
const defaultAbandonAfter = 5

// DefaultOptions returns the configuration used for the Table 2
// reproduction: equal weights and the default annealing engine with a
// packet-size-adaptive move budget (MovesPerStage is left zero so
// fillAnnealDefaults scales it per packet).
func DefaultOptions() Options {
	opt := Options{Wb: 0.5, Wc: 0.5, Anneal: anneal.DefaultOptions()}
	opt.Anneal.MovesPerStage = 0
	return opt
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.Wb < 0 || o.Wc < 0 {
		return fmt.Errorf("core: negative weights wb=%g wc=%g", o.Wb, o.Wc)
	}
	if s := o.Wb + o.Wc; s < 0.999 || s > 1.001 {
		return fmt.Errorf("core: weights must satisfy wb+wc=1, got %g", s)
	}
	return nil
}

// TracePoint is one annealing iteration of one packet: the raw level cost
// Fb (eq. 3), the raw communication cost Fc (eq. 5) and the weighted
// normalized total Ftot (eq. 6). These are the three trajectories of the
// paper's Figure 1.
type TracePoint struct {
	Iter int
	Temp float64
	Fb   float64
	Fc   float64
	Ftot float64
}

// PacketReport summarizes the annealing of one packet.
type PacketReport struct {
	Time        float64 // epoch time
	Candidates  int     // ready tasks competing
	Idle        int     // free processors
	Assigned    int
	Moves       int // proposed moves, summed over restarts
	Accepted    int // accepted moves, summed over restarts
	Stages      int // temperature stages, summed over restarts
	InitialCost float64
	FinalCost   float64
	PlateauStop bool
	// Restart is the index of the winning restart (0 for single runs).
	Restart int
	// Abandoned counts restarts of this packet stopped early by the
	// cooperative incumbent rule; Exchanges counts accepted
	// parallel-tempering replica swaps. Both are zero outside
	// cooperative mode.
	Abandoned int
	Exchanges int
	Trace     []TracePoint // winning restart's trace; nil unless Options.RecordTrace
}

// Scheduler is the paper's staged simulated-annealing scheduler. It
// implements machsim.Policy. A Scheduler carries per-run state (its RNG,
// packet reports and reusable packet buffers); use a fresh Scheduler —
// or Reset one — per simulation.
type Scheduler struct {
	g      *taskgraph.Graph
	topo   *topology.Topology
	comm   topology.CommParams
	levels []float64
	opt    Options
	rng    *rand.Rand

	// Scratch for the reusable level computation (reverse Kahn pass).
	lvlDeg   []int32
	lvlStack []int32

	// pk is the arena-backed packet reused across epochs; runs holds the
	// per-restart clones (grown on demand, reused across epochs).
	pk   packet
	runs []restartRun

	// Cooperative-mode state: the replica-exchange RNG (re-seeded from
	// the scheduler stream per packet), the shared barrier-completion
	// channel, and run-level counters surfaced through
	// RestartsAbandoned/Exchanges.
	exchRng   *rand.Rand
	coopDone  chan struct{}
	abandoned int
	exchanges int

	// Warm-start state: warmOK is whether Options.Warm is usable for this
	// binding (covers every task), warmSaved totals the cooling stages
	// skipped across packets, and epochTime is the current assignment
	// epoch's simulation clock for the Bound barrier poll.
	warmOK    bool
	warmSaved int
	epochTime float64

	packets []PacketReport
}

// restartRun is the per-restart workspace of one concurrent annealing run.
type restartRun struct {
	pk    packet
	rng   *rand.Rand
	seed  int64
	res   anneal.Result
	err   error
	trace []TracePoint

	// Cooperative-mode fields: the reusable incremental anneal, its
	// wake-up channel (true = run one stage, false = exit), whether the
	// last Step could continue, and barrier bookkeeping. stepOK is
	// written by the worker goroutine and read by the coordinator; the
	// start/done channel handshake orders the accesses.
	step    *anneal.Stepper
	start   chan bool
	stepOK  bool
	stopped bool
	lag     int
}

// NewScheduler builds an SA scheduling policy for one (graph, machine)
// pair.
func NewScheduler(g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams, opt Options) (*Scheduler, error) {
	s := NewSchedulerArena()
	if err := s.Reset(g, topo, comm, opt); err != nil {
		return nil, err
	}
	return s, nil
}

// NewSchedulerArena returns an empty, unbound scheduler arena. Reset binds
// it to a problem before use. Worker pools hold one arena per worker and
// Reset it per solve, so back-to-back SA solves reuse the packet buffers,
// restart workspaces and report slice instead of rebuilding them — the
// scheduler-side analogue of machsim.NewArena.
func NewSchedulerArena() *Scheduler { return &Scheduler{} }

// Reset rebinds the scheduler to a (new) problem, growing its buffers as
// needed and discarding all state from a previous binding. A Reset
// scheduler is observably identical to a freshly constructed one: for a
// fixed (graph, machine, options) it produces the same schedule whether
// the arena is cold or warm.
func (s *Scheduler) Reset(g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams, opt Options) error {
	if topo == nil {
		return fmt.Errorf("core: nil topology")
	}
	if g == nil {
		return fmt.Errorf("core: nil taskgraph")
	}
	if err := opt.Validate(); err != nil {
		return err
	}
	s.g = g
	s.topo = topo
	s.comm = comm
	s.opt = opt
	if err := s.computeLevels(); err != nil {
		return err
	}
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(opt.Seed))
	} else {
		// Re-seeding the existing source restarts the identical stream a
		// fresh rand.NewSource(seed) would produce.
		s.rng.Seed(opt.Seed)
	}
	// Warm the packet arena to the whole-problem bounds (every task ready,
	// every processor idle) and pre-size the report slice, so per-epoch
	// work inside a run does not grow buffers.
	s.pk.presize(g.NumTasks(), topo.N())
	if cap(s.packets) < g.NumTasks() {
		s.packets = make([]PacketReport, 0, g.NumTasks())
	} else {
		s.packets = s.packets[:0]
	}
	s.abandoned = 0
	s.exchanges = 0
	s.warmOK = opt.Warm != nil && len(opt.Warm.Assignment) == g.NumTasks()
	s.warmSaved = 0
	s.epochTime = 0
	return nil
}

// computeLevels fills s.levels with each task's level using reusable
// scratch buffers — a reverse Kahn pass from the leaves, matching
// Graph.Levels exactly (levels are well-defined independent of visit
// order) without its per-call allocations.
func (s *Scheduler) computeLevels() error {
	g := s.g
	nt := g.NumTasks()
	s.levels = grow(s.levels, nt)
	s.lvlDeg = grow(s.lvlDeg, nt)
	stack := s.lvlStack[:0]
	for i := 0; i < nt; i++ {
		d := g.OutDegree(taskgraph.TaskID(i))
		s.lvlDeg[i] = int32(d)
		s.levels[i] = 0
		if d == 0 {
			stack = append(stack, int32(i))
		}
	}
	processed := 0
	for len(stack) > 0 {
		i := taskgraph.TaskID(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		processed++
		best := 0.0
		for _, h := range g.Successors(i) {
			if s.levels[h.To] > best {
				best = s.levels[h.To]
			}
		}
		s.levels[i] = g.Load(i) + best
		for _, h := range g.Predecessors(i) {
			s.lvlDeg[h.To]--
			if s.lvlDeg[h.To] == 0 {
				stack = append(stack, int32(h.To))
			}
		}
	}
	s.lvlStack = stack[:0]
	if processed != nt {
		return fmt.Errorf("core: taskgraph %q: cycle detected (%d of %d tasks ordered)", g.Name(), processed, nt)
	}
	return nil
}

// Name implements machsim.Policy. With restarts the name carries the
// restart count ("SA(r=4)") so portfolio traces and solver listings are
// unambiguous about the configuration that produced a result.
func (s *Scheduler) Name() string {
	if s.opt.Restarts > 1 {
		switch {
		case s.opt.Tempering:
			return fmt.Sprintf("SA(pt r=%d)", s.opt.Restarts)
		case s.opt.Cooperative:
			return fmt.Sprintf("SA(coop r=%d)", s.opt.Restarts)
		}
		return fmt.Sprintf("SA(r=%d)", s.opt.Restarts)
	}
	return "SA"
}

// Packets returns the per-packet reports accumulated so far.
func (s *Scheduler) Packets() []PacketReport { return s.packets }

// RestartsAbandoned returns the total restarts stopped early by the
// cooperative incumbent rule across all packets since the last Reset.
func (s *Scheduler) RestartsAbandoned() int { return s.abandoned }

// Exchanges returns the total accepted parallel-tempering replica swaps
// across all packets since the last Reset.
func (s *Scheduler) Exchanges() int { return s.exchanges }

// WarmSavedStages returns the total cooling stages skipped by the
// warm-start temperature offset across all packets since the last Reset —
// the annealing epochs the warm seed saved relative to a cold run of the
// same schedule. Zero outside warm mode.
func (s *Scheduler) WarmSavedStages() int { return s.warmSaved }

// Assign implements machsim.Policy: form the annealing packet, anneal the
// mapping (possibly several concurrent restarts), return the selected
// placements.
func (s *Scheduler) Assign(ep *machsim.Epoch) []machsim.Assignment {
	if len(ep.Ready) == 0 || len(ep.Idle) == 0 {
		return nil
	}
	pk := &s.pk
	pk.reset(ep.Ready, ep.Idle, ep.Sim.ProcOf, s.levels, s.topo, s.comm, s.g, s.opt.Wb, s.opt.Wc)
	s.epochTime = ep.Time
	s.initPacket(pk, s.rng)

	aopt := s.fillAnnealDefaults(len(pk.tasks), len(pk.procs))
	if s.warmOK {
		// Seeded packets resume the cooling schedule near its cold end:
		// the seed is already a near-solution, so the exploratory hot
		// stages would only undo it (keep-best would recover, but burn the
		// moves for nothing). The skip scales with the seed's structural
		// distance and is deterministic, so warm results cache like cold
		// ones.
		if skip := warmSkipStages(aopt.Cooling.Stages(), s.opt.Warm.Distance); skip > 0 {
			aopt.Cooling = offsetCooling{base: aopt.Cooling, skip: skip}
			s.warmSaved += skip
		}
	}
	// Append first and fill the slice element in place: a local PacketReport
	// whose address crosses into annealSingle/annealRestarts escapes to the
	// heap on every epoch.
	s.packets = append(s.packets, PacketReport{
		Time:        ep.Time,
		Candidates:  len(pk.tasks),
		Idle:        len(pk.procs),
		InitialCost: pk.Cost(),
		// Fallback: if every annealing run fails (configuration-only error
		// path) the current mapping is kept and its cost reported.
		FinalCost: pk.Cost(),
	})
	report := &s.packets[len(s.packets)-1]

	switch {
	case s.opt.Restarts <= 1:
		s.annealSingle(pk, aopt, report)
	case s.opt.Cooperative || s.opt.Tempering:
		s.annealCooperative(pk, aopt, report)
	default:
		s.annealRestarts(pk, aopt, report)
	}

	out := pk.assignments()
	report.Assigned = len(out)
	return out
}

// annealSingle runs one annealing pass in place, on the scheduler's own
// RNG stream — the allocation-free fast path.
func (s *Scheduler) annealSingle(pk *packet, aopt anneal.Options, report *PacketReport) {
	aopt.RNG = s.rng
	if s.opt.RecordTrace {
		aopt.OnMove = func(mi anneal.MoveInfo) {
			report.Trace = append(report.Trace, TracePoint{
				Iter: mi.Move,
				Temp: mi.Temp,
				Fb:   pk.Fb(),
				Fc:   pk.Fc(),
				Ftot: pk.Cost(),
			})
		}
	}
	res, err := anneal.Minimize(pk, aopt)
	if err != nil {
		return // keep the current mapping so scheduling still completes
	}
	report.Moves = res.Moves
	report.Accepted = res.Accepted
	report.Stages = res.Stages
	report.PlateauStop = res.PlateauStop
	report.FinalCost = res.FinalCost
}

// annealRestarts anneals the packet Restarts times concurrently, each
// restart on its own clone with its own deterministically-seeded RNG, and
// adopts the lowest-cost mapping (ties broken by restart index, so equal
// seeds give equal schedules regardless of goroutine interleaving).
func (s *Scheduler) annealRestarts(pk *packet, aopt anneal.Options, report *PacketReport) {
	restarts := s.opt.Restarts
	if len(s.runs) < restarts {
		s.runs = append(s.runs, make([]restartRun, restarts-len(s.runs))...)
	}
	// Draw the per-restart seeds up front from the scheduler RNG so the
	// seed derivation is independent of execution order.
	for r := 0; r < restarts; r++ {
		s.runs[r].seed = s.rng.Int63()
	}

	var wg sync.WaitGroup
	for r := 0; r < restarts; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			run := &s.runs[r]
			if run.rng == nil {
				run.rng = rand.New(rand.NewSource(run.seed))
			} else {
				run.rng.Seed(run.seed)
			}
			run.pk.cloneFrom(pk)
			if r > 0 {
				// Fresh initial mapping for the retry; restart 0 keeps the
				// packet's original init. Warm runs re-seed every restart
				// from the same warm assignment (their RNG streams diverge
				// from move one).
				run.pk.clearMapping()
				s.initPacket(&run.pk, run.rng)
			}
			ropt := aopt
			ropt.RNG = run.rng
			run.trace = run.trace[:0]
			if s.opt.RecordTrace {
				rpk := &run.pk
				trace := &run.trace
				ropt.OnMove = func(mi anneal.MoveInfo) {
					*trace = append(*trace, TracePoint{
						Iter: mi.Move,
						Temp: mi.Temp,
						Fb:   rpk.Fb(),
						Fc:   rpk.Fc(),
						Ftot: rpk.Cost(),
					})
				}
			}
			run.res, run.err = anneal.Minimize(&run.pk, ropt)
		}(r)
	}
	wg.Wait()

	best := -1
	for r := 0; r < restarts; r++ {
		run := &s.runs[r]
		if run.err != nil {
			continue
		}
		report.Moves += run.res.Moves
		report.Accepted += run.res.Accepted
		report.Stages += run.res.Stages
		if best < 0 || run.res.FinalCost < s.runs[best].res.FinalCost {
			best = r
		}
	}
	if best < 0 {
		return // every restart failed: keep the current mapping
	}
	win := &s.runs[best]
	pk.adoptMapping(&win.pk)
	report.FinalCost = win.res.FinalCost
	report.PlateauStop = win.res.PlateauStop
	report.Restart = best
	if s.opt.RecordTrace {
		report.Trace = append(report.Trace[:0], win.trace...)
	}
}

// initPacket fills a freshly reset (or cleared) packet's initial mapping
// according to the scheduler options: the warm seed when one is active,
// else HLF-greedy or random. All three are deterministic for a fixed RNG
// stream position.
func (s *Scheduler) initPacket(pk *packet, rng *rand.Rand) {
	switch {
	case s.warmOK:
		pk.initWarm(s.opt.Warm.Assignment)
	case s.opt.GreedyInit:
		pk.initGreedy()
	default:
		pk.initRandom(rng)
	}
}

// warmSkipFrac is the fraction of the cooling schedule a zero-distance
// warm seed skips; warmMinStages is the cold tail every warm run keeps so
// the seed is still polished locally.
const (
	warmSkipFrac  = 0.9
	warmMinStages = 6
)

// warmSkipStages returns how many leading cooling stages a warm run at the
// given structural distance skips out of stages total.
func warmSkipStages(stages int, distance float64) int {
	if distance < 0 {
		distance = 0
	}
	if distance > 1 {
		distance = 1
	}
	skip := int(float64(stages) * warmSkipFrac * (1 - distance))
	if skip > stages-warmMinStages {
		skip = stages - warmMinStages
	}
	if skip < 0 {
		skip = 0
	}
	return skip
}

// offsetCooling drops the first skip stages of a base schedule: stage k
// runs at the base's temperature for stage k+skip. A warm-started anneal
// uses it to resume the schedule near its cold end.
type offsetCooling struct {
	base anneal.Cooling
	skip int
}

func (c offsetCooling) Name() string {
	return fmt.Sprintf("%s+%d", c.base.Name(), c.skip)
}
func (c offsetCooling) Temperature(stage int) float64 {
	return c.base.Temperature(stage + c.skip)
}
func (c offsetCooling) Stages() int { return c.base.Stages() - c.skip }

// scaledCooling scales a base schedule's temperatures by a constant
// factor — one rung of the parallel-tempering ladder.
type scaledCooling struct {
	base  anneal.Cooling
	scale float64
}

func (c scaledCooling) Name() string {
	return fmt.Sprintf("%s*%g", c.base.Name(), c.scale)
}
func (c scaledCooling) Temperature(stage int) float64 {
	return c.scale * c.base.Temperature(stage)
}
func (c scaledCooling) Stages() int { return c.base.Stages() }

// replicaTemp is the temperature replica r ran during the given stage.
func replicaTemp(base anneal.Cooling, r, stage int) float64 {
	t := base.Temperature(stage)
	if r > 0 {
		t *= math.Pow(temperRatio, float64(r))
	}
	return t
}

// annealCooperative is annealRestarts with a shared incumbent: every
// restart runs as an incremental anneal (anneal.Stepper) on its own
// worker goroutine, and all restarts synchronize after every temperature
// stage. At the barrier the coordinator — always this goroutine, always
// iterating in restart order — publishes the incumbent best cost,
// abandons restarts that have trailed it for AbandonAfter consecutive
// stages, and (in tempering mode) attempts Metropolis replica exchanges
// from a dedicated seed-derived RNG. Because no cross-restart decision
// ever depends on goroutine timing, the adopted schedule is byte-identical
// to a serial execution at any GOMAXPROCS; and because the incumbent
// holder is immune to abandonment, the winner is the same mapping a full
// independent race would adopt whenever it is found by barrier order —
// abandonment only prunes runs that are provably behind at the time.
func (s *Scheduler) annealCooperative(pk *packet, aopt anneal.Options, report *PacketReport) {
	restarts := s.opt.Restarts
	if len(s.runs) < restarts {
		s.runs = append(s.runs, make([]restartRun, restarts-len(s.runs))...)
	}
	// Seed derivation is identical to annealRestarts: per-restart seeds
	// drawn up front, in order, from the scheduler RNG. Tempering draws
	// one extra seed for the exchange RNG.
	for r := 0; r < restarts; r++ {
		s.runs[r].seed = s.rng.Int63()
	}
	abandonAfter := s.opt.AbandonAfter
	if abandonAfter == 0 {
		abandonAfter = defaultAbandonAfter
	}
	if s.opt.Tempering {
		// Every rung must stay live for exchanges to percolate good
		// states toward the cold end, so abandonment is disabled.
		abandonAfter = -1
		seed := s.rng.Int63()
		if s.exchRng == nil {
			s.exchRng = rand.New(rand.NewSource(seed))
		} else {
			s.exchRng.Seed(seed)
		}
	}
	if cap(s.coopDone) < restarts {
		// Capacity >= restarts: a worker can always post its barrier
		// token without blocking, even if the coordinator is behind.
		s.coopDone = make(chan struct{}, restarts)
	}

	// Per-restart setup mirrors annealRestarts; each restart additionally
	// gets a (pooled) Stepper so the run can pause at stage barriers.
	for r := 0; r < restarts; r++ {
		run := &s.runs[r]
		if run.rng == nil {
			run.rng = rand.New(rand.NewSource(run.seed))
		} else {
			run.rng.Seed(run.seed)
		}
		run.pk.cloneFrom(pk)
		if r > 0 {
			run.pk.clearMapping()
			s.initPacket(&run.pk, run.rng)
		}
		ropt := aopt
		ropt.RNG = run.rng
		if s.opt.Tempering && r > 0 {
			ropt.Cooling = scaledCooling{base: aopt.Cooling, scale: math.Pow(temperRatio, float64(r))}
		}
		run.trace = run.trace[:0]
		if s.opt.RecordTrace {
			rpk := &run.pk
			trace := &run.trace
			ropt.OnMove = func(mi anneal.MoveInfo) {
				*trace = append(*trace, TracePoint{
					Iter: mi.Move,
					Temp: mi.Temp,
					Fb:   rpk.Fb(),
					Fc:   rpk.Fc(),
					Ftot: rpk.Cost(),
				})
			}
		}
		if run.step == nil {
			run.step = new(anneal.Stepper)
		}
		run.err = run.step.Reset(&run.pk, ropt)
		run.stopped = run.err != nil
		run.stepOK = false
		run.lag = 0
		if run.start == nil {
			run.start = make(chan bool, 1)
		}
	}

	// One worker per restart; workers only ever run one stage per wake-up
	// and park at the barrier. All shared decisions stay on this
	// goroutine.
	for r := 0; r < restarts; r++ {
		go func(run *restartRun) {
			for <-run.start {
				run.stepOK = run.step.Step()
				s.coopDone <- struct{}{}
			}
		}(&s.runs[r])
	}

	for stage := 0; ; stage++ {
		launched := 0
		for r := 0; r < restarts; r++ {
			if !s.runs[r].stopped {
				s.runs[r].start <- true
				launched++
			}
		}
		if launched == 0 {
			break
		}
		for i := 0; i < launched; i++ {
			<-s.coopDone
		}
		for r := 0; r < restarts; r++ {
			run := &s.runs[r]
			if !run.stopped && !run.stepOK {
				run.stopped = true
			}
		}
		// Interrupt (the request context, threaded in by the solver) cuts
		// the anneal short; the best mapping so far is still adopted and
		// the simulator surfaces the cancellation itself. This is the one
		// wall-clock-dependent exit, and it only fires on runs whose
		// results are being discarded.
		if s.opt.Interrupt != nil && s.opt.Interrupt() != nil {
			break
		}
		// The portfolio's incumbent bound, polled at anneal granularity:
		// the epoch's simulation clock only advances, so once it exceeds
		// the incumbent best this run cannot win — stop annealing now
		// instead of finishing the packet and letting the simulator's next
		// event-batch poll abort the run. Same wall-clock caveat (and the
		// same discarded-runs-only guarantee) as Interrupt.
		if s.opt.Bound != nil && s.opt.Bound(s.epochTime) != nil {
			break
		}
		// The shared incumbent: lowest best cost over all restarts, ties
		// to the lowest index — the same rule that picks the final winner.
		inc := -1
		for r := 0; r < restarts; r++ {
			run := &s.runs[r]
			if run.err != nil {
				continue
			}
			if inc < 0 || run.step.BestCost() < s.runs[inc].step.BestCost() {
				inc = r
			}
		}
		if inc < 0 {
			break // every restart failed validation; nothing to anneal
		}
		if abandonAfter > 0 {
			incBest := s.runs[inc].step.BestCost()
			for r := 0; r < restarts; r++ {
				run := &s.runs[r]
				if run.stopped || run.err != nil || r == inc {
					continue
				}
				if run.step.BestCost() > incBest {
					run.lag++
				} else {
					run.lag = 0
				}
				if run.lag >= abandonAfter {
					run.step.Abandon()
					run.stopped = true
					s.abandoned++
					report.Abandoned++
				}
			}
		}
		if s.opt.Tempering {
			s.exchangeReplicas(aopt.Cooling, stage, restarts, report)
		}
	}
	// Park every worker permanently; stopped runs still have live workers
	// waiting on their start channel.
	for r := 0; r < restarts; r++ {
		s.runs[r].start <- false
	}

	best := -1
	for r := 0; r < restarts; r++ {
		run := &s.runs[r]
		if run.err != nil {
			continue
		}
		run.res = run.step.Result()
		report.Moves += run.res.Moves
		report.Accepted += run.res.Accepted
		report.Stages += run.res.Stages
		if best < 0 || run.res.FinalCost < s.runs[best].res.FinalCost {
			best = r
		}
	}
	if best < 0 {
		return // every restart failed: keep the current mapping
	}
	win := &s.runs[best]
	pk.adoptMapping(&win.pk)
	report.FinalCost = win.res.FinalCost
	report.PlateauStop = win.res.PlateauStop
	report.Restart = best
	if s.opt.RecordTrace {
		report.Trace = append(report.Trace[:0], win.trace...)
	}
}

// exchangeReplicas attempts the parallel-tempering swap between adjacent
// live replicas after a stage — even pairs on even stages, odd pairs on
// odd ones, so every rung couples with both neighbours over time. The
// Metropolis rule on the inverse-temperature gap keeps the joint ladder
// distribution invariant; the exchange RNG is seeded from the scheduler
// stream and consumed only here, in index order, so swap decisions are
// identical at any worker count.
func (s *Scheduler) exchangeReplicas(base anneal.Cooling, stage, restarts int, report *PacketReport) {
	for r := stage % 2; r+1 < restarts; r += 2 {
		a, b := &s.runs[r], &s.runs[r+1]
		if a.stopped || b.stopped || a.err != nil || b.err != nil {
			continue
		}
		ta := replicaTemp(base, r, stage)
		tb := replicaTemp(base, r+1, stage)
		if ta <= 0 || tb <= 0 {
			continue
		}
		// Accept with prob min(1, exp((1/Ta - 1/Tb) * (Ea - Eb))): a
		// better state always moves to the colder rung.
		d := (1/ta - 1/tb) * (a.step.Cost() - b.step.Cost())
		if d < 0 && s.exchRng.Float64() >= math.Exp(d) {
			continue
		}
		a.pk.swapCurrent(&b.pk)
		ca, cb := a.step.Cost(), b.step.Cost()
		a.step.SetCost(cb)
		b.step.SetCost(ca)
		s.exchanges++
		report.Exchanges++
	}
}

// fillAnnealDefaults completes the annealing options with packet-scaled
// values: the number of elementary moves per temperature grows with the
// mapping's neighborhood size.
func (s *Scheduler) fillAnnealDefaults(numTasks, numProcs int) anneal.Options {
	aopt := s.opt.Anneal
	if aopt.Cooling == nil {
		aopt.Cooling = anneal.Geometric{T0: 1, Alpha: 0.9, NumStages: 60}
	}
	if aopt.MovesPerStage <= 0 {
		moves := 2 * numTasks * numProcs
		if moves < 20 {
			moves = 20
		}
		if moves > 400 {
			moves = 400
		}
		aopt.MovesPerStage = moves
	}
	if aopt.PlateauStages == 0 {
		aopt.PlateauStages = 5
	}
	if aopt.MaxMoves == 0 {
		aopt.MaxMoves = 20000
	}
	return aopt
}

// AvgCandidates returns the mean number of ready candidates per packet
// (the paper reports ≈15 for Newton-Euler).
func (s *Scheduler) AvgCandidates() float64 {
	if len(s.packets) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.packets {
		sum += float64(p.Candidates)
	}
	return sum / float64(len(s.packets))
}

// AvgIdle returns the mean number of free processors per packet (the
// paper reports ≈1.46 for Newton-Euler).
func (s *Scheduler) AvgIdle() float64 {
	if len(s.packets) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.packets {
		sum += float64(p.Idle)
	}
	return sum / float64(len(s.packets))
}
