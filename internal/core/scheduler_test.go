package core

import (
	"math"
	"testing"

	"repro/internal/anneal"
	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Wb: -0.1, Wc: 1.1},
		{Wb: 0.5, Wc: 0.6},
		{Wb: 0.2, Wc: 0.2},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}
	ok := Options{Wb: 0.3, Wc: 0.7}
	if err := ok.Validate(); err != nil {
		t.Errorf("wb=0.3/wc=0.7 rejected: %v", err)
	}
}

func TestNewSchedulerErrors(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	topo, _ := topology.Hypercube(1)
	if _, err := NewScheduler(g, nil, topology.DefaultCommParams(), DefaultOptions()); err == nil {
		t.Error("nil topology accepted")
	}
	badOpt := DefaultOptions()
	badOpt.Wb, badOpt.Wc = 1, 1
	if _, err := NewScheduler(g, topo, topology.DefaultCommParams(), badOpt); err == nil {
		t.Error("bad weights accepted")
	}
	cyc := taskgraph.New("cyc")
	a := cyc.AddTask("a", 1)
	b := cyc.AddTask("b", 1)
	cyc.MustAddEdge(a, b, 0)
	cyc.MustAddEdge(b, a, 0)
	if _, err := NewScheduler(cyc, topo, topology.DefaultCommParams(), DefaultOptions()); err == nil {
		t.Error("cyclic graph accepted")
	}
}

// runSA is a helper running a full simulation with the SA policy.
func runSA(t *testing.T, g *taskgraph.Graph, topo *topology.Topology,
	comm topology.CommParams, opt Options) (*machsim.Result, *Scheduler) {
	t.Helper()
	sched, err := NewScheduler(g, topo, comm, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, sched, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, sched
}

func TestSchedulerCompletesForkJoin(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 6, 10, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.Hypercube(2)
	opt := DefaultOptions()
	opt.Seed = 5
	res, sched := runSA(t, g, topo, topology.DefaultCommParams(), opt)
	if res.Forced != 0 {
		t.Errorf("forced assignments: %d", res.Forced)
	}
	if res.Makespan <= 0 {
		t.Error("no makespan")
	}
	if len(sched.Packets()) == 0 {
		t.Error("no packets recorded")
	}
	for _, p := range sched.Packets() {
		if p.Assigned == 0 {
			t.Errorf("packet at %g assigned nothing", p.Time)
		}
		if p.Assigned > p.Idle {
			t.Errorf("packet overassigned: %+v", p)
		}
	}
}

func TestSchedulerDeterministicBySeed(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 8, 10, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.Ring(5)
	run := func() float64 {
		opt := DefaultOptions()
		opt.Seed = 77
		res, _ := runSA(t, g, topo, topology.DefaultCommParams(), opt)
		return res.Makespan
	}
	if run() != run() {
		t.Error("same seed produced different makespans")
	}
}

func TestSchedulerSeedChangesSchedule(t *testing.T) {
	// Different seeds should usually explore different mappings; at
	// minimum they must both be valid. We only check both complete.
	g, err := taskgraph.ForkJoin("fj", 8, 10, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.Ring(5)
	for _, seed := range []int64{1, 2} {
		opt := DefaultOptions()
		opt.Seed = seed
		res, _ := runSA(t, g, topo, topology.DefaultCommParams(), opt)
		if res.Makespan <= 0 {
			t.Fatalf("seed %d: bad makespan", seed)
		}
	}
}

func TestSchedulerPrefersLocalPlacement(t *testing.T) {
	// A chain with heavy edges: annealing with communication enabled must
	// keep the chain on one processor (zero messages), because any remote
	// placement costs eq.-4 communication.
	g, err := taskgraph.Chain("chain", 6, 10, 4000)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.Ring(4)
	opt := DefaultOptions()
	opt.Seed = 3
	res, _ := runSA(t, g, topo, topology.DefaultCommParams(), opt)
	if res.Messages != 0 {
		t.Errorf("chain scheduling produced %d messages, want 0", res.Messages)
	}
	if math.Abs(res.Makespan-60) > 1e-9 {
		t.Errorf("chain makespan = %g, want 60", res.Makespan)
	}
}

func TestSchedulerSelectsHighLevelFirstWithoutComm(t *testing.T) {
	// Without communication the cost reduces to the balance term: the
	// annealing selection must favor high-level (critical) tasks, giving
	// the same makespan as HLF on a two-chain workload with one processor
	// short.
	g := taskgraph.New("twochain")
	// Long chain: 3 tasks of 10; short tasks: two independent of 1.
	c1 := g.AddTask("c1", 10)
	c2 := g.AddTask("c2", 10)
	c3 := g.AddTask("c3", 10)
	g.MustAddEdge(c1, c2, 40)
	g.MustAddEdge(c2, c3, 40)
	g.AddTask("s1", 1)
	g.AddTask("s2", 1)
	topo, _ := topology.ChainTopo(2)
	opt := DefaultOptions()
	opt.Seed = 9
	res, _ := runSA(t, g, topo, topology.DefaultCommParams().NoComm(), opt)
	// Optimal: chain on one processor (30), shorts fill the other.
	if math.Abs(res.Makespan-30) > 1e-9 {
		t.Errorf("makespan = %g, want 30", res.Makespan)
	}
}

func TestSchedulerTraceRecording(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 10, 5, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.Hypercube(2)
	opt := DefaultOptions()
	opt.Seed = 11
	opt.RecordTrace = true
	_, sched := runSA(t, g, topo, topology.DefaultCommParams(), opt)
	foundTrace := false
	for _, p := range sched.Packets() {
		if len(p.Trace) > 0 {
			foundTrace = true
			if p.Trace[0].Iter != 0 {
				t.Errorf("trace starts at iter %d", p.Trace[0].Iter)
			}
			for i := 1; i < len(p.Trace); i++ {
				if p.Trace[i].Iter != p.Trace[i-1].Iter+1 {
					t.Errorf("trace iters not consecutive at %d", i)
					break
				}
				if p.Trace[i].Temp > p.Trace[i-1].Temp+1e-12 {
					t.Errorf("temperature increased at %d", i)
					break
				}
			}
			// Ftot must equal the weighted normalized combination of the
			// recorded run (non-increasing check is too strong: SA climbs).
			last := p.Trace[len(p.Trace)-1]
			if math.IsNaN(last.Ftot) || math.IsInf(last.Ftot, 0) {
				t.Error("non-finite trace cost")
			}
		}
	}
	if !foundTrace {
		t.Error("no packet recorded a trace")
	}
	if sched.AvgCandidates() <= 0 || sched.AvgIdle() <= 0 {
		t.Error("packet averages empty")
	}
}

func TestSchedulerGreedyInit(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 6, 10, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.Hypercube(2)
	opt := DefaultOptions()
	opt.Seed = 13
	opt.GreedyInit = true
	res, _ := runSA(t, g, topo, topology.DefaultCommParams(), opt)
	if res.Makespan <= 0 || res.Forced != 0 {
		t.Errorf("greedy init run failed: %+v", res)
	}
}

func TestSchedulerCustomAnnealOptions(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 6, 10, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.Hypercube(2)
	opt := DefaultOptions()
	opt.Seed = 17
	opt.Anneal = anneal.Options{
		Cooling:       anneal.Linear{T0: 0.5, NumStages: 10},
		MovesPerStage: 15,
		PlateauStages: 3,
		MaxMoves:      1000,
	}
	res, sched := runSA(t, g, topo, topology.DefaultCommParams(), opt)
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	for _, p := range sched.Packets() {
		if p.Moves > 1000 {
			t.Errorf("packet exceeded move cap: %d", p.Moves)
		}
		if p.Stages > 10 {
			t.Errorf("packet exceeded stages: %d", p.Stages)
		}
	}
}

func TestFillAnnealDefaultsScalesWithPacket(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", 1)
	topo, _ := topology.Hypercube(1)
	sched, err := NewScheduler(g, topo, topology.DefaultCommParams(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	small := sched.fillAnnealDefaults(1, 1)
	if small.MovesPerStage < 20 {
		t.Errorf("small packet moves = %d, want >= 20", small.MovesPerStage)
	}
	big := sched.fillAnnealDefaults(50, 8)
	if big.MovesPerStage != 400 {
		t.Errorf("big packet moves = %d, want capped at 400", big.MovesPerStage)
	}
	if big.Cooling == nil || big.PlateauStages != 5 {
		t.Errorf("defaults not filled: %+v", big)
	}
}

func TestSchedulerRestartsImproveOrMatch(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 10, 10, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.Ring(5)
	comm := topology.DefaultCommParams()
	run := func(restarts int) (*machsim.Result, *Scheduler) {
		opt := DefaultOptions()
		opt.Seed = 31
		opt.Restarts = restarts
		return runSA(t, g, topo, comm, opt)
	}
	single, _ := run(1)
	multi, sched := run(4)
	if multi.Makespan <= 0 || single.Makespan <= 0 {
		t.Fatal("bad makespans")
	}
	// Restarts multiply the per-packet move counts (1×1 packets have no
	// legal moves at all and stay at zero).
	for _, p := range sched.Packets() {
		if p.Candidates*p.Idle > 1 && p.Moves == 0 {
			t.Errorf("packet at %g (%dx%d) annealed zero moves", p.Time, p.Candidates, p.Idle)
		}
	}
}

func TestSchedulerRestartsKeepBestMapping(t *testing.T) {
	// With restarts, every packet's final cost must be the minimum over
	// its runs; verify the reported final cost is achievable by the
	// returned mapping (cost consistency is checked inside the packet
	// tests; here we just require no degradation vs a single run on a
	// deterministic workload).
	g, err := taskgraph.Chain("chain", 5, 10, 4000)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := topology.ChainTopo(3)
	opt := DefaultOptions()
	opt.Seed = 3
	opt.Restarts = 3
	res, _ := runSA(t, g, topo, topology.DefaultCommParams(), opt)
	if res.Messages != 0 {
		t.Errorf("restarted SA broke chain locality: %d messages", res.Messages)
	}
}
