package core

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func coopFixture(t *testing.T) (*taskgraph.Graph, *topology.Topology, topology.CommParams) {
	t.Helper()
	g, err := taskgraph.ForkJoin("fj", 14, 12, 1, 900)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	return g, topo, topology.DefaultCommParams()
}

func coopRun(t *testing.T, g *taskgraph.Graph, topo *topology.Topology, comm topology.CommParams, opt Options) (*machsim.Result, *Scheduler) {
	t.Helper()
	sched, err := NewScheduler(g, topo, comm, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machsim.Run(machsim.Model{Graph: g, Topo: topo, Comm: comm}, sched, machsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, sched
}

func sameSchedule(t *testing.T, tag string, a, b *machsim.Result) {
	t.Helper()
	if a.Makespan != b.Makespan {
		t.Fatalf("%s: makespans differ: %g vs %g", tag, a.Makespan, b.Makespan)
	}
	for i := range a.Proc {
		if a.Proc[i] != b.Proc[i] {
			t.Fatalf("%s: task %d placed on %d vs %d", tag, i, a.Proc[i], b.Proc[i])
		}
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] || a.Finish[i] != b.Finish[i] {
			t.Fatalf("%s: task %d timing differs", tag, i)
		}
	}
}

// With abandonment disabled, cooperative mode is the plain restart race
// run at a stage barrier: identical seed derivation, and anneal.Stepper
// is move-for-move equivalent to anneal.Minimize — so the schedules must
// be byte-identical. This pins that the barrier machinery itself never
// perturbs the search.
func TestCooperativeEquivalentToRestartsWhenAbandonDisabled(t *testing.T) {
	g, topo, comm := coopFixture(t)
	base := DefaultOptions()
	base.Seed = 61
	base.Restarts = 4

	plain, _ := coopRun(t, g, topo, comm, base)

	coop := base
	coop.Cooperative = true
	coop.AbandonAfter = -1
	got, sched := coopRun(t, g, topo, comm, coop)

	sameSchedule(t, "coop vs restarts", plain, got)
	if n := sched.RestartsAbandoned(); n != 0 {
		t.Errorf("AbandonAfter<0 abandoned %d restarts, want 0", n)
	}
	if name := sched.Name(); name != "SA(coop r=4)" {
		t.Errorf("Name() = %q", name)
	}
}

// Cooperative schedules must be byte-identical at any parallelism: every
// cross-restart decision happens at a seed-deterministic barrier in
// restart order, never by wall clock.
func TestCooperativeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g, topo, comm := coopFixture(t)
	opt := DefaultOptions()
	opt.Seed = 7
	opt.Restarts = 6
	opt.Cooperative = true

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	var ref *machsim.Result
	var refAbandoned int
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		res, sched := coopRun(t, g, topo, comm, opt)
		if ref == nil {
			ref, refAbandoned = res, sched.RestartsAbandoned()
			continue
		}
		sameSchedule(t, "gomaxprocs", ref, res)
		if n := sched.RestartsAbandoned(); n != refAbandoned {
			t.Fatalf("GOMAXPROCS=%d abandoned %d restarts, reference %d", procs, n, refAbandoned)
		}
	}
}

// On a real workload with several restarts, the incumbent rule must
// actually fire — dominated restarts get abandoned — while the schedule
// stays valid and packet-level counters agree with the scheduler totals.
func TestCooperativeAbandonsDominatedRestarts(t *testing.T) {
	// A heterogeneous layered DAG: restarts land in genuinely different
	// local minima, so dominated ones exist for the incumbent rule to cut.
	g, err := taskgraph.Layered("layered", taskgraph.LayeredConfig{
		Layers: 6, MinWidth: 6, MaxWidth: 12,
		MinLoad: 5, MaxLoad: 80, MinBits: 100, MaxBits: 4000,
		EdgeProb: 0.35,
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	opt := DefaultOptions()
	opt.Seed = 3
	opt.Restarts = 8
	opt.Cooperative = true
	opt.AbandonAfter = 2

	res, sched := coopRun(t, g, topo, comm, opt)
	if res.Makespan <= 0 {
		t.Fatalf("makespan %g", res.Makespan)
	}
	if sched.RestartsAbandoned() == 0 {
		t.Error("no restarts abandoned on a multi-packet run with patience 2")
	}
	sum := 0
	for _, p := range sched.Packets() {
		sum += p.Abandoned
		if p.Exchanges != 0 {
			t.Errorf("packet at %g: %d exchanges outside tempering mode", p.Time, p.Exchanges)
		}
	}
	if sum != sched.RestartsAbandoned() {
		t.Errorf("packet Abandoned sum %d != scheduler total %d", sum, sched.RestartsAbandoned())
	}

	// An abandoned restart does less work: total stages must come in
	// under the no-abandonment run's.
	full := opt
	full.AbandonAfter = -1
	_, fsched := coopRun(t, g, topo, comm, full)
	stages := func(s *Scheduler) int {
		n := 0
		for _, p := range s.Packets() {
			n += p.Stages
		}
		return n
	}
	if sa, sf := stages(sched), stages(fsched); sa >= sf {
		t.Errorf("abandonment did not save work: %d stages with patience 2 vs %d without", sa, sf)
	}
}

// Tempering: deterministic across runs and worker counts, with replica
// exchanges actually occurring, and no abandonment (the ladder must stay
// fully populated).
func TestTemperingDeterministicWithExchanges(t *testing.T) {
	g, topo, comm := coopFixture(t)
	opt := DefaultOptions()
	opt.Seed = 19
	opt.Restarts = 4
	opt.Tempering = true

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	var ref *machsim.Result
	var refExch int
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		res, sched := coopRun(t, g, topo, comm, opt)
		if sched.RestartsAbandoned() != 0 {
			t.Fatalf("tempering abandoned %d restarts, want 0", sched.RestartsAbandoned())
		}
		if ref == nil {
			ref, refExch = res, sched.Exchanges()
			if refExch == 0 {
				t.Error("no replica exchanges accepted over a full run")
			}
			if name := sched.Name(); name != "SA(pt r=4)" {
				t.Errorf("Name() = %q", name)
			}
			sum := 0
			for _, p := range sched.Packets() {
				sum += p.Exchanges
			}
			if sum != refExch {
				t.Errorf("packet Exchanges sum %d != scheduler total %d", sum, refExch)
			}
			continue
		}
		sameSchedule(t, "tempering", ref, res)
		if n := sched.Exchanges(); n != refExch {
			t.Fatalf("GOMAXPROCS=%d accepted %d exchanges, reference %d", procs, n, refExch)
		}
	}
}

// Interrupt ends the anneal at the next barrier but still adopts the best
// mapping seen, so the scheduler completes with a valid schedule.
func TestCooperativeInterruptStopsEarlyButCompletes(t *testing.T) {
	g, topo, comm := coopFixture(t)
	opt := DefaultOptions()
	opt.Seed = 5
	opt.Restarts = 4
	opt.Cooperative = true
	barriers := 0
	opt.Interrupt = func() error {
		barriers++
		if barriers > 3 {
			return errors.New("cancelled")
		}
		return nil
	}

	res, sched := coopRun(t, g, topo, comm, opt)
	if res.Makespan <= 0 {
		t.Fatalf("makespan %g", res.Makespan)
	}
	for i, p := range res.Proc {
		if p < 0 || p >= topo.N() {
			t.Fatalf("task %d on invalid processor %d", i, p)
		}
	}
	// Each packet can run at most 3 full barriers before the interrupt
	// fires, so per-packet stages are bounded by 4 per restart.
	for _, p := range sched.Packets() {
		if p.Stages > 4*opt.Restarts {
			t.Errorf("packet at %g ran %d stages despite interrupt", p.Time, p.Stages)
		}
	}
}
