package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/anneal"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func TestWarmSkipStages(t *testing.T) {
	cases := []struct {
		stages int
		dist   float64
		want   int
	}{
		{60, 0, 54},   // full 90% skip, 6-stage tail remains
		{60, 1, 0},    // maximal distance: no skip
		{60, 0.5, 27}, // linear in (1 - distance)
		{8, 0, 2},     // clamp: warmMinStages must remain
		{4, 0, 0},     // schedule shorter than the tail: no skip
		{60, -3, 54},  // distance clamps into [0, 1]
		{60, 2.5, 0},  // ditto above 1
		{0, 0, 0},     // degenerate schedule
	}
	for _, c := range cases {
		if got := warmSkipStages(c.stages, c.dist); got != c.want {
			t.Errorf("warmSkipStages(%d, %g) = %d, want %d", c.stages, c.dist, got, c.want)
		}
	}
}

func TestOffsetCooling(t *testing.T) {
	base := anneal.Linear{T0: 1, NumStages: 10}
	oc := offsetCooling{base: base, skip: 4}
	if oc.Stages() != 6 {
		t.Errorf("Stages() = %d, want 6", oc.Stages())
	}
	for k := 0; k < oc.Stages(); k++ {
		if got, want := oc.Temperature(k), base.Temperature(k+4); got != want {
			t.Errorf("Temperature(%d) = %g, want base(%d) = %g", k, got, k+4, want)
		}
	}
	prev := oc.Temperature(0)
	for k := 1; k < oc.Stages(); k++ {
		if oc.Temperature(k) > prev {
			t.Errorf("offset schedule increased at stage %d", k)
		}
		prev = oc.Temperature(k)
	}
}

// TestWarmKeepBestPerturbed is the warm-start contract test: across 100
// randomly perturbed graphs, a warm solve seeded from the base graph's
// cold assignment must never end a packet above its seeded initial cost
// (the annealer's keep-best snapshot), and must actually skip cooling
// stages.
func TestWarmKeepBestPerturbed(t *testing.T) {
	topo, err := topology.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		g, err := taskgraph.GnpDAG(fmt.Sprintf("g%d", i), 24, 0.12, 1, 10, 10, 200, rng)
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Seed = int64(i)
		res, _ := runSA(t, g, topo, comm, opt)

		// Perturb one task's load and re-solve warm from the cold mapping.
		pg := g.Clone()
		victim := taskgraph.TaskID(i % pg.NumTasks())
		pg.SetLoad(victim, pg.Load(victim)*1.5+1)
		wopt := DefaultOptions()
		wopt.Seed = int64(i)
		wopt.Warm = &WarmStart{
			Assignment: taskgraph.ProjectAssignment(res.Proc, pg.NumTasks(), topo.N()),
			Distance:   0.05,
		}
		wres, wsched := runSA(t, pg, topo, comm, wopt)
		if wres.Makespan <= 0 || wres.Forced != 0 {
			t.Fatalf("graph %d: warm run invalid: %+v", i, wres)
		}
		for _, p := range wsched.Packets() {
			if p.FinalCost > p.InitialCost+1e-9 {
				t.Errorf("graph %d: packet at %g ended above its seed: %g > %g",
					i, p.Time, p.FinalCost, p.InitialCost)
			}
		}
		if wsched.WarmSavedStages() == 0 {
			t.Errorf("graph %d: warm run skipped no cooling stages", i)
		}
	}
}

// TestWarmDeterministic: a warm solve is byte-deterministic for a fixed
// (seed, warm assignment) pair — same mapping, same makespan, same packet
// reports — including under concurrent cooperative restarts.
func TestWarmDeterministic(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 12, 10, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()

	cold := DefaultOptions()
	cold.Seed = 7
	res, _ := runSA(t, g, topo, comm, cold)
	seed := taskgraph.ProjectAssignment(res.Proc, g.NumTasks(), topo.N())

	for _, restarts := range []int{1, 3} {
		warm := DefaultOptions()
		warm.Seed = 7
		warm.Restarts = restarts
		warm.Cooperative = restarts > 1
		warm.Warm = &WarmStart{Assignment: seed, Distance: 0.1}
		a, _ := runSA(t, g, topo, comm, warm)
		b, _ := runSA(t, g, topo, comm, warm)
		if a.Makespan != b.Makespan {
			t.Errorf("restarts=%d: warm makespan not deterministic: %g vs %g",
				restarts, a.Makespan, b.Makespan)
		}
		for task := range a.Proc {
			if a.Proc[task] != b.Proc[task] {
				t.Errorf("restarts=%d: task %d placed on %d then %d",
					restarts, task, a.Proc[task], b.Proc[task])
				break
			}
		}
	}
}

// TestWarmIgnoredWhenAssignmentShort: a warm seed that does not cover the
// whole graph is ignored (the run behaves exactly cold) rather than
// half-applied.
func TestWarmIgnoredWhenAssignmentShort(t *testing.T) {
	g, err := taskgraph.ForkJoin("fj", 8, 10, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Ring(3)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	cold := DefaultOptions()
	cold.Seed = 5
	cres, _ := runSA(t, g, topo, comm, cold)

	short := DefaultOptions()
	short.Seed = 5
	short.Warm = &WarmStart{Assignment: make([]int, g.NumTasks()-1), Distance: 0}
	sres, sched := runSA(t, g, topo, comm, short)
	if sres.Makespan != cres.Makespan {
		t.Errorf("short warm seed changed the solve: %g vs cold %g",
			sres.Makespan, cres.Makespan)
	}
	if sched.WarmSavedStages() != 0 {
		t.Errorf("short warm seed skipped %d stages, want 0", sched.WarmSavedStages())
	}
}

// TestWarmEpochsSavedRatio pins the headline perf claim: a one-task edit
// to a solved 100-task graph, re-solved warm from the cached assignment,
// runs at least 5x fewer annealing stages than the cold solve of the
// same edited graph.
func TestWarmEpochsSavedRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := taskgraph.GnpDAG("big", 100, 0.06, 1, 10, 10, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()

	base := DefaultOptions()
	base.Seed = 11
	bres, _ := runSA(t, g, topo, comm, base)

	edited := g.Clone()
	edited.SetLoad(0, edited.Load(0)+5)

	cold := DefaultOptions()
	cold.Seed = 11
	_, csched := runSA(t, edited, topo, comm, cold)

	warm := DefaultOptions()
	warm.Seed = 11
	warm.Warm = &WarmStart{
		Assignment: taskgraph.ProjectAssignment(bres.Proc, edited.NumTasks(), topo.N()),
		Distance:   0.02,
	}
	_, wsched := runSA(t, edited, topo, comm, warm)

	coldStages, warmStages := 0, 0
	for _, p := range csched.Packets() {
		coldStages += p.Stages
	}
	for _, p := range wsched.Packets() {
		warmStages += p.Stages
	}
	if warmStages == 0 || coldStages == 0 {
		t.Fatalf("no annealing stages recorded: cold=%d warm=%d", coldStages, warmStages)
	}
	if coldStages < 5*warmStages {
		t.Errorf("warm ran %d stages vs cold %d: less than the 5x saving floor",
			warmStages, coldStages)
	}
	if saved := wsched.WarmSavedStages(); saved == 0 {
		t.Error("warm run reported zero stages saved")
	}
}
