package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// packetFixture builds a 3-candidate, 2-processor packet on a 3-processor
// chain. Tasks x (level 10), y (level 6), z (level 2); x's predecessor ran
// on P0, y's on P2, z has no predecessor. Idle processors: P0 and P1.
func packetFixture(t *testing.T, wb, wc float64) (*packet, *taskgraph.Graph) {
	t.Helper()
	g := taskgraph.New("fix")
	px := g.AddTask("px", 1) // finished predecessors
	py := g.AddTask("py", 1)
	x := g.AddTask("x", 10)
	y := g.AddTask("y", 6)
	z := g.AddTask("z", 2)
	g.MustAddEdge(px, x, 40)
	g.MustAddEdge(py, y, 80)

	topo, err := topology.ChainTopo(3)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	locate := func(id taskgraph.TaskID) int {
		switch id {
		case px:
			return 0
		case py:
			return 2
		default:
			return -1
		}
	}
	pk := newPacket([]taskgraph.TaskID{x, y, z}, []int{0, 1}, locate, levels,
		topo, topology.DefaultCommParams(), g, wb, wc)
	return pk, g
}

func TestPacketCommCostTable(t *testing.T) {
	pk, _ := packetFixture(t, 0.5, 0.5)
	// Candidate 0 = x, predecessor on P0.
	// On slot 0 (P0): same proc, cost 0.
	// On slot 1 (P1): d=1, w=4 => 4+7 = 11.
	if pk.comm(0, 0) != 0 {
		t.Errorf("x on P0 cost = %g, want 0", pk.comm(0, 0))
	}
	if math.Abs(pk.comm(0, 1)-11) > 1e-12 {
		t.Errorf("x on P1 cost = %g, want 11", pk.comm(0, 1))
	}
	// Candidate 1 = y, predecessor on P2 (w = 8).
	// On P0: d=2 => 2*8 + τ + σ = 16+9+7 = 32. On P1: d=1 => 8+7 = 15.
	if math.Abs(pk.comm(1, 0)-32) > 1e-12 {
		t.Errorf("y on P0 cost = %g, want 32", pk.comm(1, 0))
	}
	if math.Abs(pk.comm(1, 1)-15) > 1e-12 {
		t.Errorf("y on P1 cost = %g, want 15", pk.comm(1, 1))
	}
	// Candidate 2 = z: no predecessors, zero comm everywhere.
	if pk.comm(2, 0) != 0 || pk.comm(2, 1) != 0 {
		t.Errorf("z costs = %v, want zeros", pk.commCost[2*pk.np:])
	}
}

func TestPacketNormalizationRanges(t *testing.T) {
	pk, _ := packetFixture(t, 0.5, 0.5)
	// Levels of candidates: x=10, y=6, z=2. N_idle = 2.
	// Max = 10+6 = 16, Min = 2+6 = 8 => ΔFb = (16-8)/2 = 4.
	if math.Abs(pk.dFb-4) > 1e-12 {
		t.Errorf("ΔFb = %g, want 4", pk.dFb)
	}
	// Worst per-candidate comm: x=11, y=32, z=0; top-2 sum = 43.
	if math.Abs(pk.dFc-43) > 1e-12 {
		t.Errorf("ΔFc = %g, want 43", pk.dFc)
	}
}

func TestPacketCostTracksPlacements(t *testing.T) {
	pk, _ := packetFixture(t, 0.5, 0.5)
	if pk.Cost() != 0 || pk.Fb() != 0 || pk.Fc() != 0 {
		t.Fatalf("empty mapping cost = %g", pk.Cost())
	}
	pk.place(0, 0) // x on P0: level 10, comm 0
	pk.place(1, 1) // y on P1: level 6, comm 15
	if math.Abs(pk.Fb()-(-16)) > 1e-12 {
		t.Errorf("Fb = %g, want -16", pk.Fb())
	}
	if math.Abs(pk.Fc()-15) > 1e-12 {
		t.Errorf("Fc = %g, want 15", pk.Fc())
	}
	want := 0.5*(-16)/4 + 0.5*15/43
	if math.Abs(pk.Cost()-want) > 1e-12 {
		t.Errorf("Cost = %g, want %g", pk.Cost(), want)
	}
	pk.remove(1)
	if math.Abs(pk.Fb()-(-10)) > 1e-12 || pk.Fc() != 0 {
		t.Errorf("after remove: Fb=%g Fc=%g", pk.Fb(), pk.Fc())
	}
}

func TestPacketGreedyInitPicksHighestLevels(t *testing.T) {
	pk, _ := packetFixture(t, 0.5, 0.5)
	pk.initGreedy()
	// Slots take candidates in level order: x (10) then y (6).
	if pk.taskAt[0] != 0 || pk.taskAt[1] != 1 {
		t.Errorf("greedy mapping = %v", pk.taskAt)
	}
	if pk.procOf[2] != -1 {
		t.Error("z selected by greedy init")
	}
}

func TestPacketInitRandomFillsAllSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		pk, _ := packetFixture(t, 0.5, 0.5)
		pk.initRandom(rng)
		placed := 0
		for _, i := range pk.taskAt {
			if i >= 0 {
				placed++
			}
		}
		if placed != 2 {
			t.Fatalf("random init placed %d, want 2", placed)
		}
	}
}

// Property: Propose's reported delta always equals the recomputed cost
// difference, and undo restores the exact previous state.
func TestPropertyProposeDeltaConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pk, _ := packetFixture(t, 0.4, 0.6)
	pk.initRandom(rng)
	for move := 0; move < 500; move++ {
		before := pk.Cost()
		beforeTaskAt := append([]int(nil), pk.taskAt...)
		beforeProcOf := append([]int(nil), pk.procOf...)
		delta, ok := pk.Propose(rng)
		if !ok {
			t.Fatal("no move possible")
		}
		after := pk.Cost()
		if math.Abs((after-before)-delta) > 1e-9 {
			t.Fatalf("move %d: delta %g, recomputed %g", move, delta, after-before)
		}
		if move%2 == 0 {
			pk.Undo()
			if math.Abs(pk.Cost()-before) > 1e-9 {
				t.Fatalf("move %d: undo left cost %g, want %g", move, pk.Cost(), before)
			}
			for i, v := range beforeTaskAt {
				if pk.taskAt[i] != v {
					t.Fatalf("move %d: undo corrupted taskAt", move)
				}
			}
			for i, v := range beforeProcOf {
				if pk.procOf[i] != v {
					t.Fatalf("move %d: undo corrupted procOf", move)
				}
			}
		}
	}
}

// Property: the mapping invariants hold under any move sequence: procOf
// and taskAt stay mutually consistent and the number of placed tasks never
// changes after the initial fill.
func TestPropertyMappingInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pk, _ := packetFixture(t, 0.5, 0.5)
	pk.initRandom(rng)
	countPlaced := func() int {
		n := 0
		for i, j := range pk.procOf {
			if j >= 0 {
				if pk.taskAt[j] != i {
					t.Fatalf("inconsistent mapping: procOf[%d]=%d but taskAt=%v", i, j, pk.taskAt)
				}
				n++
			}
		}
		return n
	}
	want := countPlaced()
	for move := 0; move < 400; move++ {
		_, ok := pk.Propose(rng)
		if !ok {
			t.Fatal("no move")
		}
		if move%3 == 0 {
			pk.Undo()
		}
		if got := countPlaced(); got != want {
			t.Fatalf("move %d: placed count changed %d -> %d", move, want, got)
		}
	}
}

func TestPacketSaveRestoreBest(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	pk, _ := packetFixture(t, 0.5, 0.5)
	pk.initGreedy()
	pk.SaveBest()
	costBefore := pk.Cost()
	for i := 0; i < 50; i++ {
		pk.Propose(rng)
	}
	pk.RestoreBest()
	if math.Abs(pk.Cost()-costBefore) > 1e-12 {
		t.Errorf("restore: cost %g, want %g", pk.Cost(), costBefore)
	}
	if pk.taskAt[0] != 0 || pk.taskAt[1] != 1 {
		t.Errorf("restore: mapping %v", pk.taskAt)
	}
}

func TestPacketAssignments(t *testing.T) {
	pk, _ := packetFixture(t, 0.5, 0.5)
	pk.place(0, 0)
	pk.place(2, 1)
	as := pk.assignments()
	if len(as) != 2 {
		t.Fatalf("assignments = %v", as)
	}
	// Slot 0 is processor 0, slot 1 is processor 1; candidates 0 and 2 are
	// tasks x (ID 2) and z (ID 4) of the fixture graph.
	if as[0].Proc != 0 || as[0].Task != 2 {
		t.Errorf("assignment 0 = %+v", as[0])
	}
	if as[1].Proc != 1 || as[1].Task != 4 {
		t.Errorf("assignment 1 = %+v", as[1])
	}
}

func TestPacketSingleTaskSingleProcHasNoMoves(t *testing.T) {
	g := taskgraph.New("tiny")
	a := g.AddTask("a", 1)
	levels, _ := g.Levels()
	topo, _ := topology.ChainTopo(2)
	pk := newPacket([]taskgraph.TaskID{a}, []int{0}, func(taskgraph.TaskID) int { return -1 },
		levels, topo, topology.DefaultCommParams(), g, 0.5, 0.5)
	pk.initGreedy()
	if _, ok := pk.Propose(rand.New(rand.NewSource(1))); ok {
		t.Error("move proposed on a 1x1 packet")
	}
}

func TestPacketSingleProcMovesSwapTasks(t *testing.T) {
	// Two candidates, one slot: every move must exchange the incumbent.
	g := taskgraph.New("duo")
	a := g.AddTask("a", 5)
	b := g.AddTask("b", 3)
	levels, _ := g.Levels()
	topo, _ := topology.ChainTopo(2)
	pk := newPacket([]taskgraph.TaskID{a, b}, []int{0}, func(taskgraph.TaskID) int { return -1 },
		levels, topo, topology.DefaultCommParams(), g, 1, 0)
	pk.initGreedy() // a (level 5) on the slot
	rng := rand.New(rand.NewSource(35))
	for i := 0; i < 20; i++ {
		_, ok := pk.Propose(rng)
		if !ok {
			t.Fatal("no move")
		}
		if pk.taskAt[0] == -1 {
			t.Fatal("slot emptied by a move")
		}
		pk.Undo()
		if pk.taskAt[0] != 0 {
			t.Fatal("undo lost incumbent")
		}
	}
}

func TestPacketDegenerateRangesGuarded(t *testing.T) {
	// All candidates have equal levels and no communication: both ranges
	// degenerate and must be guarded to 1.
	g := taskgraph.New("flat")
	a := g.AddTask("a", 4)
	b := g.AddTask("b", 4)
	levels, _ := g.Levels()
	topo, _ := topology.ChainTopo(2)
	pk := newPacket([]taskgraph.TaskID{a, b}, []int{0, 1}, func(taskgraph.TaskID) int { return -1 },
		levels, topo, topology.DefaultCommParams(), g, 0.5, 0.5)
	if pk.dFb != 1 || pk.dFc != 1 {
		t.Errorf("degenerate ranges = %g, %g; want 1, 1", pk.dFb, pk.dFc)
	}
}
