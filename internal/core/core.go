package core
