// Package core implements the primary contribution of D'Hollander & Devis
// (ICPP 1991): scheduling a directed taskgraph by simulated annealing.
//
// The scheduler operates in stages. At each assignment epoch an
// *annealing packet* is formed from the ready tasks and the idle
// processors (§4.1). A simulated annealing process then decides which
// tasks are selected and where they run, minimizing the weighted,
// per-packet-normalized sum (eq. 6) of
//
//   - the load-balancing cost Fb = −Σ nᵢ·s(i) (eq. 3), which pulls the
//     highest-level tasks into the selection, and
//   - the communication cost Fc = Σ cᵢⱼ (eq. 5) of shipping each selected
//     task's inputs from the processors its predecessors ran on (eq. 4).
//
// Tasks that lose the competition stay in the pool for the next packet.
package core

import (
	"math/rand"
	"sort"

	"repro/internal/machsim"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// packet is one annealing packet: the candidate tasks, the free
// processors, and the precomputed cost tables of the placement problem.
//
// All slices are reusable scratch owned by the packet; reset grows them as
// needed and reuses them across epochs, so forming a packet allocates only
// while the high-water mark of (tasks × procs) still grows.
type packet struct {
	tasks []taskgraph.TaskID // candidates (ready tasks)
	procs []int              // idle processors
	// level[i] is the task level of tasks[i].
	level []float64
	// commCost is the row-major n×p table of eq. 5 restricted to tasks[i]
	// placed on procs[j]: the sum of eq. 4 over the task's finished
	// predecessors. Entry (i, j) lives at commCost[i*np+j].
	commCost []float64
	np       int // row stride = len(procs)
	// dFb and dFc are the normalization ranges of §4.2c.
	dFb, dFc float64
	wb, wc   float64

	// Mapping state mutated by the annealer. taskAt[j] is the candidate
	// index on processor slot j (or -1); procOf[i] is the processor slot
	// of candidate i (or -1).
	taskAt []int
	procOf []int

	// Running raw component values, maintained incrementally.
	rawFb float64
	rawFc float64

	// Undo state of the last Propose: candidate, target slot, the
	// candidate's previous slot, and the displaced incumbent (-1 if none).
	undoI, undoJ, undoCur, undoOther int

	// Best-state double buffer backing anneal.Snapshotter.
	bestTaskAt []int
	bestProcOf []int
	bestFb     float64
	bestFc     float64

	// Scratch for the normalization ranges and greedy/random inits.
	sortScratch []float64
	idxScratch  []int
	// Reusable output buffer for assignments.
	out []machsim.Assignment
}

// Locator reports the processor a finished task ran on (-1 if unknown);
// the machine simulator's ProcOf satisfies it.
type Locator func(taskgraph.TaskID) int

// grow returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// newPacket builds a fresh packet for one epoch; the scheduler prefers
// reset on a long-lived packet so buffers are reused across epochs.
func newPacket(ready []taskgraph.TaskID, idle []int, locate Locator, levels []float64,
	topo *topology.Topology, comm topology.CommParams, g *taskgraph.Graph, wb, wc float64) *packet {

	pk := &packet{}
	pk.reset(ready, idle, locate, levels, topo, comm, g, wb, wc)
	return pk
}

// presize warms every buffer to hold a packet of up to n tasks and p
// processors, so per-epoch resets inside a run never grow them. Called
// once per scheduler with the whole-problem bounds (all tasks ready, all
// processors idle) — a few KB that converts the in-run growth reallocs
// into one up-front batch.
func (pk *packet) presize(n, p int) {
	pk.tasks = grow(pk.tasks, n)[:0]
	pk.procs = grow(pk.procs, p)[:0]
	pk.level = grow(pk.level, n)[:0]
	pk.commCost = grow(pk.commCost, n*p)[:0]
	pk.taskAt = grow(pk.taskAt, p)[:0]
	pk.procOf = grow(pk.procOf, n)[:0]
	pk.bestTaskAt = grow(pk.bestTaskAt, p)[:0]
	pk.bestProcOf = grow(pk.bestProcOf, n)[:0]
	pk.sortScratch = grow(pk.sortScratch, n)[:0]
	pk.idxScratch = grow(pk.idxScratch, n)[:0]
	pk.out = grow(pk.out, p)[:0]
}

// reset rebuilds the packet cost tables for one epoch in place: the
// candidate tasks, the free processors, and, via the locator, the
// communication cost of every (task, processor) placement given where the
// predecessors executed.
func (pk *packet) reset(ready []taskgraph.TaskID, idle []int, locate Locator, levels []float64,
	topo *topology.Topology, comm topology.CommParams, g *taskgraph.Graph, wb, wc float64) {

	n, p := len(ready), len(idle)
	pk.tasks = append(pk.tasks[:0], ready...)
	pk.procs = append(pk.procs[:0], idle...)
	pk.level = grow(pk.level, n)
	pk.commCost = grow(pk.commCost, n*p)
	pk.np = p
	pk.wb, pk.wc = wb, wc
	pk.taskAt = grow(pk.taskAt, p)
	pk.procOf = grow(pk.procOf, n)
	pk.bestTaskAt = grow(pk.bestTaskAt, p)
	pk.bestProcOf = grow(pk.bestProcOf, n)
	pk.rawFb, pk.rawFc = 0, 0

	for j := range pk.taskAt {
		pk.taskAt[j] = -1
	}
	for i := range pk.procOf {
		pk.procOf[i] = -1
	}
	for i, t := range pk.tasks {
		pk.level[i] = levels[t]
		row := pk.commCost[i*p : (i+1)*p]
		for j := range row {
			row[j] = 0
		}
		for _, h := range g.Predecessors(t) {
			src := locate(h.To)
			if src < 0 {
				continue // unreachable: ready tasks have finished predecessors
			}
			for j, proc := range pk.procs {
				row[j] += comm.CommCost(topo.Dist(src, proc), h.Bits)
			}
		}
	}
	pk.dFb = pk.balanceRange()
	pk.dFc = pk.commRange()
}

// cloneFrom makes pk an independent copy of src for a concurrent restart:
// the immutable cost tables (tasks, procs, level, commCost) are shared,
// only the mutable mapping state is deep-copied into pk's own buffers.
func (pk *packet) cloneFrom(src *packet) {
	pk.tasks = src.tasks
	pk.procs = src.procs
	pk.level = src.level
	pk.commCost = src.commCost
	pk.np = src.np
	pk.dFb, pk.dFc = src.dFb, src.dFc
	pk.wb, pk.wc = src.wb, src.wc
	pk.taskAt = append(pk.taskAt[:0], src.taskAt...)
	pk.procOf = append(pk.procOf[:0], src.procOf...)
	pk.bestTaskAt = grow(pk.bestTaskAt, len(src.taskAt))
	pk.bestProcOf = grow(pk.bestProcOf, len(src.procOf))
	pk.rawFb, pk.rawFc = src.rawFb, src.rawFc
}

// clearMapping empties every slot, ready for a fresh restart init.
func (pk *packet) clearMapping() {
	for j := range pk.taskAt {
		pk.taskAt[j] = -1
	}
	for i := range pk.procOf {
		pk.procOf[i] = -1
	}
	pk.rawFb, pk.rawFc = 0, 0
}

// adoptMapping copies the mapping state of src (a clone sharing pk's cost
// tables) into pk.
func (pk *packet) adoptMapping(src *packet) {
	copy(pk.taskAt, src.taskAt)
	copy(pk.procOf, src.procOf)
	pk.rawFb, pk.rawFc = src.rawFb, src.rawFc
}

// swapCurrent exchanges the current mapping state of two clones sharing
// the same cost tables — a parallel-tempering replica exchange. Only the
// slice headers and running cost components move (O(1), no copying);
// each packet keeps its own best-state double buffer, which stays valid
// because a best snapshot bounds whatever current state the packet holds.
func (pk *packet) swapCurrent(other *packet) {
	pk.taskAt, other.taskAt = other.taskAt, pk.taskAt
	pk.procOf, other.procOf = other.procOf, pk.procOf
	pk.rawFb, other.rawFb = other.rawFb, pk.rawFb
	pk.rawFc, other.rawFc = other.rawFc, pk.rawFc
}

// comm returns the eq.-5 cost of candidate i on processor slot j.
func (pk *packet) comm(i, j int) float64 { return pk.commCost[i*pk.np+j] }

// nSelect returns how many tasks a full mapping places: min(#tasks, #procs).
func (pk *packet) nSelect() int {
	if len(pk.tasks) < len(pk.procs) {
		return len(pk.tasks)
	}
	return len(pk.procs)
}

// balanceRange computes ΔFb = (Max − Min)/N_idle, where Max and Min are
// the cumulative level values of the N_idle highest- and lowest-level
// candidates (§4.2c). Degenerate packets get a range of 1 so the division
// is always safe.
func (pk *packet) balanceRange() float64 {
	k := pk.nSelect()
	if k == 0 {
		return 1
	}
	sorted := append(pk.sortScratch[:0], pk.level...)
	pk.sortScratch = sorted
	sort.Float64s(sorted)
	var lo, hi float64
	for i := 0; i < k; i++ {
		lo += sorted[i]
		hi += sorted[len(sorted)-1-i]
	}
	r := (hi - lo) / float64(len(pk.procs))
	if r <= 0 {
		return 1
	}
	return r
}

// commRange estimates ΔFc by "placing the tasks with the highest
// communication at the largest distance" (§4.2c): the sum, over the
// N_idle candidates with the worst possible placement cost, of that worst
// cost. Packets without any possible communication get a range of 1.
func (pk *packet) commRange() float64 {
	k := pk.nSelect()
	if k == 0 {
		return 1
	}
	worst := grow(pk.sortScratch, len(pk.tasks))
	pk.sortScratch = worst
	for i := range pk.tasks {
		w := 0.0
		for j := 0; j < pk.np; j++ {
			if c := pk.comm(i, j); c > w {
				w = c
			}
		}
		worst[i] = w
	}
	sort.Float64s(worst)
	var sum float64
	for i := 0; i < k; i++ {
		sum += worst[len(worst)-1-i]
	}
	if sum <= 0 {
		return 1
	}
	return sum
}

// contribution returns the normalized cost contribution of candidate i
// placed on processor slot j.
func (pk *packet) contribution(i, j int) float64 {
	return -pk.wb*pk.level[i]/pk.dFb + pk.wc*pk.comm(i, j)/pk.dFc
}

// place assigns candidate i to processor slot j (both currently free) and
// updates the running components.
func (pk *packet) place(i, j int) {
	pk.procOf[i] = j
	pk.taskAt[j] = i
	pk.rawFb -= pk.level[i]
	pk.rawFc += pk.comm(i, j)
}

// remove clears candidate i from its slot.
func (pk *packet) remove(i int) {
	j := pk.procOf[i]
	pk.procOf[i] = -1
	pk.taskAt[j] = -1
	pk.rawFb += pk.level[i]
	pk.rawFc -= pk.comm(i, j)
}

// Cost implements anneal.Problem: eq. 6, F = wb·Fb/ΔFb + wc·Fc/ΔFc.
func (pk *packet) Cost() float64 {
	return pk.wb*pk.rawFb/pk.dFb + pk.wc*pk.rawFc/pk.dFc
}

// Fb returns the current raw load-balancing cost (eq. 3).
func (pk *packet) Fb() float64 { return pk.rawFb }

// Fc returns the current raw communication cost (eq. 5).
func (pk *packet) Fc() float64 { return pk.rawFc }

// Propose implements anneal.Problem with the paper's elementary moves
// (§5.2a): pick a task tᵢ and a processor pⱼ ≠ m(tᵢ); if pⱼ is free,
// (re)assign tᵢ to pⱼ, otherwise exchange tᵢ with the task occupying pⱼ.
// The move is recorded in the undo fields; no heap allocation happens.
func (pk *packet) Propose(rng *rand.Rand) (float64, bool) {
	n, p := len(pk.tasks), len(pk.procs)
	if n == 0 || p == 0 || (n == 1 && p == 1) {
		return 0, false // no alternative mapping exists
	}
	i := rng.Intn(n)
	cur := pk.procOf[i]
	if p == 1 && cur == 0 {
		// The single slot already holds ti; a legal move must involve a
		// different task (which then displaces the incumbent).
		i = (i + 1 + rng.Intn(n-1)) % n
		cur = pk.procOf[i]
	}
	j := rng.Intn(p)
	if j == cur {
		j = (j + 1 + rng.Intn(p-1)) % p // resample a slot different from m(ti); p > 1 here
	}
	other := pk.taskAt[j]

	before := pk.componentCost(i, cur) + pk.componentCost(other, j)
	// Apply the move: ti onto slot j; if j was occupied, its task takes
	// ti's old slot (which may be "unassigned").
	if cur >= 0 {
		pk.remove(i)
	}
	if other >= 0 {
		pk.remove(other)
	}
	pk.place(i, j)
	if other >= 0 && cur >= 0 {
		pk.place(other, cur)
	}
	after := pk.componentCost(i, pk.procOf[i])
	if other >= 0 {
		after += pk.componentCost(other, pk.procOf[other])
	}
	pk.undoI, pk.undoJ, pk.undoCur, pk.undoOther = i, j, cur, other
	return after - before, true
}

// Undo implements anneal.Problem: revert the move recorded by the last
// Propose.
func (pk *packet) Undo() {
	i, j, cur, other := pk.undoI, pk.undoJ, pk.undoCur, pk.undoOther
	pk.remove(i)
	if other >= 0 && cur >= 0 {
		pk.remove(other)
	}
	if cur >= 0 {
		pk.place(i, cur)
	}
	if other >= 0 {
		pk.place(other, j)
	}
}

// componentCost returns candidate i's contribution when on slot j, or 0
// when i or j denote "none" (negative).
func (pk *packet) componentCost(i, j int) float64 {
	if i < 0 || j < 0 {
		return 0
	}
	return pk.contribution(i, j)
}

// SaveBest implements anneal.Snapshotter by copying the mapping into the
// packet's reusable best buffer.
func (pk *packet) SaveBest() {
	copy(pk.bestTaskAt, pk.taskAt)
	copy(pk.bestProcOf, pk.procOf)
	pk.bestFb, pk.bestFc = pk.rawFb, pk.rawFc
}

// RestoreBest implements anneal.Snapshotter.
func (pk *packet) RestoreBest() {
	copy(pk.taskAt, pk.bestTaskAt)
	copy(pk.procOf, pk.bestProcOf)
	pk.rawFb, pk.rawFc = pk.bestFb, pk.bestFc
}

// initGreedy fills the processor slots with the highest-level candidates
// in order (an HLF-like warm start).
func (pk *packet) initGreedy() {
	idx := grow(pk.idxScratch, len(pk.tasks))
	pk.idxScratch = idx
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pk.level[idx[a]] > pk.level[idx[b]] })
	k := pk.nSelect()
	for j := 0; j < k; j++ {
		pk.place(idx[j], j)
	}
}

// initWarm seeds the mapping from a whole-graph task→processor assignment
// (taskgraph.ProjectAssignment's output, indexed by task ID, −1 meaning
// unseeded): every candidate whose seed processor is idle in this packet
// keeps its placement, and the remaining slots fill with the unseeded
// candidates in HLF order — exactly initGreedy's rule restricted to the
// leftover tasks and slots. Deterministic, no RNG draw.
func (pk *packet) initWarm(assign []int) {
	k := pk.nSelect()
	placed := 0
	for i, t := range pk.tasks {
		if placed >= k {
			break
		}
		want := assign[t]
		if want < 0 {
			continue
		}
		for j, p := range pk.procs {
			if p == want && pk.taskAt[j] < 0 {
				pk.place(i, j)
				placed++
				break
			}
		}
	}
	if placed >= k {
		return
	}
	idx := grow(pk.idxScratch, len(pk.tasks))
	pk.idxScratch = idx
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pk.level[idx[a]] > pk.level[idx[b]] })
	j := 0
	for _, i := range idx {
		if placed >= k {
			break
		}
		if pk.procOf[i] >= 0 {
			continue
		}
		for ; j < len(pk.taskAt); j++ {
			if pk.taskAt[j] < 0 {
				pk.place(i, j)
				placed++
				j++
				break
			}
		}
	}
}

// initRandom fills the processor slots with uniformly random candidates.
// The inside-out Fisher-Yates below consumes the RNG exactly like
// rand.Perm but fills the reusable index scratch instead of allocating.
func (pk *packet) initRandom(rng *rand.Rand) {
	idx := grow(pk.idxScratch, len(pk.tasks))
	pk.idxScratch = idx
	for i := range idx {
		j := rng.Intn(i + 1)
		idx[i] = idx[j]
		idx[j] = i
	}
	k := pk.nSelect()
	for j := 0; j < k; j++ {
		pk.place(idx[j], j)
	}
}

// assignments converts the final mapping into simulator assignments. The
// returned slice is the packet's reusable buffer, valid until the next
// call.
func (pk *packet) assignments() []machsim.Assignment {
	out := pk.out[:0]
	for j, i := range pk.taskAt {
		if i >= 0 {
			out = append(out, machsim.Assignment{Task: pk.tasks[i], Proc: pk.procs[j]})
		}
	}
	pk.out = out
	return out
}
