package engine

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Lane is a QoS class: every job enters the engine through exactly one
// lane, each lane has its own bounded queue and admission budgets, and
// workers dequeue across lanes by weight so interactive traffic keeps a
// bounded wait even while the batch lane is saturated.
type Lane int

const (
	// LaneInteractive is the latency-sensitive lane: single schedule
	// calls default here, and it wins the weighted dequeue. The zero
	// value, so an unspecified Job lane is interactive.
	LaneInteractive Lane = iota
	// LaneBatch is the throughput lane: batch members default here, it
	// yields to interactive work under contention, and it is the lane
	// admission control sheds first under overload.
	LaneBatch

	numLanes
)

// String returns the lane's wire name.
func (l Lane) String() string {
	switch l {
	case LaneInteractive:
		return "interactive"
	case LaneBatch:
		return "batch"
	default:
		return fmt.Sprintf("lane(%d)", int(l))
	}
}

func (l Lane) valid() bool { return l >= 0 && l < numLanes }

// ParseLane resolves a wire lane name ("interactive" or "batch").
func ParseLane(s string) (Lane, error) {
	switch s {
	case "interactive":
		return LaneInteractive, nil
	case "batch":
		return LaneBatch, nil
	default:
		return 0, fmt.Errorf("engine: unknown lane %q (want interactive or batch)", s)
	}
}

// ErrOverloaded is the sentinel every admission-control rejection matches
// (errors.Is). The concrete error is an *OverloadError carrying the lane,
// the observed queue state and a Retry-After suggestion.
var ErrOverloaded = errors.New("engine: lane overloaded")

// OverloadError reports a submission shed by admission control: the
// lane's queue was at its depth budget, or its head-of-queue delay
// exceeded the configured target. The job never ran.
type OverloadError struct {
	// Lane is the lane that refused the job.
	Lane Lane
	// Queued is the lane's queue length at rejection.
	Queued int
	// QueueDelay is how long the lane's oldest queued job had been
	// waiting at rejection — the signal admission control acted on.
	QueueDelay time.Duration
	// RetryAfter is the engine's suggestion for when a retry is likely
	// to be admitted (at least one second, so it maps directly onto an
	// HTTP Retry-After header).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("engine: %s lane overloaded (%d queued, head waiting %s); retry after %s",
		e.Lane, e.Queued, e.QueueDelay.Round(time.Millisecond), e.RetryAfter)
}

// Is makes every *OverloadError match the ErrOverloaded sentinel.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// LaneStats is a point-in-time snapshot of one lane's counters.
type LaneStats struct {
	// Queued is the current queue length (claimed-but-expired tombstones
	// included until a worker skips past them).
	Queued int `json:"queued"`
	// Submitted counts jobs admitted into the lane's queue.
	Submitted uint64 `json:"submitted"`
	// Completed counts jobs a worker ran to completion (success or
	// solver error — the job executed).
	Completed uint64 `json:"completed"`
	// Shed counts submissions refused by admission control (depth budget
	// or queue-delay target exceeded).
	Shed uint64 `json:"shed"`
	// Expired counts jobs whose context ended while queued: they were
	// answered with ErrQueueTimeout and never ran.
	Expired uint64 `json:"expired"`
	// QueueDelayEWMA is an exponentially weighted moving average of the
	// enqueue-to-dequeue delay, in seconds.
	QueueDelayEWMA float64 `json:"queue_delay_ewma_seconds"`
	// MaxQueueDelayNS is the worst enqueue-to-dequeue delay observed.
	MaxQueueDelayNS int64 `json:"max_queue_delay_ns"`
	// QueueDelayTargetNS is the shedding target currently in force for
	// the lane: the auto-derived one (Config.QueueDelayAuto) once the
	// tuner has enough samples, else the static QueueDelayTarget (0 when
	// delay-based shedding is off).
	QueueDelayTargetNS int64 `json:"queue_delay_target_ns"`
	// QueueDelay is the full enqueue-to-dequeue delay distribution —
	// what /metrics exports per lane; /statsz keeps the scalar summary
	// above, so the histogram stays off the JSON wire.
	QueueDelay obs.HistSnapshot `json:"-"`
}

// laneCounters is the engine-internal mutable form of LaneStats.
type laneCounters struct {
	submitted uint64
	completed uint64
	shed      uint64
	expired   uint64
	delayEWMA float64 // seconds
	maxDelay  time.Duration
	hasEWMA   bool
	delayHist *obs.Histogram

	// Auto delay-target tuner state (Config.QueueDelayAuto): the derived
	// shedding target, the smoothed windowed p95 (seconds), and the
	// cumulative histogram counts at the last tuning pass — the baseline
	// the next pass diffs against so only recent traffic drives the
	// target.
	autoTarget time.Duration
	p95EWMA    float64
	hasP95     bool
	prevCum    []uint64
}

// observeDelay folds one enqueue-to-dequeue delay into the lane's moving
// average (EWMA, alpha 0.2), max, and full distribution.
func (c *laneCounters) observeDelay(d time.Duration) {
	s := d.Seconds()
	if !c.hasEWMA {
		c.delayEWMA = s
		c.hasEWMA = true
	} else {
		c.delayEWMA = 0.8*c.delayEWMA + 0.2*s
	}
	if d > c.maxDelay {
		c.maxDelay = d
	}
	c.delayHist.Observe(d)
}
