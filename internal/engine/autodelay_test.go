package engine

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// feedDelays folds synthetic enqueue-to-dequeue delays into a lane's
// counters, standing in for what next() observes when dequeuing.
func feedDelays(e *Engine, lane Lane, d time.Duration, n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := 0; i < n; i++ {
		e.lanes[lane].observeDelay(d)
	}
}

// TestRetuneDerivesTargetFromObservedDelays drives the tuner directly
// (no ticker) and checks the derived target is a headroom multiple of
// the observed p95, clamped, and surfaced through Stats.
func TestRetuneDerivesTargetFromObservedDelays(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDelayAuto: true})
	defer eng.Close()

	// 30 observations around 10ms: they land in the (5ms, 10ms] bucket,
	// so the windowed p95 interpolates inside it and the derived target
	// is 4×p95 ∈ (20ms, 40ms].
	feedDelays(eng, LaneInteractive, 9*time.Millisecond, 30)
	eng.retuneDelayTargets()

	eng.mu.Lock()
	target := eng.lanes[LaneInteractive].autoTarget
	eng.mu.Unlock()
	if target <= 20*time.Millisecond || target > 40*time.Millisecond {
		t.Fatalf("auto target = %v, want in (20ms, 40ms]", target)
	}
	st := eng.Stats()
	if got := st.Lanes["interactive"].QueueDelayTargetNS; got != int64(target) {
		t.Fatalf("Stats target = %dns, want %dns", got, int64(target))
	}
	// The batch lane saw nothing: no derived target, and with no static
	// fallback its effective target stays 0 (depth-only shedding).
	if got := st.Lanes["batch"].QueueDelayTargetNS; got != 0 {
		t.Fatalf("idle batch lane target = %dns, want 0", got)
	}
}

// TestRetuneWindowingAndAdaptation checks the window semantics: a pass
// with too few new samples keeps the current target, and a burst of much
// slower traffic moves the target up via the EWMA — old observations do
// not anchor it forever.
func TestRetuneWindowingAndAdaptation(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDelayAuto: true})
	defer eng.Close()

	feedDelays(eng, LaneBatch, 9*time.Millisecond, 40)
	eng.retuneDelayTargets()
	eng.mu.Lock()
	first := eng.lanes[LaneBatch].autoTarget
	eng.mu.Unlock()
	if first == 0 {
		t.Fatal("no target derived from first window")
	}

	// Quiet pass: fewer than delayTuneMinCount new samples → unchanged.
	feedDelays(eng, LaneBatch, 400*time.Millisecond, delayTuneMinCount-1)
	eng.retuneDelayTargets()
	eng.mu.Lock()
	quiet := eng.lanes[LaneBatch].autoTarget
	eng.mu.Unlock()
	if quiet != first {
		t.Fatalf("quiet pass moved target %v -> %v", first, quiet)
	}

	// Slow burst: the windowed p95 jumps, the EWMA follows, the target
	// rises. (The quiet pass advanced the window baseline, so these
	// samples are the whole new window.)
	feedDelays(eng, LaneBatch, 400*time.Millisecond, 100)
	eng.retuneDelayTargets()
	eng.mu.Lock()
	adapted := eng.lanes[LaneBatch].autoTarget
	eng.mu.Unlock()
	if adapted <= first {
		t.Fatalf("target did not adapt upward: %v -> %v", first, adapted)
	}
}

// TestRetuneClampsTarget pins both clamp edges: microsecond delays still
// yield at least the 5ms floor (no shedding storms on a healthy idle
// service), and delays past the histogram's last bound cap at 1s.
func TestRetuneClampsTarget(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDelayAuto: true})
	defer eng.Close()

	feedDelays(eng, LaneInteractive, 20*time.Microsecond, 50)
	feedDelays(eng, LaneBatch, 3*time.Second, 50)
	eng.retuneDelayTargets()

	eng.mu.Lock()
	fast, slow := eng.lanes[LaneInteractive].autoTarget, eng.lanes[LaneBatch].autoTarget
	eng.mu.Unlock()
	if fast != delayTargetFloor {
		t.Fatalf("fast lane target = %v, want floor %v", fast, delayTargetFloor)
	}
	if slow != delayTargetCeil {
		t.Fatalf("slow lane target = %v, want ceiling %v", slow, delayTargetCeil)
	}
}

// TestEffectiveDelayTargetPrecedence pins the fallback order: static
// config until the tuner derives a value, the derived value once it
// exists, and never the derived value when auto mode is off.
func TestEffectiveDelayTargetPrecedence(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDelayTarget: 25 * time.Millisecond, QueueDelayAuto: true})
	defer eng.Close()

	eng.mu.Lock()
	if got := eng.effectiveDelayTargetLocked(LaneBatch); got != 25*time.Millisecond {
		eng.mu.Unlock()
		t.Fatalf("pre-derivation target = %v, want static 25ms", got)
	}
	eng.lanes[LaneBatch].autoTarget = 80 * time.Millisecond
	if got := eng.effectiveDelayTargetLocked(LaneBatch); got != 80*time.Millisecond {
		eng.mu.Unlock()
		t.Fatalf("post-derivation target = %v, want auto 80ms", got)
	}
	eng.delayAuto = false
	if got := eng.effectiveDelayTargetLocked(LaneBatch); got != 25*time.Millisecond {
		eng.mu.Unlock()
		t.Fatalf("auto-off target = %v, want static 25ms", got)
	}
	eng.mu.Unlock()
}

// TestAdmissionUsesAutoTarget fabricates an aged queue head and checks
// admission control sheds against the derived target, not the (absent)
// static one.
func TestAdmissionUsesAutoTarget(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDelayAuto: true})
	defer eng.Close()

	eng.mu.Lock()
	eng.lanes[LaneBatch].autoTarget = 10 * time.Millisecond
	eng.queues[LaneBatch] = append(eng.queues[LaneBatch],
		&task{lane: LaneBatch, enq: time.Now().Add(-50 * time.Millisecond)})
	ov := eng.admitLocked(LaneBatch, time.Now())
	eng.queues[LaneBatch] = nil // drop the fake task before workers see it
	eng.mu.Unlock()

	if ov == nil {
		t.Fatal("aged head past auto target not shed")
	}
	if !errors.Is(ov, ErrOverloaded) {
		t.Fatalf("shed error %v does not match ErrOverloaded", ov)
	}
	if ov.QueueDelay < 10*time.Millisecond {
		t.Fatalf("overload detail = %+v", ov)
	}
}

// TestWindowQuantile exercises the bucket-delta estimator on synthetic
// cumulative snapshots: interpolation inside a bucket, the prev-baseline
// subtraction, and the +Inf clamp.
func TestWindowQuantile(t *testing.T) {
	snap := obs.HistSnapshot{
		Bounds: []float64{0.001, 0.01, 0.1},
		// 10 obs ≤1ms, 80 in (1ms,10ms], 10 in (10ms,100ms], 0 past.
		Cum:   []uint64{10, 90, 100, 100},
		Count: 100,
	}
	prev := []uint64{0, 0, 0, 0}
	// p50 rank 50 lands in the (1ms,10ms] bucket: 40 of its 80 → 1+0.5*9 = 5.5ms.
	if got := windowQuantile(snap, prev, 0.5); got < 0.0054 || got > 0.0056 {
		t.Fatalf("p50 = %v, want ~0.0055", got)
	}
	// p95 rank 95 lands in the (10ms,100ms] bucket.
	if got := windowQuantile(snap, prev, 0.95); got <= 0.01 || got > 0.1 {
		t.Fatalf("p95 = %v, want in (0.01, 0.1]", got)
	}

	// With the first 90 observations as baseline, the window is only the
	// 10 slow ones: every quantile sits in the (10ms,100ms] bucket.
	prev = []uint64{10, 90, 90, 90}
	if got := windowQuantile(snap, prev, 0.5); got <= 0.01 || got > 0.1 {
		t.Fatalf("windowed p50 = %v, want in (0.01, 0.1]", got)
	}

	// Observations past the last bound clamp to it.
	over := obs.HistSnapshot{
		Bounds: []float64{0.001, 0.01, 0.1},
		Cum:    []uint64{0, 0, 0, 50},
		Count:  50,
	}
	if got := windowQuantile(over, []uint64{0, 0, 0, 0}, 0.95); got != 0.1 {
		t.Fatalf("+Inf-bucket p95 = %v, want clamp to 0.1", got)
	}
}
