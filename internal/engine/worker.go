package engine

import (
	"context"

	"repro/internal/core"
	"repro/internal/machsim"
)

// Worker is the per-goroutine solve workspace: a machsim simulator arena
// and an SA scheduler arena, both created lazily on first use and reused
// for the worker's whole lifetime. Rebinding (Bind/Reset) discards all
// prior state, so worker placement never changes a result; a Worker must
// not be shared by concurrent solves.
type Worker struct {
	arena *machsim.Simulator
	sched *core.Scheduler
}

// Arena returns the worker's simulator arena, creating it on first use.
func (w *Worker) Arena() *machsim.Simulator {
	if w.arena == nil {
		w.arena = machsim.NewArena()
	}
	return w.arena
}

// Scheduler returns the worker's SA scheduler arena, creating it on first
// use. Callers Reset it to their problem before use.
func (w *Worker) Scheduler() *core.Scheduler {
	if w.sched == nil {
		w.sched = core.NewSchedulerArena()
	}
	return w.sched
}

// run executes one job on this worker, handing the solver the worker's
// arenas. The request is copied, so the caller's Request is never
// mutated.
func (w *Worker) run(ctx context.Context, job Job) Item {
	req := job.Req
	req.Arena = w.Arena()
	req.Sched = w.Scheduler()
	res, err := job.Solver.Solve(ctx, req)
	return Item{Index: job.Index, Result: res, Err: err}
}
