package engine

import (
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(i, w) for every i in [0, n) on at most workers
// goroutines — each with its own lazily-created Worker — and returns the
// error of the lowest index that failed. It is the deterministic fan-out
// loop of the experiment harness, with the invariants that make tables
// byte-identical at any worker count, including 1:
//
//   - indices are claimed from an atomic counter, never partitioned, so
//     results land in per-index slots regardless of which worker ran them;
//   - the reported error is the lowest-indexed one, not the first to
//     happen;
//   - with workers <= 1 (or n == 1) it degenerates to a plain loop with no
//     goroutines at all.
//
// fn may ignore w, or use w.Arena()/w.Scheduler() for worker-owned warm
// solve state; either way results must depend only on i.
func ParallelFor(workers, n int, fn func(i int, w *Worker) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		w := &Worker{}
		for i := 0; i < n; i++ {
			if err := fn(i, w); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &Worker{}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i, w)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
