package engine

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/solver"
	"repro/internal/topology"
)

// coldJob is the NE-on-hypercube SA solve both the benchmark and the
// baseline run: the problem every cold-path figure in PERFORMANCE.md is
// quoted on.
func coldJob(tb testing.TB) Job {
	tb.Helper()
	prog, err := programs.ByKey("NE")
	if err != nil {
		tb.Fatal(err)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		tb.Fatal(err)
	}
	slv, err := solver.Get("sa")
	if err != nil {
		tb.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seed = 1991
	return Job{Solver: slv, Req: solver.Request{
		Graph: prog.Build(),
		Topo:  topo,
		Comm:  topology.DefaultCommParams(),
		SA:    opt,
	}}
}

// BenchmarkEngineColdSolve measures a cold solve through the engine: every
// iteration is a full Submit → worker solve → Item round trip, with the
// per-solve policy construction replaced by the worker's pooled scheduler
// (core.Scheduler.Reset) and the simulation running on the worker's warm
// arena. Compare with BenchmarkNewSchedulerPerSolve, the construction
// pattern the engine replaced; the allocs/op gap is the engine's whole
// point, and CI guards this benchmark's allocs against regression.
func BenchmarkEngineColdSolve(b *testing.B) {
	eng := New(Config{Workers: 1})
	defer eng.Close()
	job := coldJob(b)
	ctx := context.Background()
	// One warmup solve grows the worker's arenas to this problem's size,
	// so the measured iterations are the steady cold-solve path — the
	// number the CI allocs guard holds — not first-touch buffer growth.
	if _, err := eng.Solve(ctx, job); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(ctx, job); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewSchedulerPerSolve is the pre-engine baseline: a fresh
// core.Scheduler (and a pool-drawn simulator) per solve, exactly what
// every front-end used to do.
func BenchmarkNewSchedulerPerSolve(b *testing.B) {
	job := coldJob(b)
	ctx := context.Background()
	// Same warmup as BenchmarkEngineColdSolve (here it warms the shared
	// machsim pool arena), so the two compare construction costs alone.
	if _, err := job.Solver.Solve(ctx, job.Req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := job.Solver.Solve(ctx, job.Req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEngineColdSolveAllocsBelowBaseline pins the acceptance criterion in
// a plain test: the engine's cold solve must allocate strictly less than
// the core.NewScheduler-per-solve path it replaced.
func TestEngineColdSolveAllocsBelowBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting in -short mode")
	}
	job := coldJob(t)
	ctx := context.Background()

	// Warm both paths first so one-time pool/arena growth is excluded.
	baselineReq := job.Req
	if _, err := job.Solver.Solve(ctx, baselineReq); err != nil {
		t.Fatal(err)
	}
	baseline := testing.AllocsPerRun(10, func() {
		if _, err := job.Solver.Solve(ctx, baselineReq); err != nil {
			t.Fatal(err)
		}
	})

	eng := New(Config{Workers: 1})
	defer eng.Close()
	if _, err := eng.Solve(ctx, job); err != nil {
		t.Fatal(err)
	}
	engineAllocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Solve(ctx, job); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("allocs/op: engine=%.1f baseline=%.1f", engineAllocs, baseline)
	if engineAllocs >= baseline {
		t.Fatalf("engine cold solve allocates %.1f/op, want strictly below the NewScheduler-per-solve baseline %.1f/op",
			engineAllocs, baseline)
	}
}

// TestEngineColdSolveAllocsUntracedPin pins the tracing fast path: with no
// trace in the context — the overwhelmingly common case — the engine's
// cold solve must stay at the CI-guarded allocation baseline (27 allocs/op
// recorded on the CI machine, tolerance 24). The stage-recording calls sit
// behind nil-trace guards precisely so the observability layer costs
// nothing when off; this test is what keeps those guards honest.
func TestEngineColdSolveAllocsUntracedPin(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting in -short mode")
	}
	const budget = 27 + 24 // CI baseline + the benchjson guard's tolerance
	eng := New(Config{Workers: 1})
	defer eng.Close()
	job := coldJob(t)
	ctx := context.Background()
	if _, err := eng.Solve(ctx, job); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := eng.Solve(ctx, job); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("untraced cold solve: %.1f allocs/op (budget %d)", got, budget)
	if got > budget {
		t.Fatalf("untraced cold solve allocates %.1f/op, over the guarded budget of %d — the disabled-trace fast path regressed", got, budget)
	}
}

// TestWorkerRunDetachedResult: results returned by a worker survive the
// worker rebinding its arena to another problem.
func TestWorkerRunDetachedResult(t *testing.T) {
	eng := New(Config{Workers: 1})
	defer eng.Close()
	job := coldJob(t)
	res1, err := eng.Solve(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(res1)
	// Run different problems over the same worker; res1 must not change.
	for _, j := range testJobs(t, 4) {
		if _, err := eng.Solve(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	if got := fingerprint(res1); got != want {
		t.Fatalf("result mutated by later jobs on the same worker:\n  got  %s\n  want %s", got, want)
	}
}

var benchSink *machsim.Result

// BenchmarkEngineStream8 measures a pipelined 8-job batch end to end.
func BenchmarkEngineStream8(b *testing.B) {
	eng := New(Config{Workers: 4})
	defer eng.Close()
	base := coldJob(b)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = base
		jobs[i].Index = i
		jobs[i].Req.SA.Seed = int64(i)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := eng.Stream(ctx, jobs)
		if err != nil {
			b.Fatal(err)
		}
		for item := range ch {
			if item.Err != nil {
				b.Fatal(item.Err)
			}
			benchSink = item.Result
		}
	}
}
