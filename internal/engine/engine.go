// Package engine is the shared solve-orchestration layer underneath every
// front-end of the repository: the dtsched CLI, the dtexp experiment
// harness, the dtserve HTTP service and its load generator all route
// solver executions through one Engine instead of wiring their own worker
// pools.
//
// An Engine is a fixed set of workers draining an unbuffered job channel,
// so at most Workers solves run at once and excess submissions queue in
// their callers (subject to their contexts). Each worker owns, for its
// whole lifetime,
//
//   - one machsim simulator arena (machsim.NewArena), so back-to-back
//     solves rebind warm buffers instead of rebuilding simulator state, and
//   - one SA scheduler arena (core.NewSchedulerArena), so the "sa" policy
//     Resets a pooled core.Scheduler instead of constructing one per solve
//     — together killing the cold-path allocations that per-solve
//     construction used to pay.
//
// Ownership contract: the arena and scheduler never leave their worker,
// are rebound per job (Bind/Reset discard all prior state), and therefore
// never change a result — for a fixed Job the result is identical at any
// worker count, including 1. Layers above the engine (content-addressed
// caches, singleflight, wire encoding) stay above it; the engine sees only
// cold solves.
//
// Submit hands one job to the pool and returns a channel carrying its
// Item. Stream pipelines a batch: every job solves as soon as a worker
// frees, and items are delivered in completion order, index-tagged, so a
// consumer (e.g. the service's NDJSON batch endpoint) can forward early
// finishers while the slowest member still runs. Fan generalizes Stream to
// arbitrary per-index work for callers that layer caching between
// themselves and Submit. ParallelFor is the deterministic fan-out loop the
// experiment harness runs its studies on.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/machsim"
	"repro/internal/solver"
)

// Config tunes an Engine.
type Config struct {
	// Workers bounds concurrent solves; <= 0 means one per available CPU.
	Workers int
	// MaxBatch caps the jobs of one Stream (or Fan) call; <= 0 means 256.
	// The engine owns this limit so every front-end enforces it the same
	// way instead of re-checking per handler.
	MaxBatch int
}

// DefaultMaxBatch is the Stream/Fan batch cap when Config leaves it zero.
const DefaultMaxBatch = 256

// Job is one solver execution: the solver to run and its request. Index is
// an opaque caller tag replayed on the resulting Item — batch consumers
// use it to reassemble completion-order items in request order.
type Job struct {
	Index  int
	Solver solver.Solver
	Req    solver.Request
}

// Item is the outcome of one Job. Exactly one of Result or Err is set.
type Item struct {
	Index  int
	Result *machsim.Result
	Err    error
}

// ErrQueueTimeout wraps the context error of a submission whose context
// ended before a worker picked the job up — the job never ran.
var ErrQueueTimeout = errors.New("engine: queued too long")

// ErrClosed reports a submission to a closed engine.
var ErrClosed = errors.New("engine: closed")

// task is one queued submission.
type task struct {
	ctx context.Context
	job Job
	out chan<- Item
}

// Engine is the worker pool. Create with New, stop with Close.
type Engine struct {
	jobs      chan task
	quit      chan struct{}
	wg        sync.WaitGroup
	workers   int
	maxBatch  int
	busy      atomic.Int64
	completed atomic.Int64
	closeOnce sync.Once
}

// New starts an engine with the given configuration.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	e := &Engine{
		jobs:     make(chan task),
		quit:     make(chan struct{}),
		workers:  cfg.Workers,
		maxBatch: cfg.MaxBatch,
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// MaxBatch returns the engine's batch cap.
func (e *Engine) MaxBatch() int { return e.maxBatch }

func (e *Engine) worker() {
	defer e.wg.Done()
	w := &Worker{}
	for {
		select {
		case t := <-e.jobs:
			e.busy.Add(1)
			item := w.run(t.ctx, t.job)
			e.busy.Add(-1)
			e.completed.Add(1)
			t.out <- item // out is buffered; never blocks the worker
		case <-e.quit:
			return
		}
	}
}

// Submit queues one job and returns the channel its Item will arrive on
// (buffered, so the worker never blocks on a slow consumer). Submit itself
// blocks only until a worker accepts the job: if ctx ends first the Item
// carries ErrQueueTimeout and the job never runs. Once accepted, the job
// runs to completion under ctx — solvers honor its cancellation through
// their interrupt hooks.
func (e *Engine) Submit(ctx context.Context, job Job) <-chan Item {
	out := make(chan Item, 1)
	select {
	case e.jobs <- task{ctx: ctx, job: job, out: out}:
	case <-ctx.Done():
		out <- Item{Index: job.Index, Err: fmt.Errorf("%w: %w", ErrQueueTimeout, ctx.Err())}
	case <-e.quit:
		out <- Item{Index: job.Index, Err: ErrClosed}
	}
	return out
}

// Solve is the single-job convenience wrapper around Submit.
func (e *Engine) Solve(ctx context.Context, job Job) (*machsim.Result, error) {
	item := <-e.Submit(ctx, job)
	return item.Result, item.Err
}

// Stream solves a batch with the jobs pipelined across the pool: each job
// starts as soon as a worker frees, and its Item is delivered the moment
// it completes — completion order, index-tagged — so consumers can forward
// early finishers while the slowest job still runs. The channel closes
// after the last item. Batches beyond MaxBatch are rejected before any
// job runs.
func (e *Engine) Stream(ctx context.Context, jobs []Job) (<-chan Item, error) {
	return Fan(len(jobs), e.maxBatch, func(i int) Item {
		return <-e.Submit(ctx, jobs[i])
	})
}

// Fan runs fn(i) for every i in [0, n) concurrently — each call on its own
// goroutine — and delivers the results in completion order on the returned
// channel, which closes after the n-th. limit rejects oversized fan-outs
// (an Engine's MaxBatch); n <= 0 yields an empty closed channel. Callers
// whose per-index work is not a bare Job — e.g. a cache consult that only
// sometimes reaches Submit — use Fan directly and inherit the same
// pipelining and the same engine-owned batch cap as Stream.
func Fan[T any](n, limit int, fn func(i int) T) (<-chan T, error) {
	if n > limit {
		return nil, fmt.Errorf("engine: batch of %d exceeds the limit of %d", n, limit)
	}
	out := make(chan T, max(n, 0))
	if n <= 0 {
		close(out)
		return out, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out <- fn(i)
		}(i)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// Close stops the workers after their current jobs; queued submissions
// fail with ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.quit) })
	e.wg.Wait()
}

// Stats is a point-in-time snapshot of the engine counters.
type Stats struct {
	Workers   int   `json:"workers"`
	Busy      int64 `json:"busy"`
	Completed int64 `json:"completed"`
}

// Stats returns the current counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Workers:   e.workers,
		Busy:      e.busy.Load(),
		Completed: e.completed.Load(),
	}
}
