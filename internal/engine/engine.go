// Package engine is the shared solve-orchestration layer underneath every
// front-end of the repository: the dtsched CLI, the dtexp experiment
// harness, the dtserve HTTP service and its load generator all route
// solver executions through one Engine instead of wiring their own worker
// pools.
//
// An Engine is a worker pool draining per-lane bounded queues, so at most
// the current worker count of solves run at once, excess submissions wait
// in lane queues (subject to their contexts), and submissions beyond a
// lane's depth or delay budget are shed with an *OverloadError instead of
// queueing unboundedly. Two QoS lanes exist: interactive (the default,
// latency-sensitive) and batch (throughput work that yields to interactive
// under contention via weighted dequeue). The pool itself adapts: it
// starts at Workers, grows one worker at a time up to MaxWorkers while the
// pool stays saturated with queued work, and shrinks back when workers sit
// idle. Each worker owns, for its whole lifetime,
//
//   - one machsim simulator arena (machsim.NewArena), so back-to-back
//     solves rebind warm buffers instead of rebuilding simulator state, and
//   - one SA scheduler arena (core.NewSchedulerArena), so the "sa" policy
//     Resets a pooled core.Scheduler instead of constructing one per solve
//     — together killing the cold-path allocations that per-solve
//     construction used to pay.
//
// Ownership contract: the arena and scheduler never leave their worker,
// are rebound per job (Bind/Reset discard all prior state), and therefore
// never change a result — for a fixed Job the result is identical at any
// worker count, including 1. Layers above the engine (content-addressed
// caches, singleflight, wire encoding) stay above it; the engine sees only
// cold solves.
//
// Submit enqueues one job and returns a channel carrying its Item. Stream
// pipelines a batch: every job solves as soon as a worker frees, and items
// are delivered in completion order, index-tagged, so a consumer (e.g. the
// service's NDJSON batch endpoint) can forward early finishers while the
// slowest member still runs. Fan generalizes Stream to arbitrary per-index
// work for callers that layer caching between themselves and Submit.
// ParallelFor is the deterministic fan-out loop the experiment harness
// runs its studies on.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machsim"
	"repro/internal/obs"
	"repro/internal/solver"
)

// Config tunes an Engine.
type Config struct {
	// Workers is the base pool size; <= 0 means one per available CPU.
	// The pool never shrinks below it.
	Workers int
	// MaxWorkers is the adaptive-pool ceiling. <= Workers (including 0)
	// keeps the pool fixed at Workers — the pre-QoS behavior.
	MaxWorkers int
	// MaxBatch caps the jobs of one Stream (or Fan) call; <= 0 means 256.
	// The engine owns this limit so every front-end enforces it the same
	// way instead of re-checking per handler.
	MaxBatch int
	// QueueDepth bounds each lane's queue; a submission to a full lane is
	// shed with an *OverloadError. <= 0 means DefaultQueueDepth.
	QueueDepth int
	// QueueDelayTarget sheds a submission when the lane's oldest queued
	// job has already waited longer than this — the queue is not keeping
	// up, so admitting more work only manufactures timeouts. 0 disables
	// delay-based shedding (depth still bounds the queue).
	QueueDelayTarget time.Duration
	// QueueDelayAuto derives each lane's shedding target from its own
	// observed behavior instead of one static number: a periodic tuner
	// estimates the lane's recent p95 enqueue-to-dequeue delay from the
	// delay histogram (windowed bucket deltas, so old traffic ages out),
	// smooths it with an EWMA, and sets the target to a headroom multiple
	// of that, clamped to [5ms, 1s]. A lane with too few recent samples
	// keeps its last derived target — or QueueDelayTarget (possibly 0,
	// i.e. depth-only shedding) until the first derivation. Interactive
	// and batch lanes therefore get independent budgets matching their
	// actual service rates.
	QueueDelayAuto bool
	// InteractiveWeight is the weighted-dequeue ratio: when both lanes
	// hold work, workers take this many interactive jobs per batch job.
	// <= 0 means 4.
	InteractiveWeight int
	// GrowInterval rate-limits pool growth to one worker per interval, so
	// only sustained saturation (not one burst) grows the pool. <= 0
	// means 100ms.
	GrowInterval time.Duration
	// ShrinkIdle is how long a surplus worker (above Workers) idles
	// before retiring. <= 0 means 2s.
	ShrinkIdle time.Duration
}

// DefaultMaxBatch is the Stream/Fan batch cap when Config leaves it zero.
const DefaultMaxBatch = 256

// DefaultQueueDepth is the per-lane queue bound when Config leaves it zero.
const DefaultQueueDepth = 1024

const (
	defaultInteractiveWeight = 4
	defaultGrowInterval      = 100 * time.Millisecond
	defaultShrinkIdle        = 2 * time.Second
)

// Job is one solver execution: the solver to run and its request. Index is
// an opaque caller tag replayed on the resulting Item — batch consumers
// use it to reassemble completion-order items in request order. Lane picks
// the QoS class; the zero value is LaneInteractive.
type Job struct {
	Index  int
	Lane   Lane
	Solver solver.Solver
	Req    solver.Request
}

// Item is the outcome of one Job. Exactly one of Result or Err is set.
type Item struct {
	Index  int
	Result *machsim.Result
	Err    error
}

// ErrQueueTimeout wraps the context error of a submission whose context
// ended before a worker picked the job up — the job never ran.
var ErrQueueTimeout = errors.New("engine: queued too long")

// ErrClosed reports a submission to a closed engine.
var ErrClosed = errors.New("engine: closed")

// Task states: exactly one party — a worker, the context watcher, or
// Close — wins the CAS out of taskQueued and delivers the task's Item.
const (
	taskQueued int32 = iota
	taskClaimed
	taskExpired
)

// task is one queued submission.
type task struct {
	ctx  context.Context
	job  Job
	lane Lane
	enq  time.Time
	out  chan<- Item
	// state arbitrates delivery between the dequeuing worker, the context
	// watcher, and Close (see the task-state constants).
	state atomic.Int32
	// claimed, non-nil only when a watcher is running, is closed by
	// whoever claims the task so the watcher exits promptly.
	claimed chan struct{}
}

// Engine is the worker pool. Create with New, stop with Close.
type Engine struct {
	mu       sync.Mutex
	queues   [numLanes][]*task
	lanes    [numLanes]laneCounters
	cur      int // current worker count
	grown    uint64
	shrunk   uint64
	lastGrow time.Time
	rr       uint64 // weighted-dequeue cursor
	closed   bool

	wake chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	base        int
	maxWorkers  int
	maxBatch    int
	queueDepth  int
	delayTarget time.Duration
	delayAuto   bool
	weight      int
	growEvery   time.Duration
	shrinkIdle  time.Duration

	busy      atomic.Int64
	completed atomic.Int64
	closeOnce sync.Once
}

// New starts an engine with the given configuration.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxWorkers < cfg.Workers {
		cfg.MaxWorkers = cfg.Workers
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.InteractiveWeight <= 0 {
		cfg.InteractiveWeight = defaultInteractiveWeight
	}
	if cfg.GrowInterval <= 0 {
		cfg.GrowInterval = defaultGrowInterval
	}
	if cfg.ShrinkIdle <= 0 {
		cfg.ShrinkIdle = defaultShrinkIdle
	}
	e := &Engine{
		// The wake buffer is sized so an enqueue's non-blocking send only
		// drops when enough tokens are already pending to cover every
		// queued task — a pending token always wakes a worker that then
		// drains the queues until empty, so no admitted task is stranded.
		wake:        make(chan struct{}, cfg.MaxWorkers+2*int(numLanes)*cfg.QueueDepth),
		quit:        make(chan struct{}),
		base:        cfg.Workers,
		maxWorkers:  cfg.MaxWorkers,
		maxBatch:    cfg.MaxBatch,
		queueDepth:  cfg.QueueDepth,
		delayTarget: cfg.QueueDelayTarget,
		delayAuto:   cfg.QueueDelayAuto,
		weight:      cfg.InteractiveWeight,
		growEvery:   cfg.GrowInterval,
		shrinkIdle:  cfg.ShrinkIdle,
	}
	for l := Lane(0); l < numLanes; l++ {
		e.lanes[l].delayHist = obs.NewHistogram(obs.QueueBuckets)
	}
	e.cur = cfg.Workers
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	if cfg.MaxWorkers > cfg.Workers {
		e.wg.Add(1)
		go e.pressureMonitor()
	}
	if cfg.QueueDelayAuto {
		e.wg.Add(1)
		go e.delayTuner()
	}
	return e
}

// Auto delay-target tuning knobs: retune cadence, the minimum windowed
// sample count worth acting on, the EWMA smoothing weight, the headroom
// multiple over the smoothed p95, and the clamp range keeping a derived
// target sane on both idle services (no shedding storms off a handful of
// microsecond delays) and badly backed-up ones.
const (
	delayTunePeriod   = 250 * time.Millisecond
	delayTuneMinCount = 20
	delayTuneAlpha    = 0.3
	delayTuneHeadroom = 4.0
	delayTargetFloor  = 5 * time.Millisecond
	delayTargetCeil   = time.Second
)

// delayTuner periodically re-derives each lane's shedding target from
// its own delay distribution.
func (e *Engine) delayTuner() {
	defer e.wg.Done()
	tick := time.NewTicker(delayTunePeriod)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			e.retuneDelayTargets()
		case <-e.quit:
			return
		}
	}
}

// retuneDelayTargets runs one tuning pass: for every lane, estimate the
// p95 enqueue-to-dequeue delay of the observations made since the last
// pass (bucket-delta window over the cumulative histogram, linear
// interpolation inside the p95 bucket), fold it into the lane's EWMA,
// and set the lane's target to a clamped headroom multiple. Lanes whose
// window holds fewer than delayTuneMinCount samples keep their current
// target — a quiet lane's budget should not drift on noise.
func (e *Engine) retuneDelayTargets() {
	var snaps [numLanes]obs.HistSnapshot
	for l := Lane(0); l < numLanes; l++ {
		snaps[l] = e.lanes[l].delayHist.Snapshot()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	for l := Lane(0); l < numLanes; l++ {
		c := &e.lanes[l]
		snap := snaps[l]
		n := len(snap.Cum)
		if n == 0 {
			continue
		}
		if len(c.prevCum) != n {
			c.prevCum = make([]uint64, n)
		}
		window := snap.Cum[n-1] - c.prevCum[n-1]
		if window >= delayTuneMinCount {
			p95 := windowQuantile(snap, c.prevCum, 0.95)
			if !c.hasP95 {
				c.p95EWMA = p95
				c.hasP95 = true
			} else {
				c.p95EWMA = (1-delayTuneAlpha)*c.p95EWMA + delayTuneAlpha*p95
			}
			target := time.Duration(delayTuneHeadroom * c.p95EWMA * float64(time.Second))
			if target < delayTargetFloor {
				target = delayTargetFloor
			}
			if target > delayTargetCeil {
				target = delayTargetCeil
			}
			c.autoTarget = target
		}
		copy(c.prevCum, snap.Cum)
	}
}

// windowQuantile estimates quantile q of the observations a histogram
// gained since prev (both cumulative). The estimate interpolates
// linearly inside the quantile's bucket; observations past the last
// finite bound are credited to that bound (the histogram cannot resolve
// them further, and a clamped answer keeps the derived target finite).
func windowQuantile(snap obs.HistSnapshot, prev []uint64, q float64) float64 {
	n := len(snap.Cum)
	total := snap.Cum[n-1] - prev[n-1]
	if total == 0 {
		return 0
	}
	rank := uint64(q*float64(total) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	for i := 0; i < n; i++ {
		cum := snap.Cum[i] - prev[i]
		if cum < rank {
			continue
		}
		if i >= len(snap.Bounds) {
			// +Inf bucket: the best finite statement is the last bound.
			return snap.Bounds[len(snap.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = snap.Bounds[i-1]
		}
		hi := snap.Bounds[i]
		inBucket := cum
		if i > 0 {
			inBucket = cum - (snap.Cum[i-1] - prev[i-1])
		}
		if inBucket == 0 {
			return hi
		}
		below := cum - inBucket
		frac := (float64(rank) - float64(below)) / float64(inBucket)
		return lo + frac*(hi-lo)
	}
	return snap.Bounds[len(snap.Bounds)-1]
}

// effectiveDelayTargetLocked is the shedding target currently in force
// for a lane: the auto-derived one when tuning is on and has derived a
// value, else the static configuration.
func (e *Engine) effectiveDelayTargetLocked(lane Lane) time.Duration {
	if e.delayAuto {
		if at := e.lanes[lane].autoTarget; at > 0 {
			return at
		}
	}
	return e.delayTarget
}

// pressureMonitor re-evaluates pool growth on a timer: Submit grows the
// pool on the spot, but when every worker is pinned by long solves and no
// new submissions arrive, queued work would otherwise wait on a pool that
// never reconsiders its size.
func (e *Engine) pressureMonitor() {
	defer e.wg.Done()
	period := e.growEvery
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			e.mu.Lock()
			if !e.closed {
				e.maybeGrowLocked(time.Now())
			}
			e.mu.Unlock()
		case <-e.quit:
			return
		}
	}
}

// Workers returns the base pool size (the pool's floor).
func (e *Engine) Workers() int { return e.base }

// MaxBatch returns the engine's batch cap.
func (e *Engine) MaxBatch() int { return e.maxBatch }

// Submit enqueues one job on its lane and returns the channel its Item
// will arrive on (buffered, so the worker never blocks on a slow
// consumer). Submit never blocks: it returns immediately with the job
// queued, or with the Item already carrying the rejection —
// *OverloadError (matches ErrOverloaded) when the lane's depth or delay
// budget is exhausted, ErrClosed after Close. If the job's context ends
// while it is still queued the Item carries ErrQueueTimeout and the job
// never runs. Once a worker claims it, the job runs to completion under
// ctx — solvers honor its cancellation through their interrupt hooks.
func (e *Engine) Submit(ctx context.Context, job Job) <-chan Item {
	out := make(chan Item, 1)
	lane := job.Lane
	if !lane.valid() {
		lane = LaneInteractive
	}
	t := &task{ctx: ctx, job: job, lane: lane, out: out}
	if ctx.Done() != nil {
		t.claimed = make(chan struct{})
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		out <- Item{Index: job.Index, Err: ErrClosed}
		return out
	}
	now := time.Now()
	if ov := e.admitLocked(lane, now); ov != nil {
		e.mu.Unlock()
		if tr := obs.FromContext(ctx); tr != nil {
			tr.Annotate("shed", ov.Lane.String())
		}
		out <- Item{Index: job.Index, Err: ov}
		return out
	}
	t.enq = now
	e.queues[lane] = append(e.queues[lane], t)
	e.lanes[lane].submitted++
	e.maybeGrowLocked(now)
	e.mu.Unlock()

	if t.claimed != nil {
		go e.watch(t)
	}
	select {
	case e.wake <- struct{}{}:
	default:
	}
	return out
}

// admitLocked applies the lane's admission budgets and returns the
// rejection (counting it as shed) or nil to admit.
func (e *Engine) admitLocked(lane Lane, now time.Time) *OverloadError {
	q := e.queues[lane]
	var headAge time.Duration
	if len(q) > 0 {
		headAge = now.Sub(q[0].enq)
	}
	target := e.effectiveDelayTargetLocked(lane)
	overDepth := len(q) >= e.queueDepth
	overDelay := target > 0 && headAge > target
	if !overDepth && !overDelay {
		return nil
	}
	e.lanes[lane].shed++
	retry := headAge
	if target > retry {
		retry = target
	}
	if retry < time.Second {
		retry = time.Second
	}
	return &OverloadError{Lane: lane, Queued: len(q), QueueDelay: headAge, RetryAfter: retry}
}

// maybeGrowLocked adds one worker when the pool is saturated (every
// worker busy with more work just queued), bounded by MaxWorkers and
// rate-limited to one growth per GrowInterval so only sustained pressure
// grows the pool.
func (e *Engine) maybeGrowLocked(now time.Time) {
	if e.cur >= e.maxWorkers {
		return
	}
	if int(e.busy.Load()) < e.cur {
		return
	}
	queued := 0
	for l := Lane(0); l < numLanes; l++ {
		queued += len(e.queues[l])
	}
	if queued == 0 {
		return
	}
	if now.Sub(e.lastGrow) < e.growEvery {
		return
	}
	e.lastGrow = now
	e.cur++
	e.grown++
	e.wg.Add(1)
	go e.worker()
}

// tryRetire removes this worker from the pool if it is surplus (above the
// base size) and no work is queued.
func (e *Engine) tryRetire() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.cur <= e.base {
		return false
	}
	for l := Lane(0); l < numLanes; l++ {
		if len(e.queues[l]) > 0 {
			return false
		}
	}
	e.cur--
	e.shrunk++
	return true
}

// watch delivers ErrQueueTimeout if the task's context ends while it is
// still queued; it exits as soon as anyone claims the task.
func (e *Engine) watch(t *task) {
	select {
	case <-t.ctx.Done():
		if t.state.CompareAndSwap(taskQueued, taskExpired) {
			e.mu.Lock()
			e.lanes[t.lane].expired++
			e.mu.Unlock()
			t.out <- Item{Index: t.job.Index, Err: fmt.Errorf("%w: %w", ErrQueueTimeout, t.ctx.Err())}
		}
	case <-t.claimed:
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	w := &Worker{}
	idle := time.NewTimer(e.shrinkIdle)
	defer idle.Stop()
	for {
		if t := e.next(); t != nil {
			e.runTask(w, t)
			continue
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(e.shrinkIdle)
		select {
		case <-e.wake:
		case <-e.quit:
			return
		case <-idle.C:
			if e.tryRetire() {
				return
			}
		}
	}
}

// next claims the next runnable task across the lanes (weighted dequeue,
// skipping expired tombstones) or returns nil when every queue is empty.
func (e *Engine) next() *task {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		lane := e.pickLaneLocked()
		if lane < 0 {
			return nil
		}
		q := e.queues[lane]
		t := q[0]
		q[0] = nil
		e.queues[lane] = q[1:]
		if !t.state.CompareAndSwap(taskQueued, taskClaimed) {
			continue // the watcher already answered this one
		}
		if t.claimed != nil {
			close(t.claimed)
		}
		e.lanes[lane].observeDelay(time.Since(t.enq))
		return t
	}
}

// pickLaneLocked chooses which non-empty lane to dequeue from: the only
// non-empty one outright, or — under contention — InteractiveWeight
// interactive jobs per batch job, so the batch lane saturating cannot
// starve interactive traffic and interactive bursts cannot starve batch
// either.
func (e *Engine) pickLaneLocked() Lane {
	ni := len(e.queues[LaneInteractive])
	nb := len(e.queues[LaneBatch])
	switch {
	case ni == 0 && nb == 0:
		return -1
	case nb == 0:
		return LaneInteractive
	case ni == 0:
		return LaneBatch
	}
	e.rr++
	if e.rr%uint64(e.weight+1) == 0 {
		return LaneBatch
	}
	return LaneInteractive
}

// runTask executes one claimed task, or answers it with ErrQueueTimeout
// without running when its context is already dead.
func (e *Engine) runTask(w *Worker, t *task) {
	if t.ctx.Err() != nil {
		e.mu.Lock()
		e.lanes[t.lane].expired++
		e.mu.Unlock()
		t.out <- Item{Index: t.job.Index, Err: fmt.Errorf("%w: %w", ErrQueueTimeout, t.ctx.Err())}
		return
	}
	tr := obs.FromContext(t.ctx)
	if tr != nil {
		pickup := time.Now()
		tr.Observe(obs.StageQueue, t.enq, pickup.Sub(t.enq), obs.KV{Key: "lane", Val: t.lane.String()})
	}
	e.busy.Add(1)
	start := time.Now()
	item := w.run(t.ctx, t.job)
	e.busy.Add(-1)
	if tr != nil {
		tr.Observe(obs.StageSolve, start, time.Since(start), obs.KV{Key: "solver", Val: t.job.Solver.Name()})
	}
	e.completed.Add(1)
	e.mu.Lock()
	e.lanes[t.lane].completed++
	e.mu.Unlock()
	t.out <- item // out is buffered; never blocks the worker
}

// Solve is the single-job convenience wrapper around Submit.
func (e *Engine) Solve(ctx context.Context, job Job) (*machsim.Result, error) {
	item := <-e.Submit(ctx, job)
	return item.Result, item.Err
}

// Stream solves a batch with the jobs pipelined across the pool: each job
// starts as soon as a worker frees, and its Item is delivered the moment
// it completes — completion order, index-tagged — so consumers can forward
// early finishers while the slowest job still runs. The channel closes
// after the last item. Batches beyond MaxBatch are rejected before any
// job runs.
func (e *Engine) Stream(ctx context.Context, jobs []Job) (<-chan Item, error) {
	return Fan(len(jobs), e.maxBatch, func(i int) Item {
		return <-e.Submit(ctx, jobs[i])
	})
}

// Fan runs fn(i) for every i in [0, n) concurrently — each call on its own
// goroutine — and delivers the results in completion order on the returned
// channel, which closes after the n-th. limit rejects oversized fan-outs
// (an Engine's MaxBatch); n <= 0 yields an empty closed channel. Callers
// whose per-index work is not a bare Job — e.g. a cache consult that only
// sometimes reaches Submit — use Fan directly and inherit the same
// pipelining and the same engine-owned batch cap as Stream. The channel
// is buffered for all n results, so producers never block on a consumer
// that stopped reading.
func Fan[T any](n, limit int, fn func(i int) T) (<-chan T, error) {
	if n > limit {
		return nil, fmt.Errorf("engine: batch of %d exceeds the limit of %d", n, limit)
	}
	out := make(chan T, max(n, 0))
	if n <= 0 {
		close(out)
		return out, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out <- fn(i)
		}(i)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// Close stops the workers after their current jobs; queued submissions
// fail with ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		var pending []*task
		for l := range e.queues {
			pending = append(pending, e.queues[l]...)
			e.queues[l] = nil
		}
		e.mu.Unlock()
		close(e.quit)
		for _, t := range pending {
			if t.state.CompareAndSwap(taskQueued, taskClaimed) {
				if t.claimed != nil {
					close(t.claimed)
				}
				t.out <- Item{Index: t.job.Index, Err: ErrClosed}
			}
		}
	})
	e.wg.Wait()
}

// Stats is a point-in-time snapshot of the engine counters.
type Stats struct {
	// Workers is the current pool size (== MinWorkers when fixed).
	Workers int `json:"workers"`
	// MinWorkers and MaxWorkers are the adaptive-pool bounds.
	MinWorkers int `json:"min_workers"`
	MaxWorkers int `json:"max_workers"`
	// Grown and Shrunk count adaptive pool-size changes.
	Grown  uint64 `json:"grown"`
	Shrunk uint64 `json:"shrunk"`
	// Busy is the number of workers currently running a job.
	Busy int64 `json:"busy"`
	// Completed counts jobs run to completion across all lanes.
	Completed int64 `json:"completed"`
	// Lanes holds per-lane queue and admission counters, keyed by lane
	// name ("interactive", "batch").
	Lanes map[string]LaneStats `json:"lanes"`
}

// Stats returns the current counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	lanes := make(map[string]LaneStats, numLanes)
	for l := Lane(0); l < numLanes; l++ {
		c := e.lanes[l]
		lanes[l.String()] = LaneStats{
			Queued:             len(e.queues[l]),
			Submitted:          c.submitted,
			Completed:          c.completed,
			Shed:               c.shed,
			Expired:            c.expired,
			QueueDelayEWMA:     c.delayEWMA,
			MaxQueueDelayNS:    c.maxDelay.Nanoseconds(),
			QueueDelayTargetNS: int64(e.effectiveDelayTargetLocked(l)),
			QueueDelay:         c.delayHist.Snapshot(),
		}
	}
	return Stats{
		Workers:    e.cur,
		MinWorkers: e.base,
		MaxWorkers: e.maxWorkers,
		Grown:      e.grown,
		Shrunk:     e.shrunk,
		Busy:       e.busy.Load(),
		Completed:  e.completed.Load(),
		Lanes:      lanes,
	}
}
