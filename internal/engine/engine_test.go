package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/solver"
	"repro/internal/topology"
)

// testJobs builds a mixed batch of real solve jobs: every benchmark
// program, several solvers, distinct seeds.
func testJobs(t *testing.T, n int) []Job {
	t.Helper()
	keys := []string{"NE", "GJ", "FFT", "MM"}
	names := []string{"sa", "hlf", "etf", "auto"}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, n)
	for i := range jobs {
		prog, err := programs.ByKey(keys[i%len(keys)])
		if err != nil {
			t.Fatal(err)
		}
		slv, err := solver.Get(names[i%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		opt := core.DefaultOptions()
		opt.Seed = int64(1991 + i)
		jobs[i] = Job{
			Index:  i,
			Solver: slv,
			Req: solver.Request{
				Graph: prog.Build(),
				Topo:  topo,
				Comm:  topology.DefaultCommParams(),
				SA:    opt,
			},
		}
	}
	return jobs
}

// fingerprint reduces a result to a comparable string covering the whole
// schedule, not just the makespan.
func fingerprint(res *machsim.Result) string {
	return fmt.Sprintf("%s|%.9f|%d|%v|%v|%v", res.Policy, res.Makespan, res.Messages,
		res.Proc, res.Start, res.Finish)
}

// TestEngineDeterministicAcrossWorkerCounts solves one batch at worker
// counts 1, 4 and 16 and requires identical schedules per index: worker
// placement (and the worker-owned arena + pooled scheduler) must never
// leak into results.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs(t, 12)
	var want []string
	for _, workers := range []int{1, 4, 16} {
		eng := New(Config{Workers: workers})
		ch, err := eng.Stream(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]string, len(jobs))
		count := 0
		for item := range ch {
			if item.Err != nil {
				t.Fatalf("workers=%d index=%d: %v", workers, item.Index, item.Err)
			}
			got[item.Index] = fingerprint(item.Result)
			count++
		}
		eng.Close()
		if count != len(jobs) {
			t.Fatalf("workers=%d: %d items for %d jobs", workers, count, len(jobs))
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d index=%d diverged:\n  got  %s\n  want %s", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEngineMatchesDirectSolve proves the engine is transparent: the
// worker-owned arena and pooled scheduler produce exactly the schedule a
// direct solver.Solve (fresh state per solve) produces.
func TestEngineMatchesDirectSolve(t *testing.T) {
	jobs := testJobs(t, 8)
	eng := New(Config{Workers: 3})
	defer eng.Close()
	for _, job := range jobs {
		direct, err := job.Solver.Solve(context.Background(), job.Req)
		if err != nil {
			t.Fatal(err)
		}
		via, err := eng.Solve(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(via) != fingerprint(direct) {
			t.Errorf("index %d: engine result diverged from direct solve:\n  engine %s\n  direct %s",
				job.Index, fingerprint(via), fingerprint(direct))
		}
	}
}

// gate is a controllable latch for gated test solvers.
type gate struct {
	ch   chan struct{}
	once sync.Once
}

func newGate() *gate                    { return &gate{ch: make(chan struct{})} }
func (g *gate) open()                   { g.once.Do(func() { close(g.ch) }) }
func (g *gate) wait()                   { <-g.ch }
func (g *gate) opened() <-chan struct{} { return g.ch }

// gatedSolver blocks in Solve until its gate opens, then delegates to
// hlf. It proves stream ordering without wall-clock sleeps.
type gatedSolver struct {
	g *gate
}

func (s gatedSolver) Name() string        { return "gatedtest" }
func (s gatedSolver) Description() string { return "test-only solver gated on a channel" }

func (s gatedSolver) Solve(ctx context.Context, req solver.Request) (*machsim.Result, error) {
	select {
	case <-s.g.opened():
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	hlf, err := solver.Get("hlf")
	if err != nil {
		return nil, err
	}
	return hlf.Solve(ctx, req)
}

// TestStreamPipelinesEarlyItems is the streaming proof: with one member
// of a batch artificially stuck, every other item is delivered while the
// slow member still runs — item 0's delivery does not wait for item N-1's
// completion.
func TestStreamPipelinesEarlyItems(t *testing.T) {
	jobs := testJobs(t, 4)
	slow := newGate()
	slowIdx := len(jobs) - 1
	jobs[slowIdx].Solver = gatedSolver{g: slow}

	eng := New(Config{Workers: len(jobs)})
	defer eng.Close()
	ch, err := eng.Stream(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	fast := make(map[int]bool)
	for i := 0; i < len(jobs)-1; i++ {
		item, ok := <-ch
		if !ok {
			t.Fatal("stream closed before the fast items arrived")
		}
		if item.Err != nil {
			t.Fatalf("index %d: %v", item.Index, item.Err)
		}
		if item.Index == slowIdx {
			t.Fatal("gated item delivered while its gate is closed")
		}
		fast[item.Index] = true
	}
	if len(fast) != len(jobs)-1 {
		t.Fatalf("expected %d distinct fast items, got %v", len(jobs)-1, fast)
	}
	// Every fast item has been consumed and the slow member is still
	// gated; releasing it must complete the stream.
	slow.open()
	item, ok := <-ch
	if !ok || item.Index != slowIdx || item.Err != nil {
		t.Fatalf("slow item = %+v, ok=%v", item, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("stream yielded more items than jobs")
	}
}

func TestStreamEnforcesMaxBatch(t *testing.T) {
	eng := New(Config{Workers: 1, MaxBatch: 2})
	defer eng.Close()
	if _, err := eng.Stream(context.Background(), make([]Job, 3)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	ch, err := eng.Stream(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch; ok {
		t.Fatal("empty stream yielded an item")
	}
}

func TestSubmitQueueRespectsContext(t *testing.T) {
	eng := New(Config{Workers: 1})
	defer eng.Close()
	block := newGate()
	jobs := testJobs(t, 2)
	jobs[0].Solver = gatedSolver{g: block}
	first := eng.Submit(context.Background(), jobs[0])

	// The only worker is busy; a second submission with an expiring
	// context must fail with ErrQueueTimeout without ever running.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	item := <-eng.Submit(ctx, jobs[1])
	if !errors.Is(item.Err, ErrQueueTimeout) {
		t.Fatalf("queued item err = %v, want ErrQueueTimeout", item.Err)
	}
	block.open()
	if item := <-first; item.Err != nil {
		t.Fatalf("blocked leader failed: %v", item.Err)
	}
	st := eng.Stats()
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (the timed-out job must never run)", st.Completed)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	eng := New(Config{Workers: 2})
	eng.Close()
	eng.Close() // idempotent
	item := <-eng.Submit(context.Background(), testJobs(t, 1)[0])
	if !errors.Is(item.Err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", item.Err)
	}
}

// TestEngineBoundsConcurrency proves at most Workers jobs run at once.
func TestEngineBoundsConcurrency(t *testing.T) {
	eng := New(Config{Workers: 3})
	defer eng.Close()
	var running, peak atomic.Int64
	probe := probeSolver{fn: func() {
		n := running.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		running.Add(-1)
	}}
	base := testJobs(t, 1)[0]
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job := base
			job.Solver = probe
			if item := <-eng.Submit(context.Background(), job); item.Err != nil {
				t.Error(item.Err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("engine ran %d jobs at once, bound is 3", got)
	}
	st := eng.Stats()
	if st.Completed != 20 || st.Workers != 3 || st.Busy != 0 {
		t.Fatalf("engine stats %+v", st)
	}
}

// probeSolver runs fn and then a trivial hlf solve.
type probeSolver struct {
	fn func()
}

func (p probeSolver) Name() string        { return "probetest" }
func (p probeSolver) Description() string { return "test-only concurrency probe" }

func (p probeSolver) Solve(ctx context.Context, req solver.Request) (*machsim.Result, error) {
	p.fn()
	hlf, err := solver.Get("hlf")
	if err != nil {
		return nil, err
	}
	return hlf.Solve(ctx, req)
}

func TestParallelForDeterministicErrorAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		// Error-free run: every index runs exactly once at any worker count.
		var hits [40]atomic.Int64
		err := ParallelFor(workers, len(hits), func(i int, w *Worker) error {
			hits[i].Add(1)
			if w == nil {
				return fmt.Errorf("nil worker")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
		// Failing run: the reported error is the lowest-indexed one,
		// regardless of completion order (the sequential degenerate mode
		// simply stops there).
		err = ParallelFor(workers, len(hits), func(i int, _ *Worker) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 7" {
			t.Fatalf("workers=%d: err = %v, want the lowest-index error", workers, err)
		}
	}
}

// TestWorkerArenasAreLazyAndSticky: a Worker creates each arena once.
func TestWorkerArenasAreLazyAndSticky(t *testing.T) {
	w := &Worker{}
	if w.arena != nil || w.sched != nil {
		t.Fatal("worker pre-created arenas")
	}
	a1, s1 := w.Arena(), w.Scheduler()
	if a1 == nil || s1 == nil {
		t.Fatal("nil arenas")
	}
	if w.Arena() != a1 || w.Scheduler() != s1 {
		t.Fatal("worker arenas not sticky")
	}
}

// TestSchedulerArenaResetMatchesFresh: a pooled core.Scheduler Reset
// across different problems reproduces fresh-scheduler schedules exactly.
func TestSchedulerArenaResetMatchesFresh(t *testing.T) {
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := topology.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	pooled := core.NewSchedulerArena()
	arena := machsim.NewArena()
	for i, cfg := range []struct {
		key  string
		topo *topology.Topology
		seed int64
	}{
		{"NE", topo, 1}, {"FFT", ring, 2}, {"GJ", topo, 3}, {"NE", ring, 1}, {"NE", topo, 1},
	} {
		prog, err := programs.ByKey(cfg.key)
		if err != nil {
			t.Fatal(err)
		}
		g := prog.Build()
		comm := topology.DefaultCommParams()
		opt := core.DefaultOptions()
		opt.Seed = cfg.seed
		model := machsim.Model{Graph: g, Topo: cfg.topo, Comm: comm}

		fresh, err := core.NewScheduler(g, cfg.topo, comm, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := machsim.Run(model, fresh, machsim.Options{})
		if err != nil {
			t.Fatal(err)
		}

		if err := pooled.Reset(g, cfg.topo, comm, opt); err != nil {
			t.Fatal(err)
		}
		if err := arena.Bind(model, machsim.Options{}); err != nil {
			t.Fatal(err)
		}
		got, err := arena.Run(pooled)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(got) != fingerprint(want) {
			t.Errorf("case %d (%s on %s): pooled scheduler diverged from fresh:\n  got  %s\n  want %s",
				i, cfg.key, cfg.topo.Name(), fingerprint(got), fingerprint(want))
		}
	}
}
