package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestParseLane(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Lane
		ok   bool
	}{
		{"interactive", LaneInteractive, true},
		{"batch", LaneBatch, true},
		{"", 0, false},
		{"Batch", 0, false},
		{"priority", 0, false},
	} {
		got, err := ParseLane(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseLane(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseLane(%q) accepted", tc.in)
		}
	}
	if LaneInteractive.String() != "interactive" || LaneBatch.String() != "batch" {
		t.Fatalf("lane names: %q, %q", LaneInteractive, LaneBatch)
	}
}

// waitBusy blocks until the engine reports n busy workers — i.e. the
// gated leader jobs of a test have actually been claimed, so subsequent
// submissions are guaranteed to queue.
func waitBusy(t *testing.T, eng *Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Busy < n {
		if time.Now().After(deadline) {
			t.Fatalf("engine never reached %d busy workers: %+v", n, eng.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWeightedDequeueFavorsInteractive loads both lanes behind one gated
// worker with weight 1 and checks the drain order strictly alternates
// interactive/batch — the batch lane neither starves nor starves the
// interactive lane.
func TestWeightedDequeueFavorsInteractive(t *testing.T) {
	eng := New(Config{Workers: 1, InteractiveWeight: 1})
	defer eng.Close()

	block := newGate()
	var mu sync.Mutex
	var order []Lane
	probe := func(lane Lane) probeSolver {
		return probeSolver{fn: func() {
			mu.Lock()
			order = append(order, lane)
			mu.Unlock()
		}}
	}

	// Occupy the single worker so subsequent submissions queue.
	leader := testJobs(t, 1)[0]
	leader.Solver = gatedSolver{g: block}
	leaderCh := eng.Submit(context.Background(), leader)
	waitBusy(t, eng, 1) // claim before loading the lanes: the drain order is then deterministic

	waitQueued := func(lane Lane, want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if eng.Stats().Lanes[lane.String()].Queued >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("lane %s never reached %d queued", lane, want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	const perLane = 3
	var outs []<-chan Item
	base := testJobs(t, 1)[0]
	for i := 0; i < perLane; i++ {
		bj := base
		bj.Lane = LaneBatch
		bj.Solver = probe(LaneBatch)
		outs = append(outs, eng.Submit(context.Background(), bj))
		waitQueued(LaneBatch, i+1)
		ij := base
		ij.Lane = LaneInteractive
		ij.Solver = probe(LaneInteractive)
		outs = append(outs, eng.Submit(context.Background(), ij))
		waitQueued(LaneInteractive, i+1)
	}

	block.open()
	if item := <-leaderCh; item.Err != nil {
		t.Fatalf("leader: %v", item.Err)
	}
	for _, ch := range outs {
		if item := <-ch; item.Err != nil {
			t.Fatalf("queued job: %v", item.Err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2*perLane {
		t.Fatalf("ran %d queued jobs, want %d", len(order), 2*perLane)
	}
	// With weight 1 and both lanes non-empty throughout the drain, the
	// single worker must strictly alternate starting with interactive.
	for i, lane := range order {
		want := LaneInteractive
		if i%2 == 1 {
			want = LaneBatch
		}
		if lane != want {
			t.Fatalf("drain order %v: position %d is %s, want %s", order, i, lane, want)
		}
	}

	st := eng.Stats()
	if st.Lanes["interactive"].Completed != uint64(perLane)+1 || st.Lanes["batch"].Completed != uint64(perLane) {
		t.Fatalf("lane completions: %+v", st.Lanes)
	}
}

// TestAdmissionControlShedsOnDepth fills the batch lane to its depth
// budget and checks the next batch submission is shed with a structured
// *OverloadError while the interactive lane still admits.
func TestAdmissionControlShedsOnDepth(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDepth: 2})
	defer eng.Close()

	block := newGate()
	leader := testJobs(t, 1)[0]
	leader.Solver = gatedSolver{g: block}
	leaderCh := eng.Submit(context.Background(), leader)
	waitBusy(t, eng, 1)

	base := testJobs(t, 1)[0]
	var queued []<-chan Item
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Lanes["batch"].Queued < 2 {
		if time.Now().After(deadline) {
			t.Fatal("batch lane never filled")
		}
		bj := base
		bj.Lane = LaneBatch
		queued = append(queued, eng.Submit(context.Background(), bj))
		if len(queued) > 2 {
			// The worker may have dequeued one before blocking on the
			// leader is established; with the leader gated this cannot
			// happen, so more than 2 submissions means a bug.
			t.Fatalf("admitted %d batch jobs past a depth budget of 2", len(queued))
		}
	}

	bj := base
	bj.Lane = LaneBatch
	item := <-eng.Submit(context.Background(), bj)
	if !errors.Is(item.Err, ErrOverloaded) {
		t.Fatalf("over-depth batch submit err = %v, want ErrOverloaded", item.Err)
	}
	var ov *OverloadError
	if !errors.As(item.Err, &ov) {
		t.Fatalf("err %v is not an *OverloadError", item.Err)
	}
	if ov.Lane != LaneBatch || ov.Queued != 2 || ov.RetryAfter < time.Second {
		t.Fatalf("overload detail = %+v", ov)
	}

	// The interactive lane has its own budget: it still admits.
	ij := base
	ij.Lane = LaneInteractive
	ich := eng.Submit(context.Background(), ij)

	block.open()
	if item := <-leaderCh; item.Err != nil {
		t.Fatalf("leader: %v", item.Err)
	}
	if item := <-ich; item.Err != nil {
		t.Fatalf("interactive job after batch shed: %v", item.Err)
	}
	for _, ch := range queued {
		if item := <-ch; item.Err != nil {
			t.Fatalf("queued batch job: %v", item.Err)
		}
	}

	st := eng.Stats()
	if st.Lanes["batch"].Shed != 1 || st.Lanes["interactive"].Shed != 0 {
		t.Fatalf("shed counters: %+v", st.Lanes)
	}
}

// TestAdmissionControlShedsOnQueueDelay checks delay-based shedding: once
// the head of a lane's queue has waited past the target, new submissions
// to that lane are refused with a RetryAfter at least the head's age.
func TestAdmissionControlShedsOnQueueDelay(t *testing.T) {
	eng := New(Config{Workers: 1, QueueDelayTarget: 5 * time.Millisecond})
	defer eng.Close()

	block := newGate()
	leader := testJobs(t, 1)[0]
	leader.Solver = gatedSolver{g: block}
	leaderCh := eng.Submit(context.Background(), leader)
	waitBusy(t, eng, 1)

	base := testJobs(t, 1)[0]
	bj := base
	bj.Lane = LaneBatch
	deadline := time.Now().Add(5 * time.Second)
	var queuedCh <-chan Item
	for eng.Stats().Lanes["batch"].Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("batch head never queued")
		}
		if queuedCh != nil {
			t.Fatal("first batch submission not queued with the worker gated")
		}
		queuedCh = eng.Submit(context.Background(), bj)
	}
	time.Sleep(20 * time.Millisecond) // age the head past the 5ms target

	item := <-eng.Submit(context.Background(), bj)
	var ov *OverloadError
	if !errors.As(item.Err, &ov) {
		t.Fatalf("aged-queue submit err = %v, want *OverloadError", item.Err)
	}
	if ov.QueueDelay < 5*time.Millisecond || ov.RetryAfter < time.Second {
		t.Fatalf("overload detail = %+v", ov)
	}

	block.open()
	if item := <-leaderCh; item.Err != nil {
		t.Fatalf("leader: %v", item.Err)
	}
	if item := <-queuedCh; item.Err != nil {
		t.Fatalf("queued job: %v", item.Err)
	}
}

// TestAdaptivePoolGrowsAndShrinks saturates a Workers=1, MaxWorkers=3
// pool and checks it grows under pressure, runs more than one job at
// once, and shrinks back to the base once idle.
func TestAdaptivePoolGrowsAndShrinks(t *testing.T) {
	eng := New(Config{
		Workers:      1,
		MaxWorkers:   3,
		GrowInterval: time.Nanosecond,
		ShrinkIdle:   10 * time.Millisecond,
	})
	defer eng.Close()

	gates := make([]*gate, 3)
	started := make(chan int, 3)
	var chs []<-chan Item
	base := testJobs(t, 1)[0]
	for i := range gates {
		gates[i] = newGate()
		g := gates[i]
		idx := i
		job := base
		job.Solver = probeSolver{fn: func() {
			started <- idx
			g.wait()
		}}
		chs = append(chs, eng.Submit(context.Background(), job))
	}

	// All three jobs must end up running concurrently: the pool grew from
	// 1 to 3. (Each probe blocks its worker until its gate opens, so only
	// growth can start the later jobs.)
	runningAll := time.After(10 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case <-started:
		case <-runningAll:
			t.Fatalf("only %d jobs started; pool did not grow (stats %+v)", i, eng.Stats())
		}
	}
	st := eng.Stats()
	if st.Workers != 3 || st.Grown != 2 || st.MinWorkers != 1 || st.MaxWorkers != 3 {
		t.Fatalf("grown stats %+v", st)
	}

	for _, g := range gates {
		g.open()
	}
	for _, ch := range chs {
		if item := <-ch; item.Err != nil {
			t.Fatal(item.Err)
		}
	}

	// Idle surplus workers retire back to the base size.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = eng.Stats()
		if st.Workers == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never shrank: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Shrunk != 2 {
		t.Fatalf("shrunk = %d, want 2 (stats %+v)", st.Shrunk, st)
	}
}

// TestQueuedJobCancelledByContextCountsExpired re-checks the queue-timeout
// contract under the lane machinery: the expired job is answered without
// running, counted in the lane's Expired, and never in Completed.
func TestQueuedJobCancelledByContextCountsExpired(t *testing.T) {
	eng := New(Config{Workers: 1})
	defer eng.Close()

	block := newGate()
	leader := testJobs(t, 1)[0]
	leader.Solver = gatedSolver{g: block}
	leaderCh := eng.Submit(context.Background(), leader)
	waitBusy(t, eng, 1)

	ctx, cancel := context.WithCancel(context.Background())
	queued := testJobs(t, 1)[0]
	queued.Lane = LaneBatch
	ch := eng.Submit(ctx, queued)
	cancel()
	item := <-ch
	if !errors.Is(item.Err, ErrQueueTimeout) || !errors.Is(item.Err, context.Canceled) {
		t.Fatalf("cancelled queued item err = %v", item.Err)
	}

	block.open()
	if item := <-leaderCh; item.Err != nil {
		t.Fatalf("leader: %v", item.Err)
	}
	st := eng.Stats()
	if st.Lanes["batch"].Expired != 1 || st.Lanes["batch"].Completed != 0 {
		t.Fatalf("batch lane counters %+v", st.Lanes["batch"])
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1", st.Completed)
	}
}

// TestCloseFailsQueuedTasks closes an engine with queued work and checks
// every queued task is answered with ErrClosed.
func TestCloseFailsQueuedTasks(t *testing.T) {
	eng := New(Config{Workers: 1})
	block := newGate()
	leader := testJobs(t, 1)[0]
	leader.Solver = gatedSolver{g: block}
	leaderCh := eng.Submit(context.Background(), leader)
	waitBusy(t, eng, 1)

	var chs []<-chan Item
	base := testJobs(t, 1)[0]
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Lanes["interactive"].Queued < 3 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		if len(chs) >= 3 {
			break
		}
		chs = append(chs, eng.Submit(context.Background(), base))
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Close()
	}()
	for _, ch := range chs {
		if item := <-ch; !errors.Is(item.Err, ErrClosed) {
			t.Errorf("queued task err = %v, want ErrClosed", item.Err)
		}
	}
	block.open()
	if item := <-leaderCh; item.Err != nil {
		t.Errorf("in-flight leader failed: %v", item.Err)
	}
	<-done
}
