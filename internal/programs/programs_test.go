package programs

import (
	"math"
	"testing"

	"repro/internal/taskgraph"
)

func TestCatalogHasFourPrograms(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog size = %d", len(cat))
	}
	wantKeys := []string{"NE", "GJ", "FFT", "MM"}
	for i, k := range wantKeys {
		if cat[i].Key != k {
			t.Errorf("catalog[%d] = %q, want %q", i, cat[i].Key, k)
		}
	}
}

func TestByKey(t *testing.T) {
	p, err := ByKey("FFT")
	if err != nil || p.Key != "FFT" {
		t.Fatalf("ByKey(FFT) = %+v, %v", p, err)
	}
	if _, err := ByKey("nope"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestTaskCountsMatchPaperExactly(t *testing.T) {
	for _, p := range Catalog() {
		g := p.Build()
		if g.NumTasks() != p.Paper.Tasks {
			t.Errorf("%s: %d tasks, paper says %d", p.Key, g.NumTasks(), p.Paper.Tasks)
		}
	}
}

func TestAllProgramsValidate(t *testing.T) {
	for _, p := range Catalog() {
		g := p.Build()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", p.Key, err)
		}
		if len(g.Roots()) == 0 || len(g.Leaves()) == 0 {
			t.Errorf("%s: no roots or leaves", p.Key)
		}
	}
}

func TestCalibratedDurationsMatchTable1(t *testing.T) {
	for _, p := range Catalog() {
		g := p.Build()
		st, err := g.ComputeStats(PaperBandwidth)
		if err != nil {
			t.Fatalf("%s: %v", p.Key, err)
		}
		// Calibration makes the means exact up to float rounding.
		if math.Abs(st.AvgLoad-p.Paper.AvgDur) > 1e-6 {
			t.Errorf("%s: avg duration %.4f, paper %.2f", p.Key, st.AvgLoad, p.Paper.AvgDur)
		}
		if math.Abs(st.AvgComm-p.Paper.AvgComm) > 1e-6 {
			t.Errorf("%s: avg comm %.4f, paper %.2f", p.Key, st.AvgComm, p.Paper.AvgComm)
		}
		// C/C ratio follows from the two means.
		if math.Abs(st.CCRatio-p.Paper.CCRatio) > 0.01 {
			t.Errorf("%s: C/C %.3f, paper %.3f", p.Key, st.CCRatio, p.Paper.CCRatio)
		}
	}
}

func TestMaxSpeedupNearPaper(t *testing.T) {
	// The maximum speedup follows from the generated structure; the
	// generators are designed to land near the published values. FFT's
	// two-layer decomposition caps it lower than the paper's 40.85, so it
	// gets a wider tolerance.
	tolerance := map[string]float64{"NE": 0.10, "GJ": 0.05, "MM": 0.05, "FFT": 0.25}
	for _, p := range Catalog() {
		g := p.Build()
		ms, err := g.MaxSpeedup()
		if err != nil {
			t.Fatalf("%s: %v", p.Key, err)
		}
		rel := math.Abs(ms-p.Paper.MaxSpeedup) / p.Paper.MaxSpeedup
		if rel > tolerance[p.Key] {
			t.Errorf("%s: max speedup %.2f, paper %.2f (rel err %.1f%% > %.0f%%)",
				p.Key, ms, p.Paper.MaxSpeedup, 100*rel, 100*tolerance[p.Key])
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, p := range Catalog() {
		g1, g2 := p.Build(), p.Build()
		if g1.NumTasks() != g2.NumTasks() || g1.NumEdges() != g2.NumEdges() {
			t.Fatalf("%s: nondeterministic shape", p.Key)
		}
		e1, e2 := g1.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("%s: edge %d differs", p.Key, i)
			}
		}
		for i := 0; i < g1.NumTasks(); i++ {
			if g1.Load(taskgraph.TaskID(i)) != g2.Load(taskgraph.TaskID(i)) {
				t.Fatalf("%s: load %d differs", p.Key, i)
			}
		}
	}
}

func TestNewtonEulerStructure(t *testing.T) {
	g := NewtonEuler()
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 12 {
		t.Errorf("NE depth = %d, want 12 (6 forward + 6 backward stages)", d)
	}
	// Scalar program: every edge carries one variable's worth of bits
	// (uniform volumes after calibration).
	edges := g.Edges()
	for _, e := range edges[1:] {
		if math.Abs(e.Bits-edges[0].Bits) > 1e-9 {
			t.Errorf("NE edge volumes not uniform: %g vs %g", e.Bits, edges[0].Bits)
			break
		}
	}
	if len(g.Roots()) != 10 {
		t.Errorf("NE roots = %d, want 10 (first forward stage)", len(g.Roots()))
	}
}

func TestGaussJordanStructure(t *testing.T) {
	g := GaussJordan()
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	// root + 10 × (normalize + update) alternation.
	if d != 21 {
		t.Errorf("GJ depth = %d, want 21", d)
	}
	if len(g.Roots()) != 1 {
		t.Errorf("GJ roots = %v, want single distribute task", g.Roots())
	}
}

func TestMatrixMultiplyStructure(t *testing.T) {
	g := MatrixMultiply()
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("MM depth = %d, want 3 (init, broadcast, product)", d)
	}
	if len(g.Leaves()) != 100 {
		t.Errorf("MM leaves = %d, want 100 products", len(g.Leaves()))
	}
	// Every task has in-degree <= 1: no gather hot spots.
	for i := 0; i < g.NumTasks(); i++ {
		if g.InDegree(taskgraph.TaskID(i)) > 1 {
			t.Errorf("MM task %d has in-degree %d", i, g.InDegree(taskgraph.TaskID(i)))
		}
	}
}

func TestFFTStructure(t *testing.T) {
	g := FFT()
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 {
		t.Errorf("FFT depth = %d, want 3 (rows, columns, collect)", d)
	}
	if len(g.Roots()) != 36 {
		t.Errorf("FFT roots = %d, want 36 row transforms", len(g.Roots()))
	}
	if len(g.Leaves()) != 1 {
		t.Errorf("FFT leaves = %d, want 1 collect", len(g.Leaves()))
	}
}

func TestGrahamAnomalyInstance(t *testing.T) {
	g := GrahamAnomaly()
	if g.NumTasks() != 9 {
		t.Fatalf("tasks = %d, want 9", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// T1 < T9 and T4 < T5..T8.
	if _, ok := g.EdgeBits(0, 8); !ok {
		t.Error("missing T1 < T9")
	}
	for _, s := range []taskgraph.TaskID{4, 5, 6, 7} {
		if _, ok := g.EdgeBits(3, s); !ok {
			t.Errorf("missing T4 < T%d", s+1)
		}
	}
	// The critical-path bound on 3 processors is 10 (T1 + T9).
	lb, err := g.LowerBoundMakespan(3)
	if err != nil || math.Abs(lb-10) > 1e-9 {
		t.Errorf("LB = %g, %v; want 10", lb, err)
	}
}
