// Package programs generates the four benchmark taskgraphs of the paper's
// evaluation (§6, Table 1):
//
//	Newton-Euler inverse dynamics (NE)   95 tasks, scalar operations
//	Gauss-Jordan linear solver (GJ)     111 tasks, vector operations
//	Fast Fourier Transform (FFT)         73 tasks, vector operations
//	Matrix Multiply (MM)                111 tasks, vector operations
//
// The authors' exact graphs are not published; these generators rebuild
// the dependence *structure* of each computation and then calibrate task
// durations and edge volumes so the Table 1 characteristics (task count,
// average duration, average communication time at 10 Mb/s, C/C ratio,
// maximum speedup) match the paper. Task counts are exact; the continuous
// characteristics land within a few percent (expt.Table1 prints the
// measured and published values side by side).
package programs

import (
	"fmt"

	"repro/internal/taskgraph"
)

// PaperBandwidth is the link bandwidth (bits per µs) the paper's Table 1
// communication times assume: a 10 Mb/s link.
const PaperBandwidth = 10.0

// BitsPerVariable is the paper's data size per program variable.
const BitsPerVariable = 40.0

// Table1Row holds the published characteristics of one program (paper
// Table 1). Times in µs.
type Table1Row struct {
	Tasks      int
	AvgDur     float64
	AvgComm    float64
	CCRatio    float64 // fraction, e.g. 0.43 for 43 %
	MaxSpeedup float64
}

// Program couples a benchmark graph builder with its published
// characteristics.
type Program struct {
	Key   string // short identifier: "NE", "GJ", "FFT", "MM"
	Title string
	Paper Table1Row
	Build func() *taskgraph.Graph
}

// Catalog returns the four benchmark programs in the paper's Table 1
// order.
func Catalog() []Program {
	return []Program{
		{
			Key:   "NE",
			Title: "Newton-Euler Inverse Dynamics",
			Paper: Table1Row{Tasks: 95, AvgDur: 9.12, AvgComm: 3.96, CCRatio: 0.430, MaxSpeedup: 7.86},
			Build: NewtonEuler,
		},
		{
			Key:   "GJ",
			Title: "Gauss-Jordan Linear Solver",
			Paper: Table1Row{Tasks: 111, AvgDur: 84.77, AvgComm: 6.85, CCRatio: 0.081, MaxSpeedup: 9.14},
			Build: GaussJordan,
		},
		{
			Key:   "FFT",
			Title: "Fast Fourier Transform",
			Paper: Table1Row{Tasks: 73, AvgDur: 72.74, AvgComm: 6.41, CCRatio: 0.088, MaxSpeedup: 40.85},
			Build: FFT,
		},
		{
			Key:   "MM",
			Title: "Matrix Multiply",
			Paper: Table1Row{Tasks: 111, AvgDur: 73.96, AvgComm: 7.21, CCRatio: 0.097, MaxSpeedup: 82.10},
			Build: MatrixMultiply,
		},
	}
}

// ByKey returns the catalog program with the given key.
func ByKey(key string) (Program, error) {
	for _, p := range Catalog() {
		if p.Key == key {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("programs: unknown program %q", key)
}

// calibrate rescales all task loads so the mean duration equals avgDur and
// all edge volumes so the mean transfer time at PaperBandwidth equals
// avgComm.
func calibrate(g *taskgraph.Graph, avgDur, avgComm float64) *taskgraph.Graph {
	n := g.NumTasks()
	if n > 0 && g.TotalLoad() > 0 {
		g.ScaleLoads(avgDur * float64(n) / g.TotalLoad())
	}
	e := g.NumEdges()
	if e > 0 && g.TotalBits() > 0 {
		targetBits := avgComm * PaperBandwidth * float64(e)
		g.ScaleBits(targetBits / g.TotalBits())
	}
	return g
}

// NewtonEuler builds the 95-task Newton-Euler inverse dynamics graph for
// a 6-joint manipulator: an input task, a 6-stage forward recursion
// (velocities and accelerations propagate from the base to the tip) and a
// 6-stage backward recursion (forces and torques propagate back). Each
// stage holds about 8 scalar operations: one on the recursion chain,
// satellites that continue their own operand stream, and every fourth
// satellite additionally coupled to the recursion chain. The resulting
// in-degree is close to one — scalar dataflow graphs are tree-like — so a
// locality-aware scheduler can keep most producer/consumer pairs on one
// processor. Every edge carries one 40-bit variable (scalar operations),
// giving the paper's 43 % communication-to-computation ratio.
func NewtonEuler() *taskgraph.Graph {
	g := taskgraph.New("Newton-Euler")
	// 12 recursion stages (6 forward, 6 backward) of scalar operations;
	// the first stage tasks read locally available joint state (no shared
	// scatter task, so all processors start immediately as in the paper's
	// Figure 2). The forward pass is wider than the backward pass — link
	// velocities and accelerations for all joints can be evaluated eagerly
	// while forces and torques reduce toward the base — which keeps a
	// surplus of ready candidates competing for the free processors.
	widths := []int{10, 10, 10, 10, 8, 8, 8, 8, 6, 6, 6, 5} // 95 tasks

	stageName := func(stage int) string {
		if stage < 6 {
			return fmt.Sprintf("fwd%d", stage+1)
		}
		return fmt.Sprintf("bwd%d", 12-stage)
	}
	// Operand-stream loads vary mildly around the chain load: the streams
	// stay loosely synchronized (several processors go idle near the same
	// instant, producing multi-task annealing packets), while no satellite
	// chain is systematically longer than the recursion chain; the
	// critical path then runs through ~12 mean-load tasks, matching the
	// paper's maximum speedup of ≈7.9 for 95 tasks.
	relLoad := func(stage, i int) float64 {
		if i == 0 {
			return 1.0 // recursion chain operation
		}
		switch (stage + 3*i) % 4 {
		case 0:
			return 0.88
		case 1:
			return 1.12
		case 2:
			return 0.95
		default:
			return 1.05
		}
	}

	var prev []taskgraph.TaskID
	for stage, w := range widths {
		cur := make([]taskgraph.TaskID, 0, w)
		for i := 0; i < w; i++ {
			id := g.AddTask(fmt.Sprintf("%s.op%d", stageName(stage), i), relLoad(stage, i))
			cur = append(cur, id)
		}
		if stage > 0 {
			for i, id := range cur {
				// Continue the same operand stream (the chain continues
				// the chain; satellites continue their own stream).
				primary := i
				if primary >= len(prev) {
					primary = len(prev) - 1
				}
				g.MustAddEdge(prev[primary], id, BitsPerVariable)
				// A rotating subset of satellites also reads the neighbor
				// operand stream of the previous joint (cross products
				// couple a link's own quantities with its neighbor's);
				// rotation spreads both the coupling latency and the σ
				// send overhead across streams instead of concentrating
				// them on the recursion chain, whose processor would
				// otherwise be preempted on every stage.
				if cpl := i - 1; i > 0 && (stage+i)%4 == 2 {
					if cpl >= len(prev) {
						cpl = len(prev) - 1
					}
					if cpl != primary {
						g.MustAddEdge(prev[cpl], id, BitsPerVariable)
					}
				}
			}
		}
		prev = cur
	}
	return calibrate(g, 9.12, 3.96)
}

// GaussJordan builds the 111-task Gauss-Jordan solver graph for a 10×10
// system: a distribution task, then 10 elimination steps, each with one
// pivot-row normalization (a short vector division) followed by 10 row
// updates (9 remaining matrix rows plus the right-hand side). Step k's
// normalization needs row k as updated by step k−1; every update needs
// the freshly normalized pivot row and its own row from the previous
// step. The critical path alternates normalize/update through all 10
// steps, which caps the maximum speedup near the paper's 9.14 despite
// 111 tasks.
func GaussJordan() *taskgraph.Graph {
	const n = 10
	g := taskgraph.New("Gauss-Jordan")
	root := g.AddTask("distribute", 4.4)

	rowBits := func(step int) float64 {
		// The active row shrinks as elimination proceeds: columns right of
		// the pivot plus the RHS entry.
		return BitsPerVariable * float64(n-step+1)
	}

	// prevUpd[r] is the task that last updated row r (rows 0..n-1; index n
	// is the right-hand side column).
	prevUpd := make([]taskgraph.TaskID, n+1)
	for r := range prevUpd {
		prevUpd[r] = root
	}
	for k := 0; k < n; k++ {
		norm := g.AddTask(fmt.Sprintf("norm%d", k), 1.0)
		g.MustAddEdge(prevUpd[k], norm, rowBits(k))
		for r := 0; r <= n; r++ {
			if r == k {
				continue
			}
			upd := g.AddTask(fmt.Sprintf("upd%d.%d", k, r), 13.6)
			g.MustAddEdge(norm, upd, rowBits(k))
			g.MustAddEdge(prevUpd[r], upd, rowBits(k))
			prevUpd[r] = upd
		}
		prevUpd[k] = norm
	}
	return calibrate(g, 84.77, 6.85)
}

// MatrixMultiply builds the 111-task matrix multiply graph for 10×10
// matrices partitioned into vector operations: an initialization task, a
// 10-way broadcast layer (one task per row block of A, fanning the
// operands out in parallel rather than through a single serializing
// scatter hub), and 100 independent inner-product tasks
// C[i][j] = A[i]·B[·][j]. With all products independent and every task
// having in-degree one, the critical path is just init → broadcast →
// product, giving the paper's extreme maximum speedup of ≈82 for 111
// tasks, and a locality-aware scheduler can keep each row's products near
// its broadcast task.
func MatrixMultiply() *taskgraph.Graph {
	const n = 10
	g := taskgraph.New("Matrix Multiply")
	root := g.AddTask("init", 0.062)
	vecBits := BitsPerVariable * float64(n)
	for i := 0; i < n; i++ {
		bcast := g.AddTask(fmt.Sprintf("bcast-row%d", i), 0.186)
		g.MustAddEdge(root, bcast, vecBits)
		for j := 0; j < n; j++ {
			prod := g.AddTask(fmt.Sprintf("dot%d.%d", i, j), 1.0)
			g.MustAddEdge(bcast, prod, 2*vecBits) // row of A, column of B
		}
	}
	return calibrate(g, 73.96, 7.21)
}

// FFT builds the 73-task FFT graph using the two-step (four-step
// decimation) decomposition of a 1296-point transform as a 36×36 array:
// 36 independent row transforms, a twiddle-multiplied transpose feeding
// 36 independent column transforms (each column transform reads one block
// from each of the 6 row groups), and one bit-reversal/collect task. Two
// full layers of 36 vector tasks bound the maximum speedup near
// T1/(2·avg) ≈ 34 — the most parallel of the four programs, matching the
// paper's qualitative ranking (its Table 1 lists 40.85).
func FFT() *taskgraph.Graph {
	const size = 36
	const groups = 6
	g := taskgraph.New("FFT")
	rows := make([]taskgraph.TaskID, size)
	for i := 0; i < size; i++ {
		rows[i] = g.AddTask(fmt.Sprintf("rowfft%d", i), 1.0)
	}
	collect := g.AddTask("collect", 0.14)
	blockBits := BitsPerVariable * float64(size) / float64(groups)
	for j := 0; j < size; j++ {
		col := g.AddTask(fmt.Sprintf("colfft%d", j), 1.0)
		// Block transpose: column transform j reads one block from each
		// row group.
		grp := j % groups
		for b := 0; b < groups; b++ {
			src := rows[grp*groups+b]
			g.MustAddEdge(src, col, blockBits)
		}
		g.MustAddEdge(col, collect, BitsPerVariable)
	}
	return calibrate(g, 72.74, 6.41)
}

// GrahamAnomaly returns the classic 9-task instance from Graham's
// multiprocessing-anomaly analysis (Graham 1969), with the task times
// reduced by one unit — the configuration in which scheduling by the
// original task list produces a makespan of 13 on three processors while
// the optimum (achieved by HLF and by the annealing scheduler; equal to
// the critical-path bound) is 10. The paper observes that "the SA
// algorithm is able to optimally solve the Graham list scheduling
// anomalies" (§6b). Edges carry one variable each.
func GrahamAnomaly() *taskgraph.Graph {
	g := taskgraph.New("Graham anomaly")
	durs := []float64{2, 1, 1, 1, 3, 3, 3, 3, 8}
	ids := make([]taskgraph.TaskID, len(durs))
	for i, d := range durs {
		ids[i] = g.AddTask(fmt.Sprintf("T%d", i+1), d)
	}
	g.MustAddEdge(ids[0], ids[8], BitsPerVariable) // T1 < T9
	for _, succ := range []int{4, 5, 6, 7} {       // T4 < T5..T8
		g.MustAddEdge(ids[3], ids[succ], BitsPerVariable)
	}
	return g
}
