package solver

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/topology"
)

// saOptions returns the default SA options with the given seed.
func saOptions(seed int64) core.Options {
	opt := core.DefaultOptions()
	opt.Seed = seed
	return opt
}

// swapMembers replaces the portfolio member list for one test.
func swapMembers(t *testing.T, members []string) {
	t.Helper()
	old := PortfolioMembers
	PortfolioMembers = members
	t.Cleanup(func() { PortfolioMembers = old })
}

var registerPortfolioTestSolvers sync.Once

// prunableSolver cooperates with the portfolio's Bound hook: it waits
// until the hook reports that a simulation clock of +Inf can no longer
// win (i.e. an incumbent landed), then returns the hook's error — exactly
// what a machsim run whose clock passed the incumbent would do.
type prunableSolver struct{}

func (prunableSolver) Name() string        { return "prunabletest" }
func (prunableSolver) Description() string { return "test-only member that prunes itself" }

// sawBound records whether the last Solve saw a Bound hook installed.
var sawBound atomic.Bool

func (prunableSolver) Solve(ctx context.Context, req Request) (*machsim.Result, error) {
	sawBound.Store(req.Sim.Bound != nil)
	if req.Sim.Bound == nil {
		// Pruning disabled: answer like hlf.
		s, err := Get("hlf")
		if err != nil {
			return nil, err
		}
		return s.Solve(ctx, req)
	}
	for {
		if err := req.Sim.Bound(math.MaxFloat64); err != nil {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Microsecond):
		}
	}
}

// stuckSolver blocks until its context ends.
type stuckSolver struct{}

func (stuckSolver) Name() string        { return "stucktest" }
func (stuckSolver) Description() string { return "test-only member that never finishes" }

func (stuckSolver) Solve(ctx context.Context, req Request) (*machsim.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func ensurePortfolioTestSolvers(t *testing.T) {
	t.Helper()
	registerPortfolioTestSolvers.Do(func() {
		for _, s := range []Solver{prunableSolver{}, stuckSolver{}} {
			if err := Register(s); err != nil {
				t.Fatalf("register %s: %v", s.Name(), err)
			}
		}
	})
}

func portfolioTestRequest(t *testing.T) Request {
	t.Helper()
	prog, err := programs.ByKey("NE")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	return Request{
		Graph: prog.Build(),
		Topo:  topo,
		Comm:  topology.DefaultCommParams(),
		SA:    saOptions(1991),
	}
}

// TestPortfolioPrunesDoomedMember: a member whose own lower bound passes
// the incumbent best is cancelled mid-run; the race's winner is the
// surviving member, the result carries Pruned and is flagged Raced.
func TestPortfolioPrunesDoomedMember(t *testing.T) {
	ensurePortfolioTestSolvers(t)
	swapMembers(t, []string{"hlf", "prunabletest"})

	req := portfolioTestRequest(t)
	res, err := Solve(context.Background(), "portfolio", req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "HLF" {
		t.Fatalf("winner = %q, want the surviving HLF member", res.Policy)
	}
	if res.Pruned != 1 {
		t.Fatalf("Pruned = %d, want 1", res.Pruned)
	}
	if !res.Raced {
		t.Fatal("pruned race not flagged Raced")
	}
}

// TestPortfolioPruningDisabled: with DisablePruning no Bound hook is
// installed and nothing is pruned.
func TestPortfolioPruningDisabled(t *testing.T) {
	ensurePortfolioTestSolvers(t)
	swapMembers(t, []string{"hlf", "prunabletest"})

	req := portfolioTestRequest(t)
	req.Portfolio.DisablePruning = true
	res, err := Solve(context.Background(), "portfolio", req)
	if err != nil {
		t.Fatal(err)
	}
	if sawBound.Load() {
		t.Fatal("Bound hook installed despite DisablePruning")
	}
	if res.Pruned != 0 {
		t.Fatalf("Pruned = %d, want 0", res.Pruned)
	}
}

// TestPortfolioMemberTimeout: a per-member deadline cancels only the
// stuck member — the race completes, wins with the healthy member, and
// is flagged Raced because a member lost to its own budget.
func TestPortfolioMemberTimeout(t *testing.T) {
	ensurePortfolioTestSolvers(t)
	swapMembers(t, []string{"hlf", "stucktest"})

	req := portfolioTestRequest(t)
	req.Portfolio.MemberTimeout = 20 * time.Millisecond
	start := time.Now()
	res, err := Solve(context.Background(), "portfolio", req)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("member timeout did not bound the race: %v", elapsed)
	}
	if res.Policy != "HLF" {
		t.Fatalf("winner = %q, want HLF", res.Policy)
	}
	if !res.Raced {
		t.Fatal("member-deadline race not flagged Raced")
	}
	if res.Pruned != 0 {
		t.Fatalf("Pruned = %d, want 0 (deadline, not bound)", res.Pruned)
	}
}

// TestPortfolioPruningNeverChangesWinner: for real members, the pruned
// winner equals the winner with pruning disabled — pruning only cancels
// members that strictly cannot win.
func TestPortfolioPruningNeverChangesWinner(t *testing.T) {
	for _, key := range []string{"NE", "GJ", "MM", "FFT"} {
		prog, err := programs.ByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := topology.Hypercube(3)
		if err != nil {
			t.Fatal(err)
		}
		req := Request{
			Graph: prog.Build(),
			Topo:  topo,
			Comm:  topology.DefaultCommParams(),
			SA:    saOptions(7),
		}
		pruned, err := Solve(context.Background(), "portfolio", req)
		if err != nil {
			t.Fatal(err)
		}
		req.Portfolio.DisablePruning = true
		plain, err := Solve(context.Background(), "portfolio", req)
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Policy != plain.Policy || pruned.Makespan != plain.Makespan {
			t.Errorf("%s: pruning changed the winner: %s/%.6f vs %s/%.6f",
				key, pruned.Policy, pruned.Makespan, plain.Policy, plain.Makespan)
		}
	}
}

// TestErrPrunedDetectable: the machsim interrupt wrapper keeps ErrPruned
// reachable through errors.Is (the counter depends on it).
func TestErrPrunedDetectable(t *testing.T) {
	prog, err := programs.ByKey("NE")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Graph: prog.Build(), Topo: topo, Comm: topology.DefaultCommParams(), SA: saOptions(1)}
	req.Sim.Bound = func(now float64) error { return ErrPruned }
	_, err = Solve(context.Background(), "hlf", req)
	if !errors.Is(err, ErrPruned) {
		t.Fatalf("err = %v, want ErrPruned through the machsim wrapper", err)
	}
}

// TestPortfolioBoundUpdates: every member makespan that strictly improves
// the shared incumbent counts as a bound update. The first finisher
// always tightens the bound from +Inf, so any healthy race reports at
// least one; a deliberately worse second member must not add more.
func TestPortfolioBoundUpdates(t *testing.T) {
	swapMembers(t, []string{"hlf", "sa"})
	req := portfolioTestRequest(t)
	res, err := Solve(context.Background(), "portfolio", req)
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundUpdates < 1 {
		t.Fatalf("BoundUpdates = %d, want >= 1 (first finisher tightens +Inf)", res.BoundUpdates)
	}
	if res.BoundUpdates > len(PortfolioMembers) {
		t.Fatalf("BoundUpdates = %d exceeds member count %d", res.BoundUpdates, len(PortfolioMembers))
	}
}
