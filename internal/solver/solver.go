// Package solver puts every scheduler in the repository behind one
// Solver interface and a named registry, so the HTTP service, the CLI
// tools and the experiment harness all resolve policies the same way.
//
// Three solvers go beyond the plain machsim policies:
//
//   - "optimal" runs the exact branch-and-bound of internal/optimal
//     (communication-free requests with at most MaxOptimalTasks tasks);
//   - "auto" picks "optimal" when the request is eligible and falls back
//     to "sa" otherwise;
//   - "portfolio" races several solvers concurrently under the request's
//     context deadline and returns the best (lowest-makespan) result.
//
// Solvers are stateless descriptors: every Solve call builds fresh policy
// state, so one Solver value may serve concurrent requests. Determinism
// is preserved — for a fixed Request (including its seed) the result is
// identical regardless of concurrency.
package solver

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/list"
	"repro/internal/machsim"
	"repro/internal/obs"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

// Request bundles one scheduling problem instance: the program graph, the
// machine, and the policy knobs.
type Request struct {
	Graph *taskgraph.Graph
	Topo  *topology.Topology
	Comm  topology.CommParams
	// SA carries the annealing options (seed, weights, restarts). The seed
	// also drives the "random" policy.
	SA core.Options
	// Sim configures the execution simulator (e.g. RecordGantt). The
	// Interrupt hook is chained with the Solve context's cancellation.
	Sim machsim.Options
	// Arena, when non-nil, is a caller-owned simulator arena the solve
	// reuses instead of drawing one from the shared pool: the engine's
	// worker goroutines each own one, so back-to-back solves on a worker
	// reuse warm buffers. The arena is rebound to this request's model, so
	// it carries no state between problems and never changes the result.
	// It must not be shared by concurrent solves; the portfolio therefore
	// strips it from the member requests it races. Results produced
	// through an arena are detached copies, exactly like the pooled path.
	Arena *machsim.Simulator
	// Sched, when non-nil, is a caller-owned SA scheduler arena
	// (core.NewSchedulerArena) that the "sa" policy Resets and reuses
	// instead of constructing a fresh core.Scheduler per solve — the
	// cold-path analogue of Arena. Reset rebinds it completely, so a
	// pooled scheduler never changes the result. Like Arena it must not
	// be shared by concurrent solves; the portfolio strips it from the
	// member requests it races.
	Sched *core.Scheduler
	// Portfolio tunes the "portfolio" solver for this request; the zero
	// value keeps the defaults (no per-member deadline, incumbent-bound
	// pruning enabled).
	Portfolio PortfolioOptions
}

// Validate reports whether the request can be solved at all.
func (r Request) Validate() error {
	if r.Graph == nil {
		return fmt.Errorf("solver: nil taskgraph")
	}
	if r.Topo == nil {
		return fmt.Errorf("solver: nil topology")
	}
	return machsim.Model{Graph: r.Graph, Topo: r.Topo, Comm: r.Comm}.Validate()
}

// Solver produces a complete simulated (or exact) schedule for a request.
type Solver interface {
	// Name is the registry key ("sa", "etf", "portfolio", ...).
	Name() string
	// Description is a one-line human-readable summary.
	Description() string
	// Solve computes the schedule. Implementations honor ctx cancellation
	// at epoch (or search-node) granularity and return ctx's error wrapped
	// when interrupted.
	Solve(ctx context.Context, req Request) (*machsim.Result, error)
}

// Info describes one registered solver.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// NewPolicy builds a machsim policy by name — the registry's policy-backed
// solvers, the CLI and the experiment harness share this constructor.
func NewPolicy(name string, g *taskgraph.Graph, topo *topology.Topology,
	comm topology.CommParams, saOpt core.Options) (machsim.Policy, error) {

	switch strings.ToLower(name) {
	case "sa", "anneal", "annealing":
		return core.NewScheduler(g, topo, comm, saOpt)
	case "hlf":
		return list.NewHLF(g)
	case "hlfcomm", "hlf+comm":
		return list.NewCommAwareHLF(g, topo, comm)
	case "etf":
		return list.NewETF(g, topo, comm)
	case "lpt":
		return list.NewLPT(g), nil
	case "misf":
		return list.NewMISF(g)
	case "fifo":
		return list.NewFIFO(), nil
	case "random":
		return list.NewRandom(saOpt.Seed), nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want sa, hlf, hlfcomm, etf, lpt, misf, fifo or random)", name)
	}
}

// policySolver adapts a NewPolicy-constructible policy to the Solver
// interface.
type policySolver struct {
	name string
	desc string
}

func (p policySolver) Name() string        { return p.name }
func (p policySolver) Description() string { return p.desc }

func (p policySolver) Solve(ctx context.Context, req Request) (*machsim.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if p.name == "sa" && (req.SA.Cooperative || req.SA.Tempering) && req.SA.Interrupt == nil {
		// Thread the request context into the cooperative stage barrier:
		// a cancelled request — a pruned portfolio member, a disconnected
		// client, a lost engine race — stops annealing at the next
		// barrier instead of finishing the packet. Abandonment itself
		// stays seed-deterministic; only cancelled (discarded) runs ever
		// observe this hook firing.
		req.SA.Interrupt = ctx.Err
	}
	if p.name == "sa" && req.Sim.Bound != nil && req.SA.Bound == nil {
		// Thread the simulator's incumbent-bound hook into the cooperative
		// stage barrier too: a portfolio SA member whose epoch clock has
		// fallen past the incumbent best stops mid-anneal instead of
		// finishing the packet and dying at the next event-batch poll.
		req.SA.Bound = req.Sim.Bound
	}
	var pol machsim.Policy
	if p.name == "sa" && req.Sched != nil {
		// The caller-owned scheduler arena replaces the per-solve
		// core.NewScheduler construction; Reset rebinds it completely.
		if err := req.Sched.Reset(req.Graph, req.Topo, req.Comm, req.SA); err != nil {
			return nil, err
		}
		pol = req.Sched
	} else {
		var err error
		pol, err = NewPolicy(p.name, req.Graph, req.Topo, req.Comm, req.SA)
		if err != nil {
			return nil, err
		}
	}
	res, err := simulate(ctx, pol, req)
	if err == nil {
		if sc, ok := pol.(*core.Scheduler); ok {
			// res is a detached clone, so folding scheduler-side counters
			// into it never races with arena reuse.
			res.RestartsAbandoned = sc.RestartsAbandoned()
			res.WarmEpochsSaved = sc.WarmSavedStages()
			if tr := obs.FromContext(ctx); tr != nil {
				annotateAnneal(tr, sc)
			}
		}
	}
	return res, err
}

// annotateAnneal folds the SA scheduler's per-packet reports into solve
// annotations: how many annealing packets ran and how much total cost
// they burned down — the trace-level view of the paper's §6a packet
// statistics.
func annotateAnneal(tr *obs.Trace, sc *core.Scheduler) {
	var moves, accepted, stages int
	var initial, final float64
	packets := sc.Packets()
	for _, p := range packets {
		moves += p.Moves
		accepted += p.Accepted
		stages += p.Stages
		initial += p.InitialCost
		final += p.FinalCost
	}
	tr.Annotate("sa_packets", strconv.Itoa(len(packets)))
	tr.Annotate("anneal_stages", strconv.Itoa(stages))
	tr.Annotate("anneal_moves", strconv.Itoa(moves))
	tr.Annotate("anneal_accepted", strconv.Itoa(accepted))
	if n := sc.RestartsAbandoned(); n > 0 {
		tr.Annotate("restarts_abandoned", strconv.Itoa(n))
	}
	if n := sc.Exchanges(); n > 0 {
		tr.Annotate("replica_exchanges", strconv.Itoa(n))
	}
	if n := sc.WarmSavedStages(); n > 0 {
		tr.Annotate("warm_epochs_saved", strconv.Itoa(n))
	}
	tr.Annotate("initial_cost", strconv.FormatFloat(initial, 'g', -1, 64))
	tr.Annotate("final_cost", strconv.FormatFloat(final, 'g', -1, 64))
}

// simulate runs the machine simulator with the context's cancellation
// chained into the simulator's interrupt hook, on the request's arena
// when one is provided and the shared pool otherwise.
func simulate(ctx context.Context, pol machsim.Policy, req Request) (*machsim.Result, error) {
	opts := req.Sim
	prev := opts.Interrupt
	opts.Interrupt = func() error {
		if prev != nil {
			if err := prev(); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	model := machsim.Model{Graph: req.Graph, Topo: req.Topo, Comm: req.Comm}
	var res *machsim.Result
	if req.Arena != nil {
		if err := req.Arena.Bind(model, opts); err != nil {
			return nil, err
		}
		r, err := req.Arena.Run(pol)
		if err != nil {
			return nil, err
		}
		res = r.Clone()
	} else {
		var err error
		res, err = machsim.Run(model, pol, opts)
		if err != nil {
			return nil, err
		}
	}
	if tr := obs.FromContext(ctx); tr != nil {
		tr.Annotate("sim_epochs", strconv.Itoa(len(res.Epochs)))
		tr.Annotate("sim_forced", strconv.Itoa(res.Forced))
		tr.Annotate("makespan", strconv.FormatFloat(res.Makespan, 'g', -1, 64))
	}
	return res, nil
}

// registryMu guards registry and aliases: the built-in set is fixed, but
// Register may extend it at runtime (e.g. test instrumentation solvers).
var registryMu sync.RWMutex

// registry holds the solvers in a stable listing order.
var registry = []Solver{
	policySolver{"sa", "staged simulated annealing with restarts (the paper's scheduler); reports SA(r=N)"},
	policySolver{"hlf", "Highest Level First list scheduler (the paper's baseline)"},
	policySolver{"hlfcomm", "HLF with greedy communication-aware placement"},
	policySolver{"etf", "Earliest Task First, the strongest deterministic communication-aware list scheduler"},
	policySolver{"lpt", "Longest Processing Time list scheduler"},
	policySolver{"misf", "Most Immediate Successors First list scheduler"},
	policySolver{"fifo", "task-ID-order list scheduler (Graham's given list)"},
	policySolver{"random", "random list scheduler, the weakest baseline"},
	optimalSolver{},
	autoSolver{},
	portfolioSolver{},
}

// aliases maps alternate spellings onto registry names.
var aliases = map[string]string{
	"anneal":    "sa",
	"annealing": "sa",
	"hlf+comm":  "hlfcomm",
	"exact":     "optimal",
	"race":      "portfolio",
}

// Register adds a solver to the registry. Its name must be lower-case and
// not collide with a registered solver or alias. Built-in solvers cover
// normal operation; Register exists for callers that plug in bespoke or
// instrumented solvers (e.g. gated test solvers proving stream ordering).
func Register(s Solver) error {
	name := s.Name()
	if name == "" || name != strings.ToLower(name) {
		return fmt.Errorf("solver: invalid solver name %q (want non-empty lower-case)", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := aliases[name]; ok {
		return fmt.Errorf("solver: name %q collides with an alias", name)
	}
	for _, have := range registry {
		if have.Name() == name {
			return fmt.Errorf("solver: solver %q already registered", name)
		}
	}
	registry = append(registry, s)
	return nil
}

// Get resolves a solver by (case-insensitive) name or alias.
func Get(name string) (Solver, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	registryMu.RLock()
	defer registryMu.RUnlock()
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	for _, s := range registry {
		if s.Name() == key {
			return s, nil
		}
	}
	return nil, fmt.Errorf("solver: unknown solver %q (known: %s)", name, strings.Join(namesLocked(), ", "))
}

// Solve resolves name and solves the request with it.
func Solve(ctx context.Context, name string, req Request) (*machsim.Result, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, req)
}

// Names returns the registered solver names in listing order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name()
	}
	return out
}

// List returns name + description for every registered solver, in listing
// order, with aliases appended alphabetically at the end.
func List() []Info {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Info, 0, len(registry)+len(aliases))
	for _, s := range registry {
		out = append(out, Info{Name: s.Name(), Description: s.Description()})
	}
	keys := make([]string, 0, len(aliases))
	for a := range aliases {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	for _, a := range keys {
		out = append(out, Info{Name: a, Description: "alias for " + aliases[a]})
	}
	return out
}
