package solver

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/machsim"
	"repro/internal/programs"
	"repro/internal/taskgraph"
	"repro/internal/topology"
)

func testRequest(t *testing.T, key string, nocomm bool) Request {
	t.Helper()
	p, err := programs.ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	comm := topology.DefaultCommParams()
	if nocomm {
		comm = comm.NoComm()
	}
	opt := core.DefaultOptions()
	opt.Seed = 1991
	opt.Restarts = 2
	return Request{Graph: p.Build(), Topo: topo, Comm: comm, SA: opt}
}

func TestRegistryResolvesEveryName(t *testing.T) {
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, s.Name())
		}
		if s.Description() == "" {
			t.Errorf("solver %q has no description", name)
		}
	}
	for alias, canon := range aliases {
		s, err := Get(alias)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		if s.Name() != canon {
			t.Errorf("alias %q resolved to %q, want %q", alias, s.Name(), canon)
		}
	}
	if _, err := Get("no-such-solver"); err == nil {
		t.Error("unknown solver did not error")
	}
	if len(List()) < len(Names()) {
		t.Error("List shorter than Names")
	}
}

func TestNewPolicyNames(t *testing.T) {
	req := testRequest(t, "NE", false)
	for _, name := range []string{"sa", "SA", "anneal", "hlf", "hlfcomm", "hlf+comm", "etf", "lpt", "misf", "fifo", "random"} {
		p, err := NewPolicy(name, req.Graph, req.Topo, req.Comm, req.SA)
		if err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("policy %q has no name", name)
		}
	}
	if _, err := NewPolicy("magic", req.Graph, req.Topo, req.Comm, req.SA); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSolveDeterministic(t *testing.T) {
	req := testRequest(t, "NE", false)
	a, err := Solve(context.Background(), "sa", req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(context.Background(), "sa", testRequest(t, "NE", false))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("same seed, different makespans: %g vs %g", a.Makespan, b.Makespan)
	}
	for i := range a.Proc {
		if a.Proc[i] != b.Proc[i] || a.Start[i] != b.Start[i] {
			t.Fatalf("task %d placed differently across runs", i)
		}
	}
	if a.Policy != "SA(r=2)" {
		t.Errorf("policy name %q, want SA(r=2)", a.Policy)
	}
}

func TestPortfolioNeverWorseThanMembers(t *testing.T) {
	best := math.Inf(1)
	for _, name := range PortfolioMembers {
		if name == "optimal" {
			continue // not eligible with communication on
		}
		res, err := Solve(context.Background(), name, testRequest(t, "FFT", false))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Makespan < best {
			best = res.Makespan
		}
	}
	res, err := Solve(context.Background(), "portfolio", testRequest(t, "FFT", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > best+1e-9 {
		t.Fatalf("portfolio makespan %g worse than best member %g", res.Makespan, best)
	}
}

func TestOptimalEligibility(t *testing.T) {
	// Communication on: rejected.
	if _, err := Solve(context.Background(), "optimal", testRequest(t, "NE", false)); err == nil {
		t.Error("optimal accepted a request with communication enabled")
	}
	// Too many tasks: rejected even without communication.
	if _, err := Solve(context.Background(), "optimal", testRequest(t, "NE", true)); err == nil {
		t.Error("optimal accepted a 95-task request")
	}
}

func smallRequest(t *testing.T) Request {
	t.Helper()
	g := taskgraph.New("fork-join")
	a := g.AddTask("a", 4)
	for i := 0; i < 5; i++ {
		m := g.AddTask("m", float64(3+i))
		g.MustAddEdge(a, m, 0)
	}
	z := g.AddTask("z", 2)
	for id := taskgraph.TaskID(1); id <= 5; id++ {
		g.MustAddEdge(id, z, 0)
	}
	topo, err := topology.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seed = 7
	return Request{Graph: g, Topo: topo, Comm: topology.DefaultCommParams().NoComm(), SA: opt}
}

func TestAutoPicksOptimalForSmallNocommGraphs(t *testing.T) {
	res, err := Solve(context.Background(), "auto", smallRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "optimal" {
		t.Fatalf("auto picked %q, want optimal", res.Policy)
	}
	// The exact makespan must not exceed any heuristic's on the same
	// (communication-free) instance.
	for _, name := range []string{"hlf", "etf", "sa"} {
		h, err := Solve(context.Background(), name, smallRequest(t))
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > h.Makespan+1e-9 {
			t.Errorf("optimal %g worse than %s %g", res.Makespan, name, h.Makespan)
		}
	}
	// Sanity on the synthesized result shape.
	if res.SequentialTime <= 0 || res.Speedup <= 0 || len(res.Finish) != smallRequest(t).Graph.NumTasks() {
		t.Errorf("synthesized exact result incomplete: %+v", res)
	}
}

func TestAutoFallsBackToSA(t *testing.T) {
	res, err := Solve(context.Background(), "auto", testRequest(t, "NE", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "SA(r=2)" {
		t.Fatalf("auto picked %q, want SA(r=2)", res.Policy)
	}
}

func TestCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, "hlf", testRequest(t, "NE", false)); err == nil {
		t.Error("cancelled context did not abort the simulation")
	}
	if _, err := Solve(ctx, "portfolio", testRequest(t, "NE", false)); err == nil {
		t.Error("cancelled context did not abort the portfolio")
	}
}

func TestRequestValidation(t *testing.T) {
	req := testRequest(t, "NE", false)
	req.Graph = nil
	if _, err := Solve(context.Background(), "sa", req); err == nil {
		t.Error("nil graph accepted")
	}
	req = testRequest(t, "NE", false)
	req.Topo = nil
	if _, err := Solve(context.Background(), "sa", req); err == nil {
		t.Error("nil topology accepted")
	}
	req = testRequest(t, "NE", false)
	req.Graph = taskgraph.New("empty")
	if _, err := Solve(context.Background(), "hlf", req); err == nil {
		t.Error("empty graph accepted")
	}
}

var _ machsim.Policy = (*core.Scheduler)(nil)

// TestPortfolioEarlyCancelAtLowerBound: when a member reaches the graph's
// makespan lower bound its result cannot be beaten, the portfolio cancels
// the field, and the result is flagged Raced (timing-dependent identity).
func TestPortfolioEarlyCancelAtLowerBound(t *testing.T) {
	g := taskgraph.New("independent")
	for i := 0; i < 6; i++ {
		g.AddTask("t", 5)
	}
	topo, err := topology.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seed = 1
	req := Request{Graph: g, Topo: topo, Comm: topology.DefaultCommParams().NoComm(), SA: opt}
	res, err := Solve(context.Background(), "portfolio", req)
	if err != nil {
		t.Fatal(err)
	}
	// lb = max(longest task, T1/P) = max(5, 30/8) = 5.
	if math.Abs(res.Makespan-5) > 1e-9 {
		t.Fatalf("makespan %g, want the lower bound 5", res.Makespan)
	}
	if !res.Raced {
		t.Fatal("lower-bound finish did not flag the result as raced")
	}
}

// TestPortfolioNotRacedAwayFromLowerBound: when no member can reach the
// bound the portfolio runs every member out and stays deterministic.
func TestPortfolioNotRacedAwayFromLowerBound(t *testing.T) {
	g := taskgraph.New("three-on-two")
	for i := 0; i < 3; i++ {
		g.AddTask("t", 10)
	}
	topo, err := topology.Hypercube(1)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Seed = 1
	req := Request{Graph: g, Topo: topo, Comm: topology.DefaultCommParams().NoComm(), SA: opt}
	res, err := Solve(context.Background(), "portfolio", req)
	if err != nil {
		t.Fatal(err)
	}
	// lb = max(10, 30/2) = 15 is unreachable: three equal tasks on two
	// processors finish at 20.
	if math.Abs(res.Makespan-20) > 1e-9 {
		t.Fatalf("makespan %g, want 20", res.Makespan)
	}
	if res.Raced {
		t.Fatal("bound-unreachable portfolio flagged as raced")
	}
}

// TestArenaSolveMatchesPooledSolve: a solve through a caller-owned arena
// is byte-identical to the pooled path for every policy-backed solver.
func TestArenaSolveMatchesPooledSolve(t *testing.T) {
	arena := machsim.NewArena()
	for _, name := range []string{"sa", "hlf", "etf", "hlfcomm", "lpt", "misf", "fifo", "random"} {
		req := testRequest(t, "FFT", false)
		req.Arena = arena
		got, err := Solve(context.Background(), name, req)
		if err != nil {
			t.Fatalf("%s (arena): %v", name, err)
		}
		want, err := Solve(context.Background(), name, testRequest(t, "FFT", false))
		if err != nil {
			t.Fatalf("%s (pooled): %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: arena solve diverged from pooled solve", name)
		}
	}
}
