package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machsim"
	"repro/internal/obs"
)

// PortfolioMembers are the solvers the portfolio races, in tie-breaking
// order: on equal makespans the earlier member wins, so the result for a
// fixed request is deterministic regardless of goroutine interleaving.
// "optimal" only participates when the request is eligible for it.
var PortfolioMembers = []string{"sa", "etf", "hlfcomm", "hlf", "optimal"}

// PortfolioOptions tunes the portfolio race per request
// (Request.Portfolio). The zero value keeps the defaults.
type PortfolioOptions struct {
	// MemberTimeout bounds every member's solve individually, on top of
	// the shared request deadline: a member that exceeds its budget is
	// cancelled without dooming the whole race. 0 means no per-member
	// deadline. Which members beat their budget is a wall-clock fact, so
	// a race decided by a member timeout is flagged Result.Raced (and
	// therefore never cached by the service).
	MemberTimeout time.Duration
	// DisablePruning turns off incumbent-bound cancellation: by default a
	// running member whose simulation clock — a monotone lower bound on
	// its final makespan — strictly exceeds the best completed member's
	// makespan is cancelled, since it can no longer win.
	DisablePruning bool
}

// ErrPruned is the cause reported by a portfolio member cancelled mid-run
// because its own makespan lower bound exceeded the incumbent best.
var ErrPruned = errors.New("solver: portfolio member pruned by incumbent bound")

// portfolioSolver races the member solvers concurrently under the shared
// request context and returns the best (lowest finish time) completed
// result. Members that error — including those cancelled by a deadline or
// pruned by the incumbent bound — are skipped; the call only fails when
// every member fails.
//
// Early cancellation, whole-field: the makespan of any schedule is bounded
// below by max(critical path, total work / processors) over the taskgraph.
// As soon as one member completes at that bound its makespan cannot be
// beaten, so the remaining members are cancelled through their Interrupt
// hooks instead of running out the deadline.
//
// Early cancellation, per-member: a running member's simulation clock only
// advances, so it is a lower bound on that member's final makespan. Once
// it strictly exceeds the incumbent best completed makespan the member
// cannot win — not even on the index tie-break, which requires equality —
// and is cancelled through the machsim Bound hook. Pruning therefore never
// changes which schedule wins; but whether a doomed member is pruned or
// finishes is a wall-clock fact, so pruned races carry Result.Raced and
// Result.Pruned — the service serves them but never caches them (the same
// rule deadline-raced portfolio results already follow).
type portfolioSolver struct{}

func (portfolioSolver) Name() string { return "portfolio" }

func (portfolioSolver) Description() string {
	return fmt.Sprintf("races %s concurrently under the request deadline, cancelling members that reach the graph's lower bound or fall behind the incumbent best, and returns the best finish time",
		strings.Join(PortfolioMembers, ", "))
}

// incumbent is the best completed makespan of the race so far, shared
// between member goroutines as atomic float bits.
type incumbent struct {
	bits atomic.Uint64
}

func (inc *incumbent) init() { inc.bits.Store(math.Float64bits(math.Inf(1))) }

func (inc *incumbent) best() float64 { return math.Float64frombits(inc.bits.Load()) }

// offer lowers the incumbent to m if m is better (CAS-min) and reports
// whether it actually tightened the bound.
func (inc *incumbent) offer(m float64) bool {
	for {
		old := inc.bits.Load()
		if m >= math.Float64frombits(old) {
			return false
		}
		if inc.bits.CompareAndSwap(old, math.Float64bits(m)) {
			return true
		}
	}
}

func (portfolioSolver) Solve(ctx context.Context, req Request) (*machsim.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	members := make([]Solver, 0, len(PortfolioMembers))
	for _, name := range PortfolioMembers {
		if name == "optimal" {
			if (optimalSolver{}).Eligible(req) != nil {
				continue
			}
		}
		s, err := Get(name)
		if err != nil {
			return nil, err
		}
		members = append(members, s)
	}

	// Members race concurrently: they must not share the caller's arena
	// or scheduler.
	mreq := req
	mreq.Arena = nil
	mreq.Sched = nil
	popt := req.Portfolio

	lb, lbErr := req.Graph.LowerBoundMakespan(req.Topo.N())
	// The race's trace writes are the portfolio's alone: member contexts
	// are stripped so racing goroutines cannot interleave annotations —
	// their runs come back as per-member sub-stages recorded below.
	tr := obs.FromContext(ctx)
	cctx, cancel := context.WithCancel(obs.With(ctx, nil))
	defer cancel()

	var inc incumbent
	inc.init()
	var raced atomic.Bool
	var boundUpdates atomic.Int64
	results := make([]*machsim.Result, len(members))
	errs := make([]error, len(members))
	starts := make([]time.Time, len(members))
	walls := make([]time.Duration, len(members))
	outcomes := make([]string, len(members))
	var wg sync.WaitGroup
	for i, s := range members {
		wg.Add(1)
		go func(i int, s Solver) {
			defer wg.Done()
			mctx := cctx
			if popt.MemberTimeout > 0 {
				var mcancel context.CancelFunc
				mctx, mcancel = context.WithTimeout(cctx, popt.MemberTimeout)
				defer mcancel()
			}
			r := mreq
			if !popt.DisablePruning {
				// The simulation clock is a monotone lower bound on this
				// member's final makespan; strictly past the incumbent it
				// cannot win, not even on the equality tie-break.
				r.Sim.Bound = func(now float64) error {
					if now > inc.best() {
						return ErrPruned
					}
					return nil
				}
				// Publish the member's makespan into the incumbent the moment
				// its simulation completes — before result assembly — so the
				// other members' Bound (and the SA member's cooperative stage
				// barrier) tighten as early as possible.
				r.Sim.Publish = func(m float64) {
					if inc.offer(m) {
						boundUpdates.Add(1)
					}
				}
			}
			starts[i] = time.Now()
			results[i], errs[i] = s.Solve(mctx, r)
			walls[i] = time.Since(starts[i])
			if errs[i] != nil {
				switch {
				case errors.Is(errs[i], ErrPruned):
					outcomes[i] = "pruned"
				case popt.MemberTimeout > 0 && errors.Is(errs[i], context.DeadlineExceeded) && cctx.Err() == nil:
					// This member lost to its own budget, not the shared
					// deadline: a wall-clock verdict, so the race is tainted.
					raced.Store(true)
					outcomes[i] = "timeout"
				case errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded):
					outcomes[i] = "cancelled"
				default:
					outcomes[i] = "error"
				}
				return
			}
			outcomes[i] = "finish"
			// Members whose solvers bypass machsim's Publish hook (e.g.
			// "optimal") still feed the incumbent here; for the rest this is
			// a no-op repeat of the Publish-time offer.
			if inc.offer(results[i].Makespan) {
				boundUpdates.Add(1)
			}
			if lbErr == nil && results[i].Makespan <= lb+1e-9 {
				// Store before cancel: anyone observing the cancellation
				// also sees that an early cancel (not the deadline) fired.
				raced.Store(true)
				cancel()
			}
		}(i, s)
	}
	wg.Wait()

	pruned := 0
	for _, err := range errs {
		if errors.Is(err, ErrPruned) {
			pruned++
		}
	}

	best := -1
	for i, res := range results {
		if res == nil {
			continue
		}
		if best < 0 || res.Makespan < results[best].Makespan {
			best = i
		}
	}
	if best >= 0 {
		outcomes[best] = "win"
	}
	stats := make([]machsim.MemberStat, len(members))
	for i, s := range members {
		stats[i] = machsim.MemberStat{Member: s.Name(), Outcome: outcomes[i], WallNS: walls[i].Nanoseconds()}
		if results[i] != nil {
			stats[i].Makespan = results[i].Makespan
		}
		if tr != nil {
			tr.ObserveSub("portfolio:"+s.Name(), starts[i], walls[i],
				obs.KV{Key: "outcome", Val: outcomes[i]},
				obs.KV{Key: "makespan", Val: strconv.FormatFloat(stats[i].Makespan, 'g', -1, 64)})
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("solver: every portfolio member failed: %w", errors.Join(errs...))
	}
	if tr != nil {
		tr.Annotate("portfolio_winner", members[best].Name())
	}
	out := results[best]
	out.Members = stats
	out.Pruned = pruned
	// How many times the shared bound tightened is a timing fact like the
	// member stats: the service folds it into counters, never into cached
	// bodies.
	out.BoundUpdates = int(boundUpdates.Load())
	if tr != nil && out.BoundUpdates > 0 {
		tr.Annotate("portfolio_bound_updates", strconv.Itoa(out.BoundUpdates))
	}
	// Raced is set whenever an early cancel fired, even if every member
	// happened to outrun the cancellation (in which case this particular
	// outcome was the deterministic best-of-all): whether a member gets
	// dropped is itself a timing fact, so flagging on the trigger rather
	// than the casualty count keeps the cacheability verdict for a given
	// request deterministic. The cost is bounded — the only requests this
	// leaves uncached are those whose optimum equals the trivial lower
	// bound, i.e. the cheapest ones to re-solve. Pruned members taint the
	// race the same way: the winner is unchanged, but the statistics and
	// error set depend on the clock.
	if raced.Load() || pruned > 0 {
		out.Raced = true
	}
	return out, nil
}
