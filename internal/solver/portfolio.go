package solver

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/machsim"
)

// PortfolioMembers are the solvers the portfolio races, in tie-breaking
// order: on equal makespans the earlier member wins, so the result for a
// fixed request is deterministic regardless of goroutine interleaving.
// "optimal" only participates when the request is eligible for it.
var PortfolioMembers = []string{"sa", "etf", "hlfcomm", "hlf", "optimal"}

// portfolioSolver races the member solvers concurrently under the shared
// request context and returns the best (lowest finish time) completed
// result. Members that error — including those cancelled by the deadline —
// are skipped; the call only fails when every member fails.
//
// Early cancellation: the makespan of any schedule is bounded below by
// max(critical path, total work / processors) over the taskgraph. As soon
// as one member completes at that bound its makespan cannot be beaten, so
// the remaining members are cancelled through their Interrupt hooks
// instead of running out the deadline. Which members finish before the
// cancellation lands is a wall-clock fact, so such results carry
// Result.Raced — the service serves them but never caches them (the same
// rule deadline-raced portfolio results already follow).
type portfolioSolver struct{}

func (portfolioSolver) Name() string { return "portfolio" }

func (portfolioSolver) Description() string {
	return fmt.Sprintf("races %s concurrently under the request deadline, cancelling the field once a member reaches the graph's lower bound, and returns the best finish time",
		strings.Join(PortfolioMembers, ", "))
}

func (portfolioSolver) Solve(ctx context.Context, req Request) (*machsim.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	members := make([]Solver, 0, len(PortfolioMembers))
	for _, name := range PortfolioMembers {
		if name == "optimal" {
			if (optimalSolver{}).Eligible(req) != nil {
				continue
			}
		}
		s, err := Get(name)
		if err != nil {
			return nil, err
		}
		members = append(members, s)
	}

	// Members race concurrently: they must not share the caller's arena.
	mreq := req
	mreq.Arena = nil

	lb, lbErr := req.Graph.LowerBoundMakespan(req.Topo.N())
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var raced atomic.Bool
	results := make([]*machsim.Result, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, s := range members {
		wg.Add(1)
		go func(i int, s Solver) {
			defer wg.Done()
			results[i], errs[i] = s.Solve(cctx, mreq)
			if errs[i] == nil && lbErr == nil && results[i].Makespan <= lb+1e-9 {
				// Store before cancel: anyone observing the cancellation
				// also sees that an early cancel (not the deadline) fired.
				raced.Store(true)
				cancel()
			}
		}(i, s)
	}
	wg.Wait()

	best := -1
	for i, res := range results {
		if res == nil {
			continue
		}
		if best < 0 || res.Makespan < results[best].Makespan {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("solver: every portfolio member failed: %w", errors.Join(errs...))
	}
	out := results[best]
	// Raced is set whenever the early cancel fired, even if every member
	// happened to outrun the cancellation (in which case this particular
	// outcome was the deterministic best-of-all): whether a member gets
	// dropped is itself a timing fact, so flagging on the trigger rather
	// than the casualty count keeps the cacheability verdict for a given
	// request deterministic. The cost is bounded — the only requests this
	// leaves uncached are those whose optimum equals the trivial lower
	// bound, i.e. the cheapest ones to re-solve.
	if raced.Load() {
		out.Raced = true
	}
	return out, nil
}
