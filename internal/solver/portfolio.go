package solver

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/machsim"
)

// PortfolioMembers are the solvers the portfolio races, in tie-breaking
// order: on equal makespans the earlier member wins, so the result for a
// fixed request is deterministic regardless of goroutine interleaving.
// "optimal" only participates when the request is eligible for it.
var PortfolioMembers = []string{"sa", "etf", "hlfcomm", "hlf", "optimal"}

// portfolioSolver races the member solvers concurrently under the shared
// request context and returns the best (lowest finish time) completed
// result. Members that error — including those cancelled by the deadline —
// are skipped; the call only fails when every member fails.
type portfolioSolver struct{}

func (portfolioSolver) Name() string { return "portfolio" }

func (portfolioSolver) Description() string {
	return fmt.Sprintf("races %s concurrently under the request deadline and returns the best finish time",
		strings.Join(PortfolioMembers, ", "))
}

func (portfolioSolver) Solve(ctx context.Context, req Request) (*machsim.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	members := make([]Solver, 0, len(PortfolioMembers))
	for _, name := range PortfolioMembers {
		if name == "optimal" {
			if (optimalSolver{}).Eligible(req) != nil {
				continue
			}
		}
		s, err := Get(name)
		if err != nil {
			return nil, err
		}
		members = append(members, s)
	}

	results := make([]*machsim.Result, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, s := range members {
		wg.Add(1)
		go func(i int, s Solver) {
			defer wg.Done()
			results[i], errs[i] = s.Solve(ctx, req)
		}(i, s)
	}
	wg.Wait()

	best := -1
	for i, res := range results {
		if res == nil {
			continue
		}
		if best < 0 || res.Makespan < results[best].Makespan {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("solver: every portfolio member failed: %w", errors.Join(errs...))
	}
	return results[best], nil
}
