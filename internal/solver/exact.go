package solver

import (
	"context"
	"fmt"

	"repro/internal/machsim"
	"repro/internal/optimal"
	"repro/internal/taskgraph"
)

// MaxOptimalTasks bounds the instances the "optimal" solver accepts. The
// branch-and-bound is exponential; above this size it routinely blows its
// node budget, so "auto" and "portfolio" only try it at or below.
const MaxOptimalTasks = 13

// optimalSolver wraps the exact branch-and-bound of internal/optimal. It
// only accepts communication-free requests (the solver's P|prec|Cmax model
// has no communication terms), keeping its makespans comparable with the
// simulated policies on the same request.
type optimalSolver struct{}

func (optimalSolver) Name() string { return "optimal" }

func (optimalSolver) Description() string {
	return fmt.Sprintf("exact branch-and-bound minimum makespan (requires nocomm and at most %d tasks)", MaxOptimalTasks)
}

// Eligible reports whether the request fits the exact solver's model.
func (optimalSolver) Eligible(req Request) error {
	if req.Comm.Scale != 0 {
		return fmt.Errorf("solver: optimal requires a communication-free request (comm scale %g != 0)", req.Comm.Scale)
	}
	if n := req.Graph.NumTasks(); n > MaxOptimalTasks {
		return fmt.Errorf("solver: optimal accepts at most %d tasks, got %d", MaxOptimalTasks, n)
	}
	return nil
}

func (o optimalSolver) Solve(ctx context.Context, req Request) (*machsim.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := o.Eligible(req); err != nil {
		return nil, err
	}
	res, err := optimal.Makespan(req.Graph, req.Topo.N(), optimal.Options{
		Interrupt: func() error { return ctx.Err() },
	})
	if err != nil {
		return nil, err
	}
	return exactToResult(req, res), nil
}

// exactToResult lifts an exact schedule into the machsim.Result shape the
// rest of the system (wire encoding, Gantt-free reporting) consumes.
func exactToResult(req Request, res *optimal.Result) *machsim.Result {
	g := req.Graph
	n := g.NumTasks()
	out := &machsim.Result{
		Policy:         "optimal",
		Makespan:       res.Makespan,
		SequentialTime: g.TotalLoad(),
		Start:          append([]float64(nil), res.Start...),
		Finish:         make([]float64, n),
		Proc:           append([]int(nil), res.Proc...),
		Procs:          make([]machsim.ProcStat, req.Topo.N()),
	}
	for i := 0; i < n; i++ {
		load := g.Load(taskgraph.TaskID(i))
		out.Finish[i] = res.Start[i] + load
		if p := res.Proc[i]; p >= 0 && p < len(out.Procs) {
			out.Procs[p].ComputeTime += load
			out.Procs[p].TasksRun++
		}
	}
	if out.Makespan > 0 {
		out.Speedup = out.SequentialTime / out.Makespan
	}
	return out
}

// autoSolver picks the exact solver when the request is eligible and the
// annealing scheduler otherwise.
type autoSolver struct{}

func (autoSolver) Name() string { return "auto" }

func (autoSolver) Description() string {
	return fmt.Sprintf("optimal for communication-free graphs of at most %d tasks, otherwise sa", MaxOptimalTasks)
}

func (autoSolver) Solve(ctx context.Context, req Request) (*machsim.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	var exact optimalSolver
	if exact.Eligible(req) == nil {
		return exact.Solve(ctx, req)
	}
	return policySolver{name: "sa"}.Solve(ctx, req)
}
