// Package buildinfo carries the build's identity: the version string is
// injected at link time with
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3"
//
// and falls back to "dev" for plain go-build/go-test binaries. Every
// binary's -version flag and the dtserve_build_info metric read it here,
// so the fleet can be audited for version skew from a scrape.
package buildinfo

import "runtime"

// Version is the ldflags-injected build version ("dev" when unset).
var Version = "dev"

// GoVersion reports the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }
