// Package gantt renders machine-simulator traces as text Gantt charts in
// the style of the paper's Figure 2: per-processor timelines with task
// blocks, and message-handling marks above the compute row (sends) and
// below it (receives and routing).
package gantt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machsim"
)

// Config controls chart rendering.
type Config struct {
	// Width is the number of timeline columns (default 100).
	Width int
	// From and To bound the rendered time window; To = 0 means the full
	// trace (the paper's Figure 2 shows only the start of the program).
	From, To float64
	// ShowLegend appends the block legend.
	ShowLegend bool
}

// Render draws the intervals of a simulation result. Processors are shown
// top to bottom; each processor occupies three text rows: sends, compute,
// receives/routes.
func Render(res *machsim.Result, nprocs int, cfg Config) string {
	if cfg.Width <= 0 {
		cfg.Width = 100
	}
	to := cfg.To
	if to <= 0 {
		to = res.Makespan
	}
	from := cfg.From
	if to <= from {
		to = from + 1
	}
	span := to - from
	col := func(t float64) int {
		c := int(float64(cfg.Width) * (t - from) / span)
		if c < 0 {
			c = 0
		}
		if c > cfg.Width {
			c = cfg.Width
		}
		return c
	}

	byProc := make([][]machsim.Interval, nprocs)
	for _, iv := range res.Gantt {
		if iv.End < from || iv.Start > to || iv.Proc < 0 || iv.Proc >= nprocs {
			continue
		}
		byProc[iv.Proc] = append(byProc[iv.Proc], iv)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Gantt chart: %s, t = %.2f .. %.2f µs (makespan %.2f µs, speedup %.2f)\n",
		res.Policy, from, to, res.Makespan, res.Speedup)
	for p := 0; p < nprocs; p++ {
		send := blankRow(cfg.Width)
		cpu := blankRow(cfg.Width)
		recv := blankRow(cfg.Width)
		sort.SliceStable(byProc[p], func(i, j int) bool { return byProc[p][i].Start < byProc[p][j].Start })
		for _, iv := range byProc[p] {
			lo, hi := col(iv.Start), col(iv.End)
			if hi <= lo {
				hi = lo + 1
				if hi > cfg.Width {
					lo, hi = cfg.Width-1, cfg.Width
				}
			}
			switch iv.Kind {
			case machsim.KindCompute:
				label := fmt.Sprintf("%d", iv.Task)
				fillBlock(cpu[lo:hi], label)
			case machsim.KindSend:
				fillMarks(send[lo:hi], 's')
			case machsim.KindReceive:
				fillMarks(recv[lo:hi], 'r')
			case machsim.KindRoute:
				fillMarks(recv[lo:hi], 'x')
			}
		}
		fmt.Fprintf(&b, "     %s\n", string(send))
		fmt.Fprintf(&b, "P%-3d %s\n", p, string(cpu))
		fmt.Fprintf(&b, "     %s\n", string(recv))
	}
	// Time axis.
	axis := blankRow(cfg.Width)
	for i := 0; i <= 4; i++ {
		c := i * cfg.Width / 4
		if c >= cfg.Width {
			c = cfg.Width - 1
		}
		axis[c] = '+'
	}
	fmt.Fprintf(&b, "     %s\n", string(axis))
	fmt.Fprintf(&b, "     %-*s%*.2f\n", cfg.Width/2, fmt.Sprintf("%.2f", from), cfg.Width-cfg.Width/2, to)
	if cfg.ShowLegend {
		b.WriteString("     legend: [=n=] task n computing, s send (σ), r receive (τ), x route (τ)\n")
	}
	return b.String()
}

func blankRow(w int) []byte {
	row := make([]byte, w)
	for i := range row {
		row[i] = ' '
	}
	return row
}

// fillBlock draws [==label==] clipped to the cell range.
func fillBlock(cells []byte, label string) {
	for i := range cells {
		cells[i] = '='
	}
	if len(cells) >= 2 {
		cells[0] = '['
		cells[len(cells)-1] = ']'
	}
	if len(label) <= len(cells)-2 {
		off := (len(cells) - len(label)) / 2
		copy(cells[off:], label)
	} else if len(label) <= len(cells) {
		copy(cells, label)
	}
}

func fillMarks(cells []byte, mark byte) {
	for i := range cells {
		cells[i] = mark
	}
}

// Utilization renders a one-line utilization summary per processor.
func Utilization(res *machsim.Result) string {
	var b strings.Builder
	for i, ps := range res.Procs {
		util := 0.0
		if res.Makespan > 0 {
			util = ps.ComputeTime / res.Makespan
		}
		fmt.Fprintf(&b, "P%-3d compute %8.2f µs  overhead %8.2f µs  tasks %3d  util %5.1f%%\n",
			i, ps.ComputeTime, ps.OverheadTime, ps.TasksRun, 100*util)
	}
	return b.String()
}
