package gantt

import (
	"strings"
	"testing"

	"repro/internal/machsim"
)

func sampleResult() *machsim.Result {
	return &machsim.Result{
		Policy:   "SA",
		Makespan: 100,
		Speedup:  2.5,
		Gantt: []machsim.Interval{
			{Proc: 0, Kind: machsim.KindCompute, Task: 3, Start: 0, End: 40},
			{Proc: 0, Kind: machsim.KindSend, Task: 5, From: 3, Start: 40, End: 47},
			{Proc: 1, Kind: machsim.KindReceive, Task: 5, From: 3, Start: 51, End: 60},
			{Proc: 1, Kind: machsim.KindCompute, Task: 5, Start: 60, End: 100},
		},
		Procs: []machsim.ProcStat{
			{ComputeTime: 40, OverheadTime: 7, TasksRun: 1},
			{ComputeTime: 40, OverheadTime: 9, TasksRun: 1},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	out := Render(sampleResult(), 2, Config{Width: 80, ShowLegend: true})
	for _, want := range []string{"P0", "P1", "SA", "legend", "makespan 100.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "sss") || !strings.Contains(out, "rrr") {
		t.Error("chart missing send/receive mark runs")
	}
	if !strings.Contains(out, "[") {
		t.Error("chart missing compute blocks")
	}
}

func TestRenderTaskLabelsAppear(t *testing.T) {
	out := Render(sampleResult(), 2, Config{Width: 120})
	if !strings.Contains(out, "3") || !strings.Contains(out, "5") {
		t.Errorf("task IDs missing:\n%s", out)
	}
}

func TestRenderWindowClips(t *testing.T) {
	out := Render(sampleResult(), 2, Config{Width: 60, To: 45})
	// The receive at [51,60] lies outside the window and must not appear.
	if strings.Contains(out, "rrr") {
		t.Errorf("clipped interval rendered:\n%s", out)
	}
}

func TestRenderDefaultsSane(t *testing.T) {
	out := Render(sampleResult(), 2, Config{})
	if len(out) == 0 {
		t.Fatal("empty chart")
	}
	lines := strings.Split(out, "\n")
	// 2 procs × 3 rows + header + axis rows.
	if len(lines) < 8 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestRenderZeroWidthIntervalsVisible(t *testing.T) {
	res := &machsim.Result{
		Policy:   "x",
		Makespan: 1000,
		Gantt: []machsim.Interval{
			{Proc: 0, Kind: machsim.KindRoute, Task: 1, Start: 500, End: 500.01},
		},
		Procs: []machsim.ProcStat{{}},
	}
	out := Render(res, 1, Config{Width: 40})
	if !strings.Contains(out, "x") {
		t.Errorf("sub-pixel route block lost:\n%s", out)
	}
}

func TestUtilization(t *testing.T) {
	out := Utilization(sampleResult())
	if !strings.Contains(out, "P0") || !strings.Contains(out, "40.0%") {
		t.Errorf("utilization output:\n%s", out)
	}
	if !strings.Contains(out, "overhead") {
		t.Error("missing overhead column")
	}
}
