package anneal

import (
	"math/rand"
	"testing"
)

func BenchmarkAcceptProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		AcceptProb(float64(i%7)-3, 0.5)
	}
}

func BenchmarkMinimizeToyProblem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		s := newTour(20, rng)
		if _, err := Minimize(s, Options{
			Cooling:       Geometric{T0: 2, Alpha: 0.9, NumStages: 40},
			MovesPerStage: 100,
			RNG:           rng,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
