package anneal

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGeometricSchedule(t *testing.T) {
	g := Geometric{T0: 10, Alpha: 0.5, NumStages: 4}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 5, 2.5, 1.25}
	for i, w := range want {
		if got := g.Temperature(i); got != w {
			t.Errorf("T(%d) = %g, want %g", i, got, w)
		}
	}
	if g.Stages() != 4 {
		t.Errorf("Stages = %d", g.Stages())
	}
}

func TestGeometricValidate(t *testing.T) {
	bad := []Geometric{
		{T0: 0, Alpha: 0.5, NumStages: 3},
		{T0: 1, Alpha: 0, NumStages: 3},
		{T0: 1, Alpha: 1, NumStages: 3},
		{T0: 1, Alpha: 0.5, NumStages: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted: %+v", i, g)
		}
	}
}

func TestLinearReachesZeroAndClamps(t *testing.T) {
	l := Linear{T0: 8, NumStages: 4}
	want := []float64{8, 6, 4, 2}
	for i, w := range want {
		if got := l.Temperature(i); got != w {
			t.Errorf("T(%d) = %g, want %g", i, got, w)
		}
	}
	if got := l.Temperature(100); got != 0 {
		t.Errorf("overrun T = %g, want clamp to 0", got)
	}
}

func TestLogarithmicDecreases(t *testing.T) {
	l := Logarithmic{C: 2, NumStages: 50}
	prev := l.Temperature(0)
	for k := 1; k < 50; k++ {
		cur := l.Temperature(k)
		if cur >= prev {
			t.Fatalf("T(%d) = %g >= T(%d) = %g", k, cur, k-1, prev)
		}
		prev = cur
	}
}

func TestConstant(t *testing.T) {
	c := Constant{T: 3, NumStages: 7}
	for k := 0; k < 7; k++ {
		if c.Temperature(k) != 3 {
			t.Fatalf("T(%d) = %g", k, c.Temperature(k))
		}
	}
}

func TestCoolingNames(t *testing.T) {
	for _, cs := range []Cooling{
		Geometric{T0: 1, Alpha: 0.9, NumStages: 5},
		Linear{T0: 1, NumStages: 5},
		Logarithmic{C: 1, NumStages: 5},
		Constant{T: 1, NumStages: 5},
	} {
		if cs.Name() == "" || !strings.Contains(cs.Name(), "(") {
			t.Errorf("uninformative name %q", cs.Name())
		}
	}
}

// Property: every schedule is non-increasing over its stages and
// non-negative.
func TestQuickSchedulesMonotone(t *testing.T) {
	f := func(rawT0, rawAlpha uint8) bool {
		t0 := float64(rawT0%100)/10 + 0.1
		alpha := float64(rawAlpha%89+10) / 100 // 0.10 .. 0.98
		schedules := []Cooling{
			Geometric{T0: t0, Alpha: alpha, NumStages: 30},
			Linear{T0: t0, NumStages: 30},
			Logarithmic{C: t0, NumStages: 30},
			Constant{T: t0, NumStages: 30},
		}
		for _, cs := range schedules {
			prev := cs.Temperature(0)
			for k := 1; k < cs.Stages(); k++ {
				cur := cs.Temperature(k)
				if cur < 0 || cur > prev+1e-12 {
					return false
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
