package anneal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAcceptProbBoundaries(t *testing.T) {
	// Equation (2): at Temp = 0 accept iff ΔF < 0; at Temp = ∞ probability ½.
	if got := AcceptProb(-1, 0); got != 1 {
		t.Errorf("B(-1, 0) = %g, want 1", got)
	}
	if got := AcceptProb(1, 0); got != 0 {
		t.Errorf("B(1, 0) = %g, want 0", got)
	}
	if got := AcceptProb(0, 0); got != 0 {
		t.Errorf("B(0, 0) = %g, want 0 (ΔF >= 0 rejected)", got)
	}
	if got := AcceptProb(3, math.Inf(1)); got != 0.5 {
		t.Errorf("B(3, ∞) = %g, want 0.5", got)
	}
	if got := AcceptProb(-3, math.Inf(1)); got != 0.5 {
		t.Errorf("B(-3, ∞) = %g, want 0.5", got)
	}
}

func TestAcceptProbMidRange(t *testing.T) {
	// B(ΔF, T) = 1/(1 + exp(ΔF/T)): improving moves > ½, worsening < ½.
	if got := AcceptProb(-1, 1); math.Abs(got-1/(1+math.Exp(-1))) > 1e-12 {
		t.Errorf("B(-1,1) = %g", got)
	}
	if got := AcceptProb(1, 1); got >= 0.5 {
		t.Errorf("B(1,1) = %g, want < 0.5", got)
	}
	if got := AcceptProb(0, 5); got != 0.5 {
		t.Errorf("B(0,5) = %g, want 0.5", got)
	}
	// Overflow guards.
	if got := AcceptProb(1e6, 1e-3); got != 0 {
		t.Errorf("huge ratio = %g, want 0", got)
	}
	if got := AcceptProb(-1e6, 1e-3); got != 1 {
		t.Errorf("huge negative ratio = %g, want 1", got)
	}
}

// Property: AcceptProb is a valid probability, decreasing in delta.
func TestQuickAcceptProbRange(t *testing.T) {
	f := func(d float64, rawT uint16) bool {
		temp := float64(rawT) / 100
		p := AcceptProb(d, temp)
		if p < 0 || p > 1 {
			return false
		}
		return AcceptProb(d+1, temp) <= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// tourState is a toy problem: minimize the sum of absolute adjacent
// differences of a permutation (sorted order is optimal). It follows the
// zero-allocation contract: the last swap is remembered in two ints and
// the best permutation lives in a reusable double buffer.
type tourState struct {
	perm   []int
	best   []int
	ui, uj int // indices of the last swap, for Undo
}

func (s *tourState) Cost() float64 {
	c := 0.0
	for i := 1; i < len(s.perm); i++ {
		c += math.Abs(float64(s.perm[i] - s.perm[i-1]))
	}
	return c
}

func (s *tourState) Propose(rng *rand.Rand) (float64, bool) {
	n := len(s.perm)
	if n < 2 {
		return 0, false
	}
	i, j := rng.Intn(n), rng.Intn(n)
	if i == j {
		j = (j + 1) % n
	}
	before := s.Cost()
	s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
	s.ui, s.uj = i, j
	return s.Cost() - before, true
}

func (s *tourState) Undo() { s.perm[s.ui], s.perm[s.uj] = s.perm[s.uj], s.perm[s.ui] }

func (s *tourState) SaveBest() { copy(s.best, s.perm) }

func (s *tourState) RestoreBest() { copy(s.perm, s.best) }

func newTour(n int, rng *rand.Rand) *tourState {
	return &tourState{perm: rng.Perm(n), best: make([]int, n)}
}

func TestMinimizeImprovesToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := newTour(12, rng)
	initial := s.Cost()
	res, err := Minimize(s, Options{
		Cooling:       Geometric{T0: 4, Alpha: 0.92, NumStages: 80},
		MovesPerStage: 200,
		RNG:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialCost != initial {
		t.Errorf("InitialCost = %g, want %g", res.InitialCost, initial)
	}
	if res.FinalCost > initial {
		t.Errorf("annealing worsened: %g -> %g", initial, res.FinalCost)
	}
	// Optimal cost for a permutation of 0..11 is 11 (sorted); annealing
	// with best-tracking should get at or near it.
	if res.FinalCost > 15 {
		t.Errorf("FinalCost = %g, want near-optimal (11)", res.FinalCost)
	}
	if math.Abs(s.Cost()-res.FinalCost) > 1e-9 {
		t.Errorf("state cost %g != reported %g (best not restored?)", s.Cost(), res.FinalCost)
	}
}

func TestMinimizeZeroTemperatureIsDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := newTour(10, rng)
	res, err := Minimize(s, Options{
		Cooling:       Constant{T: 0, NumStages: 30},
		MovesPerStage: 100,
		RNG:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With T = 0 only strictly improving moves are accepted, so the final
	// cost can never exceed the initial cost.
	if res.FinalCost > res.InitialCost {
		t.Errorf("descent increased cost: %g -> %g", res.InitialCost, res.FinalCost)
	}
}

func TestMinimizePlateauStops(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := newTour(4, rng)
	res, err := Minimize(s, Options{
		Cooling:       Constant{T: 0, NumStages: 1000},
		MovesPerStage: 50,
		PlateauStages: 5,
		RNG:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlateauStop {
		t.Error("plateau rule did not trigger on a converged descent")
	}
	if res.Stages >= 1000 {
		t.Errorf("ran all %d stages despite plateau", res.Stages)
	}
}

func TestMinimizeMoveCap(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	s := newTour(10, rng)
	res, err := Minimize(s, Options{
		Cooling:       Geometric{T0: 1, Alpha: 0.99, NumStages: 100},
		MovesPerStage: 100,
		MaxMoves:      123,
		RNG:           rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 123 || !res.CapStop {
		t.Errorf("Moves = %d CapStop = %v, want 123, true", res.Moves, res.CapStop)
	}
}

func TestMinimizeOnMoveObserver(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	s := newTour(8, rng)
	var seen int
	var lastCost float64
	res, err := Minimize(s, Options{
		Cooling:       Geometric{T0: 1, Alpha: 0.9, NumStages: 10},
		MovesPerStage: 20,
		RNG:           rng,
		OnMove: func(mi MoveInfo) {
			if mi.Move != seen {
				t.Fatalf("move index %d, want %d", mi.Move, seen)
			}
			seen++
			lastCost = mi.Cost
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != res.Moves {
		t.Errorf("observer saw %d moves, result says %d", seen, res.Moves)
	}
	_ = lastCost
}

func TestMinimizeErrors(t *testing.T) {
	s := newTour(5, rand.New(rand.NewSource(17)))
	if _, err := Minimize(s, Options{MovesPerStage: 10}); err != ErrNoCooling {
		t.Errorf("missing cooling: err = %v", err)
	}
	if _, err := Minimize(s, Options{Cooling: Constant{T: 1, NumStages: 5}}); err == nil {
		t.Error("zero MovesPerStage accepted")
	}
}

func TestMinimizeNoMovesProblem(t *testing.T) {
	s := &tourState{perm: []int{0}} // Propose returns ok=false
	res, err := Minimize(s, Options{
		Cooling:       Constant{T: 1, NumStages: 5},
		MovesPerStage: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Errorf("moves = %d on an immovable problem", res.Moves)
	}
}

func TestMinimizeDeterministicBySeed(t *testing.T) {
	run := func(seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		s := newTour(10, rng)
		res, err := Minimize(s, Options{
			Cooling:       Geometric{T0: 2, Alpha: 0.9, NumStages: 40},
			MovesPerStage: 50,
			RNG:           rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalCost
	}
	if run(99) != run(99) {
		t.Error("same seed produced different results")
	}
}

// The engine's accept/reject loop must not allocate: Propose/Undo return
// no closures and best-tracking reuses the Snapshotter double buffer. A
// whole Minimize run over a pre-allocated problem is therefore
// allocation-free.
func TestMinimizeZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := newTour(16, rng)
	opt := Options{
		Cooling:       Geometric{T0: 1, Alpha: 0.9, NumStages: 20},
		MovesPerStage: 50,
		RNG:           rng,
	}
	// Warm up once so lazy runtime initialization is not charged.
	if _, err := Minimize(s, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Minimize(s, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Minimize allocated %.1f times per run, want 0", allocs)
	}
}

// Property: the accepted-move count never exceeds the proposed count and
// the final cost is never above initial when the problem snapshots.
func TestQuickMinimizeInvariants(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%12) + 2
		rng := rand.New(rand.NewSource(seed))
		s := newTour(n, rng)
		res, err := Minimize(s, Options{
			Cooling:       Geometric{T0: 1, Alpha: 0.85, NumStages: 20},
			MovesPerStage: 30,
			RNG:           rng,
		})
		if err != nil {
			return false
		}
		return res.Accepted <= res.Moves && res.FinalCost <= res.InitialCost+1e-9 && res.BestCost <= res.InitialCost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
