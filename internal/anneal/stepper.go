package anneal

import (
	"fmt"
	"math"
	"math/rand"
)

// Stepper is an incremental Minimize: it runs the identical accept/reject
// dynamics, one temperature stage per Step call, so a coordinator can
// interleave work between stages — publish the best cost to a shared
// incumbent, abandon a dominated run, or exchange replica states for
// parallel tempering. A Stepper driven to completion consumes its RNG
// exactly like Minimize and leaves the Problem in the identical state:
// Result() applies the same restore-best rule, so
//
//	st := NewStepper(p, opt); for st.Step() {}; res := st.Result()
//
// is byte-for-byte equivalent to res, _ := Minimize(p, opt).
//
// A Stepper is single-goroutine state; coordinate concurrent Steppers at
// barriers, never by calling one Stepper from two goroutines.
type Stepper struct {
	p   Problem
	opt Options
	rng *rand.Rand

	res           Result
	cost          float64
	plateau       int
	prevStageCost float64
	stage         int

	snapper     Snapshotter
	canSnapshot bool
	stopped     bool
	finalized   bool
}

// NewStepper validates opt exactly like Minimize and primes the stepper:
// the initial cost is read, and for Snapshotter problems the initial state
// is saved as the incumbent best.
func NewStepper(p Problem, opt Options) (*Stepper, error) {
	st := &Stepper{}
	if err := st.Reset(p, opt); err != nil {
		return nil, err
	}
	return st, nil
}

// Reset rebinds the stepper to a (new) problem, discarding all prior run
// state — the arena idiom: a pooled Stepper Reset per run never allocates
// and is observably identical to a fresh NewStepper.
func (st *Stepper) Reset(p Problem, opt Options) error {
	if opt.Cooling == nil {
		return ErrNoCooling
	}
	if opt.MovesPerStage <= 0 {
		return fmt.Errorf("anneal: MovesPerStage = %d, want > 0", opt.MovesPerStage)
	}
	rng := opt.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	st.p = p
	st.opt = opt
	st.rng = rng
	st.res = Result{InitialCost: p.Cost()}
	st.cost = st.res.InitialCost
	st.res.BestCost = st.cost
	st.snapper, st.canSnapshot = p.(Snapshotter)
	if st.canSnapshot {
		st.snapper.SaveBest()
	}
	st.plateau = 0
	st.prevStageCost = st.cost
	st.stage = 0
	st.stopped = false
	st.finalized = false
	return nil
}

// Step executes the next temperature stage (MovesPerStage proposals) and
// reports whether the run can continue. It returns false — permanently —
// once the cooling schedule is exhausted, the plateau rule fires, the
// move cap is reached, the Problem runs out of moves, or Abandon was
// called. The loop body mirrors Minimize move for move.
func (st *Stepper) Step() bool {
	if st.stopped || st.stage >= st.opt.Cooling.Stages() {
		st.stopped = true
		return false
	}
	stage := st.stage
	temp := st.opt.Cooling.Temperature(stage)
	st.res.Stages = stage + 1
	for k := 0; k < st.opt.MovesPerStage; k++ {
		if st.opt.MaxMoves > 0 && st.res.Moves >= st.opt.MaxMoves {
			st.res.CapStop = true
			st.stopped = true
			return false
		}
		delta, ok := st.p.Propose(st.rng)
		if !ok {
			st.stopped = true
			return false
		}
		st.res.Moves++
		accepted := st.rng.Float64() < AcceptProb(delta, temp)
		if accepted {
			st.res.Accepted++
			st.cost += delta
			if st.cost < st.res.BestCost {
				st.res.BestCost = st.cost
				if st.canSnapshot {
					st.snapper.SaveBest()
				}
			}
		} else {
			st.p.Undo()
		}
		if st.opt.OnMove != nil {
			st.opt.OnMove(MoveInfo{
				Move:     st.res.Moves - 1,
				Stage:    stage,
				Temp:     temp,
				Delta:    delta,
				Accepted: accepted,
				Cost:     st.cost,
			})
		}
	}
	if st.opt.PlateauStages > 0 {
		if math.Abs(st.cost-st.prevStageCost) <= st.opt.PlateauEps {
			st.plateau++
			if st.plateau >= st.opt.PlateauStages {
				st.res.PlateauStop = true
				st.res.Stages = stage + 1
				st.stopped = true
				st.stage++
				return false
			}
		} else {
			st.plateau = 0
		}
		st.prevStageCost = st.cost
	}
	st.stage++
	if st.stage >= st.opt.Cooling.Stages() {
		st.stopped = true
		return false
	}
	return true
}

// Done reports whether the run has ended (Step returned false, or Abandon
// or Result was called).
func (st *Stepper) Done() bool { return st.stopped }

// Stage returns the index of the next stage Step would execute.
func (st *Stepper) Stage() int { return st.stage }

// Cost returns the current cost of the Problem's state.
func (st *Stepper) Cost() float64 { return st.cost }

// BestCost returns the lowest cost observed so far — the value a
// cooperative coordinator publishes to the shared incumbent.
func (st *Stepper) BestCost() float64 { return st.res.BestCost }

// SetCost overwrites the stepper's notion of the current cost. Replica
// exchange swaps the Problems' current states behind the steppers' backs;
// SetCost re-synchronizes each stepper with the state it now owns. The
// best-seen bookkeeping is untouched: exchanged states are already
// bounded by their origin replica's best.
func (st *Stepper) SetCost(c float64) { st.cost = c }

// Abandon ends the run early: Step returns false from now on and Result
// finalizes with the statistics accumulated so far. A cooperative
// coordinator abandons a restart whose best cost has trailed the shared
// incumbent for long enough.
func (st *Stepper) Abandon() { st.stopped = true }

// Result finalizes the run — applying Minimize's restore-best rule, so a
// Snapshotter Problem is left in its best state — and returns the run
// statistics. Idempotent; Step must not be called afterwards.
func (st *Stepper) Result() Result {
	if !st.finalized {
		st.finalized = true
		st.stopped = true
		if st.canSnapshot && st.res.BestCost < st.cost {
			st.snapper.RestoreBest()
			st.cost = st.res.BestCost
		}
		st.res.FinalCost = st.cost
	}
	return st.res
}
