package anneal

import (
	"fmt"
	"math"
	"math/rand"
)

// CalibrateT0 estimates an initial temperature at which the Glauber rule
// (eq. 1) accepts roughly the target fraction of *worsening* moves. It
// samples random moves from the problem's current state (undoing each),
// takes the mean uphill cost change Δ⁺, and solves
//
//	target = 1 / (1 + exp(Δ⁺/T0))  ⇒  T0 = Δ⁺ / ln(1/target − 1)
//
// The classic recipe of Kirkpatrick et al. starts hot (target near ½, the
// rule's supremum for uphill moves); the packet scheduler's default T0 = 1
// works because its costs are normalized, but custom cost functions can
// use this to stay scale-free. The problem state is left unchanged.
func CalibrateT0(p Problem, samples int, target float64, rng *rand.Rand) (float64, error) {
	if samples < 1 {
		return 0, fmt.Errorf("anneal: CalibrateT0 needs >= 1 samples")
	}
	if target <= 0 || target >= 0.5 {
		return 0, fmt.Errorf("anneal: acceptance target %g must be in (0, 0.5)", target)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var sum float64
	var uphill int
	for i := 0; i < samples; i++ {
		delta, ok := p.Propose(rng)
		if !ok {
			break
		}
		p.Undo()
		if delta > 0 {
			sum += delta
			uphill++
		}
	}
	if uphill == 0 {
		// No uphill moves seen: any temperature works; return a unit
		// temperature so callers get a sane schedule.
		return 1, nil
	}
	mean := sum / float64(uphill)
	return mean / math.Log(1/target-1), nil
}
