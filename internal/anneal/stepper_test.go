package anneal

import (
	"math/rand"
	"reflect"
	"testing"
)

// stepperOptions are option sets a Stepper must replicate exactly —
// plateau stop, move cap, and plain schedule exhaustion all covered.
func stepperOptions() []Options {
	return []Options{
		{Cooling: Geometric{T0: 4, Alpha: 0.92, NumStages: 80}, MovesPerStage: 200},
		{Cooling: Geometric{T0: 1, Alpha: 0.9, NumStages: 60}, MovesPerStage: 50,
			PlateauStages: 5, PlateauEps: 1e-12, MaxMoves: 20000},
		{Cooling: Geometric{T0: 2, Alpha: 0.8, NumStages: 40}, MovesPerStage: 30, MaxMoves: 500},
		{Cooling: Linear{T0: 3, NumStages: 25}, MovesPerStage: 75, PlateauStages: 3, PlateauEps: 1e-9},
		{Cooling: Constant{T: 0.5, NumStages: 10}, MovesPerStage: 20},
	}
}

// TestStepperEquivalentToMinimize pins the Stepper contract: driving a
// Stepper to completion consumes the RNG identically to Minimize and
// produces the identical Result and final problem state, for a spread of
// cooling schedules and stopping rules.
func TestStepperEquivalentToMinimize(t *testing.T) {
	for oi, opt := range stepperOptions() {
		for seed := int64(1); seed <= 5; seed++ {
			init := rand.New(rand.NewSource(seed))
			pm := newTour(16, init)
			ps := &tourState{perm: append([]int(nil), pm.perm...), best: make([]int, 16)}

			mo := opt
			mo.RNG = rand.New(rand.NewSource(seed * 1009))
			want, err := Minimize(pm, mo)
			if err != nil {
				t.Fatal(err)
			}

			so := opt
			so.RNG = rand.New(rand.NewSource(seed * 1009))
			st, err := NewStepper(ps, so)
			if err != nil {
				t.Fatal(err)
			}
			steps := 0
			for st.Step() {
				steps++
			}
			got := st.Result()

			if got != want {
				t.Errorf("opt %d seed %d: stepper result %+v != minimize %+v (steps %d)",
					oi, seed, got, want, steps)
			}
			if !reflect.DeepEqual(pm.perm, ps.perm) {
				t.Errorf("opt %d seed %d: final states differ:\nminimize %v\nstepper  %v",
					oi, seed, pm.perm, ps.perm)
			}
			if !st.Done() {
				t.Errorf("opt %d seed %d: stepper not done after Result", oi, seed)
			}
		}
	}
}

// TestStepperSeedRNG pins the nil-RNG path: like Minimize, a Stepper with
// no RNG derives one from Options.Seed.
func TestStepperSeedRNG(t *testing.T) {
	opt := Options{Cooling: Geometric{T0: 2, Alpha: 0.9, NumStages: 30}, MovesPerStage: 40, Seed: 99}
	init := rand.New(rand.NewSource(7))
	pm := newTour(10, init)
	ps := &tourState{perm: append([]int(nil), pm.perm...), best: make([]int, 10)}
	want, err := Minimize(pm, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStepper(ps, opt)
	if err != nil {
		t.Fatal(err)
	}
	for st.Step() {
	}
	if got := st.Result(); got != want {
		t.Errorf("seeded stepper result %+v != minimize %+v", got, want)
	}
}

// TestStepperAbandon proves an abandoned run finalizes cleanly: Step
// refuses to continue, and Result restores the best state seen so far.
func TestStepperAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := newTour(12, rng)
	opt := Options{Cooling: Geometric{T0: 4, Alpha: 0.9, NumStages: 60},
		MovesPerStage: 100, RNG: rng}
	st, err := NewStepper(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !st.Step() {
			t.Fatalf("run ended before abandonment at step %d", i)
		}
	}
	st.Abandon()
	if st.Step() {
		t.Fatal("Step continued after Abandon")
	}
	res := st.Result()
	if res.FinalCost != res.BestCost {
		t.Errorf("abandoned FinalCost %g != BestCost %g", res.FinalCost, res.BestCost)
	}
	if got := s.Cost(); got != res.BestCost {
		t.Errorf("problem left at cost %g, want best %g", got, res.BestCost)
	}
	if res.Stages != 5 {
		t.Errorf("Stages = %d, want 5", res.Stages)
	}
}

// TestStepperValidation pins the error parity with Minimize.
func TestStepperValidation(t *testing.T) {
	s := newTour(4, rand.New(rand.NewSource(1)))
	if _, err := NewStepper(s, Options{MovesPerStage: 10}); err != ErrNoCooling {
		t.Errorf("no cooling: got %v, want ErrNoCooling", err)
	}
	if _, err := NewStepper(s, Options{Cooling: Constant{T: 1, NumStages: 5}}); err == nil {
		t.Error("MovesPerStage 0 accepted")
	}
}
