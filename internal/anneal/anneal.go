// Package anneal implements the simulated-annealing minimizer used by the
// packet scheduler of D'Hollander & Devis (ICPP 1991).
//
// The engine is deliberately generic: a Problem exposes its current cost
// and a way to propose (and undo) random elementary moves; a Cooling
// schedule produces the temperature sequence; Minimize runs the Glauber
// acceptance dynamics of the paper's equation (1),
//
//	B(ΔF, T) = 1 / (1 + exp(ΔF/T)),
//
// which accepts improving moves with probability > ½ (not always!) and
// worsening moves with probability < ½; at T → 0 it degenerates into
// strict descent and at T → ∞ into a coin flip.
package anneal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Problem is a mutable optimization state. Implementations carry their own
// state; the engine never copies it (except through the optional
// Snapshotter interface).
//
// The Propose/Undo contract is designed so the accept/reject loop performs
// no heap allocations: a Problem records whatever it needs to revert the
// last move in its own pre-allocated state instead of returning a closure.
type Problem interface {
	// Cost returns the current total cost of the state.
	Cost() float64
	// Propose applies one random elementary move to the state and returns
	// the resulting cost change. ok reports whether a move was possible at
	// all; when ok is false the engine stops.
	Propose(rng *rand.Rand) (delta float64, ok bool)
	// Undo reverts the move applied by the most recent Propose call.
	// Callers invoke Undo at most once per proposed move, before the next
	// Propose (the engine undoes rejected moves; CalibrateT0 undoes every
	// probe).
	Undo()
}

// Snapshotter is an optional extension of Problem. When implemented, the
// engine tracks the best state seen and restores it before returning, so a
// late uphill wander cannot degrade the final answer. Implementations keep
// one reusable "best" buffer (a double buffer of the mutable state), so
// tracking the best mapping costs copies, never allocations.
type Snapshotter interface {
	// SaveBest records the current state as the best seen so far,
	// overwriting the previous best.
	SaveBest()
	// RestoreBest replaces the current state with the last saved best.
	RestoreBest()
}

// MoveInfo describes one proposed move; it is passed to the OnMove
// observer, which the packet scheduler uses to record the Figure 1 cost
// trajectories.
type MoveInfo struct {
	Move     int     // global move index, 0-based
	Stage    int     // temperature stage index, 0-based
	Temp     float64 // temperature at which the move was proposed
	Delta    float64 // proposed cost change
	Accepted bool
	Cost     float64 // cost after the accept/reject decision
}

// Options configures Minimize. The zero value is not usable; use
// DefaultOptions as a starting point.
type Options struct {
	Cooling Cooling
	// MovesPerStage is the number of elementary moves proposed at each
	// temperature.
	MovesPerStage int
	// PlateauStages stops the search early once this many consecutive
	// temperature stages end with an unchanged cost (the paper stops "when
	// the cost function remains constant for five iterations"). Zero
	// disables the plateau rule.
	PlateauStages int
	// PlateauEps is the cost tolerance of the plateau rule.
	PlateauEps float64
	// MaxMoves caps the total number of proposed moves ("a preset maximum
	// number", §6a). Zero means no cap.
	MaxMoves int
	// RNG is the random source; if nil, a source seeded with Seed is used.
	RNG  *rand.Rand
	Seed int64
	// OnMove, when non-nil, observes every proposed move.
	OnMove func(MoveInfo)
}

// DefaultOptions returns the engine configuration used throughout the
// reproduction: 60 geometric cooling stages from T0 = 1 with α = 0.9,
// plateau patience of 5 stages, and a 20 000-move cap.
func DefaultOptions() Options {
	return Options{
		Cooling:       Geometric{T0: 1, Alpha: 0.9, NumStages: 60},
		MovesPerStage: 50,
		PlateauStages: 5,
		PlateauEps:    1e-12,
		MaxMoves:      20000,
	}
}

// Result reports what a Minimize run did.
type Result struct {
	// FinalCost is the cost of the state left in the Problem when
	// Minimize returned (the best seen, if the Problem is a Snapshotter).
	FinalCost float64
	// BestCost is the lowest cost observed during the run.
	BestCost float64
	// InitialCost is the cost before the first move.
	InitialCost float64
	Moves       int  // proposed moves
	Accepted    int  // accepted moves
	Stages      int  // temperature stages executed
	PlateauStop bool // true if the plateau rule ended the run
	CapStop     bool // true if MaxMoves ended the run
}

// ErrNoCooling is returned when Options.Cooling is nil.
var ErrNoCooling = errors.New("anneal: no cooling schedule")

// AcceptProb evaluates the paper's equation (1), the probability of
// accepting a move with cost change delta at temperature temp. Boundary
// behaviour follows equation (2): at temp = 0 the move is accepted iff
// delta < 0; at temp = +Inf the probability is ½.
func AcceptProb(delta, temp float64) float64 {
	if temp <= 0 {
		if delta < 0 {
			return 1
		}
		return 0
	}
	if math.IsInf(temp, 1) {
		return 0.5
	}
	x := delta / temp
	// Guard exp overflow for extreme ratios.
	if x > 700 {
		return 0
	}
	if x < -700 {
		return 1
	}
	return 1 / (1 + math.Exp(x))
}

// Minimize runs simulated annealing on p and returns run statistics. The
// Problem is left in its final (or best, for Snapshotters) state.
func Minimize(p Problem, opt Options) (Result, error) {
	if opt.Cooling == nil {
		return Result{}, ErrNoCooling
	}
	if opt.MovesPerStage <= 0 {
		return Result{}, fmt.Errorf("anneal: MovesPerStage = %d, want > 0", opt.MovesPerStage)
	}
	rng := opt.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	}

	res := Result{InitialCost: p.Cost()}
	cost := res.InitialCost
	res.BestCost = cost

	snapper, canSnapshot := p.(Snapshotter)
	if canSnapshot {
		snapper.SaveBest()
	}

	plateau := 0
	prevStageCost := cost

stages:
	for stage := 0; stage < opt.Cooling.Stages(); stage++ {
		temp := opt.Cooling.Temperature(stage)
		res.Stages = stage + 1
		for k := 0; k < opt.MovesPerStage; k++ {
			if opt.MaxMoves > 0 && res.Moves >= opt.MaxMoves {
				res.CapStop = true
				break stages
			}
			delta, ok := p.Propose(rng)
			if !ok {
				break stages
			}
			res.Moves++
			accepted := rng.Float64() < AcceptProb(delta, temp)
			if accepted {
				res.Accepted++
				cost += delta
				if cost < res.BestCost {
					res.BestCost = cost
					if canSnapshot {
						snapper.SaveBest()
					}
				}
			} else {
				p.Undo()
			}
			if opt.OnMove != nil {
				opt.OnMove(MoveInfo{
					Move:     res.Moves - 1,
					Stage:    stage,
					Temp:     temp,
					Delta:    delta,
					Accepted: accepted,
					Cost:     cost,
				})
			}
		}
		if opt.PlateauStages > 0 {
			if math.Abs(cost-prevStageCost) <= opt.PlateauEps {
				plateau++
				if plateau >= opt.PlateauStages {
					res.PlateauStop = true
					res.Stages = stage + 1
					break stages
				}
			} else {
				plateau = 0
			}
			prevStageCost = cost
		}
	}

	if canSnapshot && res.BestCost < cost {
		snapper.RestoreBest()
		cost = res.BestCost
	}
	res.FinalCost = cost
	return res, nil
}
