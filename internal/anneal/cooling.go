package anneal

import (
	"fmt"
	"math"
)

// Cooling generates the temperature sequence Temp_k of the annealing
// process (§2 of the paper: "The cooling function generates a sequence of
// temperatures varying from ∞ (an arbitrary acceptance) to 0 (a
// deterministic acceptance)").
type Cooling interface {
	// Name identifies the schedule (for reports and ablations).
	Name() string
	// Temperature returns Temp_k for stage k (0-based). Implementations
	// must be non-increasing in k.
	Temperature(stage int) float64
	// Stages returns the number of stages in the schedule.
	Stages() int
}

// Geometric is the classic exponential schedule Temp_k = T0 · α^k.
type Geometric struct {
	T0        float64 // initial temperature, > 0
	Alpha     float64 // decay per stage, in (0,1)
	NumStages int
}

// Name implements Cooling.
func (g Geometric) Name() string { return fmt.Sprintf("geometric(T0=%g,α=%g)", g.T0, g.Alpha) }

// Temperature implements Cooling.
func (g Geometric) Temperature(stage int) float64 {
	return g.T0 * math.Pow(g.Alpha, float64(stage))
}

// Stages implements Cooling.
func (g Geometric) Stages() int { return g.NumStages }

// Validate reports whether the schedule parameters are sane.
func (g Geometric) Validate() error {
	if g.T0 <= 0 || g.Alpha <= 0 || g.Alpha >= 1 || g.NumStages < 1 {
		return fmt.Errorf("anneal: invalid geometric schedule %+v", g)
	}
	return nil
}

// Linear cools from T0 to 0 in equal decrements: Temp_k = T0·(1 − k/N).
type Linear struct {
	T0        float64
	NumStages int
}

// Name implements Cooling.
func (l Linear) Name() string { return fmt.Sprintf("linear(T0=%g)", l.T0) }

// Temperature implements Cooling.
func (l Linear) Temperature(stage int) float64 {
	t := l.T0 * (1 - float64(stage)/float64(l.NumStages))
	if t < 0 {
		return 0
	}
	return t
}

// Stages implements Cooling.
func (l Linear) Stages() int { return l.NumStages }

// Logarithmic is the slow schedule Temp_k = C / ln(k+2) associated with
// the classical convergence guarantees of Geman & Geman.
type Logarithmic struct {
	C         float64
	NumStages int
}

// Name implements Cooling.
func (l Logarithmic) Name() string { return fmt.Sprintf("logarithmic(C=%g)", l.C) }

// Temperature implements Cooling.
func (l Logarithmic) Temperature(stage int) float64 {
	return l.C / math.Log(float64(stage)+2)
}

// Stages implements Cooling.
func (l Logarithmic) Stages() int { return l.NumStages }

// Constant holds the temperature fixed; Constant{T: 0} turns the engine
// into a randomized strict-descent (greedy) search, a useful ablation
// baseline.
type Constant struct {
	T         float64
	NumStages int
}

// Name implements Cooling.
func (c Constant) Name() string { return fmt.Sprintf("constant(T=%g)", c.T) }

// Temperature implements Cooling.
func (c Constant) Temperature(int) float64 { return c.T }

// Stages implements Cooling.
func (c Constant) Stages() int { return c.NumStages }
