package anneal

import (
	"math"
	"math/rand"
	"testing"
)

func TestCalibrateT0HitsTargetAcceptance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := newTour(15, rng)
	t0, err := CalibrateT0(s, 500, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if t0 <= 0 {
		t.Fatalf("T0 = %g", t0)
	}
	// Empirically check: at T0, uphill moves are accepted near the target
	// rate.
	var uphill, accepted int
	for i := 0; i < 3000; i++ {
		delta, ok := s.Propose(rng)
		if !ok {
			t.Fatal("no move")
		}
		s.Undo()
		if delta > 0 {
			uphill++
			if rng.Float64() < AcceptProb(delta, t0) {
				accepted++
			}
		}
	}
	rate := float64(accepted) / float64(uphill)
	if math.Abs(rate-0.4) > 0.08 {
		t.Errorf("uphill acceptance rate %.3f at calibrated T0, want ~0.40", rate)
	}
}

func TestCalibrateT0LeavesStateUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := newTour(10, rng)
	before := s.Cost()
	if _, err := CalibrateT0(s, 200, 0.3, rng); err != nil {
		t.Fatal(err)
	}
	if s.Cost() != before {
		t.Errorf("calibration changed the state: %g -> %g", before, s.Cost())
	}
}

func TestCalibrateT0Errors(t *testing.T) {
	s := newTour(5, rand.New(rand.NewSource(23)))
	if _, err := CalibrateT0(s, 0, 0.3, nil); err == nil {
		t.Error("0 samples accepted")
	}
	if _, err := CalibrateT0(s, 10, 0.7, nil); err == nil {
		t.Error("target 0.7 accepted")
	}
	if _, err := CalibrateT0(s, 10, 0, nil); err == nil {
		t.Error("target 0 accepted")
	}
}

func TestCalibrateT0NoUphillMoves(t *testing.T) {
	// A single-element tour proposes no moves at all.
	s := &tourState{perm: []int{0}}
	t0, err := CalibrateT0(s, 10, 0.3, nil)
	if err != nil || t0 != 1 {
		t.Errorf("T0 = %g, %v; want fallback 1", t0, err)
	}
}
